GO ?= go
# FUZZTIME is the per-target budget of fuzz-smoke; CI raises it on the
# nightly schedule.
FUZZTIME ?= 10s
# BENCHCOUNT is how many times bench-compare repeats each benchmark before
# averaging; raise it for quieter numbers.
BENCHCOUNT ?= 3
# Soak shape: ISSUE 6's acceptance floor is 4 sessions × 64 clients over
# real TCP with churn + floor contention; CI's nightly job raises DURATION.
SOAK_SESSIONS ?= 4
SOAK_CLIENTS ?= 64
SOAK_DURATION ?= 20s
SOAK_OUT ?= BENCH_6.json
SOAK_FLAGS ?=
# Observer-tier soak shape: ISSUE 8's interest-management scenario — one
# steering session, a 4k observer fleet of which 1% subscribed to the live
# echo channel, coalesced observer-tier delivery.
SOAK_OBS_CLIENTS ?= 4096
SOAK_OBS_INTEREST ?= 0.01
SOAK_OBS_DURATION ?= 20s
SOAK_OBS_OUT ?= bench-soak-observer.json
SOAK_OBS_FLAGS ?=

.PHONY: check vet lint steervet staticcheck vulncheck build test test-framedebug bench bench-hotpath bench-smoke bench-compare fuzz-smoke cover soak soak-observer

check: vet lint build test test-framedebug bench-smoke

vet:
	$(GO) vet ./...

# lint is the static-analysis gate: steervet (the in-tree go/analysis suite
# that machine-checks the hot path's hand-maintained invariants — FrameBuf
# refcount balance, //steer:hotpath allocation freedom, atomic-field access
# discipline) always runs; staticcheck and govulncheck run when installed
# (the dev container is offline, CI installs them).
lint: steervet staticcheck vulncheck

steervet:
	$(GO) run ./cmd/steervet ./...

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo 'lint: staticcheck not installed, skipping (CI runs it)'; \
	fi

vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo 'lint: govulncheck not installed, skipping (CI runs it nightly)'; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-framedebug re-runs the packages that enforce the FrameBuf lifetime
# rules with poison-on-release compiled in: a read past the last Release
# fails deterministically instead of racing the pool's next user.
test-framedebug:
	$(GO) test -tags framedebug ./internal/core ./internal/journal

bench:
	$(GO) test -bench=. -benchmem .

# bench-hotpath is the broadcast hot-path measurement from DESIGN.md §4.1:
# allocs/op must sit at 0 in the steady state, and ns/op should fall as
# -cpu grows (no session lock on the path).
bench-hotpath:
	$(GO) test -run '^$$' -bench 'BroadcastHotPath|BroadcastContention' -benchmem -cpu 1,4,16 ./internal/core

# cover writes coverage.out and prints the total statement coverage; CI
# surfaces the same line in the job summary.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# bench-smoke compiles and runs every benchmark exactly once so bench bitrot
# fails the build without paying for a full measurement run. The final step
# asserts the journal benchmarks still exist by name (`-bench` with a
# non-matching pattern exits 0, so the sweep alone would not notice the
# durability subsystem's benches being renamed away).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/...
	@out=$$($(GO) test -run '^$$' -list 'Benchmark(JournalAppend|CatchupReplay)' ./internal/journal); \
	echo "$$out" | grep -q BenchmarkJournalAppend && echo "$$out" | grep -q BenchmarkCatchupReplay \
		|| { echo 'bench-smoke: journal benchmarks missing'; exit 1; }
	@out=$$($(GO) test -run '^$$' -list 'Benchmark(BroadcastHotPath|BroadcastContention|BroadcastInterest|EgressWritev)' ./internal/core); \
	echo "$$out" | grep -q BenchmarkBroadcastHotPath && echo "$$out" | grep -q 'BenchmarkBroadcastContention$$' \
		&& echo "$$out" | grep -q BenchmarkBroadcastContention1k \
		&& echo "$$out" | grep -q 'BenchmarkBroadcastInterest$$' \
		&& echo "$$out" | grep -q BenchmarkEgressWritev \
		|| { echo 'bench-smoke: broadcast hot-path benchmarks missing'; exit 1; }
	@out=$$($(GO) test -run '^$$' -list 'BenchmarkE12_CollaborationScaling' .); \
	echo "$$out" | grep -q BenchmarkE12_CollaborationScaling \
		|| { echo 'bench-smoke: E12 live-hub collaboration benchmark missing'; exit 1; }

# bench-compare re-measures the benchmarks recorded in the committed
# baselines and prints benchstat-style delta tables (cmd/benchcompare is
# the stdlib-only comparator): the fan-out/broadcast suite against
# BENCH_4.json, the interest-management suite against BENCH_8.json, the
# vectored-egress suite against BENCH_9.json (-filter because those
# baselines also carry soak latency keys, which only the steerload soaks
# can re-measure), then the E12 live-hub collaboration-scaling suite
# against BENCH_10.json. Informational by default; set
# BENCHCOMPARE_FLAGS='-max-regress 1.3' to gate.
bench-compare:
	$(GO) test -run '^$$' -bench 'HubFanout|SessionFanoutBaseline' -benchmem -count $(BENCHCOUNT) . > bench-new.txt
	$(GO) test -run '^$$' -bench 'BroadcastHotPath|BroadcastContention' -benchmem -count $(BENCHCOUNT) ./internal/core >> bench-new.txt
	$(GO) run ./cmd/benchcompare -baseline BENCH_4.json -new bench-new.txt $(BENCHCOMPARE_FLAGS) | tee bench-compare.txt
	$(GO) test -run '^$$' -bench 'BroadcastInterest' -benchmem -count $(BENCHCOUNT) ./internal/core > bench-interest.txt
	$(GO) run ./cmd/benchcompare -baseline BENCH_8.json -new bench-interest.txt \
		-filter '^BenchmarkBroadcastInterest/' $(BENCHCOMPARE_FLAGS) | tee -a bench-compare.txt
	$(GO) test -run '^$$' -bench 'EgressWritev' -benchmem -count $(BENCHCOUNT) ./internal/core > bench-egress.txt
	$(GO) run ./cmd/benchcompare -baseline BENCH_9.json -new bench-egress.txt \
		-filter '^BenchmarkEgressWritev/' $(BENCHCOMPARE_FLAGS) | tee -a bench-compare.txt
	$(GO) test -run '^$$' -bench 'E12_CollaborationScaling' -benchmem -count $(BENCHCOUNT) . > bench-e12.txt
	$(GO) run ./cmd/benchcompare -baseline BENCH_10.json -new bench-e12.txt \
		-filter '^BenchmarkE12_CollaborationScaling/' $(BENCHCOMPARE_FLAGS) | tee -a bench-compare.txt

# fuzz-smoke gives the protocol fuzz targets a short exploration budget
# (the seed corpora already run as plain tests in `make test`). All targets
# always run — a crasher in the first must not mask the others — and the
# exit status reports any failure after all have finished.
fuzz-smoke:
	@status=0; \
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime $(FUZZTIME) ./internal/wire || status=1; \
	$(GO) test -run '^$$' -fuzz FuzzEnvelopeRoundTrip -fuzztime $(FUZZTIME) ./internal/core || status=1; \
	$(GO) test -run '^$$' -fuzz FuzzFloorFrames -fuzztime $(FUZZTIME) ./internal/core || status=1; \
	exit $$status

# soak drives the steerload harness against an in-process hub over real
# loopback TCP — 4 sessions × 64 clients with attach/detach churn, floor
# contention and journaled replay by default — and writes the
# benchcompare-compatible latency histograms to BENCH_6.json. Gate against
# the committed baseline with SOAK_FLAGS='-baseline BENCH_6.json -max-regress 3'.
soak:
	$(GO) run ./cmd/steerload -sessions $(SOAK_SESSIONS) -clients $(SOAK_CLIENTS) \
		-duration $(SOAK_DURATION) -churn -floor -journal -out $(SOAK_OUT) $(SOAK_FLAGS)

# soak-observer is the interest-management soak from ISSUE 8: one steered
# session with a 4096-observer fleet at the observer tier, 1% of it
# subscribed to the live echo channel. The steer→observe p99 it records is
# the end-to-end cost of coalesced relay delivery under a fan-out two
# orders past the steering tier's. Gate against the committed baseline with
# SOAK_OBS_FLAGS='-baseline BENCH_8.json -max-regress 3'.
soak-observer:
	$(GO) run ./cmd/steerload -sessions 1 -clients $(SOAK_OBS_CLIENTS) \
		-duration $(SOAK_OBS_DURATION) -observer-tier -observer-interest $(SOAK_OBS_INTEREST) \
		-out $(SOAK_OBS_OUT) $(SOAK_OBS_FLAGS)
