GO ?= go

.PHONY: check vet build test bench

check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .
