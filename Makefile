GO ?= go

.PHONY: check vet build test bench bench-smoke fuzz-smoke

check: vet build test bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

# bench-smoke compiles and runs every benchmark exactly once so bench bitrot
# fails the build without paying for a full measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/...

# fuzz-smoke gives the protocol fuzz targets a short exploration budget
# (the seed corpora already run as plain tests in `make test`).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 10s ./internal/wire
	$(GO) test -run '^$$' -fuzz FuzzEnvelopeRoundTrip -fuzztime 10s ./internal/core
