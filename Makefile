GO ?= go
# FUZZTIME is the per-target budget of fuzz-smoke; CI raises it on the
# nightly schedule.
FUZZTIME ?= 10s
# BENCHCOUNT is how many times bench-compare repeats each benchmark before
# averaging; raise it for quieter numbers.
BENCHCOUNT ?= 3

.PHONY: check vet build test test-framedebug bench bench-hotpath bench-smoke bench-compare fuzz-smoke cover

check: vet build test test-framedebug bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-framedebug re-runs the packages that enforce the FrameBuf lifetime
# rules with poison-on-release compiled in: a read past the last Release
# fails deterministically instead of racing the pool's next user.
test-framedebug:
	$(GO) test -tags framedebug ./internal/core ./internal/journal

bench:
	$(GO) test -bench=. -benchmem .

# bench-hotpath is the broadcast hot-path measurement from DESIGN.md §4.1:
# allocs/op must sit at 0 in the steady state, and ns/op should fall as
# -cpu grows (no session lock on the path).
bench-hotpath:
	$(GO) test -run '^$$' -bench 'BroadcastHotPath|BroadcastContention' -benchmem -cpu 1,4,16 ./internal/core

# cover writes coverage.out and prints the total statement coverage; CI
# surfaces the same line in the job summary.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# bench-smoke compiles and runs every benchmark exactly once so bench bitrot
# fails the build without paying for a full measurement run. The final step
# asserts the journal benchmarks still exist by name (`-bench` with a
# non-matching pattern exits 0, so the sweep alone would not notice the
# durability subsystem's benches being renamed away).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/...
	@out=$$($(GO) test -run '^$$' -list 'Benchmark(JournalAppend|CatchupReplay)' ./internal/journal); \
	echo "$$out" | grep -q BenchmarkJournalAppend && echo "$$out" | grep -q BenchmarkCatchupReplay \
		|| { echo 'bench-smoke: journal benchmarks missing'; exit 1; }
	@out=$$($(GO) test -run '^$$' -list 'Benchmark(BroadcastHotPath|BroadcastContention)' ./internal/core); \
	echo "$$out" | grep -q BenchmarkBroadcastHotPath && echo "$$out" | grep -q BenchmarkBroadcastContention \
		|| { echo 'bench-smoke: broadcast hot-path benchmarks missing'; exit 1; }

# bench-compare re-measures the benchmarks recorded in BENCH_4.json and
# prints a benchstat-style delta table against that committed baseline
# (cmd/benchcompare is the stdlib-only comparator). Informational by
# default; set BENCHCOMPARE_FLAGS='-max-regress 1.3' to gate.
bench-compare:
	$(GO) test -run '^$$' -bench 'HubFanout|SessionFanoutBaseline' -benchmem -count $(BENCHCOUNT) . > bench-new.txt
	$(GO) test -run '^$$' -bench 'BroadcastHotPath|BroadcastContention' -benchmem -count $(BENCHCOUNT) ./internal/core >> bench-new.txt
	$(GO) run ./cmd/benchcompare -baseline BENCH_4.json -new bench-new.txt $(BENCHCOMPARE_FLAGS) | tee bench-compare.txt

# fuzz-smoke gives the protocol fuzz targets a short exploration budget
# (the seed corpora already run as plain tests in `make test`). Both targets
# always run — a crasher in the first must not mask the second — and the
# exit status reports any failure after both have finished.
fuzz-smoke:
	@status=0; \
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime $(FUZZTIME) ./internal/wire || status=1; \
	$(GO) test -run '^$$' -fuzz FuzzEnvelopeRoundTrip -fuzztime $(FUZZTIME) ./internal/core || status=1; \
	exit $$status
