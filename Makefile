GO ?= go
# FUZZTIME is the per-target budget of fuzz-smoke; CI raises it on the
# nightly schedule.
FUZZTIME ?= 10s

.PHONY: check vet build test bench bench-smoke fuzz-smoke cover

check: vet build test bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

# cover writes coverage.out and prints the total statement coverage; CI
# surfaces the same line in the job summary.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# bench-smoke compiles and runs every benchmark exactly once so bench bitrot
# fails the build without paying for a full measurement run. The final step
# asserts the journal benchmarks still exist by name (`-bench` with a
# non-matching pattern exits 0, so the sweep alone would not notice the
# durability subsystem's benches being renamed away).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/...
	@out=$$($(GO) test -run '^$$' -list 'Benchmark(JournalAppend|CatchupReplay)' ./internal/journal); \
	echo "$$out" | grep -q BenchmarkJournalAppend && echo "$$out" | grep -q BenchmarkCatchupReplay \
		|| { echo 'bench-smoke: journal benchmarks missing'; exit 1; }

# fuzz-smoke gives the protocol fuzz targets a short exploration budget
# (the seed corpora already run as plain tests in `make test`). Both targets
# always run — a crasher in the first must not mask the second — and the
# exit status reports any failure after both have finished.
fuzz-smoke:
	@status=0; \
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime $(FUZZTIME) ./internal/wire || status=1; \
	$(GO) test -run '^$$' -fuzz FuzzEnvelopeRoundTrip -fuzztime $(FUZZTIME) ./internal/core || status=1; \
	exit $$status
