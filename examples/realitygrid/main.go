// RealityGrid scenario (paper sections 2.1–2.4, Figures 1 and 2).
//
// A Lattice-Boltzmann two-fluid simulation runs on the "compute
// supercomputer"; isosurfaces of its order parameter are rendered on a
// separate "visualization supercomputer" (vizserver); steering happens
// through an OGSI grid-service stack: a registry is published with a
// steering service and a visualization service, a laptop client discovers
// them, binds, and steers the fluids' miscibility while two sites watch the
// shared remote-rendered view over WAN-shaped links.
//
//	go run ./examples/realitygrid
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/ogsi"
	"repro/internal/render"
	"repro/internal/sim/lb"
	"repro/internal/viz"
	"repro/internal/vizserver"
)

func main() {
	// --- the compute supercomputer: LB3D with steering instrumentation ---
	sim, err := lb.New(lb.Params{Nx: 16, Ny: 16, Nz: 16, Tau: 1, G: 0, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	session := core.NewSession(core.SessionConfig{Name: "lb3d-run", AppName: "lb3d"})
	defer session.Close()
	st := session.Steered()
	if err := st.RegisterFloat("miscibility-g", 0, 0, 6,
		"Shan–Chen coupling: 0 = miscible, >4 demixes", sim.SetCoupling); err != nil {
		log.Fatal(err)
	}
	// Typed (protocol v2) parameters alongside the float: the interface
	// colour is a choice, the run label a free string.
	var surfaceMu sync.Mutex
	surfaceColor := render.Blue
	if err := st.RegisterChoice("surface-color", []string{"blue", "red", "green"}, "blue",
		"isosurface colour", func(v string) {
			surfaceMu.Lock()
			defer surfaceMu.Unlock()
			switch v {
			case "red":
				surfaceColor = render.Red
			case "green":
				surfaceColor = render.Green
			default:
				surfaceColor = render.Blue
			}
		}); err != nil {
		log.Fatal(err)
	}
	if err := st.RegisterString("run-label", "sc03-demo",
		"free-form run label, announced to every participant", func(v string) {
			st.Event("run-label: " + v)
		}); err != nil {
		log.Fatal(err)
	}

	// The latest order-parameter field, shared with the viz pipeline.
	var fieldMu sync.Mutex
	field := sim.OrderParameter()

	simDone := make(chan struct{})
	go func() {
		defer close(simDone)
		for step := int64(0); ; step++ {
			if st.Poll() == core.ControlStop {
				return
			}
			sim.Step()
			fieldMu.Lock()
			field = sim.OrderParameter()
			fieldMu.Unlock()
			s := core.NewSample(step)
			s.Channels["segregation"] = core.Scalar(sim.Segregation())
			st.Emit(s)
		}
	}()

	// --- the visualization supercomputer: isosurfaces + VizServer --------
	scene := func() *render.Scene {
		fieldMu.Lock()
		f := field
		fieldMu.Unlock()
		surfaceMu.Lock()
		col := surfaceColor
		surfaceMu.Unlock()
		mesh := viz.Isosurface(f, 0, col) // φ=0: the fluid interface
		return &render.Scene{Meshes: []*render.Mesh{mesh}}
	}
	cam := render.Camera{
		Eye: render.Vec3{X: 40, Y: 30, Z: 45}, Center: render.Vec3{X: 8, Y: 8, Z: 8},
		Up: render.Vec3{Y: 1}, FovY: 0.7854, Near: 0.1, Far: 500,
	}
	vsrv, err := vizserver.NewServer(vizserver.Config{Width: 200, Height: 150, Scene: scene, Camera: cam})
	if err != nil {
		log.Fatal(err)
	}
	defer vsrv.Close()

	// --- the OGSI layer: registry + steering + viz services --------------
	hosting := ogsi.NewHosting()
	defer hosting.Close()
	hosting.RegisterFactory("registry", ogsi.RegistryFactory)
	hosting.RegisterFactory("steering", ogsi.SteeringFactory(session))
	hosting.RegisterFactory("viz", ogsi.VizFactory(session))

	hl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hosting.BaseURL = "http://" + hl.Addr().String()
	go http.Serve(hl, hosting)

	gsClient := &ogsi.Client{}
	registry, _ := gsClient.Create(hosting.BaseURL, "registry", nil)
	steerGSH, _ := gsClient.Create(hosting.BaseURL, "steering", nil)
	vizGSH, _ := gsClient.Create(hosting.BaseURL, "viz", nil)
	gsClient.Register(registry, ogsi.Entry{GSH: steerGSH, Type: "SteeringService", Keywords: []string{"lb3d"}}, 300)
	gsClient.Register(registry, ogsi.Entry{GSH: vizGSH, Type: "VizService", Keywords: []string{"lb3d"}}, 300)
	fmt.Printf("OGSI hosting at %s\n  registry: %s\n", hosting.BaseURL, registry)

	// --- participants join the shared visualization over WAN links -------
	// The laptop attaches first and therefore holds the session camera
	// (VizServer's control model); Phoenix joins as a second participant.
	laptopConn, vizEnd1 := netsim.Pipe(netsim.National) // Manchester laptop
	go vsrv.ServeConn(vizEnd1)
	laptop, err := vizserver.Attach(laptopConn)
	if err != nil {
		log.Fatal(err)
	}
	defer laptop.Close()
	waitFrame(laptop, 1)

	phoenixConn, vizEnd2 := netsim.Pipe(netsim.Transatlantic) // Phoenix show floor
	go vsrv.ServeConn(vizEnd2)
	phoenix, err := vizserver.Attach(phoenixConn)
	if err != nil {
		log.Fatal(err)
	}
	defer phoenix.Close()
	waitFrame(phoenix, 1)

	// --- the Figure 2 flow: discover, bind, steer ------------------------
	found, err := gsClient.Find(registry, "SteeringService", "lb3d")
	if err != nil || len(found) != 1 {
		log.Fatalf("service discovery failed: %v %v", found, err)
	}
	fmt.Printf("laptop discovered steering service: %s\n", found[0].GSH)

	report := func(label string) float64 {
		var sv struct {
			Step    int64              `json:"step"`
			Scalars map[string]float64 `json:"scalars"`
		}
		gsClient.Call(found[0].GSH, "sample", nil, &sv)
		fmt.Printf("  %-28s step %5d   segregation %.4f\n", label, sv.Step, sv.Scalars["segregation"])
		return sv.Scalars["segregation"]
	}

	time.Sleep(300 * time.Millisecond)
	before := report("mixed fluids (g=0):")

	// Steer the miscibility through the grid service.
	if err := gsClient.Call(found[0].GSH, "steer", map[string]any{"name": "miscibility-g", "value": 4.5}, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println("steered miscibility-g -> 4.5 through the OGSI service")
	// Typed steering through the same service: a choice takes a string.
	if err := gsClient.Call(found[0].GSH, "steer", map[string]any{"name": "surface-color", "value": "red"}, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println("steered surface-color -> \"red\" (typed choice) through the OGSI service")
	time.Sleep(1200 * time.Millisecond)
	after := report("demixing fluids (g=4.5):")
	if after > 2*before {
		fmt.Println("steering verified: the fluids demix, structures form")
	}

	// Refresh the shared view: both sites receive the new isosurface.
	f0, fl0 := phoenix.Frames(), laptop.Frames()
	laptop.Refresh()
	waitFrame(phoenix, f0+1)
	waitFrame(laptop, fl0+1)
	if laptop.Checksum() == phoenix.Checksum() {
		fmt.Println("collaborative view verified: Manchester and Phoenix show identical pixels")
	}

	// Camera control: the laptop flies around the dataset; Phoenix follows.
	newCam := cam
	newCam.Eye = render.Vec3{X: -35, Y: 20, Z: 40}
	if err := laptop.SetCamera(newCam, 5*time.Second); err != nil {
		log.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	fmt.Printf("camera moved; views identical: %v\n", laptop.Checksum() == phoenix.Checksum())

	st2 := vsrv.Stats()
	fmt.Printf("VizServer: %d frames, %.1f KB compressed vs %.1f KB raw (%.1fx reduction)\n",
		st2.FramesRendered, float64(st2.BytesSent)/1024, float64(st2.RawBytes)/1024,
		float64(st2.RawBytes)/float64(st2.BytesSent+1))

	// Shut down through the service.
	gsClient.Call(found[0].GSH, "command", map[string]string{"command": "stop"}, nil)
	<-simDone
	fmt.Println("run stopped through the steering service; done")
}

// waitFrame blocks until the client has received at least n frames.
func waitFrame(c *vizserver.Client, n uint64) {
	deadline := time.Now().Add(10 * time.Second)
	for c.Frames() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
}
