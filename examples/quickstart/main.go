// Quickstart: instrument a simulation with the steering core, attach a
// remote client, steer typed parameters mid-run, hand the floor between two
// collaborators, and pause/resume the run.
//
// This is the smallest complete use of the library: one Session, one
// Steered handle polled at loop boundaries, clients over TCP speaking the
// wire-native tagged-frame protocol. The oscillator registers a float, a
// choice and a bool parameter to show the typed API end to end; a second
// client shows explicit floor control — denial with the holder's name, a
// queued blocking request, and the grant on release.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"net"
	"time"

	"repro/internal/core"
)

func main() {
	// --- the application side -------------------------------------------
	// A damped oscillator whose damping coefficient is steerable.
	session := core.NewSession(core.SessionConfig{
		Name:    "quickstart-run",
		AppName: "oscillator",
		// Collaborative floor control: contested master requests queue in
		// FIFO order, and a master silent for 2s loses the floor.
		FloorPolicy: core.FloorFIFO,
		MasterLease: 2 * time.Second,
	})
	defer session.Close()
	st := session.Steered()

	damping := 0.01
	if err := st.RegisterFloat("damping", damping, 0, 1,
		"velocity damping coefficient", func(v float64) { damping = v }); err != nil {
		log.Fatal(err)
	}
	integrator := "leapfrog"
	if err := st.RegisterChoice("integrator", []string{"leapfrog", "euler"}, integrator,
		"time integration scheme", func(v string) { integrator = v }); err != nil {
		log.Fatal(err)
	}
	trace := false
	if err := st.RegisterBool("trace", trace,
		"log every steered step", func(v bool) { trace = v }); err != nil {
		log.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go session.Serve(l)
	fmt.Printf("steering session %q listening on %s\n", session.Name(), l.Addr())

	// The simulation loop: integrate, poll for steering, emit samples.
	simDone := make(chan struct{})
	go func() {
		defer close(simDone)
		x, v := 1.0, 0.0
		const dt = 0.05
		for step := int64(0); ; step++ {
			switch st.PollBlocking(10 * time.Second) {
			case core.ControlStop:
				fmt.Printf("simulation stopped at step %d\n", step)
				return
			case core.ControlPaused:
				continue
			}
			// x'' = -x - damping*x', by the steerable scheme.
			switch integrator {
			case "euler":
				ox := x
				x += dt * v
				v += dt * (-ox - damping*v)
			default: // leapfrog
				v += dt * (-x - damping*v)
				x += dt * v
			}
			if trace {
				fmt.Printf("  step %d: x=%.4f v=%.4f (%s)\n", step, x, v, integrator)
			}

			sample := core.NewSample(step)
			sample.Channels["x"] = core.Scalar(x)
			sample.Channels["energy"] = core.Scalar(0.5 * (x*x + v*v))
			st.Emit(sample)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// --- the steering client side ----------------------------------------
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	client, err := core.Attach(conn, core.AttachOptions{Name: "laptop"})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	fmt.Printf("attached as %q (role %s)\n", client.Name(), client.Role())
	for _, p := range client.Params() {
		fmt.Printf("  steerable: %-10s = %-8s (%s)  %s\n", p.Name, p.Value, p.Type, p.Help)
	}

	// Watch the energy decay under light damping.
	e0 := watchEnergy(client, 20)
	fmt.Printf("energy after 20 samples with damping=0.01: %.4f\n", e0)

	// A single bounded context covers the whole steering exchange; each
	// round trip returns as soon as the session acks or rejects it.
	steerCtx, cancelSteer := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelSteer()

	// Steer: one atomic batch flips the integrator and cranks the damping,
	// each value tagged with its own wire kind.
	if err := client.SetParamsContext(steerCtx, []core.ParamSet{
		{Name: "damping", Value: core.FloatValue(0.5)},
		{Name: "integrator", Value: core.StringValue("euler")},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("steered damping -> 0.5 and integrator -> euler in one batch")

	// Rejections carry typed errors, not strings.
	if err := client.SetValueContext(steerCtx, "integrator", core.StringValue("rk4")); errors.Is(err, core.ErrBadValue) {
		fmt.Println("typed rejection: \"rk4\" is not a registered choice (core.ErrBadValue)")
	}
	e1 := watchEnergy(client, 40)
	fmt.Printf("energy after 40 more samples with damping=0.5: %.4f\n", e1)
	if e1 < e0 {
		fmt.Println("steering verified: stronger damping drains the oscillator")
	}

	// --- collaborative floor control ---------------------------------------
	// A colleague attaches as an observer and asks for the steering floor.
	conn2, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	colleague, err := core.Attach(conn2, core.AttachOptions{Name: "colleague"})
	if err != nil {
		log.Fatal(err)
	}
	defer colleague.Close()

	// The non-queueing request is answered explicitly: denied, naming the
	// holder — never silence.
	if err := colleague.TryRequestMaster(time.Second); errors.Is(err, core.ErrFloorHeld) {
		fmt.Printf("floor denied while held: %v\n", err)
	}

	// The blocking request queues; the grant arrives when the holder
	// releases. (Had "laptop" wedged instead, the 2s master lease would
	// expire and pass the floor just the same.)
	granted := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		granted <- colleague.RequestMaster(ctx)
	}()
	time.Sleep(50 * time.Millisecond) // let the request queue
	if err := client.ReleaseMaster(time.Second); err != nil {
		log.Fatal(err)
	}
	if err := <-granted; err != nil {
		log.Fatal(err)
	}
	fmt.Printf("floor passed to %q (reason: %s)\n", colleague.Name(), colleague.FloorReason())
	if err := colleague.SetParamContext(steerCtx, "damping", 0.8); err != nil {
		log.Fatal(err)
	}
	fmt.Println("colleague steered damping -> 0.8 while holding the floor")
	// Hand the floor back by name: coordinated cooperative steering.
	if err := colleague.GrantMaster("laptop", time.Second); err != nil {
		log.Fatal(err)
	}
	waitMaster(client, "laptop")
	fmt.Printf("floor handed back to %q (reason: %s)\n", client.Name(), client.FloorReason())

	// Pause, verify the sample stream stalls, resume.
	if err := client.PauseContext(steerCtx); err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	drain(client)
	quiet := countSamples(client, 100*time.Millisecond)
	fmt.Printf("paused: %d samples in 100ms (want 0)\n", quiet)
	if err := client.ResumeContext(steerCtx); err != nil {
		log.Fatal(err)
	}
	flowing := countSamples(client, 200*time.Millisecond)
	fmt.Printf("resumed: %d samples in 200ms\n", flowing)

	// Stop the run cleanly.
	if err := client.StopContext(steerCtx); err != nil {
		log.Fatal(err)
	}
	<-simDone
	stats := session.Stats()
	fmt.Printf("session stats: %d samples emitted, %d steers applied\n",
		stats.SamplesEmitted, stats.SteersApplied)
}

// waitMaster blocks until c observes name holding the floor.
func waitMaster(c *core.Client, name string) {
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if c.Master() == name {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatalf("master never became %q", name)
}

// watchEnergy consumes n samples and returns the last energy value.
func watchEnergy(c *core.Client, n int) float64 {
	last := math.NaN()
	for i := 0; i < n; i++ {
		select {
		case s := <-c.Samples():
			last = s.Channels["energy"].Value()
		case <-time.After(2 * time.Second):
			log.Fatal("sample stream stalled")
		}
	}
	return last
}

// drain empties the sample queue.
func drain(c *core.Client) {
	for {
		select {
		case <-c.Samples():
		default:
			return
		}
	}
}

// countSamples counts arrivals within a window.
func countSamples(c *core.Client, window time.Duration) int {
	deadline := time.After(window)
	n := 0
	for {
		select {
		case <-c.Samples():
			n++
		case <-deadline:
			return n
		}
	}
}
