// COVISE collaborative building analysis inside an Access Grid venue
// (paper section 4, Figure 4).
//
// The car-show building climatization simulation runs while three sites —
// HLRS, DaimlerChrysler and Sandia — analyse it collaboratively: each site
// runs its own replica of the COVISE module network (source → cutting plane
// → renderer), so only parameter-synchronisation messages cross the network
// and every site renders identical pixels locally. The session is started
// from a Virtual Venue whose video stream distributes frames to passive AG
// viewers, including a NAT'd site fed through a unicast bridge.
//
//	go run ./examples/covise
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/accessgrid"
	"repro/internal/covise"
	"repro/internal/netsim"
	"repro/internal/render"
	"repro/internal/sim/airflow"
	"repro/internal/viz"
)

func main() {
	// --- the simulation: car-show building climatization ------------------
	building, err := airflow.CarShowBuilding(4)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		building.Step()
	}
	fmt.Printf("car-show building simulated: %d steps, mean temperature %.2f°C\n",
		building.StepCount(), building.MeanTemperature())

	// --- the Access Grid venue --------------------------------------------
	vs := accessgrid.NewVenueServer()
	venue, err := vs.CreateVenue("HLRS Virtual Venue", "collaborative building analysis")
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range [][2]string{
		{"woessner", "hlrs"}, {"architect", "daimlerchrysler"}, {"analyst", "sandia"},
	} {
		if _, err := venue.Enter(p[0], p[1]); err != nil {
			log.Fatal(err)
		}
	}
	// The venue stores the shared-application descriptor so participants can
	// start the COVISE session from the room (the section 4.6 venue server).
	if err := venue.RegisterApp(accessgrid.AppDescriptor{
		Name: "building-analysis", Type: "covise-session",
		Endpoint: "covise://hlrs/carshow.net",
		Data:     map[string]string{"map": "source→cut→render"},
	}); err != nil {
		log.Fatal(err)
	}
	apps := venue.FindApps("covise-session")
	fmt.Printf("venue %q: %d participants, shared app %q available\n",
		venue.Name, len(venue.Participants()), apps[0].Name)

	// --- the collaborative COVISE session ---------------------------------
	// Each site replicates the same pipeline; the field provider reads the
	// live simulation output.
	provide := func() *viz.ScalarField { return building.Temperature() }
	build := func(h *covise.Host) (*covise.Controller, error) {
		c := covise.NewController()
		if err := c.AddModule("source", h, &covise.FieldSource{Provide: provide}); err != nil {
			return nil, err
		}
		if err := c.AddModule("cut", h, &covise.CuttingPlane{}); err != nil {
			return nil, err
		}
		if err := c.AddModule("render", h, &covise.Renderer{
			Width: 192, Height: 144,
			LookAt: render.Vec3{X: 20, Y: 6, Z: 12},
		}); err != nil {
			return nil, err
		}
		if err := c.Connect("source", "field", "cut", "field"); err != nil {
			return nil, err
		}
		if err := c.Connect("cut", "geometry", "render", "geometry"); err != nil {
			return nil, err
		}
		c.SetParam("cut", "axis", 1) // horizontal slice through the hall
		c.SetParam("cut", "index", 2)
		c.SetParam("render", "eyeX", 60)
		c.SetParam("render", "eyeY", 45)
		c.SetParam("render", "eyeZ", 70)
		return c, nil
	}

	session := covise.NewCollabSession()
	for _, site := range []string{"hlrs", "daimlerchrysler", "sandia"} {
		if _, err := session.AddSite(site, build); err != nil {
			log.Fatal(err)
		}
	}
	if err := session.ExecuteAll(); err != nil {
		log.Fatal(err)
	}
	converged, err := session.Converged("render", "checksum")
	if err != nil || !converged {
		log.Fatalf("initial convergence failed: %v %v", converged, err)
	}
	fmt.Printf("COVISE session: sites %v all display identical content\n", session.Sites())

	// --- collaborative exploration ----------------------------------------
	// HLRS (active steerer) sweeps the cutting plane through the building;
	// the other sites follow through parameter sync alone.
	for _, idx := range []float64{4, 6, 8} {
		stats, err := session.SetParam("hlrs", "cut", "index", idx)
		if err != nil {
			log.Fatal(err)
		}
		converged, _ := session.Converged("render", "checksum")
		fmt.Printf("  cut plane -> level %.0f: re-ran %v, converged=%v\n", idx, stats.Executed, converged)
	}
	geo, _ := session.Checksums("render", "checksum")
	_ = geo
	fmt.Printf("sync traffic for the whole exploration: %d bytes in %d messages\n",
		session.SyncBytes(), session.SyncMessages())

	// A passive participant may not steer until roles change (section 4.3).
	if _, err := session.SetParam("sandia", "cut", "index", 3); err == nil {
		log.Fatal("passive site steered")
	}
	if err := session.SetMaster("sandia"); err != nil {
		log.Fatal(err)
	}
	if _, err := session.SetParam("sandia", "cut", "index", 3); err != nil {
		log.Fatal(err)
	}
	fmt.Println("roles changed: sandia now steers the exploration")

	// --- steer the building itself ----------------------------------------
	// Turn one supply vent hot and advance the simulation; all replicas mark
	// their sources dirty and re-converge on the new temperature field.
	if err := building.SetVent(10, 10, 6, 30, 1.0); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		building.Step()
	}
	session.MarkDirtyAll("source")
	if err := session.ExecuteAll(); err != nil {
		log.Fatal(err)
	}
	converged, _ = session.Converged("render", "checksum")
	fmt.Printf("vent steered to 30°C, simulation advanced: sites converged=%v, mean T %.2f°C\n",
		converged, building.MeanTemperature())

	// --- AG distribution: video stream + NAT bridge ------------------------
	video, _ := venue.Stream("video")
	img, err := sessionImage(session)
	if err != nil {
		log.Fatal(err)
	}
	cam := video.Join("hlrs-covise", netsim.Loopback)
	viewer := video.Join("observer-site", netsim.Metro)

	bridge := video.Bridge("nat-bridge", netsim.Loopback)
	defer bridge.Close()
	natConn, natSite := netsim.Pipe(netsim.Metro)
	defer natSite.Close()
	go bridge.Subscribe(natConn)
	time.Sleep(10 * time.Millisecond)

	if err := cam.Send(img.Pix[:4096]); err != nil { // one video packet of the rendered view
		log.Fatal(err)
	}
	if _, err := viewer.Recv(2 * time.Second); err != nil {
		log.Fatalf("AG viewer missed the frame: %v", err)
	}
	buf := make([]byte, 8192)
	natSite.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := natSite.Read(buf); err != nil {
		log.Fatalf("NAT'd site missed the bridged frame: %v", err)
	}
	fmt.Println("venue video: multicast viewer and NAT-bridged site both received the rendered view")
	fmt.Println("done")
}

// sessionImage fetches the rendered image from the first site.
func sessionImage(s *covise.CollabSession) (*render.Framebuffer, error) {
	site, err := s.Site(s.Sites()[0])
	if err != nil {
		return nil, err
	}
	obj, err := site.Controller.Output("render", "image")
	if err != nil {
		return nil, err
	}
	return obj.Image, nil
}
