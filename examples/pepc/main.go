// PEPC steering through the VISIT extension to UNICORE (paper section 3,
// Figure 3).
//
// A Barnes–Hut plasma simulation (a particle beam striking a spherical
// plasma target) is consigned as a UNICORE job. The job carries a VISIT
// proxy, so the running code reaches its visualizations through the
// gateway's single TCP port. Two Access Grid sites attach as VISIT
// visualizations: Jülich (master, may steer) and Phoenix (observer). The
// master steers the beam intensity mid-run, the master role is handed to
// Phoenix, and Phoenix shuts the run down — the paper's "coordinated
// cooperative steering".
//
//	go run ./examples/pepc
package main

import (
	"fmt"
	"log"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/sim/pepc"
	"repro/internal/unicore"
	"repro/internal/visit"
	"repro/internal/wire"
)

// VISIT payload tags of this application.
const (
	tagParticles = 1 // Float64s: x,y,z per particle
	tagDomains   = 2 // Float64s: min/max boxes per worker domain
	tagEnergy    = 3 // Float64s: [kinetic]
	tagParams    = 4 // Recv: [beamIntensity, stop]
)

// site is one collaborating visualization endpoint.
type site struct {
	name      string
	server    *visit.Server
	particles atomic.Int64
	energy    atomic.Uint64
	// steering state served to the simulation when this site is master
	beamIntensity atomic.Int64
	stop          atomic.Bool
	consulted     atomic.Int64
}

func newSite(name, password string) *site {
	s := &site{name: name}
	s.beamIntensity.Store(2)
	s.server = visit.NewServer(visit.ServerConfig{Password: password})
	s.server.HandleSend(tagParticles, func(m *wire.Message) error {
		v, err := m.AsFloat64s()
		if err != nil {
			return err
		}
		s.particles.Store(int64(len(v) / 3))
		return nil
	})
	s.server.HandleSend(tagDomains, func(m *wire.Message) error { return nil })
	s.server.HandleSend(tagEnergy, func(m *wire.Message) error {
		v, err := m.AsFloat64s()
		if err != nil || len(v) != 1 {
			return err
		}
		s.energy.Store(uint64(v[0] * 1000))
		return nil
	})
	s.server.HandleRecv(tagParams, func() (*wire.Message, error) {
		s.consulted.Add(1)
		stop := 0.0
		if s.stop.Load() {
			stop = 1
		}
		return &wire.Message{
			Header:   wire.Header{Kind: wire.KindFloat64, Count: 2},
			Float64s: []float64{float64(s.beamIntensity.Load()), stop},
		}, nil
	})
	return s
}

func main() {
	const vizPassword = "sc03-demo"

	// --- the Vsite: TSI with the instrumented PEPC application -----------
	tsi := unicore.NewTSI()
	appDone := make(chan int, 1) // final particle count
	tsi.RegisterApp("pepc", func(ctx *unicore.TaskContext) error {
		sim, err := pepc.New(pepc.Params{Theta: 0.5, Dt: 0.005, Eps: 0.05, Seed: 11})
		if err != nil {
			return err
		}
		sim.AddPlasmaBall(400, pepc.Vec{}, 1.0, 0.05)
		sim.SetBeam(pepc.BeamParams{
			Charge: -1, Intensity: 2, Direction: pepc.Vec{Z: -1},
			Speed: 4, Origin: pepc.Vec{Z: 3}, Spread: 0.15,
		})

		// The simulation is the VISIT client: every exchange below is
		// simulation-initiated with a hard timeout.
		vs := visit.NewSim(ctx.VISITDialer, vizPassword)
		defer vs.Close()
		const timeout = 150 * time.Millisecond

		for step := 0; step < 4000; step++ {
			sim.Step()
			snap := sim.Snapshot()

			coords := make([]float64, 0, len(snap.Pos)*3)
			for _, p := range snap.Pos {
				coords = append(coords, p.X, p.Y, p.Z)
			}
			vs.SendFloat64s(tagParticles, coords, timeout)
			boxes := make([]float64, 0, len(snap.Domains)*6)
			for _, b := range snap.Domains {
				boxes = append(boxes, b[0].X, b[0].Y, b[0].Z, b[1].X, b[1].Y, b[1].Z)
			}
			vs.SendFloat64s(tagDomains, boxes, timeout)
			vs.SendFloat64s(tagEnergy, []float64{sim.KineticEnergy()}, timeout)

			if m, err := vs.Recv(tagParams, timeout); err == nil {
				if v, _ := m.AsFloat64s(); len(v) == 2 {
					if v[1] == 1 {
						fmt.Fprintf(ctx.Stdout, "steered to stop at step %d with %d particles\n", step, sim.N())
						appDone <- sim.N()
						return nil
					}
					b := sim.Beam()
					if int(v[0]) != b.Intensity {
						b.Intensity = int(v[0])
						sim.SetBeam(b)
					}
				}
			}
			time.Sleep(time.Millisecond)
		}
		appDone <- sim.N()
		return nil
	})

	// --- the protected domain: gateway + NJS -----------------------------
	njs := unicore.NewNJS("JUELICH", tsi)
	gw := unicore.NewGateway()
	gw.AddVsite(njs)
	gw.AddUser("gibbon", "sso-token")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go gw.Serve(l)
	defer gw.Close()
	fmt.Printf("UNICORE gateway on single port %s\n", l.Addr())

	// --- consign the steered job -----------------------------------------
	client := unicore.NewClient(l.Addr().String(), "gibbon", "sso-token")
	ajo := &unicore.AJO{
		ID:    "pepc-laser-1",
		Vsite: "JUELICH",
		Tasks: []unicore.Task{
			{Kind: unicore.TaskStartVISITProxy, Name: "steering-proxy", VISITPassword: vizPassword},
			{Kind: unicore.TaskExecute, Name: "run", Executable: "pepc",
				Args: []string{"--target", "sphere", "--beam", "on"}},
		},
	}
	if err := client.Consign(ajo); err != nil {
		log.Fatal(err)
	}
	if st, err := client.WaitStatus("pepc-laser-1", unicore.StatusRunning, 5*time.Second); err != nil {
		log.Fatalf("job not running: %v %v", st, err)
	}
	fmt.Println("job pepc-laser-1 consigned and RUNNING")

	// --- two AG sites attach through the gateway -------------------------
	juelich := newSite("juelich", vizPassword)
	go client.OpenVISITChannel("pepc-laser-1", "juelich", vizPassword, juelich.server)
	waitParticles(juelich)
	fmt.Printf("juelich attached (master): seeing %d particles\n", juelich.particles.Load())

	phoenix := newSite("phoenix", vizPassword)
	go client.OpenVISITChannel("pepc-laser-1", "phoenix", vizPassword, phoenix.server)
	waitParticles(phoenix)
	fmt.Printf("phoenix attached (observer): seeing %d particles\n", phoenix.particles.Load())

	// --- steer the beam from the master -----------------------------------
	n0 := juelich.particles.Load()
	juelich.beamIntensity.Store(12)
	time.Sleep(700 * time.Millisecond)
	n1 := juelich.particles.Load()
	fmt.Printf("beam intensity steered 2 -> 12: particle count %d -> %d\n", n0, n1)
	if phoenix.consulted.Load() != 0 {
		log.Fatal("observer was consulted for parameters")
	}
	fmt.Printf("observer consulted %d times (want 0) while master consulted %d times\n",
		phoenix.consulted.Load(), juelich.consulted.Load())

	// --- coordinated cooperative steering: hand the master role over ------
	if err := client.SetVISITMaster("pepc-laser-1", "phoenix"); err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for phoenix.consulted.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Println("master role moved to phoenix")

	phoenix.beamIntensity.Store(12)
	phoenix.stop.Store(true)
	finalN := <-appDone
	if st, err := client.WaitStatus("pepc-laser-1", unicore.StatusDone, 5*time.Second); err != nil || st != unicore.StatusDone {
		log.Fatalf("job did not finish: %v %v", st, err)
	}
	fmt.Printf("phoenix steered the run to a stop; final particle count %d\n", finalN)

	out, err := client.Outcome("pepc-laser-1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job outcome: %s, %d log entries\n", out.Status, len(out.Log))
	bstats, _ := njs.VISITBrokerStats("pepc-laser-1")
	fmt.Printf("proxy multiplexer: %d sim sends fanned to %d viz deliveries, %d steering recvs\n",
		bstats.SendsIn, bstats.SendsFanned, bstats.RecvsForwarded)
	fmt.Printf("gateway: %d connections total, %d steering channels — all on one port\n",
		gw.Stats().Connections, gw.Stats().ChannelsOpened)
}

// waitParticles blocks until a site has seen particle data.
func waitParticles(s *site) {
	deadline := time.Now().Add(10 * time.Second)
	for s.particles.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if s.particles.Load() == 0 {
		log.Fatalf("site %s never received particles", s.name)
	}
}
