// Repository-level benchmarks: one per evaluation artefact of the paper
// (experiments E1–E13, see DESIGN.md §9 and EXPERIMENTS.md). Each benchmark
// times the experiment's hot kernel under b.N and attaches the shape metrics
// of a full experiment run (cached across benchmarks) via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates every row the paper's claims rest
// on.
package main

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hub"
	"repro/internal/netsim"
	"repro/internal/pixel"
	"repro/internal/render"
	"repro/internal/sim/airflow"
	"repro/internal/sim/lb"
	"repro/internal/sim/pepc"
	"repro/internal/visit"
	"repro/internal/viz"
	"repro/internal/vnc"
	"repro/internal/wire"
)

// expCache memoises full experiment runs so benchmark calibration reruns do
// not repeat multi-second setups.
var expCache sync.Map

func expMetrics(b *testing.B, id string) map[string]float64 {
	b.Helper()
	if v, ok := expCache.Load(id); ok {
		return v.(map[string]float64)
	}
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("no experiment %s", id)
	}
	res, err := e.Run()
	if err != nil {
		b.Fatalf("%s: %v", id, err)
	}
	expCache.Store(id, res.Metrics)
	return res.Metrics
}

func reportMetrics(b *testing.B, m map[string]float64, keys ...string) {
	b.Helper()
	for _, k := range keys {
		if v, ok := m[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

// BenchmarkE1_RealityGridPipeline times one simulation step + order-parameter
// extraction (the per-sample cost of the Figure 1 pipeline) and reports the
// end-to-end steer latency of the full experiment.
func BenchmarkE1_RealityGridPipeline(b *testing.B) {
	m := expMetrics(b, "E1")
	sim, err := lb.New(lb.Params{Nx: 16, Ny: 16, Nz: 16, Tau: 1, G: 4.5, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
		_ = sim.OrderParameter()
	}
	b.StopTimer()
	reportMetrics(b, m, "steer_to_effect_ms", "frame_rt_ms", "seg_after")
}

// BenchmarkE2_OGSIService times the steer-through-grid-service round trip of
// Figure 2.
func BenchmarkE2_OGSIService(b *testing.B) {
	m := expMetrics(b, "E2")
	session := core.NewSession(core.SessionConfig{Name: "bench"})
	defer session.Close()
	st := session.Steered()
	st.RegisterFloat("g", 0, 0, 10, "", func(float64) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := session.QueueSetParam("g", float64(i%10)); err != nil {
			b.Fatal(err)
		}
		st.Poll()
	}
	b.StopTimer()
	reportMetrics(b, m, "steer_service_us", "find_us", "create_us")
}

// BenchmarkE3_VizServerBandwidth times render+compress of one frame (the
// VizServer unit of work) and reports the bytes-per-frame series.
func BenchmarkE3_VizServerBandwidth(b *testing.B) {
	m := expMetrics(b, "E3")
	sim, err := lb.New(lb.Params{Nx: 20, Ny: 20, Nz: 20, Tau: 1, G: 4.5, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		sim.Step()
	}
	mesh := viz.Isosurface(sim.OrderParameter(), 0, render.Blue)
	scene := &render.Scene{Meshes: []*render.Mesh{mesh}}
	fb := render.NewFramebuffer(320, 240)
	cam := render.Camera{
		Eye: render.Vec3{X: 50, Y: 40, Z: 56}, Center: render.Vec3{X: 10, Y: 10, Z: 10},
		Up: render.Vec3{Y: 1}, FovY: 0.7854, Near: 0.1, Far: 1000,
	}
	var bytesOut int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cam.Eye.X += 0.01
		render.Render(fb, cam, scene)
		bytesOut = len(pixel.EncodeKey(fb.Pix))
	}
	b.StopTimer()
	b.ReportMetric(float64(bytesOut), "keyframe_bytes")
	reportMetrics(b, m, "geo_28_kb", "key_28_kb", "delta_28_kb", "reduction_at_28")
}

// BenchmarkE4_VisitOverhead times an instrumented PEPC step against a live
// visualization; the reported metrics include the dead-visualization bound.
func BenchmarkE4_VisitOverhead(b *testing.B) {
	m := expMetrics(b, "E4")
	srv := visit.NewServer(visit.ServerConfig{})
	srv.HandleSend(1, func(*wire.Message) error { return nil })
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	sim, err := pepc.New(pepc.Params{Theta: 0.5, Dt: 0.005, Eps: 0.05, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	sim.AddPlasmaBall(600, pepc.Vec{}, 1.0, 0.05)
	vs := visit.NewSim(visit.TCPDialer(l.Addr().String()), "")
	defer vs.Close()
	coords := make([]float64, 0, 600*3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
		snap := sim.Snapshot()
		coords = coords[:0]
		for _, p := range snap.Pos {
			coords = append(coords, p.X, p.Y, p.Z)
		}
		if err := vs.SendFloat64s(1, coords, 100*time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportMetrics(b, m, "base_ms", "live_ms", "dead_ms", "worst_block_ms")
}

// BenchmarkE5_UnicoreProxy times a native VISIT exchange (the baseline) and
// reports the gateway-proxied latency of the full experiment.
func BenchmarkE5_UnicoreProxy(b *testing.B) {
	m := expMetrics(b, "E5")
	srv := visit.NewServer(visit.ServerConfig{})
	srv.HandleSend(1, func(*wire.Message) error { return nil })
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	vs := visit.NewSim(visit.TCPDialer(l.Addr().String()), "")
	defer vs.Close()
	payload := make([]float64, 3000)
	if err := vs.SendFloat64s(1, payload, time.Second); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vs.SendFloat64s(1, payload, time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportMetrics(b, m, "direct_ms", "proxy_ms", "overhead_x")
}

// BenchmarkE6_Vbroker times a fanned-out send through a 4-participant broker.
func BenchmarkE6_Vbroker(b *testing.B) {
	m := expMetrics(b, "E6")
	broker := visit.NewBroker(visit.BrokerConfig{})
	defer broker.Close()
	for i := 0; i < 4; i++ {
		srv := visit.NewServer(visit.ServerConfig{})
		srv.HandleSend(1, func(*wire.Message) error { return nil })
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(l)
		defer srv.Close()
		if err := broker.AttachViz(fmt.Sprintf("v%d", i), visit.TCPDialer(l.Addr().String()), ""); err != nil {
			b.Fatal(err)
		}
	}
	bl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go broker.Serve(bl)
	sim := visit.NewSim(visit.TCPDialer(bl.Addr().String()), "")
	defer sim.Close()
	payload := make([]float64, 2000)
	if err := sim.SendFloat64s(1, payload, 2*time.Second); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.SendFloat64s(1, payload, 2*time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportMetrics(b, m, "send_ms_1", "send_ms_8", "recv_ms_1", "recv_ms_8", "handoff_us")
}

// BenchmarkE7_PEPCScaling times one tree-force evaluation at N=4000 and
// reports the scaling series.
func BenchmarkE7_PEPCScaling(b *testing.B) {
	m := expMetrics(b, "E7")
	sim, err := pepc.New(pepc.Params{Theta: 0.5, Dt: 0.01, Eps: 0.05, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	sim.AddPlasmaBall(4000, pepc.Vec{}, 1.0, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.ForcesTree(0.5)
	}
	b.StopTimer()
	reportMetrics(b, m, "tree_ms_8000", "direct_ms_8000", "inter_8000", "growth_8000")
}

// BenchmarkE7_PEPCDirectBaseline times the O(N²) baseline at the same N for
// direct comparison in the same output.
func BenchmarkE7_PEPCDirectBaseline(b *testing.B) {
	sim, err := pepc.New(pepc.Params{Theta: 0.5, Dt: 0.01, Eps: 0.05, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	sim.AddPlasmaBall(4000, pepc.Vec{}, 1.0, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.ForcesDirect()
	}
}

// BenchmarkE8_RenderFeedbackLoop times one local redraw (the loop the CAVE
// depends on) and reports the remote-loop latencies per WAN profile.
func BenchmarkE8_RenderFeedbackLoop(b *testing.B) {
	m := expMetrics(b, "E8")
	f := viz.NewScalarField(24, 24, 24)
	c := 11.5
	f.Fill(func(i, j, k int) float64 {
		dx, dy, dz := float64(i)-c, float64(j)-c, float64(k)-c
		return dx*dx + dy*dy + dz*dz
	})
	scene := &render.Scene{Meshes: []*render.Mesh{viz.Isosurface(f, 64, render.Blue)}}
	fb := render.NewFramebuffer(320, 240)
	cam := render.Camera{
		Eye: render.Vec3{X: 55, Y: 45, Z: 65}, Center: render.Vec3{X: 12, Y: 12, Z: 12},
		Up: render.Vec3{Y: 1}, FovY: 0.7854, Near: 0.1, Far: 1000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cam.Eye.X += 0.01
		render.Render(fb, cam, scene)
	}
	b.StopTimer()
	reportMetrics(b, m, "local_ms", "remote_ms_LAN", "remote_ms_national", "remote_ms_transatlantic")
}

// BenchmarkE9_DesktopSync times one dirty-tile desktop update with two
// attached viewers and reports the divergence metrics.
func BenchmarkE9_DesktopSync(b *testing.B) {
	m := expMetrics(b, "E9")
	srv := vnc.NewServer(320, 240)
	defer srv.Close()
	for i := 0; i < 2; i++ {
		cliConn, srvConn := netsim.Pipe(netsim.LAN)
		go srv.ServeConn(srvConn)
		cli, err := vnc.Attach(cliConn)
		if err != nil {
			b.Fatal(err)
		}
		defer cli.Close()
	}
	frame := make([]byte, 320*240*4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Change one tile per update: the steady-state desktop case.
		frame[(i%100)*16*4] = byte(i)
		if _, err := srv.Update(frame); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportMetrics(b, m, "rate_fps", "near_lag", "far_lag", "state_lag")
}

// BenchmarkE10_PostProcessingLoop times one local cutting-plane regeneration
// + render (the per-change cost at every site) and reports the sync-vs-image
// traffic comparison.
func BenchmarkE10_PostProcessingLoop(b *testing.B) {
	m := expMetrics(b, "E10")
	building, err := airflow.CarShowBuilding(2)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		building.Step()
	}
	field := building.Temperature()
	fb := render.NewFramebuffer(320, 240)
	cam := render.Camera{
		Eye: render.Vec3{X: 60, Y: 45, Z: 70}, Center: render.Vec3{X: 20, Y: 6, Z: 12},
		Up: render.Vec3{Y: 1}, FovY: 0.7854, Near: 0.1, Far: 1000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		meshes := viz.CutPlane(field, viz.AxisY, 2+i%8, nil)
		render.Render(fb, cam, &render.Scene{Meshes: meshes})
	}
	b.StopTimer()
	reportMetrics(b, m, "local_ms", "image_ms", "sync_kb", "image_kb")
}

// BenchmarkE11_SimulationFeedbackLoop times one building timestep (the unit
// of waiting between steer and effect) and reports the observed response
// time against the 60 s tolerance.
func BenchmarkE11_SimulationFeedbackLoop(b *testing.B) {
	m := expMetrics(b, "E11")
	building, err := airflow.CarShowBuilding(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		building.Step()
	}
	b.StopTimer()
	reportMetrics(b, m, "respond_s", "samples", "events")
}

// BenchmarkE12_CollaborationScaling times one collaborative steer round
// trip (param message over live TCP through the hub, acknowledged by the
// session) against a running PEPC simulation whose sample stream fans out
// to an audience of the given size at mixed delivery tiers. The §4.6 claim
// is that this cost stays flat as the audience grows: the hub absorbs the
// fan-out, the steerer pays for one message.
func BenchmarkE12_CollaborationScaling(b *testing.B) {
	m := expMetrics(b, "E12")
	for _, aud := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("aud%d", aud), func(b *testing.B) {
			sim, err := pepc.New(pepc.Params{Theta: 0.5, Dt: 0.005, Eps: 0.05, Seed: 7, Workers: 2})
			if err != nil {
				b.Fatal(err)
			}
			sim.AddPlasmaBall(96, pepc.Vec{}, 1, 0.05)
			h := hub.New(hub.Config{})
			defer h.Close()
			session, err := h.CreateSession(core.SessionConfig{Name: "bench-e12", AppName: "pepc"})
			if err != nil {
				b.Fatal(err)
			}
			adapter, err := pepc.NewSteered(session.Steered(), sim, pepc.SteerConfig{SampleStride: 25})
			if err != nil {
				b.Fatal(err)
			}
			// The app loop paces itself instead of calling adapter.Run: a
			// flat-out compute loop on a small benchmark box starves the
			// message path of CPU, and then the measurement is scheduler
			// contention, not collaboration cost. A paced loop is also the
			// realistic shape — a production step computes for milliseconds
			// between loop boundaries.
			st := session.Steered()
			appDone := make(chan struct{})
			go func() {
				defer close(appDone)
				defer session.Close()
				for step := int64(0); ; step++ {
					if st.Poll() == core.ControlStop {
						return
					}
					sim.Step()
					if step%25 == 0 {
						st.Emit(adapter.Sample(step))
					}
					time.Sleep(200 * time.Microsecond)
				}
			}()
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			go h.Serve(l)

			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			pilot, err := core.Dial(ctx, l.Addr().String(), core.AttachOptions{
				Name: "pilot", Session: "bench-e12", WantMaster: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer pilot.Close()
			audience := make([]*core.Client, aud)
			for i := range audience {
				opts := core.AttachOptions{Name: fmt.Sprintf("site-%02d", i), Session: "bench-e12"}
				if i%4 != 0 {
					opts.Tier = core.TierObserver
					opts.Subscriptions = []core.Subscription{core.ChannelSub("particles")}
				}
				if audience[i], err = core.Dial(ctx, l.Addr().String(), opts); err != nil {
					b.Fatal(err)
				}
				defer audience[i].Close()
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pilot.SetParamContext(ctx, "damping", 0.1+0.1*float64(i%2)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			session.QueueStop()
			<-appDone
		})
	}
	reportMetrics(b, m, "respond_ms_2", "respond_ms_32", "fanout_ratio_32")
}

// BenchmarkE13_VenueIntegration times one multicast video-frame fan-out to
// four venue members and reports the delivery metrics.
func BenchmarkE13_VenueIntegration(b *testing.B) {
	m := expMetrics(b, "E13")
	net2 := netsim.NewNetwork()
	g := net2.Group("bench-video")
	tx := g.Join("cam", netsim.Loopback)
	var members []*netsim.Member
	for i := 0; i < 4; i++ {
		members = append(members, g.Join(fmt.Sprintf("m%d", i), netsim.Loopback))
	}
	payload := make([]byte, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.Send(payload); err != nil {
			b.Fatal(err)
		}
		for _, mm := range members {
			if _, err := mm.Recv(time.Second); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	reportMetrics(b, m, "mcast_frames", "bridged_kb")
}
