// Hub scaling benchmarks (experiment H1, see DESIGN.md §9 and
// EXPERIMENTS.md): throughput of the sharded multi-session hub's batched
// sample fan-out. One benchmark op emits one sample in every hosted session;
// under protocol v2 the sample is serialized once per emission and the
// fan-out work per op is sessions × clients queued buffer handoffs,
// coalesced into batched writes by the per-shard writer pools.
// Delivered/dropped ratios are reported so the drop-on-slow-client policy
// is visible next to the timing. BenchmarkProtocolCodec/-Fanout in
// internal/core isolate the codec and encode-once costs themselves.
package main

import (
	"fmt"
	"net"
	"testing"

	"repro/internal/core"
	"repro/internal/hub"
)

// benchFanout runs the hub at a given shape and measures emission with the
// full fan-out machinery live.
func benchFanout(b *testing.B, sessions, clientsPer, shards int) {
	h := hub.New(hub.Config{Shards: shards})
	defer h.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go h.Serve(l)

	steered := make([]*core.Steered, sessions)
	for i := range steered {
		sess, err := h.CreateSession(core.SessionConfig{
			Name: fmt.Sprintf("bench-%03d", i), AppName: "bench", SampleQueue: 64,
		})
		if err != nil {
			b.Fatal(err)
		}
		steered[i] = sess.Steered()
	}
	// Clients drain through their own read loops; the client-side sample
	// queue evicts oldest, so no consumer goroutines are needed.
	clients := make([]*core.Client, 0, sessions*clientsPer)
	for i := 0; i < sessions; i++ {
		for j := 0; j < clientsPer; j++ {
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			c, err := core.Attach(conn, core.AttachOptions{
				Name:    fmt.Sprintf("c-%03d-%03d", i, j),
				Session: fmt.Sprintf("bench-%03d", i),
			})
			if err != nil {
				b.Fatal(err)
			}
			clients = append(clients, c)
		}
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	samples := make([]*core.Sample, sessions)
	for i := range samples {
		s := core.NewSample(0)
		s.Channels["x"] = core.Scalar(float64(i))
		samples[i] = s
	}

	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i, st := range steered {
			samples[i].Step = int64(n)
			st.Emit(samples[i])
		}
	}
	b.StopTimer()

	st := h.Stats()
	fanout := float64(st.SamplesEmitted) * float64(clientsPer)
	if fanout > 0 {
		b.ReportMetric(float64(st.SamplesDelivered)/fanout, "delivered_frac")
		b.ReportMetric(float64(st.SamplesDropped)/fanout, "dropped_frac")
	}
	b.ReportMetric(float64(sessions*clientsPer), "clients")
}

// BenchmarkHubFanout sweeps hub shapes up to the target scale of 16 sessions
// × 16 clients each. ns/op is the cost of emitting one sample in every
// session; multiply by clients for queued-write fan-out per op.
func BenchmarkHubFanout(b *testing.B) {
	for _, shape := range []struct{ sessions, clients, shards int }{
		{1, 16, 1},
		{4, 4, 4},
		{16, 16, 8},
	} {
		b.Run(fmt.Sprintf("%dx%d", shape.sessions, shape.clients), func(b *testing.B) {
			benchFanout(b, shape.sessions, shape.clients, shape.shards)
		})
	}
}

// BenchmarkSessionFanoutBaseline is the unhubbed comparison: one
// core.Session serving 16 clients with a writer goroutine per client. The
// hub's 1x16 case should be in the same regime; its 16x16 case is the load
// a single session cannot host at all (one listener, one registry, no
// shards).
func BenchmarkSessionFanoutBaseline(b *testing.B) {
	sess := core.NewSession(core.SessionConfig{Name: "baseline", SampleQueue: 64})
	defer sess.Close()
	st := sess.Steered()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go sess.Serve(l)
	clients := make([]*core.Client, 16)
	for i := range clients {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		if clients[i], err = core.Attach(conn, core.AttachOptions{Name: fmt.Sprintf("c%d", i)}); err != nil {
			b.Fatal(err)
		}
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	s := core.NewSample(0)
	s.Channels["x"] = core.Scalar(1)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		s.Step = int64(n)
		st.Emit(s)
	}
}
