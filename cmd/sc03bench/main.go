// Command sc03bench regenerates every evaluation artefact of "Application
// Steering in a Collaborative Environment" (SC2003): the behaviours of
// Figures 1–4 and the quantified claims of sections 2.4, 3.2–3.4 and
// 4.2–4.6, as experiments E1–E13 (see DESIGN.md and EXPERIMENTS.md).
//
// Usage:
//
//	sc03bench            # run everything
//	sc03bench -run E7    # run one experiment
//	sc03bench -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	runID := flag.String("run", "", "run only this experiment ID (e.g. E7)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("%-5s %-55s [%s]\n", e.ID, e.Title, e.Source)
		}
		return
	}

	todo := experiments.All
	if *runID != "" {
		e, ok := experiments.ByID(*runID)
		if !ok {
			fmt.Fprintf(os.Stderr, "no experiment %q; try -list\n", *runID)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	}

	failures := 0
	for _, e := range todo {
		fmt.Printf("=== %s: %s (%s)\n", e.ID, e.Title, e.Source)
		start := time.Now()
		res, err := e.Run()
		if err != nil {
			fmt.Printf("    ERROR: %v\n\n", err)
			failures++
			continue
		}
		for _, line := range res.Lines {
			fmt.Printf("    %s\n", line)
		}
		fmt.Printf("    -> %s  (%.1fs)\n\n", res.Verdict, time.Since(start).Seconds())
		if len(res.Verdict) >= 4 && res.Verdict[:4] == "FAIL" {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failures)
		os.Exit(1)
	}
}
