// Command steersim hosts one of the paper's workload simulations in-process
// on a steering hub: the sim runs its own loop against a session's Steered
// surface, and any number of clients attach over TCP to observe its sample
// stream, steer its registered parameters, pause/resume it, and request
// checkpoints.
//
// Usage:
//
//	steersim [-sim pepc|lb|mc|airflow] [-steer 127.0.0.1:8091]
//	         [-session NAME] [-size N] [-particles N]
//	         [-max-steps N] [-sample-stride N]
//	         [-journal-dir DIR] [-journal-fsync] [-checkpoint FILE]
//
// -sim selects the workload:
//
//	pepc     tree-code plasma (beam-intensity, beam-charge, beam-speed,
//	         beam-axis, damping); -particles sizes the initial plasma ball
//	lb       lattice-Boltzmann binary fluid (miscibility-g, run-label);
//	         -size is the lattice edge
//	mc       Ising Monte Carlo (temperature, field); -size is the lattice edge
//	airflow  room climatization (vent temperatures); -size is the room edge
//
// -checkpoint FILE composes the adapter's checkpoint hook with the journal:
// a steering client's checkpoint request serialises the sim's state
// atomically to FILE, and a restarted steersim pointed at the same FILE
// (and -journal-dir) resumes from the checkpointed step with the journaled
// parameter values, view and freshest sample replayed on top — the
// evict→reopen→replay→resume path. Checkpointing is supported for pepc and
// lb (the sims with serialisable state).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/hub"
	"repro/internal/sim/airflow"
	"repro/internal/sim/lb"
	"repro/internal/sim/mc"
	"repro/internal/sim/pepc"
)

// atomicSink returns a SteerConfig.Checkpoint hook that serialises to path
// via a temp file and rename, so a crash mid-write never corrupts the last
// good checkpoint.
func atomicSink(path string) func(write func(io.Writer) error) error {
	return func(write func(io.Writer) error) error {
		tmp := path + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if err := f.Close(); err != nil {
			os.Remove(tmp)
			return err
		}
		return os.Rename(tmp, path)
	}
}

func main() {
	simKind := flag.String("sim", "pepc", "workload: pepc, lb, mc or airflow")
	steerAddr := flag.String("steer", "127.0.0.1:8091", "steering hub address")
	sessionName := flag.String("session", "", "session name (default steersim-<sim>)")
	size := flag.Int("size", 16, "lattice/room edge for lb, mc and airflow")
	particles := flag.Int("particles", 500, "initial plasma-ball particle count (pepc)")
	maxSteps := flag.Int64("max-steps", 0, "stop after N steps (0 = run until stopped)")
	sampleStride := flag.Int64("sample-stride", 1, "emit a diagnostics sample every N steps")
	journalDir := flag.String("journal-dir", "", "durable session journal directory (empty disables journaling)")
	journalFsync := flag.Bool("journal-fsync", false, "fsync batched journal flushes")
	ckptPath := flag.String("checkpoint", "", "checkpoint file: written on request, restored on start when present (pepc, lb)")
	flag.Parse()

	name := *sessionName
	if name == "" {
		name = "steersim-" + *simKind
	}

	h := hub.New(hub.Config{JournalDir: *journalDir, JournalFsync: *journalFsync})
	defer h.Close()
	session, err := h.CreateSession(core.SessionConfig{Name: name, AppName: *simKind})
	if err != nil {
		log.Fatalf("steersim: %v", err)
	}

	// restored reports whether a prior run's checkpoint was picked up.
	var restored bool
	ckptIn := func(restore func(io.Reader) error) bool {
		if *ckptPath == "" {
			return false
		}
		f, err := os.Open(*ckptPath)
		if os.IsNotExist(err) {
			return false
		}
		if err != nil {
			log.Fatalf("steersim: open checkpoint: %v", err)
		}
		defer f.Close()
		if err := restore(f); err != nil {
			log.Fatalf("steersim: restore %s: %v", *ckptPath, err)
		}
		return true
	}

	var run func() error
	switch *simKind {
	case "pepc":
		var sim *pepc.Sim
		restored = ckptIn(func(r io.Reader) error {
			var err error
			sim, err = pepc.Restore(r)
			return err
		})
		if !restored {
			sim, err = pepc.New(pepc.Params{Theta: 0.5, Dt: 0.005, Eps: 0.05, Seed: 7})
			if err != nil {
				log.Fatalf("steersim: %v", err)
			}
			sim.AddPlasmaBall(*particles, pepc.Vec{}, 1, 0.05)
		}
		cfg := pepc.SteerConfig{SampleStride: *sampleStride, MaxSteps: *maxSteps}
		if *ckptPath != "" {
			cfg.Checkpoint = atomicSink(*ckptPath)
		}
		adapter, err := pepc.NewSteered(session.Steered(), sim, cfg)
		if err != nil {
			log.Fatalf("steersim: %v", err)
		}
		run = adapter.Run
	case "lb":
		var sim *lb.Sim
		restored = ckptIn(func(r io.Reader) error {
			var err error
			sim, err = lb.Restore(r)
			return err
		})
		if !restored {
			sim, err = lb.New(lb.Params{Nx: *size, Ny: *size, Nz: *size, Tau: 1, G: 0, Seed: 7})
			if err != nil {
				log.Fatalf("steersim: %v", err)
			}
		}
		cfg := lb.SteerConfig{Label: name, SampleStride: *sampleStride, MaxSteps: *maxSteps}
		if *ckptPath != "" {
			cfg.Checkpoint = atomicSink(*ckptPath)
		}
		adapter, err := lb.NewSteered(session.Steered(), sim, cfg)
		if err != nil {
			log.Fatalf("steersim: %v", err)
		}
		run = adapter.Run
	case "mc":
		if *ckptPath != "" {
			log.Fatal("steersim: -checkpoint is not supported for mc")
		}
		sim, err := mc.New(mc.Params{N: *size, T: 5, Seed: 7, Hot: true})
		if err != nil {
			log.Fatalf("steersim: %v", err)
		}
		adapter, err := mc.NewSteered(session.Steered(), sim,
			mc.SteerConfig{SampleStride: *sampleStride, MaxSweeps: *maxSteps})
		if err != nil {
			log.Fatalf("steersim: %v", err)
		}
		run = adapter.Run
	case "airflow":
		if *ckptPath != "" {
			log.Fatal("steersim: -checkpoint is not supported for airflow")
		}
		sim, err := airflow.New(airflow.Params{Nx: *size, Ny: *size, Nz: *size})
		if err != nil {
			log.Fatalf("steersim: %v", err)
		}
		adapter, err := airflow.NewSteered(session.Steered(), sim,
			airflow.SteerConfig{SampleStride: *sampleStride, MaxSteps: *maxSteps})
		if err != nil {
			log.Fatalf("steersim: %v", err)
		}
		run = adapter.Run
	default:
		log.Fatalf("steersim: unknown -sim %q (want pepc, lb, mc or airflow)", *simKind)
	}

	// Replay-on-restart: journaled parameter values, view and freshest
	// sample are applied before the sim's first step, on top of whatever
	// the checkpoint restored.
	if *journalDir != "" {
		if n, err := session.Recover(); err != nil {
			log.Printf("steersim: journal replay: %v", err)
		} else if n > 0 {
			fmt.Printf("steersim: revived %d journaled state frame(s)\n", n)
		}
	}

	l, err := net.Listen("tcp", *steerAddr)
	if err != nil {
		log.Fatalf("steersim: %v", err)
	}
	go h.Serve(l)

	done := make(chan error, 1)
	go func() {
		defer session.Close()
		done <- run()
	}()

	if restored {
		fmt.Printf("steersim: resumed %s from checkpoint %s\n", *simKind, *ckptPath)
	}
	fmt.Printf("steersim: hosting %s as session %q on %s (attach with core.Attach)\n",
		*simKind, name, l.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case err := <-done:
		if err != nil {
			log.Fatalf("steersim: %v", err)
		}
	case <-sig:
		session.QueueStop()
		<-done
	}
	stats := h.Stats()
	fmt.Printf("steersim: shutting down (%d clients, %d samples emitted, %d delivered)\n",
		stats.Clients, stats.SamplesEmitted, stats.SamplesDelivered)
}
