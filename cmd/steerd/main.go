// Command steerd hosts an OGSI-Lite grid-service container with a steerable
// demonstration simulation: the standing infrastructure of the RealityGrid
// scenario (Figure 1/2). It starts a Lattice-Boltzmann run, exposes a
// registry, a steering service and a visualization service over HTTP, and a
// core steering session over TCP for full clients.
//
// Usage:
//
//	steerd [-http :8090] [-steer :8091] [-lattice 16]
//
// Then, e.g.:
//
//	curl -s -X POST localhost:8090/services/steering/2 \
//	     -d '{"op":"steer","args":{"name":"miscibility-g","value":4.5}}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"

	"repro/internal/core"
	"repro/internal/ogsi"
	"repro/internal/sim/lb"
)

func main() {
	httpAddr := flag.String("http", "127.0.0.1:8090", "OGSI hosting address")
	steerAddr := flag.String("steer", "127.0.0.1:8091", "core steering session address")
	lattice := flag.Int("lattice", 16, "LB lattice edge size")
	flag.Parse()

	sim, err := lb.New(lb.Params{Nx: *lattice, Ny: *lattice, Nz: *lattice, Tau: 1, G: 0, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	session := core.NewSession(core.SessionConfig{Name: "steerd-lb3d", AppName: "lb3d"})
	st := session.Steered()
	if err := st.RegisterFloat("miscibility-g", 0, 0, 6,
		"Shan–Chen coupling: 0 mixes, >4 demixes", sim.SetCoupling); err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for step := int64(0); ; step++ {
			if st.PollBlocking(0) == core.ControlStop {
				return
			}
			sim.Step()
			s := core.NewSample(step)
			s.Channels["segregation"] = core.Scalar(sim.Segregation())
			st.Emit(s)
		}
	}()

	sl, err := net.Listen("tcp", *steerAddr)
	if err != nil {
		log.Fatal(err)
	}
	go session.Serve(sl)

	hosting := ogsi.NewHosting()
	hosting.RegisterFactory("registry", ogsi.RegistryFactory)
	hosting.RegisterFactory("steering", ogsi.SteeringFactory(session))
	hosting.RegisterFactory("viz", ogsi.VizFactory(session))
	hl, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		log.Fatal(err)
	}
	hosting.BaseURL = "http://" + hl.Addr().String()
	go http.Serve(hl, hosting)

	client := &ogsi.Client{}
	registry, err := client.Create(hosting.BaseURL, "registry", nil)
	if err != nil {
		log.Fatal(err)
	}
	steerGSH, _ := client.Create(hosting.BaseURL, "steering", nil)
	vizGSH, _ := client.Create(hosting.BaseURL, "viz", nil)
	client.Register(registry, ogsi.Entry{GSH: steerGSH, Type: "SteeringService", Keywords: []string{"lb3d"}}, 0)
	client.Register(registry, ogsi.Entry{GSH: vizGSH, Type: "VizService", Keywords: []string{"lb3d"}}, 0)

	fmt.Printf("steerd: OGSI hosting %s\n", hosting.BaseURL)
	fmt.Printf("steerd: registry     %s\n", registry)
	fmt.Printf("steerd: steering     %s\n", steerGSH)
	fmt.Printf("steerd: viz          %s\n", vizGSH)
	fmt.Printf("steerd: core session %s (attach with core.Attach)\n", sl.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("steerd: shutting down")
	session.QueueStop()
	session.Close()
	hosting.Close()
	wg.Wait()
}
