// Command steerd hosts an OGSI-Lite grid-service container with steerable
// demonstration simulations: the standing infrastructure of the RealityGrid
// scenario (Figure 1/2). It runs Lattice-Boltzmann sessions on a sharded
// steering hub, exposes a registry, steering services and visualization
// services over HTTP, and serves every steering session over one TCP
// listener for full clients.
//
// Usage:
//
//	steerd [-http :8090] [-steer :8091] [-lattice 16] [-sessions 1] [-shards 0]
//	       [-journal-dir DIR] [-journal-fsync]
//	       [-floor-policy fifo|priority|steal] [-master-lease 10s]
//	       [-fanout-workers 0] [-observer-interval 25ms]
//	       [-coalesce-bytes 0] [-tcp-nodelay] [-tcp-rcvbuf N] [-tcp-sndbuf N]
//	       [-tcp-keepalive 0]
//
// With the default -sessions 1 the daemon behaves exactly like the classic
// single-session steerd: one session named "steerd-lb3d" that clients may
// attach to without naming it. With -sessions N the hub hosts
// steerd-lb3d-00 … steerd-lb3d-N-1, and clients select one with
// core.AttachOptions.Session.
//
// With -journal-dir every session keeps a durable journal of its broadcast
// stream under DIR/<session>: clients attaching mid-run replay the recorded
// event and sample history, and a restarted steerd pointed at the same DIR
// revives each session's parameter values, view and freshest sample before
// the first simulation step. -journal-fsync trades append throughput for
// fsync'd batches.
//
// -floor-policy selects how contested master requests are arbitrated (FIFO
// queue, attach-priority queue, or FIFO plus administrative steal), and
// -master-lease bounds how long a silent master keeps the floor: a wedged
// or partitioned steering client loses it within 1.25× the lease and the
// next queued requester is granted it. 0 disables lease expiry.
//
// -fanout-workers sizes the per-session observer-tier relay pool (0 picks
// min(4, GOMAXPROCS)) and -observer-interval sets the observer coalescing
// cadence: observers receive freshest-wins sample batches on this interval
// instead of every frame (0 keeps the 25ms default, negative flushes
// immediately).
//
// Egress and socket tuning: -coalesce-bytes sets the vectored (writev)
// egress gather threshold — frames below it are copied into one shared
// iovec per batch, frames at or above it ride zero-copy (0 keeps the ~1KB
// default, negative disables gathering). -tcp-nodelay (on by default),
// -tcp-rcvbuf, -tcp-sndbuf and -tcp-keepalive tune every accepted
// connection at birth.
//
// Then, e.g.:
//
//	curl -s -X POST localhost:8090/services/steering/2 \
//	     -d '{"op":"steer","args":{"name":"miscibility-g","value":4.5}}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hub"
	"repro/internal/ogsi"
	"repro/internal/sim/lb"
)

func main() {
	httpAddr := flag.String("http", "127.0.0.1:8090", "OGSI hosting address")
	steerAddr := flag.String("steer", "127.0.0.1:8091", "steering hub address (all sessions)")
	lattice := flag.Int("lattice", 16, "LB lattice edge size")
	sessions := flag.Int("sessions", 1, "number of concurrent LB sessions to host")
	shards := flag.Int("shards", 0, "hub shard count (0 = auto)")
	journalDir := flag.String("journal-dir", "", "durable session journal directory (empty disables journaling)")
	journalFsync := flag.Bool("journal-fsync", false, "fsync batched journal flushes")
	floorPolicyFlag := flag.String("floor-policy", "fifo", "master floor arbitration: fifo, priority or steal")
	masterLease := flag.Duration("master-lease", 10*time.Second, "master lease; a master silent this long loses the floor (0 disables)")
	fanoutWorkers := flag.Int("fanout-workers", 0, "observer-tier relay workers per session (0 = auto, negative = 1)")
	observerInterval := flag.Duration("observer-interval", 0, "observer coalescing interval (0 = default 25ms, negative = flush immediately)")
	coalesceBytes := flag.Int("coalesce-bytes", 0, "vectored egress gather threshold: frames below it share one iovec (0 = default ~1KB, negative disables gathering)")
	tcpNoDelay := flag.Bool("tcp-nodelay", true, "set TCP_NODELAY on accepted connections (false re-enables Nagle)")
	tcpRcvBuf := flag.Int("tcp-rcvbuf", 0, "SO_RCVBUF for accepted connections in bytes (0 = OS default)")
	tcpSndBuf := flag.Int("tcp-sndbuf", 0, "SO_SNDBUF for accepted connections in bytes (0 = OS default)")
	tcpKeepAlive := flag.Duration("tcp-keepalive", 0, "TCP keep-alive probe period (0 = Go default 15s, negative disables)")
	flag.Parse()
	if *sessions < 1 {
		log.Fatal("steerd: -sessions must be >= 1")
	}
	floorPolicy, err := core.ParseFloorPolicy(*floorPolicyFlag)
	if err != nil {
		log.Fatalf("steerd: %v", err)
	}

	h := hub.New(hub.Config{
		Shards: *shards, JournalDir: *journalDir, JournalFsync: *journalFsync,
		SessionDefaults: core.SessionConfig{
			FloorPolicy: floorPolicy, MasterLease: *masterLease,
			FanoutWorkers: *fanoutWorkers, ObserverInterval: *observerInterval,
			CoalesceBytes: *coalesceBytes,
		},
		Sock: core.SockOpts{
			Delay:     !*tcpNoDelay,
			RcvBuf:    *tcpRcvBuf,
			SndBuf:    *tcpSndBuf,
			KeepAlive: *tcpKeepAlive,
		},
	})
	defer h.Close()
	hosting := ogsi.NewHosting()
	hosting.RegisterFactory("registry", ogsi.RegistryFactory)

	var wg sync.WaitGroup
	for i := 0; i < *sessions; i++ {
		name := "steerd-lb3d"
		if *sessions > 1 {
			name = fmt.Sprintf("steerd-lb3d-%02d", i)
		}
		sim, err := lb.New(lb.Params{Nx: *lattice, Ny: *lattice, Nz: *lattice, Tau: 1, G: 0, Seed: int64(1 + i)})
		if err != nil {
			log.Fatal(err)
		}
		session, err := h.CreateSession(core.SessionConfig{Name: name, AppName: "lb3d"})
		if err != nil {
			log.Fatal(err)
		}
		// The lb adapter registers the steering surface — "miscibility-g",
		// "sample-stride", "run-label" — and owns the poll/step/sample loop.
		adapter, err := lb.NewSteered(session.Steered(), sim, lb.SteerConfig{Label: name})
		if err != nil {
			log.Fatal(err)
		}

		// Replay-on-restart: with a journal configured, a prior run's
		// recorded parameter values (the coupling, the stride, the label),
		// view and freshest sample are applied before the first step.
		// Recover mutes the journal tap, so run-label's event echo is not
		// re-journaled on every restart.
		if *journalDir != "" {
			if n, err := session.Recover(); err != nil {
				log.Printf("steerd: %s: journal replay: %v", name, err)
			} else if n > 0 {
				fmt.Printf("steerd: %s: revived %d journaled state frame(s)\n", name, n)
			}
		}

		wg.Add(1)
		go func() {
			defer wg.Done()
			// Closing on a steered stop is what lets the hub evict the
			// ended session and free its name.
			defer session.Close()
			adapter.Run()
		}()

		// Per-session grid services; the first session also keeps the
		// classic factory names so existing tooling works unchanged.
		steerFactory, vizFactory := "steering-"+name, "viz-"+name
		if i == 0 {
			steerFactory, vizFactory = "steering", "viz"
		}
		hosting.RegisterFactory(steerFactory, ogsi.SteeringFactory(session))
		hosting.RegisterFactory(vizFactory, ogsi.VizFactory(session))
	}

	sl, err := net.Listen("tcp", *steerAddr)
	if err != nil {
		log.Fatal(err)
	}
	go h.Serve(sl)

	hl, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		log.Fatal(err)
	}
	hosting.BaseURL = "http://" + hl.Addr().String()
	go http.Serve(hl, hosting)

	client := &ogsi.Client{}
	registry, err := client.Create(hosting.BaseURL, "registry", nil)
	if err != nil {
		log.Fatal(err)
	}
	steerGSH, _ := client.Create(hosting.BaseURL, "steering", nil)
	vizGSH, _ := client.Create(hosting.BaseURL, "viz", nil)
	client.Register(registry, ogsi.Entry{GSH: steerGSH, Type: "SteeringService", Keywords: []string{"lb3d"}}, 0)
	client.Register(registry, ogsi.Entry{GSH: vizGSH, Type: "VizService", Keywords: []string{"lb3d"}}, 0)

	fmt.Printf("steerd: OGSI hosting %s\n", hosting.BaseURL)
	fmt.Printf("steerd: registry     %s\n", registry)
	fmt.Printf("steerd: steering     %s\n", steerGSH)
	fmt.Printf("steerd: viz          %s\n", vizGSH)
	fmt.Printf("steerd: steering hub %s hosting %d session(s) on %d shard(s) (attach with core.Attach)\n",
		sl.Addr(), *sessions, h.Stats().Shards)
	fmt.Printf("steerd: floor policy %v, master lease %v\n", floorPolicy, *masterLease)
	for _, name := range h.SessionNames() {
		fmt.Printf("steerd:   session %q on shard %d\n", name, h.ShardOf(name))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	stats := h.Stats()
	fmt.Printf("steerd: shutting down (%d sessions, %d clients, %d samples emitted, %d delivered, %d dropped)\n",
		stats.Sessions, stats.Clients, stats.SamplesEmitted, stats.SamplesDelivered, stats.SamplesDropped)
	fmt.Printf("steerd: floor activity: %d grants, %d denials, %d lease expiries, %d steals, %d handoffs, %d pending\n",
		stats.FloorGrants, stats.FloorDenials, stats.FloorExpiries, stats.FloorSteals, stats.FloorHandoffs, stats.FloorPending)
	fmt.Printf("steerd: delivery tiers: %d steerers, %d observers, %d frames filtered, %d relay publishes, %d coalesced\n",
		stats.TierSteerers, stats.TierObservers, stats.FramesFiltered, stats.RelayPublished, stats.RelayCoalesced)
	fmt.Printf("steerd: egress: %d vectored batches, %d buffered, %d frames coalesced (%d bytes), %d bytes zero-copy, ~%d syscalls saved\n",
		stats.EgressBatchesVectored, stats.EgressBatchesBuffered, stats.EgressFramesCoalesced,
		stats.EgressBytesCoalesced, stats.EgressBytesZeroCopy, stats.EgressSyscallsSaved)
	for _, name := range h.SessionNames() {
		if s, ok := h.Lookup(name); ok {
			s.QueueStop()
		}
	}
	h.Close()
	hosting.Close()
	wg.Wait()
}
