// Command steerload is the load/soak driver that proves the hub's numbers
// end-to-end: N sessions × M clients over real TCP, a configurable mix of
// steady broadcast fan-out, attach/detach churn, floor request storms and
// journal-replay late joins, with the steer→apply→observe round trip
// measured by zero-alloc log-bucketed histograms (internal/loadgen).
//
// By default it self-hosts an in-process hub (still dialed over loopback
// TCP — the full wire path) with one echo application per session, which is
// what `make soak` and the nightly CI job run:
//
//	steerload -sessions 4 -clients 64 -duration 20s -churn -floor -journal \
//	          -out BENCH_6.json
//
// With -observer-tier (local mode) the observer crowd attaches at
// core.TierObserver behind interest subscriptions — an -observer-interest
// fraction of it subscribed to the live echo channel, the rest to a channel
// that never fires — which is the `make soak-observer` / BENCH_8.json shape
// (1 steerer × 4096 observers at 1% interest); the fleet's attaches ramp
// over the first third of the run:
//
//	steerload -sessions 1 -clients 4096 -duration 20s -observer-tier \
//	          -observer-interest 0.01 -baseline BENCH_8.json
//
// Pointed at a live steerd it drives that instead; without the echo
// application the steer→observe distribution is empty, and the control-RTT,
// attach and floor histograms carry the result:
//
//	steerload -addr 127.0.0.1:8091 -sessions 1 -duration 30s
//
// The JSON it writes is a cmd/benchcompare baseline ({"meta": ..., "bench":
// {"LoadSteerObserve/p99": {"ns_op": ...}, ...}}), so runs diff against each
// other and against the committed BENCH_6.json. -baseline compares the run
// against such a file directly and exits 1 on regression:
//
//	steerload -duration 60s -baseline BENCH_6.json -max-regress 3.0
//
// -gate restricts which bench keys the comparison judges; the default gates
// the latency quantiles that stay stable across journal growth (attach p99
// legitimately rises as a journaled session's replay history accumulates).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"regexp"
	"strings"
	"time"

	"repro/internal/loadgen"
)

func main() {
	var sc loadgen.Scenario
	flag.StringVar(&sc.Addr, "addr", "", "live steerd address; empty self-hosts an in-process hub over loopback TCP")
	flag.IntVar(&sc.Sessions, "sessions", 4, "number of sessions to drive")
	flag.IntVar(&sc.ClientsPerSession, "clients", 64, "clients per session (1 steerer, contenders/churners per -floor/-churn, rest observers)")
	flag.DurationVar(&sc.Duration, "duration", 20*time.Second, "run length")
	flag.DurationVar(&sc.SteerInterval, "steer-interval", 10*time.Millisecond, "cadence of the steerer's SetParam round trips")
	flag.DurationVar(&sc.SampleInterval, "sample-interval", 5*time.Millisecond, "echo application's steady sample emission cadence")
	flag.IntVar(&sc.BurstChannels, "burst-channels", 2, "channels per emitted sample (≤16)")
	flag.IntVar(&sc.BurstLen, "burst-len", 64, "floats per burst channel")
	flag.IntVar(&sc.PayloadBytes, "payload-bytes", 0, "add one bulk channel of ~N bytes per sample (0 = off): the zero-copy writev egress workload")
	tcpNoDelay := flag.Bool("tcp-nodelay", true, "set TCP_NODELAY on client (and in-process hub) conns; false re-enables Nagle")
	flag.IntVar(&sc.TCPRcvBuf, "tcp-rcvbuf", 0, "SO_RCVBUF in bytes for client and in-process hub conns (0 = OS default)")
	flag.IntVar(&sc.TCPSndBuf, "tcp-sndbuf", 0, "SO_SNDBUF in bytes for client and in-process hub conns (0 = OS default)")
	flag.BoolVar(&sc.Churn, "churn", false, "cycle two clients per session through attach/detach (journal replay floods when -journal)")
	flag.BoolVar(&sc.Floor, "floor", false, "run two floor contenders per session against the held floor")
	flag.BoolVar(&sc.Journal, "journal", false, "journal in-process sessions in a temp dir (late joins replay history)")
	flag.BoolVar(&sc.ObserverTier, "observer-tier", false, "attach observers at the observer tier with interest subscriptions (local mode)")
	flag.Float64Var(&sc.ObserverInterest, "observer-interest", 0.01, "fraction of observers subscribed to the live echo channel")
	flag.DurationVar(&sc.ObserverInterval, "observer-interval", 0, "session observer coalescing interval (0 = core default, negative = immediate)")
	flag.IntVar(&sc.FanoutWorkers, "fanout-workers", 0, "session relay workers (0 = auto)")
	sessionNames := flag.String("session-names", "", "comma-separated session names to drive (remote mode; default derives steerd's naming)")
	flag.StringVar(&sc.Param, "param", "", `steered parameter in remote mode (default "miscibility-g")`)
	flag.Float64Var(&sc.ParamMin, "param-min", 0, "steered parameter range low (remote mode)")
	flag.Float64Var(&sc.ParamMax, "param-max", 6, "steered parameter range high (remote mode)")
	out := flag.String("out", "", "write the benchcompare-compatible JSON result here")
	baseline := flag.String("baseline", "", "compare against a committed baseline JSON and exit 1 on regression")
	maxRegress := flag.Float64("max-regress", 2.0, "regression factor tolerated vs -baseline (0 disables the gate)")
	gate := flag.String("gate", "^Load(SteerObserve|SteerAck|FloorDeny)/p99$", "regexp selecting which bench keys the -baseline gate judges")
	flag.Parse()
	sc.TCPDelay = !*tcpNoDelay
	if err := run(sc, *sessionNames, *out, *baseline, *maxRegress, *gate); err != nil {
		fmt.Fprintf(os.Stderr, "steerload: %v\n", err)
		os.Exit(1)
	}
}

func run(sc loadgen.Scenario, sessionNames, out, baseline string, maxRegress float64, gate string) error {
	if sessionNames != "" {
		for _, n := range strings.Split(sessionNames, ",") {
			if n = strings.TrimSpace(n); n != "" {
				sc.SessionNames = append(sc.SessionNames, n)
			}
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	res, err := loadgen.Run(ctx, sc)
	if err != nil {
		return err
	}
	fmt.Print(res)

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := res.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("steerload: wrote %s\n", out)
	}
	if baseline != "" && maxRegress > 0 {
		return compare(res, baseline, maxRegress, gate)
	}
	return nil
}

// compare diffs the run's gated bench keys against a committed baseline in
// cmd/benchcompare's format and errors when any regresses beyond the
// allowed factor. Keys missing from either side are reported but don't
// fail the gate: a shorter run may legitimately record no floor denials.
func compare(res *loadgen.Result, path string, maxRegress float64, gate string) error {
	re, err := regexp.Compile(gate)
	if err != nil {
		return fmt.Errorf("bad -gate: %w", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base struct {
		Bench map[string]struct {
			NsOp float64 `json:"ns_op"`
		} `json:"bench"`
	}
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}

	cur := res.Bench()
	var regressed []string
	checked := 0
	for key, want := range base.Bench {
		if !re.MatchString(key) {
			continue
		}
		got, ok := cur[key]
		if !ok {
			fmt.Printf("steerload: gate: %-24s missing from this run (skipped)\n", key)
			continue
		}
		checked++
		ratio := got["ns_op"] / want.NsOp
		verdict := "ok"
		if ratio > maxRegress {
			verdict = "REGRESSED"
			regressed = append(regressed, key)
		}
		fmt.Printf("steerload: gate: %-24s %12s -> %12s  (%.2fx, limit %.2fx) %s\n",
			key, time.Duration(want.NsOp), time.Duration(got["ns_op"]), ratio, maxRegress, verdict)
	}
	if checked == 0 {
		return fmt.Errorf("gate %q matched no baseline keys in %s", gate, path)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("p99 regression vs %s: %s", path, strings.Join(regressed, ", "))
	}
	return nil
}
