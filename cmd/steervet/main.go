// steervet machine-checks the hand-maintained invariants of the broadcast
// hot path (DESIGN.md §4.1): it loads the whole module and runs the
// internal/analysis suite —
//
//	framebuflife — FrameBuf Retain/Release balance on every path,
//	               use-after-Release, double-Release, and undocumented
//	               ownership-transferring escapes
//	hotpathalloc — no allocation-causing constructs or lock acquisitions in
//	               //steer:hotpath functions and their static callees
//	atomicfield  — a field accessed via sync/atomic anywhere is never read
//	               or written plainly anywhere in the module
//
// A finding fails the build the same way a broken test does: `make lint`
// runs steervet over ./... and exits nonzero on any diagnostic. Sanctioned
// exceptions carry a //steer:allow comment at the finding site; see
// internal/analysis and DESIGN.md §4.1 for the annotation vocabulary.
//
// Usage:
//
//	steervet [-run name[,name...]] [-list] [packages]
//
// The package arguments exist for go-vet-style invocation compatibility
// (`steervet ./...`); analysis is always module-wide, because the invariants
// are: a hot path spans packages and an atomic field's plain access may hide
// anywhere.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/framebuflife"
	"repro/internal/analysis/hotpathalloc"
)

func main() {
	run := flag.String("run", "", "comma-separated analyzer names to run (default all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	all := []*analysis.Analyzer{
		framebuflife.Analyzer,
		hotpathalloc.Analyzer,
		atomicfield.Analyzer,
	}
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}
	selected := all
	if *run != "" {
		selected = nil
		want := strings.Split(*run, ",")
		for _, name := range want {
			found := false
			for _, a := range all {
				if a.Name == strings.TrimSpace(name) {
					selected = append(selected, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "steervet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
		}
	}

	mod, err := analysis.Load()
	if err != nil {
		fmt.Fprintf(os.Stderr, "steervet: %v\n", err)
		os.Exit(2)
	}
	diags := mod.Run(selected...)
	for _, d := range diags {
		pos := mod.Fset.Position(d.Pos)
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "steervet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
