package main

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestParseBenchAveragesRuns(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.txt")
	text := `goos: linux
BenchmarkHubFanout/16x16-8   	   30000	     70000 ns/op	       256.0 clients	   55760 B/op	     472 allocs/op
BenchmarkHubFanout/16x16-8   	   30000	     80000 ns/op	       256.0 clients	   55760 B/op	     478 allocs/op
BenchmarkBroadcastHotPath/clients-4-16    1212322	   980.4 ns/op	       0 B/op	       0 allocs/op
some unrelated line
PASS
`
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	hub, ok := got["BenchmarkHubFanout/16x16"]
	if !ok {
		t.Fatalf("missing hub benchmark: %v", got)
	}
	if hub.NsOp != 75000 || hub.AllocsOp != 475 {
		t.Fatalf("average: ns=%v allocs=%v, want 75000/475", hub.NsOp, hub.AllocsOp)
	}
	hot, ok := got["BenchmarkBroadcastHotPath/clients-4"]
	if !ok {
		t.Fatalf("cpu-suffixed name not normalised: %v", got)
	}
	if hot.NsOp != 980.4 || hot.AllocsOp != 0 {
		t.Fatalf("hot path parse: %+v", hot)
	}
}

func TestParseBenchMalformedNumberIsError(t *testing.T) {
	_, err := parseBenchReader(strings.NewReader(
		"BenchmarkX-8   10   12..5 ns/op\n"))
	if err == nil {
		t.Fatal("parseBenchReader accepted a malformed ns/op value")
	}
	if !strings.Contains(err.Error(), "bad ns/op") {
		t.Errorf("error %q does not identify the bad field", err)
	}
}

func res(ns float64) Result { return Result{NsOp: ns} }

func baseline(bench map[string]Result) Baseline { return Baseline{Bench: bench} }

func TestCompareMissingBenchmarkFailsGate(t *testing.T) {
	base := baseline(map[string]Result{"BenchmarkGone": res(100)})
	fresh := map[string]Result{"BenchmarkOther": res(100)}

	regressed, problems := compare(base, fresh, 1.3, nil, io.Discard)
	if len(regressed) != 0 {
		t.Errorf("regressed = %v, want none", regressed)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "missing") {
		t.Fatalf("problems = %v, want one missing-benchmark problem", problems)
	}

	// Without gating, a missing benchmark is informational only.
	if _, problems := compare(base, fresh, 0, nil, io.Discard); len(problems) != 0 {
		t.Errorf("ungated problems = %v, want none", problems)
	}
}

func TestCompareZeroBaselineFailsGate(t *testing.T) {
	base := baseline(map[string]Result{"BenchmarkZero": res(0)})
	fresh := map[string]Result{"BenchmarkZero": res(50)}

	_, problems := compare(base, fresh, 1.3, nil, io.Discard)
	if len(problems) != 1 || !strings.Contains(problems[0], "unjudgeable") {
		t.Fatalf("problems = %v, want one unjudgeable-ns/op problem", problems)
	}
}

// The original gate computed ratio = new/base and checked ratio > max; a
// zero-vs-zero pair yields NaN, every comparison with NaN is false, and the
// gate passed silently. It must fail instead.
func TestCompareNaNRatioFailsGate(t *testing.T) {
	base := baseline(map[string]Result{"BenchmarkNaN": res(0)})
	fresh := map[string]Result{"BenchmarkNaN": res(0)}

	_, problems := compare(base, fresh, 1.3, nil, io.Discard)
	if len(problems) != 1 {
		t.Fatalf("problems = %v, want one (NaN ratio must not silently pass)", problems)
	}
}

func TestCompareNonFiniteInputsFailGate(t *testing.T) {
	for name, pair := range map[string][2]float64{
		"nan base": {math.NaN(), 100},
		"nan new":  {100, math.NaN()},
		"inf base": {math.Inf(1), 100},
		"inf new":  {100, math.Inf(1)},
		"neg base": {-5, 100},
		"neg new":  {100, -5},
	} {
		t.Run(name, func(t *testing.T) {
			base := baseline(map[string]Result{"BenchmarkB": res(pair[0])})
			fresh := map[string]Result{"BenchmarkB": res(pair[1])}
			if _, problems := compare(base, fresh, 1.3, nil, io.Discard); len(problems) != 1 {
				t.Errorf("problems = %v, want one", problems)
			}
		})
	}
}

func TestCompareFlagsRealRegression(t *testing.T) {
	base := baseline(map[string]Result{
		"BenchmarkFast": res(100),
		"BenchmarkSlow": res(100),
	})
	fresh := map[string]Result{
		"BenchmarkFast": res(110), // +10%: inside a 1.3x budget
		"BenchmarkSlow": res(200), // +100%: over budget
	}

	regressed, problems := compare(base, fresh, 1.3, nil, io.Discard)
	if len(problems) != 0 {
		t.Errorf("problems = %v, want none", problems)
	}
	if len(regressed) != 1 || regressed[0] != "BenchmarkSlow" {
		t.Errorf("regressed = %v, want [BenchmarkSlow]", regressed)
	}
}

// A -filter regexp must hide non-matching baseline keys entirely: a gated
// bench-only run against BENCH_8.json would otherwise fail on the steerload
// soak keys it cannot re-measure.
func TestCompareFilterExcludesBaselineKeys(t *testing.T) {
	base := baseline(map[string]Result{
		"BenchmarkBroadcastInterest/observers=1000/mode=obs-1pct": res(100),
		"LoadSteerObserve/p99": res(5000),
	})
	fresh := map[string]Result{
		"BenchmarkBroadcastInterest/observers=1000/mode=obs-1pct": res(105),
	}

	filter := mustCompile(t, "^BenchmarkBroadcastInterest/")
	regressed, problems := compare(base, fresh, 1.3, filter, io.Discard)
	if len(regressed) != 0 || len(problems) != 0 {
		t.Fatalf("regressed = %v, problems = %v, want none (Load key filtered out)", regressed, problems)
	}

	// Without the filter the soak key is missing from the fresh run and
	// the gate must refuse to pass.
	if _, problems := compare(base, fresh, 1.3, nil, io.Discard); len(problems) != 1 {
		t.Errorf("unfiltered problems = %v, want one missing-benchmark problem", problems)
	}
}

func mustCompile(t *testing.T, expr string) *regexp.Regexp {
	t.Helper()
	re, err := regexp.Compile(expr)
	if err != nil {
		t.Fatal(err)
	}
	return re
}

func TestCompareCleanRunPasses(t *testing.T) {
	base := baseline(map[string]Result{"BenchmarkOK": res(100)})
	fresh := map[string]Result{"BenchmarkOK": res(90)}

	var sb strings.Builder
	regressed, problems := compare(base, fresh, 1.3, nil, &sb)
	if len(regressed) != 0 || len(problems) != 0 {
		t.Fatalf("regressed = %v, problems = %v, want none", regressed, problems)
	}
	if !strings.Contains(sb.String(), "BenchmarkOK") {
		t.Errorf("table output missing benchmark row:\n%s", sb.String())
	}
}
