package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseBenchAveragesRuns(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.txt")
	text := `goos: linux
BenchmarkHubFanout/16x16-8   	   30000	     70000 ns/op	       256.0 clients	   55760 B/op	     472 allocs/op
BenchmarkHubFanout/16x16-8   	   30000	     80000 ns/op	       256.0 clients	   55760 B/op	     478 allocs/op
BenchmarkBroadcastHotPath/clients-4-16    1212322	   980.4 ns/op	       0 B/op	       0 allocs/op
some unrelated line
PASS
`
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	hub, ok := got["BenchmarkHubFanout/16x16"]
	if !ok {
		t.Fatalf("missing hub benchmark: %v", got)
	}
	if hub.NsOp != 75000 || hub.AllocsOp != 475 {
		t.Fatalf("average: ns=%v allocs=%v, want 75000/475", hub.NsOp, hub.AllocsOp)
	}
	hot, ok := got["BenchmarkBroadcastHotPath/clients-4"]
	if !ok {
		t.Fatalf("cpu-suffixed name not normalised: %v", got)
	}
	if hot.NsOp != 980.4 || hot.AllocsOp != 0 {
		t.Fatalf("hot path parse: %+v", hot)
	}
}
