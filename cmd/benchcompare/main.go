// benchcompare compares a fresh `go test -bench` run against the committed
// JSON baseline (BENCH_4.json): a dependency-free stand-in for benchstat,
// so `make bench-compare` works in a stdlib-only checkout and CI can
// archive the comparison next to the raw numbers.
//
//	go test -run '^$' -bench ... -benchmem ./... | tee bench-new.txt
//	go run ./cmd/benchcompare -baseline BENCH_4.json -new bench-new.txt
//
// Multiple -count runs of a benchmark are averaged. Benchmarks present on
// only one side are listed but not compared. With -max-regress set (e.g.
// 1.3), the exit status reports any compared benchmark whose ns/op grew by
// more than that factor — CI leaves it unset, because shared runners are
// too noisy to gate on. -filter restricts the comparison to baseline keys
// matching a regexp: BENCH_8.json mixes `go test -bench` keys with
// steerload soak keys, and a bench-only run must not trip the
// missing-from-fresh check on the soak half.
//
// A gated run refuses to pass on data it cannot actually judge: a baseline
// benchmark missing from the fresh output, a zero or negative baseline, or
// a NaN/Inf on either side is an error, not a silent pass — `ratio > max`
// is false for NaN, and a malformed BENCH_*.json must not green-light a
// regression.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Result is one benchmark's measurement, averaged over its runs.
type Result struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op,omitempty"`
	AllocsOp float64 `json:"allocs_op,omitempty"`
	runs     int
}

// Baseline is the committed BENCH_N.json shape: free-form metadata plus a
// name → result table (the "after" numbers of the PR that committed it).
type Baseline struct {
	Meta  map[string]any    `json:"meta,omitempty"`
	Bench map[string]Result `json:"bench"`
}

// benchLine matches standard testing output:
//
//	BenchmarkName/sub-8   1234  567 ns/op  89 B/op  4 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9.]+) B/op)?(?:.*?\s([0-9.]+) allocs/op)?`)

// parseBench reads benchmark output, averaging repeated runs per name.
func parseBench(path string) (map[string]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out, err := parseBenchReader(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func parseBenchReader(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		res := out[name]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad ns/op %q: %w", line, m[2], err)
		}
		res.NsOp += ns
		if m[3] != "" {
			b, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad B/op %q: %w", line, m[3], err)
			}
			res.BOp += b
		}
		if m[4] != "" {
			a, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad allocs/op %q: %w", line, m[4], err)
			}
			res.AllocsOp += a
		}
		res.runs++
		out[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, res := range out {
		n := float64(res.runs)
		res.NsOp /= n
		res.BOp /= n
		res.AllocsOp /= n
		out[name] = res
	}
	return out, nil
}

// compare writes the comparison table to w. It returns the benchmarks whose
// ns/op grew beyond maxRegress and — when gating (maxRegress > 0) — the
// problems that make the gate unjudgeable: baseline benchmarks missing from
// the fresh run, and non-finite or non-positive numbers whose ratio would
// bypass a `> max` check.
func compare(base Baseline, fresh map[string]Result, maxRegress float64, filter *regexp.Regexp, w io.Writer) (regressed, problems []string) {
	gating := maxRegress > 0
	names := make([]string, 0, len(base.Bench))
	for name := range base.Bench {
		if filter != nil && !filter.MatchString(name) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "%-55s %12s %12s %8s %10s\n", "benchmark", "base ns/op", "new ns/op", "delta", "allocs Δ")
	compared := 0
	for _, name := range names {
		b := base.Bench[name]
		n, ok := fresh[name]
		if !ok {
			fmt.Fprintf(w, "%-55s %12.1f %12s\n", name, b.NsOp, "(missing)")
			if gating {
				problems = append(problems, name+": in baseline but missing from the fresh run")
			}
			continue
		}
		if !isFinite(b.NsOp) || !isFinite(n.NsOp) || b.NsOp <= 0 || n.NsOp < 0 {
			fmt.Fprintf(w, "%-55s %12v %12v %8s\n", name, b.NsOp, n.NsOp, "(bad)")
			if gating {
				problems = append(problems, fmt.Sprintf("%s: unjudgeable ns/op (base %v, new %v)", name, b.NsOp, n.NsOp))
			}
			continue
		}
		compared++
		ratio := n.NsOp / b.NsOp
		fmt.Fprintf(w, "%-55s %12.1f %12.1f %+7.1f%% %5.1f→%.1f\n",
			name, b.NsOp, n.NsOp, (ratio-1)*100, b.AllocsOp, n.AllocsOp)
		if gating && ratio > maxRegress {
			regressed = append(regressed, name)
		}
	}
	extra := 0
	for name := range fresh {
		if _, ok := base.Bench[name]; !ok {
			extra++
		}
	}
	fmt.Fprintf(w, "compared %d benchmarks (%d only in the fresh run)\n", compared, extra)
	return regressed, problems
}

func isFinite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_4.json", "committed JSON baseline")
	newPath := flag.String("new", "", "fresh `go test -bench` output (text)")
	maxRegress := flag.Float64("max-regress", 0, "fail if ns/op grew by more than this factor (0 = report only)")
	filterExpr := flag.String("filter", "", "regexp restricting which baseline keys are compared (empty = all)")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: -new is required")
		os.Exit(2)
	}
	var filter *regexp.Regexp
	if *filterExpr != "" {
		var err error
		if filter, err = regexp.Compile(*filterExpr); err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: bad -filter: %v\n", err)
			os.Exit(2)
		}
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	fresh, err := parseBench(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(2)
	}

	regressed, problems := compare(base, fresh, *maxRegress, filter, os.Stdout)
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "benchcompare: %s\n", p)
	}
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "benchcompare: regression beyond %.2fx: %v\n", *maxRegress, regressed)
	}
	if len(regressed) > 0 || len(problems) > 0 {
		os.Exit(1)
	}
}
