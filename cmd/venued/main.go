// Command venued runs an Access Grid venue server with an HTTP admin
// surface, pre-creating the SC2003 showcase venue (section 4.6's venue
// server that stores shared-application state and supports bridges).
//
// Usage:
//
//	venued [-addr :8092]
//
// Then:
//
//	curl -s localhost:8092/venues
//	curl -s -X POST localhost:8092/venues -d '{"name":"Lobby","description":"..."}'
//	curl -s -X POST localhost:8092/venues/Lobby/enter -d '{"name":"brooke","site":"manchester"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"

	"repro/internal/accessgrid"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8092", "admin HTTP address")
	flag.Parse()

	vs := accessgrid.NewVenueServer()
	showcase, err := vs.CreateVenue("SC03 Showcase", "Phoenix show floor, collaborative steering demos")
	if err != nil {
		log.Fatal(err)
	}
	if err := showcase.RegisterApp(accessgrid.AppDescriptor{
		Name: "building-analysis", Type: "covise-session",
		Endpoint: "covise://hlrs/carshow.net",
	}); err != nil {
		log.Fatal(err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(l, accessgrid.AdminHandler(vs))
	fmt.Printf("venued: admin HTTP on http://%s (venue %q ready)\n", l.Addr(), showcase.Name)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("venued: shutting down")
}
