// Command vbrokerd runs a standalone VISIT collaboration multiplexer: the
// vbroker "that is part of the standard VISIT distribution" (section 3.3).
// The steered simulation connects to -addr as its visualization server; every
// visualization named with -viz receives all data; only the master (the
// first, or the one set with -master) serves steering receive-requests.
//
// Usage:
//
//	vbrokerd -addr :8093 -viz juelich=host1:7000 -viz phoenix=host2:7000 [-master phoenix]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"

	"repro/internal/visit"
)

// vizFlags collects repeated -viz name=addr flags.
type vizFlags []string

func (v *vizFlags) String() string { return strings.Join(*v, ",") }

// Set implements flag.Value.
func (v *vizFlags) Set(s string) error {
	if !strings.Contains(s, "=") {
		return fmt.Errorf("-viz wants name=addr, got %q", s)
	}
	*v = append(*v, s)
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8093", "simulation-facing listen address")
	password := flag.String("password", "", "connection password required from the simulation")
	vizPassword := flag.String("viz-password", "", "password presented to visualization servers")
	master := flag.String("master", "", "initial master visualization (default: first -viz)")
	var vizs vizFlags
	flag.Var(&vizs, "viz", "visualization endpoint as name=addr (repeatable)")
	flag.Parse()

	broker := visit.NewBroker(visit.BrokerConfig{Password: *password})
	defer broker.Close()
	for _, spec := range vizs {
		name, target, _ := strings.Cut(spec, "=")
		if err := broker.AttachViz(name, visit.TCPDialer(target), *vizPassword); err != nil {
			log.Fatalf("vbrokerd: attach %s: %v", spec, err)
		}
		fmt.Printf("vbrokerd: attached visualization %q at %s\n", name, target)
	}
	if *master != "" {
		if err := broker.SetMaster(*master); err != nil {
			log.Fatal(err)
		}
	}
	if m := broker.Master(); m != "" {
		fmt.Printf("vbrokerd: master is %q\n", m)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	go broker.Serve(l)
	fmt.Printf("vbrokerd: simulations connect to %s\n", l.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	st := broker.Stats()
	fmt.Printf("vbrokerd: %d sends in, %d fanned, %d steering recvs; shutting down\n",
		st.SendsIn, st.SendsFanned, st.RecvsForwarded)
}
