package vnc

import (
	"fmt"
	"hash/crc32"
	"net"
	"sync"

	"repro/internal/wire"
)

// Client is one viewer of a shared framebuffer.
type Client struct {
	conn net.Conn
	enc  *wire.Encoder

	mu       sync.Mutex
	w, h     int
	pix      []byte
	frameSeq int32
	frames   uint64
	readErr  error

	frameCh chan int32
	once    sync.Once
	done    chan struct{}
}

// Attach starts a viewer on an established connection; it returns after the
// geometry frame has been received, with the tile stream consumed on a
// background goroutine.
func Attach(conn net.Conn) (*Client, error) {
	c := &Client{
		conn:    conn,
		enc:     wire.NewEncoder(conn),
		frameCh: make(chan int32, 64),
		done:    make(chan struct{}),
	}
	dec := wire.NewDecoder(conn)
	init, err := dec.Expect(tagInit)
	if err != nil {
		conn.Close()
		return nil, err
	}
	dims, err := init.AsInt64s()
	if err != nil || len(dims) != 2 {
		conn.Close()
		return nil, fmt.Errorf("vnc: malformed init frame")
	}
	c.w, c.h = int(dims[0]), int(dims[1])
	c.pix = make([]byte, c.w*c.h*4)

	go c.readLoop(dec)
	return c, nil
}

// readLoop applies tile updates.
func (c *Client) readLoop(dec *wire.Decoder) {
	var pendingHdr []int64
	for {
		m, err := dec.Next()
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.mu.Unlock()
			c.Close()
			return
		}
		switch m.Header.Tag {
		case tagTileHdr:
			hdr, err := m.AsInt64s()
			if err == nil && len(hdr) == 6 {
				pendingHdr = hdr
			}
		case tagTileData:
			if pendingHdr == nil || len(m.Blobs) != 1 {
				continue
			}
			x, y := int(pendingHdr[0]), int(pendingHdr[1])
			tw, th := int(pendingHdr[2]), int(pendingHdr[3])
			enc := int32(pendingHdr[4])
			data, err := decompressTile(enc, m.Blobs[0], tw*th*4)
			if err != nil {
				continue
			}
			c.mu.Lock()
			applyTile(c.pix, c.w, x, y, tw, th, data)
			c.mu.Unlock()
			pendingHdr = nil
		case tagFrameEnd:
			fe, err := m.AsInt64s()
			if err != nil || len(fe) != 2 {
				continue
			}
			c.mu.Lock()
			c.frameSeq = int32(fe[0])
			c.frames++
			c.mu.Unlock()
			select {
			case c.frameCh <- int32(fe[0]):
			default:
			}
		}
	}
}

// Size returns the framebuffer geometry.
func (c *Client) Size() (w, h int) { return c.w, c.h }

// Framebuffer returns a copy of the current local framebuffer.
func (c *Client) Framebuffer() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.pix...)
}

// Checksum hashes the current framebuffer; two viewers showing the same
// content agree.
func (c *Client) Checksum() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return crc32.ChecksumIEEE(c.pix)
}

// FrameSeq returns the sequence number of the last completed frame.
func (c *Client) FrameSeq() int32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frameSeq
}

// Frames returns the count of completed frames received.
func (c *Client) Frames() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frames
}

// FrameUpdates exposes completion notifications (frame sequence numbers).
func (c *Client) FrameUpdates() <-chan int32 { return c.frameCh }

// SendPointer forwards a pointer event to the application side.
func (c *Client) SendPointer(x, y int, buttons int32) error {
	return c.enc.Int32s(tagInput, []int32{int32(EventPointer), int32(x), int32(y), buttons})
}

// SendKey forwards a key event.
func (c *Client) SendKey(keysym int32, down bool) error {
	d := int32(0)
	if down {
		d = 1
	}
	return c.enc.Int32s(tagInput, []int32{int32(EventKey), keysym, 0, d})
}

// Err returns the terminal read error, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readErr
}

// Close detaches the viewer.
func (c *Client) Close() error {
	c.once.Do(func() {
		close(c.done)
		c.conn.Close()
	})
	return nil
}
