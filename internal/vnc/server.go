package vnc

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/wire"
)

// Server shares one framebuffer with any number of viewers.
type Server struct {
	w, h int

	mu       sync.Mutex
	current  []byte // last published framebuffer (RGBA)
	frameSeq int32
	viewers  map[*viewer]struct{}
	onInput  func(Event)
	stats    ServerStats
	closed   bool
}

// ServerStats counts protocol activity; the bandwidth experiments read
// BytesSent.
type ServerStats struct {
	Updates     uint64
	TilesSent   uint64
	BytesSent   uint64
	Viewers     uint64
	InputEvents uint64
}

// viewer is one attached client connection.
type viewer struct {
	conn net.Conn
	enc  *wire.Encoder
	emu  sync.Mutex
}

// NewServer creates a server for a w×h RGBA framebuffer, initially black.
func NewServer(w, h int) *Server {
	if w <= 0 || h <= 0 || w%1 != 0 {
		panic(fmt.Sprintf("vnc: bad framebuffer size %dx%d", w, h))
	}
	return &Server{
		w: w, h: h,
		current: make([]byte, w*h*4),
		viewers: make(map[*viewer]struct{}),
	}
}

// SetInputHandler installs the callback receiving viewer input events.
func (s *Server) SetInputHandler(fn func(Event)) {
	s.mu.Lock()
	s.onInput = fn
	s.mu.Unlock()
}

// Stats returns a copy of the counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Serve accepts viewers from a listener.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.ServeConn(conn)
	}
}

// ServeConn attaches one viewer: sends the full current frame, then streams
// updates and consumes input events until the connection dies.
func (s *Server) ServeConn(conn net.Conn) error {
	v := &viewer{conn: conn, enc: wire.NewEncoder(conn)}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return fmt.Errorf("vnc: server closed")
	}
	s.stats.Viewers++
	snapshot := append([]byte(nil), s.current...)
	seq := s.frameSeq
	s.viewers[v] = struct{}{}
	s.mu.Unlock()

	// Initial state: geometry + every tile of the current frame.
	if err := v.enc.Int32s(tagInit, []int32{int32(s.w), int32(s.h)}); err != nil {
		s.detach(v)
		return err
	}
	if err := s.sendFullFrame(v, snapshot, seq); err != nil {
		s.detach(v)
		return err
	}

	// Read loop: input events.
	dec := wire.NewDecoder(conn)
	for {
		m, err := dec.Next()
		if err != nil {
			s.detach(v)
			return err
		}
		if m.Header.Tag != tagInput {
			continue
		}
		ints, err := m.AsInt64s()
		if err != nil || len(ints) != 4 {
			continue
		}
		s.mu.Lock()
		fn := s.onInput
		s.stats.InputEvents++
		s.mu.Unlock()
		if fn != nil {
			fn(Event{Kind: EventKind(ints[0]), A: int32(ints[1]), B: int32(ints[2]), C: int32(ints[3])})
		}
	}
}

// sendFullFrame ships every tile of a frame to one viewer.
func (s *Server) sendFullFrame(v *viewer, pix []byte, seq int32) error {
	tilesX := (s.w + TileSize - 1) / TileSize
	tilesY := (s.h + TileSize - 1) / TileSize
	sent := int32(0)
	for ty := 0; ty < tilesY; ty++ {
		for tx := 0; tx < tilesX; tx++ {
			if err := s.sendTile(v, pix, tx, ty, seq); err != nil {
				return err
			}
			sent++
		}
	}
	v.emu.Lock()
	defer v.emu.Unlock()
	return v.enc.Int32s(tagFrameEnd, []int32{seq, sent})
}

// sendTile encodes and ships one tile.
func (s *Server) sendTile(v *viewer, pix []byte, tx, ty int, seq int32) error {
	x, y, tw, th := tileRect(tx, ty, s.w, s.h)
	raw := extractTile(pix, s.w, x, y, tw, th)
	enc, data := compressTile(raw)

	v.emu.Lock()
	defer v.emu.Unlock()
	if err := v.enc.Int32s(tagTileHdr, []int32{int32(x), int32(y), int32(tw), int32(th), enc, seq}); err != nil {
		return err
	}
	if err := v.enc.Bytes(tagTileData, data); err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.TilesSent++
	s.stats.BytesSent += uint64(len(data)) + 16 + 24 + 16 + 4 // payload + headers
	s.mu.Unlock()
	return nil
}

// Update publishes a new framebuffer: dirty tiles are computed against the
// previous frame and broadcast to every viewer. It returns the number of
// dirty tiles. pix must be w*h*4 bytes.
func (s *Server) Update(pix []byte) (int, error) {
	if len(pix) != s.w*s.h*4 {
		return 0, fmt.Errorf("vnc: framebuffer %d bytes, want %d", len(pix), s.w*s.h*4)
	}
	s.mu.Lock()
	prev := s.current
	s.current = append([]byte(nil), pix...)
	s.frameSeq++
	seq := s.frameSeq
	s.stats.Updates++
	viewers := make([]*viewer, 0, len(s.viewers))
	for v := range s.viewers {
		viewers = append(viewers, v)
	}
	s.mu.Unlock()

	// Dirty-tile scan.
	tilesX := (s.w + TileSize - 1) / TileSize
	tilesY := (s.h + TileSize - 1) / TileSize
	type coord struct{ tx, ty int }
	var dirty []coord
	for ty := 0; ty < tilesY; ty++ {
		for tx := 0; tx < tilesX; tx++ {
			x, y, tw, th := tileRect(tx, ty, s.w, s.h)
			if tileDirty(prev, pix, s.w, x, y, tw, th) {
				dirty = append(dirty, coord{tx, ty})
			}
		}
	}

	for _, v := range viewers {
		failed := false
		for _, d := range dirty {
			if err := s.sendTile(v, pix, d.tx, d.ty, seq); err != nil {
				failed = true
				break
			}
		}
		if !failed {
			v.emu.Lock()
			err := v.enc.Int32s(tagFrameEnd, []int32{seq, int32(len(dirty))})
			v.emu.Unlock()
			failed = err != nil
		}
		if failed {
			s.detach(v)
		}
	}
	return len(dirty), nil
}

func (s *Server) detach(v *viewer) {
	s.mu.Lock()
	delete(s.viewers, v)
	s.mu.Unlock()
	v.conn.Close()
}

// ViewerCount reports attached viewers.
func (s *Server) ViewerCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.viewers)
}

// Close detaches all viewers.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	viewers := make([]*viewer, 0, len(s.viewers))
	for v := range s.viewers {
		viewers = append(viewers, v)
	}
	s.viewers = make(map[*viewer]struct{})
	s.mu.Unlock()
	for _, v := range viewers {
		v.conn.Close()
	}
}
