package vnc

import (
	"context"
	"fmt"
	"hash/crc32"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/pixel"
)

// This file is the hub-native desktop tier: the same 16×16 dirty-tile
// protocol, but published once per update as a bulk blob on a steering
// session instead of once per viewer over bespoke connections. The session
// engine supplies the fan-out (refcounted frame buffers, vectored egress,
// freshest-wins rings for slow viewers) and the audience bookkeeping the
// bespoke server tracks by hand. Input events stay on the bespoke path —
// the hub tier is the E12 observer shape, display-only by construction.

// DesktopStream is the blob stream name tile updates are published on.
const DesktopStream = "desktop"

// Publisher shares one framebuffer with every subscribed session client.
type Publisher struct {
	session *core.Session
	st      *core.Steered
	w, h    int

	mu      sync.Mutex
	current []byte // last published framebuffer (RGBA)
	rekey   pixel.Rekeyer
	stats   PublisherStats
}

// PublisherStats counts hub-tier publish activity.
type PublisherStats struct {
	Updates   uint64
	Keyframes uint64
	TilesSent uint64
	BytesSent uint64
}

// NewPublisher binds a w×h RGBA desktop (initially black) to a session.
func NewPublisher(session *core.Session, w, h int) (*Publisher, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("vnc: bad framebuffer size %dx%d", w, h)
	}
	return &Publisher{
		session: session,
		st:      session.Steered(),
		w:       w, h: h,
		current: make([]byte, w*h*4),
	}, nil
}

// Update publishes a new framebuffer as one tile blob: the dirty tiles
// against the previous frame, or every tile when the audience grew or the
// keyframe cadence came due (late joiners and gapped viewers re-anchor on
// full-coverage updates). It returns the number of dirty tiles. An update
// with no dirty tiles is still published — an empty one keeps the viewers'
// delta chains unbroken. pix must be w*h*4 bytes.
func (p *Publisher) Update(pix []byte) (int, error) {
	if len(pix) != p.w*p.h*4 {
		return 0, fmt.Errorf("vnc: framebuffer %d bytes, want %d", len(pix), p.w*p.h*4)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	prev := p.current
	p.current = append([]byte(nil), pix...)
	seq, key := p.rekey.Next(p.session.ClientCount())

	tilesX := (p.w + TileSize - 1) / TileSize
	tilesY := (p.h + TileSize - 1) / TileSize
	dirty := 0
	var payload []byte
	var err error
	for ty := 0; ty < tilesY; ty++ {
		for tx := 0; tx < tilesX; tx++ {
			x, y, tw, th := tileRect(tx, ty, p.w, p.h)
			isDirty := tileDirty(prev, pix, p.w, x, y, tw, th)
			if isDirty {
				dirty++
			}
			if !isDirty && !key {
				continue
			}
			payload, err = pixel.AppendTile(payload, pixel.Tile{
				X: x, Y: y, W: tw, H: th,
				Pix: extractTile(pix, p.w, x, y, tw, th),
			})
			if err != nil {
				return dirty, err
			}
			p.stats.TilesSent++
		}
	}

	var flags int64
	if key {
		flags = pixel.FlagKey
		p.stats.Keyframes++
	}
	p.st.EmitBlob(&core.Blob{
		Stream: DesktopStream, Seq: seq, Encoding: pixel.EncTiles,
		Width: p.w, Height: p.h, Flags: flags, Data: payload,
	})
	p.stats.Updates++
	p.stats.BytesSent += uint64(len(payload))
	return dirty, nil
}

// Stats returns a copy of the counters.
func (p *Publisher) Stats() PublisherStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Viewer consumes a hub-published desktop: the display half of a vnc client
// attached through a steering session.
type Viewer struct {
	cc *core.Client

	mu       sync.Mutex
	w, h     int
	pix      []byte
	anchor   pixel.Anchor
	frameSeq uint64
	frames   uint64
	tiles    uint64
	rxBytes  uint64
	readErr  error

	wg sync.WaitGroup
}

// AttachViewer joins a session as a desktop viewer, subscribing to the tile
// stream on top of whatever options the caller sets (session name on a hub,
// delivery tier, client name).
func AttachViewer(ctx context.Context, conn net.Conn, opts core.AttachOptions) (*Viewer, error) {
	if opts.BlobBuffer == 0 {
		opts.BlobBuffer = 8
	}
	opts.Subscriptions = append(opts.Subscriptions, core.ChannelSub(DesktopStream))
	cc, err := core.AttachContext(ctx, conn, opts)
	if err != nil {
		return nil, err
	}
	v := &Viewer{cc: cc}
	v.wg.Add(1)
	go v.readLoop()
	return v, nil
}

// Core exposes the underlying steering client.
func (v *Viewer) Core() *core.Client { return v.cc }

func (v *Viewer) readLoop() {
	defer v.wg.Done()
	for {
		select {
		case b := <-v.cc.Blobs():
			v.apply(b)
		case <-v.cc.Done():
			v.mu.Lock()
			v.readErr = v.cc.Err()
			v.mu.Unlock()
			return
		}
	}
}

// apply decodes one tile blob into the local framebuffer. Partial updates
// only apply on an unbroken sequence; after a gap (ring eviction on a slow
// link) the viewer holds its last good frame until a full-coverage update
// re-anchors it.
func (v *Viewer) apply(b *core.Blob) {
	if b.Stream != DesktopStream || b.Encoding != pixel.EncTiles {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	anchorEnc := pixel.EncTiles
	if b.Flags&pixel.FlagKey != 0 {
		anchorEnc = pixel.EncKey
	}
	if !v.anchor.Accept(b.Seq, anchorEnc) {
		return
	}
	if v.w != b.Width || v.h != b.Height {
		v.w, v.h = b.Width, b.Height
		v.pix = make([]byte, v.w*v.h*4)
	}
	err := pixel.DecodeTiles(b.Data, func(t pixel.Tile) error {
		v.tiles++
		return applyTile(v.pix, v.w, t.X, t.Y, t.W, t.H, t.Pix)
	})
	if err != nil {
		v.anchor = pixel.Anchor{} // hold until the next full update
		return
	}
	v.frameSeq = b.Seq
	v.frames++
	v.rxBytes += uint64(len(b.Data))
}

// Framebuffer returns a copy of the last decoded frame.
func (v *Viewer) Framebuffer() []byte {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]byte(nil), v.pix...)
}

// Checksum hashes the last decoded frame.
func (v *Viewer) Checksum() uint32 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return crc32.ChecksumIEEE(v.pix)
}

// Frames returns the number of tile updates decoded.
func (v *Viewer) Frames() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.frames
}

// FrameSeq returns the sequence number of the last decoded update.
func (v *Viewer) FrameSeq() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.frameSeq
}

// RxBytes returns the payload bytes received.
func (v *Viewer) RxBytes() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.rxBytes
}

// Err returns the terminal read error, if any.
func (v *Viewer) Err() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.readErr
}

// Close leaves the session.
func (v *Viewer) Close() error {
	err := v.cc.Close()
	v.wg.Wait()
	return err
}
