package vnc

import (
	"bytes"
	"net"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/render"
)

// startShared stands up a server with n attached viewers over loopback TCP.
func startShared(t *testing.T, w, h, n int) (*Server, []*Client) {
	t.Helper()
	srv := NewServer(w, h)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close(); l.Close() })

	clients := make([]*Client, n)
	for i := range clients {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c, err := Attach(conn)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		clients[i] = c
	}
	// Initial full frames.
	for _, c := range clients {
		waitFrames(t, c, 1)
	}
	return srv, clients
}

func waitFrames(t *testing.T, c *Client, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Frames() < n {
		if time.Now().After(deadline) {
			t.Fatalf("viewer stuck at %d frames, want %d", c.Frames(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// testFrame renders a deterministic scene into raw RGBA bytes.
func testFrame(tint uint8) []byte {
	fb := render.NewFramebuffer(96, 64)
	fb.Clear(render.Color{R: tint, G: 20, B: 40, A: 255})
	for i := 0; i < 30; i++ {
		fb.Set(10+i, 20, render.White)
	}
	return fb.Pix
}

func TestInitialFrameMatches(t *testing.T) {
	srv, clients := startShared(t, 96, 64, 1)
	if _, err := srv.Update(testFrame(100)); err != nil {
		t.Fatal(err)
	}
	waitFrames(t, clients[0], 2)
	if !bytes.Equal(clients[0].Framebuffer(), testFrame(100)) {
		t.Fatal("viewer framebuffer diverged")
	}
}

func TestDirtyTilesOnly(t *testing.T) {
	srv, clients := startShared(t, 96, 64, 1)
	frame := testFrame(100)
	srv.Update(frame)
	waitFrames(t, clients[0], 2)
	before := srv.Stats().BytesSent

	// Single-pixel change: exactly one dirty tile.
	frame2 := append([]byte(nil), frame...)
	frame2[0] = 255
	dirty, err := srv.Update(frame2)
	if err != nil {
		t.Fatal(err)
	}
	if dirty != 1 {
		t.Fatalf("dirty tiles = %d, want 1", dirty)
	}
	waitFrames(t, clients[0], 3)
	delta := srv.Stats().BytesSent - before
	full := uint64(96 * 64 * 4)
	if delta >= full/4 {
		t.Fatalf("single-pixel update cost %d bytes (full frame %d): diffing broken", delta, full)
	}
	if !bytes.Equal(clients[0].Framebuffer(), frame2) {
		t.Fatal("viewer missed the pixel change")
	}
}

func TestNoChangeNoTiles(t *testing.T) {
	srv, clients := startShared(t, 96, 64, 1)
	frame := testFrame(42)
	srv.Update(frame)
	waitFrames(t, clients[0], 2)
	dirty, _ := srv.Update(frame)
	if dirty != 0 {
		t.Fatalf("identical frame marked %d tiles dirty", dirty)
	}
}

func TestMultipleViewersConverge(t *testing.T) {
	srv, clients := startShared(t, 96, 64, 3)
	srv.Update(testFrame(7))
	for _, c := range clients {
		waitFrames(t, c, 2)
	}
	want := clients[0].Checksum()
	for i, c := range clients[1:] {
		if c.Checksum() != want {
			t.Fatalf("viewer %d checksum mismatch", i+1)
		}
	}
}

func TestLateJoinerGetsFullFrame(t *testing.T) {
	srv, clients := startShared(t, 96, 64, 1)
	srv.Update(testFrame(200))
	waitFrames(t, clients[0], 2)

	// New viewer attaches after updates happened.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	late, err := Attach(conn)
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	waitFrames(t, late, 1)
	if late.Checksum() != clients[0].Checksum() {
		t.Fatal("late joiner sees different content")
	}
}

func TestInputEventsReachApplication(t *testing.T) {
	srv, clients := startShared(t, 96, 64, 1)
	events := make(chan Event, 8)
	srv.SetInputHandler(func(e Event) { events <- e })

	if err := clients[0].SendPointer(12, 34, 1); err != nil {
		t.Fatal(err)
	}
	if err := clients[0].SendKey(0x20, true); err != nil {
		t.Fatal(err)
	}
	for _, want := range []Event{
		{Kind: EventPointer, A: 12, B: 34, C: 1},
		{Kind: EventKey, A: 0x20, C: 1},
	} {
		select {
		case got := <-events:
			if got != want {
				t.Fatalf("event = %+v, want %+v", got, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("input event lost")
		}
	}
}

func TestViewerDisconnectSurvived(t *testing.T) {
	srv, clients := startShared(t, 96, 64, 2)
	clients[0].Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.ViewerCount() > 1 {
		if time.Now().After(deadline) {
			t.Fatal("dead viewer never detached")
		}
		srv.Update(testFrame(byte(time.Now().UnixNano())))
		time.Sleep(5 * time.Millisecond)
	}
	before := clients[1].Frames()
	srv.Update(testFrame(99))
	waitFrames(t, clients[1], before+1)
}

func TestBadFramebufferSize(t *testing.T) {
	srv := NewServer(32, 32)
	if _, err := srv.Update(make([]byte, 10)); err == nil {
		t.Fatal("wrong-size framebuffer accepted")
	}
}

func TestBandwidthScalesWithChange(t *testing.T) {
	// The E12 precondition: vnc bytes grow with changed screen area.
	srv, clients := startShared(t, 128, 128, 1)
	base := make([]byte, 128*128*4)
	srv.Update(base)
	waitFrames(t, clients[0], 2)

	cost := func(area int) uint64 {
		before := srv.Stats().BytesSent
		frame := append([]byte(nil), base...)
		for y := 0; y < area; y++ {
			for x := 0; x < area; x++ {
				i := (y*128 + x) * 4
				frame[i] = byte(x * y)
				frame[i+1] = byte(x + y)
			}
		}
		srv.Update(frame)
		srv.Update(base) // restore
		return srv.Stats().BytesSent - before
	}
	small := cost(16)
	large := cost(96)
	if large < 4*small {
		t.Fatalf("bandwidth not scaling with change: small=%d large=%d", small, large)
	}
}

// Property: tile extract/apply round trips for arbitrary geometry.
func TestQuickTileRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		w, h := 40+int(seed%17), 30+int(seed%11)
		if w < 1 || h < 1 {
			return true
		}
		pix := make([]byte, w*h*4)
		s := seed
		for i := range pix {
			s = s*6364136223846793005 + 1442695040888963407
			pix[i] = byte(s >> 56)
		}
		out := make([]byte, w*h*4)
		tilesX := (w + TileSize - 1) / TileSize
		tilesY := (h + TileSize - 1) / TileSize
		for ty := 0; ty < tilesY; ty++ {
			for tx := 0; tx < tilesX; tx++ {
				x, y, tw, th := tileRect(tx, ty, w, h)
				raw := extractTile(pix, w, x, y, tw, th)
				enc, data := compressTile(raw)
				dec, err := decompressTile(enc, data, tw*th*4)
				if err != nil {
					return false
				}
				if err := applyTile(out, w, x, y, tw, th, dec); err != nil {
					return false
				}
			}
		}
		return bytes.Equal(pix, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
