// Package vnc implements application-oblivious framebuffer sharing in the
// style the paper uses vnc for: "the use of vnc to distribute a desktop on
// which the simulation is being displayed" (section 1), including its
// defining property that "the application is not aware that a collaborative
// session is going on" (section 4.6).
//
// The protocol is a compact RFB analogue over wire framing: the server keeps
// the current framebuffer, divides updates into 16×16 tiles, ships only
// dirty tiles (flate-compressed when that wins), and accepts input events
// from viewers. Bandwidth therefore scales with *screen content change* —
// the property the collaboration-scaling experiment (E12) contrasts against
// COVISE's parameter synchronisation.
package vnc

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// TileSize is the edge length of a protocol tile in pixels.
const TileSize = 16

// wire tags of the protocol.
const (
	tagInit     = 0x00F1 // Int32s [w, h]
	tagTileHdr  = 0x00F2 // Int32s [x, y, w, h, encoding, frameSeq]
	tagTileData = 0x00F3 // Bytes
	tagFrameEnd = 0x00F4 // Int32s [frameSeq, dirtyTiles]
	tagInput    = 0x00F5 // Int32s [kind, a, b, c]
)

// tile encodings.
const (
	encRaw int32 = iota
	encFlate
)

// EventKind classifies input events.
type EventKind int32

// Input event kinds.
const (
	EventPointer EventKind = iota + 1 // a=x, b=y, c=button mask
	EventKey                          // a=keysym, c=1 down / 0 up
)

// Event is one viewer input event forwarded to the application side.
type Event struct {
	Kind    EventKind
	A, B, C int32
}

// compressTile returns the best encoding of raw tile bytes.
func compressTile(raw []byte) (enc int32, data []byte) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return encRaw, raw
	}
	if _, err := w.Write(raw); err != nil {
		return encRaw, raw
	}
	if err := w.Close(); err != nil {
		return encRaw, raw
	}
	if buf.Len() < len(raw) {
		return encFlate, buf.Bytes()
	}
	return encRaw, raw
}

// decompressTile reverses compressTile.
func decompressTile(enc int32, data []byte, want int) ([]byte, error) {
	switch enc {
	case encRaw:
		return data, nil
	case encFlate:
		r := flate.NewReader(bytes.NewReader(data))
		out := make([]byte, 0, want)
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("vnc: unknown tile encoding %d", enc)
	}
}

// tileRect computes tile t's pixel rectangle in a w×h buffer.
func tileRect(tx, ty, w, h int) (x, y, tw, th int) {
	x, y = tx*TileSize, ty*TileSize
	tw, th = TileSize, TileSize
	if x+tw > w {
		tw = w - x
	}
	if y+th > h {
		th = h - y
	}
	return x, y, tw, th
}

// extractTile copies a tile's pixels out of a framebuffer.
func extractTile(pix []byte, w, x, y, tw, th int) []byte {
	out := make([]byte, tw*th*4)
	for row := 0; row < th; row++ {
		src := ((y+row)*w + x) * 4
		copy(out[row*tw*4:(row+1)*tw*4], pix[src:src+tw*4])
	}
	return out
}

// applyTile writes a tile's pixels into a framebuffer.
func applyTile(pix []byte, w int, x, y, tw, th int, data []byte) error {
	if len(data) != tw*th*4 {
		return fmt.Errorf("vnc: tile payload %d bytes, want %d", len(data), tw*th*4)
	}
	for row := 0; row < th; row++ {
		dst := ((y+row)*w + x) * 4
		copy(pix[dst:dst+tw*4], data[row*tw*4:(row+1)*tw*4])
	}
	return nil
}

// tileDirty reports whether the tile differs between two framebuffers.
func tileDirty(a, b []byte, w, x, y, tw, th int) bool {
	for row := 0; row < th; row++ {
		off := ((y+row)*w + x) * 4
		if !bytes.Equal(a[off:off+tw*4], b[off:off+tw*4]) {
			return true
		}
	}
	return false
}
