package vnc

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hub"
)

// startHubDesktop stands up a hub-hosted desktop publisher with n viewers
// attached through the hub's shared listener.
func startHubDesktop(t *testing.T, w, h, n int) (*Publisher, []*Viewer, string) {
	t.Helper()
	hb := hub.New(hub.Config{})
	t.Cleanup(hb.Close)
	session, err := hb.CreateSession(core.SessionConfig{Name: "desktop", AppName: "vnc"})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(session, w, h)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go hb.Serve(l)

	viewers := make([]*Viewer, n)
	for i := range viewers {
		viewers[i] = attachHubViewer(t, l.Addr().String())
	}
	return pub, viewers, l.Addr().String()
}

func attachHubViewer(t *testing.T, addr string) *Viewer {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	v, err := AttachViewer(context.Background(), conn, core.AttachOptions{Session: "desktop"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { v.Close() })
	return v
}

func waitViewerFrames(t *testing.T, v *Viewer, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for v.Frames() < n {
		if time.Now().After(deadline) {
			t.Fatalf("viewer stuck at %d updates, want %d", v.Frames(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHubDesktopConverges(t *testing.T) {
	pub, viewers, _ := startHubDesktop(t, 96, 64, 3)
	frame := testFrame(120)
	if _, err := pub.Update(frame); err != nil {
		t.Fatal(err)
	}
	for _, v := range viewers {
		waitViewerFrames(t, v, 1)
	}
	for i, v := range viewers {
		if !bytes.Equal(v.Framebuffer(), frame) {
			t.Fatalf("viewer %d framebuffer diverged", i)
		}
	}
	if pub.Stats().Keyframes == 0 {
		t.Fatal("first update was not a keyframe")
	}
}

func TestHubDesktopDirtyTilesOnly(t *testing.T) {
	pub, viewers, _ := startHubDesktop(t, 96, 64, 1)
	frame := testFrame(100)
	pub.Update(frame)
	waitViewerFrames(t, viewers[0], 1)
	before := pub.Stats().BytesSent

	// Single-pixel change: exactly one dirty tile in the published blob.
	frame2 := append([]byte(nil), frame...)
	frame2[0] = 255
	dirty, err := pub.Update(frame2)
	if err != nil {
		t.Fatal(err)
	}
	if dirty != 1 {
		t.Fatalf("dirty tiles = %d, want 1", dirty)
	}
	waitViewerFrames(t, viewers[0], 2)
	delta := pub.Stats().BytesSent - before
	full := uint64(96 * 64 * 4)
	if delta >= full/4 {
		t.Fatalf("single-pixel update cost %d bytes (full frame %d): diffing broken", delta, full)
	}
	if !bytes.Equal(viewers[0].Framebuffer(), frame2) {
		t.Fatal("viewer missed the pixel change")
	}
}

func TestHubDesktopLateJoinerRekeyed(t *testing.T) {
	pub, viewers, addr := startHubDesktop(t, 96, 64, 1)
	pub.Update(testFrame(200))
	waitViewerFrames(t, viewers[0], 1)

	// A viewer attaching mid-stream decodes nothing until audience growth
	// forces the next update out as a full-coverage keyframe.
	late := attachHubViewer(t, addr)
	frame := testFrame(201)
	if _, err := pub.Update(frame); err != nil {
		t.Fatal(err)
	}
	waitViewerFrames(t, late, 1)
	if !bytes.Equal(late.Framebuffer(), frame) {
		t.Fatal("late joiner sees different content")
	}
	waitViewerFrames(t, viewers[0], 2)
	if late.Checksum() != viewers[0].Checksum() {
		t.Fatal("viewers diverged after the re-key")
	}
}

func TestHubDesktopEmptyUpdateKeepsChain(t *testing.T) {
	pub, viewers, _ := startHubDesktop(t, 96, 64, 1)
	frame := testFrame(42)
	pub.Update(frame)
	waitViewerFrames(t, viewers[0], 1)

	// A clean update publishes an empty tile blob so viewer delta chains
	// stay unbroken; the next real change must still apply.
	if dirty, _ := pub.Update(frame); dirty != 0 {
		t.Fatal("identical frame marked tiles dirty")
	}
	waitViewerFrames(t, viewers[0], 2)
	frame2 := append([]byte(nil), frame...)
	frame2[0] = 255
	pub.Update(frame2)
	waitViewerFrames(t, viewers[0], 3)
	if !bytes.Equal(viewers[0].Framebuffer(), frame2) {
		t.Fatal("change after empty update lost")
	}
}

func TestHubDesktopBadFramebufferSize(t *testing.T) {
	hb := hub.New(hub.Config{})
	defer hb.Close()
	session, err := hb.CreateSession(core.SessionConfig{Name: "desktop", AppName: "vnc"})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(session, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Update(make([]byte, 10)); err == nil {
		t.Fatal("wrong-size framebuffer accepted")
	}
	if _, err := NewPublisher(session, 0, 32); err == nil {
		t.Fatal("zero width accepted")
	}
}
