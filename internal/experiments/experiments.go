// Package experiments regenerates every evaluation artefact of the paper:
// its figures (architecture behaviours) and its quantified claims (the
// reaction-time requirements of sections 4.2–4.4, the bandwidth claims of
// sections 2.4 and 4.6, the O(N log N) claim of section 3.4, the
// no-disturbance guarantee of section 3.2 and the single-port claim of
// section 3.3). Each experiment builds the relevant subsystems, measures,
// and reports rows comparable with the paper's statements.
//
// The same implementations back the sc03bench command line tool and the
// repository-level benchmarks in bench_test.go; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Result is what one experiment produces.
type Result struct {
	// Lines is the human-readable table, one row per line.
	Lines []string
	// Metrics are machine-readable key figures (benchmarks re-report them).
	Metrics map[string]float64
	// Verdict summarises whether the paper's claim held.
	Verdict string
}

func newResult() *Result {
	return &Result{Metrics: make(map[string]float64)}
}

func (r *Result) linef(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// SortedMetricKeys returns metric names in stable order.
func (r *Result) SortedMetricKeys() []string {
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Experiment is one reproducible evaluation artefact.
type Experiment struct {
	// ID is the experiment identifier used throughout DESIGN.md and
	// EXPERIMENTS.md (E1..E13).
	ID string
	// Title is a one-line description.
	Title string
	// Source cites the paper section/figure being reproduced.
	Source string
	// Run executes the experiment.
	Run func() (*Result, error)
}

// All lists every experiment in order.
var All = []Experiment{
	{"E1", "RealityGrid steering pipeline end to end", "Fig 1, §2.2", RunE1},
	{"E2", "OGSI steering service: discover, bind, steer", "Fig 2, §2.3", RunE2},
	{"E3", "VizServer bandwidth: compressed bitmaps vs raw data", "§2.4", RunE3},
	{"E4", "VISIT no-disturbance guarantee under dead visualization", "§3.2", RunE4},
	{"E5", "VISIT through the UNICORE single-port gateway", "§3.3", RunE5},
	{"E6", "vbroker multiplexer: fan-out, master-only steering", "§3.3", RunE6},
	{"E7", "PEPC tree code O(N log N) vs direct O(N²)", "§3.4, Fig 3", RunE7},
	{"E8", "VR rendering feedback loop: local vs remote under WAN latency", "§4.2", RunE8},
	{"E9", "Desktop rate and multi-site view divergence", "§4.2", RunE9},
	{"E10", "Post-processing loop: local regeneration vs image streaming", "§4.3", RunE10},
	{"E11", "Simulation feedback loop vs human tolerance", "§4.4", RunE11},
	{"E12", "Collaboration scaling on a live hub: PEPC with a mixed-tier audience", "§4.6", RunE12},
	{"E13", "Venue integration: shared app, multicast and bridge", "Fig 4, §4.6", RunE13},
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---- shared helpers ----

// ms converts a duration to milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// us converts a duration to microseconds.
func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// kb converts bytes to kilobytes.
func kb(n uint64) float64 { return float64(n) / 1024 }

// fpsFromPeriod converts a per-frame duration to a rate.
func fpsFromPeriod(d time.Duration) float64 {
	if d <= 0 {
		return math.Inf(1)
	}
	return float64(time.Second) / float64(d)
}
