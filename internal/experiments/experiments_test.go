package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsPass runs every evaluation artefact end to end and
// requires the paper's claims to hold in this reproduction. This is the
// repository's top-level integration test: it exercises all simulations,
// all middleware tiers and all transports together.
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take ~20s; skipped in -short mode")
	}
	for _, e := range All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run()
			if err != nil {
				t.Fatalf("%s (%s): %v", e.ID, e.Title, err)
			}
			if res.Verdict == "" {
				t.Fatalf("%s: no verdict", e.ID)
			}
			if strings.HasPrefix(res.Verdict, "FAIL") {
				t.Fatalf("%s: %s\n%s", e.ID, res.Verdict, strings.Join(res.Lines, "\n"))
			}
			if strings.HasPrefix(res.Verdict, "CHECK") {
				t.Errorf("%s: %s\n%s", e.ID, res.Verdict, strings.Join(res.Lines, "\n"))
			}
			if len(res.Lines) == 0 {
				t.Fatalf("%s: no result rows", e.ID)
			}
			if len(res.Metrics) == 0 {
				t.Fatalf("%s: no metrics", e.ID)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E7"); !ok {
		t.Fatal("E7 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("phantom experiment")
	}
	seen := map[string]bool{}
	for _, e := range All {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Source == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if len(All) != 13 {
		t.Fatalf("expected 13 experiments, have %d", len(All))
	}
}
