package experiments

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/ogsi"
	"repro/internal/pixel"
	"repro/internal/render"
	"repro/internal/sim/lb"
	"repro/internal/sim/pepc"
	"repro/internal/unicore"
	"repro/internal/visit"
	"repro/internal/viz"
	"repro/internal/vizserver"
	"repro/internal/wire"
)

// RunE1 reproduces Figure 1: computation on one "machine", visualization on
// another, steering from a laptop client; a miscibility steer visibly
// changes the structures within an interactive delay.
func RunE1() (*Result, error) {
	r := newResult()

	sim, err := lb.New(lb.Params{Nx: 16, Ny: 16, Nz: 16, Tau: 1, G: 0, Seed: 42})
	if err != nil {
		return nil, err
	}
	session := core.NewSession(core.SessionConfig{Name: "e1", AppName: "lb3d"})
	defer session.Close()
	st := session.Steered()
	st.RegisterFloat("g", 0, 0, 6, "miscibility", sim.SetCoupling)

	var mu sync.Mutex
	field := sim.OrderParameter()
	stop := make(chan struct{})
	simDone := make(chan struct{})
	var stepTime time.Duration
	go func() {
		defer close(simDone)
		var steps int
		start := time.Now()
		for {
			select {
			case <-stop:
				if steps > 0 {
					stepTime = time.Since(start) / time.Duration(steps)
				}
				return
			default:
			}
			st.Poll()
			sim.Step()
			steps++
			mu.Lock()
			field = sim.OrderParameter()
			mu.Unlock()
			s := core.NewSample(int64(steps))
			s.Channels["segregation"] = core.Scalar(sim.Segregation())
			st.Emit(s)
		}
	}()

	// Visualization host: isosurface + remote rendering.
	scene := func() *render.Scene {
		mu.Lock()
		f := field
		mu.Unlock()
		return &render.Scene{Meshes: []*render.Mesh{viz.Isosurface(f, 0, render.Blue)}}
	}
	vsrv, err := vizserver.NewServer(vizserver.Config{
		Width: 160, Height: 120, Scene: scene,
		Camera: render.Camera{Eye: render.Vec3{X: 40, Y: 30, Z: 45}, Center: render.Vec3{X: 8, Y: 8, Z: 8}, Up: render.Vec3{Y: 1}, FovY: 0.7854, Near: 0.1, Far: 500},
	})
	if err != nil {
		return nil, err
	}
	defer vsrv.Close()
	// Laptop over a national WAN link.
	lapConn, srvConn := netsim.Pipe(netsim.National)
	go vsrv.ServeConn(srvConn)
	laptop, err := vizserver.Attach(lapConn)
	if err != nil {
		return nil, err
	}
	defer laptop.Close()

	// Warm-up mixing phase.
	time.Sleep(250 * time.Millisecond)
	segBefore := sim.Segregation()

	// Steer and time steer→visible-structure (segregation 10x baseline).
	steerStart := time.Now()
	if err := session.QueueSetParam("g", 4.5); err != nil {
		return nil, err
	}
	var steerToEffect time.Duration
	for {
		if sim.Segregation() > 0.2 {
			steerToEffect = time.Since(steerStart)
			break
		}
		if time.Since(steerStart) > 30*time.Second {
			return nil, fmt.Errorf("E1: steering never took effect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	segAfter := sim.Segregation()
	close(stop)
	<-simDone

	// One remote frame round trip of the final structures.
	f0 := laptop.Frames()
	frameStart := time.Now()
	laptop.Refresh()
	for laptop.Frames() <= f0 {
		time.Sleep(time.Millisecond)
	}
	frameRT := time.Since(frameStart)

	r.linef("component                          value")
	r.linef("simulation step (16^3 D3Q19)       %8.2f ms", ms(stepTime))
	r.linef("segregation before steer           %8.4f", segBefore)
	r.linef("segregation after steer            %8.4f", segAfter)
	r.linef("steer -> visible structure         %8.0f ms", ms(steerToEffect))
	r.linef("remote frame round trip (national) %8.1f ms", ms(frameRT))
	r.Metrics["step_ms"] = ms(stepTime)
	r.Metrics["steer_to_effect_ms"] = ms(steerToEffect)
	r.Metrics["frame_rt_ms"] = ms(frameRT)
	r.Metrics["seg_after"] = segAfter
	if segAfter > 10*segBefore && steerToEffect < 60*time.Second {
		r.Verdict = "PASS: miscibility steering changes the observed structures interactively"
	} else {
		r.Verdict = "FAIL: steering effect not observed"
	}
	return r, nil
}

// RunE2 reproduces Figure 2: registry discovery, factory creation, binding,
// and steering through the grid service versus steering in-process.
func RunE2() (*Result, error) {
	r := newResult()
	session := core.NewSession(core.SessionConfig{Name: "e2"})
	defer session.Close()
	st := session.Steered()
	applied := 0.0
	st.RegisterFloat("g", 0, 0, 10, "", func(v float64) { applied = v })
	_ = applied

	hosting := ogsi.NewHosting()
	defer hosting.Close()
	hosting.RegisterFactory("registry", ogsi.RegistryFactory)
	hosting.RegisterFactory("steering", ogsi.SteeringFactory(session))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer l.Close()
	hosting.BaseURL = "http://" + l.Addr().String()
	go http.Serve(l, hosting)
	c := &ogsi.Client{}

	t0 := time.Now()
	registry, err := c.Create(hosting.BaseURL, "registry", nil)
	if err != nil {
		return nil, err
	}
	createLat := time.Since(t0)

	steerGSH, err := c.Create(hosting.BaseURL, "steering", nil)
	if err != nil {
		return nil, err
	}
	if err := c.Register(registry, ogsi.Entry{GSH: steerGSH, Type: "SteeringService"}, 60); err != nil {
		return nil, err
	}

	t0 = time.Now()
	found, err := c.Find(registry, "SteeringService", "")
	if err != nil || len(found) != 1 {
		return nil, fmt.Errorf("E2: discovery failed: %v %v", found, err)
	}
	findLat := time.Since(t0)

	const n = 200
	t0 = time.Now()
	for i := 0; i < n; i++ {
		if err := c.Call(found[0].GSH, "steer", map[string]any{"name": "g", "value": float64(i % 10)}, nil); err != nil {
			return nil, err
		}
	}
	serviceLat := time.Since(t0) / n

	t0 = time.Now()
	for i := 0; i < n; i++ {
		session.QueueSetParam("g", float64(i%10))
		st.Poll()
	}
	directLat := time.Since(t0) / n
	st.Poll()

	r.linef("operation                         latency")
	r.linef("factory create (HTTP)             %8.0f µs", us(createLat))
	r.linef("registry find (HTTP)              %8.0f µs", us(findLat))
	r.linef("steer via grid service (HTTP)     %8.0f µs", us(serviceLat))
	r.linef("steer in-process (baseline)       %8.2f µs", us(directLat))
	r.Metrics["create_us"] = us(createLat)
	r.Metrics["find_us"] = us(findLat)
	r.Metrics["steer_service_us"] = us(serviceLat)
	r.Metrics["steer_direct_us"] = us(directLat)
	if serviceLat < 100*time.Millisecond {
		r.Verdict = "PASS: service-mediated steering stays interactive (≪ the 60 s tolerance)"
	} else {
		r.Verdict = "FAIL: grid service overhead breaks interactivity"
	}
	return r, nil
}

// RunE3 reproduces the section 2.4 claim: "only compressed bitmaps need to
// be sent", comparing per-frame bytes of compressed framebuffer streaming
// against raw framebuffers and raw geometry as dataset complexity grows.
func RunE3() (*Result, error) {
	r := newResult()
	r.linef("%-10s %12s %12s %12s %12s", "lattice", "geometry", "raw frame", "keyframe", "delta")

	var lastGeo, lastKey float64
	for _, n := range []int{12, 20, 28} {
		sim, err := lb.New(lb.Params{Nx: n, Ny: n, Nz: n, Tau: 1, G: 4.5, Seed: 7})
		if err != nil {
			return nil, err
		}
		for i := 0; i < 40; i++ {
			sim.Step()
		}
		mesh := viz.Isosurface(sim.OrderParameter(), 0, render.Blue)
		scene := &render.Scene{Meshes: []*render.Mesh{mesh}}

		fb := render.NewFramebuffer(320, 240)
		cam := render.Camera{
			Eye:    render.Vec3{X: 2.5 * float64(n), Y: 2 * float64(n), Z: 2.8 * float64(n)},
			Center: render.Vec3{X: float64(n) / 2, Y: float64(n) / 2, Z: float64(n) / 2},
			Up:     render.Vec3{Y: 1}, FovY: 0.7854, Near: 0.1, Far: 1000,
		}
		render.Render(fb, cam, scene)
		key := pixel.EncodeKey(fb.Pix)

		// A small camera move, then a delta frame.
		prev := append([]byte(nil), fb.Pix...)
		cam.Eye.X += 1
		render.Render(fb, cam, scene)
		delta, err := pixel.EncodeDelta(prev, fb.Pix)
		if err != nil {
			return nil, err
		}

		geo := scene.GeometryBytes()
		raw := len(fb.Pix)
		r.linef("%-10s %10.1fKB %10.1fKB %10.1fKB %10.1fKB",
			fmt.Sprintf("%d^3", n), float64(geo)/1024, float64(raw)/1024,
			float64(len(key))/1024, float64(len(delta))/1024)
		lastGeo, lastKey = float64(geo), float64(len(key))
		r.Metrics[fmt.Sprintf("geo_%d_kb", n)] = float64(geo) / 1024
		r.Metrics[fmt.Sprintf("key_%d_kb", n)] = float64(len(key)) / 1024
		r.Metrics[fmt.Sprintf("delta_%d_kb", n)] = float64(len(delta)) / 1024
	}
	r.Metrics["reduction_at_28"] = lastGeo / lastKey
	if lastKey < lastGeo {
		r.Verdict = fmt.Sprintf("PASS: compressed bitmap %.0fx smaller than shipping the geometry at 28^3", lastGeo/lastKey)
	} else {
		r.Verdict = "FAIL: compressed frames larger than geometry"
	}
	return r, nil
}

// RunE4 reproduces the section 3.2 design goal: instrumentation costs
// little, and a dead or slow visualization costs at most the configured
// timeout — the simulation always completes.
func RunE4() (*Result, error) {
	r := newResult()
	const steps = 30

	makeSim := func() (*pepc.Sim, error) {
		s, err := pepc.New(pepc.Params{Theta: 0.5, Dt: 0.005, Eps: 0.05, Seed: 5})
		if err != nil {
			return nil, err
		}
		s.AddPlasmaBall(600, pepc.Vec{}, 1.0, 0.05)
		return s, nil
	}

	// Baseline: uninstrumented.
	s0, err := makeSim()
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	for i := 0; i < steps; i++ {
		s0.Step()
	}
	base := time.Since(t0) / steps

	// Instrumented with a live visualization.
	srv := visit.NewServer(visit.ServerConfig{})
	srv.HandleSend(1, func(m *wire.Message) error { return nil })
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(l)
	defer srv.Close()

	s1, err := makeSim()
	if err != nil {
		return nil, err
	}
	vs := visit.NewSim(visit.TCPDialer(l.Addr().String()), "")
	defer vs.Close()
	t0 = time.Now()
	for i := 0; i < steps; i++ {
		s1.Step()
		snap := s1.Snapshot()
		coords := make([]float64, 0, len(snap.Pos)*3)
		for _, p := range snap.Pos {
			coords = append(coords, p.X, p.Y, p.Z)
		}
		vs.SendFloat64s(1, coords, 100*time.Millisecond)
	}
	live := time.Since(t0) / steps

	// Instrumented with a DEAD visualization and a 20ms timeout: every send
	// fails, but each step is bounded and the run completes.
	deadL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	deadAddr := deadL.Addr().String()
	deadL.Close() // nothing listens any more

	s2, err := makeSim()
	if err != nil {
		return nil, err
	}
	const deadTimeout = 20 * time.Millisecond
	vd := visit.NewSim(visit.TCPDialer(deadAddr), "")
	defer vd.Close()
	t0 = time.Now()
	worst := time.Duration(0)
	for i := 0; i < steps; i++ {
		s2.Step()
		st := time.Now()
		vd.SendFloat64s(1, []float64{1}, deadTimeout)
		if d := time.Since(st); d > worst {
			worst = d
		}
	}
	dead := time.Since(t0) / steps

	r.linef("configuration                per step    overhead")
	r.linef("uninstrumented               %8.2f ms     —", ms(base))
	r.linef("live visualization           %8.2f ms   %+6.1f%%", ms(live), 100*(float64(live)/float64(base)-1))
	r.linef("dead visualization (20 ms)   %8.2f ms   %+6.1f%%", ms(dead), 100*(float64(dead)/float64(base)-1))
	r.linef("worst single blocked call    %8.2f ms (timeout guarantee: bounded)", ms(worst))
	r.Metrics["base_ms"] = ms(base)
	r.Metrics["live_ms"] = ms(live)
	r.Metrics["dead_ms"] = ms(dead)
	r.Metrics["worst_block_ms"] = ms(worst)
	// A dead TCP target fails fast (connection refused), so the bound is the
	// timeout plus scheduling noise.
	if worst <= deadTimeout+50*time.Millisecond {
		r.Verdict = "PASS: a dead visualization never stalls the simulation beyond the timeout"
	} else {
		r.Verdict = fmt.Sprintf("FAIL: a call blocked %v, beyond the %v guarantee", worst, deadTimeout)
	}
	return r, nil
}

// RunE5 reproduces section 3.3: VISIT traffic through the UNICORE gateway's
// single port, versus a native direct VISIT connection.
func RunE5() (*Result, error) {
	r := newResult()

	// Native direct VISIT baseline.
	direct := visit.NewServer(visit.ServerConfig{})
	direct.HandleSend(1, func(m *wire.Message) error { return nil })
	dl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go direct.Serve(dl)
	defer direct.Close()
	nd := visit.NewSim(visit.TCPDialer(dl.Addr().String()), "")
	defer nd.Close()
	payload := make([]float64, 3000)
	nd.SendFloat64s(1, payload, time.Second) // connect+auth once
	const n = 100
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if err := nd.SendFloat64s(1, payload, time.Second); err != nil {
			return nil, err
		}
	}
	directLat := time.Since(t0) / n

	// Through the gateway: one TCP port for consignment + steering stream.
	tsi := unicore.NewTSI()
	done := make(chan error, 1)
	tsi.RegisterApp("app", func(ctx *unicore.TaskContext) error {
		vs := visit.NewSim(ctx.VISITDialer, "pw")
		defer vs.Close()
		// Wait until a participant is attached: receive-requests fail with
		// "no master" until then, while sends would succeed with zero
		// fan-out and skew the measurement.
		for i := 0; i < 2000; i++ {
			if _, err := vs.Recv(2, 200*time.Millisecond); err == nil {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		t := time.Now()
		for i := 0; i < n; i++ {
			if err := vs.SendFloat64s(1, payload, time.Second); err != nil {
				done <- err
				return err
			}
		}
		done <- nil
		proxyPerOp := time.Since(t) / n
		_ = proxyPerOp
		// Report through the workspace.
		ctx.Workspace.Put("latency_ns", []byte(fmt.Sprintf("%d", proxyPerOp.Nanoseconds())))
		return nil
	})
	njs := unicore.NewNJS("SITE", tsi)
	gw := unicore.NewGateway()
	gw.AddVsite(njs)
	gw.AddUser("u", "t")
	gl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go gw.Serve(gl)
	defer gw.Close()

	client := unicore.NewClient(gl.Addr().String(), "u", "t")
	ajo := &unicore.AJO{ID: "e5", Vsite: "SITE", Tasks: []unicore.Task{
		{Kind: unicore.TaskStartVISITProxy, VISITPassword: "pw"},
		{Kind: unicore.TaskExecute, Executable: "app"},
		{Kind: unicore.TaskExportFile, FileName: "latency_ns"},
	}}
	if err := client.Consign(ajo); err != nil {
		return nil, err
	}
	client.WaitStatus("e5", unicore.StatusRunning, 5*time.Second)

	// The participant's visualization server, attached through the gateway.
	part := visit.NewServer(visit.ServerConfig{Password: "pw"})
	var rx int
	var rxMu sync.Mutex
	part.HandleSend(1, func(m *wire.Message) error {
		rxMu.Lock()
		rx++
		rxMu.Unlock()
		return nil
	})
	part.HandleRecv(2, func() (*wire.Message, error) {
		return &wire.Message{Header: wire.Header{Kind: wire.KindFloat64, Count: 1}, Float64s: []float64{1}}, nil
	})
	defer part.Close()
	go client.OpenVISITChannel("e5", "site-a", "pw", part)

	if err := <-done; err != nil {
		return nil, err
	}
	client.WaitStatus("e5", unicore.StatusDone, 10*time.Second)
	out, err := client.Outcome("e5")
	if err != nil {
		return nil, err
	}
	var proxyNs int64
	fmt.Sscanf(string(out.Files["latency_ns"]), "%d", &proxyNs)
	proxyLat := time.Duration(proxyNs)

	r.linef("path                                per 24KB exchange")
	r.linef("native VISIT (dynamic port)         %8.2f ms", ms(directLat))
	r.linef("VISIT proxied via gateway port      %8.2f ms", ms(proxyLat))
	r.linef("gateway connections used            %8d (1 port for job mgmt + steering)", gw.Stats().Connections)
	r.linef("steering channels on that port      %8d", gw.Stats().ChannelsOpened)
	r.Metrics["direct_ms"] = ms(directLat)
	r.Metrics["proxy_ms"] = ms(proxyLat)
	r.Metrics["overhead_x"] = float64(proxyLat) / float64(directLat)
	if gw.Stats().ChannelsOpened == 1 && proxyLat < 50*directLat+10*time.Millisecond {
		r.Verdict = "PASS: steering traverses one fixed gateway port at small multiplexing cost"
	} else {
		r.Verdict = "FAIL: proxying cost disproportionate or channel not used"
	}
	return r, nil
}

// RunE6 reproduces the vbroker semantics of section 3.3: sends fan out to
// all participants, receives consult only the master, and the master role
// moves cheaply.
func RunE6() (*Result, error) {
	r := newResult()
	r.linef("%-14s %14s %14s", "participants", "send (fan-out)", "recv (master)")

	payload := make([]float64, 2000)
	for _, nViz := range []int{1, 2, 4, 8} {
		b := visit.NewBroker(visit.BrokerConfig{})
		var servers []*visit.Server
		for i := 0; i < nViz; i++ {
			srv := visit.NewServer(visit.ServerConfig{})
			srv.HandleSend(1, func(m *wire.Message) error { return nil })
			srv.HandleRecv(2, func() (*wire.Message, error) {
				return &wire.Message{Header: wire.Header{Kind: wire.KindFloat64, Count: 1}, Float64s: []float64{1}}, nil
			})
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			go srv.Serve(l)
			servers = append(servers, srv)
			if err := b.AttachViz(fmt.Sprintf("viz-%d", i), visit.TCPDialer(l.Addr().String()), ""); err != nil {
				return nil, err
			}
		}
		bl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go b.Serve(bl)
		sim := visit.NewSim(visit.TCPDialer(bl.Addr().String()), "")
		sim.Ping(time.Second)

		const n = 50
		t0 := time.Now()
		for i := 0; i < n; i++ {
			if err := sim.SendFloat64s(1, payload, 2*time.Second); err != nil {
				return nil, err
			}
		}
		sendLat := time.Since(t0) / n

		t0 = time.Now()
		for i := 0; i < n; i++ {
			if _, err := sim.Recv(2, 2*time.Second); err != nil {
				return nil, err
			}
		}
		recvLat := time.Since(t0) / n

		r.linef("%-14d %11.2f ms %11.2f ms", nViz, ms(sendLat), ms(recvLat))
		r.Metrics[fmt.Sprintf("send_ms_%d", nViz)] = ms(sendLat)
		r.Metrics[fmt.Sprintf("recv_ms_%d", nViz)] = ms(recvLat)

		if nViz == 8 {
			st := b.Stats()
			if st.SendsFanned != uint64(8*n) {
				return nil, fmt.Errorf("E6: fanned %d, want %d", st.SendsFanned, 8*n)
			}
			// Master handoff latency.
			t0 = time.Now()
			if err := b.SetMaster("viz-5"); err != nil {
				return nil, err
			}
			r.Metrics["handoff_us"] = us(time.Since(t0))
			r.linef("master handoff: %.0f µs; recv traffic stays master-only (verified by fan counters)", r.Metrics["handoff_us"])
		}
		sim.Close()
		b.Close()
		for _, s := range servers {
			s.Close()
		}
	}
	send1, send8 := r.Metrics["send_ms_1"], r.Metrics["send_ms_8"]
	recv1, recv8 := r.Metrics["recv_ms_1"], r.Metrics["recv_ms_8"]
	if recv8 < 3*recv1+1 && send8 > send1 {
		r.Verdict = "PASS: send cost grows with participants, steering cost does not (master-only)"
	} else {
		r.Verdict = "FAIL: multiplexer scaling shape wrong"
	}
	return r, nil
}

// RunE7 reproduces the section 3.4 complexity claim: the hierarchical tree
// performs force summation in O(N log N) versus direct O(N²) summation.
func RunE7() (*Result, error) {
	r := newResult()
	r.linef("%-8s %12s %12s %14s %10s", "N", "tree", "direct", "interactions", "speedup")

	var prevInter float64
	var prevN int
	for _, n := range []int{500, 1000, 2000, 4000, 8000} {
		s, err := pepc.New(pepc.Params{Theta: 0.5, Dt: 0.01, Eps: 0.05, Seed: 3, Workers: 4})
		if err != nil {
			return nil, err
		}
		s.AddPlasmaBall(n, pepc.Vec{}, 1.0, 0.05)

		t0 := time.Now()
		s.ForcesTree(0.5)
		tree := time.Since(t0)
		inter := float64(s.Interactions())

		t0 = time.Now()
		s.ForcesDirect()
		direct := time.Since(t0)

		r.linef("%-8d %9.2f ms %9.2f ms %14.0f %9.1fx",
			n, ms(tree), ms(direct), inter, float64(direct)/float64(tree))
		r.Metrics[fmt.Sprintf("tree_ms_%d", n)] = ms(tree)
		r.Metrics[fmt.Sprintf("direct_ms_%d", n)] = ms(direct)
		r.Metrics[fmt.Sprintf("inter_%d", n)] = inter

		if prevN > 0 {
			// interactions ratio for doubling N: N log N predicts ~2.2,
			// N² predicts 4.
			ratio := inter / prevInter
			r.Metrics[fmt.Sprintf("growth_%d", n)] = ratio
		}
		prevInter, prevN = inter, n
	}
	growth := r.Metrics["growth_8000"]
	speedup := r.Metrics["direct_ms_8000"] / r.Metrics["tree_ms_8000"]
	if growth < 3.2 && speedup > 1 {
		r.Verdict = fmt.Sprintf("PASS: interaction growth %.2fx per doubling (N log N ≈ 2.2, N² = 4); tree %.1fx faster at N=8000", growth, speedup)
	} else {
		r.Verdict = fmt.Sprintf("FAIL: growth %.2f, speedup %.2f", growth, speedup)
	}
	return r, nil
}
