package experiments

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/accessgrid"
	"repro/internal/core"
	"repro/internal/covise"
	"repro/internal/hub"
	"repro/internal/netsim"
	"repro/internal/render"
	"repro/internal/sim/airflow"
	"repro/internal/sim/pepc"
	"repro/internal/viz"
	"repro/internal/vizserver"
	"repro/internal/vnc"
)

// e8Scene builds a moderately complex isosurface scene for render-loop
// experiments.
func e8Scene() *render.Scene {
	f := viz.NewScalarField(24, 24, 24)
	c := 11.5
	f.Fill(func(i, j, k int) float64 {
		dx, dy, dz := float64(i)-c, float64(j)-c, float64(k)-c
		return dx*dx + dy*dy + dz*dz
	})
	mesh := viz.Isosurface(f, 64, render.Blue)
	return &render.Scene{Meshes: []*render.Mesh{mesh}}
}

func e8Camera() render.Camera {
	return render.Camera{
		Eye: render.Vec3{X: 55, Y: 45, Z: 65}, Center: render.Vec3{X: 12, Y: 12, Z: 12},
		Up: render.Vec3{Y: 1}, FovY: 0.7854, Near: 0.1, Far: 1000,
	}
}

// RunE8 reproduces section 4.2: a CAVE needs 10–15 redraws per second on
// viewpoint change; a remote-rendering round trip "already exceed[s] the
// required turn around time" once WAN latency enters, while a local scene
// graph meets it — which is why distributed VR uses local rendering plus
// avatar/state sync.
func RunE8() (*Result, error) {
	r := newResult()
	scene := e8Scene()
	cam := e8Camera()

	// Local redraw: render into a local framebuffer (local scene graph).
	fb := render.NewFramebuffer(320, 240)
	const localN = 20
	t0 := time.Now()
	for i := 0; i < localN; i++ {
		cam.Eye.X += 0.01
		render.Render(fb, cam, scene)
	}
	local := time.Since(t0) / localN

	const budgetLo, budgetHi = 66 * time.Millisecond, 100 * time.Millisecond
	verdict := func(d time.Duration) string {
		switch {
		case d <= budgetLo:
			return "meets 15 Hz"
		case d <= budgetHi:
			return "meets 10 Hz"
		default:
			return "FAILS VR budget"
		}
	}

	r.linef("configuration              per redraw     rate      vs 66-100 ms budget")
	r.linef("local scene graph         %9.2f ms %7.1f fps   %s", ms(local), fpsFromPeriod(local), verdict(local))
	r.Metrics["local_ms"] = ms(local)

	// Remote loop: viewpoint upstream, rendered+compressed frame downstream,
	// across increasingly remote links.
	for _, link := range []struct {
		name    string
		profile netsim.Profile
	}{
		{"remote via LAN", netsim.LAN},
		{"remote via metro", netsim.Metro},
		{"remote via national", netsim.National},
		{"remote via transatlantic", netsim.Transatlantic},
	} {
		srv, err := vizserver.NewServer(vizserver.Config{
			Width: 320, Height: 240, Scene: func() *render.Scene { return scene }, Camera: e8Camera(),
		})
		if err != nil {
			return nil, err
		}
		cliConn, srvConn := netsim.Pipe(link.profile)
		go srv.ServeConn(srvConn)
		cli, err := vizserver.Attach(cliConn)
		if err != nil {
			return nil, err
		}
		// Wait for the keyframe.
		deadline := time.Now().Add(10 * time.Second)
		for cli.Frames() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}

		const n = 8
		c := e8Camera()
		t0 := time.Now()
		for i := 0; i < n; i++ {
			c.Eye.X += 0.5
			before := cli.Frames()
			if err := cli.SetCamera(c, 10*time.Second); err != nil {
				return nil, err
			}
			for cli.Frames() <= before {
				time.Sleep(200 * time.Microsecond)
			}
		}
		per := time.Since(t0) / n
		r.linef("%-25s %9.2f ms %7.1f fps   %s", link.name, ms(per), fpsFromPeriod(per), verdict(per))
		key := link.name[len("remote via "):]
		r.Metrics["remote_ms_"+key] = ms(per)
		cli.Close()
		srv.Close()
	}

	// The paper requires "at least 10 to 15 updates per second" for VR and
	// argues the remote loop's communication delays alone exceed that turn-
	// around time. Local rendering must meet the strict 15 Hz budget; the
	// intercontinental remote loop must fail it.
	if r.Metrics["local_ms"] < 66 && r.Metrics["remote_ms_transatlantic"] > 66 {
		r.Verdict = "PASS: local rendering meets 15 Hz; the transatlantic remote loop cannot (its two WAN crossings alone spend the budget)"
	} else {
		r.Verdict = "CHECK: unexpected budget outcome (see rows)"
	}
	return r, nil
}

// RunE9 reproduces the desktop requirement of section 4.2 (3–5 fps with one
// frame delay) and the multi-site synchronisation requirement: "a variation
// of one frame does not influence a discussion process, while multiple
// frames difference ... might lead to misunderstanding".
func RunE9() (*Result, error) {
	r := newResult()

	srv := vnc.NewServer(320, 240)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(l)
	defer srv.Close()

	attach := func(profile netsim.Profile) (*vnc.Client, error) {
		// vnc over a shaped link: dial loopback, then wrap in shaping is not
		// possible for real TCP, so shaped sessions use in-memory pipes.
		cliConn, srvConn := netsim.Pipe(profile)
		go srv.ServeConn(srvConn)
		return vnc.Attach(cliConn)
	}
	nearC, err := attach(netsim.LAN)
	if err != nil {
		return nil, err
	}
	defer nearC.Close()
	// The far site gets a thin, lossy-feeling link: transatlantic latency
	// with tight bandwidth.
	farC, err := attach(netsim.Profile{Latency: 45 * time.Millisecond, Bandwidth: 1.5e6})
	if err != nil {
		return nil, err
	}
	defer farC.Close()

	// Drive the desktop at the paper's 4 fps for 2 seconds with full-screen
	// changes (the worst case for bitmap sharing).
	frame := make([]byte, 320*240*4)
	const frames = 8
	const period = 250 * time.Millisecond
	start := time.Now()
	for i := 0; i < frames; i++ {
		for p := range frame {
			frame[p] = byte(p*31 + i*97)
		}
		if _, err := srv.Update(frame); err != nil {
			return nil, err
		}
		time.Sleep(period)
	}
	elapsed := time.Since(start)
	time.Sleep(300 * time.Millisecond) // drain in flight

	nearSeq, farSeq := nearC.FrameSeq(), farC.FrameSeq()
	srvSeq := int32(frames) + 0 // initial full frame carries seq 0
	nearLag := float64(srvSeq - nearSeq)
	farLag := float64(srvSeq - farSeq)
	rate := float64(frames) / elapsed.Seconds()

	r.linef("desktop update rate          %6.1f fps (target 3–5 fps)", rate)
	r.linef("LAN site frame lag           %6.0f frames (budget: 1)", nearLag)
	r.linef("thin-WAN site frame lag      %6.0f frames", farLag)
	r.Metrics["rate_fps"] = rate
	r.Metrics["near_lag"] = nearLag
	r.Metrics["far_lag"] = farLag

	// Against that: synchronised view STATE (a core session) keeps every
	// site at the same revision with tiny messages even on the thin link.
	session := core.NewSession(core.SessionConfig{Name: "e9"})
	defer session.Close()
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go session.Serve(sl)
	// Attach under a context so a wedged endpoint fails the experiment
	// instead of hanging it (the protocol v2 context-aware handshake).
	actx, acancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer acancel()
	mConn, _ := net.Dial("tcp", sl.Addr().String())
	master, err := core.AttachContext(actx, mConn, core.AttachOptions{Name: "master"})
	if err != nil {
		return nil, err
	}
	defer master.Close()
	oConn, _ := net.Dial("tcp", sl.Addr().String())
	obs, err := core.AttachContext(actx, oConn, core.AttachOptions{Name: "observer"})
	if err != nil {
		return nil, err
	}
	defer obs.Close()
	for i := 0; i < frames; i++ {
		if err := master.SetViewContext(actx, core.ViewState{Eye: [3]float64{float64(i), 0, 0}}); err != nil {
			return nil, err
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for obs.View().Seq < uint64(frames) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stateLag := float64(uint64(frames) - obs.View().Seq)
	r.linef("view-state sync lag          %6.0f revisions (state sync, not pixels)", stateLag)
	r.Metrics["state_lag"] = stateLag

	if nearLag <= 1 && stateLag == 0 && farLag >= nearLag {
		r.Verdict = "PASS: well-connected sites stay within the one-frame budget; state sync always converges; thin links drift with bitmap sharing"
	} else {
		r.Verdict = "CHECK: unexpected lag shape (see rows)"
	}
	return r, nil
}

// RunE10 reproduces section 4.3: a post-processing parameter change (cutting
// plane position) must update all sites near-simultaneously; local
// regeneration with parameter sync achieves rates that shipping images
// cannot, and costs orders of magnitude less bandwidth.
func RunE10() (*Result, error) {
	r := newResult()

	building, err := airflow.CarShowBuilding(2)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 30; i++ {
		building.Step()
	}
	provide := func() *viz.ScalarField { return building.Temperature() }
	build := func(h *covise.Host) (*covise.Controller, error) {
		c := covise.NewController()
		if err := c.AddModule("source", h, &covise.FieldSource{Provide: provide}); err != nil {
			return nil, err
		}
		if err := c.AddModule("cut", h, &covise.CuttingPlane{}); err != nil {
			return nil, err
		}
		if err := c.AddModule("render", h, &covise.Renderer{Width: 320, Height: 240, LookAt: render.Vec3{X: 20, Y: 6, Z: 12}}); err != nil {
			return nil, err
		}
		if err := c.Connect("source", "field", "cut", "field"); err != nil {
			return nil, err
		}
		if err := c.Connect("cut", "geometry", "render", "geometry"); err != nil {
			return nil, err
		}
		c.SetParam("cut", "axis", 1)
		c.SetParam("cut", "index", 2)
		c.SetParam("render", "eyeX", 60)
		c.SetParam("render", "eyeY", 45)
		c.SetParam("render", "eyeZ", 70)
		return c, nil
	}
	session := covise.NewCollabSession()
	for _, s := range []string{"hlrs", "daimler", "sandia"} {
		if _, err := session.AddSite(s, build); err != nil {
			return nil, err
		}
	}
	if err := session.ExecuteAll(); err != nil {
		return nil, err
	}

	// Local-regeneration mode: param change → every site recomputes.
	const n = 10
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if _, err := session.SetParam("hlrs", "cut", "index", float64(2+i%8)); err != nil {
			return nil, err
		}
	}
	localLat := time.Since(t0) / n
	converged, err := session.Converged("render", "checksum")
	if err != nil {
		return nil, err
	}
	syncBytes := session.SyncBytes()

	// Image-streaming mode: one site computes, ships the rendered frame to
	// the others over a national link (vnc-style sharing of the map editor).
	hlrs, err := session.Site("hlrs")
	if err != nil {
		return nil, err
	}
	imgObj, err := hlrs.Controller.Output("render", "image")
	if err != nil {
		return nil, err
	}
	img := imgObj.Image
	vsrv := vnc.NewServer(img.W, img.H)
	defer vsrv.Close()
	cliConn, srvConn := netsim.Pipe(netsim.National)
	go vsrv.ServeConn(srvConn)
	viewer, err := vnc.Attach(cliConn)
	if err != nil {
		return nil, err
	}
	defer viewer.Close()
	waitF := func(n uint64) {
		deadline := time.Now().Add(10 * time.Second)
		for viewer.Frames() < n && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	waitF(1)
	bytes0 := vsrv.Stats().BytesSent

	t0 = time.Now()
	for i := 0; i < n; i++ {
		hlrs.Controller.SetParam("cut", "index", float64(2+(i+1)%8))
		if _, err := hlrs.Controller.Execute(); err != nil {
			return nil, err
		}
		obj, err := hlrs.Controller.Output("render", "image")
		if err != nil {
			return nil, err
		}
		before := viewer.Frames()
		if _, err := vsrv.Update(obj.Image.Pix); err != nil {
			return nil, err
		}
		waitF(before + 1)
	}
	imageLat := time.Since(t0) / n
	imageBytes := vsrv.Stats().BytesSent - bytes0

	r.linef("mode                         per change      sync traffic    all sites consistent")
	r.linef("local regen + param sync    %9.2f ms   %10.2f KB      %v", ms(localLat), kb(syncBytes), converged)
	r.linef("compute once + ship image   %9.2f ms   %10.2f KB      image only", ms(imageLat), kb(imageBytes))
	r.Metrics["local_ms"] = ms(localLat)
	r.Metrics["image_ms"] = ms(imageLat)
	r.Metrics["sync_kb"] = kb(syncBytes)
	r.Metrics["image_kb"] = kb(imageBytes)
	if converged && syncBytes*100 < imageBytes {
		r.Verdict = "PASS: parameter sync keeps sites identical at ≫100x less traffic than image shipping"
	} else {
		r.Verdict = "CHECK: unexpected cost ratio (see rows)"
	}
	return r, nil
}

// RunE11 reproduces section 4.4: steering a simulation parameter shows an
// effect well inside the ~60 s human tolerance, and intermediate results
// (session events and samples) keep the user informed while waiting.
func RunE11() (*Result, error) {
	r := newResult()

	building, err := airflow.CarShowBuilding(2)
	if err != nil {
		return nil, err
	}
	session := core.NewSession(core.SessionConfig{Name: "e11", AppName: "airflow"})
	defer session.Close()
	st := session.Steered()
	st.RegisterFloat("vent-temp", 18, 5, 40, "supply temperature", func(v float64) {
		building.SetVent(10, 10, 6, v, 1.0)
		building.SetVent(10, 10, 18, v, 1.0)
		building.SetVent(30, 10, 12, v, 1.2)
	})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go session.Serve(l)
	conn, _ := net.Dial("tcp", l.Addr().String())
	client, err := core.Attach(conn, core.AttachOptions{Name: "engineer", SampleBuffer: 64})
	if err != nil {
		return nil, err
	}
	defer client.Close()

	stop := make(chan struct{})
	go func() {
		for step := int64(0); ; step++ {
			select {
			case <-stop:
				return
			default:
			}
			if st.Poll() == core.ControlStop {
				return
			}
			building.Step()
			s := core.NewSample(step)
			s.Channels["meanT"] = core.Scalar(building.MeanTemperature())
			st.Emit(s)
			if step%20 == 0 {
				st.Event(fmt.Sprintf("solver iterating, step %d", step))
			}
		}
	}()
	defer close(stop)

	// Let it settle, then steer the vents hot and wait for the room mean to
	// respond by 0.3°C.
	time.Sleep(200 * time.Millisecond)
	baseline := building.MeanTemperature()
	t0 := time.Now()
	sctx, scancel := context.WithTimeout(context.Background(), time.Second)
	defer scancel()
	if err := client.SetParamContext(sctx, "vent-temp", 35); err != nil {
		return nil, err
	}
	var responded time.Duration
	samples := 0
	for {
		select {
		case s := <-client.Samples():
			samples++
			if s.Channels["meanT"].Value() > baseline+0.3 {
				responded = time.Since(t0)
			}
		case <-time.After(100 * time.Millisecond):
		}
		if responded > 0 || time.Since(t0) > 60*time.Second {
			break
		}
	}
	events := len(client.Events())

	r.linef("steer -> observable effect    %8.2f s  (tolerance: 60 s)", responded.Seconds())
	r.linef("intermediate samples shown    %8d", samples)
	r.linef("activity events (hourglass)   %8d", events)
	r.Metrics["respond_s"] = responded.Seconds()
	r.Metrics["samples"] = float64(samples)
	r.Metrics["events"] = float64(events)
	if responded > 0 && responded < 60*time.Second && samples > 0 {
		r.Verdict = "PASS: effect inside human tolerance, with continuous intermediate feedback"
	} else {
		r.Verdict = "FAIL: no observable effect within tolerance"
	}
	return r, nil
}

// RunE12 reproduces the scaling claim of section 4.6 on the live engine: a
// collaborative steer costs one parameter message regardless of how many
// sites are watching, because the shared state fans out from the hub rather
// than being re-shipped by the steerer. A real PEPC run is hosted on a hub
// session over loopback TCP; the audience grows across rows, attached at
// mixed delivery tiers (steering-tier collaborators seeing every frame,
// observer-tier watchers on coalesced interest-managed relay), and each row
// measures the pilot's steer→observable-effect latency through the live
// simulation loop.
func RunE12() (*Result, error) {
	r := newResult()
	sim, err := pepc.New(pepc.Params{Theta: 0.5, Dt: 0.005, Eps: 0.05, Seed: 7, Workers: 2})
	if err != nil {
		return nil, err
	}
	sim.AddPlasmaBall(96, pepc.Vec{}, 1, 0.05)

	h := hub.New(hub.Config{})
	defer h.Close()
	session, err := h.CreateSession(core.SessionConfig{Name: "collab-pepc", AppName: "pepc"})
	if err != nil {
		return nil, err
	}
	adapter, err := pepc.NewSteered(session.Steered(), sim, pepc.SteerConfig{SampleStride: 1})
	if err != nil {
		return nil, err
	}
	appDone := make(chan struct{})
	go func() {
		defer close(appDone)
		defer session.Close()
		adapter.Run()
	}()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer l.Close()
	go h.Serve(l)
	addr := l.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	pilot, err := core.Dial(ctx, addr, core.AttachOptions{
		Name: "pilot", Session: "collab-pepc", WantMaster: true, SampleBuffer: 64,
	})
	if err != nil {
		return nil, err
	}
	defer pilot.Close()

	// nextParticles waits for the next diagnostics sample and returns its
	// particle count — the observable the beam steer moves.
	nextParticles := func() (float64, error) {
		select {
		case s := <-pilot.Samples():
			return s.Channels["particles"].Value(), nil
		case <-time.After(10 * time.Second):
			return 0, fmt.Errorf("E12: simulation sample stream stalled")
		}
	}

	r.linef("%-9s %10s %10s %14s %16s", "audience", "steerers", "observers", "steer→effect", "fan-out ratio")
	var audience []*core.Client
	defer func() {
		for _, c := range audience {
			c.Close()
		}
	}()

	var respondSeries, ratioSeries []float64
	for _, target := range []int{2, 8, 32} {
		// Grow the audience to the target: one in four collaborators at the
		// steering tier, the rest interest-managed observers.
		for len(audience) < target {
			opts := core.AttachOptions{
				Name:    fmt.Sprintf("site-%02d", len(audience)),
				Session: "collab-pepc",
			}
			if len(audience)%4 != 0 {
				opts.Tier = core.TierObserver
				opts.Subscriptions = []core.Subscription{core.ChannelSub("particles")}
			}
			c, err := core.Dial(ctx, addr, opts)
			if err != nil {
				return nil, err
			}
			audience = append(audience, c)
		}

		// Baseline, then steer the beam on and time the pilot seeing the
		// particle count respond through the live loop.
		base, err := nextParticles()
		if err != nil {
			return nil, err
		}
		st0 := h.Stats()
		t0 := time.Now()
		if err := pilot.SetValueContext(ctx, "beam-intensity", core.IntValue(8)); err != nil {
			return nil, err
		}
		var responded time.Duration
		for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
			v, err := nextParticles()
			if err != nil {
				return nil, err
			}
			if v > base {
				responded = time.Since(t0)
				break
			}
		}
		if err := pilot.SetValueContext(ctx, "beam-intensity", core.IntValue(0)); err != nil {
			return nil, err
		}
		// Drain until the beam-off steer has applied so the next row's
		// baseline is stable.
		for prev := -1.0; ; {
			v, err := nextParticles()
			if err != nil {
				return nil, err
			}
			if v == prev {
				break
			}
			prev = v
		}
		st1 := h.Stats()

		// Fan-out ratio: frames delivered per frame emitted across the row —
		// the engine absorbing the audience, not the steerer.
		var ratio float64
		if d := st1.SamplesEmitted - st0.SamplesEmitted; d > 0 {
			ratio = float64(st1.SamplesDelivered-st0.SamplesDelivered) / float64(d)
		}
		steerers := (target + 3) / 4
		r.linef("%-9d %10d %10d %12.1fms %15.1fx",
			target, 1+steerers, target-steerers, responded.Seconds()*1e3, ratio)
		r.Metrics[fmt.Sprintf("respond_ms_%d", target)] = responded.Seconds() * 1e3
		r.Metrics[fmt.Sprintf("fanout_ratio_%d", target)] = ratio
		respondSeries = append(respondSeries, responded.Seconds()*1e3)
		ratioSeries = append(ratioSeries, ratio)
	}

	bounded := true
	for _, ms := range respondSeries {
		if ms <= 0 || ms > 2000 {
			bounded = false
		}
	}
	grows := ratioSeries[len(ratioSeries)-1] > 2*ratioSeries[0]
	if bounded && grows {
		r.Verdict = "PASS: steer cost flat and bounded as the audience grows 16x; the hub's fan-out absorbs the collaboration scaling"
	} else {
		r.Verdict = "CHECK: unexpected scaling (see rows)"
	}
	pilot.StopContext(ctx)
	select {
	case <-appDone:
	case <-time.After(10 * time.Second):
		return nil, fmt.Errorf("E12: simulation did not stop")
	}
	return r, nil
}

// RunE13 reproduces Figure 4 / section 4.6: a venue hosts the COVISE session
// descriptor and media streams; native-multicast sites and a NAT'd bridged
// site all receive the video, with the bridge's extra hop measurable.
func RunE13() (*Result, error) {
	r := newResult()
	vs := accessgrid.NewVenueServer()
	venue, err := vs.CreateVenue("e13", "showcase")
	if err != nil {
		return nil, err
	}
	if err := venue.RegisterApp(accessgrid.AppDescriptor{
		Name: "building-analysis", Type: "covise-session", Endpoint: "covise://hlrs/carshow",
	}); err != nil {
		return nil, err
	}
	if len(venue.FindApps("covise-session")) != 1 {
		return nil, fmt.Errorf("E13: shared app not discoverable")
	}

	video, _ := venue.Stream("video")
	cam := video.Join("cave", netsim.Loopback)
	var members []*netsim.Member
	for i := 0; i < 4; i++ {
		members = append(members, video.Join(fmt.Sprintf("site-%d", i), netsim.Metro))
	}
	bridge := video.Bridge("bridge", netsim.Loopback)
	defer bridge.Close()
	natConn, natSite := netsim.Pipe(netsim.Metro)
	defer natSite.Close()
	go bridge.Subscribe(natConn)
	time.Sleep(10 * time.Millisecond)

	payload := make([]byte, 8192) // one video frame packet
	const frames = 20
	t0 := time.Now()
	for i := 0; i < frames; i++ {
		if err := cam.Send(payload); err != nil {
			return nil, err
		}
	}
	// Multicast delivery.
	var mcastLat time.Duration
	got := 0
	for _, m := range members {
		for i := 0; i < frames; i++ {
			if _, err := m.Recv(2 * time.Second); err == nil {
				got++
			}
		}
	}
	mcastLat = time.Since(t0)

	// Bridged delivery: read frames*payload bytes (plus framing) from the
	// unicast conn.
	t0 = time.Now()
	buf := make([]byte, 16<<10)
	bridgedBytes := 0
	natSite.SetReadDeadline(time.Now().Add(3 * time.Second))
	for bridgedBytes < frames*len(payload) {
		n, err := natSite.Read(buf)
		if err != nil {
			break
		}
		bridgedBytes += n
	}
	bridgeLat := time.Since(t0)

	r.linef("multicast sites            %d, received %d/%d frames in %.1f ms", len(members), got, len(members)*frames, ms(mcastLat))
	r.linef("bridged NAT site           received %.0f KB in %.1f ms", float64(bridgedBytes)/1024, ms(bridgeLat))
	r.linef("bridge relayed             %d packets", bridge.Relayed())
	r.linef("shared app in venue        %q -> %s", "building-analysis", "covise://hlrs/carshow")
	r.Metrics["mcast_frames"] = float64(got)
	r.Metrics["bridged_kb"] = float64(bridgedBytes) / 1024
	if got == len(members)*frames && bridgedBytes >= frames*len(payload) {
		r.Verdict = "PASS: multicast and bridged sites both receive the full stream; session startable from the venue"
	} else {
		r.Verdict = fmt.Sprintf("FAIL: mcast %d/%d, bridged %dB", got, len(members)*frames, bridgedBytes)
	}
	return r, nil
}
