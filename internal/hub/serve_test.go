package hub

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestSilentDialerCannotWedgeShard is the ISSUE 6 hardening regression: a
// flood of connections that never send their attach frame must not wedge
// the accept path. With MaxHandshakes slots all held by silent dialers the
// hub sheds the overflow immediately, a legitimate client gets through as
// soon as HandshakeTimeout reclaims a slot, and the accept-path counters
// account for every connection.
func TestSilentDialerCannotWedgeShard(t *testing.T) {
	h, addr := testHub(t, Config{
		Shards:           1,
		HandshakeTimeout: 200 * time.Millisecond,
		MaxHandshakes:    4,
	})
	if _, err := h.CreateSession(core.SessionConfig{Name: "victim"}); err != nil {
		t.Fatal(err)
	}

	// Saturate every handshake slot, then keep pouring connections on: the
	// overflow must be shed (closed), not queued.
	const silent = 12
	conns := make([]net.Conn, 0, silent)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < silent; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	waitFor(t, "overflow connections to be shed", func() bool {
		return h.Stats().ConnsShed > 0
	})

	// A real client retried through the flood must attach well within a few
	// handshake windows — shed now, admitted once the silent dialers time
	// out and free their slots.
	deadline := time.Now().Add(5 * time.Second)
	var cl *core.Client
	for time.Now().Before(deadline) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		cl, err = core.Attach(conn, core.AttachOptions{Session: "victim", Timeout: time.Second})
		if err == nil {
			break
		}
		cl = nil
		time.Sleep(20 * time.Millisecond)
	}
	if cl == nil {
		t.Fatal("legitimate client never got through the silent-dialer flood")
	}
	defer cl.Close()
	if cl.SessionName() != "victim" {
		t.Fatalf("attached to %q, want victim", cl.SessionName())
	}

	// Every silent connection ends accounted for: shed at accept, or it won
	// a handshake slot and HandshakeTimeout failed it.
	waitFor(t, "silent connections to be shed or timed out", func() bool {
		st := h.Stats()
		return st.ConnsShed+st.HandshakeFails >= silent
	})
	st := h.Stats()
	if st.ConnsAccepted == 0 || st.ConnsShed == 0 {
		t.Fatalf("accept-path counters flat: %+v", st)
	}
}

// flakyListener fails its first n Accepts with a temporary error, then
// delegates to the real listener: the EMFILE/ECONNABORTED shape Serve must
// ride out with backoff instead of returning.
type flakyListener struct {
	net.Listener
	mu   sync.Mutex
	fail int
}

type tempErr struct{}

func (tempErr) Error() string   { return "synthetic temporary accept failure" }
func (tempErr) Timeout() bool   { return false }
func (tempErr) Temporary() bool { return true }

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if l.fail > 0 {
		l.fail--
		l.mu.Unlock()
		return nil, tempErr{}
	}
	l.mu.Unlock()
	return l.Listener.Accept()
}

// TestAcceptLoopBackoffOnTemporaryError proves Serve survives a burst of
// temporary accept errors and still serves the clients that follow.
func TestAcceptLoopBackoffOnTemporaryError(t *testing.T) {
	h := New(Config{Shards: 1})
	t.Cleanup(h.Close)
	if _, err := h.CreateSession(core.SessionConfig{Name: "s"}); err != nil {
		t.Fatal(err)
	}
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: inner, fail: 5}

	serveDone := make(chan error, 1)
	go func() { serveDone <- h.Serve(fl) }()

	cl := dialSession(t, inner.Addr().String(), core.AttachOptions{Session: "s"})
	if cl.SessionName() != "s" {
		t.Fatalf("attached to %q, want s", cl.SessionName())
	}
	select {
	case err := <-serveDone:
		t.Fatalf("Serve returned during temporary errors: %v", err)
	default:
	}

	fl.mu.Lock()
	remaining := fl.fail
	fl.mu.Unlock()
	if remaining != 0 {
		t.Fatalf("Serve retried only %d of 5 temporary failures", 5-remaining)
	}

	// A permanent listener failure must still end Serve.
	h.Close()
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve after Close: %v", err)
	}
}

// TestServeReturnsOnPermanentError pins the non-temporary branch: a broken
// listener ends Serve with its error rather than spinning.
func TestServeReturnsOnPermanentError(t *testing.T) {
	h := New(Config{Shards: 1})
	t.Cleanup(h.Close)
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inner.Close() // Accept now fails with a permanent ErrClosed
	if err := h.Serve(inner); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Serve = %v, want net.ErrClosed", err)
	}
}
