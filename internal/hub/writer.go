package hub

import (
	"sync"
	"time"

	"repro/internal/core"
)

// writerPool drains client outbound queues for every session on one shard
// with a fixed set of writer goroutines, instead of one goroutine per
// client. Sessions signal readiness through the core.WriterScheduler
// interface; the pool batches each client's queued pre-encoded envelopes
// into few syscalls (protocol v2 broadcasts serialize once, so a drain
// moves []byte buffers — it never re-encodes per client) and reuses core's
// drop-on-slow-client policy — the bounded queues evict their oldest
// entries, the pool never blocks an emitter.
//
// Scheduling is edge-triggered: ClientHandle.MarkScheduled keeps at most one
// entry per client in the dirty queue, so queue capacity bounds clients, not
// messages, and a client emitting thousands of samples between drains costs
// one scheduling slot.
type writerPool struct {
	dirty   chan *core.ClientHandle
	batch   int
	timeout time.Duration
	closeCh chan struct{}
	wg      sync.WaitGroup
}

func newWriterPool(writers, batch int, timeout time.Duration) *writerPool {
	p := &writerPool{
		// One slot per potentially-dirty client; 4096 clients per shard is
		// far beyond the fan-out the hub targets, and overflow falls back to
		// a goroutine rather than blocking or losing the signal.
		dirty:   make(chan *core.ClientHandle, 4096),
		batch:   batch,
		timeout: timeout,
		closeCh: make(chan struct{}),
	}
	p.wg.Add(writers)
	for i := 0; i < writers; i++ {
		go p.run()
	}
	return p
}

// ClientReady implements core.WriterScheduler. It must not block: the caller
// is the emitting simulation.
func (p *writerPool) ClientReady(h *core.ClientHandle) {
	if !h.MarkScheduled() {
		return // already queued for a drain
	}
	select {
	case p.dirty <- h:
	case <-p.closeCh:
		h.ClearScheduled()
	default:
		// Dirty queue full (more live clients than capacity): hand the
		// signal to a goroutine so the emitter still never blocks.
		//steer:allow hotpathalloc overflow fallback only; sized dirty queues make this branch unreachable in steady state
		go func() {
			select {
			case p.dirty <- h:
			case <-p.closeCh:
				h.ClearScheduled()
			}
		}()
	}
}

// ClientClosed implements core.WriterScheduler. Stale dirty entries for the
// client drain to ErrClientGone, so nothing to unhook.
func (p *writerPool) ClientClosed(h *core.ClientHandle) {}

func (p *writerPool) run() {
	defer p.wg.Done()
	for {
		select {
		case h := <-p.dirty:
			p.drain(h)
		case <-p.closeCh:
			return
		}
	}
}

// drain writes one batch for the client, then re-arms its edge trigger. The
// clear-then-recheck order guarantees an enqueue racing with the batch is
// rescheduled rather than lost.
//
//steer:hotpath
func (p *writerPool) drain(h *core.ClientHandle) {
	_, more, err := h.DrainBatch(p.batch, p.timeout)
	h.ClearScheduled()
	if err != nil {
		return // client declared gone; its session drops it
	}
	if more || h.Pending() > 0 {
		p.ClientReady(h)
	}
}

func (p *writerPool) close() {
	close(p.closeCh)
	p.wg.Wait()
}
