package hub

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// shard owns a disjoint subset of the hub's sessions: its own registry map
// under its own lock, its own dispatch goroutine binding routed connections
// to sessions, and its own writer pool draining those sessions' clients.
// Sessions on different shards therefore never contend on a shared lock,
// a shared dispatch queue or a shared writer.
type shard struct {
	id   int
	pool *writerPool

	mu       sync.Mutex
	sessions map[string]*core.Session

	conns   chan *core.PendingConn
	closeCh chan struct{}
	wg      sync.WaitGroup
}

func newShard(id, writers, batch int, cfg Config) *shard {
	sh := &shard{
		id:       id,
		pool:     newWriterPool(writers, batch, cfg.WriteTimeout),
		sessions: make(map[string]*core.Session),
		conns:    make(chan *core.PendingConn, 64),
		closeCh:  make(chan struct{}),
	}
	sh.wg.Add(1)
	go sh.dispatch()
	return sh
}

// dispatch binds routed connections to this shard's sessions. Lookup runs
// under the shard lock only; serving runs on a per-connection goroutine as
// in core.Session.Serve.
func (sh *shard) dispatch() {
	defer sh.wg.Done()
	for {
		select {
		case pc := <-sh.conns:
			name := pc.SessionName()
			sh.mu.Lock()
			sess := sh.sessions[name]
			sh.mu.Unlock()
			if sess == nil {
				pc.Reject(fmt.Sprintf("hub: no session %q", name))
				continue
			}
			go sess.ServePending(pc)
		case <-sh.closeCh:
			// Reject connections still buffered (or racing in) so their
			// clients get an error now instead of a dangling socket.
			for {
				select {
				case pc := <-sh.conns:
					pc.Reject("hub: shutting down")
				default:
					return
				}
			}
		}
	}
}

// add registers a session; duplicate names are an error.
func (sh *shard) add(sess *core.Session) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.sessions[sess.Name()]; dup {
		return fmt.Errorf("hub: session %q already exists", sess.Name())
	}
	sh.sessions[sess.Name()] = sess
	return nil
}

// remove unregisters name if it still maps to sess (an evict racing with a
// re-create must not remove the newcomer) and reports whether it did.
func (sh *shard) remove(name string, sess *core.Session) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cur, ok := sh.sessions[name]; ok && cur == sess {
		delete(sh.sessions, name)
		return true
	}
	return false
}

// lookup returns the session named name, if registered.
func (sh *shard) lookup(name string) (*core.Session, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.sessions[name]
	return s, ok
}

// snapshot returns the shard's sessions.
func (sh *shard) snapshot() []*core.Session {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]*core.Session, 0, len(sh.sessions))
	for _, s := range sh.sessions {
		out = append(out, s)
	}
	return out
}

func (sh *shard) close() {
	close(sh.closeCh)
	sh.wg.Wait()
	for _, s := range sh.snapshot() {
		s.Close()
	}
	sh.pool.close()
}
