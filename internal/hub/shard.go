package hub

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/journal"
)

// shard owns a disjoint subset of the hub's sessions: its own registry map
// under its own lock, its own dispatch goroutine binding routed connections
// to sessions, its own writer pool draining those sessions' clients, and —
// when journaling is on — its own journal syncer batching flush/fsync for
// those sessions' logs. Sessions on different shards therefore never
// contend on a shared lock, a shared dispatch queue, a shared writer or a
// shared fsync.
type shard struct {
	id     int
	pool   *writerPool
	syncer *journal.Syncer // nil when journaling is off

	mu       sync.Mutex
	sessions map[string]*sessionEntry

	conns   chan *core.PendingConn
	closeCh chan struct{}
	wg      sync.WaitGroup
}

// sessionEntry pairs a session with its journal (nil when journaling is
// off). The journal outlives the session's registration on disk, but its
// handle closes with the entry so a re-created session can reopen the
// directory immediately. An entry with a nil sess is a reservation:
// CreateSession holds the name while it opens the journal, so a duplicate
// create can never touch (or recover-truncate) a live session's log.
type sessionEntry struct {
	sess *core.Session
	jnl  *journal.Journal
	// gone closes when removal has fully completed — journal flushed and
	// closed, name freed. Evict waits on it so "returned" means "ready
	// for revival" even when the Done-watcher performed the removal.
	gone chan struct{}
}

func newShard(id, writers, batch int, cfg Config) *shard {
	sh := &shard{
		id:       id,
		pool:     newWriterPool(writers, batch, cfg.WriteTimeout),
		sessions: make(map[string]*sessionEntry),
		conns:    make(chan *core.PendingConn, 64),
		closeCh:  make(chan struct{}),
	}
	if cfg.JournalDir != "" {
		sh.syncer = journal.NewSyncer(cfg.JournalFlushInterval)
	}
	sh.wg.Add(1)
	go sh.dispatch()
	return sh
}

// dispatch binds routed connections to this shard's sessions. Lookup runs
// under the shard lock only; serving runs on a per-connection goroutine as
// in core.Session.Serve.
func (sh *shard) dispatch() {
	defer sh.wg.Done()
	for {
		select {
		case pc := <-sh.conns:
			name := pc.SessionName()
			sh.mu.Lock()
			e := sh.sessions[name]
			sh.mu.Unlock()
			if e == nil || e.sess == nil {
				pc.Reject(fmt.Sprintf("hub: no session %q", name))
				continue
			}
			go e.sess.ServePending(pc)
		case <-sh.closeCh:
			// Reject connections still buffered (or racing in) so their
			// clients get an error now instead of a dangling socket.
			for {
				select {
				case pc := <-sh.conns:
					pc.Reject("hub: shutting down")
				default:
					return
				}
			}
		}
	}
}

// reserve claims a name before its session (and journal) exist; duplicate
// names — live sessions or concurrent reservations — are an error.
func (sh *shard) reserve(name string) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.sessions[name]; dup {
		return fmt.Errorf("hub: session %q already exists", name)
	}
	sh.sessions[name] = &sessionEntry{}
	return nil
}

// bind fills a reservation with its created session and journal.
func (sh *shard) bind(name string, sess *core.Session, jnl *journal.Journal) {
	sh.mu.Lock()
	sh.sessions[name] = &sessionEntry{sess: sess, jnl: jnl, gone: make(chan struct{})}
	sh.mu.Unlock()
}

// unreserve drops a reservation whose session never materialised.
func (sh *shard) unreserve(name string) {
	sh.mu.Lock()
	if e, ok := sh.sessions[name]; ok && e.sess == nil {
		delete(sh.sessions, name)
	}
	sh.mu.Unlock()
}

// remove unregisters name if it still maps to sess (an evict racing with a
// re-create must not remove the newcomer) and reports whether it did. The
// entry is downgraded to a reservation while the journal handle closes
// OUTSIDE the shard lock — the name stays claimed, so a revival can never
// open the directory alongside the flushing writer, but dispatch, lookup
// and creates for the shard's other sessions proceed during the flush.
// Callers must only invoke remove once the session is closed, or its final
// broadcasts would miss the journal.
func (sh *shard) remove(name string, sess *core.Session) bool {
	sh.mu.Lock()
	cur, ok := sh.sessions[name]
	if !ok || cur.sess != sess {
		sh.mu.Unlock()
		return false
	}
	sh.sessions[name] = &sessionEntry{}
	sh.mu.Unlock()
	if cur.jnl != nil {
		cur.jnl.Close()
	}
	sh.unreserve(name)
	close(cur.gone)
	return true
}

// entry returns the bound entry for name, if any.
func (sh *shard) entry(name string) *sessionEntry {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.sessions[name]
	if !ok || e.sess == nil {
		return nil
	}
	return e
}

// lookup returns the session named name, if registered and bound.
func (sh *shard) lookup(name string) (*core.Session, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.sessions[name]
	if !ok || e.sess == nil {
		return nil, false
	}
	return e.sess, true
}

// snapshot returns the shard's bound entries.
func (sh *shard) snapshot() []*sessionEntry {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]*sessionEntry, 0, len(sh.sessions))
	for _, e := range sh.sessions {
		if e.sess != nil {
			out = append(out, e)
		}
	}
	return out
}

func (sh *shard) close() {
	close(sh.closeCh)
	sh.wg.Wait()
	entries := sh.snapshot()
	for _, e := range entries {
		e.sess.Close()
	}
	sh.pool.close()
	if sh.syncer != nil {
		sh.syncer.Close()
	}
	// Close journals last: sessions are down and the syncer has swept, so
	// this is the final flush of anything still buffered.
	for _, e := range entries {
		if e.jnl != nil {
			e.jnl.Close()
		}
	}
}
