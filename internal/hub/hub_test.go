package hub

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func testHub(t *testing.T, cfg Config) (*Hub, string) {
	t.Helper()
	h := New(cfg)
	t.Cleanup(h.Close)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go h.Serve(l)
	return h, l.Addr().String()
}

func dialSession(t *testing.T, addr string, opts core.AttachOptions) *core.Client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Attach(conn, opts)
	if err != nil {
		t.Fatalf("attach %q to session %q: %v", opts.Name, opts.Session, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRoutingStability pins the consistent-hash routing: a session name maps
// to one shard, the same shard every time and in every goroutine, and the
// spread over shards is not degenerate.
func TestRoutingStability(t *testing.T) {
	h := New(Config{Shards: 8})
	defer h.Close()

	perShard := make(map[int]int)
	for i := 0; i < 256; i++ {
		name := fmt.Sprintf("session-%03d", i)
		want := h.ShardOf(name)
		perShard[want]++
		for j := 0; j < 10; j++ {
			if got := h.ShardOf(name); got != want {
				t.Fatalf("ShardOf(%q) unstable: %d then %d", name, want, got)
			}
		}
		// A second hub with the same shard count routes identically.
		h2 := New(Config{Shards: 8})
		if got := h2.ShardOf(name); got != want {
			t.Fatalf("ShardOf(%q) differs across hubs: %d vs %d", name, want, got)
		}
		h2.Close()
		if i > 0 { // only need the cross-hub check once per loop shape
			break
		}
	}
	for i := 0; i < 256; i++ {
		perShard[h.ShardOf(fmt.Sprintf("session-%03d", i))]++
	}
	for s := 0; s < 8; s++ {
		if perShard[s] == 0 {
			t.Fatalf("shard %d received no sessions out of 256: degenerate ring %v", s, perShard)
		}
	}

	// Created sessions land on — and are served from — their computed shard.
	sess, err := h.CreateSession(core.SessionConfig{Name: "pinned"})
	if err != nil {
		t.Fatal(err)
	}
	sh := h.shards[h.ShardOf("pinned")]
	if got, ok := sh.lookup("pinned"); !ok || got != sess {
		t.Fatal("session not registered on its ring shard")
	}
}

// TestConcurrentAttachSteerDetach drives 12 sessions, each with a steering
// master and observers attaching, steering, and detaching concurrently: the
// multi-session load the hub exists for.
func TestConcurrentAttachSteerDetach(t *testing.T) {
	const nSessions = 12
	const observers = 3

	h, addr := testHub(t, Config{Shards: 4})
	type run struct {
		st   *core.Steered
		vals chan float64
		stop chan struct{}
	}
	runs := make([]*run, nSessions)
	for i := 0; i < nSessions; i++ {
		sess, err := h.CreateSession(core.SessionConfig{
			Name: fmt.Sprintf("run-%02d", i), AppName: "osc",
		})
		if err != nil {
			t.Fatal(err)
		}
		r := &run{st: sess.Steered(), vals: make(chan float64, 64), stop: make(chan struct{})}
		if err := r.st.RegisterFloat("x", 0, 0, 100, "", func(v float64) { r.vals <- v }); err != nil {
			t.Fatal(err)
		}
		runs[i] = r
		// Simulation loop: poll and emit.
		go func(i int) {
			step := int64(0)
			for {
				select {
				case <-r.stop:
					return
				default:
				}
				r.st.Poll()
				s := core.NewSample(step)
				s.Channels["x"] = core.Scalar(float64(step))
				r.st.Emit(s)
				step++
				time.Sleep(time.Millisecond)
			}
		}(i)
		t.Cleanup(func() { close(r.stop) })
	}

	var wg sync.WaitGroup
	errCh := make(chan error, nSessions*(observers+1))
	for i := 0; i < nSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			session := fmt.Sprintf("run-%02d", i)
			master := dialSession(t, addr, core.AttachOptions{
				Name: "master", Session: session, WantMaster: true,
			})
			if master.SessionName() != session {
				errCh <- fmt.Errorf("routed to %q, wanted %q", master.SessionName(), session)
				return
			}
			// Observers attach, take a few samples, detach.
			var owg sync.WaitGroup
			for o := 0; o < observers; o++ {
				owg.Add(1)
				go func(o int) {
					defer owg.Done()
					obs := dialSession(t, addr, core.AttachOptions{
						Name: fmt.Sprintf("obs-%d", o), Session: session,
					})
					select {
					case <-obs.Samples():
					case <-time.After(5 * time.Second):
						errCh <- fmt.Errorf("%s obs-%d: no sample", session, o)
					}
					obs.Close()
				}(o)
			}
			// The master steers its own session's parameter.
			want := float64(10 + i)
			sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
			err := master.SetParamContext(sctx, "x", want)
			scancel()
			if err != nil {
				errCh <- fmt.Errorf("%s steer: %v", session, err)
				return
			}
			select {
			case got := <-runs[i].vals:
				if got != want {
					errCh <- fmt.Errorf("%s applied %v, want %v (cross-session steer leak?)", session, got, want)
				}
			case <-time.After(5 * time.Second):
				errCh <- fmt.Errorf("%s: steer never applied", session)
			}
			owg.Wait()
			master.Close()
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	waitFor(t, "all clients detached", func() bool { return h.Stats().Clients == 0 })
	st := h.Stats()
	if st.Sessions != nSessions {
		t.Fatalf("sessions = %d, want %d", st.Sessions, nSessions)
	}
	if st.SteersApplied != nSessions {
		t.Fatalf("steers applied = %d, want %d", st.SteersApplied, nSessions)
	}
	if st.SamplesEmitted == 0 || st.SamplesDelivered == 0 {
		t.Fatalf("no fan-out recorded: %+v", st)
	}
}

// TestDefaultSessionRouting preserves the classic single-session client: no
// Session in AttachOptions lands on the hub's default session.
func TestDefaultSessionRouting(t *testing.T) {
	h, addr := testHub(t, Config{Shards: 2})
	if _, err := h.CreateSession(core.SessionConfig{Name: "only"}); err != nil {
		t.Fatal(err)
	}
	c := dialSession(t, addr, core.AttachOptions{Name: "legacy"})
	if c.SessionName() != "only" {
		t.Fatalf("default routing gave %q", c.SessionName())
	}
}

// TestAttachUnknownSessionRejected covers the routing error path.
func TestAttachUnknownSessionRejected(t *testing.T) {
	_, addr := testHub(t, Config{Shards: 2})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := core.Attach(conn, core.AttachOptions{Session: "ghost", Timeout: 2 * time.Second}); err == nil {
		t.Fatal("attach to unknown session succeeded")
	}
}

// TestEviction covers all three ways a session ends — explicit Evict, a
// steered stop followed by Close, and hub shutdown — and that ended sessions
// leave the registry so their names are reusable.
func TestEviction(t *testing.T) {
	h, addr := testHub(t, Config{Shards: 4})

	// Explicit evict detaches clients and frees the name.
	if _, err := h.CreateSession(core.SessionConfig{Name: "doomed"}); err != nil {
		t.Fatal(err)
	}
	c := dialSession(t, addr, core.AttachOptions{Session: "doomed"})
	if !h.Evict("doomed") {
		t.Fatal("evict reported no session")
	}
	if _, ok := h.Lookup("doomed"); ok {
		t.Fatal("evicted session still registered")
	}
	waitFor(t, "evicted client detach", func() bool {
		select {
		case <-c.Samples():
			return false
		default:
			return c.Err() != nil
		}
	})

	// A session whose application ends (Close after a steered stop) is
	// auto-evicted; its name can be reused and routes to the new instance.
	sess, err := h.CreateSession(core.SessionConfig{Name: "doomed"})
	if err != nil {
		t.Fatalf("evicted name not reusable: %v", err)
	}
	sess.QueueStop()
	if sess.Steered().Poll() != core.ControlStop {
		t.Fatal("stop not seen")
	}
	sess.Close()
	waitFor(t, "auto-evict", func() bool { _, ok := h.Lookup("doomed"); return !ok })

	if h.Evict("never-existed") {
		t.Fatal("evict of unknown session reported true")
	}
}

// TestBatchedFanout exercises the per-shard writer pools: one session, many
// clients, a burst of samples; every client sees the freshest data and the
// hub's aggregate stats record the fan-out.
func TestBatchedFanout(t *testing.T) {
	const nClients = 10
	h, addr := testHub(t, Config{Shards: 2, WritersPerShard: 2, WriteBatch: 8})
	sess, err := h.CreateSession(core.SessionConfig{Name: "burst", SampleQueue: 8})
	if err != nil {
		t.Fatal(err)
	}
	st := sess.Steered()

	clients := make([]*core.Client, nClients)
	for i := range clients {
		clients[i] = dialSession(t, addr, core.AttachOptions{
			Name: fmt.Sprintf("viewer-%d", i), Session: "burst", SampleBuffer: 256,
		})
	}
	waitFor(t, "attaches", func() bool { return sess.ClientCount() == nClients })

	const emitted = 200
	for i := 0; i < emitted; i++ {
		s := core.NewSample(int64(i))
		s.Channels["x"] = core.Scalar(float64(i))
		st.Emit(s)
	}

	// Every client eventually receives the final sample (freshest-wins), and
	// the stream it sees is monotonic.
	for i, c := range clients {
		last := int64(-1)
		deadline := time.Now().Add(5 * time.Second)
		for last != emitted-1 && time.Now().Before(deadline) {
			select {
			case s := <-c.Samples():
				if s.Step <= last {
					t.Fatalf("client %d: non-monotonic %d after %d", i, s.Step, last)
				}
				last = s.Step
			case <-time.After(300 * time.Millisecond):
				t.Fatalf("client %d stalled at step %d", i, last)
			}
		}
		if last != emitted-1 {
			t.Fatalf("client %d never saw final sample (at %d)", i, last)
		}
	}

	stats := h.Stats()
	if stats.SamplesEmitted != emitted {
		t.Fatalf("emitted = %d", stats.SamplesEmitted)
	}
	if stats.SamplesDelivered+stats.SamplesDropped != emitted*nClients {
		t.Fatalf("delivered %d + dropped %d != %d", stats.SamplesDelivered, stats.SamplesDropped, emitted*nClients)
	}
}

// TestAttachDuringEmissionBurst pins the handshake ordering: while a session
// emits as fast as it can, every attaching client must still see the welcome
// as its first frame — no pooled writer may slip a sample in front of it.
func TestAttachDuringEmissionBurst(t *testing.T) {
	h, addr := testHub(t, Config{Shards: 2})
	sess, err := h.CreateSession(core.SessionConfig{Name: "hot", SampleQueue: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := sess.Steered()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for step := int64(0); ; step++ {
			select {
			case <-stop:
				return
			default:
			}
			s := core.NewSample(step)
			s.Channels["x"] = core.Scalar(float64(step))
			st.Emit(s)
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errCh <- err
				return
			}
			c, err := core.Attach(conn, core.AttachOptions{
				Name: fmt.Sprintf("burst-%d", i), Session: "hot", Timeout: 5 * time.Second,
			})
			if err != nil {
				errCh <- fmt.Errorf("attach %d during burst: %w", i, err)
				return
			}
			select {
			case <-c.Samples():
			case <-time.After(5 * time.Second):
				errCh <- fmt.Errorf("client %d: no samples after attach", i)
			}
			c.Close()
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestControlSurvivesSampleBurst pins the split-queue property end to end
// through the pooled writers: an event queued before a sample burst is
// delivered, not evicted.
func TestControlSurvivesSampleBurst(t *testing.T) {
	h, addr := testHub(t, Config{Shards: 1})
	sess, err := h.CreateSession(core.SessionConfig{Name: "s", SampleQueue: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := sess.Steered()
	c := dialSession(t, addr, core.AttachOptions{Session: "s"})
	waitFor(t, "attach", func() bool { return sess.ClientCount() == 1 })

	st.Event("precious")
	for i := 0; i < 500; i++ {
		st.Emit(core.NewSample(int64(i)))
	}
	waitFor(t, "event delivery", func() bool {
		for _, ev := range c.Events() {
			if ev == "precious" {
				return true
			}
		}
		return false
	})
}

// TestHubFloorControl drives the floor-control subsystem through the hub:
// session floor defaults flow from Config.SessionDefaults, a wedged master
// behind the pooled writers loses its lease, per-session floor state is
// visible via SessionFloor, and the hub Stats aggregate the transitions.
func TestHubFloorControl(t *testing.T) {
	h, addr := testHub(t, Config{
		Shards: 2,
		SessionDefaults: core.SessionConfig{
			FloorPolicy: core.FloorSteal,
			MasterLease: 60 * time.Millisecond,
		},
	})
	sess, err := h.CreateSession(core.SessionConfig{Name: "contested"})
	if err != nil {
		t.Fatal(err)
	}

	// The wedged master: heartbeats disabled, never sends after attach.
	m := dialSession(t, addr, core.AttachOptions{
		Name: "wedged", Session: "contested", HeartbeatInterval: -1,
	})
	if m.FloorPolicy() != core.FloorSteal || m.MasterLease() != 60*time.Millisecond {
		t.Fatalf("welcome floor advertisement: %v/%v", m.FloorPolicy(), m.MasterLease())
	}
	next := dialSession(t, addr, core.AttachOptions{Name: "next", Session: "contested"})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := next.RequestMaster(ctx); err != nil {
		t.Fatalf("queued requester not granted after lease expiry: %v", err)
	}
	waitFor(t, "expiry visible", func() bool { return sess.Master() == "next" })

	fs, ok := h.SessionFloor("contested")
	if !ok || fs.Master != "next" || fs.Expiries == 0 {
		t.Fatalf("SessionFloor = %+v, %v", fs, ok)
	}
	if _, ok := h.SessionFloor("ghost"); ok {
		t.Fatal("SessionFloor found a ghost session")
	}

	// Administrative steal through the hub (policy came from the defaults).
	admin := dialSession(t, addr, core.AttachOptions{Name: "admin", Session: "contested"})
	if err := admin.StealMaster(time.Second); err != nil {
		t.Fatalf("steal: %v", err)
	}
	waitFor(t, "steal visible", func() bool { return sess.Master() == "admin" })

	st := h.Stats()
	if st.FloorGrants == 0 || st.FloorExpiries == 0 || st.FloorSteals == 0 {
		t.Fatalf("hub floor aggregates = %+v", st)
	}
}

// TestHubFloorDefaultsRespectExplicitValues: SessionDefaults fill only
// unset floor fields — an explicit FloorFIFO is not upgraded to the hub's
// default policy, and a negative MasterLease disables leases per session
// despite a hub-wide lease default.
func TestHubFloorDefaultsRespectExplicitValues(t *testing.T) {
	h, addr := testHub(t, Config{
		Shards: 1,
		SessionDefaults: core.SessionConfig{
			FloorPolicy: core.FloorSteal,
			MasterLease: 50 * time.Millisecond,
		},
	})
	if _, err := h.CreateSession(core.SessionConfig{
		Name:        "pinned",
		FloorPolicy: core.FloorFIFO,
		MasterLease: -1,
	}); err != nil {
		t.Fatal(err)
	}
	c := dialSession(t, addr, core.AttachOptions{Name: "m", Session: "pinned"})
	if c.FloorPolicy() != core.FloorFIFO {
		t.Fatalf("explicit FIFO upgraded to %v", c.FloorPolicy())
	}
	if c.MasterLease() != 0 {
		t.Fatalf("explicitly disabled lease advertised as %v", c.MasterLease())
	}
	// No lease: steal attempts under FIFO are denied, and the master keeps
	// the floor without heartbeats well past the hub's default lease.
	thief := dialSession(t, addr, core.AttachOptions{Name: "thief", Session: "pinned"})
	if err := thief.StealMaster(time.Second); !errors.Is(err, core.ErrFloorHeld) {
		t.Fatalf("steal under pinned FIFO = %v", err)
	}
	time.Sleep(150 * time.Millisecond) // 3× the hub default lease
	if fs, _ := h.SessionFloor("pinned"); fs.Master != "m" || fs.Expiries != 0 {
		t.Fatalf("lease-disabled session expired its master: %+v", fs)
	}
}
