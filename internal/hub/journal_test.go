package hub

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// steerAndBroadcast drives a journaled session through a steer, an event
// and a sample so its log carries one frame of every class.
func steerAndBroadcast(t *testing.T, sess *core.Session, st *core.Steered, g float64) {
	t.Helper()
	if err := sess.QueueSetParam("g", g); err != nil {
		t.Fatal(err)
	}
	st.Poll()
	sess.SetViewServer(core.ViewState{Eye: [3]float64{g, 0, 0}})
	st.Event("reached " + time.Duration(int64(g)).String())
	sample := core.NewSample(int64(g))
	sample.Channels["seg"] = core.Scalar(g / 10)
	st.Emit(sample)
}

// TestJournalRevivalAfterEviction evicts a journaled session and re-creates
// it under the same name: the new session recovers the old one's state from
// disk and replays its history to late joiners.
func TestJournalRevivalAfterEviction(t *testing.T) {
	dir := t.TempDir()
	h := New(Config{Shards: 2, JournalDir: dir})
	defer h.Close()

	sess, err := h.CreateSession(core.SessionConfig{Name: "lb"})
	if err != nil {
		t.Fatal(err)
	}
	st := sess.Steered()
	if err := st.RegisterFloat("g", 0, 0, 10, "", func(float64) {}); err != nil {
		t.Fatal(err)
	}
	steerAndBroadcast(t, sess, st, 5)

	// Evict closes the session and — synchronously — its journal handle,
	// so the directory is immediately ready for revival.
	if !h.Evict("lb") {
		t.Fatal("evict failed")
	}

	revived, err := h.CreateSession(core.SessionConfig{Name: "lb"})
	if err != nil {
		t.Fatal(err)
	}
	st2 := revived.Steered()
	var g float64
	if err := st2.RegisterFloat("g", 0, 0, 10, "", func(v float64) { g = v }); err != nil {
		t.Fatal(err)
	}
	if n, err := revived.Recover(); err != nil || n == 0 {
		t.Fatalf("Recover: n=%d err=%v", n, err)
	}
	if g != 5 {
		t.Fatalf("revived coupling = %v, want 5", g)
	}
	if v := revived.View(); v.Eye[0] != 5 {
		t.Fatalf("revived view: %+v", v)
	}
	if ls := revived.LastSample(); ls == nil || ls.Step != 5 {
		t.Fatalf("revived sample: %+v", ls)
	}
}

// TestJournalSurvivesHubRestart shuts a whole hub down and rebuilds it over
// the same journal root: sessions revive and late joiners see pre-restart
// history.
func TestJournalSurvivesHubRestart(t *testing.T) {
	dir := t.TempDir()

	h1 := New(Config{JournalDir: dir, JournalFsync: true})
	sess, err := h1.CreateSession(core.SessionConfig{Name: "run-a"})
	if err != nil {
		t.Fatal(err)
	}
	st := sess.Steered()
	if err := st.RegisterFloat("g", 0, 0, 10, "", func(float64) {}); err != nil {
		t.Fatal(err)
	}
	steerAndBroadcast(t, sess, st, 7)
	h1.Close()

	if entries, err := os.ReadDir(filepath.Join(dir, sessionDirName("run-a"))); err != nil || len(entries) == 0 {
		t.Fatalf("no journal segments on disk: %v %v", entries, err)
	}

	h2 := New(Config{JournalDir: dir})
	defer h2.Close()
	revived, err := h2.CreateSession(core.SessionConfig{Name: "run-a"})
	if err != nil {
		t.Fatal(err)
	}
	st2 := revived.Steered()
	var g float64
	if err := st2.RegisterFloat("g", 0, 0, 10, "", func(v float64) { g = v }); err != nil {
		t.Fatal(err)
	}
	if n, err := revived.Recover(); err != nil || n == 0 {
		t.Fatalf("Recover after restart: n=%d err=%v", n, err)
	}
	if g != 7 {
		t.Fatalf("restarted coupling = %v, want 7", g)
	}

	// A client attaching to the revived hub session replays the
	// pre-restart event and sample history.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go h2.Serve(l)
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Attach(conn, core.AttachOptions{Name: "late", Session: "run-a"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitCond(t, "pre-restart event replay", func() bool { return len(c.Events()) == 1 })
	select {
	case got := <-c.Samples():
		if got.Step != 7 {
			t.Fatalf("replayed sample step = %d", got.Step)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pre-restart sample not replayed")
	}
	if p, _ := c.Param("g"); p.Value != core.FloatValue(7) {
		t.Fatalf("late joiner param after restart: %+v", p)
	}
}

func TestSessionDirNameSanitises(t *testing.T) {
	// Clean names stay recognisable as a prefix of their directory.
	if got := sessionDirName("steerd-lb3d-00"); !strings.HasPrefix(got, "steerd-lb3d-00-") {
		t.Errorf("clean name not recognisable: %q", got)
	}
	// Distinct names must never share a directory: not when sanitising
	// collapses their unsafe runes identically, and not when a literal
	// name mimics another name's sanitised form.
	seen := map[string]string{}
	for _, in := range []string{
		"sim:1", "sim 1", "sim/1", "a/b\\c", "..", "", "run:1 [hot]",
		"steerd-lb3d-00", sessionDirName("sim:1"),
	} {
		got := sessionDirName(in)
		if got == "" || got != filepath.Base(got) || strings.Trim(got, ".") == "" {
			t.Errorf("sessionDirName(%q) = %q is not a safe directory name", in, got)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("collision: %q and %q both map to %q", prev, in, got)
		}
		seen[got] = in
	}
	// Stable: the same name always maps to the same directory (revival
	// depends on it).
	if sessionDirName("run-a") != sessionDirName("run-a") {
		t.Error("mapping not stable")
	}
}
