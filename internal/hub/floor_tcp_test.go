package hub

// End-to-end floor-control coverage over real TCP sockets: the
// request/grant/deny/steal/lease-expiry scenarios of
// internal/core/floor_test.go, re-run through the full production path —
// Hub.Serve accept loop, handshake routing, shard dispatch, writer pools —
// instead of net.Pipe. What these add over the core tests is the claim that
// floor arbitration survives the hub's batched, pooled delivery machinery:
// grants arrive as broadcasts drained by a shared writer pool, and denial
// acks interleave with sample traffic on real sockets.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
)

// floorHub spins a hub with one session under the given floor config and
// returns the hub, its address and the session name.
func floorHub(t *testing.T, cfg core.SessionConfig) (*Hub, string, string) {
	t.Helper()
	if cfg.Name == "" {
		cfg.Name = "floor-e2e"
	}
	h, addr := testHub(t, Config{Shards: 2})
	if _, err := h.CreateSession(cfg); err != nil {
		t.Fatal(err)
	}
	return h, addr, cfg.Name
}

// TestTCPFloorQueuedThenGranted: a contested blocking request over TCP
// queues, and the holder's release passes the floor to the waiter.
func TestTCPFloorQueuedThenGranted(t *testing.T) {
	h, addr, name := floorHub(t, core.SessionConfig{FloorPolicy: core.FloorFIFO})
	m := dialSession(t, addr, core.AttachOptions{Name: "m", Session: name, WantMaster: true})
	o := dialSession(t, addr, core.AttachOptions{Name: "o", Session: name})

	granted := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		granted <- o.RequestMaster(ctx)
	}()
	waitFor(t, "request queued", func() bool {
		st, ok := h.SessionFloor(name)
		return ok && st.Pending == 1
	})

	if err := m.ReleaseMaster(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := <-granted; err != nil {
		t.Fatalf("queued request not granted: %v", err)
	}
	waitFor(t, "grant visible on both clients", func() bool {
		return o.Role() == core.RoleMaster && m.Master() == "o"
	})
	st, _ := h.SessionFloor(name)
	if st.Master != "o" || st.Pending != 0 || st.Releases != 1 {
		t.Fatalf("floor stats = %+v", st)
	}
}

// TestTCPFloorNoWaitDenial: TryRequestMaster against a held floor is an
// explicit prompt denial naming the holder — never a queue entry.
func TestTCPFloorNoWaitDenial(t *testing.T) {
	h, addr, name := floorHub(t, core.SessionConfig{FloorPolicy: core.FloorFIFO})
	dialSession(t, addr, core.AttachOptions{Name: "m", Session: name, WantMaster: true})
	o := dialSession(t, addr, core.AttachOptions{Name: "o", Session: name})

	err := o.TryRequestMaster(2 * time.Second)
	if !errors.Is(err, core.ErrFloorHeld) {
		t.Fatalf("no-wait request = %v, want ErrFloorHeld", err)
	}
	st, _ := h.SessionFloor(name)
	if st.Denials != 1 || st.Pending != 0 || st.Master != "m" {
		t.Fatalf("floor stats after denial = %+v", st)
	}
	// The denial also shows in the hub-level aggregate the load harness
	// reads.
	if hs := h.Stats(); hs.FloorDenials != 1 {
		t.Fatalf("hub aggregate denials = %d, want 1", hs.FloorDenials)
	}
}

// TestTCPFloorCancelWithdrawsRequest: cancelling a blocked RequestMaster
// withdraws the queued entry, and a later release bypasses the withdrawn
// waiter.
func TestTCPFloorCancelWithdrawsRequest(t *testing.T) {
	h, addr, name := floorHub(t, core.SessionConfig{FloorPolicy: core.FloorFIFO})
	m := dialSession(t, addr, core.AttachOptions{Name: "m", Session: name, WantMaster: true})
	o := dialSession(t, addr, core.AttachOptions{Name: "o", Session: name})

	done := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { done <- o.RequestMaster(ctx) }()
	waitFor(t, "request queued", func() bool {
		st, ok := h.SessionFloor(name)
		return ok && st.Pending == 1
	})

	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled request = %v", err)
	}
	waitFor(t, "request withdrawn", func() bool {
		st, _ := h.SessionFloor(name)
		return st.Pending == 0
	})

	if err := m.ReleaseMaster(time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "floor free", func() bool {
		st, _ := h.SessionFloor(name)
		return st.Master == ""
	})
	if o.Role() == core.RoleMaster {
		t.Fatal("withdrawn request was granted")
	}
}

// TestTCPFloorFIFOOrder: three contenders over real sockets are granted
// strictly in arrival order as the floor is passed down the line.
func TestTCPFloorFIFOOrder(t *testing.T) {
	h, addr, name := floorHub(t, core.SessionConfig{FloorPolicy: core.FloorFIFO})
	m := dialSession(t, addr, core.AttachOptions{Name: "holder", Session: name, WantMaster: true})

	const n = 3
	waiters := make([]*core.Client, n)
	grants := make([]chan error, n)
	order := make(chan string, n)
	for i := 0; i < n; i++ {
		waiters[i] = dialSession(t, addr, core.AttachOptions{
			Name: fmt.Sprintf("w%d", i), Session: name,
		})
		grants[i] = make(chan error, 1)
		c, idx := waiters[i], i
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			err := c.RequestMaster(ctx)
			if err == nil {
				order <- c.Name()
			}
			grants[idx] <- err
		}()
		waitFor(t, "request queued", func() bool {
			st, ok := h.SessionFloor(name)
			return ok && st.Pending == i+1
		})
	}

	prev := m
	for i := 0; i < n; i++ {
		if err := prev.ReleaseMaster(time.Second); err != nil {
			t.Fatal(err)
		}
		if err := <-grants[i]; err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
		if got := <-order; got != fmt.Sprintf("w%d", i) {
			t.Fatalf("grant %d went to %q", i, got)
		}
		prev = waiters[i]
	}
}

// TestTCPFloorPriorityOrder: under the priority policy, grants follow
// attach priority (descending), arrival breaking ties.
func TestTCPFloorPriorityOrder(t *testing.T) {
	h, addr, name := floorHub(t, core.SessionConfig{FloorPolicy: core.FloorPriority})
	m := dialSession(t, addr, core.AttachOptions{Name: "holder", Session: name, WantMaster: true})

	specs := []struct {
		name     string
		priority int64
	}{{"low", 1}, {"high", 9}, {"mid", 5}, {"high2", 9}}
	want := []string{"high", "high2", "mid", "low"}

	order := make(chan string, len(specs))
	clients := map[string]*core.Client{}
	for i, sp := range specs {
		c := dialSession(t, addr, core.AttachOptions{
			Name: sp.name, Session: name, Priority: sp.priority,
		})
		clients[sp.name] = c
		go func(c *core.Client) {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := c.RequestMaster(ctx); err == nil {
				order <- c.Name()
			}
		}(c)
		waitFor(t, "request queued", func() bool {
			st, ok := h.SessionFloor(name)
			return ok && st.Pending == i+1
		})
	}

	prev := m
	for _, wname := range want {
		if err := prev.ReleaseMaster(time.Second); err != nil {
			t.Fatal(err)
		}
		if got := <-order; got != wname {
			t.Fatalf("grant went to %q, want %q", got, wname)
		}
		prev = clients[wname]
	}
}

// TestTCPFloorStealPolicyGate: administrative preemption succeeds under the
// steal policy and is an explicit ErrFloorHeld denial under FIFO — each
// session keeping its own policy on one shared hub.
func TestTCPFloorStealPolicyGate(t *testing.T) {
	h, addr := testHub(t, Config{Shards: 2})
	for sess, policy := range map[string]core.FloorPolicy{
		"steal-sess": core.FloorSteal,
		"fifo-sess":  core.FloorFIFO,
	} {
		if _, err := h.CreateSession(core.SessionConfig{Name: sess, FloorPolicy: policy}); err != nil {
			t.Fatal(err)
		}
	}

	m := dialSession(t, addr, core.AttachOptions{Name: "m", Session: "steal-sess", WantMaster: true})
	admin := dialSession(t, addr, core.AttachOptions{Name: "admin", Session: "steal-sess"})
	if err := admin.StealMaster(time.Second); err != nil {
		t.Fatalf("steal under steal policy: %v", err)
	}
	waitFor(t, "steal visible", func() bool {
		return m.Master() == "admin" && m.FloorReason() == core.FloorStolen
	})
	if st, _ := h.SessionFloor("steal-sess"); st.Steals != 1 || st.Master != "admin" {
		t.Fatalf("steal stats = %+v", st)
	}

	dialSession(t, addr, core.AttachOptions{Name: "m", Session: "fifo-sess", WantMaster: true})
	thief := dialSession(t, addr, core.AttachOptions{Name: "thief", Session: "fifo-sess"})
	if err := thief.StealMaster(time.Second); !errors.Is(err, core.ErrFloorHeld) {
		t.Fatalf("steal under fifo = %v, want ErrFloorHeld", err)
	}
	if st, _ := h.SessionFloor("fifo-sess"); st.Denials != 1 || st.Steals != 0 || st.Master != "m" {
		t.Fatalf("fifo steal stats = %+v", st)
	}
}

// TestTCPFloorLeaseExpiry: a master that goes silent on a real socket —
// heartbeats disabled, no requests — loses the floor within 1.25× the
// lease, and the queued contender is promoted with the expiry reason.
func TestTCPFloorLeaseExpiry(t *testing.T) {
	h, addr, name := floorHub(t, core.SessionConfig{
		FloorPolicy: core.FloorFIFO, MasterLease: 75 * time.Millisecond,
	})
	// HeartbeatInterval < 0 simulates the wedged master: attached, silent.
	wedged := dialSession(t, addr, core.AttachOptions{
		Name: "wedged", Session: name, WantMaster: true, HeartbeatInterval: -1,
	})
	o := dialSession(t, addr, core.AttachOptions{Name: "o", Session: name})

	granted := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		granted <- o.RequestMaster(ctx)
	}()
	if err := <-granted; err != nil {
		t.Fatalf("promotion after lease expiry: %v", err)
	}
	waitFor(t, "expiry visible", func() bool {
		st, _ := h.SessionFloor(name)
		return st.Master == "o" && st.Expiries >= 1
	})
	// The wedged client wakes to find it lost the floor.
	wctx, wcancel := context.WithTimeout(context.Background(), time.Second)
	defer wcancel()
	if err := wedged.PauseContext(wctx); !errors.Is(err, core.ErrNotMaster) {
		t.Fatalf("woken ex-master pause = %v, want ErrNotMaster", err)
	}
	if hs := h.Stats(); hs.FloorExpiries == 0 {
		t.Fatal("hub aggregate missed the lease expiry")
	}
}
