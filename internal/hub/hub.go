// Package hub multiplexes many concurrent steering sessions behind one
// listener: the broker-mediated layer between the paper's one-session
// deployment (one steered application, one core.Session, one port) and a
// production service hosting fleets of them. It follows the spirit of
// ShAppliT's broker-mediated application sharing and the vbroker of VISIT
// (section 3.3): participants dial one endpoint and name a session; the hub
// routes, the session steers.
//
// Scale comes from two structural decisions. First, the registry is sharded
// by consistent-hashing session names onto N shards, each with its own lock,
// dispatch goroutine and writer pool, so traffic for sessions on different
// shards never serialises on anything shared. Second, sample fan-out is
// batched: instead of core's one-writer-goroutine-per-client, each shard
// runs a small writer pool that coalesces every client's queued envelopes —
// pre-encoded []byte buffers under protocol v2's encode-once broadcasts —
// into batched, buffered writes (core.ClientHandle.DrainBatch), keeping
// core's drop-on-slow-client policy — a stalled viewer loses frames, never
// stalls a simulation and never holds a pool writer beyond one write
// deadline.
package hub

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
)

// Config configures a Hub.
type Config struct {
	// Shards is the number of session shards; 0 selects GOMAXPROCS capped
	// at 8.
	Shards int
	// WritersPerShard sizes each shard's writer pool; 0 selects 4.
	WritersPerShard int
	// WriteBatch bounds envelopes coalesced per client write; 0 selects 32.
	WriteBatch int
	// WriteTimeout bounds one batched write to a client; 0 selects 2s.
	WriteTimeout time.Duration
	// HandshakeTimeout bounds reading a connection's attach frame; 0
	// selects 5s.
	HandshakeTimeout time.Duration
	// MaxHandshakes caps connections allowed in the handshake phase at
	// once; 0 selects 512. Beyond the cap new connections are shed (closed
	// immediately) rather than queued: a flood of silent dialers can burn
	// at most MaxHandshakes × HandshakeTimeout of patience, never wedge the
	// accept path, and a shed client gets a fast failure it can retry.
	MaxHandshakes int
	// DefaultSession serves clients that attach without naming a session
	// (a single-session steerd's classic clients). "" rejects them unless
	// SetDefaultSession is called (CreateSession sets it to the first
	// session created).
	DefaultSession string
	// SessionDefaults seeds SampleQueue and ControlTimeout for sessions the
	// hub creates.
	SessionDefaults core.SessionConfig
	// Sock tunes every connection the hub accepts, applied in Serve before
	// the handshake: TCP_NODELAY stays on by default, with SO_RCVBUF /
	// SO_SNDBUF and keep-alive knobs per core.SockOpts. The zero value
	// changes nothing.
	Sock core.SockOpts
	// JournalDir, when non-empty, gives every session a durable on-disk
	// journal under JournalDir/<session-name>: broadcasts are logged
	// (encode-once — the journal stores the same bytes the clients get),
	// late joiners replay accumulated events and samples at attach, and a
	// session re-created under the same name reopens its log so
	// core.Session.Recover can revive its state.
	JournalDir string
	// JournalFsync fsyncs each batched journal flush: durability over raw
	// append throughput.
	JournalFsync bool
	// JournalSegmentBytes overrides the journal segment rotation
	// threshold; 0 selects the journal package default (1 MiB).
	JournalSegmentBytes int
	// JournalFlushInterval bounds how long an appended frame may sit in a
	// journal's write buffer before the shard's syncer flushes it; 0
	// selects 2ms.
	JournalFlushInterval time.Duration
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = min(runtime.GOMAXPROCS(0), 8)
	}
	if c.WritersPerShard <= 0 {
		c.WritersPerShard = 4
	}
	if c.WriteBatch <= 0 {
		c.WriteBatch = 32
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 2 * time.Second
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if c.MaxHandshakes <= 0 {
		c.MaxHandshakes = 512
	}
}

// Stats aggregates activity across every session the hub hosts, exposed the
// way core.Session.Stats is: cumulative counters plus a sampled rate.
type Stats struct {
	Shards   int
	Sessions int
	Clients  int

	SamplesEmitted   uint64
	SamplesDelivered uint64
	SamplesDropped   uint64
	SteersApplied    uint64
	SteersRejected   uint64

	// Delivery-tier aggregates: how the connected clients split across the
	// steering and observer tiers, frames skipped by interest filtering,
	// and relay-worker activity (publishes onto the worker rings, frames
	// coalesced away under backlog).
	TierSteerers   int
	TierObservers  int
	FramesFiltered uint64
	RelayPublished uint64
	RelayCoalesced uint64

	// Vectored-egress aggregates across every hosted session: batches by
	// path taken (writev vs the buffered fallback), small frames and bytes
	// gathered into the shared coalesce iovec, large-frame bytes handed to
	// the kernel zero-copy, and the estimated syscalls saved vs the
	// buffered path.
	EgressBatchesVectored uint64
	EgressBatchesBuffered uint64
	EgressFramesCoalesced uint64
	EgressBytesCoalesced  uint64
	EgressBytesZeroCopy   uint64
	EgressSyscallsSaved   uint64

	// Floor-control aggregates across every hosted session: how often the
	// master role moved, how contested it is right now, and how it moved
	// (explicit denial, lease expiry, administrative steal). Per-session
	// detail is available from SessionFloor.
	FloorGrants   uint64
	FloorDenials  uint64
	FloorExpiries uint64
	FloorSteals   uint64
	FloorHandoffs uint64
	FloorPending  int

	// SamplesPerSec is the emission rate observed between the two most
	// recent Stats calls at least rateWindow apart (0 until measurable).
	SamplesPerSec float64

	// Accept-path health: connections accepted, connections shed because
	// MaxHandshakes were already mid-handshake, and handshakes that failed
	// (bad frame, silent dialer hitting HandshakeTimeout).
	ConnsAccepted  uint64
	ConnsShed      uint64
	HandshakeFails uint64
}

// rateWindow is the minimum spacing between rate measurements.
const rateWindow = 100 * time.Millisecond

// Hub hosts many concurrent core.Sessions behind one listener.
type Hub struct {
	cfg    Config
	ring   *ring
	shards []*shard

	defaultMu      sync.Mutex
	defaultSession string

	closeOnce sync.Once
	closeCh   chan struct{}
	closed    atomic.Bool

	// hsSem holds one slot per connection currently in the handshake
	// phase; Serve sheds connections when none is free.
	hsSem              chan struct{}
	statConnsAccepted  atomic.Uint64
	statConnsShed      atomic.Uint64
	statHandshakeFails atomic.Uint64

	rateMu      sync.Mutex
	rateTime    time.Time
	rateEmitted uint64
	rate        float64
}

// New creates a hub ready to create sessions and serve listeners.
func New(cfg Config) *Hub {
	cfg.fill()
	h := &Hub{
		cfg:            cfg,
		ring:           newRing(cfg.Shards),
		shards:         make([]*shard, cfg.Shards),
		defaultSession: cfg.DefaultSession,
		closeCh:        make(chan struct{}),
		hsSem:          make(chan struct{}, cfg.MaxHandshakes),
	}
	for i := range h.shards {
		h.shards[i] = newShard(i, cfg.WritersPerShard, cfg.WriteBatch, cfg)
	}
	return h
}

// ShardOf returns the shard index a session name routes to. It is a pure
// function of the name and the hub's shard count (consistent hashing), so
// tests and operators can verify routing stability.
func (h *Hub) ShardOf(name string) int { return h.ring.lookup(name) }

// CreateSession creates and registers a session on its home shard. The
// session's queues are drained by the shard's writer pool; cfg.Writer must
// be nil. The first session created becomes the default for clients that
// attach without naming one.
//
// With Config.JournalDir set the session gets a durable journal (an
// existing log directory for the name is recovered, so re-creating an
// evicted or pre-restart session makes its history replayable again; call
// Session.Recover after registering parameters to revive state).
func (h *Hub) CreateSession(cfg core.SessionConfig) (*core.Session, error) {
	if h.closed.Load() {
		return nil, errors.New("hub: closed")
	}
	if cfg.Name == "" {
		return nil, errors.New("hub: session needs a name")
	}
	if cfg.Writer != nil {
		return nil, errors.New("hub: session writer is owned by the hub")
	}
	if cfg.SampleQueue <= 0 {
		cfg.SampleQueue = h.cfg.SessionDefaults.SampleQueue
	}
	if cfg.ControlTimeout <= 0 {
		cfg.ControlTimeout = h.cfg.SessionDefaults.ControlTimeout
	}
	// Floor defaults fill only *unset* fields: an explicit FloorFIFO (not
	// the FloorUnset zero) survives a hub whose default is another policy,
	// and an explicit MasterLease < 0 means "leases disabled for this
	// session" despite a hub-wide lease default (core treats <= 0 as
	// disabled).
	if cfg.FloorPolicy == core.FloorUnset {
		cfg.FloorPolicy = h.cfg.SessionDefaults.FloorPolicy
	}
	if cfg.MasterLease == 0 {
		cfg.MasterLease = h.cfg.SessionDefaults.MasterLease
	}
	// Relay defaults follow the same unset-only rule: 0 inherits the hub
	// default, and an explicit negative keeps its core meaning (one worker;
	// observer coalescing disabled).
	if cfg.FanoutWorkers == 0 {
		cfg.FanoutWorkers = h.cfg.SessionDefaults.FanoutWorkers
	}
	if cfg.ObserverInterval == 0 {
		cfg.ObserverInterval = h.cfg.SessionDefaults.ObserverInterval
	}
	// Egress coalescing follows the unset-only rule too: 0 inherits the
	// hub default, explicit negative keeps its core meaning (gathering
	// disabled, every frame its own iovec entry).
	if cfg.CoalesceBytes == 0 {
		cfg.CoalesceBytes = h.cfg.SessionDefaults.CoalesceBytes
	}
	sh := h.shards[h.ring.lookup(cfg.Name)]
	// Reserve the name before touching any journal directory: a duplicate
	// create must fail here, never run recovery (and its torn-tail
	// truncation) on a live session's log.
	if err := sh.reserve(cfg.Name); err != nil {
		return nil, err
	}
	var jnl *journal.Journal
	if h.cfg.JournalDir != "" && cfg.Journal == nil {
		var err error
		jnl, err = journal.Open(journal.Options{
			Dir:          filepath.Join(h.cfg.JournalDir, sessionDirName(cfg.Name)),
			SegmentBytes: h.cfg.JournalSegmentBytes,
			Fsync:        h.cfg.JournalFsync,
		})
		if err != nil {
			sh.unreserve(cfg.Name)
			return nil, fmt.Errorf("hub: session journal: %w", err)
		}
		cfg.Journal = jnl
	}
	cfg.Writer = sh.pool
	sess := core.NewSession(cfg)
	sh.bind(cfg.Name, sess, jnl)
	if jnl != nil {
		jnl.SetSnapshot(sess.SnapshotFrames)
		sh.syncer.Watch(jnl)
	}
	// Close sets the flag before sweeping the shards, so either this
	// re-check sees it (tear the session straight back down — its journal
	// would otherwise sit behind a dead syncer, never flushed, its lock
	// never released) or the bind landed before the shard sweep and
	// shutdown handles it.
	if h.closed.Load() {
		sess.Close()
		sh.remove(cfg.Name, sess)
		return nil, errors.New("hub: closed")
	}
	h.defaultMu.Lock()
	if h.defaultSession == "" {
		h.defaultSession = cfg.Name
	}
	h.defaultMu.Unlock()

	// Evict the session from the registry when it closes — via Evict, or
	// the application's own Close (which a steered stop should end in, as
	// cmd/steerd's run loops do). Removal also closes the journal handle
	// (hub shutdown leaves that to shard.close, after the final sweep).
	go func() {
		select {
		case <-sess.Done():
			sh.remove(cfg.Name, sess)
		case <-h.closeCh:
		}
	}()
	return sess, nil
}

// sessionDirName maps a session name onto a safe directory name: the
// sanitised name for readability plus, always, a hash of the raw name —
// two distinct sessions must never share (and cross-write) one journal
// directory, including a literal name crafted to look like another name's
// sanitised form.
func sessionDirName(name string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
	h := fnv.New64a()
	h.Write([]byte(name))
	return fmt.Sprintf("%s-%016x", strings.Trim(safe, "."), h.Sum64())
}

// Lookup returns the registered session with the given name.
func (h *Hub) Lookup(name string) (*core.Session, bool) {
	return h.shards[h.ring.lookup(name)].lookup(name)
}

// SessionFloor returns one session's floor-control snapshot: the current
// master, the pending-requester backlog and the transition counters.
func (h *Hub) SessionFloor(name string) (core.FloorStats, bool) {
	sess, ok := h.Lookup(name)
	if !ok {
		return core.FloorStats{}, false
	}
	return sess.FloorStats(), true
}

// Evict closes and unregisters a session, detaching its clients. It reports
// whether the session was registered. The session closes first — every
// broadcast a client could still receive is already journaled — and only
// then does remove free the name and close the journal handle, atomically
// under the shard lock, so by the time Evict returns the directory is
// ready for revival and a racing re-create can never have opened it
// alongside the dying writer. (An app still emitting after the close
// reaches neither clients nor the journal: consistent, by construction.)
func (h *Hub) Evict(name string) bool {
	sh := h.shards[h.ring.lookup(name)]
	e := sh.entry(name)
	if e == nil {
		return false
	}
	e.sess.Close()
	// The Done-watcher (or this remove — whichever wins) frees the name
	// and closes the journal; wait for that completion so an immediate
	// re-create succeeds. A concurrent hub shutdown takes over cleanup.
	sh.remove(name, e.sess)
	select {
	case <-e.gone:
	case <-h.closeCh:
	}
	return true
}

// SetDefaultSession names the session served to clients that attach without
// one.
func (h *Hub) SetDefaultSession(name string) {
	h.defaultMu.Lock()
	h.defaultSession = name
	h.defaultMu.Unlock()
}

// SessionNames returns every registered session name, in no particular
// order.
func (h *Hub) SessionNames() []string {
	var out []string
	for _, sh := range h.shards {
		for _, e := range sh.snapshot() {
			out = append(out, e.sess.Name())
		}
	}
	return out
}

// Serve accepts connections from l until the hub closes or the listener
// fails permanently. Each connection's attach frame is read on its own
// goroutine under HandshakeTimeout (a stalled handshake never blocks the
// accept loop), with at most Config.MaxHandshakes connections in that phase
// at once — excess connections are shed with an immediate close, so a flood
// of silent or hostile dialers cannot wedge a shard or exhaust goroutines.
// Transient accept errors (EMFILE, aborted connections) back off
// exponentially instead of killing the listener.
func (h *Hub) Serve(l net.Listener) error {
	go func() {
		<-h.closeCh
		l.Close()
	}()
	const backoffMin, backoffMax = 5 * time.Millisecond, time.Second
	backoff := backoffMin
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-h.closeCh:
				return nil
			default:
			}
			if ne, ok := err.(net.Error); ok && (ne.Timeout() || isTemporary(err)) {
				select {
				case <-time.After(backoff):
				case <-h.closeCh:
					return nil
				}
				backoff = min(backoff*2, backoffMax)
				continue
			}
			return err
		}
		backoff = backoffMin
		h.statConnsAccepted.Add(1)
		// Socket tuning happens where the conn is born, before any
		// handshake byte moves: NODELAY (default), buffer sizes,
		// keep-alive. Non-TCP listeners (tests over pipes) are untouched.
		h.cfg.Sock.Apply(conn)
		select {
		case h.hsSem <- struct{}{}:
		default:
			// Every handshake slot is occupied: shed. Closing is kinder
			// than queueing — the dialer fails fast and can retry, and the
			// hub's exposure to slow-handshake abuse stays bounded.
			h.statConnsShed.Add(1)
			conn.Close()
			continue
		}
		go func() {
			defer func() { <-h.hsSem }()
			h.route(conn)
		}()
	}
}

// isTemporary reports whether err advertises itself as retryable. net.Error's
// Temporary is deprecated but still what syscall-level accept failures
// (EMFILE, ECONNABORTED) implement; consulting it via a local interface keeps
// the deprecation contained.
func isTemporary(err error) bool {
	var te interface{ Temporary() bool }
	return errors.As(err, &te) && te.Temporary()
}

// route reads the attach frame and hands the pending connection to the home
// shard's dispatch queue.
func (h *Hub) route(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(h.cfg.HandshakeTimeout))
	pc, err := core.AcceptConn(conn)
	if err != nil {
		h.statHandshakeFails.Add(1)
		return // AcceptConn closed the conn
	}
	conn.SetReadDeadline(time.Time{})

	name := pc.SessionName()
	if name == "" {
		h.defaultMu.Lock()
		name = h.defaultSession
		h.defaultMu.Unlock()
		if name == "" {
			pc.Reject("hub: no session named and no default configured")
			return
		}
		pc.SetSessionName(name)
	}
	sh := h.shards[h.ring.lookup(name)]
	select {
	case <-h.closeCh: // closed hub: don't race the buffered send
		pc.Reject("hub: shutting down")
		return
	default:
	}
	select {
	case sh.conns <- pc:
	case <-h.closeCh:
		pc.Reject("hub: shutting down")
	}
}

// Stats aggregates counters across all sessions and samples the emission
// rate.
func (h *Hub) Stats() Stats {
	st := Stats{
		Shards:         len(h.shards),
		ConnsAccepted:  h.statConnsAccepted.Load(),
		ConnsShed:      h.statConnsShed.Load(),
		HandshakeFails: h.statHandshakeFails.Load(),
	}
	for _, sh := range h.shards {
		for _, e := range sh.snapshot() {
			sess := e.sess
			st.Sessions++
			st.Clients += sess.ClientCount()
			s := sess.Stats()
			st.SamplesEmitted += s.SamplesEmitted
			st.SamplesDelivered += s.SamplesDelivered
			st.SamplesDropped += s.SamplesDropped
			st.SteersApplied += s.SteersApplied
			st.SteersRejected += s.SteersRejected
			st.FramesFiltered += s.FramesFiltered
			st.RelayPublished += s.RelayPublished
			st.RelayCoalesced += s.RelayCoalesced
			st.EgressBatchesVectored += s.EgressBatchesVectored
			st.EgressBatchesBuffered += s.EgressBatchesBuffered
			st.EgressFramesCoalesced += s.EgressFramesCoalesced
			st.EgressBytesCoalesced += s.EgressBytesCoalesced
			st.EgressBytesZeroCopy += s.EgressBytesZeroCopy
			st.EgressSyscallsSaved += s.EgressSyscallsSaved
			steer, obs := sess.TierCounts()
			st.TierSteerers += steer
			st.TierObservers += obs
			f := sess.FloorStats()
			st.FloorGrants += f.Grants
			st.FloorDenials += f.Denials
			st.FloorExpiries += f.Expiries
			st.FloorSteals += f.Steals
			st.FloorHandoffs += f.Handoffs
			st.FloorPending += f.Pending
		}
	}

	now := time.Now()
	h.rateMu.Lock()
	if h.rateTime.IsZero() {
		h.rateTime, h.rateEmitted = now, st.SamplesEmitted
	} else if dt := now.Sub(h.rateTime); dt >= rateWindow {
		h.rate = float64(st.SamplesEmitted-h.rateEmitted) / dt.Seconds()
		h.rateTime, h.rateEmitted = now, st.SamplesEmitted
	}
	st.SamplesPerSec = h.rate
	h.rateMu.Unlock()
	return st
}

// Close terminates every session and shard; listeners passed to Serve shut
// down.
func (h *Hub) Close() {
	h.closeOnce.Do(func() {
		h.closed.Store(true)
		close(h.closeCh)
		for _, sh := range h.shards {
			sh.close()
		}
	})
}
