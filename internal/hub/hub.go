// Package hub multiplexes many concurrent steering sessions behind one
// listener: the broker-mediated layer between the paper's one-session
// deployment (one steered application, one core.Session, one port) and a
// production service hosting fleets of them. It follows the spirit of
// ShAppliT's broker-mediated application sharing and the vbroker of VISIT
// (section 3.3): participants dial one endpoint and name a session; the hub
// routes, the session steers.
//
// Scale comes from two structural decisions. First, the registry is sharded
// by consistent-hashing session names onto N shards, each with its own lock,
// dispatch goroutine and writer pool, so traffic for sessions on different
// shards never serialises on anything shared. Second, sample fan-out is
// batched: instead of core's one-writer-goroutine-per-client, each shard
// runs a small writer pool that coalesces every client's queued envelopes —
// pre-encoded []byte buffers under protocol v2's encode-once broadcasts —
// into batched, buffered writes (core.ClientHandle.DrainBatch), keeping
// core's drop-on-slow-client policy — a stalled viewer loses frames, never
// stalls a simulation and never holds a pool writer beyond one write
// deadline.
package hub

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Config configures a Hub.
type Config struct {
	// Shards is the number of session shards; 0 selects GOMAXPROCS capped
	// at 8.
	Shards int
	// WritersPerShard sizes each shard's writer pool; 0 selects 4.
	WritersPerShard int
	// WriteBatch bounds envelopes coalesced per client write; 0 selects 32.
	WriteBatch int
	// WriteTimeout bounds one batched write to a client; 0 selects 2s.
	WriteTimeout time.Duration
	// HandshakeTimeout bounds reading a connection's attach frame; 0
	// selects 5s.
	HandshakeTimeout time.Duration
	// DefaultSession serves clients that attach without naming a session
	// (a single-session steerd's classic clients). "" rejects them unless
	// SetDefaultSession is called (CreateSession sets it to the first
	// session created).
	DefaultSession string
	// SessionDefaults seeds SampleQueue and ControlTimeout for sessions the
	// hub creates.
	SessionDefaults core.SessionConfig
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = min(runtime.GOMAXPROCS(0), 8)
	}
	if c.WritersPerShard <= 0 {
		c.WritersPerShard = 4
	}
	if c.WriteBatch <= 0 {
		c.WriteBatch = 32
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 2 * time.Second
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
}

// Stats aggregates activity across every session the hub hosts, exposed the
// way core.Session.Stats is: cumulative counters plus a sampled rate.
type Stats struct {
	Shards   int
	Sessions int
	Clients  int

	SamplesEmitted   uint64
	SamplesDelivered uint64
	SamplesDropped   uint64
	SteersApplied    uint64
	SteersRejected   uint64

	// SamplesPerSec is the emission rate observed between the two most
	// recent Stats calls at least rateWindow apart (0 until measurable).
	SamplesPerSec float64
}

// rateWindow is the minimum spacing between rate measurements.
const rateWindow = 100 * time.Millisecond

// Hub hosts many concurrent core.Sessions behind one listener.
type Hub struct {
	cfg    Config
	ring   *ring
	shards []*shard

	defaultMu      sync.Mutex
	defaultSession string

	closeOnce sync.Once
	closeCh   chan struct{}
	closed    atomic.Bool

	rateMu      sync.Mutex
	rateTime    time.Time
	rateEmitted uint64
	rate        float64
}

// New creates a hub ready to create sessions and serve listeners.
func New(cfg Config) *Hub {
	cfg.fill()
	h := &Hub{
		cfg:            cfg,
		ring:           newRing(cfg.Shards),
		shards:         make([]*shard, cfg.Shards),
		defaultSession: cfg.DefaultSession,
		closeCh:        make(chan struct{}),
	}
	for i := range h.shards {
		h.shards[i] = newShard(i, cfg.WritersPerShard, cfg.WriteBatch, cfg)
	}
	return h
}

// ShardOf returns the shard index a session name routes to. It is a pure
// function of the name and the hub's shard count (consistent hashing), so
// tests and operators can verify routing stability.
func (h *Hub) ShardOf(name string) int { return h.ring.lookup(name) }

// CreateSession creates and registers a session on its home shard. The
// session's queues are drained by the shard's writer pool; cfg.Writer must
// be nil. The first session created becomes the default for clients that
// attach without naming one.
func (h *Hub) CreateSession(cfg core.SessionConfig) (*core.Session, error) {
	if h.closed.Load() {
		return nil, errors.New("hub: closed")
	}
	if cfg.Name == "" {
		return nil, errors.New("hub: session needs a name")
	}
	if cfg.Writer != nil {
		return nil, errors.New("hub: session writer is owned by the hub")
	}
	if cfg.SampleQueue <= 0 {
		cfg.SampleQueue = h.cfg.SessionDefaults.SampleQueue
	}
	if cfg.ControlTimeout <= 0 {
		cfg.ControlTimeout = h.cfg.SessionDefaults.ControlTimeout
	}
	sh := h.shards[h.ring.lookup(cfg.Name)]
	cfg.Writer = sh.pool
	sess := core.NewSession(cfg)
	if err := sh.add(sess); err != nil {
		sess.Close()
		return nil, err
	}
	h.defaultMu.Lock()
	if h.defaultSession == "" {
		h.defaultSession = cfg.Name
	}
	h.defaultMu.Unlock()

	// Evict the session from the registry when it closes — via Evict, or
	// the application's own Close (which a steered stop should end in, as
	// cmd/steerd's run loops do).
	go func() {
		select {
		case <-sess.Done():
			sh.remove(cfg.Name, sess)
		case <-h.closeCh:
		}
	}()
	return sess, nil
}

// Lookup returns the registered session with the given name.
func (h *Hub) Lookup(name string) (*core.Session, bool) {
	return h.shards[h.ring.lookup(name)].lookup(name)
}

// Evict closes and unregisters a session, detaching its clients. It reports
// whether the session was registered.
func (h *Hub) Evict(name string) bool {
	sh := h.shards[h.ring.lookup(name)]
	sess, ok := sh.lookup(name)
	if !ok {
		return false
	}
	removed := sh.remove(name, sess)
	sess.Close()
	return removed
}

// SetDefaultSession names the session served to clients that attach without
// one.
func (h *Hub) SetDefaultSession(name string) {
	h.defaultMu.Lock()
	h.defaultSession = name
	h.defaultMu.Unlock()
}

// SessionNames returns every registered session name, in no particular
// order.
func (h *Hub) SessionNames() []string {
	var out []string
	for _, sh := range h.shards {
		for _, s := range sh.snapshot() {
			out = append(out, s.Name())
		}
	}
	return out
}

// Serve accepts connections from l until the hub closes or the listener
// fails. Each connection's attach frame is read on its own goroutine (a
// stalled handshake never blocks the accept loop), then routed to its
// session's shard.
func (h *Hub) Serve(l net.Listener) error {
	go func() {
		<-h.closeCh
		l.Close()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-h.closeCh:
				return nil
			default:
				return err
			}
		}
		go h.route(conn)
	}
}

// route reads the attach frame and hands the pending connection to the home
// shard's dispatch queue.
func (h *Hub) route(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(h.cfg.HandshakeTimeout))
	pc, err := core.AcceptConn(conn)
	if err != nil {
		return // AcceptConn closed the conn
	}
	conn.SetReadDeadline(time.Time{})

	name := pc.SessionName()
	if name == "" {
		h.defaultMu.Lock()
		name = h.defaultSession
		h.defaultMu.Unlock()
		if name == "" {
			pc.Reject("hub: no session named and no default configured")
			return
		}
		pc.SetSessionName(name)
	}
	sh := h.shards[h.ring.lookup(name)]
	select {
	case <-h.closeCh: // closed hub: don't race the buffered send
		pc.Reject("hub: shutting down")
		return
	default:
	}
	select {
	case sh.conns <- pc:
	case <-h.closeCh:
		pc.Reject("hub: shutting down")
	}
}

// Stats aggregates counters across all sessions and samples the emission
// rate.
func (h *Hub) Stats() Stats {
	st := Stats{Shards: len(h.shards)}
	for _, sh := range h.shards {
		for _, sess := range sh.snapshot() {
			st.Sessions++
			st.Clients += sess.ClientCount()
			s := sess.Stats()
			st.SamplesEmitted += s.SamplesEmitted
			st.SamplesDelivered += s.SamplesDelivered
			st.SamplesDropped += s.SamplesDropped
			st.SteersApplied += s.SteersApplied
			st.SteersRejected += s.SteersRejected
		}
	}

	now := time.Now()
	h.rateMu.Lock()
	if h.rateTime.IsZero() {
		h.rateTime, h.rateEmitted = now, st.SamplesEmitted
	} else if dt := now.Sub(h.rateTime); dt >= rateWindow {
		h.rate = float64(st.SamplesEmitted-h.rateEmitted) / dt.Seconds()
		h.rateTime, h.rateEmitted = now, st.SamplesEmitted
	}
	st.SamplesPerSec = h.rate
	h.rateMu.Unlock()
	return st
}

// Close terminates every session and shard; listeners passed to Serve shut
// down.
func (h *Hub) Close() {
	h.closeOnce.Do(func() {
		h.closed.Store(true)
		close(h.closeCh)
		for _, sh := range h.shards {
			sh.close()
		}
	})
}
