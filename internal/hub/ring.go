package hub

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerShard is the number of virtual nodes each shard contributes to
// the ring. 64 keeps the load spread within a few percent of uniform for
// the shard counts a hub runs (2–64) while the ring stays small enough to
// binary-search in nanoseconds.
const vnodesPerShard = 64

// ring maps session names to shards by consistent hashing. It is built once
// at hub creation (shard count is fixed for the hub's lifetime) and read
// without locks afterwards: routing a connection never contends with
// anything.
type ring struct {
	hashes []uint64
	shards []int // shards[i] owns hashes[i]
}

func newRing(nShards int) *ring {
	r := &ring{
		hashes: make([]uint64, 0, nShards*vnodesPerShard),
		shards: make([]int, 0, nShards*vnodesPerShard),
	}
	type vnode struct {
		hash  uint64
		shard int
	}
	vnodes := make([]vnode, 0, nShards*vnodesPerShard)
	for s := 0; s < nShards; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			vnodes = append(vnodes, vnode{hash64(fmt.Sprintf("shard-%d#%d", s, v)), s})
		}
	}
	sort.Slice(vnodes, func(i, j int) bool { return vnodes[i].hash < vnodes[j].hash })
	for _, vn := range vnodes {
		r.hashes = append(r.hashes, vn.hash)
		r.shards = append(r.shards, vn.shard)
	}
	return r
}

// lookup returns the shard owning name: the first vnode clockwise from the
// name's hash. The mapping depends only on the name and the shard count, so
// routing is stable across hub restarts and across every goroutine that
// computes it.
func (r *ring) lookup(name string) int {
	h := hash64(name)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.shards[i]
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// FNV-1a of short, similar strings clusters in a narrow band of the
	// 64-bit space, which collapses a consistent-hash ring onto few shards;
	// the MurmurHash3 finaliser scrambles it to uniform.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
