package mc

import (
	"math"
	"testing"
	"testing/quick"
)

func newSim(t *testing.T, temp float64, hot bool) *Sim {
	t.Helper()
	s, err := New(Params{N: 10, T: temp, Seed: 7, Hot: hot})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Params{N: 1, T: 1}); err == nil {
		t.Fatal("tiny lattice accepted")
	}
	if _, err := New(Params{N: 8, T: 0}); err == nil {
		t.Fatal("zero temperature accepted")
	}
	if err := newSim(t, 1, false).SetTemperature(-1); err == nil {
		t.Fatal("negative steer accepted")
	}
}

func TestColdStartIsOrdered(t *testing.T) {
	s := newSim(t, 1, false)
	if s.Magnetisation() != 1 {
		t.Fatalf("cold start magnetisation = %v", s.Magnetisation())
	}
	// Ground-state energy per spin: −3 (three bonds each) with H = 0.
	if math.Abs(s.Energy()-(-3)) > 1e-12 {
		t.Fatalf("ground state energy = %v, want -3", s.Energy())
	}
}

func TestLowTemperatureStaysOrdered(t *testing.T) {
	s := newSim(t, 2.0, false) // well below T_c ≈ 4.51
	for i := 0; i < 50; i++ {
		s.Sweep()
	}
	if m := math.Abs(s.Magnetisation()); m < 0.9 {
		t.Fatalf("|m| = %v at T=2, want ordered (>0.9)", m)
	}
}

func TestHighTemperatureDisorders(t *testing.T) {
	s := newSim(t, 10.0, false) // far above T_c
	for i := 0; i < 100; i++ {
		s.Sweep()
	}
	if m := math.Abs(s.Magnetisation()); m > 0.2 {
		t.Fatalf("|m| = %v at T=10, want disordered (<0.2)", m)
	}
	if s.AcceptanceRate() < 0.5 {
		t.Fatalf("acceptance %v at high T, want high", s.AcceptanceRate())
	}
}

func TestSteeringThroughTransition(t *testing.T) {
	// The parameter-space exploration of section 2.1: steer the temperature
	// across the critical point and watch the order parameter respond.
	s := newSim(t, 10.0, true)
	for i := 0; i < 80; i++ {
		s.Sweep()
	}
	disordered := math.Abs(s.Magnetisation())

	if err := s.SetTemperature(1.5); err != nil {
		t.Fatal(err)
	}
	if s.Temperature() != 1.5 {
		t.Fatalf("steer lost: T = %v", s.Temperature())
	}
	for i := 0; i < 400; i++ {
		s.Sweep()
	}
	ordered := math.Abs(s.Magnetisation())
	if ordered < disordered+0.4 {
		t.Fatalf("quench did not order: |m| %v -> %v", disordered, ordered)
	}
}

func TestFieldAlignsSpins(t *testing.T) {
	s := newSim(t, 6.0, true) // disordered regime
	s.SetField(2.0)
	if s.Field() != 2 {
		t.Fatal("field steer lost")
	}
	for i := 0; i < 150; i++ {
		s.Sweep()
	}
	if s.Magnetisation() < 0.5 {
		t.Fatalf("m = %v under strong +field, want aligned", s.Magnetisation())
	}
}

func TestQuenchLowersEnergy(t *testing.T) {
	s := newSim(t, 8.0, true)
	for i := 0; i < 30; i++ {
		s.Sweep()
	}
	hot := s.Energy()
	s.SetTemperature(1.0)
	for i := 0; i < 200; i++ {
		s.Sweep()
	}
	if cold := s.Energy(); cold >= hot {
		t.Fatalf("energy did not drop on quench: %v -> %v", hot, cold)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		s, _ := New(Params{N: 8, T: 3, Seed: 42, Hot: true})
		for i := 0; i < 20; i++ {
			s.Sweep()
		}
		return s.Magnetisation()
	}
	if run() != run() {
		t.Fatal("same seed diverged")
	}
}

func TestSpinFieldExport(t *testing.T) {
	s := newSim(t, 3, true)
	s.Sweep()
	f := s.SpinField()
	if f.Nx != 10 || f.Ny != 10 || f.Nz != 10 {
		t.Fatalf("field dims %dx%dx%d", f.Nx, f.Ny, f.Nz)
	}
	var sum float64
	for _, v := range f.Data {
		if v != 1 && v != -1 {
			t.Fatalf("non-spin value %v", v)
		}
		sum += v
	}
	if got := sum / float64(len(f.Data)); math.Abs(got-s.Magnetisation()) > 1e-12 {
		t.Fatalf("field mean %v != magnetisation %v", got, s.Magnetisation())
	}
}

func TestSweepCount(t *testing.T) {
	s := newSim(t, 3, false)
	for i := 0; i < 7; i++ {
		s.Sweep()
	}
	if s.SweepCount() != 7 {
		t.Fatalf("sweeps = %d", s.SweepCount())
	}
}

// Property: magnetisation stays in [−1, 1] and energy per spin in
// [−3−|H|, 3+|H|] for arbitrary parameters.
func TestQuickBounds(t *testing.T) {
	f := func(seed int64, tRaw, hRaw uint8) bool {
		temp := 0.5 + float64(tRaw%100)/10
		h := float64(int(hRaw%7)-3) / 2
		s, err := New(Params{N: 6, T: temp, H: h, Seed: seed, Hot: true})
		if err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			s.Sweep()
		}
		m := s.Magnetisation()
		e := s.Energy()
		return m >= -1 && m <= 1 && e >= -3-math.Abs(h)-1e-9 && e <= 3+math.Abs(h)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
