// Package mc implements a Metropolis Monte Carlo simulation of the 3D Ising
// model. RealityGrid's remit (paper section 2.1) covers "diverse simulation
// methods (Lattice Boltzmann, Molecular Dynamics and Monte Carlo ...)
// spanning many time and length scales" with "distributed and collaborative
// exploration of parameter space through computational steering"; this is
// the Monte Carlo member of that family. The steerable parameters are the
// temperature and external field — sweeping the temperature through the
// critical point (T_c ≈ 4.51 J/k_B for the simple-cubic lattice) is the
// classic parameter-space exploration, with the magnetisation as the
// monitored order parameter and the spin field feeding the visualization
// pipeline.
package mc

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/viz"
)

// Params configures a simulation.
type Params struct {
	// N is the lattice edge length (N³ spins, periodic boundaries).
	N int
	// T is the initial temperature in units of J/k_B.
	T float64
	// H is the initial external field in units of J.
	H float64
	// Seed makes runs reproducible.
	Seed int64
	// Hot starts from a random (T = ∞) configuration; otherwise all spins up.
	Hot bool
}

// Sim is a running Ising Monte Carlo simulation.
type Sim struct {
	n     int
	spins []int8
	rng   *rand.Rand

	mu    sync.RWMutex
	beta  float64
	h     float64
	sweep int
	// acceptance statistics for the current parameters
	accepted, attempted uint64
}

// New creates a simulation.
func New(p Params) (*Sim, error) {
	if p.N < 2 {
		return nil, fmt.Errorf("mc: lattice edge %d too small", p.N)
	}
	if p.T <= 0 {
		return nil, fmt.Errorf("mc: temperature %v must be positive", p.T)
	}
	s := &Sim{
		n:     p.N,
		spins: make([]int8, p.N*p.N*p.N),
		rng:   rand.New(rand.NewSource(p.Seed)),
		beta:  1 / p.T,
		h:     p.H,
	}
	for i := range s.spins {
		if p.Hot && s.rng.Intn(2) == 0 {
			s.spins[i] = -1
		} else {
			s.spins[i] = 1
		}
	}
	return s, nil
}

func (s *Sim) idx(i, j, k int) int { return (k*s.n+j)*s.n + i }

// SetTemperature steers the temperature; safe to call while Sweep runs.
func (s *Sim) SetTemperature(t float64) error {
	if t <= 0 {
		return fmt.Errorf("mc: temperature %v must be positive", t)
	}
	s.mu.Lock()
	s.beta = 1 / t
	s.accepted, s.attempted = 0, 0
	s.mu.Unlock()
	return nil
}

// Temperature returns the current temperature.
func (s *Sim) Temperature() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return 1 / s.beta
}

// SetField steers the external field; safe to call while Sweep runs.
func (s *Sim) SetField(h float64) {
	s.mu.Lock()
	s.h = h
	s.accepted, s.attempted = 0, 0
	s.mu.Unlock()
}

// Field returns the current external field.
func (s *Sim) Field() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.h
}

// SweepCount returns the number of completed Metropolis sweeps.
func (s *Sim) SweepCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sweep
}

// neighbourSum returns the sum of the six neighbouring spins.
func (s *Sim) neighbourSum(i, j, k int) int {
	n := s.n
	wrap := func(x int) int {
		if x < 0 {
			return x + n
		}
		if x >= n {
			return x - n
		}
		return x
	}
	return int(s.spins[s.idx(wrap(i+1), j, k)]) +
		int(s.spins[s.idx(wrap(i-1), j, k)]) +
		int(s.spins[s.idx(i, wrap(j+1), k)]) +
		int(s.spins[s.idx(i, wrap(j-1), k)]) +
		int(s.spins[s.idx(i, j, wrap(k+1))]) +
		int(s.spins[s.idx(i, j, wrap(k-1))])
}

// Sweep performs one Metropolis sweep: N³ single-spin-flip attempts at
// random sites.
func (s *Sim) Sweep() {
	s.mu.RLock()
	beta, h := s.beta, s.h
	s.mu.RUnlock()

	nSites := len(s.spins)
	var acc uint64
	for a := 0; a < nSites; a++ {
		site := s.rng.Intn(nSites)
		k := site / (s.n * s.n)
		j := (site / s.n) % s.n
		i := site % s.n
		spin := float64(s.spins[site])
		// ΔE for flipping: E = −J Σ s_i s_j − H Σ s_i with J = 1.
		dE := 2 * spin * (float64(s.neighbourSum(i, j, k)) + h)
		if dE <= 0 || s.rng.Float64() < math.Exp(-beta*dE) {
			s.spins[site] = -s.spins[site]
			acc++
		}
	}
	s.mu.Lock()
	s.sweep++
	s.accepted += acc
	s.attempted += uint64(nSites)
	s.mu.Unlock()
}

// Magnetisation returns the mean spin in [−1, 1]: the monitored order
// parameter. Safe to call concurrently with Sweep (the value is a monitoring
// estimate; exactness is not required mid-sweep).
func (s *Sim) Magnetisation() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sum int
	for _, v := range s.spins {
		sum += int(v)
	}
	return float64(sum) / float64(len(s.spins))
}

// Energy returns the configuration energy per spin.
func (s *Sim) Energy() float64 {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	var e float64
	for k := 0; k < s.n; k++ {
		for j := 0; j < s.n; j++ {
			for i := 0; i < s.n; i++ {
				spin := float64(s.spins[s.idx(i, j, k)])
				// Count each bond once: +x, +y, +z neighbours.
				right := float64(s.spins[s.idx((i+1)%s.n, j, k)])
				up := float64(s.spins[s.idx(i, (j+1)%s.n, k)])
				front := float64(s.spins[s.idx(i, j, (k+1)%s.n)])
				e += -spin*(right+up+front) - h*spin
			}
		}
	}
	return e / float64(len(s.spins))
}

// AcceptanceRate returns the fraction of accepted flips since the last
// parameter change.
func (s *Sim) AcceptanceRate() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.attempted == 0 {
		return 0
	}
	return float64(s.accepted) / float64(s.attempted)
}

// SpinField exports the spins as a scalar field (±1) for the visualization
// pipeline; its 0-isosurface is the domain boundary between phases.
func (s *Sim) SpinField() *viz.ScalarField {
	f := viz.NewScalarField(s.n, s.n, s.n)
	s.mu.RLock()
	for i, v := range s.spins {
		f.Data[i] = float64(v)
	}
	s.mu.RUnlock()
	return f
}
