package mc

import (
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// This file binds the Ising Monte Carlo workload onto a core steering
// session: temperature and external field are the steerable parameters
// (sweeping the temperature through T_c is the classic parameter-space
// exploration of section 2.1), with the magnetisation as the monitored
// order parameter.

// SteerConfig configures a steered run.
type SteerConfig struct {
	// SampleStride emits a diagnostics sample every N sweeps; <= 0 means
	// every sweep. Steerable at runtime via "sample-stride".
	SampleStride int64
	// MaxSweeps stops the run after N completed sweeps; 0 runs until
	// stopped.
	MaxSweeps int64
	// PauseTimeout bounds how long a paused run blocks waiting for resume.
	PauseTimeout time.Duration
}

// Steered is the Monte Carlo steering adapter.
type Steered struct {
	st     *core.Steered
	sim    *Sim
	cfg    SteerConfig
	stride atomic.Int64
}

// NewSteered registers the Monte Carlo steerable surface on st:
// "temperature" and "field" (float) plus "sample-stride" (int).
func NewSteered(st *core.Steered, sim *Sim, cfg SteerConfig) (*Steered, error) {
	if cfg.SampleStride <= 0 {
		cfg.SampleStride = 1
	}
	a := &Steered{st: st, sim: sim, cfg: cfg}
	a.stride.Store(cfg.SampleStride)
	if err := st.RegisterFloat("temperature", sim.Temperature(), 0.1, 10,
		"temperature in J/k_B (T_c ≈ 4.51)", func(v float64) { sim.SetTemperature(v) }); err != nil {
		return nil, err
	}
	if err := st.RegisterFloat("field", sim.Field(), -2, 2,
		"external field in J", sim.SetField); err != nil {
		return nil, err
	}
	if err := st.RegisterInt("sample-stride", cfg.SampleStride, 1, 1000,
		"emit a sample every N sweeps", a.stride.Store); err != nil {
		return nil, err
	}
	return a, nil
}

// Run drives the steering loop until the session stops (or MaxSweeps).
func (a *Steered) Run() error {
	for sweep := int64(0); a.cfg.MaxSweeps == 0 || sweep < a.cfg.MaxSweeps; sweep++ {
		if a.st.PollBlocking(a.cfg.PauseTimeout) == core.ControlStop {
			return nil
		}
		a.sim.Sweep()
		if stride := a.stride.Load(); stride <= 1 || sweep%stride == 0 {
			a.st.Emit(a.Sample(sweep))
		}
	}
	return nil
}

// Sample builds the per-sweep diagnostics sample: the magnetisation order
// parameter and the Metropolis acceptance rate.
func (a *Steered) Sample(sweep int64) *core.Sample {
	s := core.NewSample(sweep)
	s.Channels["magnetisation"] = core.Scalar(a.sim.Magnetisation())
	s.Channels["acceptance"] = core.Scalar(a.sim.AcceptanceRate())
	return s
}
