package mc

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hub"
)

// TestSteeredMCOnHub attaches the Ising Monte Carlo workload to a live hub
// session over loopback TCP: the magnetisation diagnostics stream out, and
// the classic temperature sweep of section 2.1 is one steer away.
func TestSteeredMCOnHub(t *testing.T) {
	h := hub.New(hub.Config{})
	defer h.Close()
	session, err := h.CreateSession(core.SessionConfig{Name: "mc-run", AppName: "ising"})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(Params{N: 8, T: 5, Seed: 3, Hot: true})
	if err != nil {
		t.Fatal(err)
	}
	adapter, err := NewSteered(session.Steered(), sim, SteerConfig{SampleStride: 1})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go h.Serve(l)
	runDone := make(chan error, 1)
	go func() { runDone <- adapter.Run() }()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	pilot, err := core.Dial(ctx, l.Addr().String(), core.AttachOptions{
		Name: "pilot", Session: "mc-run", WantMaster: true, SampleBuffer: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pilot.Close()

	select {
	case s := <-pilot.Samples():
		for _, ch := range []string{"magnetisation", "acceptance"} {
			if _, ok := s.Channels[ch]; !ok {
				t.Fatalf("sample missing channel %q: %v", ch, s.Channels)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no diagnostics sample from the running sweep loop")
	}

	// Quench through T_c: the param-update broadcast confirming the steer
	// only goes out after the sweep loop's apply callback ran.
	if err := pilot.SetParamContext(ctx, "temperature", 0.5); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if p, ok := pilot.Param("temperature"); ok && p.Value.Float() == 0.5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("temperature steer never confirmed by a param update")
		}
		time.Sleep(2 * time.Millisecond)
	}

	if err := pilot.StopContext(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("sweep loop: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sweep loop did not exit on stop")
	}
}
