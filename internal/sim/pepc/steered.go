package pepc

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// This file binds the particle code onto a core steering session. The
// registered surface is section 3.4's: "the particle beam or laser
// parameters (charge/intensity, direction) can be altered by the user
// interactively while the application is running", plus the velocity
// damping that assists "an initially random plasma system towards a cold,
// ordered state".

// beamAxes are the steerable injection directions, exposed as a choice
// parameter (a free 3-vector is hostile to a steering GUI; six axes match
// the beam demonstration).
var beamAxes = []string{"+x", "-x", "+y", "-y", "+z", "-z"}

func axisVec(axis string) Vec {
	switch axis {
	case "+x":
		return Vec{X: 1}
	case "-x":
		return Vec{X: -1}
	case "+y":
		return Vec{Y: 1}
	case "-y":
		return Vec{Y: -1}
	case "-z":
		return Vec{Z: -1}
	default:
		return Vec{Z: 1}
	}
}

// SteerConfig configures a steered run.
type SteerConfig struct {
	// SampleStride emits a diagnostics sample every N steps; <= 0 means
	// every step. Steerable at runtime via "sample-stride".
	SampleStride int64
	// MaxSteps stops the run after N completed steps; 0 runs until stopped.
	MaxSteps int64
	// PauseTimeout bounds how long a paused run blocks waiting for resume.
	PauseTimeout time.Duration
	// Checkpoint, when non-nil, receives the simulation's serialised state
	// at the loop boundary whenever a steering client requests one.
	Checkpoint func(write func(io.Writer) error) error
}

// Steered is the particle-code steering adapter.
type Steered struct {
	st     *core.Steered
	sim    *Sim
	cfg    SteerConfig
	stride atomic.Int64

	// beamMu serialises read-modify-write of the beam: each registered
	// parameter updates one field of the whole BeamParams value.
	beamMu sync.Mutex
	beam   BeamParams
}

// NewSteered registers the particle code's steerable surface on st:
// "beam-intensity" (int), "beam-charge"/"beam-speed"/"damping" (float),
// "beam-axis" (choice) and "sample-stride" (int).
func NewSteered(st *core.Steered, sim *Sim, cfg SteerConfig) (*Steered, error) {
	if cfg.SampleStride <= 0 {
		cfg.SampleStride = 1
	}
	a := &Steered{st: st, sim: sim, cfg: cfg, beam: sim.Beam()}
	a.stride.Store(cfg.SampleStride)
	if err := st.RegisterInt("beam-intensity", int64(a.beam.Intensity), 0, 10000,
		"particles injected per timestep", func(v int64) {
			a.updateBeam(func(b *BeamParams) { b.Intensity = int(v) })
		}); err != nil {
		return nil, err
	}
	if err := st.RegisterFloat("beam-charge", a.beam.Charge, -10, 10,
		"charge of each injected particle", func(v float64) {
			a.updateBeam(func(b *BeamParams) { b.Charge = v })
		}); err != nil {
		return nil, err
	}
	if err := st.RegisterFloat("beam-speed", a.beam.Speed, 0, 100,
		"injection speed", func(v float64) {
			a.updateBeam(func(b *BeamParams) { b.Speed = v })
		}); err != nil {
		return nil, err
	}
	if err := st.RegisterChoice("beam-axis", beamAxes, "+z",
		"beam injection direction", func(v string) {
			a.updateBeam(func(b *BeamParams) { b.Direction = axisVec(v) })
		}); err != nil {
		return nil, err
	}
	if err := st.RegisterFloat("damping", 0, 0, 0.99,
		"per-step velocity damping towards a cold state", sim.SetDamping); err != nil {
		return nil, err
	}
	if err := st.RegisterInt("sample-stride", cfg.SampleStride, 1, 1000,
		"emit a sample every N steps", a.stride.Store); err != nil {
		return nil, err
	}
	return a, nil
}

func (a *Steered) updateBeam(mod func(*BeamParams)) {
	a.beamMu.Lock()
	mod(&a.beam)
	a.sim.SetBeam(a.beam)
	a.beamMu.Unlock()
}

// Run drives the steering loop until the session stops (or MaxSteps).
func (a *Steered) Run() error {
	for step := int64(0); a.cfg.MaxSteps == 0 || step < a.cfg.MaxSteps; step++ {
		if a.st.PollBlocking(a.cfg.PauseTimeout) == core.ControlStop {
			return nil
		}
		if a.st.CheckpointRequested() {
			a.checkpoint()
		}
		a.sim.Step()
		if stride := a.stride.Load(); stride <= 1 || step%stride == 0 {
			// Samples carry the sim's own step counter, not the loop index:
			// after a checkpoint restore the stream continues where the
			// checkpoint left off instead of restarting at zero.
			a.st.Emit(a.Sample(int64(a.sim.StepCount())))
		}
	}
	return nil
}

// Sample builds the per-step diagnostics sample: kinetic energy (the cheap
// monitored quantity), particle count and tree interaction count.
func (a *Steered) Sample(step int64) *core.Sample {
	s := core.NewSample(step)
	s.Channels["kinetic"] = core.Scalar(a.sim.KineticEnergy())
	s.Channels["particles"] = core.Scalar(float64(a.sim.N()))
	s.Channels["interactions"] = core.Scalar(float64(a.sim.Interactions()))
	return s
}

func (a *Steered) checkpoint() {
	if a.cfg.Checkpoint == nil {
		a.st.Event("checkpoint requested but no checkpoint sink configured")
		return
	}
	if err := a.cfg.Checkpoint(a.sim.WriteCheckpoint); err != nil {
		a.st.Event(fmt.Sprintf("checkpoint failed: %v", err))
		return
	}
	a.st.Event(fmt.Sprintf("checkpoint written at step %d", a.sim.StepCount()))
}
