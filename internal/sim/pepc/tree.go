// Package pepc implements a mesh-free electrostatic plasma simulation in the
// style of PEPC (Parallel Electrostatic Plasma Coulomb-solver), the
// demonstration application of the paper's section 3.4: "a hierarchical tree
// algorithm to perform potential and force summation for charged particles in
// a time O(N log N)". Forces are computed with a Barnes–Hut octree carrying
// monopole and dipole moments; an O(N²) direct summation is included as the
// accuracy and scaling baseline. The particle set is decomposed across a
// goroutine worker pool, and per-worker domain boxes are exported for
// visualization exactly as the paper ships "information on the tree
// structure ... consisting of a set of node coordinates representing each
// processor domain".
package pepc

import "math"

// Vec is a 3-vector; pepc keeps its own to stay independent of the render
// package.
type Vec struct{ X, Y, Z float64 }

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v * s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s, v.Z * s} }

// Dot returns v · w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Len returns |v|.
func (v Vec) Len() float64 { return math.Sqrt(v.Dot(v)) }

// node is one octree cell.
type node struct {
	center   Vec     // geometric centre of the cell
	half     float64 // half edge length
	children [8]*node
	leaf     bool
	// particle indices stored in a leaf
	idx []int32
	// multipole data (about com)
	com    Vec     // |q|-weighted centroid: stable expansion centre for mixed signs
	q      float64 // monopole: total charge
	dipole Vec     // dipole moment about com
	count  int
}

// leafCap is the maximum number of particles stored in a leaf cell.
const leafCap = 8

// buildTree constructs the octree over all particles.
func buildTree(pos []Vec, charge []float64) *node {
	// Bounding cube.
	lo := pos[0]
	hi := pos[0]
	for _, p := range pos[1:] {
		lo.X = math.Min(lo.X, p.X)
		lo.Y = math.Min(lo.Y, p.Y)
		lo.Z = math.Min(lo.Z, p.Z)
		hi.X = math.Max(hi.X, p.X)
		hi.Y = math.Max(hi.Y, p.Y)
		hi.Z = math.Max(hi.Z, p.Z)
	}
	c := lo.Add(hi).Scale(0.5)
	half := math.Max(hi.X-lo.X, math.Max(hi.Y-lo.Y, hi.Z-lo.Z))/2 + 1e-9

	root := &node{center: c, half: half, leaf: true}
	for i := range pos {
		root.insert(pos, int32(i))
	}
	root.computeMoments(pos, charge)
	return root
}

// octant returns which child cell position p falls into.
func (n *node) octant(p Vec) int {
	o := 0
	if p.X >= n.center.X {
		o |= 1
	}
	if p.Y >= n.center.Y {
		o |= 2
	}
	if p.Z >= n.center.Z {
		o |= 4
	}
	return o
}

// childCenter returns the centre of child octant o.
func (n *node) childCenter(o int) Vec {
	h := n.half / 2
	c := n.center
	if o&1 != 0 {
		c.X += h
	} else {
		c.X -= h
	}
	if o&2 != 0 {
		c.Y += h
	} else {
		c.Y -= h
	}
	if o&4 != 0 {
		c.Z += h
	} else {
		c.Z -= h
	}
	return c
}

// insert adds particle i to the subtree.
func (n *node) insert(pos []Vec, i int32) {
	if n.leaf {
		if len(n.idx) < leafCap || n.half < 1e-9 {
			n.idx = append(n.idx, i)
			return
		}
		// Split: push existing particles down.
		n.leaf = false
		old := n.idx
		n.idx = nil
		for _, j := range old {
			n.insertChild(pos, j)
		}
	}
	n.insertChild(pos, i)
}

func (n *node) insertChild(pos []Vec, i int32) {
	o := n.octant(pos[i])
	if n.children[o] == nil {
		n.children[o] = &node{center: n.childCenter(o), half: n.half / 2, leaf: true}
	}
	n.children[o].insert(pos, i)
}

// computeMoments fills q, com and dipole bottom-up.
func (n *node) computeMoments(pos []Vec, charge []float64) {
	var absQ float64
	if n.leaf {
		for _, i := range n.idx {
			q := charge[i]
			n.q += q
			a := math.Abs(q)
			absQ += a
			n.com = n.com.Add(pos[i].Scale(a))
			n.count++
		}
	} else {
		for _, c := range n.children {
			if c == nil {
				continue
			}
			c.computeMoments(pos, charge)
			n.q += c.q
			// Recombine |q|-weighted centroids using child absolute charge.
			ca := c.absCharge(pos, charge)
			absQ += ca
			n.com = n.com.Add(c.com.Scale(ca))
			n.count += c.count
		}
	}
	if absQ > 0 {
		n.com = n.com.Scale(1 / absQ)
	} else {
		n.com = n.center
	}
	// Dipole about com.
	if n.leaf {
		for _, i := range n.idx {
			n.dipole = n.dipole.Add(pos[i].Sub(n.com).Scale(charge[i]))
		}
	} else {
		for _, c := range n.children {
			if c == nil {
				continue
			}
			// Child dipole shifted to this com: D' = D + q_c (com_c - com).
			n.dipole = n.dipole.Add(c.dipole).Add(c.com.Sub(n.com).Scale(c.q))
		}
	}
}

// absCharge returns the total |q| in the subtree. Leaves recompute from the
// particle list; internal nodes sum children. Used only during moment
// construction (O(N log N) total).
func (n *node) absCharge(pos []Vec, charge []float64) float64 {
	var a float64
	if n.leaf {
		for _, i := range n.idx {
			a += math.Abs(charge[i])
		}
		return a
	}
	for _, c := range n.children {
		if c != nil {
			a += c.absCharge(pos, charge)
		}
	}
	return a
}

// forceAt computes the electric field at position p (belonging to particle
// self, which is excluded from direct sums), using the multipole acceptance
// criterion size/distance < theta. stats, when non-nil, counts interactions.
func (n *node) forceAt(pos []Vec, charge []float64, p Vec, self int32, theta, eps2 float64, stats *int64) Vec {
	r := p.Sub(n.com)
	d2 := r.Dot(r)
	size := 2 * n.half

	if !n.leaf && size*size < theta*theta*d2 {
		// Well separated: monopole + dipole approximation.
		if stats != nil {
			*stats++
		}
		return fieldMonoDipole(r, d2+eps2, n.q, n.dipole)
	}
	if n.leaf {
		var e Vec
		for _, i := range n.idx {
			if i == self {
				continue
			}
			if stats != nil {
				*stats++
			}
			ri := p.Sub(pos[i])
			di2 := ri.Dot(ri) + eps2
			inv := 1 / (di2 * math.Sqrt(di2))
			e = e.Add(ri.Scale(charge[i] * inv))
		}
		return e
	}
	var e Vec
	for _, c := range n.children {
		if c != nil {
			e = e.Add(c.forceAt(pos, charge, p, self, theta, eps2, stats))
		}
	}
	return e
}

// fieldMonoDipole evaluates the far-field E of a monopole q and dipole D at
// displacement r (|r|² pre-softened as d2).
func fieldMonoDipole(r Vec, d2, q float64, d Vec) Vec {
	invD := 1 / math.Sqrt(d2)
	inv3 := invD * invD * invD
	e := r.Scale(q * inv3)
	// Dipole field: (3(D·r̂)r̂ − D)/|r|³.
	rhat := r.Scale(invD)
	e = e.Add(rhat.Scale(3 * d.Dot(rhat) * inv3).Sub(d.Scale(inv3)))
	return e
}

// potentialAt evaluates the potential at p with the same acceptance rule.
func (n *node) potentialAt(pos []Vec, charge []float64, p Vec, self int32, theta, eps2 float64) float64 {
	r := p.Sub(n.com)
	d2 := r.Dot(r)
	size := 2 * n.half
	if !n.leaf && size*size < theta*theta*d2 {
		d := math.Sqrt(d2 + eps2)
		return n.q/d + n.dipole.Dot(r)/(d*d*d)
	}
	if n.leaf {
		var phi float64
		for _, i := range n.idx {
			if i == self {
				continue
			}
			ri := p.Sub(pos[i])
			phi += charge[i] / math.Sqrt(ri.Dot(ri)+eps2)
		}
		return phi
	}
	var phi float64
	for _, c := range n.children {
		if c != nil {
			phi += c.potentialAt(pos, charge, p, self, theta, eps2)
		}
	}
	return phi
}
