package pepc

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hub"
)

// steerCtx bounds the steering round trips of one test.
func steerCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// fileSink writes checkpoints to path via temp file + rename, the same
// atomic shape cmd/steersim uses.
func fileSink(path string) func(write func(io.Writer) error) error {
	return func(write func(io.Writer) error) error {
		tmp := path + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return os.Rename(tmp, path)
	}
}

// waitCheckpointStep polls the client's event stream until the adapter
// reports a written checkpoint, returning the step it recorded.
func waitCheckpointStep(t *testing.T, c *core.Client) int64 {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, ev := range c.Events() {
			var step int64
			if _, err := fmt.Sscanf(ev, "checkpoint written at step %d", &step); err == nil {
				return step
			}
			if strings.HasPrefix(ev, "checkpoint failed") {
				t.Fatalf("checkpoint sink failed: %s", ev)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no checkpoint-written event")
	return 0
}

// TestSteeredPEPCOnHub attaches the particle code to a live hub session
// over loopback TCP: diagnostics stream out, a steer lands at the next loop
// boundary, and a stop terminates the run loop.
func TestSteeredPEPCOnHub(t *testing.T) {
	h := hub.New(hub.Config{})
	defer h.Close()
	session, err := h.CreateSession(core.SessionConfig{Name: "pepc-run", AppName: "pepc"})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(Params{Theta: 0.5, Dt: 0.005, Eps: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sim.AddPlasmaBall(48, Vec{}, 1, 0.05)
	adapter, err := NewSteered(session.Steered(), sim, SteerConfig{SampleStride: 1})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go h.Serve(l)
	runDone := make(chan error, 1)
	go func() { runDone <- adapter.Run() }()

	ctx := steerCtx(t)
	pilot, err := core.Dial(ctx, l.Addr().String(), core.AttachOptions{
		Name: "pilot", Session: "pepc-run", WantMaster: true, SampleBuffer: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pilot.Close()

	select {
	case s := <-pilot.Samples():
		for _, ch := range []string{"kinetic", "particles", "interactions"} {
			if _, ok := s.Channels[ch]; !ok {
				t.Fatalf("sample missing channel %q: %v", ch, s.Channels)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no diagnostics sample from the running sim")
	}

	// The beam steer is applied at a loop boundary; the param-update
	// broadcast that confirms it only happens after the apply callback ran.
	if err := pilot.SetValueContext(ctx, "beam-intensity", core.IntValue(3)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if p, ok := pilot.Param("beam-intensity"); ok && p.Value.I == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("beam-intensity steer never confirmed by a param update")
		}
		time.Sleep(2 * time.Millisecond)
	}

	if err := pilot.StopContext(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("run loop: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run loop did not exit on stop")
	}
}

// TestSteeredSurvivesDaemonRestart is the evict→reopen→replay→resume path:
// a journaled hub hosts a steered PEPC run, a client steers a parameter and
// requests a checkpoint, the daemon is killed mid-run, and a restarted
// daemon pointed at the same journal directory and checkpoint file resumes
// from the checkpointed step with the steered value intact — late joiners
// see the recovered surface and a sample stream that continues rather than
// restarts.
func TestSteeredSurvivesDaemonRestart(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "pepc.ckpt")
	jdir := filepath.Join(dir, "journal")
	ctx := steerCtx(t)

	// --- first daemon generation -------------------------------------
	h1 := hub.New(hub.Config{JournalDir: jdir})
	s1, err := h1.CreateSession(core.SessionConfig{Name: "pepc-run", AppName: "pepc"})
	if err != nil {
		t.Fatal(err)
	}
	sim1, err := New(Params{Theta: 0.5, Dt: 0.005, Eps: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sim1.AddPlasmaBall(48, Vec{}, 1, 0.05)
	ad1, err := NewSteered(s1.Steered(), sim1, SteerConfig{SampleStride: 1, Checkpoint: fileSink(ckpt)})
	if err != nil {
		t.Fatal(err)
	}
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go h1.Serve(l1)
	run1 := make(chan error, 1)
	go func() { run1 <- ad1.Run() }()

	pilot, err := core.Dial(ctx, l1.Addr().String(), core.AttachOptions{
		Name: "pilot", Session: "pepc-run", WantMaster: true, SampleBuffer: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pilot.SetParamContext(ctx, "damping", 0.7); err != nil {
		t.Fatal(err)
	}
	if err := pilot.CheckpointContext(ctx); err != nil {
		t.Fatal(err)
	}
	ckptStep := waitCheckpointStep(t, pilot)
	pilot.Close()

	// Kill the daemon mid-run: no graceful sim stop, just the hub going
	// away (sessions close, the journal gets its final flush).
	h1.Close()
	l1.Close()
	select {
	case err := <-run1:
		if err != nil {
			t.Fatalf("run loop after kill: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run loop did not exit when the daemon died")
	}

	// --- second daemon generation ------------------------------------
	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	sim2, err := Restore(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(sim2.StepCount()); got != ckptStep {
		t.Fatalf("restored at step %d, checkpoint was written at step %d", got, ckptStep)
	}

	h2 := hub.New(hub.Config{JournalDir: jdir})
	defer h2.Close()
	s2, err := h2.CreateSession(core.SessionConfig{Name: "pepc-run", AppName: "pepc"})
	if err != nil {
		t.Fatal(err)
	}
	ad2, err := NewSteered(s2.Steered(), sim2, SteerConfig{SampleStride: 1, Checkpoint: fileSink(ckpt)})
	if err != nil {
		t.Fatal(err)
	}
	revived, err := s2.Recover()
	if err != nil {
		t.Fatalf("journal replay: %v", err)
	}
	if revived == 0 {
		t.Fatal("journal replay revived nothing; the steer was never durable")
	}
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	go h2.Serve(l2)
	run2 := make(chan error, 1)
	go func() { run2 <- ad2.Run() }()

	// A late joiner converges on the recovered state: the steered damping
	// is in the welcome surface, and the sample stream continues past the
	// checkpointed step instead of restarting at zero.
	late, err := core.Dial(ctx, l2.Addr().String(), core.AttachOptions{
		Name: "late", Session: "pepc-run", SampleBuffer: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	if p, ok := late.Param("damping"); !ok || p.Value.Float() != 0.7 {
		t.Fatalf("late joiner sees damping %+v, want the journaled 0.7", p)
	}
	// The welcome replay may deliver the journal's historical freshest
	// sample first; the live stream must then carry on past the
	// checkpointed step rather than restarting from zero.
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case s := <-late.Samples():
			if s.Step > ckptStep {
				// Resumed: the step counter continued from the checkpoint.
			} else if time.Now().Before(deadline) {
				continue
			} else {
				t.Fatalf("samples stuck at step %d, want > checkpoint step %d", s.Step, ckptStep)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("no samples from the resumed run")
		}
		break
	}

	s2.QueueStop()
	select {
	case err := <-run2:
		if err != nil {
			t.Fatalf("resumed run loop: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("resumed run loop did not exit on stop")
	}
}
