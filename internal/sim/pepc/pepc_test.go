package pepc

import (
	"math"
	"testing"
)

func newSim(t *testing.T, theta float64, workers int) *Sim {
	t.Helper()
	s, err := New(Params{Theta: theta, Dt: 0.01, Eps: 0.05, Seed: 3, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Params{Theta: 0, Dt: 0.01}); err == nil {
		t.Fatal("accepted theta 0")
	}
	if _, err := New(Params{Theta: 0.5, Dt: 0}); err == nil {
		t.Fatal("accepted dt 0")
	}
}

func TestPlasmaBallConstruction(t *testing.T) {
	s := newSim(t, 0.5, 2)
	s.AddPlasmaBall(200, Vec{1, 2, 3}, 2.0, 0.1)
	if s.N() != 200 {
		t.Fatalf("N = %d", s.N())
	}
	var totalQ float64
	for i, p := range s.pos {
		if p.Sub(Vec{1, 2, 3}).Len() > 2.0+1e-9 {
			t.Fatalf("particle %d outside ball", i)
		}
		totalQ += s.charge[i]
	}
	if totalQ != 0 {
		t.Fatalf("plasma not neutral: total charge %v", totalQ)
	}
}

func TestTwoBodyForceMatchesCoulomb(t *testing.T) {
	s := newSim(t, 0.5, 1)
	s.AddParticle(Vec{0, 0, 0}, Vec{}, 1, 1)
	s.AddParticle(Vec{2, 0, 0}, Vec{}, 1, 1)
	f := s.ForcesDirect()
	d2 := 4 + s.p.Eps*s.p.Eps
	want := 1 / (d2 * math.Sqrt(d2)) * 2 // q1*q2*r/|r|^3 with softening
	if math.Abs(f[1].X-want) > 1e-12 {
		t.Fatalf("force = %v, want %v", f[1].X, want)
	}
	// Like charges repel: particle 1 pushed +x, particle 0 pushed -x.
	if f[1].X <= 0 || f[0].X >= 0 {
		t.Fatalf("repulsion direction wrong: %v %v", f[0].X, f[1].X)
	}
	if math.Abs(f[0].X+f[1].X) > 1e-12 {
		t.Fatal("Newton's third law violated")
	}
}

func TestOppositeChargesAttract(t *testing.T) {
	s := newSim(t, 0.5, 1)
	s.AddParticle(Vec{0, 0, 0}, Vec{}, 1, 1)
	s.AddParticle(Vec{2, 0, 0}, Vec{}, -1, 1)
	f := s.ForcesDirect()
	if f[1].X >= 0 || f[0].X <= 0 {
		t.Fatalf("attraction direction wrong: %v %v", f[0].X, f[1].X)
	}
}

func TestTreeMatchesDirectForces(t *testing.T) {
	s := newSim(t, 0.3, 4)
	s.AddPlasmaBall(500, Vec{}, 1.0, 0.05)
	tree := s.ForcesTree(0.3)
	direct := s.ForcesDirect()

	// Compare RMS error against RMS force magnitude.
	var errSq, magSq float64
	for i := range tree {
		d := tree[i].Sub(direct[i])
		errSq += d.Dot(d)
		magSq += direct[i].Dot(direct[i])
	}
	rel := math.Sqrt(errSq / magSq)
	if rel > 0.02 {
		t.Fatalf("tree force RMS relative error %v, want < 2%%", rel)
	}
}

func TestTreeErrorDecreasesWithTheta(t *testing.T) {
	s := newSim(t, 0.5, 4)
	s.AddPlasmaBall(400, Vec{}, 1.0, 0.05)
	direct := s.ForcesDirect()
	relErr := func(theta float64) float64 {
		tree := s.ForcesTree(theta)
		var errSq, magSq float64
		for i := range tree {
			d := tree[i].Sub(direct[i])
			errSq += d.Dot(d)
			magSq += direct[i].Dot(direct[i])
		}
		return math.Sqrt(errSq / magSq)
	}
	loose := relErr(0.9)
	tight := relErr(0.2)
	if tight >= loose {
		t.Fatalf("error not monotone in theta: θ=0.2 %v, θ=0.9 %v", tight, loose)
	}
}

func TestInteractionScalingSubQuadratic(t *testing.T) {
	// The O(N log N) claim, measured in interactions rather than wall time.
	count := func(n int) float64 {
		s := newSim(t, 0.5, 1)
		s.AddPlasmaBall(n, Vec{}, 1.0, 0.05)
		s.ForcesTree(0.5)
		return float64(s.Interactions())
	}
	c1 := count(1000)
	c2 := count(4000)
	// Quadratic would grow 16x; N log N grows ~4.8x. Allow generous slack.
	if ratio := c2 / c1; ratio > 8 {
		t.Fatalf("interaction growth %vx for 4x particles; not sub-quadratic", ratio)
	}
	// Must also beat direct summation's N² at this size.
	if c2 >= 4000*3999/2 {
		t.Fatalf("tree interactions %v not below direct pair count", c2)
	}
}

func TestEnergyConservation(t *testing.T) {
	s, err := New(Params{Theta: 0.3, Dt: 0.002, Eps: 0.1, Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.AddPlasmaBall(300, Vec{}, 1.0, 0.2)
	k0, u0 := s.Energy()
	e0 := k0 + u0
	for i := 0; i < 50; i++ {
		s.Step()
	}
	k1, u1 := s.Energy()
	e1 := k1 + u1
	scale := math.Abs(k0) + math.Abs(u0)
	if math.Abs(e1-e0)/scale > 0.05 {
		t.Fatalf("energy drift: %v → %v (scale %v)", e0, e1, scale)
	}
}

func TestMomentumConservationDirect(t *testing.T) {
	s := newSim(t, 0.5, 4)
	s.AddPlasmaBall(200, Vec{}, 1.0, 0.1)
	f := s.ForcesDirect()
	var sum Vec
	for _, v := range f {
		sum = sum.Add(v)
	}
	if sum.Len() > 1e-9 {
		t.Fatalf("net force %v, want ~0", sum.Len())
	}
}

func TestBeamInjection(t *testing.T) {
	s := newSim(t, 0.5, 2)
	s.AddPlasmaBall(50, Vec{}, 1.0, 0.0)
	s.SetBeam(BeamParams{
		Charge:    -1,
		Intensity: 5,
		Direction: Vec{0, 0, -1},
		Speed:     3,
		Origin:    Vec{0, 0, 4},
		Spread:    0.1,
	})
	n0 := s.N()
	s.Step()
	if s.N() != n0+5 {
		t.Fatalf("N = %d, want %d", s.N(), n0+5)
	}
	// Injected particles fly towards the target.
	for i := n0; i < s.N(); i++ {
		if s.vel[i].Z >= 0 {
			t.Fatalf("beam particle %d not moving towards target: vz = %v", i, s.vel[i].Z)
		}
		if s.charge[i] != -1 {
			t.Fatalf("beam charge = %v", s.charge[i])
		}
	}
}

func TestBeamSteeringMidRun(t *testing.T) {
	s := newSim(t, 0.5, 2)
	s.SetBeam(BeamParams{Charge: 1, Intensity: 2, Direction: Vec{0, 0, 1}, Speed: 1})
	s.Step()
	s.SetBeam(BeamParams{Charge: 1, Intensity: 7, Direction: Vec{0, 0, 1}, Speed: 1})
	n := s.N()
	s.Step()
	if s.N()-n != 7 {
		t.Fatalf("intensity steer ignored: added %d", s.N()-n)
	}
	if got := s.Beam().Intensity; got != 7 {
		t.Fatalf("Beam().Intensity = %d", got)
	}
}

func TestDampingCoolsPlasma(t *testing.T) {
	// Section 3.4: the user can assist the plasma towards a cold state.
	// Coulomb interactions keep converting potential into kinetic energy, so
	// compare against an undamped twin rather than an absolute threshold.
	run := func(damping float64) float64 {
		s := newSim(t, 0.5, 2)
		s.AddPlasmaBall(100, Vec{}, 1.0, 0.5)
		s.SetDamping(damping)
		for i := 0; i < 30; i++ {
			s.Step()
		}
		return s.KineticEnergy()
	}
	hot, cold := run(0), run(0.2)
	if cold > hot/2 {
		t.Fatalf("damping ineffective: undamped %v, damped %v", hot, cold)
	}
}

func TestSnapshotContents(t *testing.T) {
	s := newSim(t, 0.5, 3)
	s.AddPlasmaBall(90, Vec{}, 1.0, 0.1)
	s.Step()
	snap := s.Snapshot()
	if len(snap.Pos) != 90 || len(snap.Vel) != 90 || len(snap.Charge) != 90 ||
		len(snap.Proc) != 90 || len(snap.Labels) != 90 {
		t.Fatalf("snapshot sizes wrong: %+v", snap)
	}
	if snap.Step != 1 {
		t.Fatalf("snapshot step = %d", snap.Step)
	}
	if len(snap.Domains) == 0 || len(snap.Domains) > 3 {
		t.Fatalf("domains = %d, want 1..3", len(snap.Domains))
	}
	// Labels are unique.
	seen := make(map[int32]bool)
	for _, l := range snap.Labels {
		if seen[l] {
			t.Fatalf("duplicate label %d", l)
		}
		seen[l] = true
	}
	// Every particle lies inside its domain box.
	for i, p := range snap.Pos {
		w := int(snap.Proc[i])
		if w >= len(snap.Domains) {
			continue
		}
		b := snap.Domains[w]
		if p.X < b[0].X-1e-9 || p.X > b[1].X+1e-9 ||
			p.Y < b[0].Y-1e-9 || p.Y > b[1].Y+1e-9 ||
			p.Z < b[0].Z-1e-9 || p.Z > b[1].Z+1e-9 {
			t.Fatalf("particle %d outside its domain box", i)
		}
	}
}

func TestWorkerCountDoesNotChangeForces(t *testing.T) {
	build := func(workers int) []Vec {
		s, _ := New(Params{Theta: 0.4, Dt: 0.01, Eps: 0.05, Seed: 9, Workers: workers})
		s.AddPlasmaBall(200, Vec{}, 1.0, 0.1)
		return s.ForcesTree(0.4)
	}
	f1, f8 := build(1), build(8)
	for i := range f1 {
		if f1[i].Sub(f8[i]).Len() > 1e-12 {
			t.Fatalf("worker count changed force %d", i)
		}
	}
}

func TestEmptySimStep(t *testing.T) {
	s := newSim(t, 0.5, 2)
	s.Step() // must not panic with zero particles
	if s.StepCount() != 1 {
		t.Fatal("step not counted")
	}
}

func TestTreeSingleParticle(t *testing.T) {
	s := newSim(t, 0.5, 2)
	s.AddParticle(Vec{}, Vec{}, 1, 1)
	f := s.ForcesTree(0.5)
	if f[0].Len() != 0 {
		t.Fatalf("self-force = %v", f[0])
	}
}

func TestCoincidentParticlesDoNotPanic(t *testing.T) {
	s := newSim(t, 0.5, 1)
	for i := 0; i < 20; i++ {
		s.AddParticle(Vec{1, 1, 1}, Vec{}, 1, 1)
	}
	f := s.ForcesTree(0.5)
	for i, v := range f {
		if math.IsNaN(v.Len()) {
			t.Fatalf("NaN force for coincident particle %d", i)
		}
	}
}
