package pepc

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// BeamParams are the interactively steerable beam controls of section 3.4:
// "the particle beam or laser parameters (charge/intensity, direction) can be
// altered by the user interactively while the application is running".
type BeamParams struct {
	// Charge of each injected beam particle.
	Charge float64
	// Intensity is the number of particles injected per timestep.
	Intensity int
	// Direction is the beam velocity direction (normalised internally).
	Direction Vec
	// Speed of injected particles.
	Speed float64
	// Origin is where the beam enters the domain.
	Origin Vec
	// Spread is the transverse jitter radius of injection points.
	Spread float64
}

// Params configures a simulation.
type Params struct {
	// Theta is the Barnes–Hut multipole acceptance parameter (typ. 0.3–0.7).
	Theta float64
	// Dt is the leapfrog timestep.
	Dt float64
	// Eps is the Plummer softening length.
	Eps float64
	// Workers bounds the force-phase worker pool; 0 uses GOMAXPROCS.
	Workers int
	// Seed makes scenario construction reproducible.
	Seed int64
}

// Sim is a running PEPC-style plasma simulation.
type Sim struct {
	p   Params
	rng *rand.Rand

	mu    sync.RWMutex // guards beam and damping against concurrent steering
	beam  BeamParams
	damp  float64 // velocity damping per step, for "assisting towards a cold state"
	label int32   // next particle tracking label

	pos    []Vec
	vel    []Vec
	charge []float64
	mass   []float64
	labels []int32
	proc   []int32 // worker domain that computed the particle's force last step

	step         int
	workers      int
	interactions int64 // interaction counter for scaling experiments
}

// New creates an empty simulation.
func New(p Params) (*Sim, error) {
	if p.Theta <= 0 || p.Theta >= 1.5 {
		return nil, fmt.Errorf("pepc: theta %v out of range (0, 1.5)", p.Theta)
	}
	if p.Dt <= 0 {
		return nil, fmt.Errorf("pepc: dt %v must be positive", p.Dt)
	}
	if p.Eps <= 0 {
		p.Eps = 0.05
	}
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Sim{p: p, rng: rand.New(rand.NewSource(p.Seed)), workers: w}, nil
}

// N returns the particle count.
func (s *Sim) N() int { return len(s.pos) }

// StepCount returns the number of completed timesteps.
func (s *Sim) StepCount() int { return s.step }

// AddParticle appends one particle and returns its tracking label.
func (s *Sim) AddParticle(pos, vel Vec, charge, mass float64) int32 {
	s.mu.Lock()
	l := s.label
	s.label++
	s.mu.Unlock()
	s.pos = append(s.pos, pos)
	s.vel = append(s.vel, vel)
	s.charge = append(s.charge, charge)
	s.mass = append(s.mass, mass)
	s.labels = append(s.labels, l)
	s.proc = append(s.proc, 0)
	return l
}

// AddPlasmaBall adds n particles uniformly inside a sphere: a neutral
// two-species plasma (alternating ±1 charges) with Maxwellian velocities of
// the given thermal speed. This is the "spherical plasma target" of the
// paper's beam demonstration.
func (s *Sim) AddPlasmaBall(n int, center Vec, radius, thermalSpeed float64) {
	for i := 0; i < n; i++ {
		// Uniform point in the sphere by rejection.
		var p Vec
		for {
			p = Vec{
				s.rng.Float64()*2 - 1,
				s.rng.Float64()*2 - 1,
				s.rng.Float64()*2 - 1,
			}
			if p.Dot(p) <= 1 {
				break
			}
		}
		q := 1.0
		if i%2 == 1 {
			q = -1.0
		}
		v := Vec{
			s.rng.NormFloat64() * thermalSpeed,
			s.rng.NormFloat64() * thermalSpeed,
			s.rng.NormFloat64() * thermalSpeed,
		}
		s.AddParticle(center.Add(p.Scale(radius)), v, q, 1)
	}
}

// SetBeam replaces the beam parameters; safe to call while Step runs.
func (s *Sim) SetBeam(b BeamParams) {
	s.mu.Lock()
	s.beam = b
	s.mu.Unlock()
}

// Beam returns the current beam parameters.
func (s *Sim) Beam() BeamParams {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.beam
}

// SetDamping sets a per-step velocity damping factor in [0,1): the
// "assisting an initially random plasma system towards a cold, ordered
// state" feature of section 3.4. 0 disables damping.
func (s *Sim) SetDamping(d float64) {
	s.mu.Lock()
	if d < 0 {
		d = 0
	}
	if d > 0.99 {
		d = 0.99
	}
	s.damp = d
	s.mu.Unlock()
}

// injectBeam adds the per-step beam particles.
func (s *Sim) injectBeam(b BeamParams) {
	if b.Intensity <= 0 {
		return
	}
	dir := b.Direction
	if l := dir.Len(); l > 0 {
		dir = dir.Scale(1 / l)
	} else {
		dir = Vec{0, 0, 1}
	}
	for i := 0; i < b.Intensity; i++ {
		jitter := Vec{
			(s.rng.Float64() - 0.5) * 2 * b.Spread,
			(s.rng.Float64() - 0.5) * 2 * b.Spread,
			(s.rng.Float64() - 0.5) * 2 * b.Spread,
		}
		s.AddParticle(b.Origin.Add(jitter), dir.Scale(b.Speed), b.Charge, 1)
	}
}

// Step advances the simulation one leapfrog timestep using tree forces.
func (s *Sim) Step() {
	s.mu.RLock()
	beam := s.beam
	damp := s.damp
	s.mu.RUnlock()

	s.injectBeam(beam)
	if len(s.pos) == 0 {
		s.step++
		return
	}

	forces := s.ForcesTree(s.p.Theta)
	dt := s.p.Dt
	for i := range s.pos {
		inv := dt / s.mass[i]
		s.vel[i] = s.vel[i].Add(forces[i].Scale(inv))
		if damp > 0 {
			s.vel[i] = s.vel[i].Scale(1 - damp)
		}
		s.pos[i] = s.pos[i].Add(s.vel[i].Scale(dt))
	}
	s.step++
}

// ForcesTree computes per-particle forces with the Barnes–Hut tree at the
// given theta, in parallel across the worker pool. The per-worker index
// ranges double as the "processor domains" exported for visualization.
func (s *Sim) ForcesTree(theta float64) []Vec {
	n := len(s.pos)
	forces := make([]Vec, n)
	if n == 0 {
		return forces
	}
	root := buildTree(s.pos, s.charge)
	eps2 := s.p.Eps * s.p.Eps

	workers := s.workers
	if workers > n {
		workers = n
	}
	var total int64
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var stats int64
			for i := lo; i < hi; i++ {
				e := root.forceAt(s.pos, s.charge, s.pos[i], int32(i), theta, eps2, &stats)
				forces[i] = e.Scale(s.charge[i])
				s.proc[i] = int32(w)
			}
			atomic.AddInt64(&total, stats)
		}(w, lo, hi)
	}
	wg.Wait()
	atomic.StoreInt64(&s.interactions, total)
	return forces
}

// ForcesDirect computes forces by O(N²) direct summation: the baseline the
// paper contrasts the tree algorithm against.
func (s *Sim) ForcesDirect() []Vec {
	n := len(s.pos)
	forces := make([]Vec, n)
	eps2 := s.p.Eps * s.p.Eps

	workers := s.workers
	if workers > n {
		workers = n
	}
	if workers == 0 {
		return forces
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				var e Vec
				for j := 0; j < n; j++ {
					if i == j {
						continue
					}
					r := s.pos[i].Sub(s.pos[j])
					d2 := r.Dot(r) + eps2
					inv := 1 / (d2 * math.Sqrt(d2))
					e = e.Add(r.Scale(s.charge[j] * inv))
				}
				forces[i] = e.Scale(s.charge[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return forces
}

// Interactions reports the interaction count of the last ForcesTree call;
// it grows as O(N log N), which the scaling experiment verifies without
// depending on wall-clock noise.
func (s *Sim) Interactions() int64 { return atomic.LoadInt64(&s.interactions) }

// Energy returns kinetic and potential energy. The potential sum uses the
// tree with a tight theta, so it is fast enough for monitoring; tests use
// small N where the approximation error is negligible.
func (s *Sim) Energy() (kinetic, potential float64) {
	for i := range s.pos {
		kinetic += 0.5 * s.mass[i] * s.vel[i].Dot(s.vel[i])
	}
	if len(s.pos) < 2 {
		return kinetic, 0
	}
	root := buildTree(s.pos, s.charge)
	eps2 := s.p.Eps * s.p.Eps
	for i := range s.pos {
		potential += 0.5 * s.charge[i] * root.potentialAt(s.pos, s.charge, s.pos[i], int32(i), 0.2, eps2)
	}
	return kinetic, potential
}

// Snapshot is the per-step sample PEPC ships to visualization: "particle
// data-space comprising coordinates, velocities, charge, processor number and
// tracking-label plus information on the tree structure".
type Snapshot struct {
	Step   int
	Pos    []Vec
	Vel    []Vec
	Charge []float64
	Proc   []int32
	Labels []int32
	// Domains are per-worker particle bounding boxes (min, max).
	Domains [][2]Vec
}

// Snapshot captures the current particle state and domain decomposition.
func (s *Sim) Snapshot() *Snapshot {
	n := len(s.pos)
	snap := &Snapshot{
		Step:   s.step,
		Pos:    append([]Vec(nil), s.pos...),
		Vel:    append([]Vec(nil), s.vel...),
		Charge: append([]float64(nil), s.charge...),
		Proc:   append([]int32(nil), s.proc...),
		Labels: append([]int32(nil), s.labels...),
	}
	if n == 0 {
		return snap
	}
	// Bounding box per processor domain.
	boxes := make(map[int32][2]Vec)
	for i, p := range snap.Pos {
		w := snap.Proc[i]
		b, ok := boxes[w]
		if !ok {
			boxes[w] = [2]Vec{p, p}
			continue
		}
		b[0].X = math.Min(b[0].X, p.X)
		b[0].Y = math.Min(b[0].Y, p.Y)
		b[0].Z = math.Min(b[0].Z, p.Z)
		b[1].X = math.Max(b[1].X, p.X)
		b[1].Y = math.Max(b[1].Y, p.Y)
		b[1].Z = math.Max(b[1].Z, p.Z)
		boxes[w] = b
	}
	ids := make([]int, 0, len(boxes))
	for w := range boxes {
		ids = append(ids, int(w))
	}
	sort.Ints(ids)
	for _, w := range ids {
		snap.Domains = append(snap.Domains, boxes[int32(w)])
	}
	return snap
}

// KineticEnergy returns the kinetic energy only (cheap monitored quantity).
func (s *Sim) KineticEnergy() float64 {
	k := 0.0
	for i := range s.pos {
		k += 0.5 * s.mass[i] * s.vel[i].Dot(s.vel[i])
	}
	return k
}
