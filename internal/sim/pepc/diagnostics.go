package pepc

import (
	"fmt"

	"repro/internal/viz"
)

// This file implements the paper's announced PEPC extension (section 3.4):
// "a future extension will also provide selected diagnostic quantities
// mapped onto a user-defined mesh, such as charge density, current, electric
// fields and laser intensity."

// MeshSpec defines the user-defined diagnostic mesh: a regular grid covering
// [Min, Max] with Nx×Ny×Nz sample points.
type MeshSpec struct {
	Nx, Ny, Nz int
	Min, Max   Vec
}

// Validate checks the mesh definition.
func (m MeshSpec) Validate() error {
	if m.Nx < 2 || m.Ny < 2 || m.Nz < 2 {
		return fmt.Errorf("pepc: diagnostic mesh %dx%dx%d too small", m.Nx, m.Ny, m.Nz)
	}
	if m.Max.X <= m.Min.X || m.Max.Y <= m.Min.Y || m.Max.Z <= m.Min.Z {
		return fmt.Errorf("pepc: diagnostic mesh has empty extent")
	}
	return nil
}

// field allocates the output field with world-space placement.
func (m MeshSpec) field() *viz.ScalarField {
	f := viz.NewScalarField(m.Nx, m.Ny, m.Nz)
	f.OriginX, f.OriginY, f.OriginZ = m.Min.X, m.Min.Y, m.Min.Z
	f.SpacingX = (m.Max.X - m.Min.X) / float64(m.Nx-1)
	f.SpacingY = (m.Max.Y - m.Min.Y) / float64(m.Ny-1)
	f.SpacingZ = (m.Max.Z - m.Min.Z) / float64(m.Nz-1)
	return f
}

// cellVolume returns the volume represented by one mesh cell.
func (m MeshSpec) cellVolume() float64 {
	dx := (m.Max.X - m.Min.X) / float64(m.Nx-1)
	dy := (m.Max.Y - m.Min.Y) / float64(m.Ny-1)
	dz := (m.Max.Z - m.Min.Z) / float64(m.Nz-1)
	return dx * dy * dz
}

// depositCIC spreads per-particle weights onto the mesh with cloud-in-cell
// (trilinear) deposition and returns the raw per-node totals.
func (s *Sim) depositCIC(mesh MeshSpec, weight func(i int) float64) *viz.ScalarField {
	f := mesh.field()
	invDX := 1 / f.SpacingX
	invDY := 1 / f.SpacingY
	invDZ := 1 / f.SpacingZ
	for i, p := range s.pos {
		// Normalised cell coordinates.
		gx := (p.X - mesh.Min.X) * invDX
		gy := (p.Y - mesh.Min.Y) * invDY
		gz := (p.Z - mesh.Min.Z) * invDZ
		i0, j0, k0 := int(gx), int(gy), int(gz)
		if gx < 0 || gy < 0 || gz < 0 || i0 >= mesh.Nx-1 || j0 >= mesh.Ny-1 || k0 >= mesh.Nz-1 {
			continue // outside the user-defined mesh
		}
		fx, fy, fz := gx-float64(i0), gy-float64(j0), gz-float64(k0)
		w := weight(i)
		for di := 0; di <= 1; di++ {
			wx := 1 - fx
			if di == 1 {
				wx = fx
			}
			for dj := 0; dj <= 1; dj++ {
				wy := 1 - fy
				if dj == 1 {
					wy = fy
				}
				for dk := 0; dk <= 1; dk++ {
					wz := 1 - fz
					if dk == 1 {
						wz = fz
					}
					idx := f.Index(i0+di, j0+dj, k0+dk)
					f.Data[idx] += w * wx * wy * wz
				}
			}
		}
	}
	return f
}

// ChargeDensity maps the particles' charge onto the mesh as a density
// (charge per unit volume, CIC-deposited).
func (s *Sim) ChargeDensity(mesh MeshSpec) (*viz.ScalarField, error) {
	if err := mesh.Validate(); err != nil {
		return nil, err
	}
	f := s.depositCIC(mesh, func(i int) float64 { return s.charge[i] })
	inv := 1 / mesh.cellVolume()
	for i := range f.Data {
		f.Data[i] *= inv
	}
	return f, nil
}

// CurrentDensity maps one component of the particles' current (q·v) onto
// the mesh. axis selects X/Y/Z via viz.Axis.
func (s *Sim) CurrentDensity(mesh MeshSpec, axis viz.Axis) (*viz.ScalarField, error) {
	if err := mesh.Validate(); err != nil {
		return nil, err
	}
	f := s.depositCIC(mesh, func(i int) float64 {
		switch axis {
		case viz.AxisX:
			return s.charge[i] * s.vel[i].X
		case viz.AxisY:
			return s.charge[i] * s.vel[i].Y
		default:
			return s.charge[i] * s.vel[i].Z
		}
	})
	inv := 1 / mesh.cellVolume()
	for i := range f.Data {
		f.Data[i] *= inv
	}
	return f, nil
}

// ElectricFieldMagnitude samples |E| at every mesh node using the Barnes–Hut
// tree (the same acceptance parameter as the force phase).
func (s *Sim) ElectricFieldMagnitude(mesh MeshSpec, theta float64) (*viz.ScalarField, error) {
	if err := mesh.Validate(); err != nil {
		return nil, err
	}
	f := mesh.field()
	if len(s.pos) == 0 {
		return f, nil
	}
	root := buildTree(s.pos, s.charge)
	eps2 := s.p.Eps * s.p.Eps
	idx := 0
	for k := 0; k < mesh.Nz; k++ {
		for j := 0; j < mesh.Ny; j++ {
			for i := 0; i < mesh.Nx; i++ {
				x, y, z := f.WorldPos(i, j, k)
				e := root.forceAt(s.pos, s.charge, Vec{x, y, z}, -1, theta, eps2, nil)
				f.Data[idx] = e.Len()
				idx++
			}
		}
	}
	return f, nil
}

// Potential samples the electrostatic potential at every mesh node via the
// tree.
func (s *Sim) Potential(mesh MeshSpec, theta float64) (*viz.ScalarField, error) {
	if err := mesh.Validate(); err != nil {
		return nil, err
	}
	f := mesh.field()
	if len(s.pos) == 0 {
		return f, nil
	}
	root := buildTree(s.pos, s.charge)
	eps2 := s.p.Eps * s.p.Eps
	idx := 0
	for k := 0; k < mesh.Nz; k++ {
		for j := 0; j < mesh.Ny; j++ {
			for i := 0; i < mesh.Nx; i++ {
				x, y, z := f.WorldPos(i, j, k)
				f.Data[idx] = root.potentialAt(s.pos, s.charge, Vec{x, y, z}, -1, theta, eps2)
				idx++
			}
		}
	}
	return f, nil
}
