package pepc

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
)

// Checkpoint/restore for the particle code, the PEPC half of the paper's
// section 2.4 migration capability (the lattice-Boltzmann half lives in
// sim/lb). The particle arrays, beam controls and damping all round-trip;
// the injection RNG is re-seeded deterministically from (Seed, Step), so
// two restores of the same checkpoint follow identical trajectories, and a
// run with beam injection disabled restores bit-identically.

// checkpoint is the serialised simulation state.
type checkpoint struct {
	Params Params
	Beam   BeamParams
	Damp   float64
	Label  int32
	Step   int
	Pos    []Vec
	Vel    []Vec
	Charge []float64
	Mass   []float64
	Labels []int32
	Proc   []int32
}

// WriteCheckpoint serialises the full simulation state.
func (s *Sim) WriteCheckpoint(w io.Writer) error {
	s.mu.RLock()
	cp := checkpoint{
		Params: s.p,
		Beam:   s.beam,
		Damp:   s.damp,
		Label:  s.label,
		Step:   s.step,
		Pos:    s.pos,
		Vel:    s.vel,
		Charge: s.charge,
		Mass:   s.mass,
		Labels: s.labels,
		Proc:   s.proc,
	}
	s.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(&cp); err != nil {
		return fmt.Errorf("pepc: checkpoint write: %w", err)
	}
	return nil
}

// Restore reconstructs a simulation from a checkpoint stream.
func Restore(r io.Reader) (*Sim, error) {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("pepc: checkpoint read: %w", err)
	}
	n := len(cp.Pos)
	if len(cp.Vel) != n || len(cp.Charge) != n || len(cp.Mass) != n ||
		len(cp.Labels) != n || len(cp.Proc) != n {
		return nil, fmt.Errorf("pepc: checkpoint particle arrays disagree on length")
	}
	s, err := New(cp.Params)
	if err != nil {
		return nil, err
	}
	s.beam = cp.Beam
	s.damp = cp.Damp
	s.label = cp.Label
	s.step = cp.Step
	s.pos = cp.Pos
	s.vel = cp.Vel
	s.charge = cp.Charge
	s.mass = cp.Mass
	s.labels = cp.Labels
	s.proc = cp.Proc
	// Deterministic restart: the jitter stream depends only on where the
	// run was cut, never on how many times it has been restored.
	s.rng = rand.New(rand.NewSource(cp.Params.Seed + int64(cp.Step) + 1))
	return s, nil
}
