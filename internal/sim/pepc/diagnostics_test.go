package pepc

import (
	"math"
	"testing"

	"repro/internal/viz"
)

func diagMesh() MeshSpec {
	return MeshSpec{Nx: 9, Ny: 9, Nz: 9, Min: Vec{-2, -2, -2}, Max: Vec{2, 2, 2}}
}

func TestMeshSpecValidation(t *testing.T) {
	if err := (MeshSpec{Nx: 1, Ny: 4, Nz: 4, Min: Vec{}, Max: Vec{1, 1, 1}}).Validate(); err == nil {
		t.Fatal("degenerate mesh accepted")
	}
	if err := (MeshSpec{Nx: 4, Ny: 4, Nz: 4, Min: Vec{1, 0, 0}, Max: Vec{1, 1, 1}}).Validate(); err == nil {
		t.Fatal("empty extent accepted")
	}
	if err := diagMesh().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChargeDepositionConservesCharge(t *testing.T) {
	s := newSim(t, 0.5, 2)
	s.AddPlasmaBall(300, Vec{}, 1.0, 0.1)
	// Add a beam so total charge is non-zero.
	for i := 0; i < 25; i++ {
		s.AddParticle(Vec{0, 0, 1}, Vec{}, -1, 1)
	}
	mesh := diagMesh()
	f, err := s.ChargeDensity(mesh)
	if err != nil {
		t.Fatal(err)
	}
	// Integrate density × cell volume back to total charge.
	total := 0.0
	for _, v := range f.Data {
		total += v
	}
	total *= mesh.cellVolume()
	if math.Abs(total-(-25)) > 1e-9 {
		t.Fatalf("deposited charge %v, want -25", total)
	}
}

func TestChargeDensityLocalisesBeam(t *testing.T) {
	s := newSim(t, 0.5, 1)
	for i := 0; i < 50; i++ {
		s.AddParticle(Vec{1.5, 1.5, 1.5}, Vec{}, -1, 1)
	}
	f, err := s.ChargeDensity(diagMesh())
	if err != nil {
		t.Fatal(err)
	}
	// The most negative node should be adjacent to the beam cluster.
	minV, minIdx := 0.0, -1
	for i, v := range f.Data {
		if v < minV {
			minV, minIdx = v, i
		}
	}
	if minIdx < 0 {
		t.Fatal("no negative density found")
	}
	k := minIdx / (9 * 9)
	j := (minIdx / 9) % 9
	i := minIdx % 9
	x, y, z := f.WorldPos(i, j, k)
	if math.Abs(x-1.5) > 0.5 || math.Abs(y-1.5) > 0.5 || math.Abs(z-1.5) > 0.5 {
		t.Fatalf("density peak at (%v,%v,%v), want near (1.5,1.5,1.5)", x, y, z)
	}
}

func TestParticlesOutsideMeshIgnored(t *testing.T) {
	s := newSim(t, 0.5, 1)
	s.AddParticle(Vec{100, 100, 100}, Vec{}, 5, 1)
	f, err := s.ChargeDensity(diagMesh())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range f.Data {
		if v != 0 {
			t.Fatal("out-of-mesh particle deposited charge")
		}
	}
}

func TestCurrentDensityDirectional(t *testing.T) {
	s := newSim(t, 0.5, 1)
	// A beam moving in -z with charge -1: current density jz = q·vz = +3.
	for i := 0; i < 40; i++ {
		s.AddParticle(Vec{0, 0, 0}, Vec{0, 0, -3}, -1, 1)
	}
	mesh := diagMesh()
	jz, err := s.CurrentDensity(mesh, viz.AxisZ)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, v := range jz.Data {
		total += v
	}
	total *= mesh.cellVolume()
	if math.Abs(total-120) > 1e-9 { // 40 particles × (−1)·(−3)
		t.Fatalf("total jz = %v, want 120", total)
	}
	jx, err := s.CurrentDensity(mesh, viz.AxisX)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range jx.Data {
		if v != 0 {
			t.Fatal("transverse current from longitudinal beam")
		}
	}
}

func TestElectricFieldOfPointCharge(t *testing.T) {
	s := newSim(t, 0.5, 1)
	s.AddParticle(Vec{}, Vec{}, 1, 1)
	mesh := MeshSpec{Nx: 5, Ny: 5, Nz: 5, Min: Vec{-2, -2, -2}, Max: Vec{2, 2, 2}}
	f, err := s.ElectricFieldMagnitude(mesh, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// |E| at a corner node (distance √12) ≈ q/d² with softening.
	corner := f.At(0, 0, 0)
	d2 := 12 + s.p.Eps*s.p.Eps
	want := math.Sqrt(12) / (d2 * math.Sqrt(d2))
	if math.Abs(corner-want)/want > 0.01 {
		t.Fatalf("corner |E| = %v, want %v", corner, want)
	}
	// Field decays with distance: corner < mid-edge neighbour towards centre.
	if f.At(1, 1, 1) <= corner {
		t.Fatal("field does not grow towards the charge")
	}
}

func TestPotentialOfPointCharge(t *testing.T) {
	s := newSim(t, 0.5, 1)
	s.AddParticle(Vec{}, Vec{}, 1, 1)
	mesh := MeshSpec{Nx: 5, Ny: 5, Nz: 5, Min: Vec{-2, -2, -2}, Max: Vec{2, 2, 2}}
	f, err := s.Potential(mesh, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	corner := f.At(0, 0, 0)
	want := 1 / math.Sqrt(12+s.p.Eps*s.p.Eps)
	if math.Abs(corner-want)/want > 0.01 {
		t.Fatalf("corner potential = %v, want %v", corner, want)
	}
}

func TestDiagnosticsOnEmptySim(t *testing.T) {
	s := newSim(t, 0.5, 1)
	if _, err := s.ElectricFieldMagnitude(diagMesh(), 0.3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Potential(diagMesh(), 0.3); err != nil {
		t.Fatal(err)
	}
}
