package lb

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hub"
)

// TestSteeredLBOnHub attaches the lattice-Boltzmann workload to a live hub
// session over loopback TCP: the segregation diagnostics stream out, the
// miscibility coupling steer of section 2.2 lands at a loop boundary, and a
// checkpoint request serialises state the restored sim agrees with.
func TestSteeredLBOnHub(t *testing.T) {
	h := hub.New(hub.Config{})
	defer h.Close()
	session, err := h.CreateSession(core.SessionConfig{Name: "lb-run", AppName: "lb3d"})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(Params{Nx: 8, Ny: 8, Nz: 8, Tau: 1, G: 0, Seed: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	adapter, err := NewSteered(session.Steered(), sim, SteerConfig{
		SampleStride: 1,
		Checkpoint:   func(write func(io.Writer) error) error { return write(&ckpt) },
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go h.Serve(l)
	runDone := make(chan error, 1)
	go func() { runDone <- adapter.Run() }()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	pilot, err := core.Dial(ctx, l.Addr().String(), core.AttachOptions{
		Name: "pilot", Session: "lb-run", WantMaster: true, SampleBuffer: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pilot.Close()

	// Steer the coupling; the "coupling" diagnostics channel reports the
	// live value, so a sample carrying it proves the apply callback ran at
	// a loop boundary.
	if err := pilot.SetParamContext(ctx, "miscibility-g", 5); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var s *core.Sample
		select {
		case s = <-pilot.Samples():
		case <-time.After(5 * time.Second):
			t.Fatal("sample stream dried up before the steer landed")
		}
		if _, ok := s.Channels["segregation"]; !ok {
			t.Fatalf("sample missing segregation channel: %v", s.Channels)
		}
		if g, ok := s.Channels["coupling"]; ok && g.Value() == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coupling steer never reflected in the diagnostics stream")
		}
	}

	// A checkpoint request serialises consistent state through the
	// configured sink at the loop boundary.
	if err := pilot.CheckpointContext(ctx); err != nil {
		t.Fatal(err)
	}
	var ckptStep int
	deadline = time.Now().Add(5 * time.Second)
wait:
	for time.Now().Before(deadline) {
		for _, ev := range pilot.Events() {
			if _, err := fmt.Sscanf(ev, "checkpoint written at step %d", &ckptStep); err == nil {
				break wait
			}
			if strings.HasPrefix(ev, "checkpoint failed") {
				t.Fatalf("checkpoint sink failed: %s", ev)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := pilot.StopContext(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("run loop: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run loop did not exit on stop")
	}

	restored, err := Restore(bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		t.Fatalf("restore from steered checkpoint: %v", err)
	}
	if restored.StepCount() != ckptStep {
		t.Fatalf("restored step %d, checkpoint event said %d", restored.StepCount(), ckptStep)
	}
	if g := restored.Coupling(); g != 5 {
		t.Fatalf("restored coupling %v, want the steered 5", g)
	}
}
