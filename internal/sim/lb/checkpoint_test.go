package lb

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCheckpointRestoreExactTrajectory(t *testing.T) {
	orig, err := New(Params{Nx: 10, Ny: 10, Nz: 10, Tau: 1, G: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		orig.Step()
	}

	var buf bytes.Buffer
	if err := orig.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// Continue the original; restore a twin and run it the same distance.
	for i := 0; i < 15; i++ {
		orig.Step()
	}
	restored, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.StepCount() != 10 {
		t.Fatalf("restored step = %d, want 10", restored.StepCount())
	}
	if restored.Coupling() != 4 {
		t.Fatalf("restored coupling = %v", restored.Coupling())
	}
	for i := 0; i < 15; i++ {
		restored.Step()
	}
	if got, want := restored.Segregation(), orig.Segregation(); got != want {
		t.Fatalf("trajectories diverged after migration: %v vs %v", got, want)
	}
	// Field-level identity, not just the scalar.
	of := orig.OrderParameter()
	rf := restored.OrderParameter()
	for i := range of.Data {
		if of.Data[i] != rf.Data[i] {
			t.Fatalf("order parameter differs at cell %d", i)
		}
	}
}

func TestCheckpointPreservesSteeredState(t *testing.T) {
	s, _ := New(Params{Nx: 8, Ny: 8, Nz: 8, Tau: 1, G: 0, Seed: 1})
	s.Step()
	s.SetCoupling(5.5) // steered mid-run, differs from Params.G
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Coupling() != 5.5 {
		t.Fatalf("steered coupling lost in migration: %v", r.Coupling())
	}
}

func TestRestoreGarbageFails(t *testing.T) {
	if _, err := Restore(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
}

func TestRestoreTruncatedFails(t *testing.T) {
	s, _ := New(Params{Nx: 6, Ny: 6, Nz: 6, Tau: 1, Seed: 1})
	var buf bytes.Buffer
	s.WriteCheckpoint(&buf)
	if _, err := Restore(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

// Property: checkpoint/restore round-trips conserve mass exactly for any
// seed and coupling.
func TestQuickCheckpointMass(t *testing.T) {
	f := func(seed int64, gRaw uint8) bool {
		g := float64(gRaw % 6)
		s, err := New(Params{Nx: 6, Ny: 6, Nz: 6, Tau: 1, G: g, Seed: seed})
		if err != nil {
			return false
		}
		for i := 0; i < 3; i++ {
			s.Step()
		}
		a0, b0 := s.TotalMass()
		var buf bytes.Buffer
		if err := s.WriteCheckpoint(&buf); err != nil {
			return false
		}
		r, err := Restore(&buf)
		if err != nil {
			return false
		}
		a1, b1 := r.TotalMass()
		return a0 == a1 && b0 == b1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationAcrossWorkerCounts(t *testing.T) {
	// Migrating from a 1-worker host to an 8-worker host must not change
	// the physics (the paper's migration happens between different
	// supercomputers).
	s, _ := New(Params{Nx: 8, Ny: 8, Nz: 8, Tau: 1, G: 4, Seed: 9, Workers: 1})
	for i := 0; i < 5; i++ {
		s.Step()
	}
	var buf bytes.Buffer
	s.WriteCheckpoint(&buf)

	var cpBuf bytes.Buffer
	cpBuf.Write(buf.Bytes())
	r1, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Patch worker count on the restored twin via a fresh restore of the
	// same checkpoint (Params travel inside it, so emulate the new host by
	// stepping both and comparing).
	r2, err := Restore(&cpBuf)
	if err != nil {
		t.Fatal(err)
	}
	r2.workers = 8
	for i := 0; i < 5; i++ {
		r1.Step()
		r2.Step()
	}
	if r1.Segregation() != r2.Segregation() {
		t.Fatalf("worker count changed migrated physics: %v vs %v", r1.Segregation(), r2.Segregation())
	}
}
