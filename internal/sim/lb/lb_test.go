package lb

import (
	"math"
	"testing"
	"testing/quick"
)

func newTestSim(t *testing.T, g float64) *Sim {
	t.Helper()
	s, err := New(Params{Nx: 12, Ny: 12, Nz: 12, Tau: 1, G: g, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Params{Nx: 1, Ny: 4, Nz: 4, Tau: 1}); err == nil {
		t.Fatal("accepted degenerate lattice")
	}
	if _, err := New(Params{Nx: 4, Ny: 4, Nz: 4, Tau: 0.5}); err == nil {
		t.Fatal("accepted unstable tau")
	}
}

func TestWeightsSumToOne(t *testing.T) {
	sum := 0.0
	for _, w := range wt {
		sum += w
	}
	if math.Abs(sum-1) > 1e-14 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestVelocitySetSymmetric(t *testing.T) {
	// Every non-rest direction must have its opposite in the set, a
	// precondition of periodic streaming correctness.
	for d := 1; d < q; d++ {
		found := false
		for e := 1; e < q; e++ {
			if ex[e] == -ex[d] && ey[e] == -ey[d] && ez[e] == -ez[d] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("direction %d has no opposite", d)
		}
	}
	// First moment of weights must vanish.
	var mx, my, mz float64
	for d := 0; d < q; d++ {
		mx += wt[d] * float64(ex[d])
		my += wt[d] * float64(ey[d])
		mz += wt[d] * float64(ez[d])
	}
	if mx != 0 || my != 0 || mz != 0 {
		t.Fatalf("first moment = %v,%v,%v", mx, my, mz)
	}
}

func TestMassConservation(t *testing.T) {
	s := newTestSim(t, 3.0)
	a0, b0 := s.TotalMass()
	for i := 0; i < 20; i++ {
		s.Step()
	}
	a1, b1 := s.TotalMass()
	if math.Abs(a1-a0)/a0 > 1e-10 || math.Abs(b1-b0)/b0 > 1e-10 {
		t.Fatalf("mass drifted: A %v→%v, B %v→%v", a0, a1, b0, b1)
	}
}

func TestUniformStateIsFixedPointWithoutCoupling(t *testing.T) {
	s, err := New(Params{Nx: 8, Ny: 8, Nz: 8, Tau: 1, G: 0, Noise: 1e-12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Segregation()
	for i := 0; i < 10; i++ {
		s.Step()
	}
	after := s.Segregation()
	if after > before+1e-9 {
		t.Fatalf("uniform state destabilised without coupling: %v → %v", before, after)
	}
}

func TestDemixingUnderStrongCoupling(t *testing.T) {
	// This is the steering physics of section 2.2: raising the coupling
	// (lowering miscibility) makes structure form.
	mixed := newTestSim(t, 0)
	demix := newTestSim(t, 4.5)
	for i := 0; i < 60; i++ {
		mixed.Step()
		demix.Step()
	}
	if demix.Segregation() < 5*mixed.Segregation() {
		t.Fatalf("segregation: g=0 %v, g=4.5 %v; expected strong demixing",
			mixed.Segregation(), demix.Segregation())
	}
	if demix.Segregation() < 0.1 {
		t.Fatalf("demixed segregation %v too weak", demix.Segregation())
	}
}

func TestSteeringMidRunChangesBehaviour(t *testing.T) {
	s := newTestSim(t, 0)
	for i := 0; i < 20; i++ {
		s.Step()
	}
	segMixed := s.Segregation()
	s.SetCoupling(4.5) // steer: make the fluids immiscible
	if s.Coupling() != 4.5 {
		t.Fatal("coupling not applied")
	}
	for i := 0; i < 60; i++ {
		s.Step()
	}
	if s.Segregation() < 3*segMixed {
		t.Fatalf("steering had no effect: %v → %v", segMixed, s.Segregation())
	}
}

func TestOrderParameterField(t *testing.T) {
	s := newTestSim(t, 0)
	f := s.OrderParameter()
	if f.Nx != 12 || f.Ny != 12 || f.Nz != 12 {
		t.Fatalf("field size %dx%dx%d", f.Nx, f.Ny, f.Nz)
	}
	// Total of φ equals massA - massB.
	a, b := s.TotalMass()
	sum := 0.0
	for _, v := range f.Data {
		sum += v
	}
	if math.Abs(sum-(a-b)) > 1e-9 {
		t.Fatalf("Σφ = %v, want %v", sum, a-b)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() float64 {
		s, _ := New(Params{Nx: 8, Ny: 8, Nz: 8, Tau: 1, G: 4, Seed: 7, Workers: 4})
		for i := 0; i < 15; i++ {
			s.Step()
		}
		return s.Segregation()
	}
	if run() != run() {
		t.Fatal("same seed produced different trajectories")
	}
}

func TestWorkerCountDoesNotChangePhysics(t *testing.T) {
	run := func(workers int) float64 {
		s, _ := New(Params{Nx: 8, Ny: 8, Nz: 8, Tau: 1, G: 4, Seed: 7, Workers: workers})
		for i := 0; i < 10; i++ {
			s.Step()
		}
		return s.Segregation()
	}
	if math.Abs(run(1)-run(8)) > 1e-12 {
		t.Fatalf("parallel decomposition changed result: %v vs %v", run(1), run(8))
	}
}

func TestStepCount(t *testing.T) {
	s := newTestSim(t, 0)
	for i := 0; i < 5; i++ {
		s.Step()
	}
	if s.StepCount() != 5 {
		t.Fatalf("StepCount = %d", s.StepCount())
	}
}

func TestWrap(t *testing.T) {
	for _, tc := range []struct{ i, n, want int }{
		{-1, 8, 7}, {8, 8, 0}, {3, 8, 3}, {0, 8, 0}, {7, 8, 7},
	} {
		if got := wrap(tc.i, tc.n); got != tc.want {
			t.Fatalf("wrap(%d,%d) = %d, want %d", tc.i, tc.n, got, tc.want)
		}
	}
}

// Property: mass is conserved for arbitrary (sane) couplings and seeds.
func TestQuickMassConservation(t *testing.T) {
	f := func(seed int64, gRaw uint8) bool {
		g := float64(gRaw%50) / 10 // 0..4.9
		s, err := New(Params{Nx: 6, Ny: 6, Nz: 6, Tau: 1, G: g, Seed: seed})
		if err != nil {
			return false
		}
		a0, b0 := s.TotalMass()
		for i := 0; i < 5; i++ {
			s.Step()
		}
		a1, b1 := s.TotalMass()
		return math.Abs(a1-a0) < 1e-9 && math.Abs(b1-b0) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
