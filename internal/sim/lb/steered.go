package lb

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// This file binds the lattice-Boltzmann workload onto a core steering
// session: the Steered-backed adapter that replaces the ad-hoc control
// surfaces the daemons used to wire by hand. The registered parameter names
// are stable — they are what journals record and steering clients script
// against — so a restarted daemon recovering a journal finds the same
// surface it checkpointed under.

// SteerConfig configures a steered run.
type SteerConfig struct {
	// Label is the initial "run-label" value (defaults to "lb3d").
	Label string
	// SampleStride emits a diagnostics sample every N steps; <= 0 means
	// every step. Steerable at runtime via the "sample-stride" parameter.
	SampleStride int64
	// MaxSteps stops the run after N completed steps; 0 runs until a
	// steering client stops the session.
	MaxSteps int64
	// PauseTimeout bounds how long a paused run blocks waiting for resume
	// (0 waits indefinitely; see core.Steered.PollBlocking).
	PauseTimeout time.Duration
	// Checkpoint, when non-nil, receives the simulation's serialised state
	// at the loop boundary whenever a steering client requests a
	// checkpoint. Composing it with a journal-backed session is what lets
	// a steered run survive a daemon restart.
	Checkpoint func(write func(io.Writer) error) error
}

// Steered is the lattice-Boltzmann steering adapter: one Sim bound to one
// session's steering surface.
type Steered struct {
	st     *core.Steered
	sim    *Sim
	cfg    SteerConfig
	stride atomic.Int64
}

// NewSteered registers the simulation's steerable surface on st and returns
// the adapter that drives it:
//
//   - "miscibility-g" (float): the Shan–Chen coupling of section 2.2, the
//     paper's original steering demonstration.
//   - "sample-stride" (int): diagnostics decimation.
//   - "run-label" (string): free-form label echoed on the event stream.
func NewSteered(st *core.Steered, sim *Sim, cfg SteerConfig) (*Steered, error) {
	if cfg.SampleStride <= 0 {
		cfg.SampleStride = 1
	}
	if cfg.Label == "" {
		cfg.Label = "lb3d"
	}
	a := &Steered{st: st, sim: sim, cfg: cfg}
	a.stride.Store(cfg.SampleStride)
	if err := st.RegisterFloat("miscibility-g", sim.Coupling(), 0, 6,
		"Shan–Chen coupling: 0 mixes, >4 demixes", sim.SetCoupling); err != nil {
		return nil, err
	}
	if err := st.RegisterInt("sample-stride", cfg.SampleStride, 1, 1000,
		"emit a sample every N steps", a.stride.Store); err != nil {
		return nil, err
	}
	if err := st.RegisterString("run-label", cfg.Label,
		"free-form run label", func(v string) { st.Event("run-label: " + v) }); err != nil {
		return nil, err
	}
	return a, nil
}

// Run drives the steering loop until the session stops (or MaxSteps): poll
// at the loop boundary, honour checkpoint requests, step, sample.
func (a *Steered) Run() error {
	for step := int64(0); a.cfg.MaxSteps == 0 || step < a.cfg.MaxSteps; step++ {
		if a.st.PollBlocking(a.cfg.PauseTimeout) == core.ControlStop {
			return nil
		}
		if a.st.CheckpointRequested() {
			a.checkpoint()
		}
		a.sim.Step()
		if stride := a.stride.Load(); stride <= 1 || step%stride == 0 {
			// Samples carry the sim's own step counter, not the loop index:
			// after a checkpoint restore the stream continues where the
			// checkpoint left off instead of restarting at zero.
			a.st.Emit(a.Sample(int64(a.sim.StepCount())))
		}
	}
	return nil
}

// Sample builds the per-step diagnostics sample: the segregation order
// parameter steering clients watch, plus the live coupling.
func (a *Steered) Sample(step int64) *core.Sample {
	s := core.NewSample(step)
	s.Channels["segregation"] = core.Scalar(a.sim.Segregation())
	s.Channels["coupling"] = core.Scalar(a.sim.Coupling())
	return s
}

// checkpoint runs the configured sink and reports the outcome on the event
// stream (section 4.4's activity indicator).
func (a *Steered) checkpoint() {
	if a.cfg.Checkpoint == nil {
		a.st.Event("checkpoint requested but no checkpoint sink configured")
		return
	}
	if err := a.cfg.Checkpoint(a.sim.WriteCheckpoint); err != nil {
		a.st.Event(fmt.Sprintf("checkpoint failed: %v", err))
		return
	}
	a.st.Event(fmt.Sprintf("checkpoint written at step %d", a.sim.StepCount()))
}
