package lb

import (
	"encoding/gob"
	"fmt"
	"io"
)

// This file implements checkpoint/restore, the substrate for the paper's
// section 2.4 capability: "RealityGrid is developing the ability to migrate
// both computation and visualization within a session without any
// disturbance or intervention on the part of the participating clients."
// A checkpoint written on one host restores to a bit-identical simulation on
// another (see the migration test and core session integration).

// checkpoint is the serialised simulation state.
type checkpoint struct {
	Params Params
	G      float64
	Step   int
	FA, FB []float64
}

// WriteCheckpoint serialises the full simulation state.
func (s *Sim) WriteCheckpoint(w io.Writer) error {
	s.mu.RLock()
	g := s.g
	s.mu.RUnlock()
	cp := checkpoint{
		Params: s.p,
		G:      g,
		Step:   s.step,
		FA:     s.fA,
		FB:     s.fB,
	}
	if err := gob.NewEncoder(w).Encode(&cp); err != nil {
		return fmt.Errorf("lb: checkpoint write: %w", err)
	}
	return nil
}

// Restore reconstructs a simulation from a checkpoint stream. The restored
// run continues the original trajectory exactly (bitwise, for equal worker
// counts or not — the update is worker-count independent).
func Restore(r io.Reader) (*Sim, error) {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("lb: checkpoint read: %w", err)
	}
	s, err := New(cp.Params)
	if err != nil {
		return nil, err
	}
	want := s.ncell * q
	if len(cp.FA) != want || len(cp.FB) != want {
		return nil, fmt.Errorf("lb: checkpoint has %d/%d distribution entries, want %d", len(cp.FA), len(cp.FB), want)
	}
	copy(s.fA, cp.FA)
	copy(s.fB, cp.FB)
	s.g = cp.G
	s.step = cp.Step
	s.updateDensities()
	return s, nil
}
