// Package lb implements a D3Q19 two-component Shan–Chen lattice-Boltzmann
// fluid simulation. It reproduces the RealityGrid demonstration workload of
// the paper (section 2.2): "a Lattice Boltzmann 3D code simulating a mixture
// of two fluids. The parameter used for the steering was the miscibility of
// the fluids. The simulation was on a 3D grid with periodic boundary
// conditions. As the miscibility parameter was altered, the structures formed
// by the fluids changed."
//
// The miscibility knob is the Shan–Chen inter-component coupling g: at g = 0
// the fluids mix freely; above the critical coupling they demix and form the
// evolving domain structures the showcase visualised as isosurfaces of the
// order parameter φ = ρA − ρB.
//
// The collision/streaming loop is parallelised over z-slabs with a goroutine
// worker pool, standing in for the MPI decomposition of the original code.
package lb

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/viz"
)

// q is the number of discrete velocities in the D3Q19 set.
const q = 19

// D3Q19 velocity set: the rest vector, 6 axis vectors and 12 face diagonals.
var (
	ex = [q]int{0, 1, -1, 0, 0, 0, 0, 1, -1, 1, -1, 1, -1, 1, -1, 0, 0, 0, 0}
	ey = [q]int{0, 0, 0, 1, -1, 0, 0, 1, -1, -1, 1, 0, 0, 0, 0, 1, -1, 1, -1}
	ez = [q]int{0, 0, 0, 0, 0, 1, -1, 0, 0, 0, 0, 1, -1, -1, 1, 1, -1, -1, 1}
	wt = [q]float64{
		1.0 / 3,
		1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18,
		1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36,
		1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36,
	}
)

// Params configures a simulation.
type Params struct {
	Nx, Ny, Nz int
	// Tau is the BGK relaxation time (> 0.5 for stability).
	Tau float64
	// G is the Shan–Chen inter-component coupling: the miscibility steering
	// parameter. With the bounded pseudopotential ψ(ρ) = 1 − exp(−ρ) and the
	// default mean densities (0.5 per component), G = 0 is fully miscible,
	// demixing sets in near G ≈ 3.5, and the scheme is numerically stable up
	// to roughly G ≈ 8.
	G float64
	// Noise is the amplitude of the initial density perturbation.
	Noise float64
	// Seed makes the initial condition reproducible.
	Seed int64
	// Workers bounds the parallel worker count; 0 uses GOMAXPROCS.
	Workers int
}

// Sim is a running two-component lattice-Boltzmann simulation.
type Sim struct {
	p          Params
	nx, ny, nz int
	ncell      int

	// fA, fB are the distribution functions, indexed [cell*q + dir].
	fA, fB []float64
	// tmpA, tmpB are the post-collision buffers streamed back into fA, fB.
	tmpA, tmpB []float64
	// rhoA, rhoB are per-cell densities, refreshed each step.
	rhoA, rhoB []float64

	mu      sync.RWMutex // guards g against concurrent steering
	g       float64
	step    int
	workers int
}

// New creates a simulation initialised with a uniformly mixed state plus
// random noise, the standard spinodal-decomposition initial condition.
func New(p Params) (*Sim, error) {
	if p.Nx < 2 || p.Ny < 2 || p.Nz < 2 {
		return nil, fmt.Errorf("lb: lattice %dx%dx%d too small", p.Nx, p.Ny, p.Nz)
	}
	if p.Tau <= 0.5 {
		return nil, fmt.Errorf("lb: tau %v must exceed 0.5", p.Tau)
	}
	if p.Noise == 0 {
		p.Noise = 0.01
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > p.Nz {
		workers = p.Nz
	}

	s := &Sim{
		p:       p,
		nx:      p.Nx,
		ny:      p.Ny,
		nz:      p.Nz,
		ncell:   p.Nx * p.Ny * p.Nz,
		g:       p.G,
		workers: workers,
	}
	s.fA = make([]float64, s.ncell*q)
	s.fB = make([]float64, s.ncell*q)
	s.tmpA = make([]float64, s.ncell*q)
	s.tmpB = make([]float64, s.ncell*q)
	s.rhoA = make([]float64, s.ncell)
	s.rhoB = make([]float64, s.ncell)

	rng := rand.New(rand.NewSource(p.Seed))
	for c := 0; c < s.ncell; c++ {
		// Mean density 0.5 each, with anti-correlated noise so the total
		// density starts uniform.
		d := p.Noise * (rng.Float64() - 0.5)
		ra := 0.5 + d
		rb := 0.5 - d
		for i := 0; i < q; i++ {
			s.fA[c*q+i] = wt[i] * ra
			s.fB[c*q+i] = wt[i] * rb
		}
	}
	s.updateDensities()
	return s, nil
}

// Size returns the lattice dimensions.
func (s *Sim) Size() (nx, ny, nz int) { return s.nx, s.ny, s.nz }

// StepCount returns the number of completed timesteps. Like the other
// observers (TotalMass, OrderParameter, Segregation) it is safe to call
// concurrently with Step, the access pattern of a monitoring client.
func (s *Sim) StepCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.step
}

// Coupling returns the current miscibility coupling g.
func (s *Sim) Coupling() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.g
}

// SetCoupling changes the miscibility coupling; safe to call from a steering
// goroutine while Step runs on another (takes effect at the next step).
func (s *Sim) SetCoupling(g float64) {
	s.mu.Lock()
	s.g = g
	s.mu.Unlock()
}

func (s *Sim) idx(i, j, k int) int { return (k*s.ny+j)*s.nx + i }

// parallelSlabs runs fn(k) for every z-slab across the worker pool.
func (s *Sim) parallelSlabs(fn func(k int)) {
	if s.workers <= 1 {
		for k := 0; k < s.nz; k++ {
			fn(k)
		}
		return
	}
	var wg sync.WaitGroup
	slab := make(chan int)
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range slab {
				fn(k)
			}
		}()
	}
	for k := 0; k < s.nz; k++ {
		slab <- k
	}
	close(slab)
	wg.Wait()
}

// updateDensities refreshes rhoA/rhoB from the distributions.
func (s *Sim) updateDensities() {
	s.parallelSlabs(func(k int) {
		for j := 0; j < s.ny; j++ {
			base := s.idx(0, j, k)
			for i := 0; i < s.nx; i++ {
				c := base + i
				var ra, rb float64
				for d := 0; d < q; d++ {
					ra += s.fA[c*q+d]
					rb += s.fB[c*q+d]
				}
				s.rhoA[c] = ra
				s.rhoB[c] = rb
			}
		}
	})
}

// Step advances the simulation one timestep: Shan–Chen forcing, BGK
// collision, then periodic streaming.
func (s *Sim) Step() {
	s.mu.RLock()
	g := s.g
	s.mu.RUnlock()
	tau := s.p.Tau

	// Collision with Shan–Chen velocity shift.
	s.parallelSlabs(func(k int) {
		for j := 0; j < s.ny; j++ {
			for i := 0; i < s.nx; i++ {
				c := s.idx(i, j, k)
				ra, rb := s.rhoA[c], s.rhoB[c]

				// Momenta.
				var uxA, uyA, uzA, uxB, uyB, uzB float64
				for d := 0; d < q; d++ {
					fa, fb := s.fA[c*q+d], s.fB[c*q+d]
					uxA += fa * float64(ex[d])
					uyA += fa * float64(ey[d])
					uzA += fa * float64(ez[d])
					uxB += fb * float64(ex[d])
					uyB += fb * float64(ey[d])
					uzB += fb * float64(ez[d])
				}

				// Shan–Chen force on A from B (and vice versa):
				// F_A = -g ψ(ρA) Σ w_d ψ(ρB(x+e_d)) e_d, with the standard
				// bounded pseudopotential ψ(ρ) = 1 − exp(−ρ) that keeps
				// strong couplings numerically stable at long times.
				var fxA, fyA, fzA float64
				for d := 1; d < q; d++ {
					ni := wrap(i+ex[d], s.nx)
					nj := wrap(j+ey[d], s.ny)
					nk := wrap(k+ez[d], s.nz)
					n := s.idx(ni, nj, nk)
					w := wt[d] * psi(s.rhoB[n])
					fxA += w * float64(ex[d])
					fyA += w * float64(ey[d])
					fzA += w * float64(ez[d])
				}
				pa := -g * psi(ra)
				fxA, fyA, fzA = pa*fxA, pa*fyA, pa*fzA
				var fxB, fyB, fzB float64
				for d := 1; d < q; d++ {
					ni := wrap(i+ex[d], s.nx)
					nj := wrap(j+ey[d], s.ny)
					nk := wrap(k+ez[d], s.nz)
					n := s.idx(ni, nj, nk)
					w := wt[d] * psi(s.rhoA[n])
					fxB += w * float64(ex[d])
					fyB += w * float64(ey[d])
					fzB += w * float64(ez[d])
				}
				pb := -g * psi(rb)
				fxB, fyB, fzB = pb*fxB, pb*fyB, pb*fzB

				// Common velocity (equal relaxation times).
				rTot := ra + rb
				var ux, uy, uz float64
				if rTot > 1e-12 {
					ux = (uxA + uxB) / rTot
					uy = (uyA + uyB) / rTot
					uz = (uzA + uzB) / rTot
				}

				// Per-component equilibrium velocity with force shift.
				collide := func(f []float64, tmp []float64, rho, fx, fy, fz float64) {
					var ueqx, ueqy, ueqz float64
					if rho > 1e-12 {
						ueqx = ux + tau*fx/rho
						ueqy = uy + tau*fy/rho
						ueqz = uz + tau*fz/rho
					}
					usq := ueqx*ueqx + ueqy*ueqy + ueqz*ueqz
					for d := 0; d < q; d++ {
						eu := float64(ex[d])*ueqx + float64(ey[d])*ueqy + float64(ez[d])*ueqz
						feq := wt[d] * rho * (1 + 3*eu + 4.5*eu*eu - 1.5*usq)
						tmp[c*q+d] = f[c*q+d] - (f[c*q+d]-feq)/tau
					}
				}
				collide(s.fA, s.tmpA, ra, fxA, fyA, fzA)
				collide(s.fB, s.tmpB, rb, fxB, fyB, fzB)
			}
		}
	})

	// Streaming with periodic boundaries: pull formulation.
	s.parallelSlabs(func(k int) {
		for j := 0; j < s.ny; j++ {
			for i := 0; i < s.nx; i++ {
				c := s.idx(i, j, k)
				for d := 0; d < q; d++ {
					si := wrap(i-ex[d], s.nx)
					sj := wrap(j-ey[d], s.ny)
					sk := wrap(k-ez[d], s.nz)
					src := s.idx(si, sj, sk)
					s.fA[c*q+d] = s.tmpA[src*q+d]
					s.fB[c*q+d] = s.tmpB[src*q+d]
				}
			}
		}
	})

	s.mu.Lock()
	s.updateDensities()
	s.step++
	s.mu.Unlock()
}

// psi is the Shan–Chen pseudopotential ψ(ρ) = 1 − exp(−ρ); bounding ψ keeps
// the inter-component force finite however dense a demixed droplet becomes.
func psi(rho float64) float64 {
	if rho <= 0 {
		return 0
	}
	return 1 - math.Exp(-rho)
}

// wrap applies periodic boundary conditions.
func wrap(i, n int) int {
	if i < 0 {
		return i + n
	}
	if i >= n {
		return i - n
	}
	return i
}

// TotalMass returns the total mass of each component; both are conserved
// exactly by collision and streaming.
func (s *Sim) TotalMass() (a, b float64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for c := 0; c < s.ncell; c++ {
		a += s.rhoA[c]
		b += s.rhoB[c]
	}
	return a, b
}

// OrderParameter returns φ = ρA − ρB as a scalar field; its isosurface at 0
// is the fluid-fluid interface the showcase visualised.
func (s *Sim) OrderParameter() *viz.ScalarField {
	f := viz.NewScalarField(s.nx, s.ny, s.nz)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for c := 0; c < s.ncell; c++ {
		f.Data[c] = s.rhoA[c] - s.rhoB[c]
	}
	return f
}

// Segregation returns the mean |φ| / mean total density: ~0 for a mixed
// state, approaching 1 as the fluids fully demix. It is the scalar monitored
// quantity steering clients watch.
func (s *Sim) Segregation() float64 {
	var absPhi, tot float64
	s.mu.RLock()
	defer s.mu.RUnlock()
	for c := 0; c < s.ncell; c++ {
		phi := s.rhoA[c] - s.rhoB[c]
		if phi < 0 {
			phi = -phi
		}
		absPhi += phi
		tot += s.rhoA[c] + s.rhoB[c]
	}
	if tot == 0 {
		return 0
	}
	return absPhi / tot
}
