package airflow

import (
	"math"
	"testing"
)

func newBox(t *testing.T) *Sim {
	t.Helper()
	s, err := New(Params{Nx: 12, Ny: 10, Nz: 12, Kappa: 0.1, Dt: 0.2, AmbientT: 20})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Params{Nx: 2, Ny: 5, Nz: 5, Dt: 0.1}); err == nil {
		t.Fatal("accepted tiny grid")
	}
	if _, err := New(Params{Nx: 5, Ny: 5, Nz: 5, Dt: 0}); err == nil {
		t.Fatal("accepted dt 0")
	}
}

func TestWallsEncloseDomain(t *testing.T) {
	s := newBox(t)
	nx, ny, nz := s.Size()
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				onBoundary := i == 0 || j == 0 || k == 0 || i == nx-1 || j == ny-1 || k == nz-1
				if onBoundary && s.cells[s.idx(i, j, k)] != Wall {
					t.Fatalf("boundary cell %d,%d,%d not wall", i, j, k)
				}
			}
		}
	}
}

func TestHeatConservationPureDiffusion(t *testing.T) {
	s := newBox(t)
	// Hot spot in the middle, no vents, no sources: insulated box conserves
	// total heat.
	s.temp[s.idx(6, 5, 6)] = 100
	before := s.TotalHeat()
	for i := 0; i < 50; i++ {
		s.Step()
	}
	after := s.TotalHeat()
	if math.Abs(after-before)/before > 1e-9 {
		t.Fatalf("heat drifted %v → %v", before, after)
	}
}

func TestDiffusionSmoothsExtremes(t *testing.T) {
	s := newBox(t)
	s.temp[s.idx(6, 5, 6)] = 100
	for i := 0; i < 50; i++ {
		s.Step()
	}
	f := s.Temperature()
	lo, hi := f.MinMax()
	if hi >= 100 || hi <= 20 {
		t.Fatalf("peak should decay but stay above ambient: hi = %v", hi)
	}
	if lo < 20-1e-9 {
		t.Fatalf("diffusion undershot ambient: lo = %v", lo)
	}
}

func TestHeatSourceWarmsRoom(t *testing.T) {
	s := newBox(t)
	s.AddHeatSource(6, 5, 6, 2.0)
	before := s.MeanTemperature()
	for i := 0; i < 30; i++ {
		s.Step()
	}
	if s.MeanTemperature() <= before {
		t.Fatalf("visitors did not warm the room: %v → %v", before, s.MeanTemperature())
	}
}

func TestVentCoolsRoom(t *testing.T) {
	s := newBox(t)
	for i := range s.temp {
		s.temp[i] = 30
	}
	s.AddVent(VentSpec{I: 6, J: 8, K: 6, Temperature: 15, Flow: 1.0})
	s.AddExhaust(2, 1, 2)
	before := s.MeanTemperature()
	for i := 0; i < 150; i++ {
		s.Step()
	}
	after := s.MeanTemperature()
	if after >= before-0.5 {
		t.Fatalf("climatization ineffective: %v → %v", before, after)
	}
}

func TestSteeringVentTemperature(t *testing.T) {
	s := newBox(t)
	s.AddVent(VentSpec{I: 6, J: 8, K: 6, Temperature: 18, Flow: 1.0})
	s.AddExhaust(2, 1, 2)
	for i := 0; i < 50; i++ {
		s.Step()
	}
	cool := s.MeanTemperature()
	// Steer: blast hot air instead.
	if err := s.SetVent(6, 8, 6, 35, 1.0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		s.Step()
	}
	if s.MeanTemperature() <= cool {
		t.Fatalf("vent steering had no effect: %v → %v", cool, s.MeanTemperature())
	}
}

func TestSetVentUnknownLocation(t *testing.T) {
	s := newBox(t)
	if err := s.SetVent(3, 3, 3, 20, 1); err == nil {
		t.Fatal("steering a non-existent vent must fail")
	}
}

func TestFlowFieldZeroAtWalls(t *testing.T) {
	s := newBox(t)
	s.AddVent(VentSpec{I: 6, J: 8, K: 6, Temperature: 18, Flow: 2.0})
	s.AddExhaust(2, 1, 2)
	s.Step()
	nx, ny, nz := s.Size()
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				id := s.idx(i, j, k)
				if s.cells[id] == Wall && (s.vx[id] != 0 || s.vy[id] != 0 || s.vz[id] != 0) {
					t.Fatalf("flow inside wall at %d,%d,%d", i, j, k)
				}
			}
		}
	}
}

func TestFlowRespondsToVentFlowSteering(t *testing.T) {
	s := newBox(t)
	s.AddVent(VentSpec{I: 6, J: 8, K: 6, Temperature: 18, Flow: 0.5})
	s.AddExhaust(2, 1, 2)
	s.Step()
	speedBefore := fieldMax(s)
	if err := s.SetVent(6, 8, 6, 18, 4.0); err != nil {
		t.Fatal(err)
	}
	s.Step()
	speedAfter := fieldMax(s)
	if speedAfter <= speedBefore {
		t.Fatalf("flow steering ignored: %v → %v", speedBefore, speedAfter)
	}
}

func fieldMax(s *Sim) float64 {
	f := s.Speed()
	_, hi := f.MinMax()
	return hi
}

func TestTemperatureStaysFinite(t *testing.T) {
	s, err := New(Params{Nx: 10, Ny: 10, Nz: 10, Kappa: 10 /* over-stable: clamped */, Dt: 0.5, AmbientT: 20})
	if err != nil {
		t.Fatal(err)
	}
	s.AddVent(VentSpec{I: 5, J: 8, K: 5, Temperature: 25, Flow: 1})
	s.AddExhaust(2, 1, 2)
	s.AddHeatSource(5, 2, 5, 3)
	for i := 0; i < 100; i++ {
		s.Step()
	}
	for id, v := range s.temp {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("temperature blew up at cell %d: %v", id, v)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func(workers int) float64 {
		s, _ := New(Params{Nx: 12, Ny: 10, Nz: 12, Kappa: 0.1, Dt: 0.2, AmbientT: 20, Workers: workers})
		s.AddVent(VentSpec{I: 6, J: 8, K: 6, Temperature: 16, Flow: 1})
		s.AddExhaust(2, 1, 2)
		s.AddHeatSource(8, 2, 8, 1)
		for i := 0; i < 20; i++ {
			s.Step()
		}
		return s.MeanTemperature()
	}
	if run(1) != run(1) {
		t.Fatal("same configuration produced different results")
	}
	if math.Abs(run(1)-run(4)) > 1e-12 {
		t.Fatal("worker count changed physics")
	}
}

func TestCarShowBuilding(t *testing.T) {
	s, err := CarShowBuilding(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		s.Step()
	}
	f := s.Temperature()
	lo, hi := f.MinMax()
	if math.IsNaN(lo) || math.IsNaN(hi) {
		t.Fatal("car show building produced NaN temperatures")
	}
	// Visitors heat, vents cool at 18: the field must have developed
	// structure around ambient 20.
	if hi <= 20 {
		t.Fatalf("no warm regions: hi = %v", hi)
	}
	if lo >= 20 {
		t.Fatalf("no cool regions: lo = %v", lo)
	}
	if s.StepCount() != 25 {
		t.Fatalf("StepCount = %d", s.StepCount())
	}
}
