// Package airflow implements a voxelised building-climatization simulation:
// the workload of the paper's COVISE demonstration (section 4.7), where
// "simulations allow determining and optimizing the climatization layout" of
// a car-show building and the behaviour of its visitors is analysed.
//
// The model is deliberately classic: a potential-flow velocity field driven
// by supply vents (sources) and exhausts (sinks), solved with Jacobi
// iterations, advecting and diffusing a temperature field with first-order
// upwind differencing. Visitors are steerable point heat sources; vent
// temperature and flow rate are the steerable climatization parameters.
package airflow

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/viz"
)

// Cell classifies one voxel of the building.
type Cell uint8

// Voxel types.
const (
	Open Cell = iota
	Wall
	Vent    // air supply: flow source with a supply temperature
	Exhaust // air return: flow sink
)

// VentSpec describes one steerable air supply.
type VentSpec struct {
	I, J, K     int
	Temperature float64 // supply temperature
	Flow        float64 // volumetric source strength
}

// Params configures the solver.
type Params struct {
	Nx, Ny, Nz int
	// Kappa is the thermal diffusivity (stability requires Kappa*Dt < 1/6
	// with unit spacing; Step clamps automatically).
	Kappa float64
	// Dt is the timestep.
	Dt float64
	// AmbientT is the initial temperature everywhere.
	AmbientT float64
	// Workers bounds the parallel worker pool; 0 uses a serial loop.
	Workers int
}

// Sim is a running climatization simulation.
type Sim struct {
	p     Params
	cells []Cell
	temp  []float64
	vx    []float64
	vy    []float64
	vz    []float64

	mu        sync.RWMutex
	vents     map[int]*VentSpec // keyed by flat index
	exhausts  []int
	heat      map[int]float64 // visitor/exhibit heat sources, W per cell
	flowDirty bool

	step int
}

// New allocates a building filled with open space at ambient temperature,
// enclosed by walls on all six faces.
func New(p Params) (*Sim, error) {
	if p.Nx < 3 || p.Ny < 3 || p.Nz < 3 {
		return nil, fmt.Errorf("airflow: grid %dx%dx%d too small", p.Nx, p.Ny, p.Nz)
	}
	if p.Dt <= 0 || p.Kappa < 0 {
		return nil, fmt.Errorf("airflow: invalid dt %v / kappa %v", p.Dt, p.Kappa)
	}
	n := p.Nx * p.Ny * p.Nz
	s := &Sim{
		p:     p,
		cells: make([]Cell, n),
		temp:  make([]float64, n),
		vx:    make([]float64, n),
		vy:    make([]float64, n),
		vz:    make([]float64, n),
		vents: make(map[int]*VentSpec),
		heat:  make(map[int]float64),
	}
	for i := range s.temp {
		s.temp[i] = p.AmbientT
	}
	// Enclose with walls.
	for k := 0; k < p.Nz; k++ {
		for j := 0; j < p.Ny; j++ {
			for i := 0; i < p.Nx; i++ {
				if i == 0 || j == 0 || k == 0 || i == p.Nx-1 || j == p.Ny-1 || k == p.Nz-1 {
					s.cells[s.idx(i, j, k)] = Wall
				}
			}
		}
	}
	return s, nil
}

func (s *Sim) idx(i, j, k int) int { return (k*s.p.Ny+j)*s.p.Nx + i }

// Size returns the grid dimensions.
func (s *Sim) Size() (nx, ny, nz int) { return s.p.Nx, s.p.Ny, s.p.Nz }

// StepCount returns the number of completed steps.
func (s *Sim) StepCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.step
}

// SetWall marks a voxel as solid wall.
func (s *Sim) SetWall(i, j, k int) { s.cells[s.idx(i, j, k)] = Wall }

// AddWallBox fills the axis-aligned box [i0,i1]×[j0,j1]×[k0,k1] with wall.
func (s *Sim) AddWallBox(i0, j0, k0, i1, j1, k1 int) {
	for k := k0; k <= k1; k++ {
		for j := j0; j <= j1; j++ {
			for i := i0; i <= i1; i++ {
				s.SetWall(i, j, k)
			}
		}
	}
}

// AddVent installs a steerable air supply at (i, j, k).
func (s *Sim) AddVent(v VentSpec) {
	id := s.idx(v.I, v.J, v.K)
	s.mu.Lock()
	s.cells[id] = Vent
	spec := v
	s.vents[id] = &spec
	s.flowDirty = true
	s.mu.Unlock()
}

// AddExhaust installs an air return at (i, j, k).
func (s *Sim) AddExhaust(i, j, k int) {
	id := s.idx(i, j, k)
	s.mu.Lock()
	s.cells[id] = Exhaust
	s.exhausts = append(s.exhausts, id)
	s.flowDirty = true
	s.mu.Unlock()
}

// Vents returns a snapshot of every installed vent, ordered by flat cell
// index; the steering adapter uses it to apply building-wide setpoints.
func (s *Sim) Vents() []VentSpec {
	s.mu.RLock()
	ids := make([]int, 0, len(s.vents))
	for id := range s.vents {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]VentSpec, 0, len(ids))
	for _, id := range ids {
		out = append(out, *s.vents[id])
	}
	s.mu.RUnlock()
	return out
}

// SetVent steers an existing vent's temperature and flow; safe to call while
// Step runs on another goroutine.
func (s *Sim) SetVent(i, j, k int, temperature, flow float64) error {
	id := s.idx(i, j, k)
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.vents[id]
	if !ok {
		return fmt.Errorf("airflow: no vent at %d,%d,%d", i, j, k)
	}
	v.Temperature = temperature
	if v.Flow != flow {
		v.Flow = flow
		s.flowDirty = true
	}
	return nil
}

// AddHeatSource places a heat source (a visitor cluster or exhibit) of the
// given power at a voxel; power 0 removes it.
func (s *Sim) AddHeatSource(i, j, k int, power float64) {
	id := s.idx(i, j, k)
	s.mu.Lock()
	if power == 0 {
		delete(s.heat, id)
	} else {
		s.heat[id] = power
	}
	s.mu.Unlock()
}

// solveFlow computes the potential-flow velocity field from the current vent
// and exhaust configuration: ∇²φ = −(sources − sinks), v = −∇φ, with
// zero-normal-flow walls. Jacobi iteration is run to a fixed tolerance.
func (s *Sim) solveFlow() {
	nx, ny, nz := s.p.Nx, s.p.Ny, s.p.Nz
	n := nx * ny * nz
	phi := make([]float64, n)
	next := make([]float64, n)
	src := make([]float64, n)

	var totalIn float64
	for id, v := range s.vents {
		src[id] += v.Flow
		totalIn += v.Flow
	}
	// Distribute the balancing sink over exhausts so the system is solvable.
	if len(s.exhausts) > 0 && totalIn > 0 {
		per := totalIn / float64(len(s.exhausts))
		for _, id := range s.exhausts {
			src[id] -= per
		}
	}

	const maxIter = 400
	for iter := 0; iter < maxIter; iter++ {
		var maxDelta float64
		for k := 1; k < nz-1; k++ {
			for j := 1; j < ny-1; j++ {
				for i := 1; i < nx-1; i++ {
					id := s.idx(i, j, k)
					if s.cells[id] == Wall {
						next[id] = phi[id]
						continue
					}
					var sum float64
					var cnt float64
					for _, d := range [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
						nid := s.idx(i+d[0], j+d[1], k+d[2])
						if s.cells[nid] == Wall {
							continue // Neumann: mirror, contributes nothing
						}
						sum += phi[nid]
						cnt++
					}
					if cnt == 0 {
						next[id] = phi[id]
						continue
					}
					v := (sum + src[id]) / cnt
					if d := math.Abs(v - phi[id]); d > maxDelta {
						maxDelta = d
					}
					next[id] = v
				}
			}
		}
		phi, next = next, phi
		if maxDelta < 1e-7 {
			break
		}
	}

	// v = −∇φ with central differences; zero at walls.
	for k := 1; k < nz-1; k++ {
		for j := 1; j < ny-1; j++ {
			for i := 1; i < nx-1; i++ {
				id := s.idx(i, j, k)
				if s.cells[id] == Wall {
					s.vx[id], s.vy[id], s.vz[id] = 0, 0, 0
					continue
				}
				grad := func(a, b int) float64 { return -(phi[a] - phi[b]) / 2 }
				s.vx[id] = grad(s.idx(i+1, j, k), s.idx(i-1, j, k))
				s.vy[id] = grad(s.idx(i, j+1, k), s.idx(i, j-1, k))
				s.vz[id] = grad(s.idx(i, j, k+1), s.idx(i, j, k-1))
			}
		}
	}
	s.flowDirty = false
}

// Step advances temperature by one timestep: upwind advection along the flow
// field, explicit diffusion, heat sources and vent supply temperatures.
func (s *Sim) Step() {
	s.mu.Lock()
	if s.flowDirty {
		s.solveFlow()
	}
	heat := make(map[int]float64, len(s.heat))
	for k, v := range s.heat {
		heat[k] = v
	}
	vents := make(map[int]VentSpec, len(s.vents))
	for k, v := range s.vents {
		vents[k] = *v
	}
	s.mu.Unlock()

	nx, ny, nz := s.p.Nx, s.p.Ny, s.p.Nz
	dt := s.p.Dt
	kappa := s.p.Kappa
	if kappa*dt > 1.0/6.1 {
		kappa = 1.0 / 6.1 / dt // clamp for explicit stability
	}
	next := make([]float64, len(s.temp))
	copy(next, s.temp)

	run := func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			for j := 1; j < ny-1; j++ {
				for i := 1; i < nx-1; i++ {
					id := s.idx(i, j, k)
					if s.cells[id] == Wall {
						continue
					}
					t := s.temp[id]

					// Diffusion with insulated (mirrored) walls.
					var lap float64
					for _, d := range [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
						nid := s.idx(i+d[0], j+d[1], k+d[2])
						tn := s.temp[nid]
						if s.cells[nid] == Wall {
							tn = t
						}
						lap += tn - t
					}

					// Upwind advection.
					adv := 0.0
					v := s.vx[id]
					if v > 0 {
						adv += v * (t - s.upT(i-1, j, k, t))
					} else {
						adv += v * (s.upT(i+1, j, k, t) - t)
					}
					v = s.vy[id]
					if v > 0 {
						adv += v * (t - s.upT(i, j-1, k, t))
					} else {
						adv += v * (s.upT(i, j+1, k, t) - t)
					}
					v = s.vz[id]
					if v > 0 {
						adv += v * (t - s.upT(i, j, k-1, t))
					} else {
						adv += v * (s.upT(i, j, k+1, t) - t)
					}

					next[id] = t + dt*(kappa*lap-adv+heat[id])
				}
			}
		}
	}

	workers := s.p.Workers
	if workers <= 1 || nz < 8 {
		run(1, nz-1)
	} else {
		var wg sync.WaitGroup
		chunk := (nz - 2 + workers - 1) / workers
		for w := 0; w < workers; w++ {
			k0 := 1 + w*chunk
			k1 := k0 + chunk
			if k1 > nz-1 {
				k1 = nz - 1
			}
			if k0 >= k1 {
				continue
			}
			wg.Add(1)
			go func(k0, k1 int) {
				defer wg.Done()
				run(k0, k1)
			}(k0, k1)
		}
		wg.Wait()
	}

	// Vents impose their supply temperature.
	for id, v := range vents {
		next[id] = v.Temperature
	}
	s.mu.Lock()
	s.temp = next
	s.step++
	s.mu.Unlock()
}

// upT returns the neighbour temperature for upwind differencing, treating
// walls as the local value (no flux through walls).
func (s *Sim) upT(i, j, k int, local float64) float64 {
	id := s.idx(i, j, k)
	if s.cells[id] == Wall {
		return local
	}
	return s.temp[id]
}

// Temperature returns the temperature as a scalar field for visualization.
// The observers in this file are safe to call concurrently with Step, the
// access pattern of a monitoring client.
func (s *Sim) Temperature() *viz.ScalarField {
	f := viz.NewScalarField(s.p.Nx, s.p.Ny, s.p.Nz)
	s.mu.RLock()
	copy(f.Data, s.temp)
	s.mu.RUnlock()
	return f
}

// Speed returns |v| as a scalar field.
func (s *Sim) Speed() *viz.ScalarField {
	f := viz.NewScalarField(s.p.Nx, s.p.Ny, s.p.Nz)
	// solveFlow rewrites vx/vy/vz under the write lock, so holding the read
	// lock for the whole pass is required, not just polite.
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i := range f.Data {
		f.Data[i] = math.Sqrt(s.vx[i]*s.vx[i] + s.vy[i]*s.vy[i] + s.vz[i]*s.vz[i])
	}
	return f
}

// MeanTemperature returns the average over open cells: the scalar monitored
// quantity steering clients watch.
func (s *Sim) MeanTemperature() float64 {
	var sum float64
	var n int
	s.mu.RLock()
	temp := s.temp
	s.mu.RUnlock()
	for id, c := range s.cells {
		if c == Wall {
			continue
		}
		sum += temp[id]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TotalHeat returns the sum of temperature over open cells, conserved under
// pure diffusion with insulated walls.
func (s *Sim) TotalHeat() float64 {
	var sum float64
	s.mu.RLock()
	temp := s.temp
	s.mu.RUnlock()
	for id, c := range s.cells {
		if c == Wall {
			continue
		}
		sum += temp[id]
	}
	return sum
}

// CarShowBuilding constructs the demonstration scenario of section 4.7: an
// exhibition hall with an interior partition, supply vents, exhausts, parked
// exhibits and visitor clusters.
func CarShowBuilding(workers int) (*Sim, error) {
	s, err := New(Params{
		Nx: 40, Ny: 12, Nz: 24,
		Kappa:    0.08,
		Dt:       0.25,
		AmbientT: 20,
		Workers:  workers,
	})
	if err != nil {
		return nil, err
	}
	// Interior partition wall with a doorway, splitting hall and showroom.
	s.AddWallBox(20, 1, 1, 20, 10, 8)
	s.AddWallBox(20, 1, 14, 20, 10, 22)
	// Exhibits (cars) on the showroom floor.
	s.AddWallBox(26, 1, 4, 29, 3, 7)
	s.AddWallBox(26, 1, 14, 29, 3, 17)
	s.AddWallBox(8, 1, 9, 11, 3, 12)
	// Climatization: supply vents in the ceiling, exhausts near the floor.
	s.AddVent(VentSpec{I: 10, J: 10, K: 6, Temperature: 18, Flow: 1.0})
	s.AddVent(VentSpec{I: 10, J: 10, K: 18, Temperature: 18, Flow: 1.0})
	s.AddVent(VentSpec{I: 30, J: 10, K: 12, Temperature: 18, Flow: 1.2})
	s.AddExhaust(2, 1, 2)
	s.AddExhaust(37, 1, 21)
	// Visitor clusters radiating heat.
	s.AddHeatSource(27, 1, 10, 1.5)
	s.AddHeatSource(13, 1, 11, 1.0)
	s.AddHeatSource(32, 1, 16, 0.8)
	return s, nil
}
