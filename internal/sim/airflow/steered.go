package airflow

import (
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// This file binds the climatization workload onto a core steering session:
// the COVISE demonstration of section 4.7, where vent temperature and flow
// are the steerable climatization parameters and the mean hall temperature
// is what the engineers watch converge.

// SteerConfig configures a steered run.
type SteerConfig struct {
	// SampleStride emits a diagnostics sample every N steps; <= 0 means
	// every step. Steerable at runtime via "sample-stride".
	SampleStride int64
	// MaxSteps stops the run after N completed steps; 0 runs until stopped.
	MaxSteps int64
	// PauseTimeout bounds how long a paused run blocks waiting for resume.
	PauseTimeout time.Duration
}

// Steered is the climatization steering adapter.
type Steered struct {
	st     *core.Steered
	sim    *Sim
	cfg    SteerConfig
	stride atomic.Int64

	// installed is the vent layout at bind time: "vent-temp" applies one
	// setpoint to every supply, "vent-flow-scale" multiplies each vent's
	// installed flow so the layout's relative balance is preserved. scale
	// is the current multiplier; both are only touched from apply
	// callbacks, which run on the simulation's poll goroutine.
	installed []VentSpec
	scale     float64
}

// NewSteered registers the climatization steerable surface on st:
// "vent-temp" and "vent-flow-scale" (float) plus "sample-stride" (int).
func NewSteered(st *core.Steered, sim *Sim, cfg SteerConfig) (*Steered, error) {
	if cfg.SampleStride <= 0 {
		cfg.SampleStride = 1
	}
	a := &Steered{st: st, sim: sim, cfg: cfg, installed: sim.Vents(), scale: 1}
	a.stride.Store(cfg.SampleStride)
	initialTemp := 18.0
	if len(a.installed) > 0 {
		initialTemp = a.installed[0].Temperature
	}
	if err := st.RegisterFloat("vent-temp", initialTemp, 0, 45,
		"supply temperature applied to every vent", func(v float64) {
			for i := range a.installed {
				a.installed[i].Temperature = v
				a.applyVent(i)
			}
		}); err != nil {
		return nil, err
	}
	if err := st.RegisterFloat("vent-flow-scale", 1, 0, 4,
		"multiplier on every vent's installed flow", func(v float64) {
			a.scale = v
			for i := range a.installed {
				a.applyVent(i)
			}
		}); err != nil {
		return nil, err
	}
	if err := st.RegisterInt("sample-stride", cfg.SampleStride, 1, 1000,
		"emit a sample every N steps", a.stride.Store); err != nil {
		return nil, err
	}
	return a, nil
}

func (a *Steered) applyVent(i int) {
	v := a.installed[i]
	a.sim.SetVent(v.I, v.J, v.K, v.Temperature, v.Flow*a.scale)
}

// Run drives the steering loop until the session stops (or MaxSteps).
func (a *Steered) Run() error {
	for step := int64(0); a.cfg.MaxSteps == 0 || step < a.cfg.MaxSteps; step++ {
		if a.st.PollBlocking(a.cfg.PauseTimeout) == core.ControlStop {
			return nil
		}
		a.sim.Step()
		if stride := a.stride.Load(); stride <= 1 || step%stride == 0 {
			a.st.Emit(a.Sample(step))
		}
	}
	return nil
}

// Sample builds the per-step diagnostics sample: mean hall temperature (the
// convergence quantity) and total heat.
func (a *Steered) Sample(step int64) *core.Sample {
	s := core.NewSample(step)
	s.Channels["meanT"] = core.Scalar(a.sim.MeanTemperature())
	s.Channels["totalHeat"] = core.Scalar(a.sim.TotalHeat())
	return s
}
