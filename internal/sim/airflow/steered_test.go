package airflow

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hub"
)

// TestSteeredAirflowOnHub attaches the climatization workload to a live hub
// session over loopback TCP: the mean-temperature diagnostics stream out
// and the section 4.7 vent-temperature steer measurably heats the hall.
func TestSteeredAirflowOnHub(t *testing.T) {
	h := hub.New(hub.Config{})
	defer h.Close()
	session, err := h.CreateSession(core.SessionConfig{Name: "airflow-run", AppName: "airflow"})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := CarShowBuilding(1)
	if err != nil {
		t.Fatal(err)
	}
	adapter, err := NewSteered(session.Steered(), sim, SteerConfig{SampleStride: 1})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go h.Serve(l)
	runDone := make(chan error, 1)
	go func() { runDone <- adapter.Run() }()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	pilot, err := core.Dial(ctx, l.Addr().String(), core.AttachOptions{
		Name: "pilot", Session: "airflow-run", WantMaster: true, SampleBuffer: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pilot.Close()

	var baseline float64
	select {
	case s := <-pilot.Samples():
		mt, ok := s.Channels["meanT"]
		if !ok {
			t.Fatalf("sample missing meanT channel: %v", s.Channels)
		}
		baseline = mt.Value()
	case <-time.After(5 * time.Second):
		t.Fatal("no diagnostics sample from the running solver")
	}

	// Crank every supply vent to 45°C; the hall mean must respond in the
	// diagnostics stream — the end-to-end steer→apply→observe loop.
	if err := pilot.SetParamContext(ctx, "vent-temp", 45); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var s *core.Sample
		select {
		case s = <-pilot.Samples():
		case <-time.After(5 * time.Second):
			t.Fatal("sample stream dried up after the steer")
		}
		if mt, ok := s.Channels["meanT"]; ok && mt.Value() > baseline+0.1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hall mean never rose from baseline %.3f after the vent steer", baseline)
		}
	}

	if err := pilot.StopContext(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("solver loop: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("solver loop did not exit on stop")
	}
}
