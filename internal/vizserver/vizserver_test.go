package vizserver

import (
	"bytes"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/render"
	"repro/internal/viz"
)

// testScene returns a provider for a sphere isosurface scene.
func testScene(n int) SceneProvider {
	f := viz.NewScalarField(n, n, n)
	c := float64(n-1) / 2
	f.Fill(func(i, j, k int) float64 {
		dx, dy, dz := float64(i)-c, float64(j)-c, float64(k)-c
		return math.Sqrt(dx*dx + dy*dy + dz*dz)
	})
	mesh := viz.Isosurface(f, float64(n)/3, render.Blue)
	scene := &render.Scene{Meshes: []*render.Mesh{mesh}}
	return func() *render.Scene { return scene }
}

func startSession(t *testing.T, nClients int) (*Server, []*Client) {
	t.Helper()
	cam := render.DefaultCamera()
	cam.Center = render.Vec3{X: 8, Y: 8, Z: 8}
	cam.Eye = render.Vec3{X: 30, Y: 25, Z: 35}
	srv, err := NewServer(Config{Width: 160, Height: 120, Scene: testScene(17), Camera: cam})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close(); l.Close() })

	clients := make([]*Client, nClients)
	for i := range clients {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c, err := Attach(conn)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		clients[i] = c
		waitFrames(t, c, 1)
	}
	return srv, clients
}

func waitFrames(t *testing.T, c *Client, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Frames() < n {
		if time.Now().After(deadline) {
			t.Fatalf("client stuck at %d frames, want %d", c.Frames(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	size := 64 * 64 * 4
	a := make([]byte, size)
	b := make([]byte, size)
	for i := range a {
		a[i] = byte(i * 7)
		b[i] = byte(i * 7)
	}
	b[100] = 0xFF // small change

	key := EncodeKey(a)
	back, err := DecodeKey(key, size)
	if err != nil || !bytes.Equal(back, a) {
		t.Fatalf("keyframe round trip failed: %v", err)
	}

	delta, err := EncodeDelta(a, b)
	if err != nil {
		t.Fatal(err)
	}
	back2, err := DecodeDelta(a, delta, size)
	if err != nil || !bytes.Equal(back2, b) {
		t.Fatalf("delta round trip failed: %v", err)
	}
	// Small changes compress dramatically better than keyframes.
	if len(delta) >= len(key)/2 {
		t.Fatalf("delta %d bytes vs key %d: delta coding ineffective", len(delta), len(key))
	}
}

func TestCodecSizeMismatch(t *testing.T) {
	if _, err := EncodeDelta(make([]byte, 4), make([]byte, 8)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := DecodeKey(EncodeKey(make([]byte, 16)), 32); err == nil {
		t.Fatal("wrong decode size accepted")
	}
}

func TestFirstFrameDelivered(t *testing.T) {
	_, clients := startSession(t, 1)
	fb := clients[0].Framebuffer()
	painted := 0
	for i := 0; i < len(fb); i += 4 {
		if fb[i] != 0 || fb[i+1] != 0 || fb[i+2] != 0 {
			painted++
		}
	}
	if painted == 0 {
		t.Fatal("client frame is empty: isosurface not visible")
	}
}

func TestCompressionBeatsRaw(t *testing.T) {
	srv, clients := startSession(t, 1)
	cam := srv.Camera()
	for i := 0; i < 5; i++ {
		cam.Eye.X += 0.5
		if err := clients[0].SetCamera(cam, 2*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	waitFrames(t, clients[0], 6)
	st := srv.Stats()
	if st.BytesSent >= st.RawBytes/2 {
		t.Fatalf("compressed %d vs raw %d: bandwidth claim fails", st.BytesSent, st.RawBytes)
	}
}

func TestAllParticipantsSeeSameFrame(t *testing.T) {
	srv, clients := startSession(t, 3)
	cam := srv.Camera()
	cam.Eye.Y += 2
	if err := clients[0].SetCamera(cam, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// Wait until every participant has decoded the server's LATEST frame:
	// attach-time broadcasts mean raw frame counts differ between clients.
	deadline := time.Now().Add(5 * time.Second)
	for {
		caughtUp := true
		for _, c := range clients {
			if c.FrameSeq() != srv.FrameSeq() {
				caughtUp = false
			}
		}
		if caughtUp {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("participants never caught up to the latest frame")
		}
		time.Sleep(time.Millisecond)
	}
	want := clients[0].Checksum()
	for i, c := range clients[1:] {
		if c.Checksum() != want {
			t.Fatalf("participant %d sees different pixels", i+1)
		}
	}
}

func TestOnlyControllerMovesCamera(t *testing.T) {
	srv, clients := startSession(t, 2)
	cam := srv.Camera()
	cam.Eye.X += 1
	// Participant 1 (not controller) is denied.
	if err := clients[1].SetCamera(cam, 2*time.Second); err == nil {
		t.Fatal("non-controller moved the shared camera")
	}
	if srv.Stats().ControlDenied == 0 {
		t.Fatal("denial not counted")
	}
	// Controller succeeds.
	if err := clients[0].SetCamera(cam, 2*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestControlHandoff(t *testing.T) {
	srv, clients := startSession(t, 2)
	if err := clients[1].GrabControl(2 * time.Second); err == nil {
		t.Fatal("control stolen while held")
	}
	if err := clients[0].ReleaseControl(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := clients[1].GrabControl(2 * time.Second); err != nil {
		t.Fatalf("grab after release failed: %v", err)
	}
	cam := srv.Camera()
	cam.Eye.Z += 3
	if err := clients[1].SetCamera(cam, 2*time.Second); err != nil {
		t.Fatalf("new controller denied: %v", err)
	}
	cam.Eye.Z += 1
	if err := clients[0].SetCamera(cam, 2*time.Second); err == nil {
		t.Fatal("old controller still steering the view")
	}
}

func TestControllerDisconnectPassesControl(t *testing.T) {
	srv, clients := startSession(t, 2)
	clients[0].Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.ClientCount() > 1 {
		if time.Now().After(deadline) {
			t.Fatal("dead controller never detached")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cam := srv.Camera()
	cam.Eye.X -= 2
	if err := clients[1].SetCamera(cam, 2*time.Second); err != nil {
		t.Fatalf("surviving participant did not inherit control: %v", err)
	}
}

func TestRefreshRendersSceneAdvance(t *testing.T) {
	// A mutable scene: the provider reflects simulation progress.
	var mu sync.Mutex
	color := render.Red
	scene := func() *render.Scene {
		mu.Lock()
		defer mu.Unlock()
		return &render.Scene{Meshes: []*render.Mesh{{
			Vertices:  []render.Vec3{{X: 0, Y: 0, Z: 0.5}, {X: 1, Y: 0, Z: 0.5}, {X: 0.5, Y: 1, Z: 0.5}},
			Triangles: [][3]int32{{0, 1, 2}},
			Color:     color,
		}}}
	}
	srv, err := NewServer(Config{Width: 64, Height: 64, Scene: scene, Camera: render.DefaultCamera()})
	if err != nil {
		t.Fatal(err)
	}
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	go srv.Serve(l)
	defer func() { srv.Close(); l.Close() }()

	conn, _ := net.Dial("tcp", l.Addr().String())
	c, err := Attach(conn)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFrames(t, c, 1)
	before := c.Checksum()

	mu.Lock()
	color = render.Green
	mu.Unlock()
	if err := c.Refresh(); err != nil {
		t.Fatal(err)
	}
	waitFrames(t, c, 2)
	if c.Checksum() == before {
		t.Fatal("refresh did not pick up scene change")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewServer(Config{Width: 0, Height: 10, Scene: testScene(5)}); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := NewServer(Config{Width: 10, Height: 10}); err == nil {
		t.Fatal("nil scene accepted")
	}
}
