package vizserver

import (
	"context"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hub"
	"repro/internal/render"
	"repro/internal/viz"
)

// testScene returns a provider for a sphere isosurface scene.
func testScene(n int) SceneProvider {
	f := viz.NewScalarField(n, n, n)
	c := float64(n-1) / 2
	f.Fill(func(i, j, k int) float64 {
		dx, dy, dz := float64(i)-c, float64(j)-c, float64(k)-c
		return math.Sqrt(dx*dx + dy*dy + dz*dz)
	})
	mesh := viz.Isosurface(f, float64(n)/3, render.Blue)
	scene := &render.Scene{Meshes: []*render.Mesh{mesh}}
	return func() *render.Scene { return scene }
}

func startSession(t *testing.T, nClients int) (*Server, []*Client) {
	t.Helper()
	cam := render.DefaultCamera()
	cam.Center = render.Vec3{X: 8, Y: 8, Z: 8}
	cam.Eye = render.Vec3{X: 30, Y: 25, Z: 35}
	srv, err := NewServer(Config{Width: 160, Height: 120, Scene: testScene(17), Camera: cam})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close(); l.Close() })

	clients := make([]*Client, nClients)
	for i := range clients {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c, err := Attach(conn)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		clients[i] = c
		waitFrames(t, c, 1)
	}
	return srv, clients
}

func waitFrames(t *testing.T, c *Client, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Frames() < n {
		if time.Now().After(deadline) {
			t.Fatalf("client stuck at %d frames, want %d", c.Frames(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitCaughtUp waits until every client has decoded the server's latest
// published frame.
func waitCaughtUp(t *testing.T, srv *Server, clients ...*Client) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		want := srv.FrameSeq()
		caughtUp := want > 0
		for _, c := range clients {
			if c.FrameSeq() != want {
				caughtUp = false
			}
		}
		if caughtUp && want == srv.FrameSeq() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("participants never caught up to frame %d", srv.FrameSeq())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFirstFrameDelivered(t *testing.T) {
	_, clients := startSession(t, 1)
	fb := clients[0].Framebuffer()
	painted := 0
	for i := 0; i < len(fb); i += 4 {
		if fb[i] != 0 || fb[i+1] != 0 || fb[i+2] != 0 {
			painted++
		}
	}
	if painted == 0 {
		t.Fatal("client frame is empty: isosurface not visible")
	}
}

func TestCompressionBeatsRaw(t *testing.T) {
	srv, clients := startSession(t, 1)
	cam := srv.Camera()
	for i := 0; i < 5; i++ {
		cam.Eye.X += 0.5
		if err := clients[0].SetCamera(cam, 2*time.Second); err != nil {
			t.Fatal(err)
		}
		// One render per move: wait for the frame before the next steer.
		waitFrames(t, clients[0], uint64(i)+2)
	}
	waitCaughtUp(t, srv, clients[0])
	st := srv.Stats()
	if st.BytesSent >= st.RawBytes/2 {
		t.Fatalf("compressed %d vs raw %d: bandwidth claim fails", st.BytesSent, st.RawBytes)
	}
	if clients[0].RxBytes() == 0 {
		t.Fatal("client counted no received bytes")
	}
}

func TestAllParticipantsSeeSameFrame(t *testing.T) {
	srv, clients := startSession(t, 3)
	cam := srv.Camera()
	cam.Eye.Y += 2
	if err := clients[0].SetCamera(cam, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// Attach-time broadcasts mean raw frame counts differ between clients;
	// wait until every participant has decoded the server's LATEST frame.
	waitCaughtUp(t, srv, clients...)
	want := clients[0].Checksum()
	for i, c := range clients[1:] {
		if c.Checksum() != want {
			t.Fatalf("participant %d sees different pixels", i+1)
		}
	}
}

func TestOnlyControllerMovesCamera(t *testing.T) {
	srv, clients := startSession(t, 2)
	cam := srv.Camera()
	cam.Eye.X += 1
	// Participant 1 (not controller) is denied.
	if err := clients[1].SetCamera(cam, 2*time.Second); err == nil {
		t.Fatal("non-controller moved the shared camera")
	}
	if srv.Stats().ControlDenied == 0 {
		t.Fatal("denial not counted")
	}
	// Controller succeeds.
	if err := clients[0].SetCamera(cam, 2*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestControlHandoff(t *testing.T) {
	srv, clients := startSession(t, 2)
	if err := clients[1].GrabControl(2 * time.Second); err == nil {
		t.Fatal("control stolen while held")
	}
	if err := clients[0].ReleaseControl(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := clients[1].GrabControl(2 * time.Second); err != nil {
		t.Fatalf("grab after release failed: %v", err)
	}
	cam := srv.Camera()
	cam.Eye.Z += 3
	if err := clients[1].SetCamera(cam, 2*time.Second); err != nil {
		t.Fatalf("new controller denied: %v", err)
	}
	cam.Eye.Z += 1
	if err := clients[0].SetCamera(cam, 2*time.Second); err == nil {
		t.Fatal("old controller still steering the view")
	}
}

func TestControllerDisconnectPassesControl(t *testing.T) {
	srv, clients := startSession(t, 2)
	clients[0].Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.ClientCount() > 1 {
		if time.Now().After(deadline) {
			t.Fatal("dead controller never detached")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cam := srv.Camera()
	cam.Eye.X -= 2
	deadline = time.Now().Add(2 * time.Second)
	for {
		// The floor promotion broadcast races the survivor's next steer;
		// retry until it lands.
		if err := clients[1].SetCamera(cam, 2*time.Second); err == nil {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("surviving participant did not inherit control: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRefreshRendersSceneAdvance(t *testing.T) {
	// A mutable scene: the provider reflects simulation progress.
	var mu sync.Mutex
	color := render.Red
	scene := func() *render.Scene {
		mu.Lock()
		defer mu.Unlock()
		return &render.Scene{Meshes: []*render.Mesh{{
			Vertices:  []render.Vec3{{X: 0, Y: 0, Z: 0.5}, {X: 1, Y: 0, Z: 0.5}, {X: 0.5, Y: 1, Z: 0.5}},
			Triangles: [][3]int32{{0, 1, 2}},
			Color:     color,
		}}}
	}
	srv, err := NewServer(Config{Width: 64, Height: 64, Scene: scene, Camera: render.DefaultCamera()})
	if err != nil {
		t.Fatal(err)
	}
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	go srv.Serve(l)
	defer func() { srv.Close(); l.Close() }()

	conn, _ := net.Dial("tcp", l.Addr().String())
	c, err := Attach(conn)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFrames(t, c, 1)
	before := c.Checksum()

	mu.Lock()
	color = render.Green
	mu.Unlock()
	if err := c.Refresh(); err != nil {
		t.Fatal(err)
	}
	waitFrames(t, c, 2)
	if c.Checksum() == before {
		t.Fatal("refresh did not pick up scene change")
	}
}

// TestServerOnHubSession hosts the render service on a hub-owned session —
// the deployment shape cmd/steersim uses — and attaches a named viewer
// through the hub's shared listener.
func TestServerOnHubSession(t *testing.T) {
	h := hub.New(hub.Config{})
	defer h.Close()
	session, err := h.CreateSession(core.SessionConfig{Name: "viz-e2e", AppName: "vizserver"})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{
		Width: 96, Height: 64, Scene: testScene(9),
		Camera: render.DefaultCamera(), Session: session,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go h.Serve(l)

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c, err := AttachContext(context.Background(), conn, core.AttachOptions{
		Name: "laptop", Session: "viz-e2e",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFrames(t, c, 1)

	cam := srv.Camera()
	cam.Eye.X += 1
	if err := c.SetCamera(cam, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, srv, c)
	if c.Checksum() == 0 {
		t.Fatal("hub-hosted viewer decoded no pixels")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewServer(Config{Width: 0, Height: 10, Scene: testScene(5)}); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := NewServer(Config{Width: 10, Height: 10}); err == nil {
		t.Fatal("nil scene accepted")
	}
}
