package vizserver

import (
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"sync"
	"time"

	"repro/internal/render"
	"repro/internal/wire"
)

// Client is one participant in a shared remote-rendering session: the
// "laptop" of Figure 1, viewing isosurfaces it could never render itself.
type Client struct {
	conn net.Conn
	enc  *wire.Encoder

	mu       sync.Mutex
	w, h     int
	pix      []byte
	frameSeq int32
	frames   uint64
	rxBytes  uint64
	readErr  error

	acks    chan bool
	frameCh chan int32
	reqMu   sync.Mutex // serialises request/ack exchanges
	once    sync.Once
}

// Attach joins a session over an established connection.
func Attach(conn net.Conn) (*Client, error) {
	c := &Client{
		conn:    conn,
		enc:     wire.NewEncoder(conn),
		acks:    make(chan bool, 4),
		frameCh: make(chan int32, 64),
	}
	dec := wire.NewDecoder(conn)
	init, err := dec.Expect(tagInit)
	if err != nil {
		conn.Close()
		return nil, err
	}
	dims, err := init.AsInt64s()
	if err != nil || len(dims) != 2 {
		conn.Close()
		return nil, fmt.Errorf("vizserver: malformed init")
	}
	c.w, c.h = int(dims[0]), int(dims[1])
	c.pix = make([]byte, c.w*c.h*4)
	go c.readLoop(dec)
	return c, nil
}

func (c *Client) readLoop(dec *wire.Decoder) {
	var pendingHdr []int64
	for {
		m, err := dec.Next()
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.mu.Unlock()
			c.Close()
			return
		}
		switch m.Header.Tag {
		case tagCamAck:
			v, err := m.AsInt64s()
			if err == nil && len(v) == 1 {
				select {
				case c.acks <- v[0] == 1:
				default:
				}
			}
		case tagFrameHdr:
			hdr, err := m.AsInt64s()
			if err == nil && len(hdr) == 2 {
				pendingHdr = hdr
			}
		case tagFrame:
			if pendingHdr == nil || len(m.Blobs) != 1 {
				continue
			}
			seq, enc := int32(pendingHdr[0]), int32(pendingHdr[1])
			pendingHdr = nil
			c.mu.Lock()
			size := c.w * c.h * 4
			var next []byte
			var derr error
			if enc == EncKey {
				next, derr = DecodeKey(m.Blobs[0], size)
			} else {
				next, derr = DecodeDelta(c.pix, m.Blobs[0], size)
			}
			if derr == nil {
				c.pix = next
				c.frameSeq = seq
				c.frames++
				c.rxBytes += uint64(len(m.Blobs[0]))
			}
			c.mu.Unlock()
			if derr == nil {
				select {
				case c.frameCh <- seq:
				default:
				}
			}
		}
	}
}

// request sends a frame and waits for the matching ack.
func (c *Client) request(write func() error, timeout time.Duration) (bool, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	// Drain stale acks.
	for {
		select {
		case <-c.acks:
			continue
		default:
		}
		break
	}
	if err := write(); err != nil {
		return false, err
	}
	select {
	case ok := <-c.acks:
		return ok, nil
	case <-time.After(timeout):
		return false, errors.New("vizserver: ack timeout")
	}
}

// SetCamera moves the shared session camera. Only the controlling
// participant succeeds; the server re-renders and broadcasts to everyone.
func (c *Client) SetCamera(cam render.Camera, timeout time.Duration) error {
	ok, err := c.request(func() error {
		return c.enc.Float64s(tagSetCam, []float64{
			cam.Eye.X, cam.Eye.Y, cam.Eye.Z,
			cam.Center.X, cam.Center.Y, cam.Center.Z,
			cam.Up.X, cam.Up.Y, cam.Up.Z,
			cam.FovY,
		})
	}, timeout)
	if err != nil {
		return err
	}
	if !ok {
		return errors.New("vizserver: not in control of the session")
	}
	return nil
}

// GrabControl claims the session camera (fails while another participant
// holds it).
func (c *Client) GrabControl(timeout time.Duration) error {
	ok, err := c.request(func() error {
		return c.enc.Int32s(tagControl, []int32{1})
	}, timeout)
	if err != nil {
		return err
	}
	if !ok {
		return errors.New("vizserver: control held by another participant")
	}
	return nil
}

// ReleaseControl gives up the session camera.
func (c *Client) ReleaseControl(timeout time.Duration) error {
	_, err := c.request(func() error {
		return c.enc.Int32s(tagControl, []int32{0})
	}, timeout)
	return err
}

// Refresh asks the server to re-render (the scene advanced).
func (c *Client) Refresh() error {
	return c.enc.Int32s(tagRefresh, []int32{1})
}

// Framebuffer returns a copy of the last decoded frame.
func (c *Client) Framebuffer() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.pix...)
}

// Checksum hashes the last decoded frame.
func (c *Client) Checksum() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return crc32.ChecksumIEEE(c.pix)
}

// FrameSeq returns the sequence number of the last decoded frame.
func (c *Client) FrameSeq() int32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frameSeq
}

// Frames returns the number of frames received.
func (c *Client) Frames() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frames
}

// RxBytes returns the compressed bytes received.
func (c *Client) RxBytes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rxBytes
}

// FrameUpdates exposes frame-arrival notifications.
func (c *Client) FrameUpdates() <-chan int32 { return c.frameCh }

// Err returns the terminal read error, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readErr
}

// Close leaves the session.
func (c *Client) Close() error {
	c.once.Do(func() { c.conn.Close() })
	return nil
}
