package vizserver

import (
	"context"
	"fmt"
	"hash/crc32"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/pixel"
	"repro/internal/render"
)

// Client is one participant in a shared remote-rendering session: the
// "laptop" of Figure 1, viewing isosurfaces it could never render itself.
// It is a viewer-shaped veneer over a core steering client: frames arrive as
// blobs on the "pixels" stream, the camera is the session's shared view, and
// control is the session's master floor.
type Client struct {
	cc *core.Client

	mu       sync.Mutex
	w, h     int
	pix      []byte
	anchor   pixel.Anchor
	frameSeq uint64
	frames   uint64
	rxBytes  uint64
	readErr  error

	frameCh  chan uint64
	refreshN atomic.Int64
	wg       sync.WaitGroup
}

// Attach joins the endpoint's default session over an established
// connection.
func Attach(conn net.Conn) (*Client, error) {
	return AttachContext(context.Background(), conn, core.AttachOptions{})
}

// AttachContext joins a session with full control over the attach options
// (session name on a multi-session hub, client name, buffers). The viewer
// defaults are applied on top: a subscription to the pixel stream, a blob
// ring deep enough to ride out render bursts, and WantMaster — every
// participant is a control candidate, so the floor passes to a survivor when
// the controller disconnects.
func AttachContext(ctx context.Context, conn net.Conn, opts core.AttachOptions) (*Client, error) {
	opts.WantMaster = true
	if opts.BlobBuffer == 0 {
		opts.BlobBuffer = 8
	}
	opts.Subscriptions = append(opts.Subscriptions, core.ChannelSub(PixelStream))
	cc, err := core.AttachContext(ctx, conn, opts)
	if err != nil {
		return nil, err
	}
	c := &Client{cc: cc, frameCh: make(chan uint64, 64)}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// Core exposes the underlying steering client for anything beyond the viewer
// surface (events, parameters, floor introspection).
func (c *Client) Core() *core.Client { return c.cc }

func (c *Client) readLoop() {
	defer c.wg.Done()
	for {
		select {
		case b := <-c.cc.Blobs():
			c.apply(b)
		case <-c.cc.Done():
			c.mu.Lock()
			c.readErr = c.cc.Err()
			c.mu.Unlock()
			return
		}
	}
}

// apply decodes one pixel blob into the local framebuffer. Deltas only apply
// on an unbroken sequence; after a gap (ring eviction on a slow link) the
// viewer stays on its last good frame until the next keyframe re-anchors it.
func (c *Client) apply(b *core.Blob) {
	if b.Stream != PixelStream {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.anchor.Accept(b.Seq, b.Encoding) {
		return
	}
	size := b.Width * b.Height * 4
	var next []byte
	var err error
	switch b.Encoding {
	case pixel.EncKey:
		next, err = pixel.DecodeKey(b.Data, size)
	case pixel.EncDelta:
		next, err = pixel.DecodeDelta(c.pix, b.Data, size)
	default:
		err = fmt.Errorf("vizserver: unknown frame encoding %d", b.Encoding)
	}
	if err != nil {
		c.anchor = pixel.Anchor{} // wait for a keyframe
		return
	}
	c.w, c.h = b.Width, b.Height
	c.pix = next
	c.frameSeq = b.Seq
	c.frames++
	c.rxBytes += uint64(len(b.Data))
	select {
	case c.frameCh <- b.Seq:
	default:
	}
}

// SetCamera moves the shared session camera. Only the controlling
// participant succeeds; the server re-renders and broadcasts to everyone.
func (c *Client) SetCamera(cam render.Camera, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := c.cc.SetViewContext(ctx, core.ViewState{
		Eye:    [3]float64{cam.Eye.X, cam.Eye.Y, cam.Eye.Z},
		Center: [3]float64{cam.Center.X, cam.Center.Y, cam.Center.Z},
		Up:     [3]float64{cam.Up.X, cam.Up.Y, cam.Up.Z},
		FovY:   cam.FovY,
	})
	if err != nil {
		return fmt.Errorf("vizserver: not in control of the session: %w", err)
	}
	return nil
}

// GrabControl claims the session camera (fails while another participant
// holds it).
func (c *Client) GrabControl(timeout time.Duration) error {
	if err := c.cc.TryRequestMaster(timeout); err != nil {
		return fmt.Errorf("vizserver: control held by another participant: %w", err)
	}
	return nil
}

// ReleaseControl gives up the session camera.
func (c *Client) ReleaseControl(timeout time.Duration) error {
	return c.cc.ReleaseMaster(timeout)
}

// Refresh asks the server to re-render (the scene advanced). Like every
// steer it requires control of the session.
func (c *Client) Refresh() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return c.cc.SetValueContext(ctx, "refresh", core.IntValue(c.refreshN.Add(1)))
}

// Framebuffer returns a copy of the last decoded frame.
func (c *Client) Framebuffer() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.pix...)
}

// Checksum hashes the last decoded frame.
func (c *Client) Checksum() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return crc32.ChecksumIEEE(c.pix)
}

// FrameSeq returns the sequence number of the last decoded frame.
func (c *Client) FrameSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frameSeq
}

// Frames returns the number of frames decoded.
func (c *Client) Frames() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frames
}

// RxBytes returns the compressed bytes received.
func (c *Client) RxBytes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rxBytes
}

// FrameUpdates exposes frame-arrival notifications.
func (c *Client) FrameUpdates() <-chan uint64 { return c.frameCh }

// Err returns the terminal read error, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readErr
}

// Close leaves the session.
func (c *Client) Close() error {
	err := c.cc.Close()
	c.wg.Wait()
	return err
}
