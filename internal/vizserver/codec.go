// Package vizserver reimplements the remote-rendering model the paper uses
// SGI OpenGL VizServer for: "the datasets which are being rendered as
// isosurfaces are too large to be visualized on a laptop client. VizServer
// allows the output of the graphics pipes from an Onyx visual supercomputer
// to be accessed remotely. In addition this greatly reduces network traffic
// since only compressed bitmaps need to be sent to the participating sites"
// (section 2.4).
//
// A Server owns the scene (too large to ship) and a software renderer; any
// number of clients attach to one shared session. Exactly one client holds
// the camera control at a time — VizServer's collaborative "multiple users
// share the same login session" mode — and every rendered frame is broadcast
// to all participants as a flate-compressed keyframe or XOR-delta bitmap.
package vizserver

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// Frame encodings.
const (
	// EncKey is a self-contained compressed frame.
	EncKey int32 = iota
	// EncDelta is a compressed XOR against the previous frame.
	EncDelta
)

// compress flate-compresses b at BestSpeed.
func compress(b []byte) []byte {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return b
	}
	w.Write(b)
	w.Close()
	return buf.Bytes()
}

// decompress inflates b, expecting want bytes.
func decompress(b []byte, want int) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(b))
	out := make([]byte, 0, want)
	buf := make([]byte, 16<<10)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if len(out) != want {
		return nil, fmt.Errorf("vizserver: frame %d bytes, want %d", len(out), want)
	}
	return out, nil
}

// EncodeKey encodes a self-contained frame.
func EncodeKey(pix []byte) []byte { return compress(pix) }

// DecodeKey decodes a keyframe of the expected size.
func DecodeKey(data []byte, size int) ([]byte, error) { return decompress(data, size) }

// EncodeDelta encodes cur as a compressed XOR against prev. Frames that
// changed little compress dramatically — the paper's bandwidth claim.
func EncodeDelta(prev, cur []byte) ([]byte, error) {
	if len(prev) != len(cur) {
		return nil, fmt.Errorf("vizserver: delta frames differ in size: %d vs %d", len(prev), len(cur))
	}
	x := make([]byte, len(cur))
	for i := range cur {
		x[i] = cur[i] ^ prev[i]
	}
	return compress(x), nil
}

// DecodeDelta reverses EncodeDelta against the receiver's previous frame.
func DecodeDelta(prev, data []byte, size int) ([]byte, error) {
	x, err := decompress(data, size)
	if err != nil {
		return nil, err
	}
	if len(prev) != size {
		return nil, fmt.Errorf("vizserver: receiver frame %d bytes, want %d", len(prev), size)
	}
	out := make([]byte, size)
	for i := range out {
		out[i] = x[i] ^ prev[i]
	}
	return out, nil
}
