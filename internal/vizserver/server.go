package vizserver

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/render"
	"repro/internal/wire"
)

// wire tags of the protocol.
const (
	tagInit     = 0x0AF1 // Int32s [w, h]
	tagSetCam   = 0x0AF2 // Float64s [eye3, center3, up3, fovy]
	tagCamAck   = 0x0AF3 // Int32s [ok]
	tagControl  = 0x0AF4 // Int32s [1 grab / 0 release]
	tagFrameHdr = 0x0AF5 // Int32s [seq, encoding]
	tagFrame    = 0x0AF6 // Bytes
	tagRefresh  = 0x0AF7 // Int32s [1]: ask for a re-render (scene advanced)
)

// SceneProvider supplies the current scene at render time; the simulation
// side updates it between frames.
type SceneProvider func() *render.Scene

// Config configures a render service.
type Config struct {
	// Width, Height are the remote viewport dimensions.
	Width, Height int
	// Scene supplies the geometry; required.
	Scene SceneProvider
	// Camera is the initial session camera.
	Camera render.Camera
}

// Server is the remote rendering service.
type Server struct {
	cfg Config

	mu         sync.Mutex
	cam        render.Camera
	fb         *render.Framebuffer
	prevPix    []byte // last broadcast frame, delta base
	frameSeq   int32
	clients    map[*clientConn]struct{}
	controller *clientConn
	stats      Stats
	closed     bool
}

// Stats counts rendering and transport activity.
type Stats struct {
	FramesRendered uint64
	BytesSent      uint64
	RawBytes       uint64 // what uncompressed transport would have cost
	CamMoves       uint64
	ControlDenied  uint64
}

// clientConn is one attached participant.
type clientConn struct {
	conn net.Conn
	enc  *wire.Encoder
	emu  sync.Mutex
	// hasFrame tracks whether the participant has a delta base yet.
	hasFrame bool
}

// NewServer creates a render service.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("vizserver: bad viewport %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.Scene == nil {
		return nil, fmt.Errorf("vizserver: nil scene provider")
	}
	return &Server{
		cfg:     cfg,
		cam:     cfg.Camera,
		fb:      render.NewFramebuffer(cfg.Width, cfg.Height),
		clients: make(map[*clientConn]struct{}),
	}, nil
}

// Stats returns a copy of the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Camera returns the current session camera.
func (s *Server) Camera() render.Camera {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cam
}

// Serve accepts participants from a listener.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.ServeConn(conn)
	}
}

// ServeConn attaches one participant and runs its read loop.
func (s *Server) ServeConn(conn net.Conn) error {
	c := &clientConn{conn: conn, enc: wire.NewEncoder(conn)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return fmt.Errorf("vizserver: closed")
	}
	s.clients[c] = struct{}{}
	if s.controller == nil {
		s.controller = c // first participant starts in control
	}
	s.mu.Unlock()

	if err := c.enc.Int32s(tagInit, []int32{int32(s.cfg.Width), int32(s.cfg.Height)}); err != nil {
		s.detach(c)
		return err
	}
	// Ship the current view immediately so late joiners see content.
	s.RenderBroadcast()

	dec := wire.NewDecoder(conn)
	for {
		m, err := dec.Next()
		if err != nil {
			s.detach(c)
			return err
		}
		switch m.Header.Tag {
		case tagSetCam:
			v, err := m.AsFloat64s()
			if err != nil || len(v) != 10 {
				s.ack(c, false)
				continue
			}
			s.mu.Lock()
			isController := s.controller == c
			if isController {
				s.cam = render.Camera{
					Eye:    render.Vec3{X: v[0], Y: v[1], Z: v[2]},
					Center: render.Vec3{X: v[3], Y: v[4], Z: v[5]},
					Up:     render.Vec3{X: v[6], Y: v[7], Z: v[8]},
					FovY:   v[9],
					Near:   s.cam.Near, Far: s.cam.Far,
				}
				if s.cam.Near == 0 {
					s.cam.Near, s.cam.Far = 0.1, 100
				}
				s.stats.CamMoves++
			} else {
				s.stats.ControlDenied++
			}
			s.mu.Unlock()
			s.ack(c, isController)
			if isController {
				s.RenderBroadcast()
			}
		case tagControl:
			v, err := m.AsInt64s()
			if err != nil || len(v) != 1 {
				continue
			}
			s.mu.Lock()
			if v[0] == 1 {
				// Grab succeeds when nobody (or this client) holds control.
				grabbed := s.controller == nil || s.controller == c
				if grabbed {
					s.controller = c
				}
				s.mu.Unlock()
				s.ack(c, grabbed)
			} else {
				if s.controller == c {
					s.controller = nil
				}
				s.mu.Unlock()
				s.ack(c, true)
			}
		case tagRefresh:
			s.RenderBroadcast()
		}
	}
}

func (s *Server) ack(c *clientConn, ok bool) {
	v := int32(0)
	if ok {
		v = 1
	}
	c.emu.Lock()
	c.enc.Int32s(tagCamAck, []int32{v})
	c.emu.Unlock()
}

// RenderBroadcast renders the scene from the session camera and sends the
// frame to every participant (keyframe for those without a delta base).
// It returns the rendered framebuffer's checksum.
func (s *Server) RenderBroadcast() uint32 {
	s.mu.Lock()
	cam := s.cam
	scene := s.cfg.Scene()
	s.mu.Unlock()

	// Render outside the lock: it is the expensive part.
	render.Render(s.fb, cam, scene)
	pix := append([]byte(nil), s.fb.Pix...)
	sum := s.fb.Checksum()

	s.mu.Lock()
	prev := s.prevPix
	s.prevPix = pix
	s.frameSeq++
	seq := s.frameSeq
	s.stats.FramesRendered++
	clients := make([]*clientConn, 0, len(s.clients))
	for c := range s.clients {
		clients = append(clients, c)
	}
	s.mu.Unlock()

	var key []byte // lazily encoded
	var delta []byte
	for _, c := range clients {
		var enc int32
		var data []byte
		if c.hasFrame && prev != nil {
			if delta == nil {
				delta, _ = EncodeDelta(prev, pix)
			}
			enc, data = EncDelta, delta
		} else {
			if key == nil {
				key = EncodeKey(pix)
			}
			enc, data = EncKey, key
		}
		c.emu.Lock()
		err1 := c.enc.Int32s(tagFrameHdr, []int32{seq, enc})
		err2 := c.enc.Bytes(tagFrame, data)
		c.emu.Unlock()
		if err1 != nil || err2 != nil {
			s.detach(c)
			continue
		}
		c.hasFrame = true
		s.mu.Lock()
		s.stats.BytesSent += uint64(len(data))
		s.stats.RawBytes += uint64(len(pix))
		s.mu.Unlock()
	}
	return sum
}

func (s *Server) detach(c *clientConn) {
	s.mu.Lock()
	delete(s.clients, c)
	if s.controller == c {
		s.controller = nil
		// Pass control to any remaining participant for continuity.
		for other := range s.clients {
			s.controller = other
			break
		}
	}
	s.mu.Unlock()
	c.conn.Close()
}

// FrameSeq returns the sequence number of the most recently broadcast frame.
func (s *Server) FrameSeq() int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frameSeq
}

// ClientCount reports attached participants.
func (s *Server) ClientCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

// Close detaches everyone.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	clients := make([]*clientConn, 0, len(s.clients))
	for c := range s.clients {
		clients = append(clients, c)
	}
	s.clients = make(map[*clientConn]struct{})
	s.mu.Unlock()
	for _, c := range clients {
		c.conn.Close()
	}
}
