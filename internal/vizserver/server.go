// Package vizserver reimplements the remote-rendering model the paper uses
// SGI OpenGL VizServer for: "the datasets which are being rendered as
// isosurfaces are too large to be visualized on a laptop client. VizServer
// allows the output of the graphics pipes from an Onyx visual supercomputer
// to be accessed remotely. In addition this greatly reduces network traffic
// since only compressed bitmaps need to be sent to the participating sites"
// (section 2.4).
//
// A Server owns the scene (too large to ship) and a software renderer; any
// number of participants attach to one shared steering session. The session
// engine supplies everything the old bespoke protocol hand-rolled: floor
// control arbitrates the single camera holder (VizServer's collaborative
// "multiple users share the same login session" mode), the view state carries
// the shared camera, and every rendered frame is broadcast once as a bulk
// blob on the "pixels" stream — encoded one time, fanned out to every
// subscriber over the refcounted FrameBuf/writev path — as a flate-compressed
// keyframe or XOR-delta bitmap (the codecs live in package pixel).
package vizserver

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/pixel"
	"repro/internal/render"
)

// PixelStream is the blob stream name rendered frames are published on;
// participants subscribe to it at attach.
const PixelStream = "pixels"

// SceneProvider supplies the current scene at render time; the simulation
// side updates it between frames.
type SceneProvider func() *render.Scene

// Config configures a render service.
type Config struct {
	// Width, Height are the remote viewport dimensions.
	Width, Height int
	// Scene supplies the geometry; required.
	Scene SceneProvider
	// Camera is the initial session camera.
	Camera render.Camera
	// Session, when non-nil, hosts the render service on an existing
	// steering session (e.g. one created by a hub, sharing it with a
	// simulation). Nil creates a private session owned by the server.
	Session *core.Session
	// KeyInterval forces a keyframe at least every N frames; 0 keeps the
	// pixel.Rekeyer default.
	KeyInterval int
}

// Server is the remote rendering service.
type Server struct {
	cfg     Config
	session *core.Session
	st      *core.Steered
	own     bool // the server created (and must close) the session

	renderMu sync.Mutex // serialises render+publish so blob seqs stay ordered

	mu      sync.Mutex
	cam     render.Camera
	fb      *render.Framebuffer
	prevPix []byte // last rendered frame, delta base
	rekey   pixel.Rekeyer
	lastSeq uint64
	stats   Stats
	closed  bool

	refresh   chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// Stats counts rendering and transport activity.
type Stats struct {
	FramesRendered uint64
	BytesSent      uint64
	RawBytes       uint64 // what uncompressed transport would have cost
	CamMoves       uint64
	ControlDenied  uint64
}

// NewServer creates a render service and starts its steering watcher.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("vizserver: bad viewport %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.Scene == nil {
		return nil, fmt.Errorf("vizserver: nil scene provider")
	}
	session := cfg.Session
	own := false
	if session == nil {
		session = core.NewSession(core.SessionConfig{Name: "vizserver", AppName: "vizserver"})
		own = true
	}
	s := &Server{
		cfg:     cfg,
		session: session,
		st:      session.Steered(),
		own:     own,
		cam:     cfg.Camera,
		fb:      render.NewFramebuffer(cfg.Width, cfg.Height),
		rekey:   pixel.Rekeyer{Interval: uint64(cfg.KeyInterval)},
		refresh: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	// "refresh" is how a controlling participant asks for a re-render after
	// the scene advanced; the value is a client-side counter and carries no
	// meaning beyond forcing a change.
	if err := s.st.RegisterInt("refresh", 0, 0, 1<<31,
		"re-render request counter (scene advanced)", func(int64) {
			select {
			case s.refresh <- struct{}{}:
			default:
			}
		}); err != nil {
		if own {
			session.Close()
		}
		return nil, err
	}
	s.wg.Add(1)
	go s.watch()
	return s, nil
}

// Session exposes the steering session the server renders for, so callers
// hosting the server on a hub can wire additional services to it.
func (s *Server) Session() *core.Session { return s.session }

// Stats returns a copy of the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	// Camera moves by non-controllers are rejected by the session's floor
	// check; surface them as control denials.
	st.ControlDenied = s.session.Stats().SteersRejected
	return st
}

// Camera returns the current session camera.
func (s *Server) Camera() render.Camera {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cam
}

// Serve accepts participants from a listener.
func (s *Server) Serve(l net.Listener) error { return s.session.Serve(l) }

// ServeConn attaches one participant and runs its read loop.
func (s *Server) ServeConn(conn net.Conn) error { return s.session.ServeConn(conn) }

// watch is the render pump: it applies queued steering (the refresh counter),
// follows the session's shared view, and re-renders on a view change, an
// audience change (a late joiner needs a keyframe) or an explicit refresh.
func (s *Server) watch() {
	defer s.wg.Done()
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
	var lastView uint64
	lastCount := 0
	for {
		select {
		case <-s.done:
			return
		case <-s.session.Done():
			return
		case <-t.C:
		}
		s.st.Poll()
		need := false
		select {
		case <-s.refresh:
			need = true
		default:
		}
		if v := s.session.View(); v.Seq != lastView {
			lastView = v.Seq
			s.applyView(v)
			need = true
		}
		n := s.session.ClientCount()
		if n > lastCount {
			need = true
		}
		lastCount = n
		if need && n > 0 {
			s.RenderBroadcast()
		}
	}
}

// applyView adopts the session's shared view as the render camera, keeping
// the server-side clip planes (clients steer the viewpoint, not the frustum).
func (s *Server) applyView(v core.ViewState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	near, far := s.cam.Near, s.cam.Far
	if near == 0 {
		near, far = 0.1, 100
	}
	s.cam = render.Camera{
		Eye:    render.Vec3{X: v.Eye[0], Y: v.Eye[1], Z: v.Eye[2]},
		Center: render.Vec3{X: v.Center[0], Y: v.Center[1], Z: v.Center[2]},
		Up:     render.Vec3{X: v.Up[0], Y: v.Up[1], Z: v.Up[2]},
		FovY:   v.FovY,
		Near:   near, Far: far,
	}
	s.stats.CamMoves++
}

// RenderBroadcast renders the scene from the session camera and publishes
// the frame to every subscribed participant: a keyframe when the audience
// grew or the rekey cadence came due, an XOR-delta otherwise. It returns the
// rendered framebuffer's checksum.
func (s *Server) RenderBroadcast() uint32 {
	s.renderMu.Lock()
	defer s.renderMu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0
	}
	cam := s.cam
	scene := s.cfg.Scene()
	s.mu.Unlock()

	// Render outside the lock: it is the expensive part.
	render.Render(s.fb, cam, scene)
	pix := append([]byte(nil), s.fb.Pix...)
	sum := s.fb.Checksum()

	viewers := s.session.ClientCount()
	s.mu.Lock()
	prev := s.prevPix
	s.prevPix = pix
	seq, key := s.rekey.Next(viewers)
	s.lastSeq = seq
	s.stats.FramesRendered++
	s.mu.Unlock()

	enc, data := pixel.EncKey, []byte(nil)
	if !key && prev != nil {
		if d, err := pixel.EncodeDelta(prev, pix); err == nil {
			enc, data = pixel.EncDelta, d
		}
	}
	if data == nil {
		data = pixel.EncodeKey(pix)
	}
	s.st.EmitBlob(&core.Blob{
		Stream: PixelStream, Seq: seq, Encoding: enc,
		Width: s.cfg.Width, Height: s.cfg.Height, Data: data,
	})

	s.mu.Lock()
	s.stats.BytesSent += uint64(len(data)) * uint64(viewers)
	s.stats.RawBytes += uint64(len(pix)) * uint64(viewers)
	s.mu.Unlock()
	return sum
}

// FrameSeq returns the sequence number of the most recently published frame.
func (s *Server) FrameSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// ClientCount reports attached participants.
func (s *Server) ClientCount() int { return s.session.ClientCount() }

// Close stops the render pump and, if the server owns its session, detaches
// everyone.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.closeOnce.Do(func() { close(s.done) })
	if s.own {
		s.session.Close()
	}
	s.wg.Wait()
}
