package ogsi

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
)

// SteeringService exposes a running core.Session as an OGSA grid service:
// the architecture of Figures 1 and 2, where "the steering client ...
// contacts a steering service which will actually orchestrate the details of
// the steering". One service instance steers one application session.
type SteeringService struct {
	session *core.Session
}

var _ Service = (*SteeringService)(nil)

// NewSteeringService wraps a session.
func NewSteeringService(s *core.Session) *SteeringService {
	return &SteeringService{session: s}
}

// SteeringFactory returns a Factory producing steering services bound to the
// given session (the hosting environment runs alongside the simulation).
func SteeringFactory(s *core.Session) Factory {
	return func(json.RawMessage) (Service, error) {
		return NewSteeringService(s), nil
	}
}

// valueFromJSON maps a JSON scalar onto the steering core's tagged Value:
// numbers steer float parameters (the session converts for int parameters),
// strings steer string/choice parameters, bools steer toggles.
func valueFromJSON(raw json.RawMessage) (core.Value, error) {
	var b bool
	if err := json.Unmarshal(raw, &b); err == nil {
		return core.BoolValue(b), nil
	}
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		return core.StringValue(s), nil
	}
	var f float64
	if err := json.Unmarshal(raw, &f); err == nil {
		return core.FloatValue(f), nil
	}
	return core.Value{}, fmt.Errorf("ogsi: steer value %s is not a scalar", raw)
}

// sampleView is the JSON projection of a sample: scalar channels inline,
// array channels summarised by shape (bulk data travels the data path, not
// the control path).
type sampleView struct {
	Step    int64              `json:"step"`
	Scalars map[string]float64 `json:"scalars,omitempty"`
	Arrays  map[string][3]int  `json:"arrays,omitempty"`
}

// ServeOp implements Service.
func (s *SteeringService) ServeOp(op string, args json.RawMessage) (any, error) {
	switch op {
	case "params":
		return s.session.Params(), nil

	case "steer":
		var a struct {
			Name  string          `json:"name"`
			Value json.RawMessage `json:"value"`
		}
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		v, err := valueFromJSON(a.Value)
		if err != nil {
			return nil, err
		}
		if err := s.session.QueueSetValue(a.Name, v); err != nil {
			return nil, err
		}
		return map[string]bool{"queued": true}, nil

	case "command":
		var a struct {
			Command string `json:"command"`
		}
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		switch a.Command {
		case "pause":
			s.session.QueuePause()
		case "resume":
			s.session.QueueResume()
		case "stop":
			s.session.QueueStop()
		case "checkpoint":
			s.session.QueueCheckpoint()
		default:
			return nil, fmt.Errorf("ogsi: unknown command %q", a.Command)
		}
		return map[string]bool{"queued": true}, nil

	case "sample":
		sm := s.session.LastSample()
		if sm == nil {
			return sampleView{Step: -1}, nil
		}
		v := sampleView{Step: sm.Step, Scalars: map[string]float64{}, Arrays: map[string][3]int{}}
		for name, ch := range sm.Channels {
			if len(ch.Data) == 1 {
				v.Scalars[name] = ch.Data[0]
			} else {
				v.Arrays[name] = ch.Dims
			}
		}
		return v, nil

	case "clients":
		return s.session.Clients(), nil

	case "floor":
		// The floor-control SDE: who holds steering authority, how
		// contested it is, and how it has moved (the collaborative-steering
		// observability the broker-mediated scenarios need).
		f := s.session.FloorStats()
		return map[string]any{
			"master":   f.Master,
			"pending":  f.Pending,
			"grants":   f.Grants,
			"denials":  f.Denials,
			"releases": f.Releases,
			"handoffs": f.Handoffs,
			"expiries": f.Expiries,
			"steals":   f.Steals,
		}, nil

	default:
		return nil, fmt.Errorf("ogsi: steering service has no operation %q", op)
	}
}

// ServiceData implements Service: the SDEs a steering client inspects before
// binding.
func (s *SteeringService) ServiceData() map[string]any {
	return map[string]any{
		"serviceType":  "SteeringService",
		"session":      s.session.Name(),
		"paramCount":   len(s.session.Params()),
		"clients":      s.session.Clients(),
		"master":       s.session.Master(),
		"floorPending": s.session.FloorStats().Pending,
		"paused":       s.session.Paused(),
	}
}

// Destroy implements Service. The session belongs to the simulation, so the
// service releases only its binding.
func (s *SteeringService) Destroy() {}

// VizService exposes the session's shared visualization state as a second
// grid service: Figure 2 shows "one service that steers the application and
// another that steers the visualization".
type VizService struct {
	session *core.Session
}

var _ Service = (*VizService)(nil)

// NewVizService wraps a session's view state.
func NewVizService(s *core.Session) *VizService { return &VizService{session: s} }

// VizFactory returns a Factory producing visualization-steering services.
func VizFactory(s *core.Session) Factory {
	return func(json.RawMessage) (Service, error) { return NewVizService(s), nil }
}

// ServeOp implements Service.
func (v *VizService) ServeOp(op string, args json.RawMessage) (any, error) {
	switch op {
	case "view":
		return v.session.View(), nil
	case "setview":
		var a core.ViewState
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		return v.session.SetViewServer(a), nil
	default:
		return nil, fmt.Errorf("ogsi: viz service has no operation %q", op)
	}
}

// ServiceData implements Service.
func (v *VizService) ServiceData() map[string]any {
	view := v.session.View()
	return map[string]any{
		"serviceType": "VizService",
		"session":     v.session.Name(),
		"viewSeq":     view.Seq,
	}
}

// Destroy implements Service.
func (v *VizService) Destroy() {}
