package ogsi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Client calls grid services over HTTP: the steering client of Figure 1,
// runnable from "a users laptop".
type Client struct {
	// HTTP is the transport; the zero value uses a 10s-timeout client.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 10 * time.Second}
}

// decode unwraps an opResponse into out.
func decode(resp *http.Response, out any) error {
	defer resp.Body.Close()
	var r opResponse
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		return err
	}
	if !r.OK {
		return fmt.Errorf("ogsi: remote: %s", r.Err)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(r.Result, out)
}

// Create asks a factory for a new instance and returns its GSH URL.
func (c *Client) Create(baseURL, factory string, args any) (string, error) {
	raw, err := json.Marshal(args)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Post(baseURL+"/factories/"+factory, "application/json", bytes.NewReader(raw))
	if err != nil {
		return "", err
	}
	var out struct {
		GSH string `json:"gsh"`
	}
	if err := decode(resp, &out); err != nil {
		return "", err
	}
	return out.GSH, nil
}

// Call invokes an operation on a service instance by GSH URL.
func (c *Client) Call(gshURL, op string, args, out any) error {
	raw, err := json.Marshal(opRequest{Op: op, Args: mustRaw(args)})
	if err != nil {
		return err
	}
	resp, err := c.http().Post(gshURL, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	return decode(resp, out)
}

func mustRaw(args any) json.RawMessage {
	if args == nil {
		return nil
	}
	raw, err := json.Marshal(args)
	if err != nil {
		return nil
	}
	return raw
}

// ServiceData fetches one SDE (or all, with name "").
func (c *Client) ServiceData(gshURL, name string, out any) error {
	url := gshURL
	if name != "" {
		url += "?sde=" + name
	}
	resp, err := c.http().Get(url)
	if err != nil {
		return err
	}
	return decode(resp, out)
}

// SetLifetime sets the instance's termination time (seconds from now;
// <= 0 makes it immortal again).
func (c *Client) SetLifetime(gshURL string, seconds float64) error {
	raw, _ := json.Marshal(map[string]float64{"seconds": seconds})
	resp, err := c.http().Post(gshURL+"/lifetime", "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	return decode(resp, nil)
}

// Destroy removes a service instance.
func (c *Client) Destroy(gshURL string) error {
	req, err := http.NewRequest(http.MethodDelete, gshURL, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	return decode(resp, nil)
}

// Register publishes a service into a registry instance.
func (c *Client) Register(registryURL string, e Entry, ttlSeconds float64) error {
	return c.Call(registryURL, "register", registerArgs{
		GSH: e.GSH, Type: e.Type, Keywords: e.Keywords, TTLSeconds: ttlSeconds,
	}, nil)
}

// Find queries a registry for services by type and keyword.
func (c *Client) Find(registryURL, typ, keyword string) ([]Entry, error) {
	var out []Entry
	err := c.Call(registryURL, "find", findArgs{Type: typ, Keyword: keyword}, &out)
	return out, err
}
