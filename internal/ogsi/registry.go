package ogsi

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Entry is one registry record: a published grid service.
type Entry struct {
	GSH      string   `json:"gsh"`
	Type     string   `json:"type"`
	Keywords []string `json:"keywords,omitempty"`
	// Expiry is soft state: entries must be refreshed before it passes.
	Expiry time.Time `json:"expiry"`
}

// Registry is the service "which [has] details of the steering services
// that have published to the registry" (section 2.3). It is itself a hosted
// grid service with register/unregister/find operations.
type Registry struct {
	mu      sync.Mutex
	entries map[string]Entry
}

var _ Service = (*Registry)(nil)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]Entry)}
}

// RegistryFactory creates registry instances for a Hosting container.
func RegistryFactory(json.RawMessage) (Service, error) { return NewRegistry(), nil }

// registerArgs are the arguments of the register operation.
type registerArgs struct {
	GSH      string   `json:"gsh"`
	Type     string   `json:"type"`
	Keywords []string `json:"keywords,omitempty"`
	// TTLSeconds bounds the registration's soft-state lifetime (default 60).
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
}

// findArgs are the arguments of the find operation.
type findArgs struct {
	Type    string `json:"type,omitempty"`
	Keyword string `json:"keyword,omitempty"`
}

// ServeOp implements Service.
func (r *Registry) ServeOp(op string, args json.RawMessage) (any, error) {
	switch op {
	case "register":
		var a registerArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		if a.GSH == "" || a.Type == "" {
			return nil, fmt.Errorf("ogsi: register needs gsh and type")
		}
		ttl := a.TTLSeconds
		if ttl <= 0 {
			ttl = 60
		}
		e := Entry{
			GSH: a.GSH, Type: a.Type, Keywords: a.Keywords,
			Expiry: time.Now().Add(time.Duration(ttl * float64(time.Second))),
		}
		r.mu.Lock()
		r.entries[a.GSH] = e
		r.mu.Unlock()
		return e, nil

	case "unregister":
		var a struct {
			GSH string `json:"gsh"`
		}
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		r.mu.Lock()
		_, found := r.entries[a.GSH]
		delete(r.entries, a.GSH)
		r.mu.Unlock()
		return map[string]bool{"removed": found}, nil

	case "find":
		var a findArgs
		if len(args) > 0 {
			if err := json.Unmarshal(args, &a); err != nil {
				return nil, err
			}
		}
		return r.Find(a.Type, a.Keyword), nil

	default:
		return nil, fmt.Errorf("ogsi: registry has no operation %q", op)
	}
}

// Find returns live entries matching the type (exact, "" matches all) and
// keyword (substring of any keyword, "" matches all).
func (r *Registry) Find(typ, keyword string) []Entry {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Entry
	for gsh, e := range r.entries {
		if now.After(e.Expiry) {
			delete(r.entries, gsh)
			continue
		}
		if typ != "" && e.Type != typ {
			continue
		}
		if keyword != "" {
			hit := false
			for _, k := range e.Keywords {
				if strings.Contains(k, keyword) {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
		}
		out = append(out, e)
	}
	return out
}

// ServiceData implements Service.
func (r *Registry) ServiceData() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	return map[string]any{
		"serviceType": "Registry",
		"entryCount":  len(r.entries),
	}
}

// Destroy implements Service.
func (r *Registry) Destroy() {
	r.mu.Lock()
	r.entries = make(map[string]Entry)
	r.mu.Unlock()
}
