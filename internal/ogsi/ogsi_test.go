package ogsi

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// testHosting starts a hosting environment on an HTTP test server.
func testHosting(t *testing.T) (*Hosting, string, *Client) {
	t.Helper()
	h := NewHosting()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	t.Cleanup(h.Close)
	h.BaseURL = srv.URL
	return h, srv.URL, &Client{}
}

func TestFactoryCreateAndServiceData(t *testing.T) {
	h, url, c := testHosting(t)
	h.RegisterFactory("registry", RegistryFactory)

	gsh, err := c.Create(url, "registry", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(gsh, url+"/services/registry/") {
		t.Fatalf("gsh = %q", gsh)
	}
	var typ string
	if err := c.ServiceData(gsh, "serviceType", &typ); err != nil {
		t.Fatal(err)
	}
	if typ != "Registry" {
		t.Fatalf("serviceType = %q", typ)
	}
	var all map[string]any
	if err := c.ServiceData(gsh, "", &all); err != nil {
		t.Fatal(err)
	}
	if all["entryCount"].(float64) != 0 {
		t.Fatalf("entryCount = %v", all["entryCount"])
	}
}

func TestUnknownFactoryAndService(t *testing.T) {
	_, url, c := testHosting(t)
	if _, err := c.Create(url, "ghost", nil); err == nil {
		t.Fatal("unknown factory accepted")
	}
	if err := c.Call(url+"/services/ghost/1", "op", nil, nil); err == nil {
		t.Fatal("unknown service accepted")
	}
	var out any
	if err := c.ServiceData(url+"/services/ghost/1", "", &out); err == nil {
		t.Fatal("unknown service data served")
	}
}

func TestDestroyService(t *testing.T) {
	h, url, c := testHosting(t)
	h.RegisterFactory("registry", RegistryFactory)
	gsh, _ := c.Create(url, "registry", nil)
	if err := c.Destroy(gsh); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(gsh, "find", nil, nil); err == nil {
		t.Fatal("destroyed service still answering")
	}
	if n := len(h.Instances()); n != 0 {
		t.Fatalf("instances = %d", n)
	}
}

func TestLifetimeReaper(t *testing.T) {
	h, url, c := testHosting(t)
	h.RegisterFactory("registry", RegistryFactory)
	gsh, _ := c.Create(url, "registry", nil)
	if err := c.SetLifetime(gsh, 0.05); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(h.Instances()) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("expired instance never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Immortal services survive.
	gsh2, _ := c.Create(url, "registry", nil)
	if err := c.SetLifetime(gsh2, 0.05); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLifetime(gsh2, 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	if len(h.Instances()) != 1 {
		t.Fatal("immortal instance reaped")
	}
}

func TestRegistryPublishFind(t *testing.T) {
	h, url, c := testHosting(t)
	h.RegisterFactory("registry", RegistryFactory)
	reg, _ := c.Create(url, "registry", nil)

	if err := c.Register(reg, Entry{
		GSH: "http://x/services/steer/1", Type: "SteeringService",
		Keywords: []string{"lb3d", "miscibility"},
	}, 60); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(reg, Entry{
		GSH: "http://x/services/viz/1", Type: "VizService",
		Keywords: []string{"lb3d"},
	}, 60); err != nil {
		t.Fatal(err)
	}

	all, err := c.Find(reg, "", "")
	if err != nil || len(all) != 2 {
		t.Fatalf("find all = %v, %v", all, err)
	}
	steer, _ := c.Find(reg, "SteeringService", "")
	if len(steer) != 1 || steer[0].GSH != "http://x/services/steer/1" {
		t.Fatalf("find by type = %v", steer)
	}
	byKw, _ := c.Find(reg, "", "miscib")
	if len(byKw) != 1 {
		t.Fatalf("find by keyword = %v", byKw)
	}
	none, _ := c.Find(reg, "Nothing", "")
	if len(none) != 0 {
		t.Fatalf("find nothing = %v", none)
	}
}

func TestRegistrySoftState(t *testing.T) {
	r := NewRegistry()
	_, err := r.ServeOp("register", json.RawMessage(`{"gsh":"g","type":"T","ttl_seconds":0.03}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Find("", ""); len(got) != 1 {
		t.Fatalf("fresh entry missing: %v", got)
	}
	time.Sleep(50 * time.Millisecond)
	if got := r.Find("", ""); len(got) != 0 {
		t.Fatalf("expired entry survived: %v", got)
	}
}

func TestRegistryUnregisterAndValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := r.ServeOp("register", json.RawMessage(`{"gsh":"","type":"T"}`)); err == nil {
		t.Fatal("empty gsh accepted")
	}
	r.ServeOp("register", json.RawMessage(`{"gsh":"g","type":"T"}`))
	out, err := r.ServeOp("unregister", json.RawMessage(`{"gsh":"g"}`))
	if err != nil || out.(map[string]bool)["removed"] != true {
		t.Fatalf("unregister = %v, %v", out, err)
	}
	if _, err := r.ServeOp("nosuch", nil); err == nil {
		t.Fatal("unknown op accepted")
	}
}

// steeringFixture stands up a session + hosted steering/viz services.
func steeringFixture(t *testing.T) (*core.Session, *core.Steered, string, string, *Client) {
	t.Helper()
	session := core.NewSession(core.SessionConfig{Name: "lb3d-run", AppName: "lb3d"})
	t.Cleanup(session.Close)
	st := session.Steered()
	if err := st.RegisterFloat("coupling", 1.0, 0, 10, "miscibility", func(float64) {}); err != nil {
		t.Fatal(err)
	}

	h, url, c := testHosting(t)
	h.RegisterFactory("steer", SteeringFactory(session))
	h.RegisterFactory("viz", VizFactory(session))
	steerGSH, err := c.Create(url, "steer", nil)
	if err != nil {
		t.Fatal(err)
	}
	vizGSH, err := c.Create(url, "viz", nil)
	if err != nil {
		t.Fatal(err)
	}
	return session, st, steerGSH, vizGSH, c
}

func TestSteeringServiceParamsAndSteer(t *testing.T) {
	_, st, steerGSH, _, c := steeringFixture(t)

	var params []core.Param
	if err := c.Call(steerGSH, "params", nil, &params); err != nil {
		t.Fatal(err)
	}
	if len(params) != 1 || params[0].Name != "coupling" {
		t.Fatalf("params = %v", params)
	}

	if err := c.Call(steerGSH, "steer", map[string]any{"name": "coupling", "value": 4.5}, nil); err != nil {
		t.Fatal(err)
	}
	if st.Poll() != core.ControlContinue {
		t.Fatal("poll verdict wrong")
	}
	c.Call(steerGSH, "params", nil, &params)
	if params[0].Value != core.FloatValue(4.5) {
		t.Fatalf("steer not applied: %v", params)
	}

	// Validation propagates over HTTP.
	if err := c.Call(steerGSH, "steer", map[string]any{"name": "coupling", "value": 99}, nil); err == nil {
		t.Fatal("out-of-bounds steer accepted")
	}
	if err := c.Call(steerGSH, "steer", map[string]any{"name": "ghost", "value": 1}, nil); err == nil {
		t.Fatal("unknown param accepted")
	}
}

func TestSteeringServiceCommands(t *testing.T) {
	_, st, steerGSH, _, c := steeringFixture(t)
	if err := c.Call(steerGSH, "command", map[string]string{"command": "pause"}, nil); err != nil {
		t.Fatal(err)
	}
	if st.Poll() != core.ControlPaused {
		t.Fatal("pause not applied")
	}
	c.Call(steerGSH, "command", map[string]string{"command": "resume"}, nil)
	if st.Poll() != core.ControlContinue {
		t.Fatal("resume not applied")
	}
	c.Call(steerGSH, "command", map[string]string{"command": "stop"}, nil)
	if st.Poll() != core.ControlStop {
		t.Fatal("stop not applied")
	}
	if err := c.Call(steerGSH, "command", map[string]string{"command": "explode"}, nil); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestSteeringServiceSample(t *testing.T) {
	_, st, steerGSH, _, c := steeringFixture(t)
	var sv sampleView
	if err := c.Call(steerGSH, "sample", nil, &sv); err != nil {
		t.Fatal(err)
	}
	if sv.Step != -1 {
		t.Fatalf("pre-emission step = %d", sv.Step)
	}
	sample := core.NewSample(7)
	sample.Channels["segregation"] = core.Scalar(0.42)
	sample.Channels["phi"] = core.Channel{Dims: [3]int{4, 4, 4}, Data: make([]float64, 64)}
	st.Emit(sample)
	if err := c.Call(steerGSH, "sample", nil, &sv); err != nil {
		t.Fatal(err)
	}
	if sv.Step != 7 || sv.Scalars["segregation"] != 0.42 {
		t.Fatalf("sample = %+v", sv)
	}
	if sv.Arrays["phi"] != [3]int{4, 4, 4} {
		t.Fatalf("array summary = %+v", sv.Arrays)
	}
}

func TestVizServiceViewRoundTrip(t *testing.T) {
	_, _, _, vizGSH, c := steeringFixture(t)
	var v core.ViewState
	if err := c.Call(vizGSH, "view", nil, &v); err != nil {
		t.Fatal(err)
	}
	v.Eye = [3]float64{9, 9, 9}
	v.VizParams = map[string]float64{"iso": 0.5}
	var applied core.ViewState
	if err := c.Call(vizGSH, "setview", v, &applied); err != nil {
		t.Fatal(err)
	}
	if applied.Seq == 0 || applied.Eye != [3]float64{9, 9, 9} {
		t.Fatalf("applied = %+v", applied)
	}
	var again core.ViewState
	c.Call(vizGSH, "view", nil, &again)
	if again.Eye != [3]float64{9, 9, 9} || again.VizParams["iso"] != 0.5 {
		t.Fatalf("view = %+v", again)
	}
}

func TestServiceDataOfSteeringService(t *testing.T) {
	_, _, steerGSH, _, c := steeringFixture(t)
	var session string
	if err := c.ServiceData(steerGSH, "session", &session); err != nil {
		t.Fatal(err)
	}
	if session != "lb3d-run" {
		t.Fatalf("session SDE = %q", session)
	}
	var missing any
	if err := c.ServiceData(steerGSH, "nonexistent", &missing); err == nil {
		t.Fatal("missing SDE served")
	}
}

func TestFullFigure2Flow(t *testing.T) {
	// The complete Figure 2 architecture: a client contacts the registry,
	// finds the steering services, binds, and steers.
	session := core.NewSession(core.SessionConfig{Name: "run"})
	defer session.Close()
	st := session.Steered()
	st.RegisterFloat("g", 0, 0, 10, "", func(float64) {})

	h, url, c := testHosting(t)
	h.RegisterFactory("registry", RegistryFactory)
	h.RegisterFactory("steer", SteeringFactory(session))
	h.RegisterFactory("viz", VizFactory(session))

	reg, _ := c.Create(url, "registry", nil)
	steerGSH, _ := c.Create(url, "steer", nil)
	vizGSH, _ := c.Create(url, "viz", nil)
	c.Register(reg, Entry{GSH: steerGSH, Type: "SteeringService", Keywords: []string{"run"}}, 60)
	c.Register(reg, Entry{GSH: vizGSH, Type: "VizService", Keywords: []string{"run"}}, 60)

	// The client knows only the registry.
	found, err := c.Find(reg, "SteeringService", "")
	if err != nil || len(found) != 1 {
		t.Fatalf("discovery failed: %v %v", found, err)
	}
	if err := c.Call(found[0].GSH, "steer", map[string]any{"name": "g", "value": 3}, nil); err != nil {
		t.Fatal(err)
	}
	st.Poll()
	var params []core.Param
	c.Call(found[0].GSH, "params", nil, &params)
	if params[0].Value != core.FloatValue(3) {
		t.Fatalf("steer through discovered service failed: %v", params)
	}
}
