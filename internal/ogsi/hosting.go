// Package ogsi implements a lightweight OGSA/OGSI hosting environment in the
// spirit of the paper's OGSI-Lite (section 2.3): "RealityGrid has therefore
// developed a lightweight OGSA hosting environment ... [that] can thus run
// on almost any platform". Where the original used Perl and SOAP, this one
// uses net/http and JSON — the OGSI semantics it preserves are the ones the
// steering architecture of Figure 2 depends on:
//
//   - factories that create service instances with unique Grid Service
//     Handles (GSHs),
//   - per-instance service data elements (SDEs) queryable by name,
//   - soft-state lifetime management with termination times and a reaper,
//   - a registry service where steering services publish themselves and
//     clients "contact a registry which [has] details of the steering
//     services", choose services and bind to them.
package ogsi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Service is one grid service instance hosted in the environment.
type Service interface {
	// ServeOp handles a named operation with JSON-encoded arguments.
	ServeOp(op string, args json.RawMessage) (any, error)
	// ServiceData returns the instance's service data elements.
	ServiceData() map[string]any
	// Destroy releases the instance's resources.
	Destroy()
}

// Factory creates service instances; args come from the create request.
type Factory func(args json.RawMessage) (Service, error)

// instance tracks one hosted service.
type instance struct {
	gsh     string
	svc     Service
	created time.Time

	mu          sync.Mutex
	termination time.Time // zero = immortal
}

// Hosting is the container: it multiplexes factories and instances onto an
// http.Handler.
type Hosting struct {
	// BaseURL is prepended to GSHs handed out by factories (scheme://host);
	// set it when the listener address is known.
	BaseURL string

	mu        sync.Mutex
	factories map[string]Factory
	instances map[string]*instance
	nextID    int

	reaperStop chan struct{}
	reaperOnce sync.Once
}

// NewHosting returns an empty hosting environment and starts its lifetime
// reaper.
func NewHosting() *Hosting {
	h := &Hosting{
		factories:  make(map[string]Factory),
		instances:  make(map[string]*instance),
		reaperStop: make(chan struct{}),
	}
	go h.reap()
	return h
}

// RegisterFactory installs a factory under a service type name.
func (h *Hosting) RegisterFactory(name string, f Factory) {
	h.mu.Lock()
	h.factories[name] = f
	h.mu.Unlock()
}

// CreateLocal creates an instance directly (no HTTP), returning its GSH.
func (h *Hosting) CreateLocal(factory string, args any) (string, error) {
	raw, err := json.Marshal(args)
	if err != nil {
		return "", err
	}
	return h.create(factory, raw)
}

func (h *Hosting) create(factory string, args json.RawMessage) (string, error) {
	h.mu.Lock()
	f, ok := h.factories[factory]
	h.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("ogsi: no factory %q", factory)
	}
	svc, err := f(args)
	if err != nil {
		return "", err
	}
	h.mu.Lock()
	h.nextID++
	gsh := fmt.Sprintf("/services/%s/%d", factory, h.nextID)
	h.instances[gsh] = &instance{gsh: gsh, svc: svc, created: time.Now()}
	h.mu.Unlock()
	return gsh, nil
}

// lookup returns the instance for a GSH path.
func (h *Hosting) lookup(gsh string) (*instance, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	inst, ok := h.instances[gsh]
	if !ok {
		return nil, fmt.Errorf("ogsi: no service %q", gsh)
	}
	return inst, nil
}

// Get returns the hosted Service behind a GSH, for in-process use.
func (h *Hosting) Get(gsh string) (Service, error) {
	inst, err := h.lookup(strings.TrimPrefix(gsh, h.BaseURL))
	if err != nil {
		return nil, err
	}
	return inst.svc, nil
}

// Destroy removes an instance explicitly.
func (h *Hosting) Destroy(gsh string) error {
	h.mu.Lock()
	inst, ok := h.instances[gsh]
	if ok {
		delete(h.instances, gsh)
	}
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("ogsi: no service %q", gsh)
	}
	inst.svc.Destroy()
	return nil
}

// Instances returns the live GSHs.
func (h *Hosting) Instances() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.instances))
	for gsh := range h.instances {
		out = append(out, gsh)
	}
	return out
}

// reap destroys instances whose termination time has passed: OGSI soft-state
// lifetime management.
func (h *Hosting) reap() {
	t := time.NewTicker(20 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-h.reaperStop:
			return
		case now := <-t.C:
			var doomed []*instance
			h.mu.Lock()
			for gsh, inst := range h.instances {
				inst.mu.Lock()
				expired := !inst.termination.IsZero() && now.After(inst.termination)
				inst.mu.Unlock()
				if expired {
					doomed = append(doomed, inst)
					delete(h.instances, gsh)
				}
			}
			h.mu.Unlock()
			for _, inst := range doomed {
				inst.svc.Destroy()
			}
		}
	}
}

// Close stops the reaper and destroys all instances.
func (h *Hosting) Close() {
	h.reaperOnce.Do(func() { close(h.reaperStop) })
	h.mu.Lock()
	insts := make([]*instance, 0, len(h.instances))
	for _, inst := range h.instances {
		insts = append(insts, inst)
	}
	h.instances = make(map[string]*instance)
	h.mu.Unlock()
	for _, inst := range insts {
		inst.svc.Destroy()
	}
}

// opRequest is the JSON body of a service operation call.
type opRequest struct {
	Op   string          `json:"op"`
	Args json.RawMessage `json:"args,omitempty"`
}

// opResponse is the JSON reply of every endpoint.
type opResponse struct {
	OK     bool            `json:"ok"`
	Err    string          `json:"err,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// writeJSON encodes a result or error.
func writeJSON(w http.ResponseWriter, status int, resp *opResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
}

func ok(w http.ResponseWriter, result any) {
	raw, err := json.Marshal(result)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, &opResponse{Err: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, &opResponse{OK: true, Result: raw})
}

func fail(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, &opResponse{Err: err.Error()})
}

// ServeHTTP implements the container's HTTP surface:
//
//	POST /factories/<name>          {args}        -> {"gsh": ...}
//	POST /services/<name>/<id>      {op, args}    -> operation result
//	GET  /services/<name>/<id>?sde=<name>         -> service data element
//	GET  /services/<name>/<id>                    -> all service data
//	DELETE /services/<name>/<id>                  -> destroy
//	POST /services/<name>/<id>/lifetime {seconds} -> set termination time
func (h *Hosting) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case strings.HasPrefix(path, "/factories/"):
		if r.Method != http.MethodPost {
			fail(w, http.StatusMethodNotAllowed, fmt.Errorf("ogsi: POST required"))
			return
		}
		name := strings.TrimPrefix(path, "/factories/")
		var args json.RawMessage
		json.NewDecoder(r.Body).Decode(&args)
		gsh, err := h.create(name, args)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		ok(w, map[string]string{"gsh": h.BaseURL + gsh})

	case strings.HasSuffix(path, "/lifetime") && strings.HasPrefix(path, "/services/"):
		gsh := strings.TrimSuffix(path, "/lifetime")
		inst, err := h.lookup(gsh)
		if err != nil {
			fail(w, http.StatusNotFound, err)
			return
		}
		var body struct {
			Seconds float64 `json:"seconds"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		inst.mu.Lock()
		if body.Seconds <= 0 {
			inst.termination = time.Time{}
		} else {
			inst.termination = time.Now().Add(time.Duration(body.Seconds * float64(time.Second)))
		}
		term := inst.termination
		inst.mu.Unlock()
		ok(w, map[string]any{"termination": term})

	case strings.HasPrefix(path, "/services/"):
		inst, err := h.lookup(path)
		if err != nil {
			fail(w, http.StatusNotFound, err)
			return
		}
		switch r.Method {
		case http.MethodGet:
			sde := r.URL.Query().Get("sde")
			data := inst.svc.ServiceData()
			if sde == "" {
				ok(w, data)
				return
			}
			v, found := data[sde]
			if !found {
				fail(w, http.StatusNotFound, fmt.Errorf("ogsi: no service data element %q", sde))
				return
			}
			ok(w, v)
		case http.MethodPost:
			var req opRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				fail(w, http.StatusBadRequest, err)
				return
			}
			result, err := inst.svc.ServeOp(req.Op, req.Args)
			if err != nil {
				fail(w, http.StatusBadRequest, err)
				return
			}
			ok(w, result)
		case http.MethodDelete:
			if err := h.Destroy(path); err != nil {
				fail(w, http.StatusNotFound, err)
				return
			}
			ok(w, map[string]bool{"destroyed": true})
		default:
			fail(w, http.StatusMethodNotAllowed, fmt.Errorf("ogsi: unsupported method"))
		}

	default:
		fail(w, http.StatusNotFound, fmt.Errorf("ogsi: unknown path %q", path))
	}
}
