package core

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"repro/internal/wire"
)

// Value is a wire.Kind-tagged scalar: the unit of the typed steering data
// model (SC2003 §3.2 — tagged messages of integers, floats, strings,
// converted by the receiver). Exactly one of F, I, S is meaningful,
// selected by Kind: KindFloat64 → F, KindInt64 → I, KindBool → I (0/1),
// KindString → S.
type Value struct {
	Kind wire.Kind
	F    float64
	I    int64
	S    string
}

// FloatValue wraps a float64.
func FloatValue(v float64) Value { return Value{Kind: wire.KindFloat64, F: v} }

// IntValue wraps an int64.
func IntValue(v int64) Value { return Value{Kind: wire.KindInt64, I: v} }

// BoolValue wraps a bool.
func BoolValue(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{Kind: wire.KindBool, I: i}
}

// StringValue wraps a string.
func StringValue(s string) Value { return Value{Kind: wire.KindString, S: s} }

// Float returns the value as a float64, converting any numeric kind — the
// receiver-side conversion rule. Strings return NaN.
func (v Value) Float() float64 {
	switch v.Kind {
	case wire.KindFloat64:
		return v.F
	case wire.KindInt64, wire.KindBool:
		return float64(v.I)
	default:
		return math.NaN()
	}
}

// Int returns the value as an int64. Floats are rejected unless integral
// and within int64 range: silent truncation — or the implementation-
// defined result of an out-of-range conversion (a huge positive steer
// arriving as MinInt64) — would hide steering bugs.
func (v Value) Int() (int64, error) {
	switch v.Kind {
	case wire.KindInt64, wire.KindBool:
		return v.I, nil
	case wire.KindFloat64:
		if v.F == math.Trunc(v.F) && v.F >= math.MinInt64 && v.F < math.MaxInt64 {
			return int64(v.F), nil
		}
		return 0, fmt.Errorf("%w: %v is not an int64", ErrBadValue, v.F)
	default:
		return 0, fmt.Errorf("%w: cannot convert %s to int", ErrBadValue, v.Kind)
	}
}

// Bool returns the value as a bool; any numeric kind converts by the
// nonzero-is-true rule.
func (v Value) Bool() (bool, error) {
	switch v.Kind {
	case wire.KindBool, wire.KindInt64:
		return v.I != 0, nil
	case wire.KindFloat64:
		return v.F != 0, nil
	default:
		return false, fmt.Errorf("%w: cannot convert %s to bool", ErrBadValue, v.Kind)
	}
}

// String renders the value for display; it implements fmt.Stringer.
func (v Value) String() string {
	switch v.Kind {
	case wire.KindFloat64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case wire.KindInt64:
		return strconv.FormatInt(v.I, 10)
	case wire.KindBool:
		return strconv.FormatBool(v.I != 0)
	case wire.KindString:
		return v.S
	default:
		return "<invalid>"
	}
}

// valueJSON is the stable JSON projection of a Value.
type valueJSON struct {
	Kind  string   `json:"kind"`
	Float *float64 `json:"float,omitempty"`
	Int   *int64   `json:"int,omitempty"`
	Bool  *bool    `json:"bool,omitempty"`
	Str   *string  `json:"string,omitempty"`
}

// MarshalJSON encodes the value as {"kind": ..., <kind>: ...}.
func (v Value) MarshalJSON() ([]byte, error) {
	j := valueJSON{Kind: v.Kind.String()}
	switch v.Kind {
	case wire.KindFloat64:
		j.Float = &v.F
	case wire.KindInt64:
		j.Int = &v.I
	case wire.KindBool:
		b := v.I != 0
		j.Bool = &b
	case wire.KindString:
		j.Str = &v.S
	default:
		return nil, fmt.Errorf("core: cannot marshal value of kind %s", v.Kind)
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes the projection written by MarshalJSON.
func (v *Value) UnmarshalJSON(data []byte) error {
	var j valueJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	switch {
	case j.Float != nil:
		*v = FloatValue(*j.Float)
	case j.Int != nil:
		*v = IntValue(*j.Int)
	case j.Bool != nil:
		*v = BoolValue(*j.Bool)
	case j.Str != nil:
		*v = StringValue(*j.Str)
	default:
		return fmt.Errorf("core: value JSON carries no payload (kind %q)", j.Kind)
	}
	return nil
}
