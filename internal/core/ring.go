package core

import "sync"

// frameRing is the fixed-capacity client queue of the broadcast hot path: a
// bounded ring of *FrameBuf where a full ring overwrites its oldest slot in
// O(1). It replaces the channel-based queues whose eviction was a
// select/drain retry loop: push is one short critical section per frame, and
// the drop-on-slow-client / freshest-wins-sample policies fall out of the
// overwrite. The per-ring mutex is private to one client, so broadcasts to
// different clients never contend with each other — only a broadcast and
// that client's drainer can meet here, for a few pointer moves.
//
// Producers are the broadcast paths (many, concurrent); the consumer is the
// client's writer — dedicated goroutine or the pool writer that won the
// handle's edge trigger — draining in FIFO order. Refcounts: push takes its
// own reference on the queued frame and releases any slot it overwrites;
// drainInto transfers the slot references to the caller, who releases them
// after the write.
type frameRing struct {
	mu  sync.Mutex
	buf []*FrameBuf
	// tail is the next slot to read, head the next to write; n is the live
	// count (head == tail means empty at n == 0, full at n == len(buf)).
	head, tail, n int
	// closed discards further pushes: set when the client is dropped, so a
	// broadcast racing the drop cannot strand references in a ring nobody
	// will drain.
	closed bool
}

func newFrameRing(capacity int) *frameRing {
	if capacity <= 0 {
		capacity = 16
	}
	return &frameRing{buf: make([]*FrameBuf, capacity)}
}

func (r *frameRing) next(i int) int {
	if i++; i == len(r.buf) {
		return 0
	}
	return i
}

// push enqueues fb, retaining it; when the ring is full the oldest entry is
// overwritten and released (the frame that arrived first is the one a slow
// client can best afford to lose). It reports whether it evicted. Pushes on
// a closed ring are discarded.
//
//steer:hotpath
//steer:owns
func (r *frameRing) push(fb *FrameBuf) (evicted bool) {
	r.mu.Lock() //steer:allow hotpathalloc per-ring mutex, never contended with s.mu; held O(1) slot ops only (DESIGN.md §4.1)
	if r.closed {
		r.mu.Unlock()
		return false
	}
	var old *FrameBuf
	if r.n == len(r.buf) {
		old = r.buf[r.tail]
		r.buf[r.tail] = nil
		r.tail = r.next(r.tail)
		r.n--
	}
	fb.Retain()
	r.buf[r.head] = fb
	r.head = r.next(r.head)
	r.n++
	r.mu.Unlock()
	if old != nil {
		old.Release() // outside the lock: pool work never extends the critical section
		return true
	}
	return false
}

// tryPush enqueues fb (retaining it) only if a slot is free: the
// no-eviction variant the pre-welcome control path uses, where an overflow
// must stash rather than lose a frame. It reports whether the frame was
// queued; a closed ring reports true (discard, like push).
//
//steer:hotpath
//steer:owns
func (r *frameRing) tryPush(fb *FrameBuf) bool {
	r.mu.Lock() //steer:allow hotpathalloc per-ring mutex, never contended with s.mu; held O(1) slot ops only (DESIGN.md §4.1)
	if r.closed {
		r.mu.Unlock()
		return true
	}
	if r.n == len(r.buf) {
		r.mu.Unlock()
		return false
	}
	fb.Retain()
	r.buf[r.head] = fb
	r.head = r.next(r.head)
	r.n++
	r.mu.Unlock()
	return true
}

// drainInto pops frames in FIFO order, appending to dst until it holds max
// entries (max <= 0 drains everything). Slot references transfer to the
// caller.
//
//steer:hotpath
func (r *frameRing) drainInto(dst []*FrameBuf, max int) []*FrameBuf {
	r.mu.Lock() //steer:allow hotpathalloc per-ring mutex, never contended with s.mu; held O(1) slot ops only (DESIGN.md §4.1)
	for r.n > 0 && (max <= 0 || len(dst) < max) {
		dst = append(dst, r.buf[r.tail])
		r.buf[r.tail] = nil
		r.tail = r.next(r.tail)
		r.n--
	}
	r.mu.Unlock()
	return dst
}

// length returns the live count.
func (r *frameRing) length() int {
	r.mu.Lock() //steer:allow hotpathalloc per-ring mutex, never contended with s.mu; held O(1) slot ops only (DESIGN.md §4.1)
	n := r.n
	r.mu.Unlock()
	return n
}

// closeRelease marks the ring closed and releases everything still queued;
// called exactly once, when the client is dropped.
func (r *frameRing) closeRelease() {
	r.mu.Lock()
	r.closed = true
	var drop []*FrameBuf
	if r.n > 0 {
		drop = make([]*FrameBuf, 0, r.n)
		for r.n > 0 {
			drop = append(drop, r.buf[r.tail])
			r.buf[r.tail] = nil
			r.tail = r.next(r.tail)
			r.n--
		}
	}
	r.mu.Unlock()
	releaseFrames(drop)
}
