package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestEnvelopeRoundTripTypes encodes one envelope of every message type and
// checks the decoded form field by field.
func TestEnvelopeRoundTripTypes(t *testing.T) {
	view := &ViewState{
		Seq: 7, Eye: [3]float64{1, 2, 3}, Center: [3]float64{4, 5, 6},
		Up: [3]float64{0, 1, 0}, FovY: 0.78,
		VizParams: map[string]float64{"iso": 0.5, "cut": 2},
	}
	sample := NewSample(42)
	sample.Channels["phi"] = Channel{Dims: [3]int{2, 2, 1}, Data: []float64{1, 2, 3, 4}}
	sample.Channels["seg"] = Scalar(0.7)
	params := []Param{
		{Name: "g", Type: FloatParam, Value: FloatValue(1.5), Min: 0, Max: 10, Help: "coupling"},
		{Name: "scheme", Type: ChoiceParam, Value: StringValue("fast"), Choices: []string{"fast", "slow"}},
		{Name: "trace", Type: BoolParam, Value: BoolValue(true)},
	}
	cases := []*envelope{
		{Type: msgAttach, Seq: 1, Attach: &attachMsg{Name: "alice", WantMaster: true, Session: "s1", Priority: 7}},
		{Type: msgWelcome, Seq: 2, Welcome: &welcomeMsg{
			SessionName: "s1", AppName: "lb3d", ClientName: "alice", Master: "bob",
			Role: RoleObserver, Params: params, View: view,
			LeaseMillis: 1500, Policy: FloorPriority, FloorSeq: 42,
		}},
		{Type: msgSample, Sample: sample},
		{Type: msgSetParam, Seq: 3, Sets: []ParamSet{
			{Name: "g", Value: FloatValue(4.5)},
			{Name: "scheme", Value: StringValue("slow")},
			{Name: "iters", Value: IntValue(9)},
		}},
		{Type: msgParamUpdate, Params: params[:1]},
		{Type: msgSetView, Seq: 4, View: view},
		{Type: msgViewUpdate, View: view},
		{Type: msgCommand, Seq: 5, Command: cmdCheckpoint},
		{Type: msgRequestMaster, Seq: 6},
		{Type: msgRequestMaster, Seq: 12, NoWait: true},
		{Type: msgRequestMaster, Seq: 13, Steal: true},
		{Type: msgReleaseMaster, Seq: 14},
		{Type: msgHeartbeat},
		{Type: msgHandoffMaster, Seq: 7, Target: "bob"},
		{Type: msgMasterChanged, Target: "bob", Reason: FloorGranted},
		{Type: msgMasterChanged, Reason: FloorVacated}, // "" target: floor free
		{Type: msgEvent, Event: "resumed"},
		{Type: msgAck, Seq: 8, Ack: &ackMsg{OK: true}},
		{Type: msgAck, Seq: 9, Ack: &ackMsg{Code: codeNotMaster, Err: "nope"}},
		{Type: msgAck, Seq: 15, Ack: &ackMsg{OK: true, Code: codeFloorQueued, Err: `queued at 2 behind "bob"`}},
		{Type: msgDetach},
	}
	for _, e := range cases {
		buf, err := encodeEnvelope(nil, e)
		if err != nil {
			t.Fatalf("encode type %d: %v", e.Type, err)
		}
		cli, srv := net.Pipe()
		go func() {
			cli.Write(buf)
			cli.Close()
		}()
		got, err := decodeEnvelope(wire.NewDecoder(srv), clientEnvelopeBudget)
		if err != nil {
			t.Fatalf("decode type %d: %v", e.Type, err)
		}
		if got.Type != e.Type || got.Seq != e.Seq {
			t.Fatalf("type/seq: got %d/%d want %d/%d", got.Type, got.Seq, e.Type, e.Seq)
		}
		// Canonical re-encode must be byte-identical.
		buf2, err := encodeEnvelope(nil, got)
		if err != nil {
			t.Fatalf("re-encode type %d: %v", e.Type, err)
		}
		if string(buf) != string(buf2) {
			t.Fatalf("type %d not canonical", e.Type)
		}
		switch e.Type {
		case msgAttach:
			a, want := got.Attach, e.Attach
			if a.Name != want.Name || a.Session != want.Session ||
				a.WantMaster != want.WantMaster || a.Priority != want.Priority ||
				a.Tier != want.Tier || a.Replay != want.Replay ||
				len(a.Subs) != len(want.Subs) {
				t.Fatalf("attach: %+v", got.Attach)
			}
			for i := range a.Subs {
				if a.Subs[i] != want.Subs[i] {
					t.Fatalf("attach subs: %+v", a.Subs)
				}
			}
		case msgWelcome:
			w := got.Welcome
			if w.SessionName != "s1" || w.Master != "bob" || w.Role != RoleObserver || len(w.Params) != 3 {
				t.Fatalf("welcome: %+v", w)
			}
			if w.LeaseMillis != 1500 || w.Policy != FloorPriority || w.FloorSeq != 42 {
				t.Fatalf("welcome floor advertisement: lease %d policy %v seq %d", w.LeaseMillis, w.Policy, w.FloorSeq)
			}
			if w.Params[1].Choices[1] != "slow" || w.Params[2].Value != BoolValue(true) {
				t.Fatalf("welcome params: %+v", w.Params)
			}
			if w.View == nil || w.View.VizParams["iso"] != 0.5 || w.View.Seq != 7 {
				t.Fatalf("welcome view: %+v", w.View)
			}
		case msgSample:
			if got.Sample.Step != 42 || len(got.Sample.Channels) != 2 ||
				got.Sample.Channels["phi"].Data[3] != 4 ||
				got.Sample.Channels["seg"].Value() != 0.7 {
				t.Fatalf("sample: %+v", got.Sample)
			}
		case msgSetParam:
			if len(got.Sets) != 3 || got.Sets[0].Value != FloatValue(4.5) ||
				got.Sets[1].Value != StringValue("slow") || got.Sets[2].Value != IntValue(9) {
				t.Fatalf("sets: %+v", got.Sets)
			}
		case msgSetView, msgViewUpdate:
			if got.View.Eye != view.Eye || got.View.VizParams["cut"] != 2 {
				t.Fatalf("view: %+v", got.View)
			}
		case msgCommand:
			if got.Command != cmdCheckpoint {
				t.Fatalf("command: %v", got.Command)
			}
		case msgHandoffMaster, msgMasterChanged:
			if got.Target != e.Target || got.Reason != e.Reason {
				t.Fatalf("target/reason: %q/%v want %q/%v", got.Target, got.Reason, e.Target, e.Reason)
			}
		case msgRequestMaster:
			if got.NoWait != e.NoWait || got.Steal != e.Steal {
				t.Fatalf("request flags: nowait %v steal %v", got.NoWait, got.Steal)
			}
		case msgEvent:
			if got.Event != "resumed" {
				t.Fatalf("event: %q", got.Event)
			}
		case msgAck:
			if got.Ack.OK != e.Ack.OK || got.Ack.Code != e.Ack.Code || got.Ack.Err != e.Ack.Err {
				t.Fatalf("ack: %+v", got.Ack)
			}
		}
		srv.Close()
	}
}

// TestParseParamsHostileChoiceCount is the regression test for the integer
// overflow a hostile peer could plant in the per-param choice count: the
// bounds check must run in int64 space, erroring instead of wrapping into
// an out-of-range slice panic.
func TestParseParamsHostileChoiceCount(t *testing.T) {
	for _, nch := range []int64{int64(^uint64(0) >> 1), -1, 4} {
		_, err := parseParams(
			[]int64{int64(FloatParam), int64(wire.KindFloat64), 0, nch},
			[]float64{1, 0, 2},
			[]string{"name", "help", ""},
		)
		if !errors.Is(err, errMalformed) {
			t.Fatalf("nch=%d: err = %v, want errMalformed", nch, err)
		}
	}
}

// TestParseGroupsHostileCounts covers the same class for the sample and
// view groups: declared counts that disagree with the frames must error.
func TestParseGroupsHostileCounts(t *testing.T) {
	if _, err := parseSample([]int64{1, int64(^uint64(0) >> 1)}, []string{"x"}, [][]float64{{1}}); !errors.Is(err, errMalformed) {
		t.Fatalf("hostile sample count err = %v", err)
	}
	if _, err := parseView([]int64{1, int64(^uint64(0) >> 1)}, make([]float64, 10), nil); !errors.Is(err, errMalformed) {
		t.Fatalf("hostile view count err = %v", err)
	}
}

// TestServerEnvelopeBudget proves a hardened (session-side) codec cuts off
// an envelope that streams more payload than any legitimate client message
// needs, while the client-side codec still accepts the same bulk sample.
func TestServerEnvelopeBudget(t *testing.T) {
	sample := NewSample(1)
	for i := 0; i < 10; i++ {
		sample.Channels[fmt.Sprintf("c%02d", i)] = Channel{
			Dims: [3]int{128, 128, 8}, Data: make([]float64, 131072), // 1 MB each
		}
	}
	buf, err := encodeEnvelope(nil, &envelope{Type: msgSample, Sample: sample})
	if err != nil {
		t.Fatal(err)
	}

	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	go func() {
		cli.Write(buf)
		cli.Close()
	}()
	hardened := newCodec(srv)
	hardened.harden()
	if _, err := hardened.read(); err == nil {
		t.Fatal("hardened codec decoded a 10 MB envelope")
	}

	cli2, srv2 := net.Pipe()
	defer cli2.Close()
	defer srv2.Close()
	go func() {
		cli2.Write(buf)
		cli2.Close()
	}()
	if _, err := newCodec(srv2).read(); err != nil {
		t.Fatalf("client codec rejected a legitimate bulk sample: %v", err)
	}
}

// TestAcceptConnRejectsBadMagic proves a non-protocol byte stream (an HTTP
// probe, a gob v1 client) fails the handshake with ErrVersionMismatch
// instead of a codec panic.
func TestAcceptConnRejectsBadMagic(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := AcceptConn(srv)
		errCh <- err
	}()
	go cli.Write([]byte("GET /steer HTTP/1.1\r\nHost: nope\r\n\r\n"))
	// The server answers with a best-effort version-coded ack before closing.
	reply, err := decodeEnvelope(wire.NewDecoder(cli), clientEnvelopeBudget)
	if err != nil {
		t.Fatalf("reading rejection: %v", err)
	}
	if reply.Type != msgAck || reply.Ack == nil || reply.Ack.Code != codeVersion {
		t.Fatalf("rejection = %+v", reply)
	}
	if err := <-errCh; !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("AcceptConn err = %v, want ErrVersionMismatch", err)
	}
}

// TestAcceptConnRejectsWrongVersion proves version negotiation: a client
// offering an unsupported protocol version is rejected with
// ErrVersionMismatch and a version-coded ack.
func TestAcceptConnRejectsWrongVersion(t *testing.T) {
	buf, err := encodeEnvelope(nil, &envelope{
		Version: 99, Type: msgAttach, Attach: &attachMsg{Name: "fut"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, srv := net.Pipe()
	defer cli.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := AcceptConn(srv)
		errCh <- err
	}()
	go cli.Write(buf)
	reply, err := decodeEnvelope(wire.NewDecoder(cli), clientEnvelopeBudget)
	if err != nil {
		t.Fatalf("reading rejection: %v", err)
	}
	if reply.Type != msgAck || reply.Ack == nil || reply.Ack.Code != codeVersion {
		t.Fatalf("rejection = %+v", reply)
	}
	if err := <-errCh; !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("AcceptConn err = %v, want ErrVersionMismatch", err)
	}
}

// TestAcceptConnRejectsV2 pins the floor-control protocol cut: a v2 peer
// has no request/grant/deny vocabulary (its master requests could go
// unanswered), so it is rejected at the handshake with a version-coded ack
// — cleanly, not by silent misbehaviour later.
func TestAcceptConnRejectsV2(t *testing.T) {
	buf, err := encodeEnvelope(nil, &envelope{
		Version: 2, Type: msgAttach, Attach: &attachMsg{Name: "old"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, srv := net.Pipe()
	defer cli.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := AcceptConn(srv)
		errCh <- err
	}()
	go cli.Write(buf)
	reply, err := decodeEnvelope(wire.NewDecoder(cli), clientEnvelopeBudget)
	if err != nil {
		t.Fatalf("reading rejection: %v", err)
	}
	if reply.Type != msgAck || reply.Ack == nil || reply.Ack.Code != codeVersion {
		t.Fatalf("rejection = %+v", reply)
	}
	if err := <-errCh; !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("AcceptConn err = %v, want ErrVersionMismatch", err)
	}
}

// TestAcceptConnAcceptsCurrent is the positive half of negotiation: a
// current attach frame yields a PendingConn carrying the requested names.
func TestAcceptConnAcceptsCurrent(t *testing.T) {
	buf, err := encodeEnvelope(nil, &envelope{
		Type: msgAttach, Attach: &attachMsg{Name: "alice", Session: "s7"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, srv := net.Pipe()
	defer cli.Close()
	type res struct {
		p   *PendingConn
		err error
	}
	resCh := make(chan res, 1)
	go func() {
		p, err := AcceptConn(srv)
		resCh <- res{p, err}
	}()
	go cli.Write(buf)
	r := <-resCh
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.p.ClientName() != "alice" || r.p.SessionName() != "s7" {
		t.Fatalf("pending conn: %q %q", r.p.ClientName(), r.p.SessionName())
	}
}

// TestAttachRejectsNonProtocolServer covers the client side of negotiation:
// attaching to an endpoint that does not speak the protocol fails with
// ErrVersionMismatch.
func TestAttachRejectsNonProtocolServer(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		conn.Write([]byte("HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n"))
		conn.Close()
	}()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(conn, AttachOptions{Name: "c", Timeout: 2 * time.Second}); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("Attach err = %v, want ErrVersionMismatch", err)
	}
}

// TestAttachSurfacesVersionAck proves a server's version-coded rejection ack
// reaches the client as ErrVersionMismatch.
func TestAttachSurfacesVersionAck(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		c := newCodec(conn)
		c.read() // consume the attach
		c.write(&envelope{Type: msgAck, Ack: &ackMsg{Code: codeVersion, Err: "v3 only"}}, time.Second)
		conn.Close()
	}()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(conn, AttachOptions{Name: "c", Timeout: 2 * time.Second}); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("Attach err = %v, want ErrVersionMismatch", err)
	}
}

func TestAttachContextCancellation(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		// Accept and say nothing: the handshake can only end by ctx.
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		time.Sleep(3 * time.Second)
	}()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = AttachContext(ctx, conn, AttachOptions{Name: "c", Timeout: 10 * time.Second})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation did not interrupt the handshake")
	}
}

func TestTypedParamsEndToEnd(t *testing.T) {
	s, dial := testSession(t, SessionConfig{})
	st := s.Steered()
	var gotInt int64
	var gotBool bool
	var gotStr, gotChoice string
	if err := st.RegisterInt("iters", 10, 1, 100, "solver iterations", func(v int64) { gotInt = v }); err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterBool("verbose", false, "", func(v bool) { gotBool = v }); err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterString("label", "run-a", "", func(v string) { gotStr = v }); err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterChoice("scheme", []string{"fast", "accurate"}, "fast", "", func(v string) { gotChoice = v }); err != nil {
		t.Fatal(err)
	}

	m := dial(AttachOptions{Name: "m"})
	// The welcome carries types, kinds, and choices.
	p, ok := m.Param("iters")
	if !ok || p.Type != IntParam || p.Value != IntValue(10) || p.Min != 1 || p.Max != 100 {
		t.Fatalf("iters param: %+v", p)
	}
	p, _ = m.Param("scheme")
	if p.Type != ChoiceParam || len(p.Choices) != 2 || p.Value != StringValue("fast") {
		t.Fatalf("scheme param: %+v", p)
	}

	if err := m.SetValueContext(testCtx(t), "iters", IntValue(42)); err != nil {
		t.Fatal(err)
	}
	if err := m.SetValueContext(testCtx(t), "verbose", BoolValue(true)); err != nil {
		t.Fatal(err)
	}
	if err := m.SetValueContext(testCtx(t), "label", StringValue("run-b")); err != nil {
		t.Fatal(err)
	}
	// A choice accepts its index too: receiver-side conversion.
	if err := m.SetValueContext(testCtx(t), "scheme", IntValue(1)); err != nil {
		t.Fatal(err)
	}
	st.Poll()
	if gotInt != 42 || !gotBool || gotStr != "run-b" || gotChoice != "accurate" {
		t.Fatalf("applied: %d %v %q %q", gotInt, gotBool, gotStr, gotChoice)
	}
	// Updates reach the client with typed values.
	waitFor(t, "typed updates", func() bool {
		a, _ := m.Param("scheme")
		b, _ := m.Param("verbose")
		return a.Value == StringValue("accurate") && b.Value == BoolValue(true)
	})

	// An integer parameter accepts an integral float but rejects a
	// fractional one (no silent truncation).
	if err := m.SetParamContext(testCtx(t), "iters", 7); err != nil {
		t.Fatal(err)
	}
	if err := m.SetParamContext(testCtx(t), "iters", 7.5); !errors.Is(err, ErrBadValue) {
		t.Fatalf("fractional int err = %v", err)
	}
}

func TestTypedErrors(t *testing.T) {
	s, dial := testSession(t, SessionConfig{})
	st := s.Steered()
	st.RegisterFloat("g", 0, 0, 10, "", func(float64) {})
	m := dial(AttachOptions{Name: "m"})
	o := dial(AttachOptions{Name: "o"})

	if err := o.SetParamContext(testCtx(t), "g", 1); !errors.Is(err, ErrNotMaster) {
		t.Fatalf("observer steer err = %v, want ErrNotMaster", err)
	}
	if err := m.SetParamContext(testCtx(t), "nosuch", 1); !errors.Is(err, ErrUnknownParam) {
		t.Fatalf("unknown param err = %v, want ErrUnknownParam", err)
	}
	if err := m.SetParamContext(testCtx(t), "g", 11); !errors.Is(err, ErrBadValue) {
		t.Fatalf("out-of-range err = %v, want ErrBadValue", err)
	}
	if err := m.SetValueContext(testCtx(t), "g", StringValue("warp")); !errors.Is(err, ErrBadValue) {
		t.Fatalf("kind clash err = %v, want ErrBadValue", err)
	}
}

func TestBatchSetParamsAtomic(t *testing.T) {
	s, dial := testSession(t, SessionConfig{})
	st := s.Steered()
	var g float64
	var n int64
	st.RegisterFloat("g", 0, 0, 10, "", func(v float64) { g = v })
	st.RegisterInt("n", 0, 0, 100, "", func(v int64) { n = v })
	m := dial(AttachOptions{Name: "m"})

	// One envelope, one ack, both applied at the next poll.
	if err := m.SetParamsContext(testCtx(t), []ParamSet{
		{Name: "g", Value: FloatValue(2.5)},
		{Name: "n", Value: IntValue(5)},
	}); err != nil {
		t.Fatal(err)
	}
	st.Poll()
	if g != 2.5 || n != 5 {
		t.Fatalf("batch applied g=%v n=%d", g, n)
	}
	if got := s.Stats().SteersApplied; got != 2 {
		t.Fatalf("SteersApplied = %d, want 2", got)
	}

	// A batch with one bad assignment is rejected whole: nothing applies.
	err := m.SetParamsContext(testCtx(t), []ParamSet{
		{Name: "g", Value: FloatValue(9)},
		{Name: "n", Value: IntValue(1000)},
	})
	if !errors.Is(err, ErrBadValue) {
		t.Fatalf("bad batch err = %v", err)
	}
	st.Poll()
	if g != 2.5 || n != 5 {
		t.Fatalf("rejected batch leaked: g=%v n=%d", g, n)
	}
}

func TestChoiceRegistrationValidation(t *testing.T) {
	s := NewSession(SessionConfig{})
	defer s.Close()
	st := s.Steered()
	if err := st.RegisterChoice("c", nil, "", "", func(string) {}); err == nil {
		t.Fatal("empty choice list accepted")
	}
	if err := st.RegisterChoice("c", []string{"a", "b"}, "z", "", func(string) {}); err == nil {
		t.Fatal("initial value outside choices accepted")
	}
	if err := st.RegisterChoice("c", []string{"a", "b"}, "a", "", func(string) {}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeOnceSharesBuffer pins the tentpole property: one broadcast to N
// clients performs exactly one serialization, and every queue slot holds a
// reference to the same pooled buffer.
func TestEncodeOnceSharesBuffer(t *testing.T) {
	// No Close: the session never serves a listener and the fake clients
	// carry no codec to shut down.
	s := NewSession(SessionConfig{SampleQueue: 4})
	for i := 0; i < 3; i++ {
		name := string(rune('a' + i))
		s.clients[name] = &clientConn{
			name:  name,
			out:   newFrameRing(4),
			ctrl:  newFrameRing(4),
			ready: make(chan struct{}, 1),
			gone:  make(chan struct{}),
		}
		s.order = append(s.order, name)
	}
	s.mu.Lock()
	s.rebuildClientsLocked()
	s.mu.Unlock()
	sample := NewSample(1)
	sample.Channels["x"] = Scalar(1)
	s.broadcastSample(sample)

	var frames []*FrameBuf
	for _, cc := range s.clients {
		got := cc.out.drainInto(nil, 0)
		if len(got) != 1 {
			t.Fatalf("client queue holds %d frames after broadcast, want 1", len(got))
		}
		frames = append(frames, got[0])
	}
	for _, fb := range frames[1:] {
		if fb != frames[0] {
			t.Fatal("broadcast did not share one encoded buffer across clients")
		}
	}
	// Each of the three queue slots held one reference, now owned here.
	if got := frames[0].Refs(); got != 3 {
		t.Fatalf("shared frame refcount = %d, want 3 (one per queue slot)", got)
	}
	releaseFrames(frames)
}
