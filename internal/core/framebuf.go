package core

import (
	"sync"
	"sync/atomic"
)

// FrameBuf is a pooled, refcounted envelope buffer: the allocation unit of
// the broadcast hot path. A broadcast encodes its envelope once into a
// FrameBuf drawn from a sync.Pool, then every consumer — each client queue
// slot, the journal tap, a writer mid-drain — holds its own reference. The
// last Release returns the buffer to the pool, so the steady-state fan-out
// cost is refcount arithmetic, not allocation: encode-once becomes
// allocate-rarely.
//
// Ownership discipline (the lifetime rules the -race stress tests guard):
//
//   - GetFrame returns a buffer the caller owns with one reference.
//   - A holder that keeps the buffer past a call boundary takes its own
//     reference with Retain before the handoff returns, and pairs it with
//     exactly one Release when done. frameRing.push retains internally;
//     JournalSink implementations retain inside Record.
//   - Bytes must not be read after the holder's Release, and never mutated
//     after the first handoff. The framedebug build tag enforces the former
//     by poisoning buffers on their way back to the pool.
//
// Release panics on over-release in every build; retain-after-free and
// read-after-release are detected under the framedebug tag (see
// framebuf_debug.go).
type FrameBuf struct {
	b    []byte
	refs atomic.Int32
	// keys are the interest keys of the encoded envelope — sample channel
	// names or updated parameter names — so asynchronous consumers (relay
	// workers) can match the frame against a client's interest set without
	// re-decoding it. Empty means the frame is not interest-filtered and
	// goes to everyone. The slice rides the pooled buffer (capacity reused,
	// strings cleared on release) under the same lifetime rules as b.
	keys []string
	// unpooled marks wrapper frames (NewFrame) whose bytes the pool must
	// never recycle or poison: the caller owns the backing array.
	unpooled bool
}

// maxPooledFrame bounds the capacity a buffer may keep when it returns to
// the pool; a one-off giant sample must not pin its arena forever.
const maxPooledFrame = 1 << 20

var framePool = sync.Pool{New: func() any { return new(FrameBuf) }}

// GetFrame returns a pooled buffer with one reference and at least capHint
// capacity. Exported for tests and in-process sinks; sessions draw every
// broadcast frame from here.
func GetFrame(capHint int) *FrameBuf {
	fb := framePool.Get().(*FrameBuf)
	if cap(fb.b) < capHint {
		//steer:allow hotpathalloc cold pool-refill branch; a warm pool reuses capacity and the benchmarks hold 0 allocs/op
		fb.b = make([]byte, 0, capHint)
	}
	fb.b = fb.b[:0]
	fb.keys = fb.keys[:0]
	fb.refs.Store(1)
	return fb
}

// NewFrame wraps caller-owned bytes in an unpooled FrameBuf with one
// reference: the refcount protocol without the pool (recovery frames, test
// fixtures). Release never recycles or poisons it.
func NewFrame(b []byte) *FrameBuf {
	fb := &FrameBuf{b: b, unpooled: true}
	fb.refs.Store(1)
	return fb
}

// Bytes returns the encoded frame. Valid only while the caller holds a
// reference; never mutate it.
func (f *FrameBuf) Bytes() []byte { return f.b }

// Keys returns the frame's interest keys (see the field doc); same lifetime
// rules as Bytes.
func (f *FrameBuf) Keys() []string { return f.keys }

// setKeys records the frame's interest keys, reusing the slice capacity a
// pooled buffer already carries. Only the sole owner (before any handoff)
// may set keys, under the same rule as AppendBytes.
func (f *FrameBuf) setKeys(keys []string) {
	f.keys = append(f.keys[:0], keys...)
}

// appendKey adds one interest key; same ownership rule as setKeys.
func (f *FrameBuf) appendKey(key string) {
	f.keys = append(f.keys, key)
}

// Len returns the encoded frame length.
func (f *FrameBuf) Len() int { return len(f.b) }

// Refs returns the current reference count; a debugging and test aid, racy
// by nature against concurrent holders.
func (f *FrameBuf) Refs() int32 { return f.refs.Load() }

// AppendBytes appends p to the frame. Only the sole owner (refcount one,
// before any handoff) may grow a frame; sessions encode through
// encodeEnvelope instead.
func (f *FrameBuf) AppendBytes(p []byte) { f.b = append(f.b, p...) }

// Retain adds a reference. The caller must already hold one (a buffer at
// zero may be back in the pool).
func (f *FrameBuf) Retain() {
	if f.refs.Add(1) <= 1 {
		panic("core: FrameBuf retained after release")
	}
}

// Release drops one reference; the last release returns a pooled buffer to
// the pool (poisoning it first under the framedebug tag). Releasing below
// zero panics: every Retain pairs with exactly one Release.
func (f *FrameBuf) Release() {
	n := f.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("core: FrameBuf over-released")
	}
	if f.unpooled {
		return
	}
	poisonFrame(f.b)
	if cap(f.b) > maxPooledFrame {
		f.b = nil
	}
	// Clear key strings so a pooled buffer cannot pin them; the slice
	// capacity itself is the reusable asset.
	for i := range f.keys {
		f.keys[i] = ""
	}
	f.keys = f.keys[:0]
	framePool.Put(f)
}

// releaseFrames releases every frame in frames and nils the slots so a
// reused scratch slice cannot pin buffers.
func releaseFrames(frames []*FrameBuf) {
	for i := range frames {
		frames[i].Release()
		frames[i] = nil
	}
}
