package core

import (
	"sync"
	"sync/atomic"
)

// FrameBuf is a pooled, refcounted envelope buffer: the allocation unit of
// the broadcast hot path. A broadcast encodes its envelope once into a
// FrameBuf drawn from a sync.Pool, then every consumer — each client queue
// slot, the journal tap, a writer mid-drain — holds its own reference. The
// last Release returns the buffer to the pool, so the steady-state fan-out
// cost is refcount arithmetic, not allocation: encode-once becomes
// allocate-rarely.
//
// Ownership discipline (the lifetime rules the -race stress tests guard):
//
//   - GetFrame returns a buffer the caller owns with one reference.
//   - A holder that keeps the buffer past a call boundary takes its own
//     reference with Retain before the handoff returns, and pairs it with
//     exactly one Release when done. frameRing.push retains internally;
//     JournalSink implementations retain inside Record.
//   - Bytes must not be read after the holder's Release, and never mutated
//     after the first handoff. The framedebug build tag enforces the former
//     by poisoning buffers on their way back to the pool.
//
// Release panics on over-release in every build; retain-after-free and
// read-after-release are detected under the framedebug tag (see
// framebuf_debug.go).
type FrameBuf struct {
	b    []byte
	refs atomic.Int32
	// keys are the interest keys of the encoded envelope — sample channel
	// names or updated parameter names — so asynchronous consumers (relay
	// workers) can match the frame against a client's interest set without
	// re-decoding it. Empty means the frame is not interest-filtered and
	// goes to everyone. The slice rides the pooled buffer (capacity reused,
	// strings cleared on release) under the same lifetime rules as b.
	keys []string
	// unpooled marks wrapper frames (NewFrame) whose bytes the pool must
	// never recycle or poison: the caller owns the backing array.
	unpooled bool
	// minProto, when non-zero, is the lowest protocol version whose decoder
	// understands this frame; fan-out (inline and relay) skips clients
	// attached below it instead of killing their read loops with an unknown
	// message type. Zero — every frame class that predates v5 — delivers to
	// everyone.
	minProto uint32
}

// maxPooledFrame bounds the capacity a buffer may keep when it returns to
// the pool; a one-off giant sample must not pin its arena forever.
const maxPooledFrame = 1 << 20

// frameClassCaps are the pool size-class ceilings. One pool served fine
// while every broadcast was a ~100-byte sample, but the blob frame class
// mixes 64KB–1MB pixel payloads into the same traffic: a shared pool would
// thrash — a control broadcast grabs a megabyte arena and pins it for a
// 200-byte ack's lifetime, or a pixel frame draws a small buffer and
// reallocs — so buffers are classed by capacity. Get rounds a cold refill
// up to its class ceiling, and Release files the buffer under the class its
// actual capacity fits, so growth migrates buffers upward instead of
// wasting them.
var frameClassCaps = [...]int{4 << 10, 64 << 10, 256 << 10, maxPooledFrame}

var framePools [len(frameClassCaps)]sync.Pool

func init() {
	for i := range framePools {
		framePools[i].New = func() any { return new(FrameBuf) }
	}
}

// frameClassFor returns the index of the smallest size class holding n
// bytes, or -1 when n exceeds every ceiling (the buffer is unpoolable).
//
//steer:hotpath
func frameClassFor(n int) int {
	for i, c := range frameClassCaps {
		if n <= c {
			return i
		}
	}
	return -1
}

// GetFrame returns a pooled buffer with one reference and at least capHint
// capacity, drawn from the smallest size class that holds it. Exported for
// tests and in-process sinks; sessions draw every broadcast frame from
// here.
//
//steer:hotpath
func GetFrame(capHint int) *FrameBuf {
	cls := frameClassFor(capHint)
	pool := cls
	if pool < 0 {
		// Oversize request: borrow a struct from the top class; Release will
		// drop the arena rather than pool it.
		pool = len(frameClassCaps) - 1
	}
	fb := framePools[pool].Get().(*FrameBuf)
	if cap(fb.b) < capHint {
		// Round a cold refill up to the class ceiling so the buffer serves
		// any request in its class without reallocating.
		c := capHint
		if cls >= 0 {
			c = frameClassCaps[cls]
		}
		//steer:allow hotpathalloc cold pool-refill branch; a warm pool reuses capacity and the benchmarks hold 0 allocs/op
		fb.b = make([]byte, 0, c)
	}
	fb.b = fb.b[:0]
	fb.keys = fb.keys[:0]
	fb.minProto = 0
	fb.refs.Store(1)
	return fb
}

// NewFrame wraps caller-owned bytes in an unpooled FrameBuf with one
// reference: the refcount protocol without the pool (recovery frames, test
// fixtures). Release never recycles or poisons it.
func NewFrame(b []byte) *FrameBuf {
	fb := &FrameBuf{b: b, unpooled: true}
	fb.refs.Store(1)
	return fb
}

// Bytes returns the encoded frame. Valid only while the caller holds a
// reference; never mutate it.
func (f *FrameBuf) Bytes() []byte { return f.b }

// Keys returns the frame's interest keys (see the field doc); same lifetime
// rules as Bytes.
func (f *FrameBuf) Keys() []string { return f.keys }

// setKeys records the frame's interest keys, reusing the slice capacity a
// pooled buffer already carries. Only the sole owner (before any handoff)
// may set keys, under the same rule as AppendBytes.
func (f *FrameBuf) setKeys(keys []string) {
	f.keys = append(f.keys[:0], keys...)
}

// appendKey adds one interest key; same ownership rule as setKeys.
func (f *FrameBuf) appendKey(key string) {
	f.keys = append(f.keys, key)
}

// Len returns the encoded frame length.
func (f *FrameBuf) Len() int { return len(f.b) }

// Refs returns the current reference count; a debugging and test aid, racy
// by nature against concurrent holders.
func (f *FrameBuf) Refs() int32 { return f.refs.Load() }

// AppendBytes appends p to the frame. Only the sole owner (refcount one,
// before any handoff) may grow a frame; sessions encode through
// encodeEnvelope instead.
func (f *FrameBuf) AppendBytes(p []byte) { f.b = append(f.b, p...) }

// Retain adds a reference. The caller must already hold one (a buffer at
// zero may be back in the pool).
func (f *FrameBuf) Retain() {
	if f.refs.Add(1) <= 1 {
		panic("core: FrameBuf retained after release")
	}
}

// Release drops one reference; the last release returns a pooled buffer to
// the pool (poisoning it first under the framedebug tag). Releasing below
// zero panics: every Retain pairs with exactly one Release.
func (f *FrameBuf) Release() {
	n := f.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("core: FrameBuf over-released")
	}
	if f.unpooled {
		return
	}
	poisonFrame(f.b)
	// File the buffer under the class its actual capacity fits — a buffer
	// grown past its birth class migrates up — and drop arenas no class
	// holds so a one-off giant frame cannot pin its memory forever.
	cls := frameClassFor(cap(f.b))
	if cls < 0 {
		f.b = nil
		cls = 0
	}
	// Clear key strings so a pooled buffer cannot pin them; the slice
	// capacity itself is the reusable asset.
	for i := range f.keys {
		f.keys[i] = ""
	}
	f.keys = f.keys[:0]
	f.minProto = 0
	framePools[cls].Put(f)
}

// releaseFrames releases every frame in frames and nils the slots so a
// reused scratch slice cannot pin buffers.
func releaseFrames(frames []*FrameBuf) {
	for i := range frames {
		frames[i].Release()
		frames[i] = nil
	}
}
