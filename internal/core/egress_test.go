// Vectored egress tests (PR 9): the capability probe, the hybrid
// coalesce/zero-copy split, failure handling on short writes and expired
// deadlines, the DrainBatch scratch scrub, and the cross-conn delivery
// matrix. Run with and without -tags framedebug — the failure tests lean on
// poison-on-release to catch any iovec aliasing a released frame.
package core

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// vecDiscardConn is a discardConn that advertises the vectored-write
// capability: WriteBuffers consumes the whole batch like a kernel writev
// would, without moving a byte.
type vecDiscardConn struct{ discardConn }

func (vecDiscardConn) WriteBuffers(v *net.Buffers) (int64, error) {
	var n int64
	for _, b := range *v {
		n += int64(len(b))
	}
	*v = (*v)[:0]
	return n, nil
}

// captureConn records each vectored batch: the iovec count as handed over
// and the concatenated bytes, so tests can assert both the hybrid split and
// byte-exact output.
type captureConn struct {
	discardConn
	mu      sync.Mutex
	batches [][]int // iovec entry lengths per WriteBuffers call
	data    bytes.Buffer
}

func (c *captureConn) WriteBuffers(v *net.Buffers) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	var lens []int
	for _, b := range *v {
		lens = append(lens, len(b))
		c.data.Write(b)
		n += int64(len(b))
	}
	c.batches = append(c.batches, lens)
	*v = (*v)[:0]
	return n, nil
}

// shortWriteConn accepts limit bytes across vectored writes, then fails:
// the mid-batch short-write shape of a peer that died with data in flight.
type shortWriteConn struct {
	discardConn
	limit int
}

func (c *shortWriteConn) WriteBuffers(v *net.Buffers) (int64, error) {
	var n int64
	for len(*v) > 0 {
		b := (*v)[0]
		take := len(b)
		if n+int64(take) > int64(c.limit) {
			take = c.limit - int(n)
			if take > 0 {
				(*v)[0] = b[take:]
				n += int64(take)
			}
			return n, errors.New("egress_test: short write")
		}
		n += int64(take)
		(*v)[0] = nil
		*v = (*v)[1:]
	}
	return n, nil
}

// stallConn blocks inside the vectored write until the write deadline set
// by the codec expires: the mid-WriteTo stall of a wedged peer.
type stallConn struct {
	discardConn
	mu       sync.Mutex
	deadline chan struct{} // closed when a write deadline fires
}

func newStallConn() *stallConn { return &stallConn{deadline: make(chan struct{})} }

func (c *stallConn) SetWriteDeadline(t time.Time) error {
	if t.IsZero() {
		return nil
	}
	c.mu.Lock()
	ch := c.deadline
	c.mu.Unlock()
	go func() {
		time.Sleep(time.Until(t))
		select {
		case <-ch:
		default:
			close(ch)
		}
	}()
	return nil
}

func (c *stallConn) WriteBuffers(v *net.Buffers) (int64, error) {
	c.mu.Lock()
	ch := c.deadline
	c.mu.Unlock()
	<-ch
	return 0, os.ErrDeadlineExceeded
}

// opaqueConn hides every capability of the conn it wraps — no io.ReaderFrom,
// no BuffersWriter, no concrete *net.TCPConn — which is what middleware that
// wraps conns without forwarding optional interfaces looks like.
type opaqueConn struct{ inner net.Conn }

func (c opaqueConn) Read(p []byte) (int, error)         { return c.inner.Read(p) }
func (c opaqueConn) Write(p []byte) (int, error)        { return c.inner.Write(p) }
func (c opaqueConn) Close() error                       { return c.inner.Close() }
func (c opaqueConn) LocalAddr() net.Addr                { return c.inner.LocalAddr() }
func (c opaqueConn) RemoteAddr() net.Addr               { return c.inner.RemoteAddr() }
func (c opaqueConn) SetDeadline(t time.Time) error      { return c.inner.SetDeadline(t) }
func (c opaqueConn) SetReadDeadline(t time.Time) error  { return c.inner.SetReadDeadline(t) }
func (c opaqueConn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

func TestProbeVectored(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()
	tcp, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	p1, p2 := net.Pipe()
	defer p1.Close()
	defer p2.Close()

	cases := []struct {
		name string
		conn net.Conn
		want bool
	}{
		{"tcp", tcp, true},
		{"pipe", p1, false},
		{"opaque-tcp", opaqueConn{tcp}, false},
		{"buffers-writer", vecDiscardConn{}, true},
		{"discard", discardConn{}, false},
	}
	for _, tc := range cases {
		if got := probeVectored(tc.conn); got != tc.want {
			t.Errorf("probeVectored(%s) = %v, want %v", tc.name, got, tc.want)
		}
		if got := newCodec(tc.conn).vectored; got != tc.want {
			t.Errorf("newCodec(%s).vectored = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestWriteBatchVectoredBytes pins the hybrid policy: byte-exact output in
// batch order, small-frame runs coalesced into shared iovec entries, large
// frames as their own entries, and the egress counters accounting for it.
func TestWriteBatchVectoredBytes(t *testing.T) {
	conn := &captureConn{}
	c := newCodec(conn)
	if !c.vectored {
		t.Fatal("captureConn should probe vectored")
	}
	c.coalesce = 16
	var egr egressStats
	c.egr = &egr

	frame := func(n int, fill byte) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = fill
		}
		return b
	}
	// small, small, LARGE, small, LARGE, LARGE, small → iovecs:
	// [8](small+small) [32] [4] [64] [32] [8]
	batch := [][]byte{
		frame(4, 'a'), frame(4, 'b'), frame(32, 'C'),
		frame(4, 'd'), frame(64, 'E'), frame(32, 'F'), frame(8, 'g'),
	}
	var want bytes.Buffer
	for _, b := range batch {
		want.Write(b)
	}
	if err := c.writeBatch(batch, time.Second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(conn.data.Bytes(), want.Bytes()) {
		t.Fatalf("vectored output differs from batch concatenation:\n got %q\nwant %q",
			conn.data.Bytes(), want.Bytes())
	}
	if len(conn.batches) != 1 {
		t.Fatalf("want 1 vectored batch, got %d", len(conn.batches))
	}
	wantLens := []int{8, 32, 4, 64, 32, 8}
	if fmt.Sprint(conn.batches[0]) != fmt.Sprint(wantLens) {
		t.Fatalf("iovec layout = %v, want %v (coalesced runs + zero-copy entries)", conn.batches[0], wantLens)
	}
	if got := egr.batchesVectored.Load(); got != 1 {
		t.Errorf("batchesVectored = %d, want 1", got)
	}
	if got := egr.framesCoalesced.Load(); got != 4 {
		t.Errorf("framesCoalesced = %d, want 4", got)
	}
	if got := egr.bytesCoalesced.Load(); got != 20 {
		t.Errorf("bytesCoalesced = %d, want 20", got)
	}
	if got := egr.bytesZeroCopy.Load(); got != 128 {
		t.Errorf("bytesZeroCopy = %d, want 128", got)
	}
	// Scratches must not pin batch or gather memory between writes.
	for i, b := range c.iov {
		if b != nil {
			t.Errorf("iov[%d] not scrubbed after write", i)
		}
	}
	if c.vec != nil {
		t.Error("vec header not cleared after write")
	}

	// Coalescing disabled: every frame its own iovec entry.
	conn2 := &captureConn{}
	c2 := newCodec(conn2)
	c2.coalesce = -1
	if err := c2.writeBatch(batch, time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(conn2.batches[0]); got != len(batch) {
		t.Fatalf("coalesce<0: %d iovec entries, want %d (one per frame)", got, len(batch))
	}
}

// drainFixture admits one welcomed client over conn with an inline writer
// and queues n retained frames; the caller drains and asserts.
func drainFixture(t *testing.T, conn net.Conn, n int) (*Session, *ClientHandle, []*FrameBuf) {
	t.Helper()
	s := NewSession(SessionConfig{
		Name: "egress", SampleQueue: 64,
		Writer: &inlineWriter{batch: 64, timeout: time.Second},
	})
	t.Cleanup(s.Close)
	cc, err := s.admit(&attachMsg{Name: "victim"}, newCodec(conn))
	if err != nil {
		t.Fatal(err)
	}
	cc.welcomed.Store(true)
	frames := make([]*FrameBuf, n)
	for i := range frames {
		payload := bytes.Repeat([]byte{byte('A' + i)}, 256+i*512)
		frames[i] = NewFrame(payload) // test holds its own reference
		cc.out.push(frames[i])        // ring retains a second one
	}
	return s, cc.handle, frames
}

// TestDrainBatchShortWrite: a conn that accepts part of the batch and then
// errors must leave the client marked gone with every queued frame
// reference released (under framedebug, a leaked iovec alias of a released
// pooled frame would trip the poison instead).
func TestDrainBatchShortWrite(t *testing.T) {
	_, h, frames := drainFixture(t, &shortWriteConn{limit: 700}, 4)
	wrote, more, err := h.DrainBatch(16, time.Second)
	if err == nil {
		t.Fatal("want short-write error from DrainBatch")
	}
	if wrote != 0 || more {
		t.Fatalf("failed drain reported wrote=%d more=%v, want 0,false", wrote, more)
	}
	select {
	case <-h.Gone():
	default:
		t.Fatal("client not marked gone after short write")
	}
	for i, fb := range frames {
		if got := fb.Refs(); got != 1 {
			t.Errorf("frame %d: %d refs after failed drain, want 1 (test's own)", i, got)
		}
		fb.Release()
	}
	if err := h.cc.codec.conn.SetDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
}

// TestDrainBatchDeadlineExpiry: a conn stalling mid-vectored-write until
// the write deadline fires must produce the same clean death.
func TestDrainBatchDeadlineExpiry(t *testing.T) {
	_, h, frames := drainFixture(t, newStallConn(), 3)
	_, _, err := h.DrainBatch(16, 30*time.Millisecond)
	if err == nil {
		t.Fatal("want deadline error from DrainBatch")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	select {
	case <-h.Gone():
	default:
		t.Fatal("client not marked gone after deadline expiry")
	}
	for i, fb := range frames {
		if got := fb.Refs(); got != 1 {
			t.Errorf("frame %d: %d refs after stalled drain, want 1", i, got)
		}
		fb.Release()
	}
}

// TestDrainBatchScratchScrubbed: after a drain — success or failure — the
// handle's reusable scratch must hold no *FrameBuf (and no frame bytes)
// across its full backing capacity, so released pool buffers are never
// pinned reachable between drains.
func TestDrainBatchScratchScrubbed(t *testing.T) {
	_, h, frames := drainFixture(t, vecDiscardConn{}, 6)
	if _, _, err := h.DrainBatch(16, time.Second); err != nil {
		t.Fatal(err)
	}
	if len(h.frames) != 0 || len(h.bufs) != 0 {
		t.Fatalf("scratch lengths after drain: frames=%d bufs=%d, want 0,0", len(h.frames), len(h.bufs))
	}
	full := h.frames[:cap(h.frames)]
	for i, fb := range full {
		if fb != nil {
			t.Errorf("frames scratch slot %d pins %p past the drain", i, fb)
		}
	}
	fullBufs := h.bufs[:cap(h.bufs)]
	for i, b := range fullBufs {
		if b != nil {
			t.Errorf("bufs scratch slot %d pins frame bytes past the drain", i)
		}
	}
	for _, fb := range frames {
		if got := fb.Refs(); got != 1 {
			t.Errorf("frame refs = %d after drain, want 1", got)
		}
		fb.Release()
	}
}

// TestEgressCrossConnMatrix runs the identical broadcast storm over
// loopback TCP, net.Pipe and a capability-hiding wrapper around TCP, and
// asserts (a) the capability probe routes each conn to the right path —
// writev for TCP, buffered fallback for the other two — and (b) the
// delivered byte stream is identical across all three, so the hybrid
// coalesce/zero-copy split can never reorder or corrupt frames.
func TestEgressCrossConnMatrix(t *testing.T) {
	const samples = 16

	run := func(t *testing.T, serverConn, clientConn net.Conn, wantVectored bool) []byte {
		s := NewSession(SessionConfig{Name: "matrix", SampleQueue: 64})
		defer s.Close()
		go s.ServeConn(serverConn)

		attach, err := encodeEnvelope(nil, &envelope{Type: msgAttach, Seq: 1, Attach: &attachMsg{Name: "mx"}})
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var got bytes.Buffer
		done := make(chan struct{})
		go func() {
			defer close(done)
			buf := make([]byte, 32<<10)
			for {
				n, err := clientConn.Read(buf)
				mu.Lock()
				got.Write(buf[:n])
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}()
		if _, err := clientConn.Write(attach); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "client admitted", func() bool { return s.ClientCount() == 1 })

		st := s.Steered()
		small := NewSample(1)
		small.Channels["tick"] = Scalar(0.5)
		big := NewSample(2)
		big.Channels["field"] = Channel{Dims: [3]int{512, 1, 1}, Data: make([]float64, 512)}
		for i := 0; i < samples; i++ {
			if i%4 == 3 {
				st.Emit(big) // > coalesce threshold: its own zero-copy iovec
			} else {
				st.Emit(small) // tiny: gathered into the shared iovec
			}
		}
		waitFor(t, "samples delivered", func() bool {
			return s.Stats().SamplesDelivered >= samples
		})
		// Quiesce: the dedicated writer has flushed once the client-side
		// stream stops growing with all frames delivered.
		last := -1
		waitFor(t, "stream quiescent", func() bool {
			mu.Lock()
			n := got.Len()
			mu.Unlock()
			if n != last {
				last = n
				return false
			}
			return n > 0
		})
		stats := s.Stats()
		if wantVectored && (stats.EgressBatchesVectored == 0 || stats.EgressBatchesBuffered != 0) {
			t.Errorf("vectored conn took the wrong path: vectored=%d buffered=%d",
				stats.EgressBatchesVectored, stats.EgressBatchesBuffered)
		}
		if !wantVectored && stats.EgressBatchesVectored != 0 {
			t.Errorf("non-vectored conn hit the writev path: vectored=%d", stats.EgressBatchesVectored)
		}
		s.Close()
		select {
		case <-done:
		case <-time.After(3 * time.Second):
			t.Fatal("client stream did not close after session close")
		}
		mu.Lock()
		defer mu.Unlock()
		return append([]byte(nil), got.Bytes()...)
	}

	tcpPair := func(t *testing.T) (net.Conn, net.Conn) {
		t.Helper()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		type res struct {
			c   net.Conn
			err error
		}
		ch := make(chan res, 1)
		go func() {
			c, err := l.Accept()
			ch <- res{c, err}
		}()
		client, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		r := <-ch
		if r.err != nil {
			t.Fatal(r.err)
		}
		return r.c, client
	}

	var streams = map[string][]byte{}
	t.Run("tcp", func(t *testing.T) {
		server, client := tcpPair(t)
		streams["tcp"] = run(t, server, client, true)
	})
	t.Run("pipe", func(t *testing.T) {
		server, client := net.Pipe()
		streams["pipe"] = run(t, server, client, false)
	})
	t.Run("opaque", func(t *testing.T) {
		server, client := tcpPair(t)
		streams["opaque"] = run(t, opaqueConn{server}, client, false)
	})

	ref := streams["tcp"]
	if len(ref) == 0 {
		t.Fatal("tcp transport recorded no bytes")
	}
	for name, b := range streams {
		if !bytes.Equal(b, ref) {
			t.Errorf("%s stream differs from tcp stream: %d vs %d bytes", name, len(b), len(ref))
		}
	}
}

// TestEgressWritevAllocFree pins both hybrid branches to zero steady-state
// allocations: a batch of coalesced small frames and a batch of zero-copy
// large frames (plus a mixed one) must reuse the codec's iovec and gather
// scratch entirely.
func TestEgressWritevAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode instrumentation allocates; zero-alloc holds only without -race")
	}
	c := newCodec(vecDiscardConn{})
	small := make([][]byte, 16)
	for i := range small {
		small[i] = make([]byte, 256)
	}
	large := make([][]byte, 8)
	for i := range large {
		large[i] = make([]byte, 64<<10)
	}
	mixed := append(append([][]byte{}, small[:8]...), large[:4]...)
	for _, batch := range [][][]byte{small, large, mixed} {
		batch := batch
		for i := 0; i < 8; i++ { // warm the scratches
			if err := c.writeBatch(batch, 0); err != nil {
				t.Fatal(err)
			}
		}
		avg := testing.AllocsPerRun(200, func() {
			if err := c.writeBatch(batch, 0); err != nil {
				t.Fatal(err)
			}
		})
		if avg > 0.05 {
			t.Fatalf("vectored writeBatch allocates %.3f allocs/op, want 0", avg)
		}
	}
}
