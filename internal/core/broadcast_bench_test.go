// Broadcast hot-path benchmarks (experiment H2, DESIGN.md §4.1): the
// steady-state cost of fanning one sample out to N clients with the pooled
// refcounted envelope buffers, RCU client snapshots and ring-buffer client
// queues. BenchmarkBroadcastHotPath must report ~0 allocs/op after warmup —
// the frame pool, the handle drain scratch and the stack-scratch sample
// encoder leave nothing per-op — and should scale with -cpu 1,4,16 (no
// session lock on the path). BenchmarkBroadcastContention is the 64
// sessions × 64 clients shape, emitters racing across every session.
package core

import (
	"fmt"
	"net"
	"testing"
	"time"
)

// discardConn is a net.Conn whose writes vanish: the benchmarks measure
// encode + enqueue + drain, not a kernel socket.
type discardConn struct{}

func (discardConn) Read(p []byte) (int, error)         { return 0, net.ErrClosed }
func (discardConn) Write(p []byte) (int, error)        { return len(p), nil }
func (discardConn) Close() error                       { return nil }
func (discardConn) LocalAddr() net.Addr                { return discardAddr{} }
func (discardConn) RemoteAddr() net.Addr               { return discardAddr{} }
func (discardConn) SetDeadline(t time.Time) error      { return nil }
func (discardConn) SetReadDeadline(t time.Time) error  { return nil }
func (discardConn) SetWriteDeadline(t time.Time) error { return nil }

type discardAddr struct{}

func (discardAddr) Network() string { return "discard" }
func (discardAddr) String() string  { return "discard" }

// inlineWriter is a WriterScheduler that drains on the notifying goroutine:
// deterministic, no scheduler latency, and the drain cost lands inside the
// measured op. The edge trigger serialises drains per client exactly as the
// hub's pool does.
type inlineWriter struct {
	batch   int
	timeout time.Duration
}

func (w *inlineWriter) ClientReady(h *ClientHandle) {
	for h.MarkScheduled() {
		_, more, err := h.DrainBatch(w.batch, w.timeout)
		h.ClearScheduled()
		if err != nil || !more {
			return
		}
	}
}

func (w *inlineWriter) ClientClosed(*ClientHandle) {}

// benchBroadcastSession builds a session with n admitted, welcomed clients
// on discard conns, drained inline.
func benchBroadcastSession(tb testing.TB, n int) (*Session, *Steered) {
	tb.Helper()
	s := NewSession(SessionConfig{
		Name: "hotpath", SampleQueue: 64,
		Writer: &inlineWriter{batch: 64, timeout: time.Second},
	})
	for i := 0; i < n; i++ {
		cc, err := s.admit(&attachMsg{Name: fmt.Sprintf("c%03d", i)}, newCodec(discardConn{}))
		if err != nil {
			tb.Fatal(err)
		}
		cc.welcomed.Store(true)
	}
	return s, s.Steered()
}

func hotPathSample() *Sample {
	s := NewSample(1)
	s.Channels["phi"] = Channel{Dims: [3]int{8, 8, 4}, Data: make([]float64, 256)}
	s.Channels["seg"] = Scalar(0.7)
	return s
}

// BenchmarkBroadcastHotPath: one sample emission fanned to N clients,
// encode-once into a pooled buffer, ring enqueues, inline batched drain.
// Run with -benchmem (allocs/op must sit at ~0 after warmup) and
// -cpu 1,4,16 for the scaling story.
func BenchmarkBroadcastHotPath(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients=%d", n), func(b *testing.B) {
			s, st := benchBroadcastSession(b, n)
			defer s.Close()
			sample := hotPathSample()
			// Warm the frame pool and the drain scratch.
			for i := 0; i < 64; i++ {
				st.Emit(sample)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					st.Emit(sample)
				}
			})
		})
	}
}

// BenchmarkBroadcastContention is the many-session contention shape from
// the issue: 64 sessions × 64 clients, every benchmark goroutine emitting
// into all sessions round-robin. With RCU snapshots and atomic counters
// the only shared mutable state two emitters can meet on is a client ring.
func BenchmarkBroadcastContention(b *testing.B) {
	const sessions, clientsPer = 64, 64
	steered := make([]*Steered, sessions)
	for i := range steered {
		s, st := benchBroadcastSession(b, clientsPer)
		defer s.Close()
		steered[i] = st
		_ = s
	}
	sample := hotPathSample()
	for _, st := range steered {
		st.Emit(sample) // warm each session's pool path
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			steered[i%sessions].Emit(sample)
			i++
		}
	})
	b.StopTimer()
	var delivered, dropped uint64
	for _, st := range steered {
		stats := st.s.Stats()
		delivered += stats.SamplesDelivered
		dropped += stats.SamplesDropped
	}
	if total := delivered + dropped; total > 0 {
		b.ReportMetric(float64(delivered)/float64(total), "delivered_frac")
	}
}

// BenchmarkBroadcastContention1k is the collaboration-scaling shape two
// orders past the paper's handful of participants: a single session fanning
// every emission out to 1024 observers. One emitter per benchmark goroutine
// measures the pure fan-out cost — encode once, 1024 ring enqueues, inline
// batched drains — with no cross-session sharding to hide behind.
func BenchmarkBroadcastContention1k(b *testing.B) {
	const clients = 1024
	s, st := benchBroadcastSession(b, clients)
	defer s.Close()
	sample := hotPathSample()
	for i := 0; i < 16; i++ {
		st.Emit(sample) // warm the pool and every client's drain scratch
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			st.Emit(sample)
		}
	})
	b.StopTimer()
	stats := s.Stats()
	if total := stats.SamplesDelivered + stats.SamplesDropped; total > 0 {
		b.ReportMetric(float64(stats.SamplesDelivered)/float64(total), "delivered_frac")
	}
}

// benchInterestSession builds a session with n admitted observers at the
// given tier: an interest fraction of them subscribed to the emitted "phi"
// channel, the rest to a channel that never appears. Admission goes through
// admitLocked with one snapshot rebuild at the end, so a 100k fleet costs
// O(n), not O(n²).
func benchInterestSession(tb testing.TB, n int, interest float64, tier Tier) (*Session, *Steered) {
	tb.Helper()
	s := NewSession(SessionConfig{
		Name: "interest", SampleQueue: 64,
		Writer:           &inlineWriter{batch: 64, timeout: time.Second},
		ObserverInterval: -1, // flush immediately: no ticker noise under the benchmark
	})
	interested := int(float64(n) * interest)
	if interested < 1 {
		interested = 1
	}
	s.mu.Lock()
	for i := 0; i < n; i++ {
		subs := []Subscription{ChannelSub("phi")}
		if i >= interested {
			subs = []Subscription{ChannelSub("cold")}
		}
		cc, err := s.admitLocked(&attachMsg{
			Name: fmt.Sprintf("o%06d", i), Tier: tier, Subs: subs,
		}, newCodec(discardConn{}))
		if err != nil {
			s.mu.Unlock()
			tb.Fatal(err)
		}
		cc.welcomed.Store(true)
	}
	s.rebuildClientsLocked()
	s.mu.Unlock()
	return s, s.Steered()
}

// BenchmarkBroadcastInterest extends BenchmarkBroadcastContention1k across
// the interest-management tentpole: the same emission measured against a
// subscribe-all steering-tier audience (the session walks every ring
// inline — the pre-PR-8 shape) and against an observer-tier audience at 1%
// interest (the session hands the frame to the relay workers and moves on).
// The steering mode's ns/op grows linearly with the audience; the observer
// mode's must stay roughly flat — the session goroutine pays O(workers),
// not O(observers) — and both must hold 0 allocs/op.
func BenchmarkBroadcastInterest(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		for _, mode := range []struct {
			name     string
			tier     Tier
			interest float64
		}{
			{"steer-all", TierSteering, 1.0},
			{"obs-1pct", TierObserver, 0.01},
		} {
			b.Run(fmt.Sprintf("observers=%d/mode=%s", n, mode.name), func(b *testing.B) {
				s, st := benchInterestSession(b, n, mode.interest, mode.tier)
				defer s.Close()
				sample := hotPathSample()
				for i := 0; i < 32; i++ {
					st.Emit(sample) // warm the pool, the keys scratch and the rings
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					st.Emit(sample)
				}
			})
		}
	}
}

// TestBroadcastInterestAllocFree pins the observer-tier emission to the
// same zero-alloc invariant as the steering hot path: publishing a frame to
// the relay workers — interest keys included — must not allocate in steady
// state. The warmup must exceed relayQueue: frames park in the worker's
// input ring until it is full, and only then does every further publish
// recycle an evicted frame through the pool.
func TestBroadcastInterestAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode drops sync.Pool puts; zero-alloc holds only without -race")
	}
	s, st := benchInterestSession(t, 1024, 0.01, TierObserver)
	defer s.Close()
	sample := hotPathSample()
	for i := 0; i < 2*relayQueue; i++ {
		st.Emit(sample)
	}
	avg := testing.AllocsPerRun(500, func() {
		st.Emit(sample)
	})
	if avg > 0.1 {
		t.Fatalf("observer-tier broadcast allocates %.3f allocs/op, want ~0", avg)
	}
	if st.s.Stats().RelayPublished == 0 {
		t.Fatal("relay published nothing — observer fan-out never engaged")
	}
}

// TestBroadcastContention1kAllocFree extends the PR 4 zero-alloc invariant
// to the 1k-observer case: fan-out cost may scale with the audience, but
// allocation must not — the pooled buffers and ring queues hold at three
// orders of magnitude too.
func TestBroadcastContention1kAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode drops sync.Pool puts; zero-alloc holds only without -race")
	}
	s, st := benchBroadcastSession(t, 1024)
	defer s.Close()
	sample := hotPathSample()
	for i := 0; i < 32; i++ {
		st.Emit(sample)
	}
	avg := testing.AllocsPerRun(100, func() {
		st.Emit(sample)
	})
	if avg > 0.1 {
		t.Fatalf("1k-observer broadcast allocates %.3f allocs/op, want ~0", avg)
	}
}

// TestBroadcastHotPathAllocFree enforces the tentpole claim as a test, not
// just a benchmark report: a steady-state sample broadcast to 4 clients —
// including its inline batched drain — performs (amortised) zero heap
// allocations. The small tolerance absorbs sync.Pool refills after the GC
// cycles AllocsPerRun forces.
func TestBroadcastHotPathAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode drops sync.Pool puts; zero-alloc holds only without -race")
	}
	s, st := benchBroadcastSession(t, 4)
	defer s.Close()
	sample := hotPathSample()
	for i := 0; i < 128; i++ {
		st.Emit(sample) // warm pool + scratch
	}
	avg := testing.AllocsPerRun(500, func() {
		st.Emit(sample)
	})
	if avg > 0.1 {
		t.Fatalf("broadcast hot path allocates %.3f allocs/op, want ~0", avg)
	}
}
