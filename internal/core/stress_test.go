package core

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBroadcastStressAttachDetach is the -race guard for the zero-copy
// broadcast path's lifetime rules: 8 writer goroutines (4 emitting samples,
// 4 broadcasting events) hammer a session over real TCP while clients
// attach and detach and one client deliberately stalls (attaches, then
// never reads). The assertions are the two policies the ring buffers must
// carry over from the channel queues: drop-on-slow — the stalled client
// loses frames but never stalls an emitter — and freshest-wins — a live
// client's final received sample is the newest emission, not a stale
// prefix.
func TestBroadcastStressAttachDetach(t *testing.T) {
	s := NewSession(SessionConfig{
		Name: "stress", SampleQueue: 8, ControlTimeout: 500 * time.Millisecond,
	})
	defer s.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	st := s.Steered()

	// The stalled client: full handshake, then silence. Its server-side
	// rings fill and overwrite; its conn's send buffer eventually jams and
	// the write deadline declares it dead — either way no broadcast blocks.
	stalledConn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer stalledConn.Close()
	sc := newCodec(stalledConn)
	if err := sc.write(&envelope{Type: msgAttach, Attach: &attachMsg{Name: "stalled"}}, time.Second); err != nil {
		t.Fatal(err)
	}
	if first, err := sc.read(); err != nil || first.Type != msgWelcome {
		t.Fatalf("stalled client handshake: %v %v", first, err)
	}

	// A durable live client that survives the whole run and must converge.
	liveConn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	live, err := Attach(liveConn, AttachOptions{Name: "live", SampleBuffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()

	const writers = 8
	const perWriter = 400
	var lastStep atomic.Int64
	var stepSeq atomic.Int64
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if w%2 == 0 {
					step := stepSeq.Add(1)
					sample := NewSample(step)
					sample.Channels["x"] = Scalar(float64(step))
					st.Emit(sample)
					for {
						prev := lastStep.Load()
						if step <= prev || lastStep.CompareAndSwap(prev, step) {
							break
						}
					}
				} else {
					st.Event(fmt.Sprintf("w%d-%d", w, i))
				}
			}
		}(w)
	}

	// Churn: clients attach, read a little, detach — concurrently with the
	// writers, exercising the RCU snapshot swap against in-flight fan-outs.
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; i < 40; i++ {
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				return
			}
			c, err := Attach(conn, AttachOptions{Name: fmt.Sprintf("churn-%d", i)})
			if err != nil {
				continue
			}
			select {
			case <-c.Samples():
			case <-time.After(2 * time.Millisecond):
			}
			c.Close()
		}
	}()

	wg.Wait()
	<-churnDone

	// Drop-on-slow: the emitters finished (no deadlock behind the stalled
	// client) and the overwrites were counted.
	stats := s.Stats()
	if stats.SamplesEmitted != uint64(writers/2*perWriter) {
		t.Fatalf("emitted %d, want %d", stats.SamplesEmitted, writers/2*perWriter)
	}
	if stats.SamplesDropped == 0 {
		t.Fatal("no drops despite a stalled client and tiny queues")
	}
	if stats.SamplesDelivered == 0 {
		t.Fatal("nothing delivered")
	}

	// Freshest-wins: emit one final sample after the storm; the live client
	// must see it even though it lost intermediate ones. The final step is
	// strictly larger than anything emitted during the storm.
	finalStep := stepSeq.Add(1)
	finalSample := NewSample(finalStep)
	finalSample.Channels["x"] = Scalar(-1)
	st.Emit(finalSample)
	waitFor(t, "live client receives the freshest sample", func() bool {
		for {
			select {
			case got := <-live.Samples():
				if got.Step == finalStep {
					return true
				}
			default:
				return false
			}
		}
	})

	// The stalled client is eventually declared gone (deadline write) or
	// still attached with drops — either is legal; what is not legal is a
	// wedged session. A fresh attach must still complete promptly.
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Attach(conn, AttachOptions{Name: "post-storm", Timeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("session wedged after the storm: %v", err)
	}
	c.Close()
}

// TestBroadcastStressJournaled repeats a smaller storm on a journaled
// session: the attach barrier, the journal tap's retained buffers and the
// pre-welcome stash path all run under -race while late joiners attach
// mid-storm. Every surviving client must converge on the full event
// history, duplicate-free (the exactly-once guarantee, now with the replay
// copying frames out of the recycled mirror).
func TestBroadcastStressJournaled(t *testing.T) {
	sink := &memSink{}
	s, dial := testSession(t, SessionConfig{Journal: sink, SampleQueue: 8})
	st := s.Steered()

	const writers = 8
	const perWriter = 150
	var wg sync.WaitGroup
	wg.Add(writers)
	var eventSeq atomic.Int64
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if w%2 == 0 {
					sample := NewSample(int64(i))
					sample.Channels["x"] = Scalar(float64(i))
					st.Emit(sample)
				} else {
					st.Event(fmt.Sprintf("ev-%05d", eventSeq.Add(1)))
				}
			}
		}(w)
	}

	var clients []*Client
	for i := 0; i < 5; i++ {
		clients = append(clients, dial(AttachOptions{Name: fmt.Sprintf("late-%d", i)}))
		time.Sleep(time.Millisecond)
	}
	wg.Wait()

	total := int(eventSeq.Load())
	for i, c := range clients {
		c := c
		waitFor(t, fmt.Sprintf("journaled client %d full history", i), func() bool {
			return len(c.Events()) == total
		})
		seen := make(map[string]bool, total)
		for _, ev := range c.Events() {
			if seen[ev] {
				t.Fatalf("client %d saw %q twice", i, ev)
			}
			seen[ev] = true
		}
	}
}
