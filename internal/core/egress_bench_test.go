// BenchmarkEgressWritev measures the vectored egress path against the
// buffered fallback over a real loopback TCP connection with a draining
// peer. A real socket matters: bufio already passes large writes through
// uncopied, so the buffered fallback's cost on bulk payloads is almost
// entirely its one-syscall-per-frame shape — exactly what writev collapses
// — and a discard conn would hide it.
package core

import (
	"fmt"
	"net"
	"testing"
)

// benchTCPPair returns a loopback TCP client conn whose peer drains
// everything it receives; both ends close with the benchmark.
func benchTCPPair(b *testing.B) net.Conn {
	b.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		l.Close()
		b.Fatal(err)
	}
	r := <-ch
	l.Close()
	if r.err != nil {
		client.Close()
		b.Fatal(r.err)
	}
	// Drain with one large-buffer Read loop, not io.Copy(io.Discard, …):
	// io.Discard's ReadFrom pulls small chunks, and a slow peer puts the
	// same drain-rate floor under both paths, hiding the writev win.
	go func() {
		buf := make([]byte, 1<<20)
		for {
			if _, err := r.c.Read(buf); err != nil {
				return
			}
		}
	}()
	b.Cleanup(func() {
		client.Close()
		r.c.Close()
	})
	return client
}

func egressBatch(frames, size int) ([][]byte, int64) {
	batch := make([][]byte, frames)
	total := int64(0)
	for i := range batch {
		batch[i] = make([]byte, size)
		for j := range batch[i] {
			batch[i][j] = byte(i + j)
		}
		total += int64(size)
	}
	return batch, total
}

// The three batch shapes ISSUE 9 gates on: all-small (pure coalesce), mixed
// (both hybrid branches in one batch), and bulk 64KB payloads (pure
// zero-copy, 8 frames ≥ the acceptance floor's batch size).
func egressShapes() []struct {
	name  string
	batch [][]byte
	bytes int64
} {
	small, smallN := egressBatch(16, 256)
	mixedSmall, a := egressBatch(8, 256)
	mixedLarge, bb := egressBatch(8, 8<<10)
	mixed := append(append([][]byte{}, mixedSmall...), mixedLarge...)
	payload, payloadN := egressBatch(8, 64<<10)
	return []struct {
		name  string
		batch [][]byte
		bytes int64
	}{
		{"small", small, smallN},
		{"mixed", mixed, a + bb},
		{"payload64k", payload, payloadN},
	}
}

func BenchmarkEgressWritev(b *testing.B) {
	for _, shape := range egressShapes() {
		for _, path := range []string{"vectored", "buffered"} {
			b.Run(fmt.Sprintf("%s/%s", shape.name, path), func(b *testing.B) {
				c := newCodec(benchTCPPair(b))
				if path == "buffered" {
					c.vectored = false // force the pre-writev fallback on the same socket
				} else if !c.vectored {
					b.Fatal("loopback TCP conn did not probe vectored")
				}
				b.SetBytes(shape.bytes)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := c.writeBatch(shape.batch, 0); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
