//go:build framedebug

package core

import "testing"

// TestPoisonOnRelease (framedebug builds only): a pooled frame's bytes are
// overwritten the moment its last reference drops, so any holder that kept
// a raw []byte past its Release reads poison instead of silently racing
// the buffer's next user.
func TestPoisonOnRelease(t *testing.T) {
	if !FrameDebug {
		t.Fatal("framedebug tag not in effect")
	}
	fb := GetFrame(32)
	fb.AppendBytes([]byte("sensitive-frame-bytes"))
	leaked := fb.Bytes() // a contract violation, kept deliberately
	fb.Retain()
	fb.Release()
	for _, b := range leaked {
		if b == FramePoison {
			t.Fatal("frame poisoned while a reference was still held")
		}
	}
	fb.Release() // last reference: pool return + poison
	for i, b := range leaked {
		if b != FramePoison {
			t.Fatalf("byte %d = %#x after final release, want poison %#x", i, b, FramePoison)
		}
	}
}

// TestUnpooledFramesNeverPoisoned: NewFrame wraps caller-owned bytes; the
// pool must neither recycle nor poison them.
func TestUnpooledFramesNeverPoisoned(t *testing.T) {
	raw := []byte("caller-owned")
	fb := NewFrame(raw)
	fb.Release()
	if raw[0] == FramePoison {
		t.Fatal("unpooled frame poisoned")
	}
}
