package core

import (
	"runtime"
	"time"
)

// Observer-tier fan-out: the session goroutine hands each sample frame to a
// small pool of relay workers instead of walking every observer itself —
// internal/netsim/mcast.go's replicate-at-the-fabric idea promoted into the
// real delivery path. Each worker owns a stride of the observer RCU
// snapshot (obsView[i] where i % workers == idx), so one steer frame costs
// the session O(workers) ring pushes and the per-observer work — interest
// match, queue push, writer wakeup — runs off the hot goroutine at
// O(observers / workers) per worker.
//
// The worker's input queue is a frameRing: under overload its drop-oldest
// overwrite coalesces the backlog before fan-out even starts, and each
// observer's own sample ring coalesces again between writer wakeups. With a
// positive ObserverInterval the worker wakes writers only on that cadence,
// so a slow observer reads freshest-wins batches instead of every frame.

// relayQueue bounds a worker's input ring; beyond it the oldest undelivered
// frame is coalesced away (observers want freshest, not complete).
const relayQueue = 256

// defaultObserverInterval is the observer coalescing cadence when the
// config leaves it zero.
const defaultObserverInterval = 25 * time.Millisecond

// defaultFanoutWorkers resolves FanoutWorkers = 0.
func defaultFanoutWorkers() int {
	if n := runtime.GOMAXPROCS(0); n < 4 {
		return n
	}
	return 4
}

// relay is the started worker pool; the Session holds it behind an
// atomic.Pointer, created lazily under s.mu by the first observer admit.
type relay struct {
	s       *Session
	workers []*relayWorker
}

type relayWorker struct {
	s *Session
	// idx/n define the worker's stride over the observer snapshot.
	idx, n int
	// in is the worker's input queue; pushes retain, drains transfer the
	// references to the worker.
	in *frameRing
	// ready is the capacity-1 wakeup token, same shape as a dedicated
	// client writer's.
	ready chan struct{}
}

// ensureRelayLocked starts the pool on the first observer-tier admit; the
// caller holds s.mu. Sessions without observers never pay for the
// goroutines.
func (s *Session) ensureRelayLocked() {
	if s.relay.Load() != nil {
		return
	}
	n := s.cfg.FanoutWorkers
	if n <= 0 {
		n = 1
	}
	rl := &relay{s: s, workers: make([]*relayWorker, n)}
	for i := range rl.workers {
		w := &relayWorker{
			s: s, idx: i, n: n,
			in:    newFrameRing(relayQueue),
			ready: make(chan struct{}, 1),
		}
		rl.workers[i] = w
		go w.run()
	}
	s.relay.Store(rl)
}

// publish hands one sample frame to every worker: the session goroutine's
// whole share of observer fan-out. Each ring push takes its own reference;
// an overwritten slot is a frame coalesced away before fan-out.
//
//steer:hotpath
func (rl *relay) publish(fb *FrameBuf) {
	var coalesced uint64
	for _, w := range rl.workers {
		if w.in.push(fb) {
			coalesced++
		}
		select {
		case w.ready <- struct{}{}:
		default:
		}
	}
	rl.s.statRelayPublished.Add(1)
	if coalesced > 0 {
		rl.s.statRelayCoalesced.Add(coalesced)
	}
}

// run is the worker loop: drain the input ring on each wakeup, deliver into
// observer rings, and wake observer writers — immediately when the
// coalescing interval is disabled (negative), else on the ticker cadence so
// each observer's ring accumulates a freshest-wins batch between flushes.
func (w *relayWorker) run() {
	interval := w.s.cfg.ObserverInterval
	var tickC <-chan time.Time
	if interval > 0 {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		tickC = tick.C
	}
	var frames []*FrameBuf
	dirty := false
	for {
		select {
		case <-w.ready:
			frames = w.in.drainInto(frames[:0], 0)
			if len(frames) == 0 {
				continue
			}
			w.deliver(frames)
			if tickC == nil {
				w.notify()
			} else {
				dirty = true
			}
		case <-tickC:
			if dirty {
				w.notify()
				dirty = false
			}
		case <-w.s.closeCh:
			w.in.closeRelease()
			return
		}
	}
}

// deliver pushes a drained batch into the rings of this worker's stride of
// the observer snapshot, interest-filtered per client. The batch references
// belong to the worker and are released here; each ring push retains its
// own. The snapshot is loaded per batch: a client dropped since the frame
// was published has closed rings, which discard.
//
//steer:hotpath
func (w *relayWorker) deliver(frames []*FrameBuf) {
	obs := *w.s.obsView.Load()
	var delivered, dropped, filtered uint64
	for i := w.idx; i < len(obs); i += w.n {
		cc := obs[i]
		d := cc.desc.Load()
		for _, fb := range frames {
			// Same proto gate as the inline steering loop: never hand a
			// frame class to a decoder that predates it.
			if fb.minProto > cc.proto {
				filtered++
				continue
			}
			if len(fb.keys) > 0 && !d.wantsSample(fb.keys) {
				filtered++
				continue
			}
			if cc.out.push(fb) {
				cc.dropped.Add(1)
				dropped++
			} else {
				delivered++
			}
		}
	}
	releaseFrames(frames)
	w.s.statSamplesDelivered.Add(delivered)
	w.s.statSamplesDropped.Add(dropped)
	if filtered > 0 {
		w.s.statFramesFiltered.Add(filtered)
	}
}

// notify wakes the writers of this worker's observers that have queued
// output. Runs on the coalescing cadence, so its cost — one snapshot walk
// per tick — is paid per interval, not per frame.
func (w *relayWorker) notify() {
	obs := *w.s.obsView.Load()
	for i := w.idx; i < len(obs); i += w.n {
		cc := obs[i]
		if cc.out.length() > 0 {
			w.s.notifyWriter(cc)
		}
	}
}
