package core

import (
	"errors"
	"sync/atomic"
	"time"
)

// ErrClientGone reports a drain attempt on a client already declared dead.
var ErrClientGone = errors.New("core: client gone")

// WriterScheduler lets an external component (a hub's per-shard writer pool)
// own the draining of client outbound queues instead of the session spawning
// one writer goroutine per client. Install it via SessionConfig.Writer.
//
// The contract: ClientReady is invoked — possibly concurrently, possibly
// redundantly — whenever a client has queued output, and must not block;
// the scheduler eventually calls ClientHandle.DrainBatch until Pending
// reaches zero. ClientClosed is invoked once when the client detaches.
type WriterScheduler interface {
	ClientReady(*ClientHandle)
	ClientClosed(*ClientHandle)
}

// ClientHandle is the external writer's view of one attached client: a
// bounded outbound queue plus the codec to drain it into.
type ClientHandle struct {
	s  *Session
	cc *clientConn
	// scheduled is the edge-trigger flag a scheduler uses to keep at most
	// one pending drain request per client in flight.
	scheduled atomic.Bool
	// frames/bufs are DrainBatch's reusable scratch, what makes a
	// steady-state drain allocation-free. The edge trigger serialises
	// drains per client (at most one writer between MarkScheduled and
	// ClearScheduled), which is what makes the reuse safe; see DrainBatch.
	frames []*FrameBuf
	bufs   [][]byte
}

// Name returns the client's session-assigned name.
func (h *ClientHandle) Name() string { return h.cc.name }

// SessionName returns the owning session's name.
func (h *ClientHandle) SessionName() string { return h.s.cfg.Name }

// Pending returns the number of queued envelopes awaiting a drain.
func (h *ClientHandle) Pending() int { return h.cc.ctrl.length() + h.cc.out.length() }

// Gone returns a channel closed when the client is declared dead.
func (h *ClientHandle) Gone() <-chan struct{} { return h.cc.gone }

// MarkScheduled flips the edge-trigger flag; it reports true when the caller
// won the race and must enqueue the handle for draining.
func (h *ClientHandle) MarkScheduled() bool { return h.scheduled.CompareAndSwap(false, true) }

// ClearScheduled re-arms the edge trigger. Schedulers clear it after a drain
// pass and then re-check Pending, so an enqueue racing with the drain is
// never lost.
func (h *ClientHandle) ClearScheduled() { h.scheduled.Store(false) }

// DrainBatch pops up to max queued pre-encoded envelopes (0 selects 32) and
// writes their bytes to the client in one coalesced batch under a single
// deadline — broadcasts were serialized once at enqueue time, so a drain
// moves refcounted buffers, it never re-encodes (and in the steady state it
// never allocates: the pop lands in the handle's reusable scratch, and each
// buffer's reference is released back toward the frame pool after the
// write). It returns the count written and whether more output remained
// queued when it left. A write failure declares the client dead (the
// session's read loop then drops it); DrainBatch never blocks on queue
// input, only on the write.
//
// Callers must serialise DrainBatch per handle — the MarkScheduled /
// ClearScheduled edge trigger schedulers already use gives exactly that —
// because the drain scratch is reused across calls.
//
//steer:hotpath
func (h *ClientHandle) DrainBatch(max int, timeout time.Duration) (int, bool, error) {
	cc := h.cc
	select {
	case <-cc.gone:
		return 0, false, ErrClientGone
	default:
	}
	if max <= 0 {
		max = 32
	}
	if timeout <= 0 {
		timeout = h.s.cfg.ControlTimeout
	}
	// Control frames first: a sample burst must not delay events, parameter
	// updates or master changes.
	frames := cc.ctrl.drainInto(h.frames[:0], max)
	frames = cc.out.drainInto(frames, max)
	h.frames = frames
	if len(frames) == 0 {
		return 0, false, nil
	}
	bufs := h.bufs[:0]
	for _, fb := range frames {
		bufs = append(bufs, fb.Bytes())
	}
	h.bufs = bufs
	err := cc.codec.writeBatch(bufs, timeout)
	n := len(frames)
	releaseFrames(frames)
	// Scrub both scratches, not just bufs: releaseFrames nils the slots it
	// was handed, but the handle must not depend on that side effect — a
	// stale *FrameBuf surviving here would pin a released (pooled, possibly
	// already-recycled) buffer reachable between drains, and under
	// framedebug poisoning alias whatever the pool hands out next. Truncate
	// to zero length so the scratch never advertises released entries.
	for i := range frames {
		frames[i] = nil
	}
	for i := range bufs {
		bufs[i] = nil
	}
	h.frames = frames[:0]
	h.bufs = bufs[:0]
	if err != nil {
		cc.markGone()
		return 0, false, err
	}
	return n, cc.ctrl.length()+cc.out.length() > 0, nil
}
