package core

import "time"

// Steered is the application-side instrumentation handle, the analogue of
// the RealityGrid steering API / VISIT simulation bindings: "the RealityGrid
// project has defined APIs for the steering calls which can be used to link
// from the application to the services" (section 2.3).
//
// All methods are simulation-initiated and non-blocking (except
// PollBlocking, which the application opts into while paused), so steering
// can never stall the computation.
type Steered struct {
	s *Session
}

// RegisterFloat declares a steerable float parameter. apply is invoked from
// the simulation's Poll path when a validated steering request arrives, so
// applications need no locking of their own if they poll at loop boundaries.
func (st *Steered) RegisterFloat(name string, initial, min, max float64, help string, apply func(float64)) error {
	return st.s.params.register(&paramDef{
		Param: Param{Name: name, Value: initial, Min: min, Max: max, Help: help},
		apply: apply,
	})
}

// Emit publishes a sample to all attached clients. It never blocks: slow
// clients lose frames instead.
func (st *Steered) Emit(sample *Sample) {
	st.s.broadcastSample(sample)
}

// Event publishes a progress/status string (section 4.4's activity
// indicator for long-running steering actions).
func (st *Steered) Event(ev string) {
	st.s.broadcastEvent(ev)
}

// Poll applies every queued steering operation and returns the control
// verdict. Call it once per simulation loop iteration; it never blocks.
func (st *Steered) Poll() Control {
	s := st.s
	for {
		select {
		case op := <-s.pending:
			st.applyOp(op)
		default:
			s.mu.Lock()
			defer s.mu.Unlock()
			switch {
			case s.stopped:
				return ControlStop
			case s.paused:
				return ControlPaused
			default:
				return ControlContinue
			}
		}
	}
}

// PollBlocking behaves like Poll but, when the session is paused, blocks
// until resumed or stopped (with a safety timeout so a lost client cannot
// hold the application forever; 0 means wait indefinitely).
func (st *Steered) PollBlocking(pauseTimeout time.Duration) Control {
	for {
		c := st.Poll()
		if c != ControlPaused {
			return c
		}
		s := st.s
		s.mu.Lock()
		ch := s.resumeCh
		s.mu.Unlock()

		if pauseTimeout <= 0 {
			select {
			case <-ch:
			case <-s.closeCh:
				return ControlStop
			}
			continue
		}
		select {
		case <-ch:
		case <-s.closeCh:
			return ControlStop
		case <-time.After(pauseTimeout):
			return ControlPaused
		}
	}
}

// applyOp performs one queued steering operation on the simulation
// goroutine.
func (st *Steered) applyOp(op pendingOp) {
	s := st.s
	if op.set != nil {
		p, err := s.params.applyAndGet(op.set.Name, op.set.Value)
		if err != nil {
			return
		}
		s.mu.Lock()
		s.stats.SteersApplied++
		s.mu.Unlock()
		s.broadcastControl(&envelope{Type: msgParamUpdate, Params: []Param{p}})
		return
	}
	switch op.cmd {
	case cmdPause:
		s.mu.Lock()
		s.paused = true
		s.mu.Unlock()
		s.broadcastEvent("paused")
	case cmdResume:
		s.signalResume()
		s.broadcastEvent("resumed")
	case cmdStop:
		s.mu.Lock()
		s.stopped = true
		s.mu.Unlock()
		s.signalResume()
		s.broadcastEvent("stopping")
	case cmdCheckpoint:
		// Delivered to the application via the control verdict exactly once.
		s.broadcastEvent("checkpoint requested")
		s.mu.Lock()
		s.checkpointPending = true
		s.mu.Unlock()
	}
}

// CheckpointRequested reports and clears a pending checkpoint request; the
// application should write its checkpoint when true.
func (st *Steered) CheckpointRequested() bool {
	s := st.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.checkpointPending {
		s.checkpointPending = false
		return true
	}
	return false
}
