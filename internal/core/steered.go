package core

import "time"

// Steered is the application-side instrumentation handle, the analogue of
// the RealityGrid steering API / VISIT simulation bindings: "the RealityGrid
// project has defined APIs for the steering calls which can be used to link
// from the application to the services" (section 2.3).
//
// Parameters are typed — float, int, bool, string, choice — mirroring the
// VISIT data model (tagged integers, floats, strings; section 3.2). The
// session performs all validation and conversion on the receiving side, so
// the apply callbacks always see a value of the registered type.
//
// All methods are simulation-initiated and non-blocking (except
// PollBlocking, which the application opts into while paused), so steering
// can never stall the computation.
type Steered struct {
	s *Session
}

// RegisterFloat declares a steerable float parameter bounded to [min, max].
// apply is invoked from the simulation's Poll path when a validated steering
// request arrives, so applications need no locking of their own if they poll
// at loop boundaries.
func (st *Steered) RegisterFloat(name string, initial, min, max float64, help string, apply func(float64)) error {
	if apply == nil {
		return st.s.params.register(&paramDef{Param: Param{Name: name, Type: FloatParam}})
	}
	return st.s.params.register(&paramDef{
		Param: Param{Name: name, Type: FloatParam, Value: FloatValue(initial), Min: min, Max: max, Help: help},
		apply: func(v Value) { apply(v.Float()) },
	})
}

// RegisterInt declares a steerable integer parameter bounded to [min, max].
func (st *Steered) RegisterInt(name string, initial, min, max int64, help string, apply func(int64)) error {
	if apply == nil {
		return st.s.params.register(&paramDef{Param: Param{Name: name, Type: IntParam}})
	}
	return st.s.params.register(&paramDef{
		Param: Param{Name: name, Type: IntParam, Value: IntValue(initial), Min: float64(min), Max: float64(max), Help: help},
		apply: func(v Value) { apply(v.I) },
	})
}

// RegisterBool declares a steerable on/off toggle.
func (st *Steered) RegisterBool(name string, initial bool, help string, apply func(bool)) error {
	if apply == nil {
		return st.s.params.register(&paramDef{Param: Param{Name: name, Type: BoolParam}})
	}
	return st.s.params.register(&paramDef{
		Param: Param{Name: name, Type: BoolParam, Value: BoolValue(initial), Help: help},
		apply: func(v Value) { apply(v.I != 0) },
	})
}

// RegisterString declares a steerable free-form string parameter.
func (st *Steered) RegisterString(name, initial, help string, apply func(string)) error {
	if apply == nil {
		return st.s.params.register(&paramDef{Param: Param{Name: name, Type: StringParam}})
	}
	return st.s.params.register(&paramDef{
		Param: Param{Name: name, Type: StringParam, Value: StringValue(initial), Help: help},
		apply: func(v Value) { apply(v.S) },
	})
}

// RegisterChoice declares a parameter selecting one of a fixed list of
// strings. Steering clients may send either the choice string or its index;
// apply always receives the choice string.
func (st *Steered) RegisterChoice(name string, choices []string, initial, help string, apply func(string)) error {
	if apply == nil {
		return st.s.params.register(&paramDef{Param: Param{Name: name, Type: ChoiceParam, Choices: choices}})
	}
	return st.s.params.register(&paramDef{
		Param: Param{Name: name, Type: ChoiceParam, Value: StringValue(initial), Choices: choices, Help: help},
		apply: func(v Value) { apply(v.S) },
	})
}

// Emit publishes a sample to all attached clients. It never blocks: slow
// clients lose frames instead.
func (st *Steered) Emit(sample *Sample) {
	st.s.broadcastSample(sample)
}

// Event publishes a progress/status string (section 4.4's activity
// indicator for long-running steering actions).
func (st *Steered) Event(ev string) {
	st.s.broadcastEvent(ev)
}

// EmitBlob publishes one bulk binary frame — pixel tiles, a rendered
// frame, geometry — to the v5+ clients subscribed to its stream. Like
// Emit it never blocks: a slow client's ring overwrites its oldest blob,
// so viewers see the freshest frame rather than a growing backlog. Blobs
// are never journaled; publishers are responsible for re-keying late
// joiners (emit a keyframe when ClientCount grows or on a periodic
// keyframe cadence).
//
// This is the pixel-frame publish entry point: per-frame work below it is
// one pooled-buffer encode plus refcounted ring pushes, and steervet's
// hotpathalloc pass holds the whole descent to that budget.
//
//steer:hotpath
func (st *Steered) EmitBlob(b *Blob) {
	st.s.broadcastBlob(b)
}

// Poll applies every queued steering operation and returns the control
// verdict. Call it once per simulation loop iteration; it never blocks.
// A closed session reads as stopped: when the hosting daemon tears the
// session down, the application loop winds down with it.
func (st *Steered) Poll() Control {
	s := st.s
	for {
		select {
		case op := <-s.pending:
			st.applyOp(op)
		default:
			s.mu.Lock()
			defer s.mu.Unlock()
			switch {
			case s.stopped, s.closed:
				return ControlStop
			case s.paused:
				return ControlPaused
			default:
				return ControlContinue
			}
		}
	}
}

// PollBlocking behaves like Poll but, when the session is paused, blocks
// until resumed or stopped (with a safety timeout so a lost client cannot
// hold the application forever; 0 means wait indefinitely).
func (st *Steered) PollBlocking(pauseTimeout time.Duration) Control {
	for {
		c := st.Poll()
		if c != ControlPaused {
			return c
		}
		s := st.s
		s.mu.Lock()
		ch := s.resumeCh
		s.mu.Unlock()

		if pauseTimeout <= 0 {
			select {
			case <-ch:
			case <-s.closeCh:
				return ControlStop
			}
			continue
		}
		select {
		case <-ch:
		case <-s.closeCh:
			return ControlStop
		case <-time.After(pauseTimeout):
			return ControlPaused
		}
	}
}

// applyOp performs one queued steering operation on the simulation
// goroutine.
func (st *Steered) applyOp(op pendingOp) {
	s := st.s
	if len(op.sets) > 0 {
		updated := make([]Param, 0, len(op.sets))
		for _, set := range op.sets {
			p, err := s.params.applyAndGet(set.Name, set.Value)
			if err != nil {
				continue
			}
			updated = append(updated, p)
		}
		if len(updated) == 0 {
			return
		}
		s.statSteersApplied.Add(uint64(len(updated)))
		s.broadcastControl(&envelope{Type: msgParamUpdate, Params: updated})
		return
	}
	switch op.cmd {
	case cmdPause:
		s.mu.Lock()
		s.paused = true
		s.mu.Unlock()
		s.broadcastEvent("paused")
	case cmdResume:
		s.signalResume()
		s.broadcastEvent("resumed")
	case cmdStop:
		s.mu.Lock()
		s.stopped = true
		s.mu.Unlock()
		s.signalResume()
		s.broadcastEvent("stopping")
	case cmdCheckpoint:
		// Delivered to the application via the control verdict exactly once.
		s.broadcastEvent("checkpoint requested")
		s.mu.Lock()
		s.checkpointPending = true
		s.mu.Unlock()
	}
}

// CheckpointRequested reports and clears a pending checkpoint request; the
// application should write its checkpoint when true.
func (st *Steered) CheckpointRequested() bool {
	s := st.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.checkpointPending {
		s.checkpointPending = false
		return true
	}
	return false
}
