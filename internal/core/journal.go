package core

import (
	"bytes"

	"repro/internal/wire"
)

// Durability layer: a session may be given a JournalSink that receives every
// broadcast envelope as the exact pre-encoded []byte queued to clients —
// journaling a frame costs one append, never a re-encode (the protocol v2
// encode-once property extends to disk). The sink replays recorded frames
// during attach so late joiners converge on the event/sample history an
// always-attached client accumulated, and after a restart Recover rebuilds
// session state (parameter values, view, last sample) from the same log.
// internal/journal provides the durable segmented implementation; tests use
// in-memory fakes.

// JournalClass partitions journaled frames by their retention and replay
// semantics.
type JournalClass uint8

const (
	// JournalState marks parameter, view and master updates: snapshots of
	// live state. Later state supersedes earlier, so a compacting sink may
	// fold them into one snapshot, and attach catch-up skips them — the
	// welcome frame carries strictly newer state.
	JournalState JournalClass = iota + 1
	// JournalEvent marks progress/status events. Events accumulate
	// client-side, so catch-up replays them to late joiners.
	JournalEvent
	// JournalSample marks emitted samples. Catch-up replays them so a late
	// joiner has data before the next emission; a compacting sink may keep
	// only the freshest.
	JournalSample
	// JournalBlob marks bulk blob frames (pixel tiles, rendered frames,
	// geometry). They are never recorded or replayed: blob streams are
	// delta-coded by their publisher, so a replayed delta without its
	// keyframe is garbage, and durably retaining megabyte pixel history
	// would swamp the log for state nobody can reuse — publishers re-key
	// late joiners with a fresh keyframe instead. The class exists so
	// fanout can recognise and skip the journal tap on an otherwise
	// ordinary broadcast.
	JournalBlob
)

// JournalSink receives every broadcast envelope a session encodes and hands
// recorded frames back for late-joiner catch-up and state recovery.
//
// Record receives the broadcast's refcounted buffer — the same one sitting
// in client queues, so durability never re-encodes. The caller's reference
// is live only for the duration of the call: a sink that keeps the frame
// past return must Retain the buffer (once per reference it keeps, e.g.
// one for its replay mirror and one for a pending fsync batch) before
// returning, and Release each reference when done. Record must not block
// and must never mutate the bytes.
//
// Replay visits recorded frames oldest first until visit returns false.
// The frame bytes are valid only during the visit: a caller that keeps a
// frame past its visit must copy it, because the sink may recycle a
// compacted-away record's buffer.
//
// The session serialises Record against Replay on its attach barrier, so a
// frame is seen exactly once by an attaching client: in the replay, or in
// its live queue — never both.
type JournalSink interface {
	// Record appends one broadcast frame. The sink takes shared ownership:
	// it retains the references it stores (mirror, pending disk batch) and
	// releases them from its own maintenance path.
	//
	//steer:owns
	Record(class JournalClass, frame *FrameBuf)
	Replay(visit func(class JournalClass, frame []byte) bool)
}

// journalClassOf maps a broadcast envelope type to its journal class.
func journalClassOf(t msgType) JournalClass {
	switch t {
	case msgEvent:
		return JournalEvent
	case msgSample:
		return JournalSample
	case msgBlob:
		return JournalBlob
	default:
		return JournalState
	}
}

// decodeFrame decodes one journaled envelope from its recorded bytes, under
// the same limits a client applies to session traffic.
func decodeFrame(frame []byte) (*envelope, error) {
	return decodeEnvelope(wire.NewDecoder(bytes.NewReader(frame)), clientEnvelopeBudget)
}

// SnapshotFrames encodes the session's full steerable state — the complete
// parameter table and the shared view — as wire envelopes, the fold target
// a compacting journal replaces superseded state frames with. The frames
// are exactly what a broadcast would carry, so Recover replays them with no
// special casing.
func (s *Session) SnapshotFrames() [][]byte {
	params := s.params.snapshot()
	s.mu.Lock()
	view := cloneView(s.view)
	s.mu.Unlock()

	frames := make([][]byte, 0, 2)
	if len(params) > 0 {
		if buf, err := encodeEnvelope(nil, &envelope{Type: msgParamUpdate, Params: params}); err == nil {
			frames = append(frames, buf)
		}
	}
	if buf, err := encodeEnvelope(nil, &envelope{Type: msgViewUpdate, View: view}); err == nil {
		frames = append(frames, buf)
	}
	return frames
}

// Recover replays the configured journal into the session: parameter values
// are validated and applied through their registered apply functions, the
// shared view adopts the newest recorded revision, and the freshest sample
// becomes LastSample. Call it after registering parameters and before the
// simulation loop (it invokes apply callbacks on the calling goroutine, the
// same contract as Poll). The journal tap is muted while apply callbacks
// run, so a callback that broadcasts — an event echoing the parameter
// change — does not re-journal its echo on every restart. Frames for
// parameters
// that no longer exist are skipped. It returns the number of frames that
// changed state and the first decode error encountered, if any.
func (s *Session) Recover() (int, error) {
	if s.cfg.Journal == nil {
		return 0, nil
	}
	applied := 0
	var firstErr error
	s.cfg.Journal.Replay(func(class JournalClass, frame []byte) bool {
		e, err := decodeFrame(frame)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return true
		}
		switch e.Type {
		case msgParamUpdate:
			n := 0
			// The mute spans only the synchronous apply callbacks — the
			// one place replay echoes originate. A concurrent legitimate
			// broadcast landing in this narrow window also skips the
			// journal; that is the accepted cost of keeping echoes from
			// growing the log on every restart.
			s.recovering.Store(true)
			for _, p := range e.Params {
				if _, err := s.params.applyAndGet(p.Name, p.Value); err == nil {
					n++
				}
			}
			s.recovering.Store(false)
			if n > 0 {
				applied++
			}
		case msgViewUpdate:
			if e.View == nil {
				return true
			}
			s.mu.Lock()
			if e.View.Seq >= s.viewSeq {
				s.view = *cloneView(*e.View)
				s.viewSeq = e.View.Seq
				applied++
			}
			s.mu.Unlock()
		case msgSample:
			s.lastSample.Store(e.Sample)
			applied++
		case msgMasterChanged:
			// Master state is connection-bound: the recorded holder belongs
			// to the previous process generation and its connection did not
			// survive the restart. Resurrecting the name would create a
			// phantom master no live client can release, steal from or
			// heartbeat for — so a restarted session always comes up with
			// the floor free and clients re-arbitrate under the floor
			// policy. The welcome frame and the replayed log therefore
			// agree: no master until somebody attached asks.
		}
		return true
	})

	// Clients may already be attached (a hub keeps its listener live while
	// a revived session recovers): broadcast the recovered state so their
	// pre-recovery welcome snapshots converge. The frames are journaled as
	// ordinary state records — compaction folds them.
	if applied > 0 {
		if params := s.params.snapshot(); len(params) > 0 {
			s.broadcastControl(&envelope{Type: msgParamUpdate, Params: params})
		}
		s.mu.Lock()
		view := cloneView(s.view)
		s.mu.Unlock()
		s.broadcastControl(&envelope{Type: msgViewUpdate, View: view})
	}
	return applied, firstErr
}
