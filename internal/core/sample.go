package core

// Channel is one named data array inside a Sample: a scalar field, particle
// coordinate block, or monitored quantity. Dims gives the logical shape;
// scalars use Dims = [3]int{1, 1, 1}.
type Channel struct {
	Dims [3]int
	Data []float64
}

// Scalar wraps a single monitored value as a Channel.
func Scalar(v float64) Channel {
	return Channel{Dims: [3]int{1, 1, 1}, Data: []float64{v}}
}

// Value returns the first element, the idiom for scalar channels.
func (c Channel) Value() float64 {
	if len(c.Data) == 0 {
		return 0
	}
	return c.Data[0]
}

// Sample is what the simulation emits for consumption by visualization
// components: "the simulation component periodically (or as demanded by the
// steerer component) emits 'samples'" (section 2.1).
type Sample struct {
	// Step is the simulation timestep the sample was taken at.
	Step int64
	// Channels maps channel names to data.
	Channels map[string]Channel
}

// NewSample allocates an empty sample for the given step.
func NewSample(step int64) *Sample {
	return &Sample{Step: step, Channels: make(map[string]Channel)}
}

// ByteSize estimates the payload size of the sample in bytes (8 per value).
func (s *Sample) ByteSize() int {
	n := 0
	for _, c := range s.Channels {
		n += len(c.Data) * 8
	}
	return n
}

// ViewState is the shared visualization state synchronised across all
// session participants: camera plus named visualization parameters such as
// isosurface thresholds or cutting-plane positions (section 4.3).
type ViewState struct {
	// Seq is a monotonically increasing revision number assigned by the
	// session; later revisions supersede earlier ones.
	Seq uint64
	// Eye, Center, Up, FovY define the camera.
	Eye, Center, Up [3]float64
	FovY            float64
	// VizParams carries tool parameters (e.g. "iso", "cutplane-z").
	VizParams map[string]float64
}

// Control is the verdict a simulation receives when polling for steering.
type Control int

// Control values.
const (
	// ControlContinue means run the next iteration.
	ControlContinue Control = iota
	// ControlPaused means hold: poll again (or block) until resumed.
	ControlPaused
	// ControlStop means terminate the run cleanly.
	ControlStop
	// ControlCheckpoint means write a checkpoint, then continue.
	ControlCheckpoint
)

// String returns the control name.
func (c Control) String() string {
	switch c {
	case ControlContinue:
		return "continue"
	case ControlPaused:
		return "paused"
	case ControlStop:
		return "stop"
	case ControlCheckpoint:
		return "checkpoint"
	default:
		return "unknown"
	}
}

// Role distinguishes the one steering master from passive observers.
type Role int

// Roles.
const (
	// RoleObserver participants view synchronised output but cannot steer.
	RoleObserver Role = iota
	// RoleMaster is the single participant allowed to steer the application
	// and the shared view.
	RoleMaster
)

// String returns the role name.
func (r Role) String() string {
	if r == RoleMaster {
		return "master"
	}
	return "observer"
}

// Tier selects the delivery tier a client attaches at. The tier decides how
// the session moves sample traffic to the client, never what the client may
// do: floor control (Role) and delivery (Tier) are independent axes.
type Tier int

// Delivery tiers.
const (
	// TierSteering delivers every frame inline from the session goroutine:
	// the tier for masters, floor requesters and anything driving a control
	// loop off the sample stream.
	TierSteering Tier = iota
	// TierObserver delivers coalesced freshest-wins batches on the session's
	// observer interval, fanned out by relay workers off the session
	// goroutine: the tier for passive viewers, where the newest state matters
	// and a dropped intermediate frame does not.
	TierObserver
)

// String returns the tier name.
func (t Tier) String() string {
	if t == TierObserver {
		return "observer"
	}
	return "steering"
}

// SubscriptionKind discriminates what a Subscription selects.
type SubscriptionKind int

// Subscription kinds.
const (
	// SubChannel selects a sample channel by name (the PR 2 registry names
	// reflected into Sample.Channels).
	SubChannel SubscriptionKind = iota
	// SubParam selects a registered steering parameter by name; it filters
	// msgParamUpdate broadcasts.
	SubParam
)

// Subscription is one typed interest selector. A client's interest set is
// the union of its subscriptions, kept per kind: subscribing to any channel
// narrows channel delivery to the named ones, subscribing to any parameter
// narrows parameter-update delivery likewise. A kind with no subscriptions
// stays at subscribe-all, which is also the v3-client downgrade default.
type Subscription struct {
	Kind SubscriptionKind
	Name string
}

// ChannelSub returns a sample-channel selector.
func ChannelSub(name string) Subscription { return Subscription{Kind: SubChannel, Name: name} }

// ParamSub returns a steering-parameter selector.
func ParamSub(name string) Subscription { return Subscription{Kind: SubParam, Name: name} }

// ReplayPolicy selects how much journal history an attaching client wants
// replayed before live frames start.
type ReplayPolicy int

// Replay policies.
const (
	// ReplayAll replays the full journaled backlog (events and samples):
	// the pre-v4 behaviour and the zero value.
	ReplayAll ReplayPolicy = iota
	// ReplayEvents replays journaled control traffic but skips bulk samples;
	// an observer that only needs current params/view attaches much faster.
	ReplayEvents
	// ReplayNone skips replay entirely and starts at the live stream.
	ReplayNone
)

// String returns the replay-policy name.
func (p ReplayPolicy) String() string {
	switch p {
	case ReplayEvents:
		return "events"
	case ReplayNone:
		return "none"
	default:
		return "all"
	}
}
