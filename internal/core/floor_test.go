package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRequestMasterQueuedThenGranted is the basic grant flow: a contested
// blocking request queues (the requester is told so, with the holder's
// name), and the holder's release passes the floor to it.
func TestRequestMasterQueuedThenGranted(t *testing.T) {
	s, dial := testSession(t, SessionConfig{})
	m := dial(AttachOptions{Name: "m"})
	o := dial(AttachOptions{Name: "o"})

	granted := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		granted <- o.RequestMaster(ctx)
	}()
	waitFor(t, "request queued", func() bool { return s.FloorStats().Pending == 1 })

	if err := m.ReleaseMaster(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := <-granted; err != nil {
		t.Fatalf("queued request not granted: %v", err)
	}
	waitFor(t, "grant visible everywhere", func() bool {
		return s.Master() == "o" && o.Role() == RoleMaster && m.Master() == "o"
	})
	if o.FloorReason() != FloorGranted {
		t.Fatalf("reason = %v, want granted", o.FloorReason())
	}
	st := s.FloorStats()
	if st.Pending != 0 || st.Releases != 1 || st.Grants < 2 { // attach grant + queue grant
		t.Fatalf("floor stats = %+v", st)
	}
}

// TestReleaseMasterWithEmptyQueueFreesFloor: nobody waiting, so release
// leaves the session masterless and says so on the broadcast.
func TestReleaseMasterWithEmptyQueueFreesFloor(t *testing.T) {
	s, dial := testSession(t, SessionConfig{})
	m := dial(AttachOptions{Name: "m"})
	o := dial(AttachOptions{Name: "o"})
	if err := m.ReleaseMaster(time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "floor free", func() bool {
		return s.Master() == "" && o.Master() == "" && o.FloorReason() == FloorReleased
	})
	// Released floor means the old holder cannot steer either.
	if err := m.PauseContext(testCtx(t)); !errors.Is(err, ErrNotMaster) {
		t.Fatalf("ex-master pause = %v, want ErrNotMaster", err)
	}
}

// TestReleaseMasterCancelsQueuedRequest: a waiter's release withdraws its
// queued request instead of touching the floor.
func TestReleaseMasterCancelsQueuedRequest(t *testing.T) {
	s, dial := testSession(t, SessionConfig{})
	m := dial(AttachOptions{Name: "m"})
	o := dial(AttachOptions{Name: "o"})

	done := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { done <- o.RequestMaster(ctx) }()
	waitFor(t, "request queued", func() bool { return s.FloorStats().Pending == 1 })

	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled request = %v", err)
	}
	waitFor(t, "request withdrawn", func() bool { return s.FloorStats().Pending == 0 })

	// The floor must now bypass the withdrawn waiter entirely.
	if err := m.ReleaseMaster(time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "floor free, not granted to the withdrawn waiter", func() bool {
		return s.Master() == ""
	})
	if o.Role() == RoleMaster {
		t.Fatal("withdrawn request was granted")
	}
}

// TestFloorQueueFIFOOrder: contested requests are granted strictly in
// arrival order as the floor is passed along.
func TestFloorQueueFIFOOrder(t *testing.T) {
	s, dial := testSession(t, SessionConfig{FloorPolicy: FloorFIFO})
	m := dial(AttachOptions{Name: "holder"})

	const n = 3
	waiters := make([]*Client, n)
	grants := make([]chan error, n)
	order := make(chan string, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("w%d", i)
		waiters[i] = dial(AttachOptions{Name: name})
		grants[i] = make(chan error, 1)
		c, idx := waiters[i], i
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			err := c.RequestMaster(ctx)
			if err == nil {
				order <- c.Name()
			}
			grants[idx] <- err
		}()
		// Serialise arrivals so the expected order is deterministic.
		waitFor(t, "request queued", func() bool { return s.FloorStats().Pending == i+1 })
	}

	prev := m
	for i := 0; i < n; i++ {
		if err := prev.ReleaseMaster(time.Second); err != nil {
			t.Fatal(err)
		}
		if err := <-grants[i]; err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
		if got := <-order; got != fmt.Sprintf("w%d", i) {
			t.Fatalf("grant %d went to %q", i, got)
		}
		prev = waiters[i]
	}
	if st := s.FloorStats(); st.Pending != 0 {
		t.Fatalf("pending = %d after all grants", st.Pending)
	}
}

// TestFloorQueuePriorityOrder: under the priority policy the queue is
// ordered by attach priority, arrival breaking ties.
func TestFloorQueuePriorityOrder(t *testing.T) {
	s, dial := testSession(t, SessionConfig{FloorPolicy: FloorPriority})
	m := dial(AttachOptions{Name: "holder"})

	specs := []struct {
		name     string
		priority int64
	}{{"low", 1}, {"high", 9}, {"mid", 5}, {"high2", 9}}
	want := []string{"high", "high2", "mid", "low"} // priority desc, arrival asc

	order := make(chan string, len(specs))
	clients := map[string]*Client{}
	for i, sp := range specs {
		c := dial(AttachOptions{Name: sp.name, Priority: sp.priority})
		clients[sp.name] = c
		go func(c *Client) {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := c.RequestMaster(ctx); err == nil {
				order <- c.Name()
			}
		}(c)
		waitFor(t, "request queued", func() bool { return s.FloorStats().Pending == i+1 })
	}

	prev := m
	for _, name := range want {
		if err := prev.ReleaseMaster(time.Second); err != nil {
			t.Fatal(err)
		}
		if got := <-order; got != name {
			t.Fatalf("grant went to %q, want %q", got, name)
		}
		prev = clients[name]
	}
}

// TestStealMasterPolicyGate: administrative preemption works under the
// steal policy and is an explicit denial under any other.
func TestStealMasterPolicyGate(t *testing.T) {
	s, dial := testSession(t, SessionConfig{FloorPolicy: FloorSteal})
	m := dial(AttachOptions{Name: "m"})
	admin := dial(AttachOptions{Name: "admin"})
	if err := admin.StealMaster(time.Second); err != nil {
		t.Fatalf("steal under steal policy: %v", err)
	}
	waitFor(t, "steal visible", func() bool {
		return s.Master() == "admin" && m.Master() == "admin" && m.FloorReason() == FloorStolen
	})
	if err := m.PauseContext(testCtx(t)); !errors.Is(err, ErrNotMaster) {
		t.Fatalf("preempted master pause = %v, want ErrNotMaster", err)
	}
	if st := s.FloorStats(); st.Steals != 1 {
		t.Fatalf("steals = %d", st.Steals)
	}

	// FIFO policy: the same request is denied, naming the holder.
	s2, dial2 := testSession(t, SessionConfig{Name: "fifo-session", FloorPolicy: FloorFIFO})
	dial2(AttachOptions{Name: "m"})
	thief := dial2(AttachOptions{Name: "thief"})
	if err := thief.StealMaster(time.Second); !errors.Is(err, ErrFloorHeld) {
		t.Fatalf("steal under fifo = %v, want ErrFloorHeld", err)
	}
	if st := s2.FloorStats(); st.Denials != 1 || st.Steals != 0 {
		t.Fatalf("fifo steal stats = %+v", st)
	}
}

// TestLeaseExpiryDeterministic is the acceptance test of the master lease,
// on a virtual clock so no real timing is involved: a master that stops
// sending (stalled heartbeat) loses the floor at the sweep after its lease
// lapses, and the next queued requester is granted it.
func TestLeaseExpiryDeterministic(t *testing.T) {
	var offset atomic.Int64 // virtual clock: real time + offset
	s, dial := testSession(t, SessionConfig{
		Name: "lease", MasterLease: time.Hour,
		Clock: func() time.Time { return time.Now().Add(time.Duration(offset.Load())) },
	})

	// The master's heartbeats are disabled: after the attach it is wedged.
	m := dial(AttachOptions{Name: "wedged", HeartbeatInterval: -1})
	o := dial(AttachOptions{Name: "next"})

	granted := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		granted <- o.RequestMaster(ctx)
	}()
	waitFor(t, "request queued", func() bool { return s.FloorStats().Pending == 1 })

	// One sweep inside the lease: nothing expires.
	if s.sweepFloor() {
		t.Fatal("lease expired before the timeout")
	}
	if s.Master() != "wedged" {
		t.Fatalf("master = %q before expiry", s.Master())
	}

	// Jump the clock past the lease; the next maintenance sweep must take
	// the floor and grant the queued requester.
	offset.Store(int64(2 * time.Hour))
	if !s.sweepFloor() {
		t.Fatal("lease did not expire after the timeout")
	}
	if err := <-granted; err != nil {
		t.Fatalf("queued requester not granted on expiry: %v", err)
	}
	waitFor(t, "expiry visible", func() bool {
		return s.Master() == "next" && o.Role() == RoleMaster && o.FloorReason() == FloorExpired
	})
	st := s.FloorStats()
	if st.Expiries != 1 || st.Pending != 0 {
		t.Fatalf("floor stats after expiry = %+v", st)
	}
	// The wedged client is demoted, not evicted: when it wakes, its steers
	// are rejected — no split-brain mastership.
	if err := m.PauseContext(testCtx(t)); !errors.Is(err, ErrNotMaster) {
		t.Fatalf("expired master pause = %v, want ErrNotMaster", err)
	}
	if got := len(s.Clients()); got != 2 {
		t.Fatalf("client count after expiry = %d (expiry must not evict)", got)
	}
	// Waking up also re-renewed its lease (any inbound frame does), so the
	// next sweep expires nothing.
	if s.sweepFloor() {
		t.Fatal("sweep expired a freshly renewed non-master lease")
	}
}

// TestLeaseExpirySweeper exercises the real maintenance sweeper end to end:
// with a short lease and a wedged master, the floor moves without any test
// intervention, within a small multiple of the lease.
func TestLeaseExpirySweeper(t *testing.T) {
	s, dial := testSession(t, SessionConfig{MasterLease: 50 * time.Millisecond})
	dial(AttachOptions{Name: "wedged", HeartbeatInterval: -1})
	o := dial(AttachOptions{Name: "next"})

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := o.RequestMaster(ctx); err != nil {
		t.Fatalf("RequestMaster: %v", err)
	}
	// The sweeper runs at lease/4, so the floor must move within
	// 1.25×lease of the master's last frame; allow generous CI slack while
	// still proving bounded, sub-second takeover.
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("takeover took %v", elapsed)
	}
	waitFor(t, "expiry grant visible", func() bool { return s.Master() == "next" })
	if st := s.FloorStats(); st.Expiries == 0 {
		t.Fatal("no expiry counted")
	}
}

// TestHeartbeatKeepsLease is the liveness complement: a master that only
// heartbeats (no requests) keeps the floor across many lease intervals.
func TestHeartbeatKeepsLease(t *testing.T) {
	s, dial := testSession(t, SessionConfig{MasterLease: 60 * time.Millisecond})
	m := dial(AttachOptions{Name: "live"}) // auto heartbeat at lease/3
	if m.MasterLease() != 60*time.Millisecond {
		t.Fatalf("advertised lease = %v", m.MasterLease())
	}
	time.Sleep(300 * time.Millisecond) // five lease intervals
	if s.Master() != "live" {
		t.Fatalf("heartbeating master lost the floor to %q", s.Master())
	}
	if st := s.FloorStats(); st.Expiries != 0 {
		t.Fatalf("expiries = %d for a live master", st.Expiries)
	}
}

// TestFloorChurnUnderRace hammers the contested queue from many goroutines
// while clients attach and detach; run under -race this is the memory-model
// check of the floor path, and the end state must converge to at most one
// master with an empty queue.
func TestFloorChurnUnderRace(t *testing.T) {
	s, dial := testSession(t, SessionConfig{FloorPolicy: FloorFIFO, MasterLease: time.Second})
	const n = 6
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		c := dial(AttachOptions{Name: fmt.Sprintf("c%d", i)})
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
				if err := c.RequestMaster(ctx); err == nil {
					c.ReleaseMaster(time.Second)
				}
				cancel()
			}
		}(c)
	}
	// Attach/detach churn alongside the floor contention.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for iter := 0; iter < 10; iter++ {
			c := dial(AttachOptions{Name: fmt.Sprintf("churn-%d", iter), WantMaster: true})
			time.Sleep(2 * time.Millisecond)
			c.Close()
		}
	}()
	wg.Wait()

	waitFor(t, "queue drained", func() bool {
		st := s.FloorStats()
		return st.Pending == 0
	})
	masters := 0
	for _, name := range s.Clients() {
		if name == s.Master() {
			masters++
		}
	}
	if s.Master() != "" && masters != 1 {
		t.Fatalf("master %q not among clients %v", s.Master(), s.Clients())
	}
}

// TestMasterStateLateJoinerConvergence: floor transitions ride the
// journaled encode-once broadcast path, and a late joiner's welcome must
// carry the same master a live observer converged to — whatever mix of
// grants, handoffs and releases preceded the attach.
func TestMasterStateLateJoinerConvergence(t *testing.T) {
	sink := &memSink{}
	s, dial := testSession(t, SessionConfig{Journal: sink})
	m := dial(AttachOptions{Name: "alice"})
	o := dial(AttachOptions{Name: "bob"})

	// A history of transitions: handoff, release, re-grant.
	if err := m.GrantMaster("bob", time.Second); err != nil {
		t.Fatal(err)
	}
	if err := o.ReleaseMaster(time.Second); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := m.RequestMaster(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "live observer convergence", func() bool { return o.Master() == "alice" })

	late := dial(AttachOptions{Name: "late"})
	// The welcome is the authority: straight after attach — before any new
	// broadcast — the late joiner agrees with the live observer and the
	// session.
	if late.Master() != "alice" || late.Master() != o.Master() || s.Master() != "alice" {
		t.Fatalf("late %q, live %q, session %q", late.Master(), o.Master(), s.Master())
	}

	// And the transitions were journaled as state frames (foldable by
	// compaction), not skipped.
	states := 0
	for _, c := range sink.classes() {
		if c == JournalState {
			states++
		}
	}
	if states < 3 {
		t.Fatalf("journal recorded %d state frames, want the floor transitions", states)
	}
}

// TestMasterStateRestartConvergence: a restarted session replays its
// journal and must come up with the floor free — the recorded master's
// connection did not survive the restart, and a phantom holder nobody can
// release or heartbeat for would wedge steering until the lease reaped it.
// The journal-replayed state and the welcome frame must agree.
func TestMasterStateRestartConvergence(t *testing.T) {
	sink := &memSink{}
	s1, dial1 := testSession(t, SessionConfig{Name: "gen1", Journal: sink})
	st := s1.Steered()
	if err := st.RegisterFloat("g", 1, 0, 10, "", func(float64) {}); err != nil {
		t.Fatal(err)
	}
	m := dial1(AttachOptions{Name: "alice"})
	if err := m.SetParamContext(testCtx(t), "g", 7); err != nil {
		t.Fatal(err)
	}
	st.Poll()
	waitFor(t, "transition journaled", func() bool {
		for _, c := range sink.classes() {
			if c == JournalState {
				return true
			}
		}
		return false
	})
	s1.Close()

	// "Restart": a fresh session over the same journal.
	s2, dial2 := testSession(t, SessionConfig{Name: "gen2", Journal: sink})
	st2 := s2.Steered()
	if err := st2.RegisterFloat("g", 1, 0, 10, "", func(float64) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	// Parameter state revived; master state deliberately not.
	if p := s2.Params(); len(p) != 1 || p[0].Value != FloatValue(7) {
		t.Fatalf("recovered params = %+v", p)
	}
	if s2.Master() != "" {
		t.Fatalf("restart resurrected phantom master %q", s2.Master())
	}
	// The first client's welcome agrees with the replayed state (and, being
	// the first attacher, it is granted the free floor — visible in its own
	// welcome Role, not via any phantom name).
	c := dial2(AttachOptions{Name: "carol"})
	if c.Master() != "carol" || c.Role() != RoleMaster {
		t.Fatalf("post-restart attach: master %q role %v", c.Master(), c.Role())
	}
	if p, _ := c.Param("g"); p.Value != FloatValue(7) {
		t.Fatalf("post-restart welcome param = %+v", p)
	}
}

// TestMasterChangeOrderingGuard: master-changed broadcasts are emitted
// outside the session lock by whichever goroutine performed the
// transition, so two of them can reach a client's queue out of order. The
// transition seq (assigned under the lock, anchored by the welcome) makes
// application newest-wins: a stale frame must not regress the client's
// master view. This test plays a raw server feeding frames in the wrong
// order.
func TestMasterChangeOrderingGuard(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	srv := newCodec(srvConn)
	go func() {
		srv.read() // attach
		srv.write(&envelope{Type: msgWelcome, Welcome: &welcomeMsg{
			SessionName: "s", ClientName: "c", Master: "a", FloorSeq: 1,
		}}, time.Second)
		// Transition 3 (master=b) arrives before transition 2 (master=x):
		// the stale frame must be dropped.
		srv.write(&envelope{Type: msgMasterChanged, Seq: 3, Target: "b", Reason: FloorGranted}, time.Second)
		srv.write(&envelope{Type: msgMasterChanged, Seq: 2, Target: "x", Reason: FloorHandoff}, time.Second)
		// A genuinely newer transition still applies.
		srv.write(&envelope{Type: msgMasterChanged, Seq: 4, Target: "", Reason: FloorReleased}, time.Second)
		srv.write(&envelope{Type: msgEvent, Event: "fence"}, time.Second)
	}()
	c, err := Attach(cliConn, AttachOptions{Name: "c"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFor(t, "fence event", func() bool { return len(c.Events()) == 1 })
	// After seq 3 then stale seq 2: master must have stayed "b"; after
	// seq 4 it is "".
	if got := c.Master(); got != "" {
		t.Fatalf("master = %q after out-of-order frames", got)
	}
	if c.FloorReason() != FloorReleased {
		t.Fatalf("reason = %v", c.FloorReason())
	}
}

// TestRequestMasterRecoversLostGrant: the grant broadcast rides the lossy
// control ring; a waiter whose grant frame never arrives must still learn
// it holds the floor via the idempotent re-request fallback.
func TestRequestMasterRecoversLostGrant(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	srv := newCodec(srvConn)
	go func() {
		e, _ := srv.read() // attach
		_ = e
		srv.write(&envelope{Type: msgWelcome, Welcome: &welcomeMsg{
			SessionName: "s", ClientName: "c", Master: "holder", FloorSeq: 1,
		}}, time.Second)
		// First request: queued. The grant broadcast is then "lost" (never
		// sent). The re-request must be answered with a plain OK.
		for i := 0; ; i++ {
			req, err := srv.read()
			if err != nil {
				return
			}
			if req.Type != msgRequestMaster {
				continue
			}
			if i == 0 {
				srv.write(&envelope{Type: msgAck, Seq: req.Seq, Ack: &ackMsg{
					OK: true, Code: codeFloorQueued, Err: `queued at 1 behind "holder"`,
				}}, time.Second)
			} else {
				srv.write(&envelope{Type: msgAck, Seq: req.Seq, Ack: &ackMsg{OK: true}}, time.Second)
				return
			}
		}
	}()
	c, err := Attach(cliConn, AttachOptions{Name: "c"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := c.RequestMaster(ctx); err != nil {
		t.Fatalf("lost grant never recovered: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Fatalf("recovery took %v", elapsed)
	}
	// The ack-confirmed grant is reflected locally even though no
	// master-changed broadcast ever arrived.
	if c.Role() != RoleMaster {
		t.Fatal("granted client does not see itself as master")
	}
}

// TestRequestMasterHonoursPreCancelledContext: cancellation must bite
// during the initial request/ack exchange, not only in the wait loop.
func TestRequestMasterHonoursPreCancelledContext(t *testing.T) {
	_, dial := testSession(t, SessionConfig{})
	dial(AttachOptions{Name: "m"})
	o := dial(AttachOptions{Name: "o"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := o.RequestMaster(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RequestMaster = %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled request blocked for %v", elapsed)
	}
}

// TestFloorStatsAndPolicyParsing covers the small observable surfaces.
func TestFloorStatsAndPolicyParsing(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FloorPolicy
		ok   bool
	}{
		{"", FloorFIFO, true}, {"fifo", FloorFIFO, true},
		{"priority", FloorPriority, true}, {"steal", FloorSteal, true},
		{"anarchy", FloorFIFO, false},
	} {
		got, err := ParseFloorPolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParseFloorPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	for p, want := range map[FloorPolicy]string{FloorFIFO: "fifo", FloorPriority: "priority", FloorSteal: "steal"} {
		if p.String() != want {
			t.Fatalf("policy %d prints %q", p, p.String())
		}
	}
	reasons := map[FloorReason]string{
		FloorGranted: "granted", FloorHandoff: "handoff", FloorPromoted: "promoted",
		FloorExpired: "expired", FloorStolen: "stolen", FloorReleased: "released",
		FloorVacated: "vacated", FloorReason(0): "unknown",
	}
	for r, want := range reasons {
		if r.String() != want {
			t.Fatalf("reason %d prints %q", r, r.String())
		}
	}
}
