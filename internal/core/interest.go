package core

// clientDesc is the immutable per-client delivery descriptor: the delivery
// tier the client attached at plus its current interest set. It is held
// behind an atomic.Pointer on clientConn and swapped copy-on-write by the
// client's own subscribe/unsubscribe dispatch (single-writer: the read
// loop), so the broadcast hot path and the relay workers read it with one
// atomic load — no lock, no allocation, no mutation in place.
//
// A nil descriptor means subscribe-all at TierSteering: exactly the v3
// delivery semantics, and what handcrafted test clients get for free.
type clientDesc struct {
	// tier never changes over the descriptor's client lifetime — tier is an
	// attach-time property, so the session's tier views (steerView/obsView)
	// stay valid across interest swaps without a rebuild.
	tier Tier
	// allChans/allParams mark the subscribe-all state per kind; the maps
	// are consulted only when the corresponding flag is false.
	allChans  bool
	allParams bool
	chans     map[string]struct{}
	params    map[string]struct{}
}

// newClientDesc builds the attach-time descriptor: subscribe-all per kind
// until the initial subscriptions narrow it.
func newClientDesc(tier Tier, subs []Subscription) *clientDesc {
	d := &clientDesc{tier: tier, allChans: true, allParams: true}
	return d.withSubs(subs)
}

// tierOf returns the delivery tier, with the nil = TierSteering default.
func (d *clientDesc) tierOf() Tier {
	if d == nil {
		return TierSteering
	}
	return d.tier
}

// wantsSample reports whether any of the frame's channel keys is in the
// client's interest set. Empty keys never reach here — fanout treats a
// keyless frame as unfiltered.
//
// Called from the fanout hot path and the relay worker drains: map reads
// on an immutable descriptor, no allocation.
func (d *clientDesc) wantsSample(keys []string) bool {
	if d == nil || d.allChans {
		return true
	}
	if len(d.chans) == 0 {
		return false
	}
	for _, k := range keys {
		if _, ok := d.chans[k]; ok {
			return true
		}
	}
	return false
}

// wantsParams is wantsSample for parameter-update keys.
func (d *clientDesc) wantsParams(keys []string) bool {
	if d == nil || d.allParams {
		return true
	}
	if len(d.params) == 0 {
		return false
	}
	for _, k := range keys {
		if _, ok := d.params[k]; ok {
			return true
		}
	}
	return false
}

// clone deep-copies the descriptor; the copy-on-write step of every
// interest mutation.
func (d *clientDesc) clone() *clientDesc {
	nd := &clientDesc{tier: d.tierOf()}
	if d == nil {
		nd.allChans, nd.allParams = true, true
		return nd
	}
	nd.allChans, nd.allParams = d.allChans, d.allParams
	if len(d.chans) > 0 {
		nd.chans = make(map[string]struct{}, len(d.chans))
		for k := range d.chans {
			nd.chans[k] = struct{}{}
		}
	}
	if len(d.params) > 0 {
		nd.params = make(map[string]struct{}, len(d.params))
		for k := range d.params {
			nd.params[k] = struct{}{}
		}
	}
	return nd
}

// withSubs returns a descriptor with the selectors added. The first
// selective subscription for a kind narrows that kind from subscribe-all to
// exactly the named set; later ones accumulate.
func (d *clientDesc) withSubs(subs []Subscription) *clientDesc {
	if len(subs) == 0 {
		if d != nil {
			return d
		}
		return d.clone() // materialise the nil default
	}
	nd := d.clone()
	for _, sub := range subs {
		switch sub.Kind {
		case SubChannel:
			if nd.allChans {
				nd.allChans = false
			}
			if nd.chans == nil {
				nd.chans = make(map[string]struct{}, len(subs))
			}
			nd.chans[sub.Name] = struct{}{}
		case SubParam:
			if nd.allParams {
				nd.allParams = false
			}
			if nd.params == nil {
				nd.params = make(map[string]struct{}, len(subs))
			}
			nd.params[sub.Name] = struct{}{}
		}
	}
	return nd
}

// withoutSubs returns a descriptor with the selectors removed. Removing
// from a subscribe-all kind is a no-op (there is no set to shrink). With no
// selectors at all it clears both kinds to interested-in-nothing — the
// protocol's "unsubscribe everything".
func (d *clientDesc) withoutSubs(subs []Subscription) *clientDesc {
	nd := d.clone()
	if len(subs) == 0 {
		nd.allChans, nd.allParams = false, false
		nd.chans, nd.params = nil, nil
		return nd
	}
	for _, sub := range subs {
		switch sub.Kind {
		case SubChannel:
			delete(nd.chans, sub.Name)
		case SubParam:
			delete(nd.params, sub.Name)
		}
	}
	return nd
}

// descSubscribeAll returns the subscribe-all reset descriptor at the
// client's tier (flagSubAll).
func descSubscribeAll(tier Tier) *clientDesc {
	return &clientDesc{tier: tier, allChans: true, allParams: true}
}
