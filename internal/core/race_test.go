//go:build race

package core

// raceEnabled reports that this test binary runs under the race detector,
// where sync.Pool deliberately drops ~25% of Puts — every pooled-frame
// reuse claim becomes probabilistic, so the AllocsPerRun guards skip their
// zero-alloc assertions (the non-race run of the same suite enforces them).
const raceEnabled = true
