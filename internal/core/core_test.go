package core

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// testCtx bounds one steering round trip so a wedged session fails the
// test instead of hanging it; the context-form calls take it where the
// retired convenience wrappers took a fixed timeout.
func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// testSession starts a session on a loopback TCP listener and returns it
// with a dialer.
func testSession(t *testing.T, cfg SessionConfig) (*Session, func(opts AttachOptions) *Client) {
	t.Helper()
	if cfg.Name == "" {
		cfg.Name = "test-session"
	}
	s := NewSession(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(s.Close)

	dial := func(opts AttachOptions) *Client {
		t.Helper()
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c, err := Attach(conn, opts)
		if err != nil {
			t.Fatalf("attach: %v", err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	return s, dial
}

// waitFor polls cond until true or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestAttachWelcome(t *testing.T) {
	s, dial := testSession(t, SessionConfig{Name: "lb3d-run", AppName: "lb3d"})
	st := s.Steered()
	var coupling float64
	if err := st.RegisterFloat("coupling", 1.5, 0, 10, "miscibility", func(v float64) { coupling = v }); err != nil {
		t.Fatal(err)
	}
	_ = coupling

	c := dial(AttachOptions{Name: "manchester"})
	if c.SessionName() != "lb3d-run" || c.AppName() != "lb3d" {
		t.Fatalf("welcome contents: %q %q", c.SessionName(), c.AppName())
	}
	if c.Role() != RoleMaster {
		t.Fatal("first client should be master")
	}
	p, ok := c.Param("coupling")
	if !ok || p.Value != FloatValue(1.5) || p.Min != 0 || p.Max != 10 {
		t.Fatalf("param not in welcome: %+v", p)
	}
	if p.Type != FloatParam {
		t.Fatalf("param type = %v", p.Type)
	}
}

func TestSecondClientIsObserver(t *testing.T) {
	_, dial := testSession(t, SessionConfig{})
	m := dial(AttachOptions{Name: "master"})
	o := dial(AttachOptions{Name: "obs"})
	if m.Role() != RoleMaster {
		t.Fatal("first client lost master role")
	}
	if o.Role() != RoleObserver {
		t.Fatal("second client should observe")
	}
	if o.Master() != "master" {
		t.Fatalf("observer sees master %q", o.Master())
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	s := NewSession(SessionConfig{Name: "x"})
	defer s.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)

	conn1, _ := net.Dial("tcp", l.Addr().String())
	c1, err := Attach(conn1, AttachOptions{Name: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	conn2, _ := net.Dial("tcp", l.Addr().String())
	if _, err := Attach(conn2, AttachOptions{Name: "alice"}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestSteeringAppliedAtPoll(t *testing.T) {
	s, dial := testSession(t, SessionConfig{})
	st := s.Steered()
	applied := make(chan float64, 1)
	st.RegisterFloat("g", 0, 0, 10, "", func(v float64) { applied <- v })

	m := dial(AttachOptions{Name: "m"})
	if err := m.SetParamContext(testCtx(t), "g", 4.5); err != nil {
		t.Fatalf("SetParam: %v", err)
	}
	// Not yet applied: the simulation has not polled.
	select {
	case v := <-applied:
		t.Fatalf("applied %v before poll", v)
	case <-time.After(20 * time.Millisecond):
	}
	if got := st.Poll(); got != ControlContinue {
		t.Fatalf("Poll = %v", got)
	}
	select {
	case v := <-applied:
		if v != 4.5 {
			t.Fatalf("applied %v", v)
		}
	default:
		t.Fatal("steer not applied at poll")
	}
	// Update broadcast reaches the client.
	waitFor(t, "param update", func() bool {
		p, _ := m.Param("g")
		return p.Value == FloatValue(4.5)
	})
	if s.Stats().SteersApplied != 1 {
		t.Fatalf("SteersApplied = %d", s.Stats().SteersApplied)
	}
}

func TestObserverCannotSteer(t *testing.T) {
	s, dial := testSession(t, SessionConfig{})
	st := s.Steered()
	st.RegisterFloat("g", 0, 0, 10, "", func(float64) {})
	dial(AttachOptions{Name: "m"})
	o := dial(AttachOptions{Name: "o"})
	err := o.SetParamContext(testCtx(t), "g", 1)
	if err == nil || !strings.Contains(err.Error(), "master") {
		t.Fatalf("observer steer err = %v", err)
	}
	if s.Stats().SteersRejected == 0 {
		t.Fatal("rejection not counted")
	}
}

func TestParamValidation(t *testing.T) {
	s, dial := testSession(t, SessionConfig{})
	st := s.Steered()
	st.RegisterFloat("g", 0, 0, 10, "", func(float64) {})
	m := dial(AttachOptions{Name: "m"})
	if err := m.SetParamContext(testCtx(t), "nosuch", 1); err == nil {
		t.Fatal("unknown param accepted")
	}
	if err := m.SetParamContext(testCtx(t), "g", 11); err == nil {
		t.Fatal("out-of-bounds accepted")
	}
	if err := m.SetParamContext(testCtx(t), "g", -0.1); err == nil {
		t.Fatal("below-min accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	s := NewSession(SessionConfig{})
	defer s.Close()
	st := s.Steered()
	if err := st.RegisterFloat("a", 0, 0, 1, "", nil); err == nil {
		t.Fatal("nil apply accepted")
	}
	if err := st.RegisterFloat("a", 0, 1, 0, "", func(float64) {}); err == nil {
		t.Fatal("inverted bounds accepted")
	}
	if err := st.RegisterFloat("a", 0, 0, 1, "", func(float64) {}); err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterFloat("a", 0, 0, 1, "", func(float64) {}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestPauseResumeStop(t *testing.T) {
	s, dial := testSession(t, SessionConfig{})
	st := s.Steered()
	m := dial(AttachOptions{Name: "m"})

	if err := m.PauseContext(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pause to take effect", func() bool { return st.Poll() == ControlPaused })

	// A paused PollBlocking with timeout returns paused, not hang.
	if got := st.PollBlocking(30 * time.Millisecond); got != ControlPaused {
		t.Fatalf("PollBlocking = %v", got)
	}

	done := make(chan Control, 1)
	go func() { done <- st.PollBlocking(0) }()
	time.Sleep(20 * time.Millisecond)
	if err := m.ResumeContext(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if got != ControlContinue {
			t.Fatalf("after resume: %v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("PollBlocking stuck after resume")
	}

	if err := m.StopContext(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stop", func() bool { return st.Poll() == ControlStop })
}

func TestCheckpointRequest(t *testing.T) {
	s, dial := testSession(t, SessionConfig{})
	st := s.Steered()
	m := dial(AttachOptions{Name: "m"})
	if st.CheckpointRequested() {
		t.Fatal("spurious checkpoint request")
	}
	if err := m.CheckpointContext(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "checkpoint pending", func() bool {
		st.Poll()
		return st.CheckpointRequested()
	})
	if st.CheckpointRequested() {
		t.Fatal("checkpoint request not cleared")
	}
}

func TestViewSynchronisation(t *testing.T) {
	_, dial := testSession(t, SessionConfig{})
	m := dial(AttachOptions{Name: "m"})
	o1 := dial(AttachOptions{Name: "o1"})
	o2 := dial(AttachOptions{Name: "o2"})

	v := ViewState{Eye: [3]float64{5, 6, 7}, FovY: 1.1, VizParams: map[string]float64{"iso": 0.25}}
	if err := m.SetViewContext(testCtx(t), v); err != nil {
		t.Fatal(err)
	}
	for _, c := range []*Client{m, o1, o2} {
		waitFor(t, "view convergence", func() bool {
			got := c.View()
			return got.Eye == [3]float64{5, 6, 7} && got.VizParams["iso"] == 0.25
		})
	}
	// Observer may not move the shared view.
	if err := o1.SetViewContext(testCtx(t), v); err == nil {
		t.Fatal("observer moved the shared view")
	}
}

func TestViewSeqMonotonic(t *testing.T) {
	_, dial := testSession(t, SessionConfig{})
	m := dial(AttachOptions{Name: "m"})
	o := dial(AttachOptions{Name: "o"})
	for i := 1; i <= 5; i++ {
		v := ViewState{Eye: [3]float64{float64(i), 0, 0}}
		if err := m.SetViewContext(testCtx(t), v); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "final view", func() bool { return o.View().Eye[0] == 5 })
	if o.View().Seq != 5 {
		t.Fatalf("view seq = %d, want 5", o.View().Seq)
	}
}

func TestMasterHandoff(t *testing.T) {
	s, dial := testSession(t, SessionConfig{})
	st := s.Steered()
	st.RegisterFloat("g", 0, 0, 10, "", func(float64) {})
	m := dial(AttachOptions{Name: "juelich"})
	o := dial(AttachOptions{Name: "phoenix"})

	if err := o.HandoffMaster("juelich", time.Second); err == nil {
		t.Fatal("non-master handed off")
	}
	if err := m.HandoffMaster("nosuch", time.Second); err == nil {
		t.Fatal("handoff to unknown client accepted")
	}
	if err := m.HandoffMaster("phoenix", time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "role propagation", func() bool {
		return o.Role() == RoleMaster && m.Role() == RoleObserver
	})
	if s.Master() != "phoenix" {
		t.Fatalf("session master = %q", s.Master())
	}
	// The new master steers; the old one cannot.
	if err := o.SetParamContext(testCtx(t), "g", 2); err != nil {
		t.Fatalf("new master rejected: %v", err)
	}
	if err := m.SetParamContext(testCtx(t), "g", 3); err == nil {
		t.Fatal("old master still steering")
	}
}

func TestMasterDisconnectPromotesOldestRequester(t *testing.T) {
	s, dial := testSession(t, SessionConfig{})
	m := dial(AttachOptions{Name: "first"})
	o1 := dial(AttachOptions{Name: "second"}) // pure observer: never promoted
	o2 := dial(AttachOptions{Name: "third", WantMaster: true})
	o3 := dial(AttachOptions{Name: "fourth", WantMaster: true})
	waitFor(t, "all attached", func() bool { return len(s.Clients()) == 4 })

	m.Close()
	// Promotion prefers the oldest client that asked for mastership, not
	// the oldest client outright.
	waitFor(t, "promotion", func() bool { return s.Master() == "third" })
	waitFor(t, "client view of promotion", func() bool {
		return o2.Role() == RoleMaster && o1.Master() == "third" && o3.Master() == "third"
	})
	if o1.Role() != RoleObserver {
		t.Fatal("pure observer was promoted")
	}
}

func TestMasterDisconnectWithOnlyObserversFreesFloor(t *testing.T) {
	s, dial := testSession(t, SessionConfig{})
	m := dial(AttachOptions{Name: "first"})
	o := dial(AttachOptions{Name: "viewer"})
	waitFor(t, "attached", func() bool { return len(s.Clients()) == 2 })

	m.Close()
	// Nobody asked for mastership: the floor is broadcast free rather than
	// press-ganging the observer.
	waitFor(t, "no-master broadcast", func() bool {
		return o.Master() == "" && o.FloorReason() == FloorVacated
	})
	if s.Master() != "" {
		t.Fatalf("session master = %q, want none", s.Master())
	}
	if o.Role() != RoleObserver {
		t.Fatal("observer hijacked into mastership")
	}
	// The floor being free, an explicit request now succeeds at once.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := o.RequestMaster(ctx); err != nil {
		t.Fatalf("RequestMaster on free floor: %v", err)
	}
	waitFor(t, "grant visible", func() bool { return s.Master() == "viewer" })
}

func TestRequestMaster(t *testing.T) {
	s, dial := testSession(t, SessionConfig{})
	m := dial(AttachOptions{Name: "m"})
	o := dial(AttachOptions{Name: "o"})
	// The explicit non-queueing request is denied with the holder's name —
	// never silently ignored.
	err := o.TryRequestMaster(time.Second)
	if !errors.Is(err, ErrFloorHeld) {
		t.Fatalf("TryRequestMaster while held = %v, want ErrFloorHeld", err)
	}
	if !strings.Contains(err.Error(), `"m"`) {
		t.Fatalf("denial does not name the holder: %v", err)
	}
	m.Close()
	waitFor(t, "master release", func() bool { return s.Master() == "" })
	late := dial(AttachOptions{Name: "late"})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := late.RequestMaster(ctx); err != nil {
		t.Fatalf("RequestMaster on free floor: %v", err)
	}
	waitFor(t, "grant", func() bool { return s.Master() == "late" })
	_ = o
}

func TestWantMasterOnAttach(t *testing.T) {
	_, dial := testSession(t, SessionConfig{})
	o := dial(AttachOptions{Name: "viewer"}) // auto-master as first
	o.Close()
	time.Sleep(10 * time.Millisecond)
	m := dial(AttachOptions{Name: "steerer", WantMaster: true})
	waitFor(t, "master on attach", func() bool { return m.Role() == RoleMaster })
}

func TestSampleDelivery(t *testing.T) {
	s, dial := testSession(t, SessionConfig{})
	st := s.Steered()
	c := dial(AttachOptions{Name: "viz"})
	waitFor(t, "attach", func() bool { return len(s.Clients()) == 1 })

	sample := NewSample(42)
	sample.Channels["phi"] = Channel{Dims: [3]int{2, 2, 1}, Data: []float64{1, 2, 3, 4}}
	sample.Channels["seg"] = Scalar(0.7)
	st.Emit(sample)

	select {
	case got := <-c.Samples():
		if got.Step != 42 {
			t.Fatalf("step = %d", got.Step)
		}
		if got.Channels["seg"].Value() != 0.7 {
			t.Fatalf("scalar = %v", got.Channels["seg"].Value())
		}
		if len(got.Channels["phi"].Data) != 4 {
			t.Fatalf("phi data = %v", got.Channels["phi"].Data)
		}
		if got.ByteSize() != 5*8 {
			t.Fatalf("ByteSize = %d", got.ByteSize())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sample not delivered")
	}
}

func TestEmitNeverBlocksOnSlowClient(t *testing.T) {
	s, dial := testSession(t, SessionConfig{SampleQueue: 2})
	st := s.Steered()
	c := dial(AttachOptions{Name: "slow", SampleBuffer: 1})
	waitFor(t, "attach", func() bool { return len(s.Clients()) == 1 })
	_ = c // the client never reads its samples

	start := time.Now()
	for i := 0; i < 500; i++ {
		sample := NewSample(int64(i))
		sample.Channels["x"] = Scalar(float64(i))
		st.Emit(sample)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Emit blocked on slow client: %v for 500 samples", elapsed)
	}
	stats := s.Stats()
	if stats.SamplesEmitted != 500 {
		t.Fatalf("emitted = %d", stats.SamplesEmitted)
	}
	if stats.SamplesDropped == 0 {
		t.Fatal("no drops recorded despite slow client")
	}
}

func TestEmitWithNoClients(t *testing.T) {
	s := NewSession(SessionConfig{})
	defer s.Close()
	st := s.Steered()
	sample := NewSample(1)
	st.Emit(sample) // must not panic or block
	if s.Stats().SamplesEmitted != 1 {
		t.Fatal("emission not counted")
	}
}

func TestEventsBroadcast(t *testing.T) {
	s, dial := testSession(t, SessionConfig{})
	st := s.Steered()
	c := dial(AttachOptions{Name: "c"})
	waitFor(t, "attach", func() bool { return len(s.Clients()) == 1 })
	st.Event("iterating: residual 1e-3")
	waitFor(t, "event", func() bool {
		evs := c.Events()
		return len(evs) == 1 && evs[0] == "iterating: residual 1e-3"
	})
}

func TestClientCrashDoesNotDisturbOthers(t *testing.T) {
	s, dial := testSession(t, SessionConfig{})
	st := s.Steered()
	good := dial(AttachOptions{Name: "good"})

	// A client that attaches and then has its conn severed abruptly.
	bad := dial(AttachOptions{Name: "bad"})
	waitFor(t, "both attached", func() bool { return len(s.Clients()) == 2 })
	bad.codec.conn.Close() // abrupt severing, no detach frame

	waitFor(t, "dead client dropped", func() bool { return len(s.Clients()) == 1 })
	sample := NewSample(1)
	sample.Channels["x"] = Scalar(1)
	st.Emit(sample)
	select {
	case <-good.Samples():
	case <-time.After(2 * time.Second):
		t.Fatal("surviving client starved")
	}
}

func TestConcurrentClientsSingleMasterInvariant(t *testing.T) {
	s, dial := testSession(t, SessionConfig{})
	const n = 8
	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		clients[i] = dial(AttachOptions{Name: string(rune('a' + i))})
	}
	waitFor(t, "all attached", func() bool { return len(s.Clients()) == n })

	// Everyone hammers non-queueing floor requests concurrently; the
	// invariant is that the session never reports more than one master and
	// client roles converge. (Queued-request churn, with releases in the
	// mix, is exercised in floor_test.go.)
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				c.TryRequestMaster(time.Second)
			}
		}(c)
	}
	wg.Wait()

	waitFor(t, "role convergence", func() bool {
		masters := 0
		for _, c := range clients {
			if c.Role() == RoleMaster {
				masters++
			}
		}
		return masters == 1
	})
	if s.Master() == "" {
		t.Fatal("no master after churn")
	}
}

func TestControlStringers(t *testing.T) {
	if ControlContinue.String() != "continue" || ControlStop.String() != "stop" ||
		ControlPaused.String() != "paused" || ControlCheckpoint.String() != "checkpoint" {
		t.Fatal("control names wrong")
	}
	if Control(99).String() != "unknown" {
		t.Fatal("unknown control must format")
	}
	if RoleMaster.String() != "master" || RoleObserver.String() != "observer" {
		t.Fatal("role names wrong")
	}
}
