// Package core implements collaborative application steering: the central
// contribution of Brooke et al., "Application Steering in a Collaborative
// Environment" (SC2003).
//
// A simulation instruments itself with a Steered handle: it registers
// steerable parameters, emits samples at loop boundaries, and polls for
// steering commands. A Session exposes the simulation to any number of
// remote Clients, of which exactly one at a time holds the master role and
// may steer; the others are observers (the paper's active vs passive
// collaboration modes, sections 2.4 and 3.3). The session keeps every
// participant's view state synchronised so "everyone has the same view of
// the data (e.g. position and orientation of view point or parameters like
// thresholds that influence the visualization)".
//
// The design obeys the VISIT rule of section 3.2: nothing a client does can
// stall the simulation. All interaction with the simulation happens at
// simulation-initiated poll points; sample delivery to slow clients drops
// frames rather than blocking the emitter.
package core

import (
	"fmt"
	"sort"
	"sync"
)

// Param describes one steerable parameter as shipped to clients.
type Param struct {
	Name string
	// Value is the current value. Only float parameters are steerable in
	// this implementation, matching the showcase demos (miscibility, beam
	// charge/intensity/direction components, vent temperature...).
	Value    float64
	Min, Max float64
	// Help is a one-line description shown by steering UIs.
	Help string
}

// paramDef is the application-side definition backing a Param.
type paramDef struct {
	Param
	apply func(float64)
}

// paramTable is the concurrency-safe registry of steerable parameters.
type paramTable struct {
	mu   sync.RWMutex
	defs map[string]*paramDef
}

func newParamTable() *paramTable {
	return &paramTable{defs: make(map[string]*paramDef)}
}

// register adds a parameter definition; duplicate names are an error.
func (t *paramTable) register(d *paramDef) error {
	if d.apply == nil {
		return fmt.Errorf("core: parameter %q has no apply function", d.Name)
	}
	if d.Max < d.Min {
		return fmt.Errorf("core: parameter %q has inverted bounds [%v, %v]", d.Name, d.Min, d.Max)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.defs[d.Name]; dup {
		return fmt.Errorf("core: duplicate parameter %q", d.Name)
	}
	t.defs[d.Name] = d
	return nil
}

// validate checks a steering request against the table and bounds.
func (t *paramTable) validate(name string, v float64) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	d, ok := t.defs[name]
	if !ok {
		return fmt.Errorf("core: unknown parameter %q", name)
	}
	if v < d.Min || v > d.Max {
		return fmt.Errorf("core: %q = %v outside [%v, %v]", name, v, d.Min, d.Max)
	}
	return nil
}

// applyAndGet applies a validated steering request and returns the updated
// Param for broadcast. It must only be called from the simulation's poll
// path so applications never see concurrent parameter mutation.
func (t *paramTable) applyAndGet(name string, v float64) (Param, error) {
	t.mu.Lock()
	d, ok := t.defs[name]
	if !ok {
		t.mu.Unlock()
		return Param{}, fmt.Errorf("core: unknown parameter %q", name)
	}
	d.Value = v
	p := d.Param
	apply := d.apply
	t.mu.Unlock()
	apply(v)
	return p, nil
}

// snapshot returns all parameters sorted by name.
func (t *paramTable) snapshot() []Param {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Param, 0, len(t.defs))
	for _, d := range t.defs {
		out = append(out, d.Param)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
