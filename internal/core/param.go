// Package core implements collaborative application steering: the central
// contribution of Brooke et al., "Application Steering in a Collaborative
// Environment" (SC2003).
//
// A simulation instruments itself with a Steered handle: it registers
// steerable parameters, emits samples at loop boundaries, and polls for
// steering commands. A Session exposes the simulation to any number of
// remote Clients, of which exactly one at a time holds the master role and
// may steer; the others are observers (the paper's active vs passive
// collaboration modes, sections 2.4 and 3.3). The session keeps every
// participant's view state synchronised so "everyone has the same view of
// the data (e.g. position and orientation of view point or parameters like
// thresholds that influence the visualization)".
//
// The design obeys the VISIT rule of section 3.2: nothing a client does can
// stall the simulation. All interaction with the simulation happens at
// simulation-initiated poll points; sample delivery to slow clients drops
// frames rather than blocking the emitter.
package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/wire"
)

// ParamType names the steering semantics of a parameter; it decides how
// incoming Values are validated and converted.
type ParamType uint8

// Parameter types.
const (
	// FloatParam is a bounded float64 parameter.
	FloatParam ParamType = iota + 1
	// IntParam is a bounded int64 parameter.
	IntParam
	// BoolParam is an on/off toggle.
	BoolParam
	// StringParam is a free-form string.
	StringParam
	// ChoiceParam selects one of a fixed list of strings; an integer value
	// indexes the list (receiver-side conversion).
	ChoiceParam
)

// String returns the type name.
func (t ParamType) String() string {
	switch t {
	case FloatParam:
		return "float"
	case IntParam:
		return "int"
	case BoolParam:
		return "bool"
	case StringParam:
		return "string"
	case ChoiceParam:
		return "choice"
	default:
		return fmt.Sprintf("invalid(%d)", uint8(t))
	}
}

// MarshalJSON writes the type as its name.
func (t ParamType) MarshalJSON() ([]byte, error) { return json.Marshal(t.String()) }

// UnmarshalJSON accepts a type name (or a legacy numeric code).
func (t *ParamType) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		var n uint8
		if err2 := json.Unmarshal(data, &n); err2 != nil {
			return err
		}
		*t = ParamType(n)
		return nil
	}
	for _, cand := range []ParamType{FloatParam, IntParam, BoolParam, StringParam, ChoiceParam} {
		if cand.String() == s {
			*t = cand
			return nil
		}
	}
	return fmt.Errorf("core: unknown parameter type %q", s)
}

// Param describes one steerable parameter as shipped to clients.
type Param struct {
	Name string
	// Type selects the validation and conversion rules.
	Type ParamType
	// Value is the current value, tagged with its wire kind.
	Value Value
	// Min, Max bound numeric parameters (FloatParam, IntParam).
	Min, Max float64
	// Choices lists the legal values of a ChoiceParam.
	Choices []string
	// Help is a one-line description shown by steering UIs.
	Help string
}

// paramDef is the application-side definition backing a Param.
type paramDef struct {
	Param
	apply func(Value)
}

// paramTable is the concurrency-safe registry of steerable parameters.
type paramTable struct {
	mu   sync.RWMutex
	defs map[string]*paramDef
}

func newParamTable() *paramTable {
	return &paramTable{defs: make(map[string]*paramDef)}
}

// register adds a parameter definition; duplicate names are an error.
func (t *paramTable) register(d *paramDef) error {
	if d.apply == nil {
		return fmt.Errorf("core: parameter %q has no apply function", d.Name)
	}
	switch d.Type {
	case FloatParam, IntParam:
		if d.Max < d.Min {
			return fmt.Errorf("core: parameter %q has inverted bounds [%v, %v]", d.Name, d.Min, d.Max)
		}
	case ChoiceParam:
		if len(d.Choices) == 0 {
			return fmt.Errorf("core: choice parameter %q has no choices", d.Name)
		}
	case BoolParam, StringParam:
	default:
		return fmt.Errorf("core: parameter %q has invalid type %v", d.Name, d.Type)
	}
	if _, err := normalize(&d.Param, d.Value); err != nil {
		return fmt.Errorf("core: parameter %q initial value: %w", d.Name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.defs[d.Name]; dup {
		return fmt.Errorf("core: duplicate parameter %q", d.Name)
	}
	t.defs[d.Name] = d
	return nil
}

// normalize converts v to the parameter's canonical kind and checks it
// against the parameter's constraints: receiver-side conversion with no
// silent truncation.
func normalize(p *Param, v Value) (Value, error) {
	switch p.Type {
	case FloatParam:
		f := v.Float()
		if v.Kind == wire.KindString || f != f { // NaN: inconvertible or literal NaN
			return Value{}, fmt.Errorf("%w: %q wants a number, got %s", ErrBadValue, p.Name, v.Kind)
		}
		if f < p.Min || f > p.Max {
			return Value{}, fmt.Errorf("%w: %q = %v outside [%v, %v]", ErrBadValue, p.Name, f, p.Min, p.Max)
		}
		return FloatValue(f), nil
	case IntParam:
		i, err := v.Int()
		if err != nil {
			return Value{}, fmt.Errorf("%w (parameter %q)", err, p.Name)
		}
		if f := float64(i); f < p.Min || f > p.Max {
			return Value{}, fmt.Errorf("%w: %q = %d outside [%v, %v]", ErrBadValue, p.Name, i, p.Min, p.Max)
		}
		return IntValue(i), nil
	case BoolParam:
		b, err := v.Bool()
		if err != nil {
			return Value{}, fmt.Errorf("%w (parameter %q)", err, p.Name)
		}
		return BoolValue(b), nil
	case StringParam:
		if v.Kind != wire.KindString {
			return Value{}, fmt.Errorf("%w: %q wants a string, got %s", ErrBadValue, p.Name, v.Kind)
		}
		return v, nil
	case ChoiceParam:
		if v.Kind != wire.KindString {
			i, err := v.Int()
			if err != nil {
				return Value{}, fmt.Errorf("%w: %q wants a choice name or index, got %s", ErrBadValue, p.Name, v.Kind)
			}
			if i < 0 || int(i) >= len(p.Choices) {
				return Value{}, fmt.Errorf("%w: %q index %d outside choices [0, %d)", ErrBadValue, p.Name, i, len(p.Choices))
			}
			return StringValue(p.Choices[i]), nil
		}
		for _, c := range p.Choices {
			if c == v.S {
				return v, nil
			}
		}
		return Value{}, fmt.Errorf("%w: %q has no choice %q", ErrBadValue, p.Name, v.S)
	default:
		return Value{}, fmt.Errorf("%w: parameter %q has invalid type", ErrBadValue, p.Name)
	}
}

// validate checks a steering request against the table and returns the
// normalized (receiver-converted) value.
func (t *paramTable) validate(name string, v Value) (Value, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	d, ok := t.defs[name]
	if !ok {
		return Value{}, fmt.Errorf("%w: %q", ErrUnknownParam, name)
	}
	return normalize(&d.Param, v)
}

// has reports whether a parameter is registered; subscription validation
// checks selector names against the registry without touching values.
func (t *paramTable) has(name string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.defs[name]
	return ok
}

// applyAndGet applies a validated steering request and returns the updated
// Param for broadcast. It must only be called from the simulation's poll
// path so applications never see concurrent parameter mutation.
func (t *paramTable) applyAndGet(name string, v Value) (Param, error) {
	t.mu.Lock()
	d, ok := t.defs[name]
	if !ok {
		t.mu.Unlock()
		return Param{}, fmt.Errorf("%w: %q", ErrUnknownParam, name)
	}
	nv, err := normalize(&d.Param, v)
	if err != nil {
		t.mu.Unlock()
		return Param{}, err
	}
	d.Value = nv
	p := d.Param
	apply := d.apply
	t.mu.Unlock()
	apply(nv)
	return p, nil
}

// snapshot returns all parameters sorted by name.
func (t *paramTable) snapshot() []Param {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Param, 0, len(t.defs))
	for _, d := range t.defs {
		out = append(out, d.Param)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
