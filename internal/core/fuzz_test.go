package core

import (
	"bytes"
	"testing"

	"repro/internal/wire"
)

// fuzzSeed encodes one envelope for the corpus, failing silently on
// malformed constructions (the fuzzer only needs bytes).
func fuzzSeed(e *envelope) []byte {
	buf, _ := encodeEnvelope(nil, e)
	return buf
}

// FuzzEnvelopeRoundTrip drives the protocol v2 envelope codec with
// arbitrary byte streams. Anything that decodes must re-encode canonically:
// encode(decode(x)) must be a fixed point. Inputs that do not decode must
// fail with an error — never a panic or an unbounded allocation.
func FuzzEnvelopeRoundTrip(f *testing.F) {
	view := &ViewState{Seq: 3, Eye: [3]float64{1, 2, 3}, FovY: 0.7, VizParams: map[string]float64{"iso": 0.5}}
	sample := NewSample(9)
	sample.Channels["phi"] = Channel{Dims: [3]int{2, 1, 1}, Data: []float64{1, 2}}
	f.Add(fuzzSeed(&envelope{Type: msgAttach, Attach: &attachMsg{Name: "a", Session: "s", WantMaster: true}}))
	f.Add(fuzzSeed(&envelope{Type: msgWelcome, Welcome: &welcomeMsg{
		SessionName: "s", AppName: "app", ClientName: "c", Master: "m",
		Params: []Param{
			{Name: "g", Type: FloatParam, Value: FloatValue(1), Min: 0, Max: 2},
			{Name: "mode", Type: ChoiceParam, Value: StringValue("x"), Choices: []string{"x", "y"}},
		},
		View: view,
	}}))
	f.Add(fuzzSeed(&envelope{Type: msgSample, Sample: sample}))
	f.Add(fuzzSeed(&envelope{Type: msgSetParam, Seq: 4, Sets: []ParamSet{
		{Name: "g", Value: FloatValue(1.5)}, {Name: "b", Value: BoolValue(true)},
	}}))
	f.Add(fuzzSeed(&envelope{Type: msgViewUpdate, View: view}))
	f.Add(fuzzSeed(&envelope{Type: msgCommand, Command: cmdPause}))
	f.Add(fuzzSeed(&envelope{Type: msgAck, Seq: 1, Ack: &ackMsg{Code: codeBadValue, Err: "no"}}))
	f.Add(fuzzSeed(&envelope{Type: msgEvent, Event: "paused"}))
	f.Add(fuzzSeed(&envelope{Type: msgRequestMaster, Seq: 5, NoWait: true}))
	f.Add(fuzzSeed(&envelope{Type: msgRequestMaster, Seq: 6, Steal: true}))
	f.Add(fuzzSeed(&envelope{Type: msgReleaseMaster, Seq: 7}))
	f.Add(fuzzSeed(&envelope{Type: msgHeartbeat}))
	f.Add(fuzzSeed(&envelope{Type: msgMasterChanged, Target: "m", Reason: FloorExpired}))
	f.Add(fuzzSeed(&envelope{Type: msgAck, Seq: 8, Ack: &ackMsg{OK: true, Code: codeFloorQueued, Err: `queued at 1 behind "m"`}}))
	f.Add([]byte("VSIT junk that is not a frame"))

	limits := wire.Limits{MaxElements: 1 << 12, MaxBlobLen: 1 << 12, MaxPayload: 1 << 16}
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := wire.NewDecoder(bytes.NewReader(data))
		dec.SetLimits(limits)
		e, err := decodeEnvelope(dec, 1<<20)
		if err != nil {
			return
		}
		buf, err := encodeEnvelope(nil, e)
		if err != nil {
			// Decoded envelopes of known types always re-encode; an encode
			// failure here means decode accepted something malformed.
			t.Fatalf("re-encode of decoded envelope failed: %v", err)
		}
		dec2 := wire.NewDecoder(bytes.NewReader(buf))
		dec2.SetLimits(limits)
		e2, err := decodeEnvelope(dec2, 1<<20)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		buf2, err := encodeEnvelope(nil, e2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Fatalf("envelope codec not canonical:\n  first  %x\n  second %x", buf, buf2)
		}
	})
}
