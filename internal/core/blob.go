package core

// Blob is the bulk binary frame class (protocol v5): an application-defined
// payload — compressed pixel tiles, a rendered frame, geometry — broadcast
// through the same refcounted FrameBuf fan-out as samples. Where a Sample
// is a small map of named float channels (~100 bytes on the wire), a Blob
// is one opaque byte payload in the 64KB–1MB range: it rides the
// size-classed frame pools and, on TCP conns, the zero-copy writev egress
// path (a blob payload is always far above the coalesce threshold).
//
// Stream names the logical flow the blob belongs to ("pixels", "tiles",
// "geometry") and doubles as the frame's interest key: subscribe-all
// clients receive every stream, selective clients opt in with a SubChannel
// subscription for the stream name. Seq, Encoding, Width, Height and Flags
// are carried verbatim for the publisher's own framing — keyframe/delta
// chains, codec discriminators, tile geometry — the session never
// interprets them.
//
// Blobs are delivered to v5+ clients only (older decoders reject the
// message type) and are never journaled: blob streams are delta-coded by
// their publisher, so a replayed delta without its keyframe is garbage —
// publishers re-key late joiners instead (see JournalBlob).
type Blob struct {
	// Stream is the flow name and interest key; "" broadcasts keyless
	// (every v5 client receives it regardless of subscriptions).
	Stream string
	// Seq is the publisher's sequence number within the stream.
	Seq uint64
	// Encoding discriminates the payload format; application-defined.
	Encoding int64
	// Width/Height carry pixel-stream geometry; zero when meaningless.
	Width, Height int
	// Flags is application-defined framing state (keyframe bits, final-tile
	// markers...).
	Flags int64
	// Data is the payload. The session encodes it with one copy into the
	// pooled broadcast buffer; receivers get a slice they own outright.
	Data []byte
}

// ByteSize estimates the wire footprint of the blob for frame-pool sizing.
func (b *Blob) ByteSize() int {
	return len(b.Data) + len(b.Stream) + 160
}
