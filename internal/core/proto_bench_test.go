package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"testing"

	"repro/internal/wire"
)

// The protocol v1 baseline: the gob envelope shape this package shipped
// before the wire-native codec, kept here (and only here) so the benchmark
// quantifies what the redesign bought.
type gobEnvelope struct {
	Type uint8
	Seq  uint64

	Sample *Sample
	Params []gobParam
}

type gobParam struct {
	Name            string
	Value, Min, Max float64
	Help            string
}

// benchSample builds the benchmark payload: one bulk channel of n floats
// plus a scalar, the shape every steered demo emits.
func benchSample(n int) *Sample {
	s := NewSample(12345)
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i) * 0.25
	}
	s.Channels["phi"] = Channel{Dims: [3]int{16, 16, n / 256}, Data: data}
	s.Channels["seg"] = Scalar(0.7)
	return s
}

// BenchmarkProtocolCodec compares the gob v1 baseline against the wire v2
// codec on the protocol's two dominant frames: bulk samples and small
// control updates. The gob encoder streams to io.Discard with its type info
// already amortised — the steady-state per-client cost v1 paid on every
// broadcast.
func BenchmarkProtocolCodec(b *testing.B) {
	sample := benchSample(4096)
	v2sample := &envelope{Type: msgSample, Sample: sample}
	v1sample := &gobEnvelope{Type: uint8(msgSample), Sample: sample}
	v2control := &envelope{Type: msgParamUpdate, Params: []Param{
		{Name: "miscibility-g", Type: FloatParam, Value: FloatValue(4.5), Min: 0, Max: 6, Help: "coupling"},
	}}
	v1control := &gobEnvelope{Type: uint8(msgParamUpdate), Params: []gobParam{
		{Name: "miscibility-g", Value: 4.5, Min: 0, Max: 6, Help: "coupling"},
	}}

	b.Run("encode-sample/gob", func(b *testing.B) {
		enc := gob.NewEncoder(io.Discard)
		if err := enc.Encode(v1sample); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(v1sample); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode-sample/wire", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			if buf, err = encodeEnvelope(buf[:0], v2sample); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode-control/gob", func(b *testing.B) {
		enc := gob.NewEncoder(io.Discard)
		if err := enc.Encode(v1control); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(v1control); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode-control/wire", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			if buf, err = encodeEnvelope(buf[:0], v2control); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("roundtrip-sample/gob", func(b *testing.B) {
		var stream bytes.Buffer
		enc := gob.NewEncoder(&stream)
		dec := gob.NewDecoder(&stream)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(v1sample); err != nil {
				b.Fatal(err)
			}
			var out gobEnvelope
			if err := dec.Decode(&out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("roundtrip-sample/wire", func(b *testing.B) {
		buf, err := encodeEnvelope(nil, v2sample)
		if err != nil {
			b.Fatal(err)
		}
		rd := bytes.NewReader(buf)
		dec := wire.NewDecoder(rd)
		var scratch []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if scratch, err = encodeEnvelope(scratch[:0], v2sample); err != nil {
				b.Fatal(err)
			}
			rd.Reset(scratch)
			dec.Reset(rd)
			if _, err := decodeEnvelope(dec, clientEnvelopeBudget); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkProtocolFanout pins the encode-once property: broadcasting one
// sample to N clients costs one serialization, so allocs/op stays flat as
// the client count grows from 1 to 16 (only channel sends scale).
func BenchmarkProtocolFanout(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients-%d", n), func(b *testing.B) {
			// Fake attached clients: real queues, no sockets, so the
			// measurement isolates encode + enqueue.
			s := NewSession(SessionConfig{SampleQueue: 2})
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("c%02d", i)
				s.clients[name] = &clientConn{
					name:  name,
					out:   newFrameRing(2),
					ctrl:  newFrameRing(2),
					ready: make(chan struct{}, 1),
					gone:  make(chan struct{}),
				}
				s.order = append(s.order, name)
			}
			s.mu.Lock()
			s.rebuildClientsLocked()
			s.mu.Unlock()
			sample := benchSample(4096)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.broadcastSample(sample)
			}
		})
	}
}
