package core

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// SessionConfig configures a steering session.
type SessionConfig struct {
	// Name identifies the session in registries and welcomes.
	Name string
	// AppName is the instrumented application's name.
	AppName string
	// SampleQueue bounds the per-client outbound sample queue; when a slow
	// client falls behind, its oldest queued samples are dropped (the VISIT
	// no-stall rule). 0 selects a default of 16.
	SampleQueue int
	// ControlTimeout bounds writes of control traffic to a client; a client
	// that cannot accept control messages within it is declared dead.
	// 0 selects a default of 2s.
	ControlTimeout time.Duration
	// Writer, when non-nil, replaces the per-client writer goroutine with an
	// external scheduler (a hub's per-shard writer pool): the session signals
	// ClientReady after queueing output and the scheduler drains via
	// ClientHandle.DrainBatch. Nil keeps the classic one-goroutine-per-client
	// draining.
	Writer WriterScheduler
	// Journal, when non-nil, receives every broadcast envelope's encoded
	// bytes (the same buffer queued to clients — journaling never
	// re-encodes) and replays recorded events and samples to late joiners
	// during attach. internal/journal's Journal is the durable
	// implementation; the session does not own the sink's lifecycle.
	Journal JournalSink
	// FloorPolicy arbitrates contested master requests: FIFO queueing,
	// priority queueing, or FIFO plus administrative steal. The zero value
	// (FloorUnset) resolves to FloorFIFO — or to a hub's configured
	// session default first.
	FloorPolicy FloorPolicy
	// FanoutWorkers sets the number of observer-tier relay workers (see
	// relay.go); they start lazily on the first TierObserver attach. 0
	// selects min(4, GOMAXPROCS); negative forces a single worker.
	FanoutWorkers int
	// ObserverInterval is the observer-tier coalescing cadence: relay
	// workers deliver continuously, but an observer's writer is woken only
	// this often, so its ring coalesces to freshest-wins batches between
	// flushes. 0 selects 25ms; negative disables coalescing (observers are
	// flushed per frame, like the steering tier but off the session
	// goroutine).
	ObserverInterval time.Duration
	// CoalesceBytes is the vectored egress hybrid threshold: when a batch
	// takes the writev path, frames shorter than this are gathered
	// (copied) into one shared iovec entry while frames at or above it
	// ride as their own zero-copy entries. 0 selects ~1KB; negative
	// disables gathering (every frame its own iovec entry). Conns without
	// vectored-write support ignore it — they keep the buffered fallback.
	CoalesceBytes int
	// MasterLease bounds how long the master may go silent before the
	// session's maintenance sweep takes the floor away: a wedged or
	// partitioned master loses it within 1.25×MasterLease of its last
	// inbound frame. The welcome advertises the lease so clients heartbeat
	// at a third of it. <= 0 disables lease expiry (pass a negative value
	// to disable explicitly on a hub whose session defaults set a lease).
	MasterLease time.Duration
	// Clock overrides the session's time source; nil means time.Now. Only
	// lease bookkeeping reads it — deterministic expiry tests inject a
	// virtual clock here.
	Clock func() time.Time
}

// Session is the hub connecting one steered application with any number of
// collaborating clients. Create it with NewSession, hand its Steered handle
// to the simulation loop, and feed client connections to ServeConn (or
// Serve with a listener).
type Session struct {
	cfg SessionConfig

	params *paramTable

	// attachMu is the journal attach barrier: broadcasts hold it shared
	// around record+enqueue, an attach holds it exclusively around
	// catch-up-fetch+admit. A frame therefore reaches an attaching client
	// exactly once — in the journal replay (recorded before the fetch) or
	// in its live queue (enqueued after admission), never both. Only taken
	// when a Journal is configured.
	attachMu sync.RWMutex
	// recovering mutes the journal tap while Recover replays the log:
	// apply callbacks that broadcast (an event echoing a parameter change)
	// must not re-journal their echo on every restart.
	recovering atomic.Bool
	// closing mutes broadcasts once Close has begun: a frame emitted after
	// the clients' connections are torn down reaches nobody, so journaling
	// it would replay ghost history to the session's next generation.
	// Close stores it under the exclusive attach barrier, so a broadcast
	// holding the shared side either fully completes first (delivered and
	// journaled) or observes the flag and drops both — never a ghost.
	closing atomic.Bool

	mu      sync.Mutex
	clients map[string]*clientConn
	order   []string // attach order, for deterministic master promotion
	master  string   // "" when no master
	floor   floorState
	view    ViewState
	viewSeq uint64
	nextID  int

	// clientsView is the broadcast path's read-copy-update snapshot of the
	// attached clients: an immutable slice swapped atomically by
	// attach/detach (which still serialise on s.mu). Broadcasts only load
	// it, so the fan-out never touches s.mu — the registration lock is paid
	// at membership-change rate, not message rate.
	clientsView atomic.Pointer[[]*clientConn]

	// steerView/obsView partition the same snapshot by delivery tier:
	// sample fan-out walks steerView inline and hands the frame to the
	// relay workers only when obsView is non-empty. Tier is fixed at
	// attach, so the partition changes exactly when clientsView does.
	steerView atomic.Pointer[[]*clientConn]
	obsView   atomic.Pointer[[]*clientConn]

	// relay is the observer-tier worker pool, started lazily by the first
	// observer admit (ensureRelayLocked) and loaded lock-free by fanout.
	relay atomic.Pointer[relay]

	// application-side state
	pending           chan pendingOp // steering ops awaiting the next poll
	paused            bool
	stopped           bool
	checkpointPending bool
	resumeCh          chan struct{}

	// Hot-path activity counters: touched on every broadcast, so they are
	// atomics — Stats readers never contend with (or block) a fan-out.
	statSamplesEmitted   atomic.Uint64
	statSamplesDelivered atomic.Uint64
	statSamplesDropped   atomic.Uint64
	statSteersApplied    atomic.Uint64
	statSteersRejected   atomic.Uint64
	// statFramesFiltered counts deliveries skipped by interest matching
	// (both tiers, samples and param updates alike).
	statFramesFiltered atomic.Uint64
	// statRelayPublished/Coalesced count frames handed to the relay pool
	// and frames its input rings coalesced away before fan-out.
	statRelayPublished atomic.Uint64
	statRelayCoalesced atomic.Uint64
	// statBlobsEmitted/statBlobBytes count blob-class broadcasts and their
	// payload bytes (deliveries and drops share the sample counters — the
	// tiers make no distinction past the proto gate).
	statBlobsEmitted atomic.Uint64
	statBlobBytes    atomic.Uint64
	// egress is the vectored-egress counter block shared by every admitted
	// client's codec (injected at admit, read by Stats).
	egress egressStats

	// lastSample retains the most recent emission for pull-style consumers
	// (the OGSI steering service's sample operation).
	lastSample atomic.Pointer[Sample]

	closed  bool
	closeCh chan struct{}
}

// Stats counts session activity; the experiments read these.
type Stats struct {
	SamplesEmitted   uint64
	SamplesDelivered uint64
	SamplesDropped   uint64
	SteersApplied    uint64
	SteersRejected   uint64
	// FramesFiltered counts deliveries skipped because the frame matched
	// nothing in the client's interest set.
	FramesFiltered uint64
	// RelayPublished counts sample frames handed to the observer relay
	// pool; RelayCoalesced counts frames its input rings overwrote before
	// fan-out (freshest-wins under overload).
	RelayPublished uint64
	RelayCoalesced uint64
	// BlobsEmitted/BlobBytes count blob-class broadcasts (protocol v5 bulk
	// frames) and their payload bytes; their deliveries and drops share
	// SamplesDelivered/SamplesDropped.
	BlobsEmitted uint64
	BlobBytes    uint64
	// Vectored-egress activity: batches by path taken, small frames (and
	// bytes) gathered into the shared coalesce iovec, large-frame bytes
	// handed to the kernel without a copy, and the estimated Write
	// syscalls the buffered fallback would have needed beyond the writev
	// each vectored batch actually issued.
	EgressBatchesVectored uint64
	EgressBatchesBuffered uint64
	EgressFramesCoalesced uint64
	EgressBytesCoalesced  uint64
	EgressBytesZeroCopy   uint64
	EgressSyscallsSaved   uint64
}

// pendingOp is a steering operation queued for the simulation's next poll.
type pendingOp struct {
	sets []ParamSet
	cmd  commandKind
}

// clientConn is the session's view of one attached client.
type clientConn struct {
	name  string
	codec *codec
	// desc is the immutable delivery descriptor (tier + interest set),
	// swapped copy-on-write by the client's subscribe/unsubscribe dispatch;
	// fan-out paths Load it. Nil means subscribe-all at TierSteering (see
	// clientDesc).
	desc atomic.Pointer[clientDesc]
	// proto is the protocol version the client attached with; handshake
	// replies and acks are encoded at it (negotiated downgrade).
	proto uint32
	// wantMaster records that the client attached asking for mastership;
	// drop promotion prefers such clients over pure observers.
	wantMaster bool
	// priority orders the client's floor requests under the priority policy.
	priority int64
	// lastBeat is the UnixNano of the client's last inbound frame — the
	// master lease renewal. Written by the read loop, read by the
	// maintenance sweep, hence atomic; never touched on the broadcast path.
	lastBeat atomic.Int64
	// out is the bounded sample queue; when full the oldest sample is
	// overwritten in place so a slow client sees the freshest data. ctrl is
	// the separate control-frame queue, drained with priority, so a sample
	// burst can never starve or evict an event, param update or master
	// change. Synchronous acks bypass both with a deadline write. Both
	// queues are rings of refcounted *FrameBuf: a broadcast serializes once
	// into a pooled buffer and every queue slot holds a reference to it
	// (encode-once, allocate-rarely fan-out).
	out     *frameRing
	ctrl    *frameRing
	dropped atomic.Uint64
	// ready wakes the dedicated writer goroutine (capacity-1 wakeup token);
	// unused when an external WriterScheduler drains the client.
	ready    chan struct{}
	gone     chan struct{}
	goneOnce sync.Once
	// welcomed flips once the welcome frame is on the wire; no writer —
	// dedicated or pooled — may drain the queues before then, or the client
	// would see a sample/control frame as its first post-attach message.
	welcomed atomic.Bool
	// stash overflows the ctrl queue while the client is pre-welcome on a
	// journaled session (the welcome + catch-up writes can outlast a
	// control burst): frames land here instead of being evicted — or the
	// client killed — and drain, in order, at the go-live handoff. Stashed
	// frames are retained; the drain (or the drop cleanup) releases them.
	stashMu     sync.Mutex
	stash       []*FrameBuf
	stashClosed bool
	// handle is the external-writer view of this client; nil when the
	// session drains queues with per-client goroutines.
	handle *ClientHandle
}

// markGone declares the client dead exactly once; the read loop and any
// writer observing gone will unwind and drop the client.
//
//steer:coldpath client teardown, runs once per connection death
func (cc *clientConn) markGone() {
	cc.goneOnce.Do(func() { close(cc.gone) })
}

// maxCtrlStash bounds the pre-welcome overflow stash; a client that falls
// this many control frames behind during its own attach is beyond saving.
const maxCtrlStash = 16384

// stashCtrl stores one pre-welcome overflow frame (retaining it), reporting
// false when the stash bound is exhausted or the client already dropped.
// Stashed references are released by takeStash's consumer or dropStash.
//
//steer:owns
func (cc *clientConn) stashCtrl(fb *FrameBuf) bool {
	cc.stashMu.Lock() //steer:allow hotpathalloc pre-welcome overflow only; per-client mutex guarding the stash slice
	defer cc.stashMu.Unlock()
	if cc.stashClosed || len(cc.stash) >= maxCtrlStash {
		return false
	}
	fb.Retain()
	cc.stash = append(cc.stash, fb)
	return true
}

// stashPending reports whether overflow frames are stashed; while true,
// later pre-welcome frames must also stash (not re-enter the ctrl queue)
// or the backlog drain would reorder them.
func (cc *clientConn) stashPending() bool {
	cc.stashMu.Lock() //steer:allow hotpathalloc pre-welcome overflow only; per-client mutex guarding the stash slice
	defer cc.stashMu.Unlock()
	return len(cc.stash) > 0
}

// takeStash empties the stash; the references transfer to the caller.
func (cc *clientConn) takeStash() []*FrameBuf {
	cc.stashMu.Lock()
	defer cc.stashMu.Unlock()
	stash := cc.stash
	cc.stash = nil
	return stash
}

// closeStash releases stashed frames and refuses future stashes; part of
// the drop cleanup.
func (cc *clientConn) closeStash() {
	cc.stashMu.Lock()
	cc.stashClosed = true
	stash := cc.stash
	cc.stash = nil
	cc.stashMu.Unlock()
	releaseFrames(stash)
}

// drainBacklog empties the pre-welcome control backlog in arrival order:
// the ctrl queue holds the older frames, the stash their overflow. The
// caller owns (and must release) the returned references.
func (cc *clientConn) drainBacklog() []*FrameBuf {
	backlog := cc.ctrl.drainInto(nil, 0)
	return append(backlog, cc.takeStash()...)
}

// NewSession creates a session ready to accept clients.
func NewSession(cfg SessionConfig) *Session {
	if cfg.SampleQueue <= 0 {
		cfg.SampleQueue = 16
	}
	if cfg.ControlTimeout <= 0 {
		cfg.ControlTimeout = 2 * time.Second
	}
	if cfg.FloorPolicy == FloorUnset {
		cfg.FloorPolicy = FloorFIFO
	}
	if cfg.MasterLease < 0 {
		// Negative means "explicitly disabled" to callers whose zero would
		// otherwise be filled in by a hub's session defaults.
		cfg.MasterLease = 0
	}
	if cfg.FanoutWorkers == 0 {
		cfg.FanoutWorkers = defaultFanoutWorkers()
	}
	if cfg.FanoutWorkers < 0 {
		cfg.FanoutWorkers = 1
	}
	if cfg.ObserverInterval == 0 {
		cfg.ObserverInterval = defaultObserverInterval
	}
	s := &Session{
		cfg:     cfg,
		params:  newParamTable(),
		clients: make(map[string]*clientConn),
		pending: make(chan pendingOp, 256),
		view: ViewState{
			Eye: [3]float64{1.8, 1.4, 2.2}, Center: [3]float64{0.5, 0.5, 0.5},
			Up: [3]float64{0, 1, 0}, FovY: 0.7854,
			VizParams: map[string]float64{},
		},
		resumeCh: make(chan struct{}),
		closeCh:  make(chan struct{}),
	}
	s.clientsView.Store(&[]*clientConn{})
	s.steerView.Store(&[]*clientConn{})
	s.obsView.Store(&[]*clientConn{})
	if cfg.MasterLease > 0 {
		go s.floorSweeper()
	}
	return s
}

// Name returns the session name.
func (s *Session) Name() string { return s.cfg.Name }

// Steered returns the application-side handle. See the Steered type.
func (s *Session) Steered() *Steered { return &Steered{s: s} }

// Params returns the current parameter table snapshot.
func (s *Session) Params() []Param { return s.params.snapshot() }

// Master returns the current master's client name, or "".
func (s *Session) Master() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.master
}

// Clients returns the attached client names in attach order.
func (s *Session) Clients() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Stats returns a copy of the activity counters. The counters are atomics
// maintained on the broadcast hot path, so the copy is a consistent-enough
// snapshot (each counter individually exact, the set read without a lock).
func (s *Session) Stats() Stats {
	return Stats{
		SamplesEmitted:   s.statSamplesEmitted.Load(),
		SamplesDelivered: s.statSamplesDelivered.Load(),
		SamplesDropped:   s.statSamplesDropped.Load(),
		SteersApplied:    s.statSteersApplied.Load(),
		SteersRejected:   s.statSteersRejected.Load(),
		FramesFiltered:   s.statFramesFiltered.Load(),
		RelayPublished:   s.statRelayPublished.Load(),
		RelayCoalesced:   s.statRelayCoalesced.Load(),
		BlobsEmitted:     s.statBlobsEmitted.Load(),
		BlobBytes:        s.statBlobBytes.Load(),

		EgressBatchesVectored: s.egress.batchesVectored.Load(),
		EgressBatchesBuffered: s.egress.batchesBuffered.Load(),
		EgressFramesCoalesced: s.egress.framesCoalesced.Load(),
		EgressBytesCoalesced:  s.egress.bytesCoalesced.Load(),
		EgressBytesZeroCopy:   s.egress.bytesZeroCopy.Load(),
		EgressSyscallsSaved:   s.egress.syscallsSaved.Load(),
	}
}

// TierCounts returns the current number of steering- and observer-tier
// clients (a point-in-time read of the tier snapshots).
func (s *Session) TierCounts() (steering, observers int) {
	return len(*s.steerView.Load()), len(*s.obsView.Load())
}

// ClientCount returns the number of attached clients.
func (s *Session) ClientCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

// Done returns a channel closed when the session closes; registries use it
// to evict ended sessions.
func (s *Session) Done() <-chan struct{} { return s.closeCh }

// View returns the current shared view state.
func (s *Session) View() ViewState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.view
}

// Serve accepts connections from l until the session closes or the listener
// fails, handling each with ServeConn on its own goroutine.
func (s *Session) Serve(l net.Listener) error {
	go func() {
		<-s.closeCh
		l.Close()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closeCh:
				return nil
			default:
				return err
			}
		}
		go s.ServeConn(conn)
	}
}

// catchupBatchBytes bounds one catch-up replay batch: with the default 2s
// ControlTimeout per batch, a client sustaining ~128 KiB/s keeps up with
// any history size.
const catchupBatchBytes = 256 << 10

// writeFrames writes pre-encoded frames to the client in batches bounded
// by bytes as well as count, so each batch gets ControlTimeout for at most
// catchupBatchBytes — a client slower than that floor (not one with merely
// a bulky history) is the one that fails.
func (s *Session) writeFrames(cc *clientConn, frames [][]byte) error {
	return s.chunkFrames(frames, func(batch [][]byte) error {
		return cc.codec.writeBatch(batch, s.cfg.ControlTimeout)
	})
}

// writeFrameBufs writes a backlog of refcounted frames in bounded batches
// and releases every reference, success or not.
func (s *Session) writeFrameBufs(cc *clientConn, frames []*FrameBuf, locked bool) error {
	bufs := make([][]byte, len(frames))
	for i, fb := range frames {
		bufs[i] = fb.Bytes()
	}
	err := s.chunkFrames(bufs, func(batch [][]byte) error {
		if locked {
			return cc.codec.writeBatchLocked(batch, s.cfg.ControlTimeout)
		}
		return cc.codec.writeBatch(batch, s.cfg.ControlTimeout)
	})
	releaseFrames(frames)
	return err
}

// chunkFrames feeds frames to write in byte- and count-bounded batches.
func (s *Session) chunkFrames(frames [][]byte, write func([][]byte) error) error {
	for len(frames) > 0 {
		n, bytes := 0, 0
		for n < len(frames) && n < 64 && (n == 0 || bytes+len(frames[n]) <= catchupBatchBytes) {
			bytes += len(frames[n])
			n++
		}
		if err := write(frames[:n]); err != nil {
			return err
		}
		frames = frames[n:]
	}
	return nil
}

// PendingConn is a client connection whose attach frame has been read but
// which is not yet bound to a session: the handoff unit between a routing
// layer (package hub) and the Session that will serve it.
type PendingConn struct {
	conn   net.Conn
	codec  *codec
	attach *attachMsg
	seq    uint64
}

// AcceptConn reads and version-checks the attach frame from conn. A stream
// outside the supported protocol range (v3..v4) — wrong magic (a gob v1
// client, an HTTP probe) or an unsupported header version — is answered
// with a version-coded ack when possible and fails with ErrVersionMismatch. Callers that must bound the
// handshake set a read deadline on conn first (and clear it afterwards).
func AcceptConn(conn net.Conn) (*PendingConn, error) {
	c := newCodec(conn)
	c.harden()
	first, err := c.read()
	if err != nil {
		if errors.Is(err, ErrVersionMismatch) {
			// Best-effort typed rejection: a v1/foreign client may not parse
			// it, but a future-versioned client will.
			c.write(&envelope{Type: msgAck, Ack: &ackMsg{Code: codeVersion, Err: err.Error()}}, 2*time.Second)
		}
		conn.Close()
		return nil, err
	}
	if first.Type != msgAttach || first.Attach == nil {
		conn.Close()
		return nil, errors.New("core: protocol error: expected attach")
	}
	return &PendingConn{conn: conn, codec: c, attach: first.Attach, seq: first.Seq}, nil
}

// SessionName returns the session the client asked for ("" = default).
func (p *PendingConn) SessionName() string { return p.attach.Session }

// SetSessionName rewrites the target session: a routing layer resolving an
// empty name to its configured default.
func (p *PendingConn) SetSessionName(name string) { p.attach.Session = name }

// ClientName returns the client's requested name ("" = assign one).
func (p *PendingConn) ClientName() string { return p.attach.Name }

// Reject refuses the attach with a reason and closes the connection.
func (p *PendingConn) Reject(why string) error {
	p.codec.write(&envelope{Type: msgAck, Seq: p.seq, Ack: &ackMsg{Code: codeGeneric, Err: why}}, 2*time.Second)
	return p.codec.close()
}

// ServeConn runs the session protocol on one client connection until the
// client detaches or fails. It may be called concurrently.
func (s *Session) ServeConn(conn net.Conn) error {
	p, err := AcceptConn(conn)
	if err != nil {
		return err
	}
	return s.ServePending(p)
}

// ServePending runs the session protocol on a connection whose attach frame
// was already read by AcceptConn. It may be called concurrently.
func (s *Session) ServePending(p *PendingConn) error {
	c := p.codec
	defer c.close()

	cc, catchup, err := s.admitWithCatchup(p.attach, c)
	if err != nil {
		c.write(&envelope{Type: msgAck, Seq: p.seq, Ack: &ackMsg{Code: codeFor(err), Err: err.Error()}}, s.cfg.ControlTimeout)
		return err
	}
	defer s.drop(cc)

	// Unblock the read loop promptly when the client is declared dead by a
	// failed write (pooled or dedicated): closing the conn aborts c.read.
	serveDone := make(chan struct{})
	defer close(serveDone)
	go func() {
		select {
		case <-cc.gone:
			c.close()
		case <-serveDone:
		}
	}()

	// Welcome frame carries the full session state. Broadcasts between
	// admit and here only queue (no writer runs yet), and a frame queued in
	// that window duplicates state the welcome snapshot already carries
	// (view updates are Seq-guarded client-side), so delivering it after
	// the welcome is harmless.
	s.mu.Lock()
	role := RoleObserver
	if s.master == cc.name {
		role = RoleMaster
	}
	// The welcome is encoded at the peer's own version (cc.proto): the
	// negotiated-downgrade half of the v3/v4 handshake.
	welcome := &envelope{Type: msgWelcome, Seq: p.seq, Version: cc.proto, Welcome: &welcomeMsg{
		SessionName:    s.cfg.Name,
		AppName:        s.cfg.AppName,
		ClientName:     cc.name,
		Role:           role,
		Master:         s.master,
		Params:         s.params.snapshot(),
		View:           cloneView(s.view),
		LeaseMillis:    s.cfg.MasterLease.Milliseconds(),
		Policy:         s.cfg.FloorPolicy,
		FloorSeq:       s.floor.seq,
		Tier:           cc.desc.Load().tierOf(),
		ObserverMillis: s.cfg.ObserverInterval.Milliseconds(),
		Proto:          cc.proto,
	}}
	s.mu.Unlock()
	if err := cc.codec.write(welcome, s.cfg.ControlTimeout); err != nil {
		return err
	}

	// Catch-up phase: welcome → replay → go live. The journaled event and
	// sample history is written before any live frame so the late joiner
	// converges on what an always-attached client accumulated; state frames
	// were filtered out of catchup (the welcome snapshot above is strictly
	// newer). Live frames queued since admission wait behind the welcomed
	// gate until the replay is on the wire.
	if err := s.writeFrames(cc, catchup); err != nil {
		return err
	}
	if s.cfg.Journal == nil {
		cc.welcomed.Store(true)
	} else {
		// Go-live handoff: frames broadcast during the welcome and
		// catch-up writes sit in the ctrl queue and the overflow stash.
		// Large backlogs drain in unlocked rounds — a slow late joiner
		// must never make a broadcast wait on its socket — and the final
		// round holds the attach barrier only for memory work: steal the
		// remaining backlog, claim this client's codec write lock, open
		// the welcomed gate. The backlog then goes on the wire outside
		// every session lock; a live drain racing in queues behind the
		// held write lock, so the first bytes after the catch-up are the
		// backlog, in order, followed only by strictly newer traffic. A
		// client that cannot outpace the broadcast rate grows its stash
		// to the cap and is declared dead, which ends the loop.
		for {
			backlog := cc.drainBacklog()
			if len(backlog) <= 64 {
				s.attachMu.Lock()
				backlog = append(backlog, cc.drainBacklog()...)
				cc.codec.lockWrites()
				cc.welcomed.Store(true)
				s.attachMu.Unlock()
				err := s.writeFrameBufs(cc, backlog, true)
				cc.codec.unlockWrites()
				if err != nil {
					return err
				}
				break
			}
			if err := s.writeFrameBufs(cc, backlog, false); err != nil {
				return err
			}
		}
	}

	if s.cfg.Writer == nil {
		// Writer goroutine drains both rings in batches, control first;
		// broadcasts leave a wakeup token in cc.ready after queueing.
		go func() {
			var frames []*FrameBuf
			var bufs [][]byte
			for {
				frames = cc.ctrl.drainInto(frames[:0], 64)
				frames = cc.out.drainInto(frames, 64)
				if len(frames) == 0 {
					select {
					case <-cc.ready:
						continue
					case <-cc.gone:
						return
					case <-s.closeCh:
						return
					}
				}
				bufs = bufs[:0]
				for _, fb := range frames {
					bufs = append(bufs, fb.Bytes())
				}
				err := cc.codec.writeBatch(bufs, s.cfg.ControlTimeout)
				releaseFrames(frames)
				for i := range bufs {
					bufs[i] = nil // don't pin a released frame's backing array
				}
				if err != nil {
					cc.markGone()
					return
				}
			}
		}()
	} else {
		// Flush anything queued while the welcome was in flight; earlier
		// ClientReady signals were suppressed by the welcomed gate.
		s.notifyWriter(cc)
	}

	// Read loop: dispatch client requests.
	for {
		select {
		case <-cc.gone:
			return errors.New("core: client writer failed")
		case <-s.closeCh:
			return nil
		default:
		}
		e, err := c.read()
		if err != nil {
			return err
		}
		if done, err := s.dispatch(cc, e); done {
			return err
		}
	}
}

// admitWithCatchup fetches the journal catch-up replay and registers the
// client as one atomic step under the attach barrier. Fetch-then-admit
// under the exclusive lock is what makes delivery exactly-once: a broadcast
// completing before the barrier is in the replay and missed the
// unregistered client; one starting after it is queued live and postdates
// the fetch. Only events and samples are replayed — parameter, view and
// master state rides in the welcome frame, which is built after this
// returns and is therefore never older than the replay.
func (s *Session) admitWithCatchup(a *attachMsg, c *codec) (*clientConn, [][]byte, error) {
	if s.cfg.Journal == nil {
		cc, err := s.admit(a, c)
		return cc, nil, err
	}
	s.attachMu.Lock()
	defer s.attachMu.Unlock()
	var catchup [][]byte
	if a.Replay != ReplayNone {
		s.cfg.Journal.Replay(func(class JournalClass, frame []byte) bool {
			if class == JournalEvent || (class == JournalSample && a.Replay == ReplayAll) {
				// Replay frames are valid only during the visit (the sink may
				// recycle a compacted record's pooled buffer); the catch-up is
				// written after this returns, so it takes copies. Attach is the
				// cold path — the broadcast side stays copy-free.
				catchup = append(catchup, append([]byte(nil), frame...))
			}
			return true
		})
	}
	cc, err := s.admit(a, c)
	if err != nil {
		return nil, nil, err
	}
	return cc, catchup, nil
}

// admit registers a new client, assigning the master role when requested and
// free, or when the client is the first to attach.
func (s *Session) admit(a *attachMsg, c *codec) (*clientConn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cc, err := s.admitLocked(a, c)
	if err != nil {
		return nil, err
	}
	s.rebuildClientsLocked()
	return cc, nil
}

// admitLocked is admit's body without the snapshot rebuild; bulk admissions
// (benchmark fixtures) run it per client and rebuild once. The caller holds
// s.mu.
func (s *Session) admitLocked(a *attachMsg, c *codec) (*clientConn, error) {
	if s.closed {
		return nil, errors.New("core: session closed")
	}
	for _, sub := range a.Subs {
		// Param selectors are keyed by the registry; a typo'd subscription
		// must fail the attach, not silently never match. Channel names are
		// not validated — channels are whatever the application emits.
		if sub.Kind == SubParam && !s.params.has(sub.Name) {
			return nil, fmt.Errorf("%w: subscription %q", ErrUnknownParam, sub.Name)
		}
	}
	name := a.Name
	if name == "" {
		name = fmt.Sprintf("client-%d", s.nextID)
	}
	if _, dup := s.clients[name]; dup {
		return nil, fmt.Errorf("core: client name %q already attached", name)
	}
	s.nextID++
	cc := &clientConn{
		name:       name,
		codec:      c,
		wantMaster: a.WantMaster,
		priority:   a.Priority,
		out:        newFrameRing(s.cfg.SampleQueue),
		ctrl:       newFrameRing(64),
		ready:      make(chan struct{}, 1),
		gone:       make(chan struct{}),
	}
	cc.proto = a.proto
	if cc.proto == 0 {
		cc.proto = ProtoVersion
	}
	// Bind the codec's egress layer to this session: the shared counter
	// block, and the configured coalesce threshold (0 keeps the codec's
	// ~1KB default; negative disables gathering). Safe without the write
	// lock — the welcome, the first write this codec sees post-admit,
	// happens after admit returns.
	c.egr = &s.egress
	if s.cfg.CoalesceBytes != 0 {
		c.coalesce = s.cfg.CoalesceBytes
	}
	// The delivery descriptor: a v3 attach carries no tier or selectors, so
	// its zero values land on TierSteering + subscribe-all — the negotiated
	// downgrade is exactly the old delivery semantics.
	cc.desc.Store(newClientDesc(a.Tier, a.Subs))
	if a.Tier == TierObserver {
		s.ensureRelayLocked()
	}
	cc.lastBeat.Store(s.now().UnixNano())
	if s.cfg.Writer != nil {
		cc.handle = &ClientHandle{s: s, cc: cc}
	}
	if s.master == "" && (a.WantMaster || len(s.clients) == 0) {
		// Implicit grant at attach: the floor is free and the client asked
		// (or is the first participant, the paper's one-user degenerate
		// case). No broadcast — the welcome snapshot carries it — but the
		// transition still takes a seq so later broadcasts order after it.
		s.master = name
		s.floor.stats.Grants++
		s.floor.seq++
	}
	s.clients[name] = cc
	s.order = append(s.order, name)
	return cc, nil
}

// rebuildClientsLocked swaps in a fresh immutable client snapshot for the
// broadcast path; the caller holds s.mu. On a journaled session an attach
// additionally runs under the exclusive attach barrier, so a broadcast
// holding the shared side observes the swap atomically with the journal
// catch-up fetch (the exactly-once delivery argument). A detach swaps under
// s.mu alone: a broadcast still holding the old snapshot pushes onto the
// dropped client's closed rings, which discard.
func (s *Session) rebuildClientsLocked() {
	view := make([]*clientConn, 0, len(s.order))
	steer := make([]*clientConn, 0, len(s.order))
	obs := []*clientConn{}
	for _, name := range s.order {
		cc := s.clients[name]
		view = append(view, cc)
		// Tier is fixed at attach (clientDesc.tier never changes on an
		// interest swap), so the partition is stable between rebuilds.
		if cc.desc.Load().tierOf() == TierObserver {
			obs = append(obs, cc)
		} else {
			steer = append(steer, cc)
		}
	}
	s.clientsView.Store(&view)
	s.steerView.Store(&steer)
	s.obsView.Store(&obs)
}

// drop removes a client. If it held the master role the floor passes to
// the next queued requester, then to the oldest remaining client that asked
// for mastership — never to a pure observer; a session left with only
// observers broadcasts "no master" instead of silently press-ganging one
// (failure-handling behaviour of section 3.3's authenticated collaboration,
// with ShAppliT-style explicit floor arbitration).
func (s *Session) drop(cc *clientConn) {
	s.mu.Lock()
	if _, ok := s.clients[cc.name]; !ok {
		s.mu.Unlock()
		return
	}
	delete(s.clients, cc.name)
	for i, n := range s.order {
		if n == cc.name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	mc := s.dropFloorLocked(cc)
	s.rebuildClientsLocked()
	s.mu.Unlock()

	cc.markGone()
	// Return queued buffer references to the pool: nobody will drain these
	// rings again. The rings close first, so a broadcast that loaded the
	// pre-drop snapshot discards instead of stranding references.
	cc.ctrl.closeRelease()
	cc.out.closeRelease()
	cc.closeStash()
	if s.cfg.Writer != nil && cc.handle != nil {
		s.cfg.Writer.ClientClosed(cc.handle)
	}
	mc.emit(s)
}

// dispatch handles one client request. done reports that the connection
// should terminate.
func (s *Session) dispatch(cc *clientConn, e *envelope) (done bool, err error) {
	// Every inbound frame renews the client's lease; msgHeartbeat exists so
	// an idle master has something to send.
	cc.lastBeat.Store(s.now().UnixNano())
	switch e.Type {
	case msgDetach:
		return true, nil

	case msgHeartbeat:
		return false, nil

	case msgSetParam:
		if len(e.Sets) == 0 {
			return false, nil
		}
		if !s.isMaster(cc) {
			s.rejectSteer(cc, e.Seq, ErrNotMaster)
			return false, nil
		}
		// Validate the whole batch before queueing any of it: a batch is
		// atomic, so a typo in one assignment cannot half-apply a steer.
		normalized := make([]ParamSet, len(e.Sets))
		for i, set := range e.Sets {
			v, verr := s.params.validate(set.Name, set.Value)
			if verr != nil {
				s.rejectSteer(cc, e.Seq, verr)
				return false, nil
			}
			normalized[i] = ParamSet{Name: set.Name, Value: v}
		}
		s.enqueueOp(pendingOp{sets: normalized})
		s.ack(cc, e.Seq)

	case msgCommand:
		if !s.isMaster(cc) {
			s.rejectSteer(cc, e.Seq, ErrNotMaster)
			return false, nil
		}
		s.enqueueOp(pendingOp{cmd: e.Command})
		if e.Command == cmdResume {
			s.signalResume()
		}
		s.ack(cc, e.Seq)

	case msgSetView:
		if e.View == nil {
			return false, nil
		}
		if !s.isMaster(cc) {
			s.rejectSteer(cc, e.Seq, ErrNotMaster)
			return false, nil
		}
		s.mu.Lock()
		s.viewSeq++
		v := *e.View
		v.Seq = s.viewSeq
		s.view = v
		update := cloneView(s.view)
		s.mu.Unlock()
		s.ack(cc, e.Seq)
		s.broadcastControl(&envelope{Type: msgViewUpdate, View: update})

	case msgRequestMaster:
		s.handleRequestMaster(cc, e)

	case msgReleaseMaster:
		s.handleReleaseMaster(cc, e)

	case msgHandoffMaster:
		s.handleHandoffMaster(cc, e)

	case msgSubscribe:
		d := cc.desc.Load()
		if e.SubAll {
			cc.desc.Store(descSubscribeAll(d.tierOf()))
			s.ack(cc, e.Seq)
			return false, nil
		}
		for _, sub := range e.Subs {
			// Same registry check as the attach selectors; channel names
			// pass unchecked (see admitLocked).
			if sub.Kind == SubParam && !s.params.has(sub.Name) {
				s.nack(cc, e.Seq, fmt.Errorf("%w: subscription %q", ErrUnknownParam, sub.Name))
				return false, nil
			}
		}
		cc.desc.Store(d.withSubs(e.Subs))
		s.ack(cc, e.Seq)

	case msgUnsubscribe:
		cc.desc.Store(cc.desc.Load().withoutSubs(e.Subs))
		s.ack(cc, e.Seq)
	}
	return false, nil
}

func (s *Session) isMaster(cc *clientConn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.master == cc.name
}

func (s *Session) enqueueOp(op pendingOp) {
	select {
	case s.pending <- op:
	default:
		// The simulation has not polled for a long time and the queue is
		// full; dropping the oldest keeps the newest intent, matching
		// "latest steering wins" semantics.
		select {
		case <-s.pending:
		default:
		}
		s.pending <- op
	}
}

// Acks are encoded at the client's attach version so a downgraded v3 peer
// reads v3-headed replies.
func (s *Session) ack(cc *clientConn, seq uint64) {
	cc.codec.write(&envelope{Type: msgAck, Seq: seq, Version: cc.proto, Ack: &ackMsg{OK: true}}, s.cfg.ControlTimeout)
}

// nack refuses a non-steering request with a typed code.
func (s *Session) nack(cc *clientConn, seq uint64, why error) {
	cc.codec.write(&envelope{Type: msgAck, Seq: seq, Version: cc.proto, Ack: &ackMsg{Code: codeFor(why), Err: why.Error()}}, s.cfg.ControlTimeout)
}

func (s *Session) rejectSteer(cc *clientConn, seq uint64, why error) {
	s.statSteersRejected.Add(1)
	cc.codec.write(&envelope{Type: msgAck, Seq: seq, Version: cc.proto, Ack: &ackMsg{Code: codeFor(why), Err: why.Error()}}, s.cfg.ControlTimeout)
}

// broadcastControl encodes a control frame once into a pooled buffer and
// queues a reference to every client; a client whose queue is full has its
// oldest entry overwritten (control frames are small and idempotent:
// last-writer-wins state updates).
func (s *Session) broadcastControl(e *envelope) {
	if s.closing.Load() {
		// A dying session delivers nothing: the clients' conns are (being)
		// torn down and the journal is sealing, and dropping on both sides
		// keeps what clients observed and what the log will replay
		// consistent.
		return
	}
	fb := GetFrame(256)
	b, err := encodeEnvelope(fb.b[:0], e)
	if err != nil {
		fb.Release()
		return
	}
	fb.b = b
	if e.Type == msgParamUpdate {
		// Parameter updates are interest-keyed by the updated names so
		// selectively-subscribed clients skip updates they never asked for.
		for i := range e.Params {
			fb.appendKey(e.Params[i].Name)
		}
	}
	s.fanout(journalClassOf(e.Type), fb, true)
}

// fanout delivers one encoded broadcast frame: journal tap under the shared
// side of the attach barrier, then one queue push per interested client in
// the current snapshot — steering tier inline, observer tier via the relay
// workers (publish). A frame with interest keys skips clients whose
// descriptor matches none of them before touching their ring. It consumes
// the caller's buffer reference and reports whether the frame was delivered
// (false only when the session is closing — the re-check under the shared
// barrier is authoritative, Close stores the flag under the exclusive side,
// so delivery and the journal stay consistent).
//
// This is the hot path, and it is steady-state allocation- and lock-free:
// the client list is an RCU snapshot load, the buffer came from the frame
// pool, every queue is a ring whose eviction is an O(1) slot overwrite, and
// the counters are atomics. Only a journaled session takes the shared
// (read) side of the attach barrier, which the journal's exactly-once
// catch-up semantics require; the journal tap itself is an in-memory append
// of the same refcounted buffer — durability never re-encodes, and the
// buffer cannot return to the pool before the journal's fsync batch
// flushes (the sink retains it).
//
//steer:hotpath
//steer:consumes
func (s *Session) fanout(class JournalClass, fb *FrameBuf, ctrl bool) bool {
	journaled := s.cfg.Journal != nil
	if journaled {
		s.attachMu.RLock() //steer:allow hotpathalloc shared side of the attach barrier, journaled sessions only; writers are rare attach/detach events
		if s.closing.Load() {
			s.attachMu.RUnlock()
			fb.Release()
			return false
		}
		// Blob frames never reach the journal (see JournalBlob): the tap is
		// skipped, but the frame still holds the shared barrier so Close's
		// closing-flag handshake stays exact.
		if !s.recovering.Load() && class != JournalBlob {
			s.cfg.Journal.Record(class, fb)
		}
	}
	if ctrl {
		// Control frames go to every tier inline — they are small, rare and
		// latency-sensitive (acks of state the client may act on). A keyed
		// frame (param update) still honours interest; keyless control goes
		// to everyone.
		clients := *s.clientsView.Load()
		var filtered uint64
		for _, cc := range clients {
			if len(fb.keys) > 0 && !cc.desc.Load().wantsParams(fb.keys) {
				filtered++
				continue
			}
			s.routeCtrl(cc, fb)
			s.notifyWriter(cc)
		}
		if filtered > 0 {
			s.statFramesFiltered.Add(filtered)
		}
	} else {
		// Steering tier: every frame, inline. The interest check is one
		// atomic load plus map probes against an immutable descriptor.
		steer := *s.steerView.Load()
		var delivered, dropped, filtered uint64
		for _, cc := range steer {
			// Proto gate: a frame class the client's decoder predates (a blob
			// toward a v3/v4 peer) is skipped, not delivered — an unknown
			// message type would kill the peer's read loop.
			if fb.minProto > cc.proto {
				filtered++
				continue
			}
			if len(fb.keys) > 0 && !cc.desc.Load().wantsSample(fb.keys) {
				filtered++
				continue
			}
			if cc.out.push(fb) {
				// The overwrite retracted an earlier queued sample: that one
				// is the drop, the fresh frame replaces its delivery.
				cc.dropped.Add(1)
				dropped++
			} else {
				delivered++
			}
			s.notifyWriter(cc)
		}
		// Observer tier: the session's whole share is one ring push per
		// relay worker; the workers do the per-observer work off this
		// goroutine.
		if len(*s.obsView.Load()) > 0 {
			if rl := s.relay.Load(); rl != nil {
				rl.publish(fb)
			}
		}
		s.statSamplesDelivered.Add(delivered)
		s.statSamplesDropped.Add(dropped)
		if filtered > 0 {
			s.statFramesFiltered.Add(filtered)
		}
	}
	if journaled {
		s.attachMu.RUnlock()
	}
	fb.Release()
	return true
}

// routeCtrl queues one control frame toward a client. A full ring evicts
// its oldest entry — except pre-welcome on a journaled session, where no
// writer is draining yet and an eviction would lose a frame that is in
// neither the client's catch-up replay nor its queue: those overflow to
// the stash (and once overflow has started stashing, later frames stash
// too, so the backlog drain — ctrl ring first, then stash — preserves
// arrival order). A client that exhausts the stash bound is beyond saving.
func (s *Session) routeCtrl(cc *clientConn, fb *FrameBuf) {
	if s.cfg.Journal != nil && !cc.welcomed.Load() {
		if cc.stashPending() || !cc.ctrl.tryPush(fb) {
			if !cc.stashCtrl(fb) {
				cc.markGone()
			}
		}
		return
	}
	cc.ctrl.push(fb)
}

// notifyWriter wakes whichever writer drains cc's queues: the external
// scheduler's edge trigger, or the dedicated writer's wakeup token.
// External notifies are suppressed until the welcome frame is on the wire;
// ServePending notifies once after it.
func (s *Session) notifyWriter(cc *clientConn) {
	if s.cfg.Writer != nil {
		if cc.handle != nil && cc.welcomed.Load() {
			s.cfg.Writer.ClientReady(cc.handle)
		}
		return
	}
	select {
	case cc.ready <- struct{}{}:
	default:
	}
}

// broadcastSample fans a sample out to all clients, serializing it exactly
// once into a pooled buffer: every client ring (and every batched writer
// behind DrainBatch) holds a reference to the same bytes, so fan-out cost
// is refcounted slot writes, not N encodings or N buffers. A slow client's
// full ring overwrites its oldest entry so the freshest data always
// survives a burst: "failures or slow operation of the visualization must
// not disturb the simulation progress", and a client that falls behind sees
// the most recent samples rather than a stale prefix (dropping newest would
// strand a client on pre-migration data across a compute handoff).
//
//steer:hotpath
func (s *Session) broadcastSample(sample *Sample) {
	if s.closing.Load() {
		return // see broadcastControl: a dying session delivers nothing
	}
	// Pre-size for the payload so a cold pool buffer costs one allocation
	// instead of append-growth over a multi-KB sample; a warm one is free.
	est := sample.ByteSize() + 64*len(sample.Channels) + 256
	fb := GetFrame(est)
	e := envelope{Type: msgSample, Sample: sample}
	b, err := encodeEnvelope(fb.b[:0], &e)
	if err != nil {
		fb.Release()
		return
	}
	fb.b = b
	// Interest keys ride on the buffer itself so the relay workers can
	// match asynchronously without re-decoding; map iteration appends into
	// the pooled buffer's reused key slice — no allocation once warm.
	for name := range sample.Channels {
		fb.appendKey(name)
	}
	if s.fanout(JournalSample, fb, false) {
		s.statSamplesEmitted.Add(1)
		s.lastSample.Store(sample)
	}
}

// broadcastBlob fans one bulk binary frame out to the v5+ clients whose
// interest set wants its stream, through the same tiered path as samples:
// steering tier inline, observer tier via the relay workers. The payload is
// copied exactly once — into the pooled, size-classed broadcast buffer —
// and from there every delivery is a refcounted ring push; on TCP conns the
// writev egress hands the buffer to the kernel zero-copy (a blob payload is
// always far above the coalesce threshold). Blobs skip the journal tap (see
// JournalBlob) and are never queued toward pre-v5 peers (fb.minProto).
//
//steer:hotpath
func (s *Session) broadcastBlob(b *Blob) {
	if s.closing.Load() {
		return // see broadcastControl: a dying session delivers nothing
	}
	fb := GetFrame(b.ByteSize())
	e := envelope{Type: msgBlob, Blob: b}
	buf, err := encodeEnvelope(fb.b[:0], &e)
	if err != nil {
		fb.Release()
		return
	}
	fb.b = buf
	fb.minProto = blobProtoVersion
	if b.Stream != "" {
		fb.appendKey(b.Stream)
	}
	if s.fanout(JournalBlob, fb, false) {
		s.statBlobsEmitted.Add(1)
		s.statBlobBytes.Add(uint64(len(b.Data)))
	}
}

// broadcastEvent sends a progress/status event string (the section 4.4
// "visual reminder that there are still ongoing activities").
func (s *Session) broadcastEvent(ev string) {
	s.broadcastControl(&envelope{Type: msgEvent, Event: ev})
}

// ---- trusted in-process steering surface ----
//
// Grid services hosted next to the session (package ogsi) steer through
// these methods instead of a network client; they carry the same
// apply-at-poll semantics. Authorisation is the hosting service's concern,
// mirroring how the UNICORE proxy made collaborators authenticate to the
// grid layer rather than to VISIT.

// QueueSetValue validates and queues a typed steering request for the next
// poll.
func (s *Session) QueueSetValue(name string, value Value) error {
	v, err := s.params.validate(name, value)
	if err != nil {
		return err
	}
	s.enqueueOp(pendingOp{sets: []ParamSet{{Name: name, Value: v}}})
	return nil
}

// QueueSetParam validates and queues a float steering request for the next
// poll; the float convenience form of QueueSetValue.
func (s *Session) QueueSetParam(name string, value float64) error {
	return s.QueueSetValue(name, FloatValue(value))
}

// QueuePause queues a pause command.
func (s *Session) QueuePause() { s.enqueueOp(pendingOp{cmd: cmdPause}) }

// QueueResume queues a resume command and releases a blocked PollBlocking.
func (s *Session) QueueResume() {
	s.enqueueOp(pendingOp{cmd: cmdResume})
	s.signalResume()
}

// QueueStop queues a stop command.
func (s *Session) QueueStop() { s.enqueueOp(pendingOp{cmd: cmdStop}) }

// QueueCheckpoint queues a checkpoint request.
func (s *Session) QueueCheckpoint() { s.enqueueOp(pendingOp{cmd: cmdCheckpoint}) }

// SetViewServer updates the shared view state from a trusted in-process
// caller and broadcasts it to all clients.
func (s *Session) SetViewServer(v ViewState) ViewState {
	s.mu.Lock()
	s.viewSeq++
	v.Seq = s.viewSeq
	s.view = v
	update := cloneView(s.view)
	s.mu.Unlock()
	s.broadcastControl(&envelope{Type: msgViewUpdate, View: update})
	return *update
}

// LastSample returns the most recently emitted sample (nil before the first
// emission).
func (s *Session) LastSample() *Sample {
	return s.lastSample.Load()
}

// Paused reports whether the session is currently paused.
func (s *Session) Paused() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.paused
}

func (s *Session) signalResume() {
	s.mu.Lock()
	if s.paused {
		s.paused = false
		close(s.resumeCh)
		s.resumeCh = make(chan struct{})
	}
	s.mu.Unlock()
}

// Close terminates the session and all client connections.
func (s *Session) Close() {
	// Under the exclusive barrier: in-flight broadcasts (shared holders)
	// finish wholly-before — delivered and journaled — and later ones see
	// the flag and drop wholly; the journal never records a frame the
	// clients could not have observed, and vice versa.
	s.attachMu.Lock()
	s.closing.Store(true)
	s.attachMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	clients := make([]*clientConn, 0, len(s.clients))
	for _, cc := range s.clients {
		clients = append(clients, cc)
	}
	s.mu.Unlock()
	close(s.closeCh)
	for _, cc := range clients {
		cc.codec.close()
	}
}

func cloneView(v ViewState) *ViewState {
	c := v
	c.VizParams = make(map[string]float64, len(v.VizParams))
	for k, val := range v.VizParams {
		c.VizParams[k] = val
	}
	return &c
}
