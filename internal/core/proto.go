package core

import (
	"bufio"
	"encoding/gob"
	"net"
	"sync"
	"time"
)

// msgType discriminates envelope payloads.
type msgType uint8

const (
	msgAttach msgType = iota + 1
	msgWelcome
	msgSample
	msgSetParam
	msgParamUpdate
	msgSetView
	msgViewUpdate
	msgCommand
	msgRequestMaster
	msgHandoffMaster
	msgMasterChanged
	msgEvent
	msgAck
	msgDetach
)

// commandKind names the session-level commands a master may issue.
type commandKind uint8

const (
	cmdPause commandKind = iota + 1
	cmdResume
	cmdStop
	cmdCheckpoint
)

// envelope is the single frame type exchanged between Session and Client.
// gob handles the sparse optional fields compactly.
type envelope struct {
	Type msgType
	// Seq correlates requests with acks.
	Seq uint64

	Attach  *attachMsg
	Welcome *welcomeMsg
	Sample  *Sample
	Set     *setParamMsg
	Params  []Param
	View    *ViewState
	Command commandKind
	Target  string // handoff target / master-changed name
	Event   string
	Ack     *ackMsg
}

type attachMsg struct {
	Name string
	// WantMaster asks for the master role if it is free.
	WantMaster bool
	// Session names the target session when the endpoint hosts several
	// (a hub); "" lets the endpoint pick its default session.
	Session string
}

type welcomeMsg struct {
	SessionName string
	AppName     string
	ClientName  string
	Role        Role
	Master      string
	Params      []Param
	View        *ViewState
}

type setParamMsg struct {
	Name  string
	Value float64
}

type ackMsg struct {
	OK  bool
	Err string
}

// codec wraps a conn with gob encoding and a write lock; envelopes may be
// written from multiple goroutines. Writes are buffered so a batch of
// envelopes coalesces into few syscalls; every write path flushes before
// releasing the lock.
type codec struct {
	conn net.Conn
	bw   *bufio.Writer
	enc  *gob.Encoder
	dec  *gob.Decoder
	wmu  sync.Mutex
}

func newCodec(conn net.Conn) *codec {
	bw := bufio.NewWriter(conn)
	return &codec{conn: conn, bw: bw, enc: gob.NewEncoder(bw), dec: gob.NewDecoder(conn)}
}

// write sends one envelope, applying the write deadline if non-zero.
func (c *codec) write(e *envelope, timeout time.Duration) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if timeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(timeout))
		defer c.conn.SetWriteDeadline(time.Time{})
	}
	if err := c.enc.Encode(e); err != nil {
		return err
	}
	return c.bw.Flush()
}

// writeBatch sends several envelopes under one lock acquisition and one
// deadline, flushing once at the end: the unit of work of a pooled writer.
func (c *codec) writeBatch(batch []*envelope, timeout time.Duration) error {
	if len(batch) == 0 {
		return nil
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if timeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(timeout))
		defer c.conn.SetWriteDeadline(time.Time{})
	}
	for _, e := range batch {
		if err := c.enc.Encode(e); err != nil {
			return err
		}
	}
	return c.bw.Flush()
}

// read receives the next envelope.
func (c *codec) read() (*envelope, error) {
	var e envelope
	if err := c.dec.Decode(&e); err != nil {
		return nil, err
	}
	return &e, nil
}

func (c *codec) close() error { return c.conn.Close() }
