package core

import (
	"encoding/gob"
	"net"
	"sync"
	"time"
)

// msgType discriminates envelope payloads.
type msgType uint8

const (
	msgAttach msgType = iota + 1
	msgWelcome
	msgSample
	msgSetParam
	msgParamUpdate
	msgSetView
	msgViewUpdate
	msgCommand
	msgRequestMaster
	msgHandoffMaster
	msgMasterChanged
	msgEvent
	msgAck
	msgDetach
)

// commandKind names the session-level commands a master may issue.
type commandKind uint8

const (
	cmdPause commandKind = iota + 1
	cmdResume
	cmdStop
	cmdCheckpoint
)

// envelope is the single frame type exchanged between Session and Client.
// gob handles the sparse optional fields compactly.
type envelope struct {
	Type msgType
	// Seq correlates requests with acks.
	Seq uint64

	Attach  *attachMsg
	Welcome *welcomeMsg
	Sample  *Sample
	Set     *setParamMsg
	Params  []Param
	View    *ViewState
	Command commandKind
	Target  string // handoff target / master-changed name
	Event   string
	Ack     *ackMsg
}

type attachMsg struct {
	Name string
	// WantMaster asks for the master role if it is free.
	WantMaster bool
}

type welcomeMsg struct {
	SessionName string
	AppName     string
	ClientName  string
	Role        Role
	Master      string
	Params      []Param
	View        *ViewState
}

type setParamMsg struct {
	Name  string
	Value float64
}

type ackMsg struct {
	OK  bool
	Err string
}

// codec wraps a conn with gob encoding and a write lock; envelopes may be
// written from multiple goroutines.
type codec struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	wmu  sync.Mutex
}

func newCodec(conn net.Conn) *codec {
	return &codec{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

// write sends one envelope, applying the write deadline if non-zero.
func (c *codec) write(e *envelope, timeout time.Duration) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if timeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(timeout))
		defer c.conn.SetWriteDeadline(time.Time{})
	}
	return c.enc.Encode(e)
}

// read receives the next envelope.
func (c *codec) read() (*envelope, error) {
	var e envelope
	if err := c.dec.Decode(&e); err != nil {
		return nil, err
	}
	return &e, nil
}

func (c *codec) close() error { return c.conn.Close() }
