package core

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// Protocol v2: the session↔client exchange rides internal/wire's tagged
// binary frames instead of reflection-based gob. One envelope is a
// header frame followed by a known number of Kind-typed field-group frames:
//
//	tagHeader     int64 ×6   [version, msgType, seq, flags, aux, nframes]
//	tagStrs       string ×k  positional strings of the message type
//	tagParamMeta  int64 ×4n  [type, valueKind, intValue, nchoices] per param
//	tagParamNum   f64   ×3n  [floatValue, min, max] per param
//	tagParamStr   string     [name, help, stringValue, choices...] per param
//	tagSetMeta    int64 ×2n  [valueKind, intValue] per assignment
//	tagSetNum     f64   ×n   [floatValue] per assignment
//	tagSetStr     string ×2n [name, stringValue] per assignment
//	tagViewMeta   int64 ×2   [seq, nviz]
//	tagViewNums   f64        [eye×3, center×3, up×3, fovy, viz values...]
//	tagViewKeys   string     sorted viz parameter names
//	tagSampleMeta int64      [step, nchan, then d0,d1,d2 per channel]
//	tagSampleName string ×n  sorted channel names
//	tagSampleData f64        one frame per channel, in name order
//
// The header is versioned; AcceptConn/Attach negotiate the version before
// anything else is decoded, and an unknown magic or unsupported version
// fails with ErrVersionMismatch instead of a codec panic. Because an
// envelope is already a byte sequence, broadcasts serialize once and hand
// the same buffer to every client queue (encode-once fan-out).

// ProtoVersion is the protocol generation this package speaks. Version 1
// was the gob-framed protocol; version 2 introduced the wire-native framing
// but had no floor-control vocabulary (its master requests could go
// unanswered, so a v3 endpoint rejects v2 peers cleanly at the handshake
// instead of leaving their requests to silently time out). Version 3 adds
// the explicit request/grant/deny/release floor protocol, heartbeats and
// lease advertisement. Version 4 adds interest management: subscribe /
// unsubscribe frames, delivery tiers and replay policies on attach, and the
// extended welcome advertisement.
//
// A v4 endpoint still accepts v3 peers (minProtoVersion): the session
// records the peer's version at attach, answers the handshake at that
// version, and downgrades a v3 client to subscribe-all at TierSteering —
// exactly the v3 delivery semantics. The v4 additions are all new frame
// tags or trailing ints in existing groups, both of which v3 decoders
// skip, so broadcast framing needs no per-client re-encode.
//
// Version 5 adds the bulk blob frame class (msgBlob): large binary
// payloads — pixel tiles, rendered frames, geometry — ride the same
// refcounted FrameBuf fan-out as samples, interest-keyed by stream name
// and sized for the zero-copy writev egress path. Unlike the v4
// additions, a blob is a whole new message type, which pre-v5 decoders
// reject as malformed rather than skip — so blob delivery is proto-gated
// per client (FrameBuf.minProto): a v5 session simply never queues a blob
// toward a v3/v4 peer, and mixed fleets keep working on the shared
// encode-once buffer.
const ProtoVersion = 5

// minProtoVersion is the oldest peer generation a v5 endpoint still
// accepts (see the downgrade notes on ProtoVersion).
const minProtoVersion = 3

// blobProtoVersion is the first protocol generation whose decoder
// understands msgBlob; fan-out gates blob frames on it per client.
const blobProtoVersion = 5

// Frame tags of the envelope codec.
const (
	tagHeader uint32 = 0x53430001 + iota // "SC" + ordinal
	tagStrs
	tagParamMeta
	tagParamNum
	tagParamStr
	tagSetMeta
	tagSetNum
	tagSetStr
	tagViewMeta
	tagViewNums
	tagViewKeys
	tagSampleMeta
	tagSampleName
	tagSampleData
	// tagFloor carries the welcome's floor-control advertisement:
	// int64 ×3 [leaseMillis, policy, floorSeq]. A zero lease means leases
	// are disabled and clients need not heartbeat; floorSeq anchors the
	// client's newest-wins ordering of master-changed broadcasts. Since v4
	// the group carries three more ints [tier, observerMillis, proto] —
	// the granted delivery tier, the observer coalescing interval and the
	// version the session decided to speak to this client. v3 decoders
	// read the first three and ignore the rest.
	tagFloor
	// tagAttachExt is the v4 attach extension: int64 ×(3+n)
	// [tier, replayPolicy, nsubs, kind...] with the matching subscription
	// names appended to the attach's tagStrs after [name, session]. v3
	// decoders skip the unknown tag.
	tagAttachExt
	// tagSub carries a subscribe/unsubscribe selector set: int64 ×n
	// subscription kinds, names in the envelope's tagStrs positionally.
	tagSub
	// tagBlobMeta (v5) carries a blob frame's fixed-size descriptor:
	// int64 ×6 [seq, encoding, width, height, flags, len]. The stream name
	// rides in the envelope's tagStrs; len must match the tagBlobData
	// payload exactly.
	tagBlobMeta
	// tagBlobData (v5) carries the blob payload as one wire bytes element —
	// the big-frame half of the envelope, 64KB–1MB for pixel streams.
	tagBlobData
)

// Register the envelope tag names so wire-level tag mismatches report
// "tagHeader (0x53430001)" instead of a bare number.
func init() {
	for tag, name := range map[uint32]string{
		tagHeader:     "tagHeader",
		tagStrs:       "tagStrs",
		tagParamMeta:  "tagParamMeta",
		tagParamNum:   "tagParamNum",
		tagParamStr:   "tagParamStr",
		tagSetMeta:    "tagSetMeta",
		tagSetNum:     "tagSetNum",
		tagSetStr:     "tagSetStr",
		tagViewMeta:   "tagViewMeta",
		tagViewNums:   "tagViewNums",
		tagViewKeys:   "tagViewKeys",
		tagSampleMeta: "tagSampleMeta",
		tagSampleName: "tagSampleName",
		tagSampleData: "tagSampleData",
		tagFloor:      "tagFloor",
		tagAttachExt:  "tagAttachExt",
		tagSub:        "tagSub",
		tagBlobMeta:   "tagBlobMeta",
		tagBlobData:   "tagBlobData",
	} {
		wire.TagName[tag] = name
	}
}

// Header flag bits.
const (
	flagWantMaster = 1 << iota
	flagAckOK
	flagHasView
	// flagNoWait marks a master request that must be granted or denied
	// immediately — never queued.
	flagNoWait
	// flagSteal marks an administrative master request that asks to preempt
	// the current holder (honoured only under the steal policy).
	flagSteal
	// flagSubAll marks a msgSubscribe that resets the sender's interest set
	// to subscribe-all (both kinds), ignoring any selectors in the frame.
	flagSubAll
)

// maxEnvelopeFrames bounds the field-group frames one envelope may declare;
// far above any legitimate envelope (a sample with thousands of channels),
// it only stops a corrupt header from spinning the decoder.
const maxEnvelopeFrames = 1 << 16

// Per-envelope payload budgets: the total bytes one envelope may retain
// across all its field frames while decoding. Bulk data (samples) flows
// only session→client, so the client side is generous; everything a client
// legitimately sends a session is control-sized, so the session side is
// tight — a hostile client streaming huge frames is cut off long before
// memory matters.
const (
	clientEnvelopeBudget = 1 << 30
	serverEnvelopeBudget = 8 << 20
)

// serverLimits are the per-frame wire limits a session imposes on inbound
// client traffic (attach, steering batches, view state: all small).
var serverLimits = wire.Limits{MaxElements: 1 << 16, MaxBlobLen: 1 << 16, MaxPayload: 1 << 20}

// messageBytes estimates the retained payload size of one decoded frame.
func messageBytes(m *wire.Message) int {
	n := len(m.Int32s)*4 + len(m.Int64s)*8 + len(m.Float32s)*4 + len(m.Float64s)*8 + len(m.Bools)
	for _, s := range m.Strings {
		n += 4 + len(s)
	}
	for _, b := range m.Blobs {
		n += 4 + len(b)
	}
	return n
}

// errMalformed reports an envelope whose frames do not assemble.
var errMalformed = errors.New("core: malformed envelope")

// msgType discriminates envelope payloads.
type msgType uint8

const (
	msgAttach msgType = iota + 1
	msgWelcome
	msgSample
	msgSetParam
	msgParamUpdate
	msgSetView
	msgViewUpdate
	msgCommand
	msgRequestMaster
	msgHandoffMaster
	msgMasterChanged
	msgEvent
	msgAck
	msgDetach
	// msgReleaseMaster gives the floor up (holder) or cancels a queued
	// request (waiter); always acked.
	msgReleaseMaster
	// msgHeartbeat renews the sender's liveness for the master lease; it is
	// one-way and never acked. Any inbound frame renews the lease — the
	// heartbeat only exists so an idle master has something to send.
	msgHeartbeat
	// msgSubscribe (v4) adds selectors to the sender's interest set (the
	// first selective subscribe for a kind narrows that kind from
	// subscribe-all to exactly the named set), or resets to subscribe-all
	// under flagSubAll; always acked.
	msgSubscribe
	// msgUnsubscribe (v4) removes the named selectors from the sender's
	// interest set; with no selectors it clears both kinds to
	// interested-in-nothing. Always acked.
	msgUnsubscribe
	// msgBlob (v5) is the bulk binary frame class: an application-defined
	// payload (pixel tiles, rendered frames, geometry) keyed by a stream
	// name for interest filtering. Session→client only, never journaled
	// (blob streams are publisher-delta-coded; see JournalBlob), and never
	// queued toward a pre-v5 peer.
	msgBlob
)

// commandKind names the session-level commands a master may issue.
type commandKind uint8

const (
	cmdPause commandKind = iota + 1
	cmdResume
	cmdStop
	cmdCheckpoint
)

// envelope is the in-memory form of one protocol message.
type envelope struct {
	// Version is the protocol version to encode with; 0 means ProtoVersion.
	// Decoded envelopes carry the sender's version.
	Version uint32
	Type    msgType
	// Seq correlates requests with acks.
	Seq uint64

	Attach  *attachMsg
	Welcome *welcomeMsg
	Sample  *Sample
	Sets    []ParamSet
	Params  []Param
	View    *ViewState
	Command commandKind
	Target  string // handoff target / master-changed name ("" = floor free)
	Event   string
	Ack     *ackMsg
	// Reason explains a master-changed broadcast (FloorReason).
	Reason FloorReason
	// NoWait/Steal qualify a master request (see the flag bits).
	NoWait bool
	Steal  bool
	// Subs carries the selectors of a subscribe/unsubscribe frame; SubAll
	// marks a subscribe-all reset (flagSubAll).
	Subs   []Subscription
	SubAll bool
	// Blob is the v5 bulk frame payload.
	Blob *Blob
}

type attachMsg struct {
	Name string
	// WantMaster asks for the master role if it is free.
	WantMaster bool
	// Session names the target session when the endpoint hosts several
	// (a hub); "" lets the endpoint pick its default session.
	Session string
	// Priority orders this client's floor requests under the priority
	// policy; higher wins. Ignored by the FIFO policy.
	Priority int64
	// Tier is the requested delivery tier (v4; zero = TierSteering).
	Tier Tier
	// Replay is the requested journal replay policy (v4; zero = ReplayAll).
	Replay ReplayPolicy
	// Subs is the initial interest set (v4; empty = subscribe-all).
	Subs []Subscription
	// proto is the protocol version the peer attached with; never on the
	// wire (the envelope header carries it). 0 means ProtoVersion.
	proto uint32
}

type welcomeMsg struct {
	SessionName string
	AppName     string
	ClientName  string
	Role        Role
	Master      string
	Params      []Param
	View        *ViewState
	// LeaseMillis advertises the session's master lease in milliseconds;
	// clients heartbeat at a fraction of it. 0 means leases are disabled.
	LeaseMillis int64
	// Policy is the session's floor arbitration policy.
	Policy FloorPolicy
	// FloorSeq is the floor-transition sequence number the Master field
	// reflects; master-changed broadcasts with a lower seq are stale.
	FloorSeq uint64
	// Tier is the delivery tier the session granted (v4).
	Tier Tier
	// ObserverMillis is the observer-tier coalescing interval in
	// milliseconds; <= 0 means observer frames are flushed immediately.
	ObserverMillis int64
	// Proto is the protocol version the session speaks to this client —
	// the peer's own version under negotiated downgrade. 0 (a v3 session)
	// means v3.
	Proto uint32
}

type ackMsg struct {
	OK   bool
	Code errCode
	Err  string
}

// ---- encoding ----

// appendValue splits v into the (kind, int, float, string) lanes of a frame
// group.
func valueLanes(v Value) (kind int64, i int64, f float64, s string) {
	return int64(v.Kind), v.I, v.F, v.S
}

// subscriptionFromLanes validates one decoded (kind, name) selector pair.
func subscriptionFromLanes(kind int64, name string) (Subscription, error) {
	switch SubscriptionKind(kind) {
	case SubChannel, SubParam:
		return Subscription{Kind: SubscriptionKind(kind), Name: name}, nil
	default:
		return Subscription{}, fmt.Errorf("%w: subscription kind %d", errMalformed, kind)
	}
}

// valueFromLanes is the inverse of valueLanes.
func valueFromLanes(kind, i int64, f float64, s string) (Value, error) {
	k := wire.Kind(kind)
	switch k {
	case wire.KindFloat64, wire.KindInt64, wire.KindBool, wire.KindString:
		return Value{Kind: k, I: i, F: f, S: s}, nil
	default:
		return Value{}, fmt.Errorf("%w: value kind %d", errMalformed, kind)
	}
}

// frameCount returns the number of field-group frames the envelope encodes
// to after the header at the given protocol version — the declared nframes
// must match what the version actually emits, so version-gated extension
// frames count only when the version carries them.
func frameCount(e *envelope, version uint32) (int, error) {
	switch e.Type {
	case msgAttach:
		if version >= 4 {
			return 2, nil // strings + attach extension
		}
		return 1, nil
	case msgSubscribe, msgUnsubscribe:
		if version < 4 {
			//steer:allow hotpathalloc malformed-envelope error path aborts the broadcast before any fan-out
			return 0, fmt.Errorf("%w: subscribe frames require v4, encoding at v%d", errMalformed, version)
		}
		return 2, nil // selector names + kinds
	case msgHandoffMaster, msgMasterChanged, msgEvent, msgAck:
		return 1, nil
	case msgWelcome:
		if e.Welcome == nil {
			//steer:allow hotpathalloc malformed-envelope error path aborts the broadcast before any fan-out
			return 0, fmt.Errorf("%w: welcome without payload", errMalformed)
		}
		n := 1 + 3 + 1 // strings + param group + floor advertisement
		if e.Welcome.View != nil {
			n += 3
		}
		return n, nil
	case msgSample:
		if e.Sample == nil {
			//steer:allow hotpathalloc malformed-envelope error path aborts the broadcast before any fan-out
			return 0, fmt.Errorf("%w: sample without payload", errMalformed)
		}
		return 2 + len(e.Sample.Channels), nil
	case msgBlob:
		if version < blobProtoVersion {
			//steer:allow hotpathalloc malformed-envelope error path aborts the broadcast before any fan-out
			return 0, fmt.Errorf("%w: blob frames require v%d, encoding at v%d", errMalformed, blobProtoVersion, version)
		}
		if e.Blob == nil {
			//steer:allow hotpathalloc malformed-envelope error path aborts the broadcast before any fan-out
			return 0, fmt.Errorf("%w: blob without payload", errMalformed)
		}
		return 3, nil // stream name + meta + data
	case msgSetParam:
		return 3, nil
	case msgParamUpdate:
		return 3, nil
	case msgSetView, msgViewUpdate:
		if e.View == nil {
			//steer:allow hotpathalloc malformed-envelope error path aborts the broadcast before any fan-out
			return 0, fmt.Errorf("%w: view message without view", errMalformed)
		}
		return 3, nil
	case msgCommand, msgRequestMaster, msgReleaseMaster, msgHeartbeat, msgDetach:
		return 0, nil
	default:
		//steer:allow hotpathalloc malformed-envelope error path aborts the broadcast before any fan-out
		return 0, fmt.Errorf("%w: type %d", errMalformed, e.Type)
	}
}

// encodeEnvelope appends the wire form of e to buf and returns the extended
// slice. Encoding is deterministic: map-backed groups (sample channels, viz
// params) are emitted in sorted key order.
func encodeEnvelope(buf []byte, e *envelope) ([]byte, error) {
	version := e.Version
	if version == 0 {
		version = ProtoVersion
	}
	nframes, err := frameCount(e, version)
	if err != nil {
		return nil, err
	}
	var flags, aux int64
	switch e.Type {
	case msgAttach:
		if e.Attach != nil {
			if e.Attach.WantMaster {
				flags |= flagWantMaster
			}
			aux = e.Attach.Priority
		}
	case msgWelcome:
		aux = int64(e.Welcome.Role)
		if e.Welcome.View != nil {
			flags |= flagHasView
		}
	case msgSetView, msgViewUpdate:
		flags |= flagHasView
	case msgCommand:
		aux = int64(e.Command)
	case msgRequestMaster:
		if e.NoWait {
			flags |= flagNoWait
		}
		if e.Steal {
			flags |= flagSteal
		}
	case msgSubscribe:
		if e.SubAll {
			flags |= flagSubAll
		}
	case msgMasterChanged:
		aux = int64(e.Reason)
	case msgAck:
		if e.Ack != nil {
			if e.Ack.OK {
				flags |= flagAckOK
			}
			aux = int64(e.Ack.Code)
		}
	}
	buf = wire.AppendInt64s(buf, tagHeader, []int64{ //steer:allow hotpathalloc non-escaping literal the compiler stack-allocates; BenchmarkBroadcastHotPath proves 0 allocs/op
		int64(version), int64(e.Type), int64(e.Seq), flags, aux, int64(nframes),
	})

	switch e.Type {
	case msgAttach: //steer:allow hotpathalloc control-plane case; the steady-state sample path takes msgSample
		a := e.Attach
		if a == nil {
			a = &attachMsg{}
		}
		if version >= 4 {
			strs := make([]string, 0, 2+len(a.Subs))
			strs = append(strs, a.Name, a.Session)
			ext := make([]int64, 0, 3+len(a.Subs))
			ext = append(ext, int64(a.Tier), int64(a.Replay), int64(len(a.Subs)))
			for _, sub := range a.Subs {
				strs = append(strs, sub.Name)
				ext = append(ext, int64(sub.Kind))
			}
			buf = wire.AppendStrings(buf, tagStrs, strs)
			buf = wire.AppendInt64s(buf, tagAttachExt, ext)
		} else {
			buf = wire.AppendStrings(buf, tagStrs, []string{a.Name, a.Session})
		}
	case msgWelcome: //steer:allow hotpathalloc control-plane case; the steady-state sample path takes msgSample
		w := e.Welcome
		buf = wire.AppendStrings(buf, tagStrs, []string{w.SessionName, w.AppName, w.ClientName, w.Master})
		buf = appendParams(buf, w.Params)
		// The trailing [tier, observerMillis, proto] ints are harmless to v3
		// decoders, which only read the first three (see tagFloor).
		buf = wire.AppendInt64s(buf, tagFloor, []int64{
			w.LeaseMillis, int64(w.Policy), int64(w.FloorSeq),
			int64(w.Tier), w.ObserverMillis, int64(w.Proto),
		})
		if w.View != nil {
			buf = appendView(buf, w.View)
		}
	case msgSample:
		buf = appendSample(buf, e.Sample)
	case msgBlob:
		buf = appendBlob(buf, e.Blob)
	case msgSetParam:
		buf = appendSets(buf, e.Sets)
	case msgParamUpdate:
		buf = appendParams(buf, e.Params)
	case msgSetView, msgViewUpdate:
		buf = appendView(buf, e.View)
	case msgHandoffMaster, msgMasterChanged: //steer:allow hotpathalloc control-plane case; the steady-state sample path takes msgSample
		buf = wire.AppendStrings(buf, tagStrs, []string{e.Target})
	case msgEvent: //steer:allow hotpathalloc control-plane case; the steady-state sample path takes msgSample
		buf = wire.AppendStrings(buf, tagStrs, []string{e.Event})
	case msgSubscribe, msgUnsubscribe: //steer:allow hotpathalloc control-plane case; the steady-state sample path takes msgSample
		names := make([]string, 0, len(e.Subs))
		kinds := make([]int64, 0, len(e.Subs))
		for _, sub := range e.Subs {
			names = append(names, sub.Name)
			kinds = append(kinds, int64(sub.Kind))
		}
		buf = wire.AppendStrings(buf, tagStrs, names)
		buf = wire.AppendInt64s(buf, tagSub, kinds)
	case msgAck: //steer:allow hotpathalloc control-plane case; the steady-state sample path takes msgSample
		msg := ""
		if e.Ack != nil {
			msg = e.Ack.Err
		}
		buf = wire.AppendStrings(buf, tagStrs, []string{msg})
	}
	return buf, nil
}

// appendParams emits the three-frame parameter group.
//
//steer:coldpath control-plane encode (welcome/param-update), never on the sample path
func appendParams(buf []byte, params []Param) []byte {
	n := len(params)
	meta := make([]int64, 0, 4*n)
	nums := make([]float64, 0, 3*n)
	strs := make([]string, 0, 3*n)
	for i := range params {
		p := &params[i]
		vk, vi, vf, vs := valueLanes(p.Value)
		meta = append(meta, int64(p.Type), vk, vi, int64(len(p.Choices)))
		nums = append(nums, vf, p.Min, p.Max)
		strs = append(strs, p.Name, p.Help, vs)
		strs = append(strs, p.Choices...)
	}
	buf = wire.AppendInt64s(buf, tagParamMeta, meta)
	buf = wire.AppendFloat64s(buf, tagParamNum, nums)
	return wire.AppendStrings(buf, tagParamStr, strs)
}

// parseParams assembles the parameter group back into []Param.
func parseParams(meta []int64, nums []float64, strs []string) ([]Param, error) {
	if len(meta)%4 != 0 {
		return nil, fmt.Errorf("%w: param meta count %d", errMalformed, len(meta))
	}
	n := len(meta) / 4
	if len(nums) != 3*n {
		return nil, fmt.Errorf("%w: param nums count %d for %d params", errMalformed, len(nums), n)
	}
	params := make([]Param, 0, n)
	cursor := 0
	for i := 0; i < n; i++ {
		ptype, vk, vi, nch := meta[4*i], meta[4*i+1], meta[4*i+2], meta[4*i+3]
		// Bound nch in int64 space before any int conversion: a hostile
		// count near MaxInt64 must not wrap the slice arithmetic below.
		if nch < 0 || nch > int64(len(strs)-cursor-3) {
			return nil, fmt.Errorf("%w: param strings exhausted", errMalformed)
		}
		v, err := valueFromLanes(vk, vi, nums[3*i], strs[cursor+2])
		if err != nil {
			return nil, err
		}
		p := Param{
			Name:  strs[cursor],
			Type:  ParamType(ptype),
			Value: v,
			Min:   nums[3*i+1],
			Max:   nums[3*i+2],
			Help:  strs[cursor+1],
		}
		if nch > 0 {
			p.Choices = append([]string(nil), strs[cursor+3:cursor+3+int(nch)]...)
		}
		cursor += 3 + int(nch)
		params = append(params, p)
	}
	if cursor != len(strs) {
		return nil, fmt.Errorf("%w: %d trailing param strings", errMalformed, len(strs)-cursor)
	}
	return params, nil
}

// appendSets emits the three-frame assignment group of a SetParams batch.
//
//steer:coldpath control-plane encode (set-param), never on the sample path
func appendSets(buf []byte, sets []ParamSet) []byte {
	n := len(sets)
	meta := make([]int64, 0, 2*n)
	nums := make([]float64, 0, n)
	strs := make([]string, 0, 2*n)
	for i := range sets {
		vk, vi, vf, vs := valueLanes(sets[i].Value)
		meta = append(meta, vk, vi)
		nums = append(nums, vf)
		strs = append(strs, sets[i].Name, vs)
	}
	buf = wire.AppendInt64s(buf, tagSetMeta, meta)
	buf = wire.AppendFloat64s(buf, tagSetNum, nums)
	return wire.AppendStrings(buf, tagSetStr, strs)
}

// parseSets assembles the assignment group back into []ParamSet.
func parseSets(meta []int64, nums []float64, strs []string) ([]ParamSet, error) {
	n := len(nums)
	if len(meta) != 2*n || len(strs) != 2*n {
		return nil, fmt.Errorf("%w: set group counts %d/%d/%d", errMalformed, len(meta), n, len(strs))
	}
	sets := make([]ParamSet, 0, n)
	for i := 0; i < n; i++ {
		v, err := valueFromLanes(meta[2*i], meta[2*i+1], nums[i], strs[2*i+1])
		if err != nil {
			return nil, err
		}
		sets = append(sets, ParamSet{Name: strs[2*i], Value: v})
	}
	return sets, nil
}

// appendView emits the three-frame view group.
//
//steer:coldpath control-plane encode (view update), never on the sample path
func appendView(buf []byte, v *ViewState) []byte {
	keys := make([]string, 0, len(v.VizParams))
	for k := range v.VizParams {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = wire.AppendInt64s(buf, tagViewMeta, []int64{int64(v.Seq), int64(len(keys))})
	buf = wire.AppendHeader(buf, tagViewNums, wire.KindFloat64, 10+len(keys))
	for _, x := range [...]float64{
		v.Eye[0], v.Eye[1], v.Eye[2],
		v.Center[0], v.Center[1], v.Center[2],
		v.Up[0], v.Up[1], v.Up[2],
		v.FovY,
	} {
		buf = wire.AppendFloat64(buf, x)
	}
	for _, k := range keys {
		buf = wire.AppendFloat64(buf, v.VizParams[k])
	}
	return wire.AppendStrings(buf, tagViewKeys, keys)
}

// parseView assembles the view group back into a ViewState.
func parseView(meta []int64, nums []float64, keys []string) (*ViewState, error) {
	if len(meta) != 2 {
		return nil, fmt.Errorf("%w: view meta count %d", errMalformed, len(meta))
	}
	// Trust only the actual frame lengths; the declared count must agree.
	nviz := len(keys)
	if int64(nviz) != meta[1] || len(nums) != 10+nviz {
		return nil, fmt.Errorf("%w: view group counts %d/%d", errMalformed, len(nums), len(keys))
	}
	v := &ViewState{
		Seq:       uint64(meta[0]),
		Eye:       [3]float64{nums[0], nums[1], nums[2]},
		Center:    [3]float64{nums[3], nums[4], nums[5]},
		Up:        [3]float64{nums[6], nums[7], nums[8]},
		FovY:      nums[9],
		VizParams: make(map[string]float64, nviz),
	}
	for i, k := range keys {
		v.VizParams[k] = nums[10+i]
	}
	return v, nil
}

// sampleScratchChans sizes appendSample's stack scratch: samples with at
// most this many channels (every steered demo, and any sane emitter)
// serialize with zero slice allocations, which is what keeps the broadcast
// hot path allocation-free.
const sampleScratchChans = 16

// appendSample emits the sample group: meta, names, then one data frame per
// channel in name order.
func appendSample(buf []byte, s *Sample) []byte {
	var nameScratch [sampleScratchChans]string
	names := nameScratch[:0]
	if len(s.Channels) > len(nameScratch) {
		//steer:allow hotpathalloc oversized-sample cold branch; <= sampleScratchChans channels stay on the stack
		names = make([]string, 0, len(s.Channels))
	}
	for k := range s.Channels {
		names = append(names, k)
	}
	sort.Strings(names)
	var metaScratch [2 + 3*sampleScratchChans]int64
	meta := metaScratch[:0]
	if len(names) > sampleScratchChans {
		//steer:allow hotpathalloc oversized-sample cold branch; <= sampleScratchChans channels stay on the stack
		meta = make([]int64, 0, 2+3*len(names))
	}
	meta = append(meta, s.Step, int64(len(names)))
	for _, k := range names {
		ch := s.Channels[k]
		meta = append(meta, int64(ch.Dims[0]), int64(ch.Dims[1]), int64(ch.Dims[2]))
	}
	buf = wire.AppendInt64s(buf, tagSampleMeta, meta)
	buf = wire.AppendStrings(buf, tagSampleName, names)
	for _, k := range names {
		buf = wire.AppendFloat64s(buf, tagSampleData, s.Channels[k].Data)
	}
	return buf
}

// parseSample assembles the sample group back into a Sample.
func parseSample(meta []int64, names []string, data [][]float64) (*Sample, error) {
	if len(meta) < 2 {
		return nil, fmt.Errorf("%w: sample meta count %d", errMalformed, len(meta))
	}
	// Trust only the actual frame lengths; the declared count must agree.
	n := len(names)
	if int64(n) != meta[1] || len(meta) != 2+3*n || len(data) != n {
		return nil, fmt.Errorf("%w: sample group counts %d/%d/%d", errMalformed, len(meta), len(names), len(data))
	}
	s := &Sample{Step: meta[0], Channels: make(map[string]Channel, n)}
	for i, name := range names {
		s.Channels[name] = Channel{
			Dims: [3]int{int(meta[2+3*i]), int(meta[3+3*i]), int(meta[4+3*i])},
			Data: data[i],
		}
	}
	return s, nil
}

// appendBlob emits the blob group: the stream name, the fixed descriptor,
// then the payload as a single wire bytes element. The payload is appended
// byte-for-byte — no per-pixel framing — so the encoded frame's dominant
// cost is one memcpy into the (size-classed) pooled buffer, after which
// fan-out and the writev egress are copy-free.
//
//steer:hotpath
func appendBlob(buf []byte, b *Blob) []byte {
	buf = wire.AppendStrings(buf, tagStrs, []string{b.Stream}) //steer:allow hotpathalloc non-escaping literal the compiler stack-allocates, same as the header frame
	buf = wire.AppendInt64s(buf, tagBlobMeta, []int64{         //steer:allow hotpathalloc non-escaping literal the compiler stack-allocates, same as the header frame
		int64(b.Seq), b.Encoding, int64(b.Width), int64(b.Height), b.Flags, int64(len(b.Data)),
	})
	//steer:allow hotpathalloc broadcastBlob pre-sizes the frame with Blob.ByteSize, so the payload append never grows a warm pooled buffer
	return wire.AppendBytes(buf, tagBlobData, b.Data)
}

// parseBlob assembles the blob group back into a Blob. The data slice
// aliases the decoder's per-message allocation; callers that retain it past
// the envelope dispatch own it outright (the decoder never recycles it).
func parseBlob(strs []string, meta []int64, data [][]byte) (*Blob, error) {
	if len(meta) != 6 || len(data) != 1 {
		return nil, fmt.Errorf("%w: blob group counts %d/%d", errMalformed, len(meta), len(data))
	}
	if meta[5] != int64(len(data[0])) {
		return nil, fmt.Errorf("%w: blob declares %d bytes, carries %d", errMalformed, meta[5], len(data[0]))
	}
	if len(strs) < 1 {
		return nil, fmt.Errorf("%w: blob without stream name", errMalformed)
	}
	return &Blob{
		Stream:   strs[0],
		Seq:      uint64(meta[0]),
		Encoding: meta[1],
		Width:    int(meta[2]),
		Height:   int(meta[3]),
		Flags:    meta[4],
		Data:     data[0],
	}, nil
}

// ---- decoding ----

// decodeEnvelope reads one envelope from dec, refusing to retain more than
// budget payload bytes across its field frames. A bad magic maps to
// ErrVersionMismatch: the stream is not protocol v2 (a gob v1 client, an
// HTTP probe...). An unsupported header version also fails with
// ErrVersionMismatch, wrapped with the offered version.
func decodeEnvelope(dec *wire.Decoder, budget int) (*envelope, error) {
	hdr, err := dec.Next()
	if err != nil {
		if errors.Is(err, wire.ErrBadMagic) {
			return nil, fmt.Errorf("%w: %v", ErrVersionMismatch, err)
		}
		return nil, err
	}
	if hdr.Header.Tag != tagHeader || hdr.Header.Kind != wire.KindInt64 || len(hdr.Int64s) < 6 {
		return nil, fmt.Errorf("%w: expected envelope header, got tag %d", errMalformed, hdr.Header.Tag)
	}
	h := hdr.Int64s
	version := uint32(h[0])
	if version < minProtoVersion || version > ProtoVersion {
		return nil, fmt.Errorf("%w: peer speaks v%d, this endpoint speaks v%d (accepts v%d..v%d)",
			ErrVersionMismatch, version, ProtoVersion, minProtoVersion, ProtoVersion)
	}
	nframes := h[5]
	if nframes < 0 || nframes > maxEnvelopeFrames {
		return nil, fmt.Errorf("%w: %d field frames", errMalformed, nframes)
	}
	e := &envelope{
		Version: version,
		Type:    msgType(h[1]),
		Seq:     uint64(h[2]),
	}
	flags, aux := h[3], h[4]

	var (
		strs                []string
		pMeta, sMeta, vMeta []int64
		pNum, vNums         []float64
		sNum                []float64
		pStr, sStr, vKeys   []string
		smMeta              []int64
		smNames             []string
		smData              [][]float64
		floorMeta           []int64
		attachExt           []int64
		subKinds            []int64
		sawSub              bool
		blobMeta            []int64
		blobData            [][]byte
	)
	for i := int64(0); i < nframes; i++ {
		m, err := dec.Next()
		if err != nil {
			return nil, err
		}
		if budget -= messageBytes(m); budget < 0 {
			return nil, fmt.Errorf("%w: envelope exceeds payload budget", errMalformed)
		}
		switch m.Header.Tag {
		case tagStrs:
			strs = m.Strings
		case tagParamMeta:
			pMeta = m.Int64s
		case tagParamNum:
			pNum = m.Float64s
		case tagParamStr:
			pStr = m.Strings
		case tagSetMeta:
			sMeta = m.Int64s
		case tagSetNum:
			sNum = m.Float64s
		case tagSetStr:
			sStr = m.Strings
		case tagViewMeta:
			vMeta = m.Int64s
		case tagViewNums:
			vNums = m.Float64s
		case tagViewKeys:
			vKeys = m.Strings
		case tagSampleMeta:
			smMeta = m.Int64s
		case tagSampleName:
			smNames = m.Strings
		case tagSampleData:
			smData = append(smData, m.Float64s)
		case tagFloor:
			floorMeta = m.Int64s
		case tagAttachExt:
			attachExt = m.Int64s
		case tagSub:
			subKinds = m.Int64s
			sawSub = true
		case tagBlobMeta:
			blobMeta = m.Int64s
		case tagBlobData:
			blobData = m.Blobs
		default:
			// Unknown field group from a newer minor revision: skip.
		}
	}

	str := func(i int) string {
		if i < len(strs) {
			return strs[i]
		}
		return ""
	}
	switch e.Type {
	case msgAttach:
		e.Attach = &attachMsg{
			Name: str(0), Session: str(1),
			WantMaster: flags&flagWantMaster != 0,
			Priority:   aux,
			proto:      version,
		}
		if len(attachExt) >= 3 {
			nsubs := attachExt[2]
			if nsubs != int64(len(attachExt)-3) || nsubs > int64(len(strs)-2) {
				return nil, fmt.Errorf("%w: attach extension counts %d/%d/%d", errMalformed, len(attachExt), nsubs, len(strs))
			}
			tier, replay := attachExt[0], attachExt[1]
			if tier < int64(TierSteering) || tier > int64(TierObserver) {
				return nil, fmt.Errorf("%w: delivery tier %d", errMalformed, tier)
			}
			if replay < int64(ReplayAll) || replay > int64(ReplayNone) {
				return nil, fmt.Errorf("%w: replay policy %d", errMalformed, replay)
			}
			e.Attach.Tier = Tier(tier)
			e.Attach.Replay = ReplayPolicy(replay)
			if nsubs > 0 {
				e.Attach.Subs = make([]Subscription, 0, nsubs)
				for i := int64(0); i < nsubs; i++ {
					sub, err := subscriptionFromLanes(attachExt[3+i], strs[2+i])
					if err != nil {
						return nil, err
					}
					e.Attach.Subs = append(e.Attach.Subs, sub)
				}
			}
		}
	case msgWelcome:
		params, err := parseParams(pMeta, pNum, pStr)
		if err != nil {
			return nil, err
		}
		w := &welcomeMsg{
			SessionName: str(0), AppName: str(1), ClientName: str(2), Master: str(3),
			Role:   Role(aux),
			Params: params,
		}
		if len(floorMeta) >= 2 {
			w.LeaseMillis = floorMeta[0]
			w.Policy = FloorPolicy(floorMeta[1])
		}
		if len(floorMeta) >= 3 {
			w.FloorSeq = uint64(floorMeta[2])
		}
		if len(floorMeta) >= 6 {
			w.Tier = Tier(floorMeta[3])
			w.ObserverMillis = floorMeta[4]
			w.Proto = uint32(floorMeta[5])
		}
		if flags&flagHasView != 0 {
			if w.View, err = parseView(vMeta, vNums, vKeys); err != nil {
				return nil, err
			}
		}
		e.Welcome = w
	case msgSample:
		if e.Sample, err = parseSample(smMeta, smNames, smData); err != nil {
			return nil, err
		}
	case msgBlob:
		if e.Blob, err = parseBlob(strs, blobMeta, blobData); err != nil {
			return nil, err
		}
	case msgSetParam:
		if e.Sets, err = parseSets(sMeta, sNum, sStr); err != nil {
			return nil, err
		}
	case msgParamUpdate:
		if e.Params, err = parseParams(pMeta, pNum, pStr); err != nil {
			return nil, err
		}
	case msgSetView, msgViewUpdate:
		if flags&flagHasView == 0 {
			return nil, fmt.Errorf("%w: view message without view", errMalformed)
		}
		if e.View, err = parseView(vMeta, vNums, vKeys); err != nil {
			return nil, err
		}
	case msgCommand:
		e.Command = commandKind(aux)
	case msgHandoffMaster:
		e.Target = str(0)
	case msgMasterChanged:
		e.Target = str(0)
		e.Reason = FloorReason(aux)
	case msgEvent:
		e.Event = str(0)
	case msgAck:
		e.Ack = &ackMsg{OK: flags&flagAckOK != 0, Code: errCode(aux), Err: str(0)}
	case msgRequestMaster:
		e.NoWait = flags&flagNoWait != 0
		e.Steal = flags&flagSteal != 0
	case msgSubscribe, msgUnsubscribe:
		if !sawSub || len(subKinds) != len(strs) {
			return nil, fmt.Errorf("%w: subscribe selector counts %d/%d", errMalformed, len(subKinds), len(strs))
		}
		e.SubAll = e.Type == msgSubscribe && flags&flagSubAll != 0
		if len(subKinds) > 0 {
			e.Subs = make([]Subscription, 0, len(subKinds))
			for i, kind := range subKinds {
				sub, err := subscriptionFromLanes(kind, strs[i])
				if err != nil {
					return nil, err
				}
				e.Subs = append(e.Subs, sub)
			}
		}
	case msgReleaseMaster, msgHeartbeat, msgDetach:
	default:
		return nil, fmt.Errorf("%w: message type %d", errMalformed, e.Type)
	}
	return e, nil
}

// ---- connection codec ----

// defaultCoalesceBytes is the hybrid egress threshold when the session
// config leaves CoalesceBytes zero: frames shorter than this are gathered
// (copied) into one shared iovec before the writev, larger frames ride as
// their own zero-copy iovec entries. ~1KB keeps tiny control/ack/sample
// frames — where an iovec entry costs more than the memcpy — out of the
// kernel's per-segment accounting while bulk payloads stay copy-free.
const defaultCoalesceBytes = 1024

// BuffersWriter is the exported half of the vectored-write capability
// probe: a conn implementing it receives each batch as one net.Buffers
// (the codec's reusable iovec scratch, which WriteBuffers consumes exactly
// like (*net.Buffers).WriteTo would). *net.TCPConn and *net.UnixConn get
// the same treatment through the net package's own writev support; conn
// wrappers that want to keep the vectored path must either expose this
// interface or be unwrapped before AcceptConn.
type BuffersWriter interface {
	WriteBuffers(*net.Buffers) (int64, error)
}

// probeVectored reports whether conn can turn a net.Buffers batch into a
// single gathered write. Only the concrete netFD-backed types (whose
// (*net.Buffers).WriteTo reaches writev) and explicit BuffersWriter
// implementations qualify: for anything else — net.Pipe, netsim links,
// opaque middleware wrappers — WriteTo would degrade to one Write syscall
// per iovec entry, which is strictly worse than the buffered fallback, so
// the probe must fail closed.
func probeVectored(conn net.Conn) bool {
	switch conn.(type) {
	case *net.TCPConn, *net.UnixConn:
		return true
	}
	_, ok := conn.(BuffersWriter)
	return ok
}

// egressStats counts the vectored egress layer's activity. The session owns
// one instance shared by every admitted client's codec (injected at admit);
// counters are atomics because batches are written per-client concurrently
// and Stats readers never take a lock.
type egressStats struct {
	// batchesVectored/batchesBuffered count writeBatch calls by path taken.
	batchesVectored atomic.Uint64
	batchesBuffered atomic.Uint64
	// framesCoalesced/bytesCoalesced count small frames (and their bytes)
	// gathered into the shared iovec; bytesZeroCopy counts large-frame
	// bytes handed to the kernel without a copy.
	framesCoalesced atomic.Uint64
	bytesCoalesced  atomic.Uint64
	bytesZeroCopy   atomic.Uint64
	// syscallsSaved estimates the Write calls the buffered fallback would
	// have issued for the same batches beyond the single writev actually
	// used (each large frame passes through bufio unbuffered, and gathered
	// bytes flush per buffer fill).
	syscallsSaved atomic.Uint64
}

// codec wraps a conn with the envelope codec and a write lock; envelopes
// may be written from multiple goroutines. Batches take the vectored
// (writev) path when the conn supports it — see writeVectoredLocked — and
// otherwise coalesce through the buffered writer; every write path flushes
// before releasing the lock.
type codec struct {
	conn net.Conn
	bw   *bufio.Writer
	dec  *wire.Decoder
	wmu  sync.Mutex
	// budget bounds the payload bytes one inbound envelope may retain.
	budget int
	// enc is the reusable scratch buffer for per-client envelope writes
	// (handshake frames, acks); broadcasts arrive pre-encoded.
	enc []byte
	// vectored is the capability probe's verdict, fixed at construction:
	// batches go to the kernel as one writev instead of through bw.
	vectored bool
	// coalesce is the hybrid threshold: frames shorter than it are copied
	// into the gather scratch, frames at or above it become their own
	// zero-copy iovec entries. <= 0 disables gathering entirely.
	coalesce int
	// iov is the reusable iovec scratch writeVectoredLocked builds each
	// batch into; vec is the consumable slice header handed to the conn
	// ((*net.Buffers).WriteTo advances and nils what it consumes, so the
	// stable full-length view stays in iov for the post-write scrub).
	iov net.Buffers
	vec net.Buffers
	// gather is the reusable coalesce buffer small frames are copied into;
	// iovec entries alias it, so it is pre-sized per batch and never grows
	// while entries point in.
	gather []byte
	// egr receives egress counters; nil (client-side codecs, not-yet-
	// admitted conns) skips counting.
	egr *egressStats
}

func newCodec(conn net.Conn) *codec {
	return &codec{
		conn:     conn,
		bw:       bufio.NewWriter(conn),
		dec:      wire.NewDecoder(conn),
		budget:   clientEnvelopeBudget,
		vectored: probeVectored(conn),
		coalesce: defaultCoalesceBytes,
	}
}

// harden installs the tight inbound limits a session applies to client
// traffic — control-sized frames and a small per-envelope budget — so a
// hostile client cannot grow server memory by streaming bulk frames.
func (c *codec) harden() {
	c.dec.SetLimits(serverLimits)
	c.budget = serverEnvelopeBudget
}

// write encodes and sends one envelope, applying the write deadline if
// non-zero.
func (c *codec) write(e *envelope, timeout time.Duration) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	buf, err := encodeEnvelope(c.enc[:0], e)
	if err != nil {
		return err
	}
	c.enc = buf[:0]
	if timeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(timeout))
		defer c.conn.SetWriteDeadline(time.Time{})
	}
	if _, err := c.bw.Write(buf); err != nil {
		return err
	}
	return c.bw.Flush()
}

// writeBatch sends several pre-encoded envelopes under one lock acquisition
// and one deadline, flushing once at the end: the unit of work of a pooled
// writer.
func (c *codec) writeBatch(batch [][]byte, timeout time.Duration) error {
	if len(batch) == 0 {
		return nil
	}
	c.wmu.Lock() //steer:allow hotpathalloc per-connection write mutex serialises this client's batches; never session-wide
	defer c.wmu.Unlock()
	return c.writeBatchLocked(batch, timeout)
}

// writeBatchLocked is writeBatch for a caller already holding the write
// lock (lockWrites): the attach go-live handoff claims the lock before
// opening the writer gate so the backlog precedes any live drain, then
// writes it without holding session-wide locks.
//
//steer:hotpath
func (c *codec) writeBatchLocked(batch [][]byte, timeout time.Duration) error {
	if timeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(timeout))
		defer c.conn.SetWriteDeadline(time.Time{})
	}
	if c.vectored {
		return c.writeVectoredLocked(batch)
	}
	if c.egr != nil {
		c.egr.batchesBuffered.Add(1)
	}
	for _, buf := range batch {
		if _, err := c.bw.Write(buf); err != nil {
			return err
		}
	}
	return c.bw.Flush()
}

// bufioFlushBytes is the buffered fallback's write granularity (bufio's
// default buffer size); the syscallsSaved estimate is denominated in it.
const bufioFlushBytes = 4096

// writeVectoredLocked sends one batch of pre-encoded frames to the kernel
// as a single writev. The hybrid policy: each contiguous run of frames
// shorter than the coalesce threshold is memcpy'd into the reusable gather
// scratch and rides as one shared iovec entry, while every frame at or
// above the threshold becomes its own iovec entry aliasing the FrameBuf's
// bytes directly — zero copies between encode and kernel. The gather
// scratch is pre-sized before any iovec aliases it (an append-grow
// mid-batch would strand earlier entries on the old backing array), and
// both scratches are scrubbed after the write so a released frame's buffer
// is never pinned (or aliased, under framedebug poisoning) between
// batches. The caller owns the batch slices until this returns and must
// not release them earlier; (*net.Buffers).WriteTo consumes c.vec, never
// the caller's batch.
//
//steer:hotpath
func (c *codec) writeVectoredLocked(batch [][]byte) error {
	// Pass 1: size the gather scratch so pass 2's appends never reallocate
	// while iovec entries alias the backing array.
	need := 0
	for _, buf := range batch {
		if len(buf) < c.coalesce {
			need += len(buf)
		}
	}
	if cap(c.gather) < need {
		c.gather = make([]byte, 0, need) //steer:allow hotpathalloc gather scratch grows to the batch high-water mark once; steady state reuses it
	}
	gather := c.gather[:0]
	iov := c.iov[:0]
	var coalesced, large, zeroCopy uint64
	runStart := -1 // gather offset where the current small-frame run began
	for _, buf := range batch {
		if len(buf) < c.coalesce {
			if runStart < 0 {
				runStart = len(gather)
			}
			gather = append(gather, buf...)
			coalesced++
			continue
		}
		if runStart >= 0 {
			iov = append(iov, gather[runStart:len(gather):len(gather)])
			runStart = -1
		}
		iov = append(iov, buf)
		large++
		zeroCopy += uint64(len(buf))
	}
	if runStart >= 0 {
		iov = append(iov, gather[runStart:len(gather):len(gather)])
	}
	c.gather = gather
	c.iov = iov

	// Hand a consumable header to the conn: WriteTo/WriteBuffers advance
	// (and nil out) c.vec as segments complete, while c.iov keeps the
	// stable full-length view for the scrub below.
	c.vec = iov
	var err error
	if bw, ok := c.conn.(BuffersWriter); ok {
		_, err = bw.WriteBuffers(&c.vec)
	} else {
		_, err = c.vec.WriteTo(c.conn)
	}
	// Scrub: no iovec entry may outlive the batch — the caller releases
	// the frame buffers (back into the pool) as soon as we return.
	for i := range iov {
		iov[i] = nil
	}
	c.vec = nil
	if c.egr != nil {
		c.egr.batchesVectored.Add(1)
		c.egr.framesCoalesced.Add(coalesced)
		c.egr.bytesCoalesced.Add(uint64(len(gather)))
		c.egr.bytesZeroCopy.Add(zeroCopy)
		// The buffered fallback would have issued ~one Write per large
		// frame (bufio passes oversized writes straight through) plus one
		// per bufioFlushBytes of gathered small traffic; we issued one
		// writev. An estimate, but a conservative one: it ignores the
		// flushes mixed batches force at small/large boundaries.
		saved := large + (uint64(len(gather))+bufioFlushBytes-1)/bufioFlushBytes
		if saved > 0 {
			saved--
		}
		c.egr.syscallsSaved.Add(saved)
	}
	return err
}

// lockWrites claims the write lock until unlockWrites; writers and acks
// queue behind it.
func (c *codec) lockWrites()   { c.wmu.Lock() }
func (c *codec) unlockWrites() { c.wmu.Unlock() }

// read receives the next envelope.
func (c *codec) read() (*envelope, error) { return decodeEnvelope(c.dec, c.budget) }

func (c *codec) close() error { return c.conn.Close() }
