//go:build !framedebug

package core

// FrameDebug reports whether the framedebug poison mode is compiled in.
const FrameDebug = false

// FramePoison is the byte poisonFrame fills released buffers with under the
// framedebug tag; exported so lifetime tests in other packages can assert
// on it.
const FramePoison = 0xDB

// poisonFrame is a no-op in normal builds: releasing a frame to the pool
// leaves its bytes untouched.
func poisonFrame([]byte) {}
