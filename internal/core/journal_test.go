package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// memSink is an in-memory JournalSink standing in for internal/journal in
// core's own tests (the durable implementation cannot be imported here
// without a cycle; its integration tests live beside it).
type memSink struct {
	mu   sync.Mutex
	recs []struct {
		class JournalClass
		frame []byte
	}
}

func (m *memSink) Record(class JournalClass, frame *FrameBuf) {
	// The caller's buffer reference is live only for the call, so the sink
	// copies (the durable implementation retains instead; both honour the
	// contract).
	m.mu.Lock()
	m.recs = append(m.recs, struct {
		class JournalClass
		frame []byte
	}{class, append([]byte(nil), frame.Bytes()...)})
	m.mu.Unlock()
}

func (m *memSink) Replay(visit func(class JournalClass, frame []byte) bool) {
	m.mu.Lock()
	recs := m.recs
	m.mu.Unlock()
	for _, r := range recs {
		if !visit(r.class, r.frame) {
			return
		}
	}
}

func (m *memSink) classes() []JournalClass {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JournalClass, len(m.recs))
	for i, r := range m.recs {
		out[i] = r.class
	}
	return out
}

// TestLateJoinerConvergence is the acceptance property of the journal
// layer: a client attaching after N broadcasts observes the same final
// parameter and event state as one attached from the start.
func TestLateJoinerConvergence(t *testing.T) {
	sink := &memSink{}
	s, dial := testSession(t, SessionConfig{Journal: sink})
	st := s.Steered()
	if err := st.RegisterFloat("g", 0, 0, 10, "", func(float64) {}); err != nil {
		t.Fatal(err)
	}

	early := dial(AttachOptions{Name: "early"})
	if err := early.SetParamContext(testCtx(t), "g", 4.5); err != nil {
		t.Fatal(err)
	}
	st.Poll() // apply + broadcast the param update
	for i := 0; i < 5; i++ {
		st.Event(fmt.Sprintf("step %d reached", i))
	}
	for step := int64(1); step <= 3; step++ {
		sample := NewSample(step)
		sample.Channels["seg"] = Scalar(float64(step) / 10)
		st.Emit(sample)
	}
	waitFor(t, "early client history", func() bool {
		p, _ := early.Param("g")
		return len(early.Events()) == 5 && p.Value == FloatValue(4.5)
	})

	late := dial(AttachOptions{Name: "late"})
	waitFor(t, "late joiner event convergence", func() bool {
		return reflect.DeepEqual(late.Events(), early.Events())
	})
	if p, ok := late.Param("g"); !ok || p.Value != FloatValue(4.5) {
		t.Fatalf("late joiner param state: %+v", p)
	}
	// The replayed sample history ends at the freshest emission.
	var lastStep int64
	deadline := time.Now().Add(2 * time.Second)
	for lastStep != 3 && time.Now().Before(deadline) {
		select {
		case got := <-late.Samples():
			lastStep = got.Step
		case <-time.After(50 * time.Millisecond):
		}
	}
	if lastStep != 3 {
		t.Fatalf("late joiner's freshest replayed sample = step %d, want 3", lastStep)
	}

	// Exactly-once: live traffic after the catch-up must not duplicate
	// replayed history.
	st.Event("after late attach")
	waitFor(t, "post-attach event", func() bool { return len(late.Events()) >= 6 })
	time.Sleep(20 * time.Millisecond)
	if !reflect.DeepEqual(late.Events(), early.Events()) {
		t.Fatalf("histories diverged:\nearly: %q\nlate:  %q", early.Events(), late.Events())
	}
	if len(late.Events()) != 6 {
		t.Fatalf("replay duplicated events: %q", late.Events())
	}
}

// TestLateJoinerExactlyOnceUnderBroadcastRace hammers the attach barrier:
// clients attach while events stream, and every client must end with the
// full, duplicate-free history.
func TestLateJoinerExactlyOnceUnderBroadcastRace(t *testing.T) {
	sink := &memSink{}
	s, dial := testSession(t, SessionConfig{Journal: sink})
	st := s.Steered()

	const total = 200
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			st.Event(fmt.Sprintf("ev-%03d", i))
		}
	}()
	var clients []*Client
	for i := 0; i < 6; i++ {
		clients = append(clients, dial(AttachOptions{Name: fmt.Sprintf("c%d", i)}))
		time.Sleep(time.Millisecond)
	}
	<-done

	for i, c := range clients {
		c := c
		waitFor(t, fmt.Sprintf("client %d full history", i), func() bool {
			return len(c.Events()) == total
		})
		evs := c.Events()
		for k, ev := range evs {
			if want := fmt.Sprintf("ev-%03d", k); ev != want {
				t.Fatalf("client %d event %d = %q, want %q (duplicate or loss)", i, k, ev, want)
			}
		}
	}
}

func TestJournalRecordsBroadcastClasses(t *testing.T) {
	sink := &memSink{}
	s, dial := testSession(t, SessionConfig{Journal: sink})
	st := s.Steered()
	st.RegisterFloat("g", 0, 0, 10, "", func(float64) {})

	m := dial(AttachOptions{Name: "m"})
	if err := m.SetParamContext(testCtx(t), "g", 2); err != nil {
		t.Fatal(err)
	}
	st.Poll()
	st.Event("hello")
	sample := NewSample(1)
	sample.Channels["x"] = Scalar(1)
	st.Emit(sample)
	if err := m.SetViewContext(testCtx(t), ViewState{Eye: [3]float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "journal records", func() bool { return len(sink.classes()) == 4 })
	want := []JournalClass{JournalState, JournalEvent, JournalSample, JournalState}
	if got := sink.classes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("journal classes = %v, want %v", got, want)
	}
}

func TestRecoverRestoresState(t *testing.T) {
	sink := &memSink{}
	// A previous run's log: param updates (one later superseding an
	// earlier), a view update, an event and two samples.
	mk := func(e *envelope) []byte {
		buf, err := encodeEnvelope(nil, e)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	sink.Record(JournalState, NewFrame(mk(&envelope{Type: msgParamUpdate, Params: []Param{
		{Name: "g", Type: FloatParam, Value: FloatValue(1.5), Min: 0, Max: 10},
	}})))
	sink.Record(JournalState, NewFrame(mk(&envelope{Type: msgParamUpdate, Params: []Param{
		{Name: "g", Type: FloatParam, Value: FloatValue(4.5), Min: 0, Max: 10},
		{Name: "gone-param", Type: FloatParam, Value: FloatValue(1), Min: 0, Max: 10},
	}})))
	sink.Record(JournalEvent, NewFrame(mk(&envelope{Type: msgEvent, Event: "old news"})))
	view := &ViewState{Seq: 7, Eye: [3]float64{9, 8, 7}, VizParams: map[string]float64{"iso": 0.5}}
	sink.Record(JournalState, NewFrame(mk(&envelope{Type: msgViewUpdate, View: view})))
	s1 := NewSample(41)
	s1.Channels["seg"] = Scalar(0.1)
	sink.Record(JournalSample, NewFrame(mk(&envelope{Type: msgSample, Sample: s1})))
	s2 := NewSample(42)
	s2.Channels["seg"] = Scalar(0.2)
	sink.Record(JournalSample, NewFrame(mk(&envelope{Type: msgSample, Sample: s2})))

	s := NewSession(SessionConfig{Journal: sink})
	defer s.Close()
	st := s.Steered()
	var applied float64
	if err := st.RegisterFloat("g", 0, 0, 10, "", func(v float64) { applied = v }); err != nil {
		t.Fatal(err)
	}

	n, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 { // 2 param frames + view + 2 samples ("gone-param" skipped, event ignored)
		t.Fatalf("Recover applied %d frames, want 5", n)
	}
	if applied != 4.5 {
		t.Fatalf("apply callback saw %v, want 4.5", applied)
	}
	params := s.Params()
	if len(params) != 1 || params[0].Value != FloatValue(4.5) {
		t.Fatalf("recovered params: %+v", params)
	}
	if v := s.View(); v.Seq != 7 || v.Eye != [3]float64{9, 8, 7} || v.VizParams["iso"] != 0.5 {
		t.Fatalf("recovered view: %+v", v)
	}
	if ls := s.LastSample(); ls == nil || ls.Step != 42 {
		t.Fatalf("recovered last sample: %+v", ls)
	}
}

// TestRecoverMutesJournalTap: an apply callback that broadcasts (an event
// echoing the parameter change) must not grow the journal on every
// restart — Recover suppresses recording for its duration.
func TestRecoverMutesJournalTap(t *testing.T) {
	sink := &memSink{}
	buf, err := encodeEnvelope(nil, &envelope{Type: msgParamUpdate, Params: []Param{
		{Name: "label", Type: StringParam, Value: StringValue("v1")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	sink.Record(JournalState, NewFrame(buf))

	s := NewSession(SessionConfig{Journal: sink})
	defer s.Close()
	st := s.Steered()
	if err := st.RegisterString("label", "", "", func(v string) { st.Event("label: " + v) }); err != nil {
		t.Fatal(err)
	}
	countEvents := func() int {
		n := 0
		for _, c := range sink.classes() {
			if c == JournalEvent {
				n++
			}
		}
		return n
	}
	before := countEvents()
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	// Recover broadcasts (and journals) the recovered state so attached
	// clients converge — but the callback's event echo must not have been
	// recorded.
	if after := countEvents(); after != before {
		t.Fatalf("recovery re-journaled callback echoes: %d -> %d events", before, after)
	}
	// After recovery the tap is live again.
	st.Event("post-recovery")
	waitFor(t, "live event journaled", func() bool { return countEvents() == before+1 })
}

// TestRecoverBroadcastsToAttachedClients: a client that attached before
// Recover ran (a hub's listener stays live while a revived session
// recovers) must converge on the recovered state.
func TestRecoverBroadcastsToAttachedClients(t *testing.T) {
	sink := &memSink{}
	buf, err := encodeEnvelope(nil, &envelope{Type: msgParamUpdate, Params: []Param{
		{Name: "g", Type: FloatParam, Value: FloatValue(4.5), Min: 0, Max: 10},
	}})
	if err != nil {
		t.Fatal(err)
	}
	sink.Record(JournalState, NewFrame(buf))

	s, dial := testSession(t, SessionConfig{Journal: sink})
	st := s.Steered()
	if err := st.RegisterFloat("g", 0, 0, 10, "", func(float64) {}); err != nil {
		t.Fatal(err)
	}
	c := dial(AttachOptions{Name: "early"}) // welcome carries the default g=0
	if p, _ := c.Param("g"); p.Value != FloatValue(0) {
		t.Fatalf("pre-recovery param: %+v", p)
	}
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "recovered state broadcast", func() bool {
		p, _ := c.Param("g")
		return p.Value == FloatValue(4.5)
	})
}

func TestRecoverWithoutJournalIsNoop(t *testing.T) {
	s := NewSession(SessionConfig{})
	defer s.Close()
	if n, err := s.Recover(); n != 0 || err != nil {
		t.Fatalf("Recover on journal-less session: %d, %v", n, err)
	}
}

func TestSnapshotFramesRoundTrip(t *testing.T) {
	s := NewSession(SessionConfig{})
	defer s.Close()
	st := s.Steered()
	st.RegisterFloat("g", 3.5, 0, 10, "coupling", func(float64) {})
	st.RegisterChoice("mode", []string{"fast", "slow"}, "slow", "", func(string) {})
	s.SetViewServer(ViewState{Eye: [3]float64{1, 2, 3}, VizParams: map[string]float64{"iso": 0.25}})

	frames := s.SnapshotFrames()
	if len(frames) != 2 {
		t.Fatalf("SnapshotFrames: %d frames, want params + view", len(frames))
	}

	// The frames must replay into a fresh session via the normal Recover
	// path and reproduce the state.
	sink := &memSink{}
	for _, f := range frames {
		sink.Record(JournalState, NewFrame(f))
	}
	s2 := NewSession(SessionConfig{Journal: sink})
	defer s2.Close()
	st2 := s2.Steered()
	st2.RegisterFloat("g", 0, 0, 10, "coupling", func(float64) {})
	st2.RegisterChoice("mode", []string{"fast", "slow"}, "fast", "", func(string) {})
	if _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	if p, _ := paramByName(s2.Params(), "g"); p.Value != FloatValue(3.5) {
		t.Fatalf("snapshot param g: %+v", p)
	}
	if p, _ := paramByName(s2.Params(), "mode"); p.Value != StringValue("slow") {
		t.Fatalf("snapshot param mode: %+v", p)
	}
	if v := s2.View(); v.Eye != [3]float64{1, 2, 3} || v.VizParams["iso"] != 0.25 {
		t.Fatalf("snapshot view: %+v", v)
	}
}

func paramByName(params []Param, name string) (Param, bool) {
	for _, p := range params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}
