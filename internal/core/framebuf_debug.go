//go:build framedebug

package core

// FrameDebug reports whether the framedebug poison mode is compiled in.
const FrameDebug = true

// FramePoison is the byte poisonFrame fills released buffers with; exported
// so lifetime tests in other packages can assert on it.
const FramePoison = 0xDB

// poisonFrame overwrites the full capacity of a buffer on its way back to
// the pool, so a holder reading (or writing) past its last Release sees
// garbage deterministically instead of silently racing the buffer's next
// user. Enabled with `go test -tags framedebug`; the CI race job runs the
// core and journal suites under it.
func poisonFrame(b []byte) {
	b = b[:cap(b)]
	for i := range b {
		b[i] = FramePoison
	}
}
