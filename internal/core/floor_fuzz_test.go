package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/wire"
)

// FuzzFloorFrames drives the floor-control message handlers —
// msgRequestMaster, msgReleaseMaster, msgHeartbeat — with hostile frames:
// fuzz-chosen flag words, aux values, sequence numbers, frame counts and
// trailing bytes, assembled as raw wire headers rather than through the
// encoder (the encoder only produces well-formed flag combinations; an
// attacker is not so constrained). Every input must either fail to decode
// or dispatch cleanly onto a live session whose floor invariants hold
// afterwards: the master is always one of the attached clients or nobody,
// the pending queue never exceeds the attached population, and neither
// decode nor dispatch panics or wedges the session.
func FuzzFloorFrames(f *testing.F) {
	// Canonical encodings seed the corpus, plus raw headers the encoder
	// would never emit (junk flags, huge nframes, absurd aux).
	f.Add(fuzzSeed(&envelope{Type: msgRequestMaster, Seq: 1}), []byte(nil))
	f.Add(fuzzSeed(&envelope{Type: msgRequestMaster, Seq: 2, NoWait: true}), []byte(nil))
	f.Add(fuzzSeed(&envelope{Type: msgRequestMaster, Seq: 3, Steal: true}), []byte(nil))
	f.Add(fuzzSeed(&envelope{Type: msgReleaseMaster, Seq: 4}), []byte(nil))
	f.Add(fuzzSeed(&envelope{Type: msgHeartbeat}), []byte(nil))
	for _, typ := range []int64{int64(msgRequestMaster), int64(msgReleaseMaster), int64(msgHeartbeat)} {
		f.Add(wire.AppendInt64s(nil, tagHeader,
			[]int64{ProtoVersion, typ, 9, ^int64(0), -1, 1 << 40}), []byte("junk tail"))
		f.Add(wire.AppendInt64s(nil, tagHeader,
			[]int64{ProtoVersion, typ, 0, flagNoWait | flagSteal | flagWantMaster, 1 << 62, 3}),
			[]byte{0xff, 0x00, 0x53, 0x43})
	}

	f.Fuzz(func(t *testing.T, frame, tail []byte) {
		dec := wire.NewDecoder(bytes.NewReader(append(frame, tail...)))
		dec.SetLimits(serverLimits)
		e, err := decodeEnvelope(dec, serverEnvelopeBudget)
		if err != nil {
			return // hostile input rejected at the codec: the common, good case
		}
		switch e.Type {
		case msgRequestMaster, msgReleaseMaster, msgHeartbeat, msgDetach:
		default:
			return // fuzzer wandered onto another message type; out of scope
		}

		// A fresh two-client session per decoded input keeps every run
		// independent: "a" holds the floor (first attach), "b" is the
		// hostile sender.
		s := NewSession(SessionConfig{
			Name: "floor-fuzz", Writer: &inlineWriter{batch: 8, timeout: time.Second},
		})
		defer s.Close()
		var conns []*clientConn
		for _, name := range []string{"a", "b"} {
			cc, err := s.admit(&attachMsg{Name: name}, newCodec(discardConn{}))
			if err != nil {
				t.Fatalf("admit %q: %v", name, err)
			}
			cc.welcomed.Store(true)
			conns = append(conns, cc)
		}

		done, err := s.dispatch(conns[1], e)
		_ = err // a dispatch error detaches the client; it must not corrupt the floor
		if done && e.Type != msgDetach {
			t.Fatalf("dispatch(%d) reported detach for a non-detach frame", e.Type)
		}

		st := s.FloorStats()
		switch st.Master {
		case "a", "b", "":
		default:
			t.Fatalf("master %q is not an attached client", st.Master)
		}
		if st.Pending < 0 || st.Pending > 2 {
			t.Fatalf("pending = %d with 2 attached clients", st.Pending)
		}
		// The session must still serve legitimate traffic after the hostile
		// frame: a release plus a plain request from "a" always ends with
		// "a" holding the floor.
		s.dispatch(conns[1], &envelope{Type: msgReleaseMaster, Seq: 100})
		s.dispatch(conns[0], &envelope{Type: msgRequestMaster, Seq: 101})
		if got := s.Master(); got != "a" {
			t.Fatalf("session wedged after hostile frame: master %q, want \"a\"", got)
		}
	})
}
