package core

import (
	"fmt"
	"sync"
	"testing"
)

func TestFrameBufRefcountLifecycle(t *testing.T) {
	fb := GetFrame(64)
	fb.AppendBytes([]byte("hello"))
	if fb.Refs() != 1 || fb.Len() != 5 {
		t.Fatalf("fresh frame: refs=%d len=%d", fb.Refs(), fb.Len())
	}
	fb.Retain()
	fb.Retain()
	if fb.Refs() != 3 {
		t.Fatalf("after two retains: refs=%d", fb.Refs())
	}
	fb.Release()
	fb.Release()
	if fb.Refs() != 1 {
		t.Fatalf("after two releases: refs=%d", fb.Refs())
	}
	fb.Release() // back to the pool
}

func TestFrameBufOverReleasePanics(t *testing.T) {
	fb := NewFrame([]byte("x"))
	fb.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	fb.Release()
}

func TestFrameBufPoolReuse(t *testing.T) {
	// A released pooled frame is reusable; its capacity survives the trip.
	fb := GetFrame(512)
	fb.AppendBytes(make([]byte, 300))
	fb.Release()
	got := GetFrame(128)
	defer got.Release()
	if cap(got.Bytes()) == 0 {
		t.Fatal("pool returned frame without capacity")
	}
	if got.Len() != 0 {
		t.Fatalf("pooled frame not reset: len=%d", got.Len())
	}
}

func TestFrameRingFreshestWins(t *testing.T) {
	r := newFrameRing(4)
	frames := make([]*FrameBuf, 8)
	evictions := 0
	for i := range frames {
		frames[i] = NewFrame([]byte{byte(i)})
		if r.push(frames[i]) {
			evictions++
		}
	}
	if evictions != 4 {
		t.Fatalf("evictions = %d, want 4", evictions)
	}
	got := r.drainInto(nil, 0)
	if len(got) != 4 {
		t.Fatalf("drained %d, want 4", len(got))
	}
	// The oldest four were overwritten: the survivors are the freshest, in
	// FIFO order.
	for i, fb := range got {
		if want := byte(4 + i); fb.Bytes()[0] != want {
			t.Fatalf("slot %d = %d, want %d (freshest-wins violated)", i, fb.Bytes()[0], want)
		}
	}
	// Evicted frames lost their ring reference; survivors still hold one
	// (transferred to us) plus the producer's.
	for i, fb := range frames {
		want := int32(1) // producer's reference only
		if i >= 4 {
			want = 2 // plus the drained ring reference we now own
		}
		if fb.Refs() != want {
			t.Fatalf("frame %d refs = %d, want %d", i, fb.Refs(), want)
		}
	}
	releaseFrames(got)
}

func TestFrameRingTryPushNoEvict(t *testing.T) {
	r := newFrameRing(2)
	a, b, c := NewFrame([]byte("a")), NewFrame([]byte("b")), NewFrame([]byte("c"))
	if !r.tryPush(a) || !r.tryPush(b) {
		t.Fatal("tryPush refused a free slot")
	}
	if r.tryPush(c) {
		t.Fatal("tryPush overwrote a full ring")
	}
	got := r.drainInto(nil, 0)
	if len(got) != 2 || got[0].Bytes()[0] != 'a' || got[1].Bytes()[0] != 'b' {
		t.Fatalf("ring reordered or lost frames: %d", len(got))
	}
	releaseFrames(got)
}

func TestFrameRingClosedDiscards(t *testing.T) {
	r := newFrameRing(2)
	fb := NewFrame([]byte("x"))
	r.push(fb)
	r.closeRelease()
	if fb.Refs() != 1 {
		t.Fatalf("closeRelease kept a reference: refs=%d", fb.Refs())
	}
	if r.push(fb) {
		t.Fatal("push on closed ring reported eviction")
	}
	if fb.Refs() != 1 {
		t.Fatalf("push on closed ring retained: refs=%d", fb.Refs())
	}
	if got := r.drainInto(nil, 0); len(got) != 0 {
		t.Fatalf("closed ring yielded %d frames", len(got))
	}
}

// TestFrameRingConcurrentPushDrain hammers one ring from many producers and
// one consumer under -race: every reference pushed is eventually released
// exactly once (drained or evicted), never twice.
func TestFrameRingConcurrentPushDrain(t *testing.T) {
	r := newFrameRing(8)
	const producers, perProducer = 8, 500
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				fb := GetFrame(16)
				fb.AppendBytes([]byte(fmt.Sprintf("%d-%d", p, i)))
				r.push(fb)
				fb.Release()
			}
		}(p)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var scratch []*FrameBuf
		for {
			scratch = r.drainInto(scratch[:0], 16)
			if len(scratch) == 0 {
				select {
				case <-stop:
					return
				default:
					continue
				}
			}
			releaseFrames(scratch)
		}
	}()
	wg.Wait()
	close(stop)
	<-done
	r.closeRelease()
}
