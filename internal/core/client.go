package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Client is a remote steering/viewing participant. It connects to a Session
// over any net.Conn (real TCP, or a netsim shaped link in the experiments).
type Client struct {
	codec *codec
	name  string

	mu      sync.Mutex
	role    Role
	master  string
	session string
	app     string
	params  map[string]Param
	view    ViewState
	events  []string

	seq     uint64
	pending map[uint64]chan *ackMsg

	samples chan *Sample
	updates chan ViewState
	closed  chan struct{}
	once    sync.Once
	readErr error
}

// ParamSet names one steering assignment; a batch of them travels in a
// single envelope and is validated and applied atomically.
type ParamSet struct {
	Name  string
	Value Value
}

// AttachOptions configure Attach.
type AttachOptions struct {
	// Name identifies the client; "" lets the session assign one.
	Name string
	// Session names the target session when dialing a hub hosting several;
	// "" selects the endpoint's default session.
	Session string
	// WantMaster requests the master role if free.
	WantMaster bool
	// SampleBuffer bounds the local sample queue (default 16). When full,
	// the oldest sample is discarded: a slow consumer sees the freshest data.
	SampleBuffer int
	// Timeout bounds the attach handshake (default 5s).
	Timeout time.Duration
}

// Attach performs the protocol v2 handshake and starts the client's read
// loop. See AttachContext for cancellation.
func Attach(conn net.Conn, opts AttachOptions) (*Client, error) {
	return AttachContext(context.Background(), conn, opts)
}

// AttachContext performs the handshake under ctx: cancellation or deadline
// expiry during the handshake fails the attach and closes conn. The
// handshake carries the client's protocol version; an endpoint speaking a
// different protocol (or not this protocol at all) fails with
// ErrVersionMismatch.
func AttachContext(ctx context.Context, conn net.Conn, opts AttachOptions) (*Client, error) {
	if opts.SampleBuffer <= 0 {
		opts.SampleBuffer = 16
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if err := ctx.Err(); err != nil {
		conn.Close()
		return nil, err
	}
	deadline := time.Now().Add(opts.Timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	// Arm the handshake deadline before spawning the cancellation watcher:
	// the watcher's poison deadline must never be overwritten by this one.
	conn.SetDeadline(deadline)

	// A cancelled context forces the blocked handshake I/O to fail by
	// poisoning the deadline. The mutex-guarded done flag makes the race
	// with handshake completion safe: once finishHandshake has run, a late
	// cancellation can never poison a connection that now belongs to the
	// read loop, and finishHandshake's deadline clear undoes any poison
	// that landed just before it.
	var (
		hsMu   sync.Mutex
		hsDone bool
		hsOnce sync.Once
	)
	handshakeDone := make(chan struct{})
	finishHandshake := func() {
		hsOnce.Do(func() {
			hsMu.Lock()
			hsDone = true
			hsMu.Unlock()
			close(handshakeDone)
		})
	}
	defer finishHandshake()
	go func() {
		select {
		case <-ctx.Done():
			hsMu.Lock()
			if !hsDone {
				conn.SetDeadline(time.Unix(1, 0))
			}
			hsMu.Unlock()
		case <-handshakeDone:
		}
	}()

	ctxErr := func(err error) error {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// The conn deadline mirrors the ctx deadline and may fire a moment
		// before the context's own timer; report the context's verdict.
		if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
			return context.DeadlineExceeded
		}
		return err
	}

	c := &Client{
		codec:   newCodec(conn),
		params:  make(map[string]Param),
		pending: make(map[uint64]chan *ackMsg),
		samples: make(chan *Sample, opts.SampleBuffer),
		updates: make(chan ViewState, 16),
		closed:  make(chan struct{}),
	}
	if err := c.codec.write(&envelope{
		Type:   msgAttach,
		Attach: &attachMsg{Name: opts.Name, WantMaster: opts.WantMaster, Session: opts.Session},
	}, 0); err != nil {
		conn.Close()
		return nil, ctxErr(err)
	}

	first, err := c.codec.read()
	// Stand the watcher down before clearing the deadline, so the clear
	// also erases any poison a racing cancellation just planted.
	finishHandshake()
	conn.SetDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return nil, ctxErr(err)
	}
	switch first.Type {
	case msgWelcome:
		w := first.Welcome
		c.name = w.ClientName
		c.role = w.Role
		c.master = w.Master
		c.session = w.SessionName
		c.app = w.AppName
		for _, p := range w.Params {
			c.params[p.Name] = p
		}
		if w.View != nil {
			c.view = *w.View
		}
	case msgAck:
		conn.Close()
		return nil, fmt.Errorf("core: attach rejected: %w", ackError(first.Ack))
	default:
		conn.Close()
		return nil, errors.New("core: protocol error: expected welcome")
	}

	go c.readLoop()
	return c, nil
}

// ackError turns a rejection ack into its typed error.
func ackError(ack *ackMsg) error {
	if ack == nil {
		return ErrRejected
	}
	typed := errFor(ack.Code)
	if ack.Err == "" {
		return typed
	}
	return fmt.Errorf("%w: %s", typed, ack.Err)
}

// Name returns the client's session-assigned name.
func (c *Client) Name() string { return c.name }

// SessionName returns the session's name from the welcome.
func (c *Client) SessionName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.session
}

// AppName returns the steered application's name.
func (c *Client) AppName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.app
}

// Role returns the client's current role.
func (c *Client) Role() Role {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.master == c.name {
		return RoleMaster
	}
	return RoleObserver
}

// Master returns the current master's name.
func (c *Client) Master() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.master
}

// Params returns the last known parameter table.
func (c *Client) Params() []Param {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Param, 0, len(c.params))
	for _, p := range c.params {
		out = append(out, p)
	}
	return out
}

// Param returns one parameter by name.
func (c *Client) Param(name string) (Param, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.params[name]
	return p, ok
}

// View returns the last synchronised view state.
func (c *Client) View() ViewState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view
}

// Events returns the accumulated event strings.
func (c *Client) Events() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.events...)
}

// Samples returns the channel of incoming samples. Slow consumers lose the
// oldest entries, never block the session.
func (c *Client) Samples() <-chan *Sample { return c.samples }

// ViewUpdates returns the channel of view synchronisation updates.
func (c *Client) ViewUpdates() <-chan ViewState { return c.updates }

// readLoop dispatches inbound frames until the connection dies.
func (c *Client) readLoop() {
	for {
		e, err := c.codec.read()
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.mu.Unlock()
			c.Close()
			return
		}
		switch e.Type {
		case msgSample:
			if e.Sample == nil {
				continue
			}
			for {
				select {
				case c.samples <- e.Sample:
				default:
					select {
					case <-c.samples: // evict oldest
						continue
					default:
					}
				}
				break
			}
		case msgParamUpdate:
			c.mu.Lock()
			for _, p := range e.Params {
				c.params[p.Name] = p
			}
			c.mu.Unlock()
		case msgViewUpdate:
			if e.View == nil {
				continue
			}
			c.mu.Lock()
			if e.View.Seq > c.view.Seq {
				c.view = *e.View
			}
			c.mu.Unlock()
			select {
			case c.updates <- *e.View:
			default:
				select {
				case <-c.updates:
				default:
				}
				select {
				case c.updates <- *e.View:
				default:
				}
			}
		case msgMasterChanged:
			c.mu.Lock()
			c.master = e.Target
			if c.master == c.name {
				c.role = RoleMaster
			} else {
				c.role = RoleObserver
			}
			c.mu.Unlock()
		case msgEvent:
			c.mu.Lock()
			c.events = append(c.events, e.Event)
			c.mu.Unlock()
		case msgAck:
			c.mu.Lock()
			ch, ok := c.pending[e.Seq]
			delete(c.pending, e.Seq)
			c.mu.Unlock()
			if ok {
				ch <- e.Ack
			}
		}
	}
}

// request performs a synchronous request/ack exchange.
func (c *Client) request(e *envelope, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	seq := atomic.AddUint64(&c.seq, 1)
	e.Seq = seq
	ch := make(chan *ackMsg, 1)
	c.mu.Lock()
	c.pending[seq] = ch
	c.mu.Unlock()

	if err := c.codec.write(e, timeout); err != nil {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return err
	}
	select {
	case ack := <-ch:
		if ack == nil || !ack.OK {
			return ackError(ack)
		}
		return nil
	case <-time.After(timeout):
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return errors.New("core: request timed out")
	case <-c.closed:
		return errors.New("core: connection closed")
	}
}

// SetValue submits a typed steering assignment; only the master succeeds.
// The value is validated against the parameter's registered type and bounds
// and applied at the simulation's next poll. Rejections carry typed errors:
// ErrNotMaster, ErrUnknownParam, ErrBadValue.
func (c *Client) SetValue(name string, value Value, timeout time.Duration) error {
	return c.SetParams([]ParamSet{{Name: name, Value: value}}, timeout)
}

// SetParams submits a batch of steering assignments in one envelope with
// one round trip. The batch is atomic: the session validates every
// assignment before queueing any, so a rejected batch changes nothing.
func (c *Client) SetParams(sets []ParamSet, timeout time.Duration) error {
	if len(sets) == 0 {
		return nil
	}
	return c.request(&envelope{Type: msgSetParam, Sets: sets}, timeout)
}

// SetParam submits a float steering assignment; the float convenience form
// of SetValue.
func (c *Client) SetParam(name string, value float64, timeout time.Duration) error {
	return c.SetValue(name, FloatValue(value), timeout)
}

// SetInt submits an integer steering assignment.
func (c *Client) SetInt(name string, value int64, timeout time.Duration) error {
	return c.SetValue(name, IntValue(value), timeout)
}

// SetBool submits a bool steering assignment.
func (c *Client) SetBool(name string, value bool, timeout time.Duration) error {
	return c.SetValue(name, BoolValue(value), timeout)
}

// SetString submits a string (or choice) steering assignment.
func (c *Client) SetString(name, value string, timeout time.Duration) error {
	return c.SetValue(name, StringValue(value), timeout)
}

// Pause asks the simulation to pause at its next poll (master only).
func (c *Client) Pause(timeout time.Duration) error {
	return c.request(&envelope{Type: msgCommand, Command: cmdPause}, timeout)
}

// Resume releases a paused simulation (master only).
func (c *Client) Resume(timeout time.Duration) error {
	return c.request(&envelope{Type: msgCommand, Command: cmdResume}, timeout)
}

// Stop asks the simulation to terminate cleanly (master only).
func (c *Client) Stop(timeout time.Duration) error {
	return c.request(&envelope{Type: msgCommand, Command: cmdStop}, timeout)
}

// Checkpoint asks the simulation to write a checkpoint (master only).
func (c *Client) Checkpoint(timeout time.Duration) error {
	return c.request(&envelope{Type: msgCommand, Command: cmdCheckpoint}, timeout)
}

// SetView publishes a new shared view state (master only).
func (c *Client) SetView(v ViewState, timeout time.Duration) error {
	return c.request(&envelope{Type: msgSetView, View: &v}, timeout)
}

// RequestMaster claims the master role if it is free.
func (c *Client) RequestMaster(timeout time.Duration) error {
	return c.request(&envelope{Type: msgRequestMaster}, timeout)
}

// HandoffMaster transfers the master role to another attached client
// (master only): the paper's "coordinated cooperative steering".
func (c *Client) HandoffMaster(to string, timeout time.Duration) error {
	return c.request(&envelope{Type: msgHandoffMaster, Target: to}, timeout)
}

// Close detaches and closes the connection.
func (c *Client) Close() error {
	c.once.Do(func() {
		c.codec.write(&envelope{Type: msgDetach}, time.Second)
		close(c.closed)
		c.codec.close()
	})
	return nil
}

// Err returns the read-loop error after the connection has failed.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readErr
}
