package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Client is a remote steering/viewing participant. It connects to a Session
// over any net.Conn (real TCP, or a netsim shaped link in the experiments).
type Client struct {
	codec *codec
	name  string

	mu      sync.Mutex
	master  string
	session string
	app     string
	params  map[string]Param
	view    ViewState
	events  []string
	// lease and policy are the session's floor-control advertisement from
	// the welcome; a non-zero lease starts the heartbeat loop.
	lease  time.Duration
	policy FloorPolicy
	// tier and observerEvery are the welcome's delivery advertisement: the
	// granted tier and the observer coalescing interval (<= 0 = immediate).
	tier          Tier
	observerEvery time.Duration
	// floorReason explains the most recent master change.
	floorReason FloorReason
	// floorSeq is the transition number the master field reflects; a
	// master-changed broadcast with a lower seq is stale (two transitions
	// emitted by different session goroutines may reach the queue out of
	// order) and is dropped instead of regressing the view.
	floorSeq uint64
	// masterCh is closed and replaced on every master change; blocked
	// RequestMaster callers wait on it. There is deliberately no role
	// field: Role() derives from master == name, the single source of
	// truth, so a welcome racing a master-changed broadcast can never leave
	// the two disagreeing.
	masterCh chan struct{}

	seq     uint64
	pending map[uint64]chan *ackMsg

	samples chan *Sample
	blobs   chan *Blob
	updates chan ViewState
	closed  chan struct{}
	once    sync.Once
	readErr error
}

// ParamSet names one steering assignment; a batch of them travels in a
// single envelope and is validated and applied atomically.
type ParamSet struct {
	Name  string
	Value Value
}

// AttachOptions configure Attach.
type AttachOptions struct {
	// Name identifies the client; "" lets the session assign one.
	Name string
	// Session names the target session when dialing a hub hosting several;
	// "" selects the endpoint's default session.
	Session string
	// WantMaster requests the master role if free.
	WantMaster bool
	// Priority orders this client's floor requests under the session's
	// priority policy; higher wins. Ignored under other policies.
	Priority int64
	// SampleBuffer bounds the local sample queue (default 16). When full,
	// the oldest sample is discarded: a slow consumer sees the freshest data.
	SampleBuffer int
	// BlobBuffer bounds the local blob queue (default 4 — blob frames are
	// big, so the client holds few of them). Same freshest-wins eviction as
	// SampleBuffer.
	BlobBuffer int
	// Timeout bounds the attach handshake (default 5s).
	Timeout time.Duration
	// HeartbeatInterval overrides the lease-renewal heartbeat cadence.
	// 0 derives it from the session's advertised master lease (a third of
	// it); < 0 disables heartbeats entirely — a client that also sends
	// nothing else will lose a held master role when the lease lapses
	// (that is what the lease is for; disable only to simulate a wedged
	// client).
	HeartbeatInterval time.Duration
	// Tier selects the delivery tier (v4). The zero value, TierSteering,
	// delivers every frame inline; TierObserver delivers coalesced
	// freshest-wins batches on the session's observer interval.
	Tier Tier
	// Subscriptions is the initial interest set (v4); empty means
	// subscribe-all. Param selectors are validated against the session's
	// registry at attach — an unknown name rejects the attach with
	// ErrUnknownParam. Subscribe/Unsubscribe adjust the set later.
	Subscriptions []Subscription
	// ReplayPolicy selects how much journal history to replay at attach
	// (v4): everything (the zero value), events only, or none.
	ReplayPolicy ReplayPolicy
	// Sock tunes the TCP connection Dial creates (TCP_NODELAY stays on by
	// default; buffer sizes and keep-alive per SockOpts). Ignored by
	// Attach/AttachContext, whose callers own the conn they pass in.
	Sock SockOpts
}

// Attach performs the handshake without a context; a thin wrapper kept so
// pre-context callers still compile. New code should call AttachContext —
// every option, including cancellation, lives there.
func Attach(conn net.Conn, opts AttachOptions) (*Client, error) {
	return AttachContext(context.Background(), conn, opts)
}

// Dial connects to addr over TCP and attaches under ctx: the functional
// entry point for the common case, one options struct end to end. The
// context bounds both the dial and the handshake.
func Dial(ctx context.Context, addr string, opts AttachOptions) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	opts.Sock.Apply(conn)
	return AttachContext(ctx, conn, opts)
}

// AttachContext performs the handshake under ctx: cancellation or deadline
// expiry during the handshake fails the attach and closes conn. The
// handshake carries the client's protocol version; an endpoint speaking a
// different protocol (or not this protocol at all) fails with
// ErrVersionMismatch.
func AttachContext(ctx context.Context, conn net.Conn, opts AttachOptions) (*Client, error) {
	if opts.SampleBuffer <= 0 {
		opts.SampleBuffer = 16
	}
	if opts.BlobBuffer <= 0 {
		opts.BlobBuffer = 4
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if err := ctx.Err(); err != nil {
		conn.Close()
		return nil, err
	}
	deadline := time.Now().Add(opts.Timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	// Arm the handshake deadline before spawning the cancellation watcher:
	// the watcher's poison deadline must never be overwritten by this one.
	conn.SetDeadline(deadline)

	// A cancelled context forces the blocked handshake I/O to fail by
	// poisoning the deadline. The mutex-guarded done flag makes the race
	// with handshake completion safe: once finishHandshake has run, a late
	// cancellation can never poison a connection that now belongs to the
	// read loop, and finishHandshake's deadline clear undoes any poison
	// that landed just before it.
	var (
		hsMu   sync.Mutex
		hsDone bool
		hsOnce sync.Once
	)
	handshakeDone := make(chan struct{})
	finishHandshake := func() {
		hsOnce.Do(func() {
			hsMu.Lock()
			hsDone = true
			hsMu.Unlock()
			close(handshakeDone)
		})
	}
	defer finishHandshake()
	go func() {
		select {
		case <-ctx.Done():
			hsMu.Lock()
			if !hsDone {
				conn.SetDeadline(time.Unix(1, 0))
			}
			hsMu.Unlock()
		case <-handshakeDone:
		}
	}()

	ctxErr := func(err error) error {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// The conn deadline mirrors the ctx deadline and may fire a moment
		// before the context's own timer; report the context's verdict.
		if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
			return context.DeadlineExceeded
		}
		return err
	}

	c := &Client{
		codec:    newCodec(conn),
		params:   make(map[string]Param),
		pending:  make(map[uint64]chan *ackMsg),
		samples:  make(chan *Sample, opts.SampleBuffer),
		blobs:    make(chan *Blob, opts.BlobBuffer),
		updates:  make(chan ViewState, 16),
		masterCh: make(chan struct{}),
		closed:   make(chan struct{}),
	}
	if err := c.codec.write(&envelope{
		Type: msgAttach,
		Attach: &attachMsg{
			Name: opts.Name, WantMaster: opts.WantMaster,
			Session: opts.Session, Priority: opts.Priority,
			Tier: opts.Tier, Replay: opts.ReplayPolicy, Subs: opts.Subscriptions,
		},
	}, 0); err != nil {
		conn.Close()
		return nil, ctxErr(err)
	}

	first, err := c.codec.read()
	// Stand the watcher down before clearing the deadline, so the clear
	// also erases any poison a racing cancellation just planted.
	finishHandshake()
	conn.SetDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return nil, ctxErr(err)
	}
	switch first.Type {
	case msgWelcome:
		w := first.Welcome
		c.name = w.ClientName
		c.master = w.Master
		c.session = w.SessionName
		c.app = w.AppName
		c.lease = time.Duration(w.LeaseMillis) * time.Millisecond
		c.policy = w.Policy
		c.floorSeq = w.FloorSeq
		c.tier = w.Tier
		c.observerEvery = time.Duration(w.ObserverMillis) * time.Millisecond
		for _, p := range w.Params {
			c.params[p.Name] = p
		}
		if w.View != nil {
			c.view = *w.View
		}
	case msgAck:
		conn.Close()
		return nil, fmt.Errorf("core: attach rejected: %w", ackError(first.Ack))
	default:
		conn.Close()
		return nil, errors.New("core: protocol error: expected welcome")
	}

	go c.readLoop()
	if c.lease > 0 && opts.HeartbeatInterval >= 0 {
		interval := opts.HeartbeatInterval
		if interval == 0 {
			interval = c.lease / 3
		}
		if interval < time.Millisecond {
			interval = time.Millisecond
		}
		go c.heartbeatLoop(interval)
	}
	return c, nil
}

// heartbeatLoop renews the client's lease while the connection lives. Any
// request also renews it; the heartbeat covers an otherwise idle master.
// Write failures do not stop the loop — a dead connection ends it via
// c.closed (the read loop closes the client), while a transient stall must
// not silently end lease renewal for a connection that recovers.
func (c *Client) heartbeatLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.codec.write(&envelope{Type: msgHeartbeat}, time.Second)
		case <-c.closed:
			return
		}
	}
}

// ackError turns a rejection ack into its typed error.
func ackError(ack *ackMsg) error {
	if ack == nil {
		return ErrRejected
	}
	typed := errFor(ack.Code)
	if ack.Err == "" {
		return typed
	}
	return fmt.Errorf("%w: %s", typed, ack.Err)
}

// Name returns the client's session-assigned name.
func (c *Client) Name() string { return c.name }

// SessionName returns the session's name from the welcome.
func (c *Client) SessionName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.session
}

// AppName returns the steered application's name.
func (c *Client) AppName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.app
}

// Role returns the client's current role.
func (c *Client) Role() Role {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.master == c.name {
		return RoleMaster
	}
	return RoleObserver
}

// Master returns the current master's name.
func (c *Client) Master() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.master
}

// Tier returns the delivery tier the session granted at attach.
func (c *Client) Tier() Tier {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tier
}

// ObserverInterval returns the session's advertised observer coalescing
// interval (<= 0 means observer frames flush immediately).
func (c *Client) ObserverInterval() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.observerEvery
}

// Subscribe adds selectors to this client's interest set. The first
// selective subscription for a kind (channel or parameter) narrows that
// kind from subscribe-all to exactly the named set; later calls accumulate.
// Unknown parameter names are rejected with ErrUnknownParam; channel names
// are not validated (channels are whatever the application emits).
func (c *Client) Subscribe(ctx context.Context, subs ...Subscription) error {
	_, err := c.requestAckCtx(ctx, &envelope{Type: msgSubscribe, Subs: subs})
	return err
}

// Unsubscribe removes selectors from the interest set. Removing from a
// kind still at subscribe-all is a no-op; with no selectors at all it
// clears both kinds to interested-in-nothing.
func (c *Client) Unsubscribe(ctx context.Context, subs ...Subscription) error {
	_, err := c.requestAckCtx(ctx, &envelope{Type: msgUnsubscribe, Subs: subs})
	return err
}

// SubscribeAll resets the interest set to subscribe-all for both kinds,
// undoing every narrowing Subscribe.
func (c *Client) SubscribeAll(ctx context.Context) error {
	_, err := c.requestAckCtx(ctx, &envelope{Type: msgSubscribe, SubAll: true})
	return err
}

// Params returns the last known parameter table.
func (c *Client) Params() []Param {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Param, 0, len(c.params))
	for _, p := range c.params {
		out = append(out, p)
	}
	return out
}

// Param returns one parameter by name.
func (c *Client) Param(name string) (Param, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.params[name]
	return p, ok
}

// View returns the last synchronised view state.
func (c *Client) View() ViewState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view
}

// Events returns the accumulated event strings.
func (c *Client) Events() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.events...)
}

// Samples returns the channel of incoming samples. Slow consumers lose the
// oldest entries, never block the session.
func (c *Client) Samples() <-chan *Sample { return c.samples }

// Blobs returns the channel of incoming bulk frames (protocol v5): pixel
// tiles, rendered frames, geometry, keyed by stream name. Same
// freshest-wins semantics as Samples — a slow consumer loses the oldest
// queued blob, never blocks the session. The Data slice of a received blob
// belongs to the consumer outright.
func (c *Client) Blobs() <-chan *Blob { return c.blobs }

// ViewUpdates returns the channel of view synchronisation updates.
func (c *Client) ViewUpdates() <-chan ViewState { return c.updates }

// readLoop dispatches inbound frames until the connection dies.
func (c *Client) readLoop() {
	for {
		e, err := c.codec.read()
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.mu.Unlock()
			c.Close()
			return
		}
		switch e.Type {
		case msgSample:
			if e.Sample == nil {
				continue
			}
			for {
				select {
				case c.samples <- e.Sample:
				default:
					select {
					case <-c.samples: // evict oldest
						continue
					default:
					}
				}
				break
			}
		case msgBlob:
			if e.Blob == nil {
				continue
			}
			for {
				select {
				case c.blobs <- e.Blob:
				default:
					select {
					case <-c.blobs: // evict oldest
						continue
					default:
					}
				}
				break
			}
		case msgParamUpdate:
			c.mu.Lock()
			for _, p := range e.Params {
				c.params[p.Name] = p
			}
			c.mu.Unlock()
		case msgViewUpdate:
			if e.View == nil {
				continue
			}
			c.mu.Lock()
			if e.View.Seq > c.view.Seq {
				c.view = *e.View
			}
			c.mu.Unlock()
			select {
			case c.updates <- *e.View:
			default:
				select {
				case <-c.updates:
				default:
				}
				select {
				case c.updates <- *e.View:
				default:
				}
			}
		case msgMasterChanged:
			c.mu.Lock()
			if e.Seq == 0 || e.Seq > c.floorSeq {
				c.master = e.Target
				c.floorReason = e.Reason
				if e.Seq > 0 {
					c.floorSeq = e.Seq
				}
				close(c.masterCh)
				c.masterCh = make(chan struct{})
			}
			c.mu.Unlock()
		case msgEvent:
			c.mu.Lock()
			c.events = append(c.events, e.Event)
			c.mu.Unlock()
		case msgAck:
			c.mu.Lock()
			ch, ok := c.pending[e.Seq]
			delete(c.pending, e.Seq)
			c.mu.Unlock()
			if ok {
				ch <- e.Ack
			}
		}
	}
}

// request performs a synchronous request/ack exchange.
func (c *Client) request(e *envelope, timeout time.Duration) error {
	_, err := c.requestAck(e, timeout)
	return err
}

// requestAck performs a synchronous request/ack exchange and returns the
// positive ack for callers that branch on its code (a queued floor request
// acks OK with codeFloorQueued).
func (c *Client) requestAck(e *envelope, timeout time.Duration) (*ackMsg, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	seq := atomic.AddUint64(&c.seq, 1)
	e.Seq = seq
	ch := make(chan *ackMsg, 1)
	c.mu.Lock()
	c.pending[seq] = ch
	c.mu.Unlock()

	if err := c.codec.write(e, timeout); err != nil {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, err
	}
	select {
	case ack := <-ch:
		if ack == nil || !ack.OK {
			return nil, ackError(ack)
		}
		return ack, nil
	case <-time.After(timeout):
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, errors.New("core: request timed out")
	case <-c.closed:
		return nil, errors.New("core: connection closed")
	}
}

// requestAckCtx is requestAck bounded by a context instead of a fixed
// timeout: the write deadline shrinks to the context's remaining budget and
// the ack wait ends on cancellation.
func (c *Client) requestAckCtx(ctx context.Context, e *envelope) (*ackMsg, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	writeTimeout := 5 * time.Second
	if d, ok := ctx.Deadline(); ok {
		if remain := time.Until(d); remain < writeTimeout {
			writeTimeout = remain
		}
	}
	seq := atomic.AddUint64(&c.seq, 1)
	e.Seq = seq
	ch := make(chan *ackMsg, 1)
	c.mu.Lock()
	c.pending[seq] = ch
	c.mu.Unlock()

	if err := c.codec.write(e, writeTimeout); err != nil {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, err
	}
	select {
	case ack := <-ch:
		if ack == nil || !ack.OK {
			return nil, ackError(ack)
		}
		return ack, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, ctx.Err()
	case <-c.closed:
		return nil, errors.New("core: connection closed")
	}
}

// requestCtx is the error-only form of requestAckCtx, for callers that do
// not branch on the positive ack.
func (c *Client) requestCtx(ctx context.Context, e *envelope) error {
	_, err := c.requestAckCtx(ctx, e)
	return err
}

// SetValueContext submits a typed steering assignment; only the master
// succeeds. The value is validated against the parameter's registered type
// and bounds and applied at the simulation's next poll. Rejections carry
// typed errors: ErrNotMaster, ErrUnknownParam, ErrBadValue.
func (c *Client) SetValueContext(ctx context.Context, name string, value Value) error {
	return c.SetParamsContext(ctx, []ParamSet{{Name: name, Value: value}})
}

// SetParamsContext submits a batch of steering assignments in one envelope
// with one round trip. The batch is atomic: the session validates every
// assignment before queueing any, so a rejected batch changes nothing.
func (c *Client) SetParamsContext(ctx context.Context, sets []ParamSet) error {
	if len(sets) == 0 {
		return nil
	}
	return c.requestCtx(ctx, &envelope{Type: msgSetParam, Sets: sets})
}

// SetParamContext submits a float steering assignment; the float
// convenience form of SetValueContext. Other value kinds go through
// SetValueContext with the matching constructor (IntValue, BoolValue,
// StringValue).
func (c *Client) SetParamContext(ctx context.Context, name string, value float64) error {
	return c.SetValueContext(ctx, name, FloatValue(value))
}

// PauseContext asks the simulation to pause at its next poll (master only).
func (c *Client) PauseContext(ctx context.Context) error {
	return c.requestCtx(ctx, &envelope{Type: msgCommand, Command: cmdPause})
}

// ResumeContext releases a paused simulation (master only).
func (c *Client) ResumeContext(ctx context.Context) error {
	return c.requestCtx(ctx, &envelope{Type: msgCommand, Command: cmdResume})
}

// StopContext asks the simulation to terminate cleanly (master only).
func (c *Client) StopContext(ctx context.Context) error {
	return c.requestCtx(ctx, &envelope{Type: msgCommand, Command: cmdStop})
}

// CheckpointContext asks the simulation to write a checkpoint (master
// only).
func (c *Client) CheckpointContext(ctx context.Context) error {
	return c.requestCtx(ctx, &envelope{Type: msgCommand, Command: cmdCheckpoint})
}

// SetViewContext publishes a new shared view state (master only).
func (c *Client) SetViewContext(ctx context.Context, v ViewState) error {
	return c.requestCtx(ctx, &envelope{Type: msgSetView, View: &v})
}

// RequestMaster asks for the master role and blocks until it is granted or
// ctx ends. A free floor grants immediately; a held one queues the request
// under the session's floor policy and the call waits for the grant
// broadcast. Cancelling ctx withdraws the queued request before returning
// ctx's error, so an abandoned wait can never be granted a floor nobody is
// holding.
func (c *Client) RequestMaster(ctx context.Context) error {
	ack, err := c.requestAckCtx(ctx, &envelope{Type: msgRequestMaster})
	if err != nil {
		return err
	}
	if ack.Code != codeFloorQueued {
		c.noteGranted(FloorGranted) // the broadcast may lag (or have been evicted)
		return nil
	}
	// Waiting for the grant broadcast, with a periodic re-request as the
	// safety net: the grant rides the lossy control ring, and re-requesting
	// is idempotent — if this client already holds the floor the session
	// answers a plain OK, which is the recovery path for a lost grant.
	const repoll = time.Second
	timer := time.NewTimer(repoll)
	defer timer.Stop()
	for {
		c.mu.Lock()
		granted, ch := c.master == c.name, c.masterCh
		c.mu.Unlock()
		if granted {
			return nil
		}
		select {
		case <-ch:
		case <-timer.C:
			ack, err := c.requestAckCtx(ctx, &envelope{Type: msgRequestMaster})
			if err != nil {
				return err
			}
			if ack.Code != codeFloorQueued {
				c.noteGranted(FloorGranted)
				return nil
			}
			timer.Reset(repoll)
		case <-ctx.Done():
			// Best-effort withdrawal; the session also drops the queued
			// request when the connection dies.
			c.request(&envelope{Type: msgReleaseMaster}, time.Second)
			// The withdrawal races an in-flight grant: if the floor landed
			// here first, the release passed it on — don't report mastership
			// the release just gave away.
			return ctx.Err()
		case <-c.closed:
			return errors.New("core: connection closed")
		}
	}
}

// noteGranted records a server-acknowledged grant locally: the broadcast
// carrying it may still be in flight — or, on a client far behind on its
// control queue, evicted — and the caller must not observe Role() disagree
// with a grant the session just confirmed. The floor seq is left alone, so
// any genuinely newer transition broadcast still supersedes this.
func (c *Client) noteGranted(reason FloorReason) {
	c.mu.Lock()
	if c.master != c.name {
		c.master = c.name
		c.floorReason = reason
		close(c.masterCh)
		c.masterCh = make(chan struct{})
	}
	c.mu.Unlock()
}

// TryRequestMaster claims the master role only if the floor is free. A held
// floor is an explicit denial wrapping ErrFloorHeld and naming the holder —
// never a queue entry, never silence.
func (c *Client) TryRequestMaster(timeout time.Duration) error {
	if err := c.request(&envelope{Type: msgRequestMaster, NoWait: true}, timeout); err != nil {
		return err
	}
	c.noteGranted(FloorGranted)
	return nil
}

// StealMaster preempts the current holder (administrative takeover). The
// session honours it only under the steal floor policy; other policies deny
// with ErrFloorHeld.
func (c *Client) StealMaster(timeout time.Duration) error {
	if err := c.request(&envelope{Type: msgRequestMaster, Steal: true}, timeout); err != nil {
		return err
	}
	c.noteGranted(FloorStolen)
	return nil
}

// ReleaseMaster gives the floor up: the session grants it to the next
// queued requester, or leaves it free. Called by a non-holder it withdraws
// that client's queued request, if any; it is idempotent either way.
func (c *Client) ReleaseMaster(timeout time.Duration) error {
	return c.request(&envelope{Type: msgReleaseMaster}, timeout)
}

// GrantMaster transfers the master role to another attached client (master
// only): the paper's "coordinated cooperative steering".
func (c *Client) GrantMaster(to string, timeout time.Duration) error {
	return c.request(&envelope{Type: msgHandoffMaster, Target: to}, timeout)
}

// HandoffMaster is the pre-floor-control name of GrantMaster.
func (c *Client) HandoffMaster(to string, timeout time.Duration) error {
	return c.GrantMaster(to, timeout)
}

// FloorReason explains the most recent master change observed by this
// client (0 before any change).
func (c *Client) FloorReason() FloorReason {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.floorReason
}

// FloorPolicy returns the session's advertised floor arbitration policy.
func (c *Client) FloorPolicy() FloorPolicy {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.policy
}

// MasterLease returns the session's advertised master lease (0 = leases
// disabled).
func (c *Client) MasterLease() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lease
}

// Close detaches and closes the connection.
func (c *Client) Close() error {
	c.once.Do(func() {
		c.codec.write(&envelope{Type: msgDetach}, time.Second)
		close(c.closed)
		c.codec.close()
	})
	return nil
}

// Done is closed when the client detaches or its connection fails; consumers
// draining Samples or Blobs select on it to learn the stream has ended.
func (c *Client) Done() <-chan struct{} { return c.closed }

// Err returns the read-loop error after the connection has failed.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readErr
}
