package core_test

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim/lb"
)

// testCtx bounds one steering round trip (the in-package suite has its own
// copy; external test packages cannot share unexported helpers).
func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestMigrationWithoutClientDisturbance reproduces the section 2.4
// capability: "the ability to migrate both computation ... within a session
// without any disturbance or intervention on the part of the participating
// clients". The simulation is checkpointed on "host A", restored on
// "host B", and continues feeding the same steering session; the attached
// client never reattaches and sees a continuous, monotonic sample stream
// with its steered parameter intact.
func TestMigrationWithoutClientDisturbance(t *testing.T) {
	session := core.NewSession(core.SessionConfig{Name: "migrating-run", AppName: "lb3d"})
	defer session.Close()
	st := session.Steered()

	// The coupling apply closure must survive migration: it targets whichever
	// simulation instance is current.
	var current *lb.Sim
	simA, err := lb.New(lb.Params{Nx: 8, Ny: 8, Nz: 8, Tau: 1, G: 0, Seed: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	current = simA
	if err := st.RegisterFloat("g", 0, 0, 6, "", func(v float64) { current.SetCoupling(v) }); err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go session.Serve(l)

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client, err := core.Attach(conn, core.AttachOptions{Name: "steerer", SampleBuffer: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Host A runs 30 steps, then checkpoints (as if being evicted).
	if err := client.SetParamContext(testCtx(t), "g", 4.5); err != nil {
		t.Fatal(err)
	}
	emit := func(s *lb.Sim) {
		sample := core.NewSample(int64(s.StepCount()))
		sample.Channels["segregation"] = core.Scalar(s.Segregation())
		st.Emit(sample)
	}
	for i := 0; i < 30; i++ {
		st.Poll()
		simA.Step()
		emit(simA)
	}
	var ckpt bytes.Buffer
	if err := simA.WriteCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	// Host B restores and keeps feeding the SAME session object; in the
	// distributed deployment the session daemon is the stable endpoint and
	// only the compute backend moves.
	simB, err := lb.Restore(&ckpt)
	if err != nil {
		t.Fatal(err)
	}
	current = simB
	if simB.Coupling() != 4.5 {
		t.Fatalf("steered coupling lost in flight: %v", simB.Coupling())
	}
	st.Event("computation migrated to host B")
	for i := 0; i < 30; i++ {
		st.Poll()
		simB.Step()
		emit(simB)
	}

	// The client saw one uninterrupted stream: monotonically increasing
	// steps spanning the migration point, and the migration event. Emission
	// is asynchronous (Emit never blocks on delivery), so in-flight samples
	// get a quiescence window to arrive; 300ms of silence means drained.
	deadline := time.Now().Add(5 * time.Second)
	last := int64(-1)
	spanned := false
drain:
	for time.Now().Before(deadline) {
		select {
		case s := <-client.Samples():
			if s.Step <= last {
				t.Fatalf("sample steps not monotonic: %d after %d", s.Step, last)
			}
			last = s.Step
			if s.Step > 30 {
				spanned = true
			}
		case <-time.After(300 * time.Millisecond):
			break drain
		}
	}
	if !spanned {
		t.Fatalf("client never saw post-migration samples (last step %d)", last)
	}
	found := false
	for _, ev := range client.Events() {
		if ev == "computation migrated to host B" {
			found = true
		}
	}
	if !found {
		t.Fatal("migration event not announced")
	}
	// Steering still works against host B without reattaching.
	if err := client.SetParamContext(testCtx(t), "g", 2.0); err != nil {
		t.Fatal(err)
	}
	st.Poll()
	if simB.Coupling() != 2.0 {
		t.Fatalf("post-migration steer lost: %v", simB.Coupling())
	}
}
