package core

import (
	"fmt"
	"time"
)

// Floor control: explicit arbitration of the master role among collaborating
// clients. The paper's collaborative steering requires exactly one
// participant holding control authority at a time, with the others observing
// — and contested authority must resolve deterministically, observably and
// in bounded time even when the holder crashes, wedges or partitions.
//
// The subsystem has three parts:
//
//   - A master *lease*: the holder must stay live (any inbound frame renews
//     it; idle clients send heartbeats) or the session's maintenance sweep
//     expires the lease and passes the floor on within a bounded interval.
//   - An explicit request/grant/deny protocol: a request while the floor is
//     held is never silently dropped — it is granted, queued (the grant
//     arrives later as a master-changed broadcast), or denied with the
//     holder's name.
//   - A pending-requester queue with a configurable policy: FIFO arrival
//     order, priority order, or FIFO plus administrative steal.
//
// All floor state lives under Session.mu and every transition is a control
// broadcast on the encode-once path (journaled as state, folded by
// compaction), so the bookkeeping costs nothing on the sample fan-out hot
// path and late joiners converge on the same master via their welcome frame.

// FloorPolicy selects how contested master requests are arbitrated.
type FloorPolicy int

const (
	// FloorUnset is the zero value: NewSession resolves it to FloorFIFO,
	// and a hub resolves it to its configured session default first — so an
	// explicit FloorFIFO survives a hub whose default is another policy.
	FloorUnset FloorPolicy = iota
	// FloorFIFO queues contested requests in arrival order.
	FloorFIFO
	// FloorPriority queues contested requests by the requesting client's
	// attach priority (higher first), arrival order breaking ties.
	FloorPriority
	// FloorSteal is FIFO plus administrative preemption: a request carrying
	// the steal flag takes the floor from the current holder immediately.
	FloorSteal
)

// String returns the policy's flag spelling.
func (p FloorPolicy) String() string {
	switch p {
	case FloorPriority:
		return "priority"
	case FloorSteal:
		return "steal"
	default:
		return "fifo"
	}
}

// ParseFloorPolicy maps a flag spelling onto its policy.
func ParseFloorPolicy(s string) (FloorPolicy, error) {
	switch s {
	case "", "fifo":
		return FloorFIFO, nil
	case "priority":
		return FloorPriority, nil
	case "steal":
		return FloorSteal, nil
	default:
		return FloorFIFO, fmt.Errorf("core: unknown floor policy %q (want fifo, priority or steal)", s)
	}
}

// FloorReason explains a master-changed broadcast.
type FloorReason uint8

const (
	// FloorGranted: a request was granted — the floor was free, or the
	// requester reached the head of the pending queue.
	FloorGranted FloorReason = iota + 1
	// FloorHandoff: the holder granted the floor to a named client.
	FloorHandoff
	// FloorPromoted: the holder detached and the oldest client that had
	// asked for mastership was promoted.
	FloorPromoted
	// FloorExpired: the holder's lease expired (stalled heartbeat) and the
	// floor passed to the next queued requester — or fell free.
	FloorExpired
	// FloorStolen: an administrative request preempted the holder.
	FloorStolen
	// FloorReleased: the holder released the floor and nobody was waiting.
	FloorReleased
	// FloorVacated: the holder detached and no remaining client had asked
	// for mastership; the session runs without a master ("" target) rather
	// than press-ganging an observer.
	FloorVacated
)

// String returns the reason name.
func (r FloorReason) String() string {
	switch r {
	case FloorGranted:
		return "granted"
	case FloorHandoff:
		return "handoff"
	case FloorPromoted:
		return "promoted"
	case FloorExpired:
		return "expired"
	case FloorStolen:
		return "stolen"
	case FloorReleased:
		return "released"
	case FloorVacated:
		return "vacated"
	default:
		return "unknown"
	}
}

// FloorStats snapshots a session's floor-control activity.
type FloorStats struct {
	// Master is the current holder ("" when the floor is free).
	Master string
	// Pending is the number of queued requesters.
	Pending int
	// Grants counts every transfer of the floor to a client, whatever the
	// trigger (request, queue promotion, handoff, steal, drop promotion).
	Grants uint64
	// Denials counts explicit request denials (no-wait requests while held,
	// steal requests under a non-steal policy).
	Denials uint64
	// Releases counts voluntary releases by the holder.
	Releases uint64
	// Handoffs counts holder-initiated grants to a named client.
	Handoffs uint64
	// Expiries counts leases expired by the maintenance sweep.
	Expiries uint64
	// Steals counts administrative preemptions.
	Steals uint64
}

// floorWaiter is one queued master request.
type floorWaiter struct {
	name     string
	priority int64
	arrival  uint64
}

// floorState is the session's floor bookkeeping, guarded by Session.mu. The
// holder itself is Session.master — the one field the welcome snapshot and
// the paper-era accessors already read.
type floorState struct {
	pending []floorWaiter
	arrival uint64
	// seq numbers every floor transition. It rides each master-changed
	// broadcast (and the welcome's floor frame) so clients apply
	// transitions newest-wins even if two broadcasts — emitted outside
	// Session.mu by different goroutines — reach a queue out of order.
	seq   uint64
	stats FloorStats
}

// masterChange is a pending master-changed broadcast, returned by the
// mu-holding floor transitions and emitted by the caller after unlock so a
// broadcast (which takes the journal attach barrier) never nests inside
// Session.mu. The transition seq was assigned under the lock; the emit
// order on the wire may differ, which is exactly what the seq guards.
type masterChange struct {
	target string
	reason FloorReason
	seq    uint64
}

// emit broadcasts the transition; the zero value emits nothing.
func (mc masterChange) emit(s *Session) {
	if mc.reason == 0 {
		return
	}
	s.broadcastControl(&envelope{Type: msgMasterChanged, Seq: mc.seq, Target: mc.target, Reason: mc.reason})
}

// FloorStats returns a snapshot of the session's floor-control state.
func (s *Session) FloorStats() FloorStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.floor.stats
	st.Master = s.master
	st.Pending = len(s.floor.pending)
	return st
}

// enqueueWaiterLocked queues one request (idempotently: a re-request from a
// queued client refreshes its priority but keeps its arrival slot) and
// returns the client's 1-based queue position.
func (s *Session) enqueueWaiterLocked(name string, priority int64) int {
	f := &s.floor
	found := -1
	for i := range f.pending {
		if f.pending[i].name == name {
			f.pending[i].priority = priority
			found = i
			break
		}
	}
	if found < 0 {
		f.arrival++
		f.pending = append(f.pending, floorWaiter{name: name, priority: priority, arrival: f.arrival})
		found = len(f.pending) - 1
	}
	if s.cfg.FloorPolicy == FloorPriority {
		// Stable re-sort: (priority desc, arrival asc). The queue is tiny —
		// bounded by attached clients — and this is the cold control path.
		w := f.pending[found]
		for found > 0 {
			prev := f.pending[found-1]
			if prev.priority > w.priority || (prev.priority == w.priority && prev.arrival < w.arrival) {
				break
			}
			f.pending[found] = prev
			found--
		}
		f.pending[found] = w
	}
	return found + 1
}

// removeWaiterLocked cancels a queued request; reports whether it was queued.
func (s *Session) removeWaiterLocked(name string) bool {
	f := &s.floor
	for i := range f.pending {
		if f.pending[i].name == name {
			f.pending = append(f.pending[:i], f.pending[i+1:]...)
			return true
		}
	}
	return false
}

// dequeueWaiterLocked pops the best queued requester that is still attached,
// or "".
func (s *Session) dequeueWaiterLocked() string {
	f := &s.floor
	for len(f.pending) > 0 {
		next := f.pending[0]
		f.pending = f.pending[1:]
		if _, attached := s.clients[next.name]; attached {
			return next.name
		}
	}
	return ""
}

// grantToLocked moves the floor to name and returns the broadcast to emit
// after unlock. Passing "" frees the floor.
func (s *Session) grantToLocked(name string, reason FloorReason) masterChange {
	s.master = name
	if name != "" {
		s.floor.stats.Grants++
		if cc, ok := s.clients[name]; ok {
			// A fresh grant starts a fresh lease: the new master must not
			// inherit staleness accumulated while observing.
			cc.lastBeat.Store(s.now().UnixNano())
		}
	}
	s.floor.seq++
	return masterChange{target: name, reason: reason, seq: s.floor.seq}
}

// passFloorLocked vacates the floor and promotes the next queued requester,
// or frees the floor with the given empty-queue reason.
func (s *Session) passFloorLocked(freeReason FloorReason) masterChange {
	if next := s.dequeueWaiterLocked(); next != "" {
		reason := FloorGranted
		if freeReason == FloorExpired {
			reason = FloorExpired
		}
		return s.grantToLocked(next, reason)
	}
	return s.grantToLocked("", freeReason)
}

// handleRequestMaster implements msgRequestMaster: grant, queue, steal or
// deny — never a silent no-op. The requester always gets an answer: an OK
// ack (granted now), an OK ack with codeFloorQueued naming the holder (the
// grant arrives later as a master-changed broadcast), or a denial carrying
// the holder's name.
func (s *Session) handleRequestMaster(cc *clientConn, e *envelope) {
	s.mu.Lock()
	switch {
	case s.master == cc.name:
		// Idempotent: the holder re-requesting keeps the floor.
		s.mu.Unlock()
		s.ack(cc, e.Seq)

	case s.master == "":
		mc := s.grantToLocked(cc.name, FloorGranted)
		s.mu.Unlock()
		s.ack(cc, e.Seq)
		mc.emit(s)

	case e.Steal:
		if s.cfg.FloorPolicy != FloorSteal {
			s.floor.stats.Denials++
			holder := s.master
			s.mu.Unlock()
			s.rejectSteer(cc, e.Seq, fmt.Errorf("%w by %q: policy %v forbids steal", ErrFloorHeld, holder, s.cfg.FloorPolicy))
			return
		}
		s.floor.stats.Steals++
		s.removeWaiterLocked(cc.name)
		mc := s.grantToLocked(cc.name, FloorStolen)
		s.mu.Unlock()
		s.ack(cc, e.Seq)
		mc.emit(s)

	case e.NoWait:
		s.floor.stats.Denials++
		holder := s.master
		s.mu.Unlock()
		s.rejectSteer(cc, e.Seq, fmt.Errorf("%w by %q", ErrFloorHeld, holder))

	default:
		pos := s.enqueueWaiterLocked(cc.name, cc.priority)
		holder := s.master
		s.mu.Unlock()
		cc.codec.write(&envelope{Type: msgAck, Seq: e.Seq, Ack: &ackMsg{
			OK: true, Code: codeFloorQueued,
			Err: fmt.Sprintf("queued at %d behind %q", pos, holder),
		}}, s.cfg.ControlTimeout)
	}
}

// handleReleaseMaster implements msgReleaseMaster: the holder gives the
// floor up (passing it to the next queued requester), a waiter cancels its
// queued request. Always acked — release is idempotent.
func (s *Session) handleReleaseMaster(cc *clientConn, e *envelope) {
	s.mu.Lock()
	var mc masterChange
	if s.master == cc.name {
		s.floor.stats.Releases++
		mc = s.passFloorLocked(FloorReleased)
	} else {
		s.removeWaiterLocked(cc.name)
	}
	s.mu.Unlock()
	s.ack(cc, e.Seq)
	mc.emit(s)
}

// handleHandoffMaster implements msgHandoffMaster: the holder grants the
// floor to a named attached client.
func (s *Session) handleHandoffMaster(cc *clientConn, e *envelope) {
	s.mu.Lock()
	if s.master != cc.name {
		s.mu.Unlock()
		s.rejectSteer(cc, e.Seq, ErrNotMaster)
		return
	}
	target, ok := s.clients[e.Target]
	if !ok {
		s.mu.Unlock()
		s.rejectSteer(cc, e.Seq, fmt.Errorf("%w: no client %q", ErrRejected, e.Target))
		return
	}
	s.floor.stats.Handoffs++
	// A handoff supersedes the target's queued request, if any.
	s.removeWaiterLocked(target.name)
	mc := s.grantToLocked(target.name, FloorHandoff)
	s.mu.Unlock()
	s.ack(cc, e.Seq)
	mc.emit(s)
}

// dropFloorLocked is drop's floor bookkeeping: the departing client leaves
// the pending queue, and if it held the floor the next queued requester —
// or, failing that, the oldest remaining client that attached asking for
// mastership — is promoted. A session of pure observers is left masterless
// (broadcast as a ""-target change) rather than promoting a client that
// never asked to steer.
func (s *Session) dropFloorLocked(cc *clientConn) masterChange {
	s.removeWaiterLocked(cc.name)
	if s.master != cc.name {
		return masterChange{}
	}
	if next := s.dequeueWaiterLocked(); next != "" {
		return s.grantToLocked(next, FloorGranted)
	}
	for _, name := range s.order {
		if c := s.clients[name]; c != nil && c.wantMaster {
			return s.grantToLocked(name, FloorPromoted)
		}
	}
	return s.grantToLocked("", FloorVacated)
}

// now returns the session's clock reading (SessionConfig.Clock lets
// deterministic lease tests inject a virtual clock).
func (s *Session) now() time.Time {
	if s.cfg.Clock != nil {
		return s.cfg.Clock()
	}
	return time.Now()
}

// sweepFloor is the maintenance sweep: if the master's lease has lapsed —
// no inbound frame for longer than MasterLease — the floor passes to the
// next queued requester (or falls free). The wedged client stays attached
// as an observer; if it wakes, its next steer is rejected with ErrNotMaster.
// It returns whether a lease was expired.
func (s *Session) sweepFloor() bool {
	now := s.now()
	s.mu.Lock()
	cc := s.clients[s.master]
	if cc == nil || now.Sub(time.Unix(0, cc.lastBeat.Load())) <= s.cfg.MasterLease {
		s.mu.Unlock()
		return false
	}
	s.floor.stats.Expiries++
	expired := s.master
	mc := s.passFloorLocked(FloorExpired)
	s.mu.Unlock()
	mc.emit(s)
	s.broadcastEvent(fmt.Sprintf("master lease expired: %q lost the floor", expired))
	return true
}

// floorSweeper drives sweepFloor until the session closes. The interval is
// a quarter of the lease, so a wedged master loses the floor within
// 1.25×MasterLease of its last inbound frame.
func (s *Session) floorSweeper() {
	interval := s.cfg.MasterLease / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.sweepFloor()
		case <-s.closeCh:
			return
		}
	}
}
