package core

import (
	"net"
	"time"
)

// SockOpts tunes a TCP connection at birth: the knobs a deployment turns
// when the vectored egress path (writev batches, see codec) meets a real
// network instead of loopback. The zero value is the shipped default —
// TCP_NODELAY on, OS-tuned buffer sizes, Go's default keep-alive — so
// configs that never mention SockOpts change nothing.
type SockOpts struct {
	// Delay re-enables Nagle's algorithm. The zero value keeps TCP_NODELAY
	// set (Go's own default, restated here so the shipped behaviour is
	// explicit): steering control frames and acks must not wait out a
	// delayed-ACK window, and batched writev egress already coalesces
	// small frames before the kernel sees them.
	Delay bool
	// RcvBuf/SndBuf set SO_RCVBUF / SO_SNDBUF in bytes when positive; 0
	// keeps the OS default and its auto-tuning. Raise SndBuf on fan-out
	// servers pushing bulk frames to many clients; raise RcvBuf on clients
	// consuming them over long fat networks.
	RcvBuf int
	SndBuf int
	// KeepAlive sets the TCP keep-alive probe period when positive; 0
	// keeps Go's default (15s), negative disables keep-alives entirely.
	KeepAlive time.Duration
}

// Apply configures conn when it is a TCP connection; anything else —
// net.Pipe, netsim links, test doubles — is left untouched, mirroring the
// codec's vectored-write capability probe. Setter errors are dropped: a
// socket that rejects a buffer-size hint still works, and the accept loop
// must never fail a connection over a tuning preference.
func (o SockOpts) Apply(conn net.Conn) {
	tc, ok := conn.(*net.TCPConn)
	if !ok {
		return
	}
	tc.SetNoDelay(!o.Delay)
	if o.RcvBuf > 0 {
		tc.SetReadBuffer(o.RcvBuf)
	}
	if o.SndBuf > 0 {
		tc.SetWriteBuffer(o.SndBuf)
	}
	switch {
	case o.KeepAlive > 0:
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(o.KeepAlive)
	case o.KeepAlive < 0:
		tc.SetKeepAlive(false)
	}
}
