package core

import "errors"

// Exported steering errors. Server-side rejections cross the wire as a
// compact code plus a human-readable message; the client reconstructs the
// typed error so callers can branch with errors.Is instead of string
// matching.
var (
	// ErrNotMaster reports a steering request from a client that does not
	// hold the master role.
	ErrNotMaster = errors.New("core: not the steering master")
	// ErrUnknownParam reports a steering request naming an unregistered
	// parameter.
	ErrUnknownParam = errors.New("core: unknown parameter")
	// ErrBadValue reports a steering value outside its parameter's bounds,
	// of an inconvertible kind, or naming an unlisted choice.
	ErrBadValue = errors.New("core: bad parameter value")
	// ErrVersionMismatch reports an attach handshake with an unsupported
	// protocol version or a non-protocol byte stream (bad magic).
	ErrVersionMismatch = errors.New("core: protocol version mismatch")
	// ErrRejected is the generic rejection for requests with no more
	// specific code (duplicate name, session closed...).
	ErrRejected = errors.New("core: request rejected")
	// ErrFloorHeld reports an explicit floor-control denial: the master
	// role is held by another client (the message names the holder) and the
	// request did not — or was not allowed to — queue or steal.
	ErrFloorHeld = errors.New("core: master floor held")
)

// errCode is the wire form of a rejection class.
type errCode uint8

const (
	codeOK errCode = iota
	codeGeneric
	codeNotMaster
	codeUnknownParam
	codeBadValue
	codeVersion
	// codeFloorHeld is a floor-control denial; the ack message names the
	// holder.
	codeFloorHeld
	// codeFloorQueued rides an OK ack: the floor request was accepted and
	// queued behind the current holder (named in the ack message). The
	// grant arrives later as a master-changed broadcast.
	codeFloorQueued
)

// codeFor maps a server-side error onto its wire code.
func codeFor(err error) errCode {
	switch {
	case err == nil:
		return codeOK
	case errors.Is(err, ErrNotMaster):
		return codeNotMaster
	case errors.Is(err, ErrUnknownParam):
		return codeUnknownParam
	case errors.Is(err, ErrBadValue):
		return codeBadValue
	case errors.Is(err, ErrVersionMismatch):
		return codeVersion
	case errors.Is(err, ErrFloorHeld):
		return codeFloorHeld
	default:
		return codeGeneric
	}
}

// errFor reconstructs the typed error for a wire code on the client side.
func errFor(code errCode) error {
	switch code {
	case codeNotMaster:
		return ErrNotMaster
	case codeUnknownParam:
		return ErrUnknownParam
	case codeBadValue:
		return ErrBadValue
	case codeVersion:
		return ErrVersionMismatch
	case codeFloorHeld:
		return ErrFloorHeld
	default:
		return ErrRejected
	}
}
