package core

import "errors"

// Exported steering errors. Server-side rejections cross the wire as a
// compact code plus a human-readable message; the client reconstructs the
// typed error so callers can branch with errors.Is instead of string
// matching.
var (
	// ErrNotMaster reports a steering request from a client that does not
	// hold the master role.
	ErrNotMaster = errors.New("core: not the steering master")
	// ErrUnknownParam reports a steering request naming an unregistered
	// parameter.
	ErrUnknownParam = errors.New("core: unknown parameter")
	// ErrBadValue reports a steering value outside its parameter's bounds,
	// of an inconvertible kind, or naming an unlisted choice.
	ErrBadValue = errors.New("core: bad parameter value")
	// ErrVersionMismatch reports an attach handshake with an unsupported
	// protocol version or a non-protocol byte stream (bad magic).
	ErrVersionMismatch = errors.New("core: protocol version mismatch")
	// ErrRejected is the generic rejection for requests with no more
	// specific code (master role held, duplicate name, session closed...).
	ErrRejected = errors.New("core: request rejected")
)

// errCode is the wire form of a rejection class.
type errCode uint8

const (
	codeOK errCode = iota
	codeGeneric
	codeNotMaster
	codeUnknownParam
	codeBadValue
	codeVersion
)

// codeFor maps a server-side error onto its wire code.
func codeFor(err error) errCode {
	switch {
	case err == nil:
		return codeOK
	case errors.Is(err, ErrNotMaster):
		return codeNotMaster
	case errors.Is(err, ErrUnknownParam):
		return codeUnknownParam
	case errors.Is(err, ErrBadValue):
		return codeBadValue
	case errors.Is(err, ErrVersionMismatch):
		return codeVersion
	default:
		return codeGeneric
	}
}

// errFor reconstructs the typed error for a wire code on the client side.
func errFor(code errCode) error {
	switch code {
	case codeNotMaster:
		return ErrNotMaster
	case codeUnknownParam:
		return ErrUnknownParam
	case codeBadValue:
		return ErrBadValue
	case codeVersion:
		return ErrVersionMismatch
	default:
		return ErrRejected
	}
}
