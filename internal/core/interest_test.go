// Interest management and delivery tiers (DESIGN.md §4.3): subscription
// filtering on the broadcast paths, runtime subscribe/unsubscribe, the
// observer tier's relayed delivery, and the v3 negotiated downgrade.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testSessionAddr is testSession for tests that also need the raw listener
// address (handcrafted-protocol clients, expected attach failures).
func testSessionAddr(t *testing.T, cfg SessionConfig) (*Session, string) {
	t.Helper()
	if cfg.Name == "" {
		cfg.Name = "interest-session"
	}
	s := NewSession(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(s.Close)
	return s, l.Addr().String()
}

func dialOpts(t *testing.T, addr string, opts AttachOptions) *Client {
	t.Helper()
	c, err := Dial(context.Background(), addr, opts)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func chanSample(step int64, names ...string) *Sample {
	s := NewSample(step)
	for _, n := range names {
		s.Channels[n] = Scalar(float64(step))
	}
	return s
}

// drainCount consumes everything currently buffered on c.Samples() and
// returns how many samples carried the named channel.
func drainCount(c *Client, channel string) int {
	n := 0
	for {
		select {
		case s := <-c.Samples():
			if s != nil {
				if _, ok := s.Channels[channel]; ok {
					n++
				}
			}
		default:
			return n
		}
	}
}

// TestSubscriptionFiltering is the tentpole's core delivery property: a
// sample reaches exactly the clients whose interest set matches one of its
// channels, attach-time and runtime subscriptions agree, and flagSubAll
// restores subscribe-all.
func TestSubscriptionFiltering(t *testing.T) {
	s, addr := testSessionAddr(t, SessionConfig{AppName: "app"})
	st := s.Steered()

	phi := dialOpts(t, addr, AttachOptions{
		Name: "phi-viewer", Subscriptions: []Subscription{ChannelSub("phi")},
	})
	ghost := dialOpts(t, addr, AttachOptions{
		Name: "ghost-viewer", Subscriptions: []Subscription{ChannelSub("ghost")},
	})
	all := dialOpts(t, addr, AttachOptions{Name: "all-viewer"})

	st.Emit(chanSample(1, "phi", "seg"))
	waitFor(t, "subscribed clients see step 1", func() bool {
		return drainCount(phi, "phi") > 0 && drainCount(all, "phi") > 0
	})
	if got := drainCount(ghost, "phi"); got != 0 {
		t.Fatalf("ghost-subscribed client received %d phi samples, want 0", got)
	}
	if s.Stats().FramesFiltered == 0 {
		t.Fatal("no frames filtered despite a non-matching subscription")
	}

	// Runtime subscribe widens ghost's set; the next emission reaches it.
	ctx := context.Background()
	if err := ghost.Subscribe(ctx, ChannelSub("phi")); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	st.Emit(chanSample(2, "phi"))
	waitFor(t, "ghost sees step 2 after subscribing", func() bool {
		return drainCount(ghost, "phi") > 0
	})
	// phi was still subscribed for step 2 — drain it before narrowing so the
	// step-3 check below sees only post-unsubscribe traffic.
	waitFor(t, "phi sees step 2", func() bool { return drainCount(phi, "phi") > 0 })

	// Unsubscribe with no selectors clears the interest set entirely.
	if err := phi.Unsubscribe(ctx); err != nil {
		t.Fatalf("unsubscribe: %v", err)
	}
	st.Emit(chanSample(3, "phi"))
	waitFor(t, "ghost sees step 3", func() bool { return drainCount(ghost, "phi") > 0 })
	if got := drainCount(phi, "phi"); got != 0 {
		t.Fatalf("cleared client received %d samples, want 0", got)
	}

	// SubscribeAll resets to everything.
	if err := phi.SubscribeAll(ctx); err != nil {
		t.Fatalf("subscribe-all: %v", err)
	}
	st.Emit(chanSample(4, "other"))
	waitFor(t, "reset client sees step 4", func() bool { return drainCount(phi, "other") > 0 })
}

// TestParamSubscriptionFiltering covers the parameter-update side of the
// interest filter: a ParamSub narrows param delivery to the named set while
// leaving channel delivery alone, and unknown parameter names are rejected
// at both attach and subscribe time.
func TestParamSubscriptionFiltering(t *testing.T) {
	s, addr := testSessionAddr(t, SessionConfig{AppName: "app"})
	st := s.Steered()
	for _, name := range []string{"alpha", "beta"} {
		if err := st.RegisterFloat(name, 0, 0, 100, "", func(float64) {}); err != nil {
			t.Fatal(err)
		}
	}

	master := dialOpts(t, addr, AttachOptions{Name: "m", WantMaster: true})
	narrow := dialOpts(t, addr, AttachOptions{
		Name: "narrow", Subscriptions: []Subscription{ParamSub("alpha")},
	})
	wide := dialOpts(t, addr, AttachOptions{Name: "wide"})

	set := func(name string, v float64) {
		t.Helper()
		if err := master.SetParamContext(testCtx(t), name, v); err != nil {
			t.Fatal(err)
		}
		st.Poll() // apply and broadcast the update
	}
	set("alpha", 7)
	waitFor(t, "both see alpha=7", func() bool {
		a, _ := narrow.Param("alpha")
		b, _ := wide.Param("alpha")
		return a.Value == FloatValue(7) && b.Value == FloatValue(7)
	})
	set("beta", 9)
	waitFor(t, "wide sees beta=9", func() bool {
		b, _ := wide.Param("beta")
		return b.Value == FloatValue(9)
	})
	if p, _ := narrow.Param("beta"); p.Value == FloatValue(9) {
		t.Fatal("param-narrowed client received a filtered beta update")
	}

	// Unknown parameter names are rejected symmetrically.
	if err := narrow.Subscribe(context.Background(), ParamSub("gamma")); !errors.Is(err, ErrUnknownParam) {
		t.Fatalf("subscribe unknown param: err = %v, want ErrUnknownParam", err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Attach(conn, AttachOptions{
		Name: "bad", Subscriptions: []Subscription{ParamSub("gamma")},
	})
	if !errors.Is(err, ErrUnknownParam) {
		t.Fatalf("attach with unknown param sub: err = %v, want ErrUnknownParam", err)
	}
}

// TestObserverTierDelivery: an observer-tier client receives its subscribed
// stream through the relay workers (coalesced on the configured interval),
// the welcome advertises tier and interval, and TierCounts tracks the
// split.
func TestObserverTierDelivery(t *testing.T) {
	s, addr := testSessionAddr(t, SessionConfig{
		AppName: "app", ObserverInterval: 5 * time.Millisecond,
	})
	st := s.Steered()

	steerer := dialOpts(t, addr, AttachOptions{Name: "steer"})
	obs := dialOpts(t, addr, AttachOptions{
		Name: "obs", Tier: TierObserver,
		Subscriptions: []Subscription{ChannelSub("phi")},
	})
	if got := obs.Tier(); got != TierObserver {
		t.Fatalf("observer tier = %v, want TierObserver", got)
	}
	if got := obs.ObserverInterval(); got != 5*time.Millisecond {
		t.Fatalf("observer interval = %v, want 5ms", got)
	}
	if got := steerer.Tier(); got != TierSteering {
		t.Fatalf("steerer tier = %v, want TierSteering", got)
	}
	waitFor(t, "tier views", func() bool {
		steer, observers := s.TierCounts()
		return steer == 1 && observers == 1
	})

	st.Emit(chanSample(1, "phi"))
	waitFor(t, "observer sees phi", func() bool { return drainCount(obs, "phi") > 0 })
	st.Emit(chanSample(2, "other"))
	waitFor(t, "steerer sees other", func() bool { return drainCount(steerer, "other") > 0 })
	if got := drainCount(obs, "other"); got != 0 {
		t.Fatalf("observer received %d non-subscribed samples, want 0", got)
	}
	if stats := s.Stats(); stats.RelayPublished == 0 {
		t.Fatal("no relay publishes despite an observer-tier client")
	}
}

// TestReplayPolicy: ReplayNone skips the journal catch-up entirely and
// ReplayEvents skips the sample class, while ReplayAll (the default)
// replays both.
func TestReplayPolicy(t *testing.T) {
	sink := &memSink{}
	s, addr := testSessionAddr(t, SessionConfig{AppName: "app", Journal: sink})
	st := s.Steered()
	st.Event("history")
	st.Emit(chanSample(1, "phi"))

	check := func(name string, policy ReplayPolicy, wantEvents, wantSamples bool) {
		t.Helper()
		c := dialOpts(t, addr, AttachOptions{Name: name, ReplayPolicy: policy})
		if wantEvents {
			waitFor(t, name+" replayed events", func() bool { return len(c.Events()) == 1 })
		}
		if wantSamples {
			waitFor(t, name+" replayed sample", func() bool { return drainCount(c, "phi") > 0 })
			return
		}
		// Absence: give the (would-be) replay a moment to land, then check.
		time.Sleep(50 * time.Millisecond)
		if !wantEvents && len(c.Events()) != 0 {
			t.Fatalf("%s: events replayed despite policy %v: %q", name, policy, c.Events())
		}
		if got := drainCount(c, "phi"); got != 0 {
			t.Fatalf("%s: %d samples replayed despite policy %v", name, got, policy)
		}
	}
	check("all", ReplayAll, true, true)
	check("events", ReplayEvents, true, false)
	check("none", ReplayNone, false, false)
}

// TestV3DowngradeInterop speaks protocol v3 at the session with a
// handcrafted codec: the attach carries no extension frame, the welcome
// comes back at version 3 advertising the negotiated downgrade, and
// delivery behaves exactly like pre-tier v3 — steering tier, subscribe-all.
func TestV3DowngradeInterop(t *testing.T) {
	s, addr := testSessionAddr(t, SessionConfig{AppName: "app"})
	st := s.Steered()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := newCodec(conn)
	err = c.write(&envelope{
		Version: 3, Type: msgAttach, Seq: 1,
		Attach: &attachMsg{Name: "legacy"},
	}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	welcome, err := c.read()
	if err != nil {
		t.Fatal(err)
	}
	if welcome.Type != msgWelcome {
		t.Fatalf("first frame type = %d, want welcome", welcome.Type)
	}
	if welcome.Version != 3 {
		t.Fatalf("welcome version = %d, want the client's 3", welcome.Version)
	}
	w := welcome.Welcome
	if w.Proto != 3 || w.Tier != TierSteering {
		t.Fatalf("welcome advertises proto %d tier %v, want proto 3 TierSteering", w.Proto, w.Tier)
	}

	// Subscribe-all: a v3 client receives every sample, whatever the channel.
	st.Emit(chanSample(1, "anything"))
	deadline := time.Now().Add(3 * time.Second)
	for {
		conn.SetReadDeadline(deadline)
		e, err := c.read()
		if err != nil {
			t.Fatalf("reading v3 stream: %v", err)
		}
		if e.Type == msgSample {
			if _, ok := e.Sample.Channels["anything"]; !ok {
				t.Fatalf("v3 sample lost its channel: %+v", e.Sample)
			}
			break
		}
	}

	// The v4-only frames cannot be encoded at version 3 — the client-side
	// guard against leaking subscribe frames to a downgraded session.
	if _, err := encodeEnvelope(nil, &envelope{Version: 3, Type: msgSubscribe}); err == nil {
		t.Fatal("msgSubscribe encoded at version 3, want error")
	}

	// Versions outside [minProtoVersion, ProtoVersion] are answered with a
	// typed version rejection, never a welcome.
	for _, v := range []uint32{2, ProtoVersion + 1} {
		buf, err := encodeEnvelope(nil, &envelope{Version: v, Type: msgHeartbeat, Seq: 1})
		if err != nil {
			t.Fatal(err)
		}
		conn2, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn2.Write(buf); err != nil {
			t.Fatal(err)
		}
		conn2.SetReadDeadline(time.Now().Add(3 * time.Second))
		e, rerr := newCodec(conn2).read()
		if rerr == nil {
			if e.Type != msgAck || e.Ack == nil || e.Ack.OK {
				t.Fatalf("version-%d client got %d frame, want rejection ack", v, e.Type)
			}
		}
		conn2.Close()
	}
}

// TestSubscriptionChurn exercises the interest machinery under the
// conditions it was built for — clients attaching, re-subscribing and
// detaching while the broadcast stream runs — and is most valuable under
// -race: the immutable-descriptor swap and the RCU tier views must keep
// every access safe with zero locks on the delivery paths.
func TestSubscriptionChurn(t *testing.T) {
	s, addr := testSessionAddr(t, SessionConfig{
		AppName: "app", ObserverInterval: -1, // immediate observer flush
	})
	st := s.Steered()
	if err := st.RegisterFloat("alpha", 0, 0, 100, "", func(float64) {}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var emitted atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the broadcast load the churn runs under
		defer wg.Done()
		step := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
				step++
				st.Emit(chanSample(step, "phi", "seg"))
				emitted.Add(1)
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	// A steady subscriber that must keep receiving throughout the churn.
	steady := dialOpts(t, addr, AttachOptions{
		Name: "steady", Subscriptions: []Subscription{ChannelSub("phi")},
	})

	const churners = 6
	for i := 0; i < churners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			ctx := context.Background()
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				tier := TierSteering
				if i%2 == 0 {
					tier = TierObserver
				}
				c, err := Dial(ctx, addr, AttachOptions{
					Name: fmt.Sprintf("churn-%d-%d", i, round),
					Tier: tier,
					Subscriptions: []Subscription{
						ChannelSub([]string{"phi", "seg", "ghost"}[rng.Intn(3)]),
					},
				})
				if err != nil {
					continue // accept races with shutdown
				}
				// A few interest mutations while attached, consuming
				// whatever arrives in between.
				for k := 0; k < 3; k++ {
					switch rng.Intn(4) {
					case 0:
						c.Subscribe(ctx, ChannelSub("phi"), ParamSub("alpha"))
					case 1:
						c.Unsubscribe(ctx, ChannelSub("phi"))
					case 2:
						c.SubscribeAll(ctx)
					case 3:
						c.Unsubscribe(ctx)
					}
					drainCount(c, "phi")
					time.Sleep(time.Millisecond)
				}
				c.Close()
			}
		}(i)
	}

	received := 0
	deadline := time.Now().Add(1500 * time.Millisecond)
	for time.Now().Before(deadline) {
		received += drainCount(steady, "phi")
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if received == 0 {
		t.Fatal("steady subscriber received nothing during churn")
	}
	stats := s.Stats()
	if stats.SamplesEmitted == 0 || stats.FramesFiltered == 0 {
		t.Fatalf("churn produced no filtering: %+v", stats)
	}
	waitFor(t, "churners detached", func() bool { return s.ClientCount() == 1 })
}
