package render

import "math"

// Mesh is indexed triangle geometry with one colour, the unit of data
// exchanged between visualization and rendering components.
type Mesh struct {
	Vertices  []Vec3
	Triangles [][3]int32
	Color     Color
}

// ByteSize reports the raw size of the mesh if shipped uncompressed
// (3 float64 per vertex + 3 int32 per triangle). The VizServer bandwidth
// experiment compares this against compressed framebuffer bytes.
func (m *Mesh) ByteSize() int { return len(m.Vertices)*24 + len(m.Triangles)*12 }

// PointCloud is a set of coloured points (e.g. PEPC particles as glyphs).
type PointCloud struct {
	Points []Vec3
	Color  Color
	// Size is the glyph half-extent in pixels (0 renders single pixels).
	Size int
}

// Lines is a set of independent line segments (e.g. tree-domain box edges).
type Lines struct {
	Segments [][2]Vec3
	Color    Color
}

// Scene is everything drawn in one frame.
type Scene struct {
	Meshes []*Mesh
	Points []*PointCloud
	Lines  []*Lines
}

// GeometryBytes reports the raw geometry volume of the scene.
func (s *Scene) GeometryBytes() int {
	n := 0
	for _, m := range s.Meshes {
		n += m.ByteSize()
	}
	for _, p := range s.Points {
		n += len(p.Points) * 24
	}
	for _, l := range s.Lines {
		n += len(l.Segments) * 48
	}
	return n
}

// TriangleCount reports the total triangle count of the scene.
func (s *Scene) TriangleCount() int {
	n := 0
	for _, m := range s.Meshes {
		n += len(m.Triangles)
	}
	return n
}

// Camera defines the viewpoint. The collaborative-session view state that
// COVISE and VizServer synchronise between sites is exactly this struct.
type Camera struct {
	Eye, Center, Up Vec3
	FovY            float64 // radians
	Near, Far       float64
}

// DefaultCamera returns a camera looking at the unit cube from a distance.
func DefaultCamera() Camera {
	return Camera{
		Eye:    Vec3{1.8, 1.4, 2.2},
		Center: Vec3{0.5, 0.5, 0.5},
		Up:     Vec3{0, 1, 0},
		FovY:   math.Pi / 4,
		Near:   0.1,
		Far:    100,
	}
}

// viewProjection returns the combined view-projection matrix for the target
// aspect ratio.
func (c Camera) viewProjection(aspect float64) Mat4 {
	return Perspective(c.FovY, aspect, c.Near, c.Far).Mul(LookAt(c.Eye, c.Center, c.Up))
}

// lightDir is the fixed directional light used for flat shading.
var lightDir = Vec3{0.4, 0.8, 0.45}.Normalize()

// Render draws the scene into fb from the camera's viewpoint. It clears the
// framebuffer first. Rendering is single-threaded and deterministic: the same
// scene and camera always produce identical pixels, which the collaborative
// view-synchronisation experiments rely on.
func Render(fb *Framebuffer, cam Camera, scene *Scene) {
	fb.Clear(Black)
	vp := cam.viewProjection(float64(fb.W) / float64(fb.H))
	for _, m := range scene.Meshes {
		renderMesh(fb, vp, m)
	}
	for _, l := range scene.Lines {
		renderLines(fb, vp, l)
	}
	for _, p := range scene.Points {
		renderPoints(fb, vp, p)
	}
}

// project maps a world point to framebuffer coordinates. ok is false when
// the point lies behind the near plane.
func project(fb *Framebuffer, vp Mat4, v Vec3) (x, y int, z float64, ok bool) {
	ndc, w := vp.TransformPoint(v)
	if w <= 0 {
		return 0, 0, 0, false
	}
	x = int((ndc.X + 1) / 2 * float64(fb.W))
	y = int((1 - (ndc.Y+1)/2) * float64(fb.H))
	return x, y, ndc.Z, true
}

func renderMesh(fb *Framebuffer, vp Mat4, m *Mesh) {
	for _, tri := range m.Triangles {
		a, b, c := m.Vertices[tri[0]], m.Vertices[tri[1]], m.Vertices[tri[2]]
		n := b.Sub(a).Cross(c.Sub(a)).Normalize()
		// Two-sided flat shading with ambient floor.
		shade := math.Abs(n.Dot(lightDir))*0.75 + 0.25
		col := m.Color.Shade(shade)

		x0, y0, z0, ok0 := project(fb, vp, a)
		x1, y1, z1, ok1 := project(fb, vp, b)
		x2, y2, z2, ok2 := project(fb, vp, c)
		if !ok0 || !ok1 || !ok2 {
			continue
		}
		fillTriangle(fb, x0, y0, z0, x1, y1, z1, x2, y2, z2, col)
	}
}

// fillTriangle rasterises one screen-space triangle with barycentric depth
// interpolation.
func fillTriangle(fb *Framebuffer, x0, y0 int, z0 float64, x1, y1 int, z1 float64, x2, y2 int, z2 float64, col Color) {
	minX := max(min3(x0, x1, x2), 0)
	maxX := min(max3(x0, x1, x2), fb.W-1)
	minY := max(min3(y0, y1, y2), 0)
	maxY := min(max3(y0, y1, y2), fb.H-1)
	if minX > maxX || minY > maxY {
		return
	}
	area := float64((x1-x0)*(y2-y0) - (x2-x0)*(y1-y0))
	if area == 0 {
		return
	}
	inv := 1 / area
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			w0 := float64((x1-x)*(y2-y)-(x2-x)*(y1-y)) * inv
			w1 := float64((x2-x)*(y0-y)-(x0-x)*(y2-y)) * inv
			w2 := 1 - w0 - w1
			if w0 < 0 || w1 < 0 || w2 < 0 {
				continue
			}
			z := w0*z0 + w1*z1 + w2*z2
			fb.setDepth(x, y, z, col)
		}
	}
}

func renderLines(fb *Framebuffer, vp Mat4, l *Lines) {
	for _, seg := range l.Segments {
		x0, y0, z0, ok0 := project(fb, vp, seg[0])
		x1, y1, z1, ok1 := project(fb, vp, seg[1])
		if !ok0 || !ok1 {
			continue
		}
		drawLine(fb, x0, y0, z0, x1, y1, z1, l.Color)
	}
}

// drawLine is Bresenham with linear depth interpolation.
func drawLine(fb *Framebuffer, x0, y0 int, z0 float64, x1, y1 int, z1 float64, col Color) {
	dx, dy := abs(x1-x0), -abs(y1-y0)
	sx, sy := sign(x1-x0), sign(y1-y0)
	err := dx + dy
	steps := max(abs(x1-x0), abs(y1-y0))
	total := float64(max(steps, 1))
	i := 0.0
	for {
		t := i / total
		fb.setDepth(x0, y0, z0+(z1-z0)*t-1e-6, col) // slight bias so edges win over faces
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
		i++
	}
}

func renderPoints(fb *Framebuffer, vp Mat4, p *PointCloud) {
	for _, pt := range p.Points {
		x, y, z, ok := project(fb, vp, pt)
		if !ok {
			continue
		}
		if p.Size <= 0 {
			fb.setDepth(x, y, z, p.Color)
			continue
		}
		// Diamond glyph, as the paper renders PEPC particles.
		for dy := -p.Size; dy <= p.Size; dy++ {
			w := p.Size - abs(dy)
			for dx := -w; dx <= w; dx++ {
				fb.setDepth(x+dx, y+dy, z, p.Color)
			}
		}
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func sign(a int) int {
	switch {
	case a > 0:
		return 1
	case a < 0:
		return -1
	default:
		return 0
	}
}

func min3(a, b, c int) int { return min(a, min(b, c)) }
func max3(a, b, c int) int { return max(a, max(b, c)) }
