package render

import (
	"fmt"
	"hash/crc32"
)

// Color is an RGBA colour with 8 bits per channel.
type Color struct{ R, G, B, A uint8 }

// Common colours used by the examples and tests.
var (
	Black = Color{0, 0, 0, 255}
	White = Color{255, 255, 255, 255}
	Red   = Color{220, 40, 40, 255}
	Green = Color{40, 200, 80, 255}
	Blue  = Color{60, 90, 230, 255}
)

// Shade scales the RGB channels of c by s in [0,1], keeping alpha.
func (c Color) Shade(s float64) Color {
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return Color{uint8(float64(c.R) * s), uint8(float64(c.G) * s), uint8(float64(c.B) * s), c.A}
}

// Framebuffer is a W×H RGBA image with a depth buffer.
type Framebuffer struct {
	W, H int
	Pix  []byte    // RGBA, row-major, 4 bytes per pixel
	Z    []float64 // depth per pixel, +Inf-like initialised via Clear
}

// NewFramebuffer allocates a framebuffer of the given size.
func NewFramebuffer(w, h int) *Framebuffer {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("render: invalid framebuffer size %dx%d", w, h))
	}
	return &Framebuffer{W: w, H: h, Pix: make([]byte, w*h*4), Z: make([]float64, w*h)}
}

// Clear fills the framebuffer with c and resets the depth buffer.
func (f *Framebuffer) Clear(c Color) {
	for i := 0; i < len(f.Pix); i += 4 {
		f.Pix[i], f.Pix[i+1], f.Pix[i+2], f.Pix[i+3] = c.R, c.G, c.B, c.A
	}
	for i := range f.Z {
		f.Z[i] = 1e30
	}
}

// Set writes a pixel unconditionally (no depth test).
func (f *Framebuffer) Set(x, y int, c Color) {
	if x < 0 || y < 0 || x >= f.W || y >= f.H {
		return
	}
	i := (y*f.W + x) * 4
	f.Pix[i], f.Pix[i+1], f.Pix[i+2], f.Pix[i+3] = c.R, c.G, c.B, c.A
}

// setDepth writes a pixel if z passes the depth test.
func (f *Framebuffer) setDepth(x, y int, z float64, c Color) {
	if x < 0 || y < 0 || x >= f.W || y >= f.H {
		return
	}
	zi := y*f.W + x
	if z >= f.Z[zi] {
		return
	}
	f.Z[zi] = z
	i := zi * 4
	f.Pix[i], f.Pix[i+1], f.Pix[i+2], f.Pix[i+3] = c.R, c.G, c.B, c.A
}

// At returns the pixel colour at (x, y).
func (f *Framebuffer) At(x, y int) Color {
	i := (y*f.W + x) * 4
	return Color{f.Pix[i], f.Pix[i+1], f.Pix[i+2], f.Pix[i+3]}
}

// Checksum returns a CRC-32 of the pixel data; tests and the view-divergence
// experiments use it to compare what different sites are displaying.
func (f *Framebuffer) Checksum() uint32 { return crc32.ChecksumIEEE(f.Pix) }

// Clone returns a deep copy of the framebuffer's pixels (depth is reset).
func (f *Framebuffer) Clone() *Framebuffer {
	g := NewFramebuffer(f.W, f.H)
	copy(g.Pix, f.Pix)
	return g
}

// DiffPixels counts pixels that differ between two equally sized buffers.
func (f *Framebuffer) DiffPixels(g *Framebuffer) int {
	if f.W != g.W || f.H != g.H {
		return f.W * f.H
	}
	n := 0
	for i := 0; i < len(f.Pix); i += 4 {
		if f.Pix[i] != g.Pix[i] || f.Pix[i+1] != g.Pix[i+1] || f.Pix[i+2] != g.Pix[i+2] || f.Pix[i+3] != g.Pix[i+3] {
			n++
		}
	}
	return n
}
