package render

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecOps(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, 5, 6}
	if got := v.Add(w); got != (Vec3{5, 7, 9}) {
		t.Fatalf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec3{-3, -3, -3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := v.Cross(w); got != (Vec3{-3, 6, -3}) {
		t.Fatalf("Cross = %v", got)
	}
	n := Vec3{3, 0, 4}.Normalize()
	if math.Abs(n.Len()-1) > 1e-12 {
		t.Fatalf("Normalize len = %v", n.Len())
	}
	if (Vec3{}).Normalize() != (Vec3{}) {
		t.Fatal("zero normalize must stay zero")
	}
}

func TestMatIdentity(t *testing.T) {
	v := Vec3{1, -2, 3}
	got, w := Identity().TransformPoint(v)
	if got != v || w != 1 {
		t.Fatalf("identity transform = %v w=%v", got, w)
	}
}

func TestMatMulAssociative(t *testing.T) {
	a := RotateY(0.5)
	b := Translate(Vec3{1, 2, 3})
	c := RotateY(-0.2)
	l := a.Mul(b).Mul(c)
	r := a.Mul(b.Mul(c))
	for i := range l {
		if math.Abs(l[i]-r[i]) > 1e-12 {
			t.Fatalf("matrix mul not associative at %d: %v vs %v", i, l[i], r[i])
		}
	}
}

func TestLookAtMapsCenterToAxis(t *testing.T) {
	view := LookAt(Vec3{0, 0, 5}, Vec3{}, Vec3{0, 1, 0})
	p, _ := view.TransformPoint(Vec3{})
	if math.Abs(p.X) > 1e-12 || math.Abs(p.Y) > 1e-12 {
		t.Fatalf("center not on view axis: %v", p)
	}
	if p.Z >= 0 {
		t.Fatalf("center should be in front (negative Z in view space): %v", p)
	}
}

func TestPerspectiveDepthOrdering(t *testing.T) {
	cam := DefaultCamera()
	vp := cam.viewProjection(1)
	nearPt, _ := vp.TransformPoint(Vec3{0.5, 0.5, 0.5})
	farther := cam.Eye.Add(Vec3{0.5, 0.5, 0.5}.Sub(cam.Eye).Scale(2))
	farPt, _ := vp.TransformPoint(farther)
	if nearPt.Z >= farPt.Z {
		t.Fatalf("depth ordering wrong: near %v far %v", nearPt.Z, farPt.Z)
	}
}

func TestFramebufferClearAndSet(t *testing.T) {
	fb := NewFramebuffer(8, 8)
	fb.Clear(Blue)
	if fb.At(3, 3) != Blue {
		t.Fatalf("clear color = %v", fb.At(3, 3))
	}
	fb.Set(1, 2, Red)
	if fb.At(1, 2) != Red {
		t.Fatal("set failed")
	}
	fb.Set(-1, 0, Red) // out of bounds must not panic
	fb.Set(100, 100, Red)
}

func TestFramebufferDiffAndChecksum(t *testing.T) {
	a := NewFramebuffer(16, 16)
	a.Clear(Black)
	b := a.Clone()
	if a.DiffPixels(b) != 0 || a.Checksum() != b.Checksum() {
		t.Fatal("identical buffers differ")
	}
	b.Set(5, 5, White)
	if a.DiffPixels(b) != 1 {
		t.Fatalf("diff = %d, want 1", a.DiffPixels(b))
	}
	if a.Checksum() == b.Checksum() {
		t.Fatal("checksum blind to pixel change")
	}
}

// unitTriangle returns a scene with one triangle facing the default camera.
func unitTriangle() *Scene {
	return &Scene{Meshes: []*Mesh{{
		Vertices:  []Vec3{{0, 0, 0.5}, {1, 0, 0.5}, {0.5, 1, 0.5}},
		Triangles: [][3]int32{{0, 1, 2}},
		Color:     Red,
	}}}
}

func TestRenderTrianglePaintsPixels(t *testing.T) {
	fb := NewFramebuffer(64, 64)
	Render(fb, DefaultCamera(), unitTriangle())
	painted := 0
	for y := 0; y < fb.H; y++ {
		for x := 0; x < fb.W; x++ {
			if fb.At(x, y) != Black {
				painted++
			}
		}
	}
	if painted < 50 {
		t.Fatalf("painted %d pixels, want a visible triangle", painted)
	}
}

func TestRenderDeterministic(t *testing.T) {
	fb1 := NewFramebuffer(64, 64)
	fb2 := NewFramebuffer(64, 64)
	s := unitTriangle()
	cam := DefaultCamera()
	Render(fb1, cam, s)
	Render(fb2, cam, s)
	if fb1.Checksum() != fb2.Checksum() {
		t.Fatal("identical render produced different pixels")
	}
}

func TestRenderViewpointChangesImage(t *testing.T) {
	fb1 := NewFramebuffer(64, 64)
	fb2 := NewFramebuffer(64, 64)
	s := unitTriangle()
	cam := DefaultCamera()
	Render(fb1, cam, s)
	cam.Eye = Vec3{-1.8, 1.4, 2.2}
	Render(fb2, cam, s)
	if fb1.Checksum() == fb2.Checksum() {
		t.Fatal("moving the camera did not change the image")
	}
}

func TestDepthOcclusion(t *testing.T) {
	// A red triangle in front of a green one; the centre pixel must be red.
	s := &Scene{Meshes: []*Mesh{
		{
			Vertices:  []Vec3{{-2, -2, 0}, {2, -2, 0}, {0, 2, 0}},
			Triangles: [][3]int32{{0, 1, 2}},
			Color:     Green,
		},
		{
			Vertices:  []Vec3{{-2, -2, 2}, {2, -2, 2}, {0, 2, 2}},
			Triangles: [][3]int32{{0, 1, 2}},
			Color:     Red,
		},
	}}
	cam := Camera{Eye: Vec3{0, 0, 6}, Center: Vec3{}, Up: Vec3{0, 1, 0}, FovY: math.Pi / 3, Near: 0.1, Far: 50}
	fb := NewFramebuffer(64, 64)
	Render(fb, cam, s)
	got := fb.At(32, 40)
	if got.R <= got.G {
		t.Fatalf("front triangle lost depth test: %+v", got)
	}
}

func TestBehindCameraCulled(t *testing.T) {
	s := &Scene{Meshes: []*Mesh{{
		Vertices:  []Vec3{{0, 0, 50}, {1, 0, 50}, {0.5, 1, 50}}, // behind eye at z=6 looking -z
		Triangles: [][3]int32{{0, 1, 2}},
		Color:     Red,
	}}}
	cam := Camera{Eye: Vec3{0, 0, 6}, Center: Vec3{}, Up: Vec3{0, 1, 0}, FovY: math.Pi / 3, Near: 0.1, Far: 50}
	fb := NewFramebuffer(32, 32)
	Render(fb, cam, s)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if fb.At(x, y) != Black {
				t.Fatalf("geometry behind camera rendered at %d,%d", x, y)
			}
		}
	}
}

func TestPointGlyphs(t *testing.T) {
	s := &Scene{Points: []*PointCloud{{
		Points: []Vec3{{0.5, 0.5, 0.5}},
		Color:  White,
		Size:   3,
	}}}
	fb := NewFramebuffer(64, 64)
	Render(fb, DefaultCamera(), s)
	painted := 0
	for y := 0; y < fb.H; y++ {
		for x := 0; x < fb.W; x++ {
			if fb.At(x, y) != Black {
				painted++
			}
		}
	}
	// Diamond of size 3 = 2*3^2+2*3+1 = 25 pixels.
	if painted != 25 {
		t.Fatalf("glyph painted %d pixels, want 25", painted)
	}
}

func TestLinesDrawn(t *testing.T) {
	s := &Scene{Lines: []*Lines{{
		Segments: [][2]Vec3{{{0, 0, 0}, {1, 1, 1}}},
		Color:    Green,
	}}}
	fb := NewFramebuffer(64, 64)
	Render(fb, DefaultCamera(), s)
	painted := 0
	for i := 0; i < len(fb.Pix); i += 4 {
		if fb.Pix[i+1] > 0 {
			painted++
		}
	}
	if painted < 10 {
		t.Fatalf("line painted %d pixels", painted)
	}
}

func TestSceneAccounting(t *testing.T) {
	s := unitTriangle()
	s.Points = []*PointCloud{{Points: make([]Vec3, 10)}}
	s.Lines = []*Lines{{Segments: make([][2]Vec3, 5)}}
	if got := s.TriangleCount(); got != 1 {
		t.Fatalf("TriangleCount = %d", got)
	}
	want := 3*24 + 1*12 + 10*24 + 5*48
	if got := s.GeometryBytes(); got != want {
		t.Fatalf("GeometryBytes = %d, want %d", got, want)
	}
}

func TestColorShadeClamps(t *testing.T) {
	c := Color{200, 100, 50, 255}
	if got := c.Shade(2); got != (Color{200, 100, 50, 255}) {
		t.Fatalf("over-shade = %+v", got)
	}
	if got := c.Shade(-1); got != (Color{0, 0, 0, 255}) {
		t.Fatalf("negative shade = %+v", got)
	}
}

// Property: normalize always yields unit length (or zero).
func TestQuickNormalize(t *testing.T) {
	f := func(x, y, z float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(z) ||
			math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsInf(z, 0) {
			return true
		}
		v := Vec3{x, y, z}
		n := v.Normalize()
		l := n.Len()
		return l == 0 || math.Abs(l-1) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: cross product is orthogonal to both inputs.
func TestQuickCrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(v, 1e3)
		}
		a := Vec3{clamp(ax), clamp(ay), clamp(az)}
		b := Vec3{clamp(bx), clamp(by), clamp(bz)}
		c := a.Cross(b)
		scale := a.Len() * b.Len() * c.Len()
		if scale == 0 {
			return true
		}
		return math.Abs(c.Dot(a))/scale < 1e-9 && math.Abs(c.Dot(b))/scale < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
