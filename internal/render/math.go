// Package render is a deterministic software renderer: an RGBA framebuffer
// with a z-buffer, a perspective camera, and flat-shaded triangle/line/point
// rasterisation. It stands in for the graphics pipes of the SGI Onyx visual
// supercomputers in the paper: the experiments need real per-frame rendering
// cost, real pixels to compress (VizServer/vnc substrates) and geometry whose
// volume scales with dataset size.
package render

import "math"

// Vec3 is a 3-component vector.
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v · w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Len returns |v|.
func (v Vec3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v/|v|, or the zero vector if |v| == 0.
func (v Vec3) Normalize() Vec3 {
	l := v.Len()
	if l == 0 {
		return Vec3{}
	}
	return v.Scale(1 / l)
}

// Mat4 is a 4×4 matrix in row-major order.
type Mat4 [16]float64

// Identity returns the identity matrix.
func Identity() Mat4 {
	return Mat4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// Mul returns m × n.
func (m Mat4) Mul(n Mat4) Mat4 {
	var out Mat4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s := 0.0
			for k := 0; k < 4; k++ {
				s += m[r*4+k] * n[k*4+c]
			}
			out[r*4+c] = s
		}
	}
	return out
}

// TransformPoint applies m to (v, 1) and performs the perspective divide.
// The returned w is the clip-space w component, needed for near-plane tests.
func (m Mat4) TransformPoint(v Vec3) (out Vec3, w float64) {
	x := m[0]*v.X + m[1]*v.Y + m[2]*v.Z + m[3]
	y := m[4]*v.X + m[5]*v.Y + m[6]*v.Z + m[7]
	z := m[8]*v.X + m[9]*v.Y + m[10]*v.Z + m[11]
	w = m[12]*v.X + m[13]*v.Y + m[14]*v.Z + m[15]
	if w != 0 {
		inv := 1 / w
		return Vec3{x * inv, y * inv, z * inv}, w
	}
	return Vec3{x, y, z}, w
}

// LookAt builds a right-handed view matrix with the camera at eye looking at
// center with the given up vector.
func LookAt(eye, center, up Vec3) Mat4 {
	f := center.Sub(eye).Normalize()
	s := f.Cross(up.Normalize()).Normalize()
	u := s.Cross(f)
	return Mat4{
		s.X, s.Y, s.Z, -s.Dot(eye),
		u.X, u.Y, u.Z, -u.Dot(eye),
		-f.X, -f.Y, -f.Z, f.Dot(eye),
		0, 0, 0, 1,
	}
}

// Perspective builds a perspective projection with the given vertical field
// of view (radians), aspect ratio and near/far planes.
func Perspective(fovY, aspect, near, far float64) Mat4 {
	t := 1 / math.Tan(fovY/2)
	return Mat4{
		t / aspect, 0, 0, 0,
		0, t, 0, 0,
		0, 0, (far + near) / (near - far), 2 * far * near / (near - far),
		0, 0, -1, 0,
	}
}

// RotateY returns a rotation matrix about the Y axis (radians).
func RotateY(a float64) Mat4 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat4{
		c, 0, s, 0,
		0, 1, 0, 0,
		-s, 0, c, 0,
		0, 0, 0, 1,
	}
}

// Translate returns a translation matrix.
func Translate(v Vec3) Mat4 {
	return Mat4{
		1, 0, 0, v.X,
		0, 1, 0, v.Y,
		0, 0, 1, v.Z,
		0, 0, 0, 1,
	}
}
