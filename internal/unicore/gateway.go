package unicore

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Op enumerates gateway operations. Every operation — including the VISIT
// steering stream — enters the protected domain through the gateway's single
// server port.
type Op uint8

// Gateway operations.
const (
	OpConsign Op = iota + 1
	OpStatus
	OpOutcome
	OpOpenVISITChannel
	OpSetVISITMaster
)

// request is the single gob frame a client sends per connection; UNICORE
// operations are "separate transactions that do not require a stateful
// connection" (section 3.3).
type request struct {
	User  string
	Token string
	Op    Op
	Vsite string
	AJO   *AJO
	JobID string
	// VizName and VizPassword configure VISIT channel operations.
	VizName     string
	VizPassword string
}

// response answers every operation except OpOpenVISITChannel (which switches
// to a raw stream after a one-byte status).
type response struct {
	OK      bool
	Err     string
	Status  JobStatus
	Outcome *Outcome
}

// channel status bytes.
const (
	chanOK  byte = 0x00
	chanErr byte = 0x01
)

// Gateway is the single point of entry of a protected domain: it
// authenticates every request (single sign-on: one token per user covers
// job management and steering), routes to the NJS of the requested Vsite,
// and carries VISIT steering streams over its own port.
type Gateway struct {
	mu     sync.RWMutex
	users  map[string]string // user -> token
	vsites map[string]*NJS

	stats  GatewayStats
	closed chan struct{}
	once   sync.Once
}

// GatewayStats counts gateway activity; the single-port experiment reads
// Connections and ChannelsOpened.
type GatewayStats struct {
	Connections    uint64
	AuthFailures   uint64
	Consignments   uint64
	ChannelsOpened uint64
}

// NewGateway returns an empty gateway.
func NewGateway() *Gateway {
	return &Gateway{
		users:  make(map[string]string),
		vsites: make(map[string]*NJS),
		closed: make(chan struct{}),
	}
}

// AddUser registers a user with its sign-on token.
func (g *Gateway) AddUser(user, token string) {
	g.mu.Lock()
	g.users[user] = token
	g.mu.Unlock()
}

// AddVsite registers the NJS serving a Vsite behind this gateway.
func (g *Gateway) AddVsite(n *NJS) {
	g.mu.Lock()
	g.vsites[n.Vsite()] = n
	g.mu.Unlock()
}

// Stats returns a copy of the counters.
func (g *Gateway) Stats() GatewayStats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.stats
}

// Serve accepts client connections on the gateway's one listener.
func (g *Gateway) Serve(l net.Listener) error {
	go func() {
		<-g.closed
		l.Close()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-g.closed:
				return nil
			default:
				return err
			}
		}
		go g.ServeConn(conn)
	}
}

// ServeConn handles one client transaction.
func (g *Gateway) ServeConn(conn net.Conn) error {
	g.count(func(s *GatewayStats) { s.Connections++ })

	dec := gob.NewDecoder(conn)
	var req request
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	if err := dec.Decode(&req); err != nil {
		conn.Close()
		return err
	}
	conn.SetReadDeadline(time.Time{})

	if !g.authenticate(req.User, req.Token) {
		g.count(func(s *GatewayStats) { s.AuthFailures++ })
		g.reply(conn, &req, &response{Err: "authentication failed"})
		conn.Close()
		return errors.New("unicore: authentication failed")
	}

	njs := g.lookupVsite(req.Vsite)
	if njs == nil && req.Op != OpConsign {
		// Non-consign ops may omit Vsite if the job id is globally unique;
		// search all Vsites.
		njs = g.findJob(req.JobID)
	}
	if njs == nil {
		g.reply(conn, &req, &response{Err: fmt.Sprintf("no Vsite %q behind this gateway", req.Vsite)})
		conn.Close()
		return nil
	}

	switch req.Op {
	case OpConsign:
		err := njs.Consign(req.AJO)
		if err == nil {
			g.count(func(s *GatewayStats) { s.Consignments++ })
		}
		g.reply(conn, &req, errResponse(err))
		conn.Close()

	case OpStatus:
		g.reply(conn, &req, &response{OK: true, Status: njs.Status(req.JobID)})
		conn.Close()

	case OpOutcome:
		out, err := njs.Outcome(req.JobID)
		if err != nil {
			g.reply(conn, &req, errResponse(err))
		} else {
			g.reply(conn, &req, &response{OK: true, Status: out.Status, Outcome: out})
		}
		conn.Close()

	case OpSetVISITMaster:
		g.reply(conn, &req, errResponse(njs.SetVISITMaster(req.JobID, req.VizName)))
		conn.Close()

	case OpOpenVISITChannel:
		// Switch the connection to a raw VISIT stream: one status byte,
		// then the conn belongs to the job's steering proxy. The client
		// must already be running its visit.Server on the other end.
		if err := njs.HasVISITProxy(req.JobID); err != nil {
			g.reply(conn, &req, errResponse(err))
			conn.Close()
			return nil
		}
		if _, err := conn.Write([]byte{chanOK}); err != nil {
			conn.Close()
			return err
		}
		g.count(func(s *GatewayStats) { s.ChannelsOpened++ })
		if _, err := njs.AttachVISITViz(req.JobID, req.VizName, conn, req.VizPassword); err != nil {
			conn.Close()
			return err
		}
		// The proxy now owns the conn; it will be closed when the broker
		// detaches the participant.

	default:
		g.reply(conn, &req, &response{Err: "unknown operation"})
		conn.Close()
	}
	return nil
}

func errResponse(err error) *response {
	if err != nil {
		return &response{Err: err.Error()}
	}
	return &response{OK: true}
}

// reply writes the response frame; channel ops never reach here.
func (g *Gateway) reply(conn net.Conn, req *request, resp *response) {
	if req.Op == OpOpenVISITChannel {
		msg := resp.Err
		conn.Write(append([]byte{chanErr}, msg...))
		return
	}
	enc := gob.NewEncoder(conn)
	conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	enc.Encode(resp)
	conn.SetWriteDeadline(time.Time{})
}

func (g *Gateway) authenticate(user, token string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	want, ok := g.users[user]
	return ok && want == token && token != ""
}

func (g *Gateway) lookupVsite(vsite string) *NJS {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.vsites[vsite]
}

// findJob locates the NJS holding a job when the request names no Vsite.
func (g *Gateway) findJob(jobID string) *NJS {
	if jobID == "" {
		return nil
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, n := range g.vsites {
		if n.Status(jobID) != StatusUnknown {
			return n
		}
	}
	return nil
}

// Close stops the gateway.
func (g *Gateway) Close() {
	g.once.Do(func() { close(g.closed) })
}

func (g *Gateway) count(f func(*GatewayStats)) {
	g.mu.Lock()
	f(&g.stats)
	g.mu.Unlock()
}
