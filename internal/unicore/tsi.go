package unicore

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/visit"
)

// AppFunc is an application the TSI can run. It stands in for the real
// executables a production TSI would exec: the showcase simulations register
// themselves under their executable names. ctx gives the task its arguments,
// workspace and (for steered applications) the VISIT proxy endpoint.
type AppFunc func(ctx *TaskContext) error

// TaskContext is handed to a running application.
type TaskContext struct {
	// JobID identifies the surrounding job.
	JobID string
	// Args are the task arguments.
	Args []string
	// Env is the task environment.
	Env map[string]string
	// Stdout collects application output into the job log.
	Stdout *bytes.Buffer
	// Workspace is the job's file space (import/export tasks use it too).
	Workspace *Workspace
	// VISITDialer is non-nil when the job carries a VISIT proxy: the steered
	// application dials it (visit.NewSim) to reach its visualization(s)
	// through UNICORE without needing any modification, the portability
	// goal of section 3.1.
	VISITDialer visit.Dialer
}

// Workspace is the per-job file space (Uspace in UNICORE terms).
type Workspace struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{files: make(map[string][]byte)}
}

// Put stores a file.
func (w *Workspace) Put(name string, data []byte) {
	w.mu.Lock()
	w.files[name] = append([]byte(nil), data...)
	w.mu.Unlock()
}

// Get retrieves a file.
func (w *Workspace) Get(name string) ([]byte, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	b, ok := w.files[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), b...), true
}

// List returns the stored file names, sorted.
func (w *Workspace) List() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	names := make([]string, 0, len(w.files))
	for n := range w.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TSI is the Target System Interface: "a Target System Interface (TSI),
// which is available as a Java application or a set of Perl scripts,
// performs the communication with the NJS" and runs the incarnated work on
// the HPC platform. This TSI executes registered AppFuncs; the paper's
// VISIT extension modifies only this component, preserved here by keeping
// the proxy hooks inside the TSI.
type TSI struct {
	mu   sync.RWMutex
	apps map[string]AppFunc
}

// NewTSI returns a TSI with no applications registered.
func NewTSI() *TSI {
	return &TSI{apps: make(map[string]AppFunc)}
}

// RegisterApp makes an application available under an executable name.
func (t *TSI) RegisterApp(name string, fn AppFunc) {
	t.mu.Lock()
	t.apps[name] = fn
	t.mu.Unlock()
}

// lookup returns the registered application.
func (t *TSI) lookup(name string) (AppFunc, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	fn, ok := t.apps[name]
	if !ok {
		return nil, fmt.Errorf("unicore: no application %q on this Vsite", name)
	}
	return fn, nil
}

// Incarnate renders one task as the target-system script the NJS would
// submit: "the AJOs are translated into Perl scripts for a target machine.
// This process is known as incarnation in the UNICORE model; it allows the
// details of the scripts used to run the workflow to be hidden from the
// application" (section 2.2). The script text is recorded in the job log so
// the abstraction is inspectable.
func (t *TSI) Incarnate(jobID string, task *Task) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#!/bin/sh\n# UNICORE TSI incarnation\n# job %s task %q kind %s\n", jobID, task.Name, task.Kind)
	fmt.Fprintf(&b, "export UC_JOBID=%s\n", jobID)
	keys := make([]string, 0, len(task.Env))
	for k := range task.Env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "export %s=%s\n", k, task.Env[k])
	}
	switch task.Kind {
	case TaskExecute:
		fmt.Fprintf(&b, "exec %s", task.Executable)
		for _, a := range task.Args {
			fmt.Fprintf(&b, " %q", a)
		}
		b.WriteString("\n")
	case TaskImportFile:
		fmt.Fprintf(&b, "cat > $UC_USPACE/%s  # %d bytes staged in\n", task.FileName, len(task.Data))
	case TaskExportFile:
		fmt.Fprintf(&b, "uc_export $UC_USPACE/%s\n", task.FileName)
	case TaskStartVISITProxy:
		fmt.Fprintf(&b, "exec visit-proxy --job %s --single-port\n", jobID)
	}
	return b.String()
}

// Execute runs one incarnated task in the given context.
func (t *TSI) Execute(ctx *TaskContext, task *Task) error {
	switch task.Kind {
	case TaskExecute:
		fn, err := t.lookup(task.Executable)
		if err != nil {
			return err
		}
		ctx.Args = task.Args
		ctx.Env = task.Env
		return fn(ctx)
	case TaskImportFile:
		ctx.Workspace.Put(task.FileName, task.Data)
		return nil
	case TaskExportFile:
		if _, ok := ctx.Workspace.Get(task.FileName); !ok {
			return fmt.Errorf("unicore: export: no file %q in workspace", task.FileName)
		}
		return nil
	case TaskStartVISITProxy:
		// Handled by the NJS (it owns the proxy lifecycle); nothing to run.
		return nil
	default:
		return fmt.Errorf("unicore: cannot execute task kind %d", task.Kind)
	}
}
