package unicore

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/visit"
)

// NJS is the Network Job Supervisor of one Vsite: it accepts consigned AJOs
// from the gateway, incarnates them through the TSI, runs them, and tracks
// their lifecycle. For jobs carrying a VISIT proxy task it owns the proxy —
// a vbroker embedded at the target system, per section 3.3: "this
// functionality has been moved into the VISIT proxy-server running on the
// UNICORE target system. This has the advantage that all users participating
// in the collaboration have to authenticate to the UNICORE system."
type NJS struct {
	vsite string
	tsi   *TSI

	mu   sync.Mutex
	jobs map[string]*job
}

// job is one consigned AJO with its runtime state.
type job struct {
	ajo       *AJO
	status    JobStatus
	log       []string
	err       string
	workspace *Workspace
	// proxy is non-nil while a VISIT proxy runs for this job.
	proxy *visitProxy
	done  chan struct{}
}

// visitProxy is the target-system end of the VISIT-UNICORE extension: the
// steered simulation dials its in-memory listener (never a new network
// port), and remote participants are attached as visualizations through
// gateway channels.
type visitProxy struct {
	broker   *visit.Broker
	listener *netsim.MemListener
	nextViz  int
	mu       sync.Mutex
}

// NewNJS returns an NJS for a Vsite using the given TSI.
func NewNJS(vsite string, tsi *TSI) *NJS {
	return &NJS{vsite: vsite, tsi: tsi, jobs: make(map[string]*job)}
}

// Vsite returns the Vsite name this NJS serves.
func (n *NJS) Vsite() string { return n.vsite }

// Consign accepts an AJO and starts executing it asynchronously.
func (n *NJS) Consign(a *AJO) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if a.Vsite != n.vsite {
		return fmt.Errorf("unicore: AJO targets Vsite %q, this NJS serves %q", a.Vsite, n.vsite)
	}
	n.mu.Lock()
	if _, dup := n.jobs[a.ID]; dup {
		n.mu.Unlock()
		return fmt.Errorf("unicore: job %s already consigned", a.ID)
	}
	j := &job{
		ajo:       a,
		status:    StatusConsigned,
		workspace: NewWorkspace(),
		done:      make(chan struct{}),
	}
	n.jobs[a.ID] = j
	n.mu.Unlock()

	go n.run(j)
	return nil
}

// run executes the job's tasks in order.
func (n *NJS) run(j *job) {
	defer close(j.done)
	n.setStatus(j, StatusRunning)

	// Start the VISIT proxy first if the job has one, so the application
	// task can reach it.
	var proxyTask *Task
	for i := range j.ajo.Tasks {
		if j.ajo.Tasks[i].Kind == TaskStartVISITProxy {
			proxyTask = &j.ajo.Tasks[i]
			break
		}
	}
	if proxyTask != nil {
		p := &visitProxy{
			broker:   visit.NewBroker(visit.BrokerConfig{Password: proxyTask.VISITPassword, VizTimeout: 2 * time.Second}),
			listener: netsim.NewMemListener(netsim.Loopback),
		}
		go p.broker.Serve(p.listener)
		n.mu.Lock()
		j.proxy = p
		n.mu.Unlock()
		n.appendLog(j, n.tsi.Incarnate(j.ajo.ID, proxyTask))
		defer func() {
			p.broker.Close()
			p.listener.Close()
		}()
	}

	for i := range j.ajo.Tasks {
		task := &j.ajo.Tasks[i]
		if task.Kind == TaskStartVISITProxy {
			continue // already running
		}
		script := n.tsi.Incarnate(j.ajo.ID, task)
		n.appendLog(j, script)

		ctx := &TaskContext{
			JobID:     j.ajo.ID,
			Stdout:    &bytes.Buffer{},
			Workspace: j.workspace,
		}
		if j.proxy != nil {
			p := j.proxy
			pw := proxyTask.VISITPassword
			_ = pw
			ctx.VISITDialer = func() (net.Conn, error) { return p.listener.Dial() }
		}
		err := n.tsi.Execute(ctx, task)
		if out := ctx.Stdout.String(); out != "" {
			n.appendLog(j, fmt.Sprintf("[%s stdout]\n%s", task.Name, out))
		}
		if err != nil {
			n.mu.Lock()
			j.err = err.Error()
			n.mu.Unlock()
			n.setStatus(j, StatusFailed)
			return
		}
	}
	n.setStatus(j, StatusDone)
}

func (n *NJS) setStatus(j *job, s JobStatus) {
	n.mu.Lock()
	j.status = s
	n.mu.Unlock()
}

func (n *NJS) appendLog(j *job, entry string) {
	n.mu.Lock()
	j.log = append(j.log, entry)
	n.mu.Unlock()
}

// Status returns the lifecycle state of a job.
func (n *NJS) Status(jobID string) JobStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	j, ok := n.jobs[jobID]
	if !ok {
		return StatusUnknown
	}
	return j.status
}

// Wait blocks until the job finishes or the timeout elapses.
func (n *NJS) Wait(jobID string, timeout time.Duration) error {
	n.mu.Lock()
	j, ok := n.jobs[jobID]
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("unicore: no job %s", jobID)
	}
	select {
	case <-j.done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("unicore: job %s still running after %v", jobID, timeout)
	}
}

// Outcome fetches the job's current outcome (logs, exported files).
func (n *NJS) Outcome(jobID string) (*Outcome, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	j, ok := n.jobs[jobID]
	if !ok {
		return nil, fmt.Errorf("unicore: no job %s", jobID)
	}
	out := &Outcome{
		Status: j.status,
		Log:    append([]string(nil), j.log...),
		Files:  make(map[string][]byte),
		Err:    j.err,
	}
	for _, t := range j.ajo.Tasks {
		if t.Kind == TaskExportFile {
			if data, ok := j.workspace.Get(t.FileName); ok {
				out.Files[t.FileName] = data
			}
		}
	}
	return out, nil
}

// HasVISITProxy reports whether the job exists and runs a VISIT proxy.
func (n *NJS) HasVISITProxy(jobID string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	j, ok := n.jobs[jobID]
	if !ok {
		return fmt.Errorf("unicore: no job %s", jobID)
	}
	if j.proxy == nil {
		return fmt.Errorf("unicore: job %s has no VISIT proxy", jobID)
	}
	return nil
}

// AttachVISITViz connects one remote participant (a gateway channel conn,
// ultimately a visit.Server at the user's site) to the job's VISIT proxy as
// a named visualization. The first participant becomes the steering master.
func (n *NJS) AttachVISITViz(jobID, vizName string, conn net.Conn, password string) (string, error) {
	n.mu.Lock()
	j, ok := n.jobs[jobID]
	p := (*visitProxy)(nil)
	if ok {
		p = j.proxy
	}
	n.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("unicore: no job %s", jobID)
	}
	if p == nil {
		return "", fmt.Errorf("unicore: job %s has no VISIT proxy", jobID)
	}
	if vizName == "" {
		p.mu.Lock()
		p.nextViz++
		vizName = fmt.Sprintf("viz-%d", p.nextViz)
		p.mu.Unlock()
	}

	// The channel conn can be handed out exactly once: a broken stream needs
	// a fresh gateway channel. Sim serialises dial calls under its own lock,
	// so a plain flag suffices.
	used := false
	dial := func() (net.Conn, error) {
		if used {
			return nil, fmt.Errorf("unicore: gateway channel cannot be redialled; open a new channel")
		}
		used = true
		return conn, nil
	}
	if err := p.broker.AttachViz(vizName, dial, password); err != nil {
		return "", err
	}
	return vizName, nil
}

// SetVISITMaster moves the steering master among attached participants.
func (n *NJS) SetVISITMaster(jobID, vizName string) error {
	n.mu.Lock()
	j, ok := n.jobs[jobID]
	n.mu.Unlock()
	if !ok || j.proxy == nil {
		return fmt.Errorf("unicore: no VISIT proxy for job %s", jobID)
	}
	return j.proxy.broker.SetMaster(vizName)
}

// VISITBrokerStats exposes the proxy's multiplexer counters for experiments.
func (n *NJS) VISITBrokerStats(jobID string) (visit.BrokerStats, error) {
	n.mu.Lock()
	j, ok := n.jobs[jobID]
	n.mu.Unlock()
	if !ok || j.proxy == nil {
		return visit.BrokerStats{}, fmt.Errorf("unicore: no VISIT proxy for job %s", jobID)
	}
	return j.proxy.broker.Stats(), nil
}
