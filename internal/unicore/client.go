package unicore

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/visit"
)

// Client is the user-side UNICORE client: it constructs, submits and
// controls jobs through a gateway, and — with the VISIT extension — attaches
// steering participants to running jobs. Every method opens a fresh
// connection, performs one transaction and returns, matching UNICORE's
// stateless client model.
type Client struct {
	// Dial connects to the gateway's single port.
	Dial func() (net.Conn, error)
	// User and Token are the single sign-on credentials.
	User, Token string
	// Timeout bounds each transaction (default 10s).
	Timeout time.Duration
}

// NewClient returns a client for a gateway TCP address.
func NewClient(gatewayAddr, user, token string) *Client {
	return &Client{
		Dial:  func() (net.Conn, error) { return net.Dial("tcp", gatewayAddr) },
		User:  user,
		Token: token,
	}
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 10 * time.Second
}

// transact performs one request/response exchange.
func (c *Client) transact(req *request) (*response, error) {
	conn, err := c.Dial()
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(c.timeout()))

	req.User, req.Token = c.User, c.Token
	if err := gob.NewEncoder(conn).Encode(req); err != nil {
		return nil, err
	}
	var resp response
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return &resp, fmt.Errorf("unicore: %s", resp.Err)
	}
	return &resp, nil
}

// Consign submits an AJO.
func (c *Client) Consign(a *AJO) error {
	if a.Submitted.IsZero() {
		a.Submitted = time.Now()
	}
	_, err := c.transact(&request{Op: OpConsign, Vsite: a.Vsite, AJO: a})
	return err
}

// Status queries a job's lifecycle state.
func (c *Client) Status(jobID string) (JobStatus, error) {
	resp, err := c.transact(&request{Op: OpStatus, JobID: jobID})
	if err != nil {
		return StatusUnknown, err
	}
	return resp.Status, nil
}

// WaitStatus polls until the job reaches want (or a terminal state), with
// the given overall deadline.
func (c *Client) WaitStatus(jobID string, want JobStatus, deadline time.Duration) (JobStatus, error) {
	end := time.Now().Add(deadline)
	for {
		st, err := c.Status(jobID)
		if err != nil {
			return st, err
		}
		if st == want || st == StatusDone || st == StatusFailed {
			return st, nil
		}
		if time.Now().After(end) {
			return st, fmt.Errorf("unicore: job %s still %s after %v", jobID, st, deadline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Outcome fetches a job's logs and exported files.
func (c *Client) Outcome(jobID string) (*Outcome, error) {
	resp, err := c.transact(&request{Op: OpOutcome, JobID: jobID})
	if err != nil {
		return nil, err
	}
	return resp.Outcome, nil
}

// SetVISITMaster moves the steering master role among attached participants.
func (c *Client) SetVISITMaster(jobID, vizName string) error {
	_, err := c.transact(&request{Op: OpSetVISITMaster, JobID: jobID, VizName: vizName})
	return err
}

// OpenVISITChannel opens a steering stream to a running job through the
// gateway port and serves the given visit.Server on it: the user-side
// "proxy-client ... implemented as a client-plugin" of section 3.3. The
// participant appears to the job's proxy as visualization vizName; the first
// participant becomes master. The call returns when the stream ends.
func (c *Client) OpenVISITChannel(jobID, vizName, vizPassword string, server *visit.Server) error {
	conn, err := c.Dial()
	if err != nil {
		return err
	}
	conn.SetDeadline(time.Now().Add(c.timeout()))
	req := &request{
		Op: OpOpenVISITChannel, JobID: jobID,
		VizName: vizName, VizPassword: vizPassword,
		User: c.User, Token: c.Token,
	}
	if err := gob.NewEncoder(conn).Encode(req); err != nil {
		conn.Close()
		return err
	}
	// One raw status byte avoids any buffered over-read before the stream
	// switches to VISIT framing.
	var status [1]byte
	if _, err := io.ReadFull(conn, status[:]); err != nil {
		conn.Close()
		return err
	}
	if status[0] != chanOK {
		msg, _ := io.ReadAll(conn)
		conn.Close()
		return fmt.Errorf("unicore: channel rejected: %s", msg)
	}
	conn.SetDeadline(time.Time{})
	err = server.ServeConn(conn)
	if err == nil || errors.Is(err, io.EOF) {
		return nil
	}
	return err
}
