package unicore

import (
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/visit"
	"repro/internal/wire"
)

// testGrid stands up a gateway + one Vsite on a loopback TCP port.
func testGrid(t *testing.T) (gw *Gateway, tsi *TSI, addr string) {
	t.Helper()
	tsi = NewTSI()
	njs := NewNJS("JUELICH", tsi)
	gw = NewGateway()
	gw.AddVsite(njs)
	gw.AddUser("brooke", "token-1")

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go gw.Serve(l)
	t.Cleanup(gw.Close)
	return gw, tsi, l.Addr().String()
}

func TestAJOValidation(t *testing.T) {
	base := func() *AJO {
		return &AJO{ID: "j1", Vsite: "X", Tasks: []Task{{Kind: TaskExecute, Executable: "a"}}}
	}
	if err := base().Validate(); err != nil {
		t.Fatal(err)
	}
	a := base()
	a.ID = ""
	if a.Validate() == nil {
		t.Fatal("empty ID accepted")
	}
	a = base()
	a.Vsite = ""
	if a.Validate() == nil {
		t.Fatal("empty Vsite accepted")
	}
	a = base()
	a.Tasks = nil
	if a.Validate() == nil {
		t.Fatal("empty task list accepted")
	}
	a = base()
	a.Tasks[0].Executable = ""
	if a.Validate() == nil {
		t.Fatal("execute without executable accepted")
	}
	a = base()
	a.Tasks = append(a.Tasks, Task{Kind: TaskStartVISITProxy}, Task{Kind: TaskStartVISITProxy})
	if a.Validate() == nil {
		t.Fatal("two proxies accepted")
	}
	a = base()
	a.Tasks = append(a.Tasks, Task{Kind: TaskImportFile})
	if a.Validate() == nil {
		t.Fatal("import without name accepted")
	}
}

func TestIncarnationScripts(t *testing.T) {
	tsi := NewTSI()
	script := tsi.Incarnate("job-7", &Task{
		Kind: TaskExecute, Name: "run", Executable: "pepc",
		Args: []string{"--particles", "50000"},
		Env:  map[string]string{"OMP_NUM_THREADS": "8"},
	})
	for _, want := range []string{"#!/bin/sh", "UC_JOBID=job-7", "exec pepc", `"--particles"`, "OMP_NUM_THREADS=8"} {
		if !strings.Contains(script, want) {
			t.Fatalf("incarnation missing %q:\n%s", want, script)
		}
	}
	proxy := tsi.Incarnate("job-7", &Task{Kind: TaskStartVISITProxy})
	if !strings.Contains(proxy, "visit-proxy") || !strings.Contains(proxy, "--single-port") {
		t.Fatalf("proxy incarnation wrong:\n%s", proxy)
	}
}

func TestJobLifecycleThroughGateway(t *testing.T) {
	_, tsi, addr := testGrid(t)
	ran := make(chan []string, 1)
	tsi.RegisterApp("lb3d", func(ctx *TaskContext) error {
		ran <- ctx.Args
		fmt.Fprintf(ctx.Stdout, "lattice initialised\n")
		ctx.Workspace.Put("result.dat", []byte("phi-field"))
		return nil
	})

	c := NewClient(addr, "brooke", "token-1")
	ajo := &AJO{
		ID:    "job-1",
		Vsite: "JUELICH",
		Tasks: []Task{
			{Kind: TaskImportFile, Name: "stage-in", FileName: "input.dat", Data: []byte("params")},
			{Kind: TaskExecute, Name: "run", Executable: "lb3d", Args: []string{"--steps", "100"}},
			{Kind: TaskExportFile, Name: "stage-out", FileName: "result.dat"},
		},
	}
	if err := c.Consign(ajo); err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitStatus("job-1", StatusDone, 5*time.Second)
	if err != nil || st != StatusDone {
		t.Fatalf("status = %v, err %v", st, err)
	}
	select {
	case args := <-ran:
		if len(args) != 2 || args[1] != "100" {
			t.Fatalf("app args = %v", args)
		}
	default:
		t.Fatal("application never ran")
	}
	out, err := c.Outcome("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Files["result.dat"]) != "phi-field" {
		t.Fatalf("export missing: %+v", out.Files)
	}
	joined := strings.Join(out.Log, "\n")
	if !strings.Contains(joined, "exec lb3d") || !strings.Contains(joined, "lattice initialised") {
		t.Fatalf("log missing incarnation/stdout:\n%s", joined)
	}
}

func TestAuthFailure(t *testing.T) {
	gw, _, addr := testGrid(t)
	c := NewClient(addr, "brooke", "wrong-token")
	err := c.Consign(&AJO{ID: "j", Vsite: "JUELICH", Tasks: []Task{{Kind: TaskExecute, Executable: "x"}}})
	if err == nil || !strings.Contains(err.Error(), "authentication") {
		t.Fatalf("err = %v", err)
	}
	if gw.Stats().AuthFailures != 1 {
		t.Fatal("auth failure not counted")
	}
	// Unknown user too.
	c2 := NewClient(addr, "mallory", "token-1")
	if err := c2.Consign(&AJO{ID: "j2", Vsite: "JUELICH", Tasks: []Task{{Kind: TaskExecute, Executable: "x"}}}); err == nil {
		t.Fatal("unknown user accepted")
	}
}

func TestUnknownVsite(t *testing.T) {
	_, _, addr := testGrid(t)
	c := NewClient(addr, "brooke", "token-1")
	err := c.Consign(&AJO{ID: "j", Vsite: "NOWHERE", Tasks: []Task{{Kind: TaskExecute, Executable: "x"}}})
	if err == nil || !strings.Contains(err.Error(), "Vsite") {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateJobID(t *testing.T) {
	_, tsi, addr := testGrid(t)
	tsi.RegisterApp("noop", func(ctx *TaskContext) error { return nil })
	c := NewClient(addr, "brooke", "token-1")
	mk := func() *AJO {
		return &AJO{ID: "dup", Vsite: "JUELICH", Tasks: []Task{{Kind: TaskExecute, Executable: "noop"}}}
	}
	if err := c.Consign(mk()); err != nil {
		t.Fatal(err)
	}
	if err := c.Consign(mk()); err == nil {
		t.Fatal("duplicate job ID accepted")
	}
}

func TestFailingApplication(t *testing.T) {
	_, tsi, addr := testGrid(t)
	tsi.RegisterApp("broken", func(ctx *TaskContext) error {
		return fmt.Errorf("segmentation fault (simulated)")
	})
	c := NewClient(addr, "brooke", "token-1")
	ajo := &AJO{ID: "jf", Vsite: "JUELICH", Tasks: []Task{{Kind: TaskExecute, Executable: "broken"}}}
	if err := c.Consign(ajo); err != nil {
		t.Fatal(err)
	}
	st, _ := c.WaitStatus("jf", StatusDone, 5*time.Second)
	if st != StatusFailed {
		t.Fatalf("status = %v, want FAILED", st)
	}
	out, _ := c.Outcome("jf")
	if !strings.Contains(out.Err, "segmentation fault") {
		t.Fatalf("outcome err = %q", out.Err)
	}
}

func TestUnregisteredExecutableFails(t *testing.T) {
	_, _, addr := testGrid(t)
	c := NewClient(addr, "brooke", "token-1")
	ajo := &AJO{ID: "jx", Vsite: "JUELICH", Tasks: []Task{{Kind: TaskExecute, Executable: "ghost"}}}
	if err := c.Consign(ajo); err != nil {
		t.Fatal(err)
	}
	st, _ := c.WaitStatus("jx", StatusDone, 5*time.Second)
	if st != StatusFailed {
		t.Fatalf("status = %v", st)
	}
}

func TestMissingExportFails(t *testing.T) {
	_, tsi, addr := testGrid(t)
	tsi.RegisterApp("noop", func(ctx *TaskContext) error { return nil })
	c := NewClient(addr, "brooke", "token-1")
	ajo := &AJO{ID: "je", Vsite: "JUELICH", Tasks: []Task{
		{Kind: TaskExecute, Executable: "noop"},
		{Kind: TaskExportFile, FileName: "never-written.dat"},
	}}
	if err := c.Consign(ajo); err != nil {
		t.Fatal(err)
	}
	st, _ := c.WaitStatus("je", StatusDone, 5*time.Second)
	if st != StatusFailed {
		t.Fatalf("status = %v", st)
	}
}

func TestWorkspace(t *testing.T) {
	w := NewWorkspace()
	w.Put("b.txt", []byte("bee"))
	w.Put("a.txt", []byte("ay"))
	if got, ok := w.Get("a.txt"); !ok || string(got) != "ay" {
		t.Fatalf("get = %q %v", got, ok)
	}
	if _, ok := w.Get("c.txt"); ok {
		t.Fatal("phantom file")
	}
	if names := w.List(); len(names) != 2 || names[0] != "a.txt" {
		t.Fatalf("list = %v", names)
	}
	// Mutating the returned slice must not corrupt the workspace.
	got, _ := w.Get("a.txt")
	got[0] = 'X'
	again, _ := w.Get("a.txt")
	if string(again) != "ay" {
		t.Fatal("workspace aliasing bug")
	}
}

// steeredParticipant is one collaborating site for the VISIT extension test.
type steeredParticipant struct {
	server *visit.Server
	frames chan float64
	stop   atomic.Bool
	recvs  atomic.Int64
}

func newSteeredParticipant(t *testing.T, password string) *steeredParticipant {
	p := &steeredParticipant{frames: make(chan float64, 256)}
	p.server = visit.NewServer(visit.ServerConfig{Password: password})
	p.server.HandleSend(1, func(m *wire.Message) error {
		v, err := m.AsFloat64s()
		if err != nil {
			return err
		}
		select {
		case p.frames <- v[0]:
		default:
		}
		return nil
	})
	p.server.HandleRecv(2, func() (*wire.Message, error) {
		p.recvs.Add(1)
		stop := 0.0
		if p.stop.Load() {
			stop = 1
		}
		return &wire.Message{
			Header:   wire.Header{Kind: wire.KindFloat64, Count: 1},
			Float64s: []float64{stop},
		}, nil
	})
	t.Cleanup(p.server.Close)
	return p
}

func (p *steeredParticipant) waitFrame(t *testing.T) float64 {
	t.Helper()
	select {
	case v := <-p.frames:
		return v
	case <-time.After(5 * time.Second):
		t.Fatal("no frame received")
		return 0
	}
}

func TestVISITSteeringThroughGateway(t *testing.T) {
	gw, tsi, addr := testGrid(t)

	// The steered application: a PEPC stand-in that ships a frame counter
	// and polls a stop parameter, all through its UNICORE-provided proxy.
	appDone := make(chan error, 1)
	tsi.RegisterApp("pepc", func(ctx *TaskContext) error {
		if ctx.VISITDialer == nil {
			return fmt.Errorf("no VISIT proxy available")
		}
		sim := visit.NewSim(ctx.VISITDialer, "viz-pw")
		defer sim.Close()
		var err error
		for i := 0; i < 2000; i++ {
			sim.SendFloat64s(1, []float64{float64(i)}, 200*time.Millisecond)
			if m, rerr := sim.Recv(2, 200*time.Millisecond); rerr == nil {
				if v, _ := m.AsFloat64s(); len(v) == 1 && v[0] == 1 {
					fmt.Fprintf(ctx.Stdout, "stopped by steerer at step %d\n", i)
					appDone <- nil
					return nil
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
		err = fmt.Errorf("never steered to stop")
		appDone <- err
		return err
	})

	c := NewClient(addr, "brooke", "token-1")
	ajo := &AJO{
		ID:    "steered-1",
		Vsite: "JUELICH",
		Tasks: []Task{
			{Kind: TaskStartVISITProxy, Name: "proxy", VISITPassword: "viz-pw"},
			{Kind: TaskExecute, Name: "run", Executable: "pepc"},
		},
	}
	if err := c.Consign(ajo); err != nil {
		t.Fatal(err)
	}
	if st, err := c.WaitStatus("steered-1", StatusRunning, 5*time.Second); err != nil || st != StatusRunning {
		t.Fatalf("status = %v, %v", st, err)
	}

	// First participant (master) attaches through the gateway port.
	master := newSteeredParticipant(t, "viz-pw")
	go c.OpenVISITChannel("steered-1", "manchester", "viz-pw", master.server)
	master.waitFrame(t)

	// Second participant attaches: passive observer, sees the same frames.
	observer := newSteeredParticipant(t, "viz-pw")
	go c.OpenVISITChannel("steered-1", "phoenix", "viz-pw", observer.server)
	observer.waitFrame(t)

	// Frames keep flowing to both; only the master is consulted for params.
	master.waitFrame(t)
	observer.waitFrame(t)
	if master.recvs.Load() == 0 {
		t.Fatal("master never consulted for parameters")
	}
	if observer.recvs.Load() != 0 {
		t.Fatal("observer was consulted for parameters: broker leaked steering")
	}

	// Move the master role to phoenix (coordinated cooperative steering),
	// then steer the application to stop from there.
	if err := c.SetVISITMaster("steered-1", "phoenix"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for observer.recvs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("new master never consulted after handoff")
		}
		time.Sleep(5 * time.Millisecond)
	}
	observer.stop.Store(true)

	select {
	case err := <-appDone:
		if err != nil {
			t.Fatalf("application: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("application never stopped")
	}
	if st, err := c.WaitStatus("steered-1", StatusDone, 5*time.Second); err != nil || st != StatusDone {
		t.Fatalf("final status = %v, %v", st, err)
	}

	// The firewall-friendliness claim: both steering channels and all job
	// management flowed through the gateway's single port.
	if got := gw.Stats().ChannelsOpened; got != 2 {
		t.Fatalf("ChannelsOpened = %d, want 2", got)
	}
	out, err := c.Outcome("steered-1")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(out.Log, "\n")
	if !strings.Contains(joined, "visit-proxy") || !strings.Contains(joined, "stopped by steerer") {
		t.Fatalf("log missing steering evidence:\n%s", joined)
	}
}

func TestVISITChannelRejectedForJobWithoutProxy(t *testing.T) {
	_, tsi, addr := testGrid(t)
	block := make(chan struct{})
	tsi.RegisterApp("noop", func(ctx *TaskContext) error { <-block; return nil })
	defer close(block)
	c := NewClient(addr, "brooke", "token-1")
	ajo := &AJO{ID: "plain", Vsite: "JUELICH", Tasks: []Task{{Kind: TaskExecute, Executable: "noop"}}}
	if err := c.Consign(ajo); err != nil {
		t.Fatal(err)
	}
	c.WaitStatus("plain", StatusRunning, 5*time.Second)
	p := newSteeredParticipant(t, "")
	err := c.OpenVISITChannel("plain", "site", "", p.server)
	if err == nil || !strings.Contains(err.Error(), "proxy") {
		t.Fatalf("err = %v", err)
	}
}

func TestVISITChannelBadPassword(t *testing.T) {
	_, tsi, addr := testGrid(t)
	tsi.RegisterApp("steady", func(ctx *TaskContext) error {
		time.Sleep(300 * time.Millisecond)
		return nil
	})
	c := NewClient(addr, "brooke", "token-1")
	ajo := &AJO{ID: "pw", Vsite: "JUELICH", Tasks: []Task{
		{Kind: TaskStartVISITProxy, VISITPassword: "right"},
		{Kind: TaskExecute, Executable: "steady"},
	}}
	if err := c.Consign(ajo); err != nil {
		t.Fatal(err)
	}
	c.WaitStatus("pw", StatusRunning, 5*time.Second)
	p := newSteeredParticipant(t, "right")
	// Wrong VISIT password: the broker's attach ping fails, the channel drops.
	if err := c.OpenVISITChannel("pw", "site", "wrong", p.server); err == nil {
		t.Fatal("bad viz password accepted")
	}
}

func TestStatusStringer(t *testing.T) {
	for s, want := range map[JobStatus]string{
		StatusConsigned: "CONSIGNED", StatusRunning: "RUNNING",
		StatusDone: "DONE", StatusFailed: "FAILED", StatusUnknown: "UNKNOWN",
	} {
		if s.String() != want {
			t.Fatalf("%d => %q", s, s.String())
		}
	}
	if TaskExecute.String() != "Execute" || TaskStartVISITProxy.String() != "StartVISITProxy" {
		t.Fatal("task kind names wrong")
	}
}
