// Package unicore reimplements the UNICORE grid middleware tier structure of
// the paper's section 3.1, as far as the steering showcase depends on it:
//
//   - a Gateway "acting as point-of-entry into the protected domain", with
//     ALL communication — job consignment, status, outcome retrieval and
//     VISIT steering streams — multiplexed over its single server port,
//   - a Network Job Supervisor (NJS) that "adapts the abstract UNICORE job
//     for the specific HPC system" by incarnating Abstract Job Objects into
//     target-system scripts via the TSI,
//   - a Target System Interface (TSI) that executes the incarnated work,
//   - single sign-on: one token authenticates every operation of a user,
//   - the VISIT steering extension of section 3.3: a proxy on the target
//     system that carries VISIT traffic through the gateway port and embeds
//     the vbroker multiplexer so that "all users participating in the
//     collaboration have to authenticate to the UNICORE system".
//
// AJOs travel as gob-serialised Go structs, standing in for the original
// "serialised Java objects" sent via ssl.
package unicore

import (
	"fmt"
	"time"
)

// TaskKind enumerates the abstract task types the showcase needs.
type TaskKind uint8

// Task kinds.
const (
	// TaskExecute runs an application registered with the TSI.
	TaskExecute TaskKind = iota + 1
	// TaskImportFile places a byte blob into the job workspace.
	TaskImportFile
	// TaskExportFile declares a workspace file as a job outcome.
	TaskExportFile
	// TaskStartVISITProxy starts the VISIT steering proxy for this job.
	TaskStartVISITProxy
)

// String returns the kind name.
func (k TaskKind) String() string {
	switch k {
	case TaskExecute:
		return "Execute"
	case TaskImportFile:
		return "ImportFile"
	case TaskExportFile:
		return "ExportFile"
	case TaskStartVISITProxy:
		return "StartVISITProxy"
	default:
		return fmt.Sprintf("TaskKind(%d)", uint8(k))
	}
}

// Task is one abstract work item inside an AJO.
type Task struct {
	Kind TaskKind
	// Name identifies the task inside the job.
	Name string
	// Executable and Args apply to TaskExecute.
	Executable string
	Args       []string
	// Env is exported into the incarnated script.
	Env map[string]string
	// FileName and Data apply to the file tasks.
	FileName string
	Data     []byte
	// VISITPassword protects the steering proxy (TaskStartVISITProxy).
	VISITPassword string
}

// AJO is an Abstract Job Object: "the workflows being instantiated are known
// in UNICORE as Abstract Job Objects" (section 2.2). Tasks run sequentially;
// TaskStartVISITProxy runs concurrently alongside the remaining tasks so the
// steered application can reach its proxy.
type AJO struct {
	// ID must be unique per consignment; the client assigns it.
	ID string
	// User is the authenticated owner.
	User string
	// Vsite names the target system behind the gateway.
	Vsite string
	// Tasks execute in order.
	Tasks []Task
	// Submitted is stamped by the client.
	Submitted time.Time
}

// Validate checks structural invariants before consignment.
func (a *AJO) Validate() error {
	if a.ID == "" {
		return fmt.Errorf("unicore: AJO has no ID")
	}
	if a.Vsite == "" {
		return fmt.Errorf("unicore: AJO %s has no Vsite", a.ID)
	}
	if len(a.Tasks) == 0 {
		return fmt.Errorf("unicore: AJO %s has no tasks", a.ID)
	}
	proxies := 0
	for i, t := range a.Tasks {
		switch t.Kind {
		case TaskExecute:
			if t.Executable == "" {
				return fmt.Errorf("unicore: task %d has no executable", i)
			}
		case TaskImportFile, TaskExportFile:
			if t.FileName == "" {
				return fmt.Errorf("unicore: task %d has no file name", i)
			}
		case TaskStartVISITProxy:
			proxies++
		default:
			return fmt.Errorf("unicore: task %d has unknown kind %d", i, t.Kind)
		}
	}
	if proxies > 1 {
		return fmt.Errorf("unicore: AJO %s has %d VISIT proxies, max 1", a.ID, proxies)
	}
	return nil
}

// JobStatus is the NJS-side lifecycle state of a consigned AJO.
type JobStatus uint8

// Job lifecycle states.
const (
	StatusUnknown JobStatus = iota
	StatusConsigned
	StatusRunning
	StatusDone
	StatusFailed
)

// String returns the status name.
func (s JobStatus) String() string {
	switch s {
	case StatusConsigned:
		return "CONSIGNED"
	case StatusRunning:
		return "RUNNING"
	case StatusDone:
		return "DONE"
	case StatusFailed:
		return "FAILED"
	default:
		return "UNKNOWN"
	}
}

// Outcome is what a client fetches after (or during) a job: per-task logs
// and exported files.
type Outcome struct {
	Status JobStatus
	// Log holds one entry per executed task.
	Log []string
	// Files maps exported file names to contents.
	Files map[string][]byte
	// Err is the failure reason when Status == StatusFailed.
	Err string
}
