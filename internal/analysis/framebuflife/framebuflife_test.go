package framebuflife_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/framebuflife"
)

// One deliberately buggy fixture package per rule; the golden // want
// comments pin each finding to its exact line.
func TestFramebuflife(t *testing.T) {
	for _, dir := range []string{
		"testdata/leak",
		"testdata/doublerelease",
		"testdata/useafter",
		"testdata/escape",
	} {
		t.Run(dir, func(t *testing.T) {
			analysistest.Run(t, dir, framebuflife.Analyzer)
		})
	}
}
