// Package leak seeds Retain/Release imbalance: references leaked on early
// returns, error paths, panic edges, and dropped acquisition results.
package leak

import (
	"errors"

	"repro/internal/core"
)

var errBad = errors.New("bad")

// errorPathLeak forgets the Release on the validation early-return.
func errorPathLeak(n int) error {
	fb := core.GetFrame(64)
	if n < 0 {
		return errBad // want `path leaks 1 reference\(s\) to fb`
	}
	fb.Release()
	return nil
}

// retainOnErrorPath retains a borrowed buffer and forgets the matching
// Release on the failure branch.
func retainOnErrorPath(fb *core.FrameBuf, fail bool) error {
	fb.Retain()
	if fail {
		return errBad // want `holding 1 extra reference\(s\) to borrowed fb`
	}
	fb.Release()
	return nil
}

// fallOffLeak retains and never releases on the fall-off exit.
func fallOffLeak(fb *core.FrameBuf) {
	fb.Retain()
} // want `holding 1 extra reference\(s\) to borrowed fb`

// panicLeak loses the reference on the explicit panic edge.
func panicLeak(n int) {
	fb := core.GetFrame(8)
	if n > 1000 {
		panic("implausible sample size") // want `panic path leaks 1 reference\(s\) to fb`
	}
	_ = fb.Bytes()
	fb.Release()
}

// droppedResult discards the owned reference GetFrame returns.
func droppedResult() {
	core.GetFrame(8) // want `owned \*FrameBuf reference but is dropped`
}

// balanced is the control: release on every path, no findings.
func balanced(n int) error {
	fb := core.GetFrame(64)
	if n < 0 {
		fb.Release()
		return errBad
	}
	defer fb.Release()
	return nil
}
