// Package escape seeds undocumented ownership transfers: buffers stored
// beyond the function without //steer:owns on the storing API, with and
// without a held reference.
package escape

import "repro/internal/core"

type holder struct {
	fb    *core.FrameBuf
	stash []*core.FrameBuf
}

// storeWithoutReference parks a borrowed pointer it holds no reference
// for — the stored buffer can be recycled under the holder.
func (h *holder) storeWithoutReference(fb *core.FrameBuf) {
	h.fb = fb // want `without a held reference`
}

// retainedEscape retains but the storing API is undocumented: no
// //steer:owns declares who releases the stashed reference.
func (h *holder) retainedEscape(fb *core.FrameBuf) {
	fb.Retain()
	h.fb = fb
} // want `escapes with 1 retained reference\(s\)`

// appendEscape stashes through append without a reference.
func (h *holder) appendEscape(fb *core.FrameBuf) {
	h.stash = append(h.stash, fb) // want `without a held reference`
}

// storeOwns is the control: the API documents the transfer, it retains what
// it stores, no findings.
//
//steer:owns
func (h *holder) storeOwns(fb *core.FrameBuf) {
	fb.Retain()
	h.fb = fb
}

// drop releases the owned slot; pairs with storeOwns.
func (h *holder) drop() {
	if h.fb != nil {
		h.fb.Release()
		h.fb = nil
	}
}
