// Package useafter seeds touches of a buffer after its last held reference
// was released — the recycled-buffer read the framedebug poisoner only
// catches when a test walks the path at runtime.
package useafter

import "repro/internal/core"

// useAfterRelease reads the buffer after giving its reference back.
func useAfterRelease() int {
	fb := core.GetFrame(8)
	fb.Release()
	return len(fb.Bytes()) // want `use of fb after its last reference was released`
}

// returnAfterRelease hands the caller a buffer that may already be back in
// the pool.
func returnAfterRelease() *core.FrameBuf {
	fb := core.GetFrame(8)
	fb.Release()
	return fb // want `returns fb after its last reference was released`
}

// retainAfterRelease resurrects a reference from a dead buffer.
func retainAfterRelease() {
	fb := core.GetFrame(8)
	fb.Release()
	fb.Retain() // want `Retain of fb after its last reference was released`
	fb.Release()
}

// consumedThenUsed touches the buffer after discharging the caller's
// reference in a //steer:consumes function.
//
//steer:consumes
func consumedThenUsed(fb *core.FrameBuf) int {
	fb.Release()
	return len(fb.Bytes()) // want `use of fb after its last reference was released`
}

// useBeforeRelease is the control: read first, release last, no findings.
func useBeforeRelease() int {
	fb := core.GetFrame(8)
	n := len(fb.Bytes())
	fb.Release()
	return n
}
