// Package doublerelease seeds releases of references the function does not
// hold: double Release, releasing a borrowed caller reference, and
// over-consuming under //steer:consumes.
package doublerelease

import "repro/internal/core"

// double releases the same owned reference twice.
func double() {
	fb := core.GetFrame(8)
	fb.Release()
	fb.Release() // want `double release`
}

// releasesBorrowed discharges a reference the caller still owns.
func releasesBorrowed(fb *core.FrameBuf) {
	fb.Release() // want `releases the caller's reference to fb`
}

// consumeTwice is entitled to exactly one caller reference, not two.
//
//steer:consumes
func consumeTwice(fb *core.FrameBuf) {
	fb.Release()
	fb.Release() // want `double release`
}

// consumesOK is the control: one Release on every path under
// //steer:consumes, no findings.
//
//steer:consumes
func consumesOK(fb *core.FrameBuf, drop bool) bool {
	if drop {
		fb.Release()
		return false
	}
	fb.Release()
	return true
}
