// Package framebuflife implements the steervet analyzer that machine-checks
// the FrameBuf reference protocol (DESIGN.md §4.1, CHANGES.md PR 4): every
// path through a function must leave each *core.FrameBuf it touches with a
// balanced reference count. The pass abstractly interprets each function
// body — branching state at if/for/switch/select, checking every exit (early
// return, explicit panic, fall-off) — and reports:
//
//   - Retain without a matching Release on some path (the leak a benchmark
//     only sees as pool-miss noise)
//   - Release of a reference the function does not hold (double-Release,
//     releasing a borrowed caller reference)
//   - use of a buffer after its last held reference was released
//   - a retained buffer escaping into a store (field, slice element, channel,
//     composite) without a documented ownership transfer
//
// Ownership vocabulary (see package analysis): a *FrameBuf parameter is
// borrowed — the caller's reference outlives the call and the function's net
// delta must be zero. //steer:consumes declares the function discharges
// exactly one caller reference per path (Session.fanout). //steer:owns
// declares the function or interface method stores retained references and
// manages its own release path (frameRing.push, JournalSink.Record). A call
// returning *FrameBuf transfers one owned reference to the caller, which
// must be released, stored under //steer:owns, or returned onward.
//
// The pass is deliberately biased against false positives: values with
// unanalyzable provenance (slice elements, struct fields, type assertions,
// aliased or closure-captured variables) drop out of tracking rather than
// guess, and a merge of paths that disagree about a variable stops tracking
// it. What remains flagged is wrong with high confidence.
package framebuflife

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the framebuflife pass.
var Analyzer = &analysis.Analyzer{
	Name: "framebuflife",
	Doc:  "FrameBuf Retain/Release must balance on every path",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, pkg := range pass.Module.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				w := &walker{pass: pass, pkg: pkg, ann: pass.Module.AnnotationOf(fn)}
				w.analyze(fd.Body, fn.Type().(*types.Signature))
			}
			// Function literals are analyzed as functions in their own right:
			// their own acquisitions and parameters are checked, while
			// variables captured from the enclosing function were already
			// dropped from the outer walk at the capture site.
			ast.Inspect(file, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				sig, ok := pkg.Info.Types[lit].Type.(*types.Signature)
				if !ok {
					return true
				}
				w := &walker{pass: pass, pkg: pkg}
				w.analyze(lit.Body, sig)
				return true
			})
		}
	}
}

// vstate is the abstract state of one tracked *FrameBuf variable.
type vstate struct {
	borrowed bool // parameter: the caller holds the baseline reference
	delta    int  // references this function holds beyond the baseline
	deferred int  // pending `defer v.Release()` discharges
	released bool // our last reference is gone; further touches are bugs
	escaped  bool // a held reference was stored somewhere that outlives us
	dead     bool // tracking abandoned (alias, capture, merge conflict)
}

func (v *vstate) clone() *vstate { c := *v; return &c }

// state maps each tracked variable to its abstract state on the current path.
type state map[*types.Var]*vstate

func (st state) clone() state {
	c := make(state, len(st))
	for k, v := range st {
		c[k] = v.clone()
	}
	return c
}

// walker interprets one function body.
type walker struct {
	pass *analysis.Pass
	pkg  *analysis.Package
	ann  analysis.Annotation

	brks []*[]state // break-target collectors, innermost last
	cnts []*[]state // continue-target collectors
}

func (w *walker) report(pos token.Pos, format string, args ...any) {
	w.pass.Reportf(pos, format, args...)
}

func (w *walker) analyze(body *ast.BlockStmt, sig *types.Signature) {
	st := make(state)
	track := func(p *types.Var) {
		if p != nil && p.Name() != "" && p.Name() != "_" && isFrameBufPtr(p.Type()) {
			st[p] = &vstate{borrowed: true}
		}
	}
	track(sig.Recv())
	for i := 0; i < sig.Params().Len(); i++ {
		track(sig.Params().At(i))
	}
	out := w.stmt(st, body)
	if out != nil {
		w.exit(out, body.Rbrace, false)
	}
}

// ---- statements ----

// stmt interprets s in st and returns the fall-through state, or nil when
// control cannot fall through.
func (w *walker) stmt(st state, s ast.Stmt) state {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range s.List {
			if st = w.stmt(st, sub); st == nil {
				return nil
			}
		}
		return st

	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if isPanic(w.pkg.Info, call) {
				for _, a := range call.Args {
					w.expr(st, a)
				}
				w.exit(st, call.Pos(), true)
				return nil
			}
			w.call(st, call)
			// A dropped *FrameBuf result is a leaked reference on the spot.
			if t := w.pkg.Info.Types[call].Type; t != nil && isFrameBufPtr(t) {
				w.report(call.Pos(), "result of call is an owned *FrameBuf reference but is dropped")
			}
			return st
		}
		w.expr(st, s.X)
		return st

	case *ast.AssignStmt:
		w.assign(st, s)
		return st

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						w.defineFrom(st, name, vs.Values[i])
					}
				}
			}
		}
		return st

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if v := w.trackedVar(st, r); v != nil {
				w.returnTransfer(st, v, r.Pos())
			} else {
				w.expr(st, r)
			}
		}
		w.exit(st, s.Pos(), false)
		return nil

	case *ast.IfStmt:
		if s.Init != nil {
			if st = w.stmt(st, s.Init); st == nil {
				return nil
			}
		}
		w.expr(st, s.Cond)
		thenOut := w.stmt(st.clone(), s.Body)
		elseOut := st
		if s.Else != nil {
			elseOut = w.stmt(st.clone(), s.Else)
		}
		return merge(thenOut, elseOut)

	case *ast.ForStmt:
		if s.Init != nil {
			if st = w.stmt(st, s.Init); st == nil {
				return nil
			}
		}
		if s.Cond != nil {
			w.expr(st, s.Cond)
		}
		var brk, cnt []state
		w.brks = append(w.brks, &brk)
		w.cnts = append(w.cnts, &cnt)
		bodyOut := w.stmt(st.clone(), s.Body)
		w.brks = w.brks[:len(w.brks)-1]
		w.cnts = w.cnts[:len(w.cnts)-1]
		for _, c := range cnt {
			bodyOut = merge(bodyOut, c)
		}
		if bodyOut != nil && s.Post != nil {
			bodyOut = w.stmt(bodyOut, s.Post)
		}
		var out state
		if s.Cond != nil {
			out = merge(st, bodyOut) // zero or more iterations
		}
		for _, b := range brk {
			out = merge(out, b)
		}
		return out

	case *ast.RangeStmt:
		w.expr(st, s.X)
		var brk, cnt []state
		w.brks = append(w.brks, &brk)
		w.cnts = append(w.cnts, &cnt)
		bodyOut := w.stmt(st.clone(), s.Body)
		w.brks = w.brks[:len(w.brks)-1]
		w.cnts = w.cnts[:len(w.cnts)-1]
		for _, c := range cnt {
			bodyOut = merge(bodyOut, c)
		}
		out := merge(st, bodyOut)
		for _, b := range brk {
			out = merge(out, b)
		}
		return out

	case *ast.SwitchStmt:
		if s.Init != nil {
			if st = w.stmt(st, s.Init); st == nil {
				return nil
			}
		}
		if s.Tag != nil {
			w.expr(st, s.Tag)
		}
		return w.caseBodies(st, s.Body, func(c *ast.CaseClause, cs state) {
			for _, e := range c.List {
				w.expr(cs, e)
			}
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			if st = w.stmt(st, s.Init); st == nil {
				return nil
			}
		}
		// `x := y.(type)` — interpret y; per-case implicit vars stay
		// untracked (type-assertion provenance).
		switch a := s.Assign.(type) {
		case *ast.AssignStmt:
			for _, r := range a.Rhs {
				w.expr(st, r)
			}
		case *ast.ExprStmt:
			w.expr(st, a.X)
		}
		return w.caseBodies(st, s.Body, func(*ast.CaseClause, state) {})

	case *ast.SelectStmt:
		var brk []state
		w.brks = append(w.brks, &brk)
		var outs []state
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			cs := st.clone()
			live := cs
			if comm.Comm != nil {
				live = w.stmt(cs, comm.Comm)
			}
			if live != nil {
				live = w.stmt(live, &ast.BlockStmt{List: comm.Body})
			}
			outs = append(outs, live)
		}
		w.brks = w.brks[:len(w.brks)-1]
		outs = append(outs, brk...)
		if len(s.Body.List) == 0 {
			return nil // select{} blocks forever
		}
		return merge(outs...)

	case *ast.SendStmt:
		w.expr(st, s.Chan)
		if v := w.trackedVar(st, s.Value); v != nil {
			w.escape(st, v, s.Value.Pos(), "sent on a channel")
		} else {
			w.expr(st, s.Value)
		}
		return st

	case *ast.DeferStmt:
		if sel, ok := ast.Unparen(s.Call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" && len(s.Call.Args) == 0 {
			if v := w.trackedVar(st, sel.X); v != nil {
				st[v].deferred++
				return st
			}
		}
		// Any other defer touching tracked values runs at an exit we cannot
		// order; stop tracking what it references.
		w.killReferenced(st, s.Call)
		return st

	case *ast.GoStmt:
		// The goroutine uses its operands concurrently; ownership is no
		// longer path-local.
		w.killReferenced(st, s.Call)
		return st

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				killAll(st)
			}
			if n := len(w.brks); n > 0 {
				*w.brks[n-1] = append(*w.brks[n-1], st.clone())
			}
			return nil
		case token.CONTINUE:
			if s.Label != nil {
				killAll(st)
			}
			if n := len(w.cnts); n > 0 {
				*w.cnts[n-1] = append(*w.cnts[n-1], st.clone())
			}
			return nil
		case token.GOTO:
			killAll(st)
			return nil
		case token.FALLTHROUGH:
			// The next case body re-checks nothing for this path; be
			// conservative and stop tracking.
			killAll(st)
			if n := len(w.brks); n > 0 {
				*w.brks[n-1] = append(*w.brks[n-1], st.clone())
			}
			return nil
		}
		return st

	case *ast.LabeledStmt:
		return w.stmt(st, s.Stmt)

	case *ast.IncDecStmt:
		w.expr(st, s.X)
		return st

	case *ast.EmptyStmt:
		return st
	}
	return st
}

// caseBodies interprets a switch body: each case from a copy of st, merged
// with breaks and — absent a default — the no-match fall-through.
func (w *walker) caseBodies(st state, body *ast.BlockStmt, caseExprs func(*ast.CaseClause, state)) state {
	var brk []state
	w.brks = append(w.brks, &brk)
	var outs []state
	hasDefault := false
	for _, cl := range body.List {
		c, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if c.List == nil {
			hasDefault = true
		}
		cs := st.clone()
		caseExprs(c, cs)
		outs = append(outs, w.stmt(cs, &ast.BlockStmt{List: c.Body}))
	}
	w.brks = w.brks[:len(w.brks)-1]
	outs = append(outs, brk...)
	if !hasDefault {
		outs = append(outs, st)
	}
	return merge(outs...)
}

// assign interprets an assignment: acquisitions, aliasing, escapes through
// stores, and overwrites of tracked variables.
func (w *walker) assign(st state, a *ast.AssignStmt) {
	// Tuple form: fb, err := f().
	if len(a.Lhs) > 1 && len(a.Rhs) == 1 {
		if call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok {
			w.call(st, call)
			if tuple, ok := w.pkg.Info.Types[call].Type.(*types.Tuple); ok && tuple.Len() == len(a.Lhs) {
				for i, lhs := range a.Lhs {
					if isFrameBufPtr(tuple.At(i).Type()) {
						w.acquire(st, lhs)
					}
				}
			}
			return
		}
	}
	if len(a.Lhs) != len(a.Rhs) {
		for _, r := range a.Rhs {
			w.expr(st, r)
		}
		return
	}
	for i, rhs := range a.Rhs {
		lhs := a.Lhs[i]
		// Tracked value on the right: alias or store.
		if v := w.trackedVar(st, rhs); v != nil {
			if isLocalIdent(w.pkg.Info, lhs) {
				// Aliasing splits the facts across two names; stop tracking.
				st[v].dead = true
			} else {
				w.escape(st, v, rhs.Pos(), "stored to "+types.ExprString(lhs))
				w.useLhs(st, lhs)
			}
			continue
		}
		w.defineFrom(st, lhs, rhs)
	}
}

// defineFrom handles `lhs = rhs` where rhs is not a tracked variable:
// acquisition when rhs yields a fresh *FrameBuf reference, otherwise a plain
// interpretation of both sides.
func (w *walker) defineFrom(st state, lhs, rhs ast.Expr) {
	w.expr(st, rhs)
	if t := w.pkg.Info.Types[ast.Unparen(rhs)].Type; t != nil && isFrameBufPtr(t) && isAcquisition(rhs) {
		if isLocalIdent(w.pkg.Info, lhs) {
			w.acquire(st, lhs)
			return
		}
		// A fresh reference stored straight into a non-local slot: the store
		// is its own release path only under //steer:owns.
		if !w.ann.Owns {
			w.report(rhs.Pos(), "freshly acquired *FrameBuf stored to %s without //steer:owns on the enclosing function", types.ExprString(lhs))
		}
		return
	}
	w.useLhs(st, lhs)
	if v, oldTracked := w.overwritten(st, lhs); oldTracked {
		if v.delta > 0 && !v.escaped {
			w.report(lhs.Pos(), "overwrites a variable still holding %d *FrameBuf reference(s)", v.delta)
		}
		v.dead = true
	}
}

// acquire begins tracking lhs as an owned, freshly referenced buffer.
func (w *walker) acquire(st state, lhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := w.pkg.Info.Defs[id]
	if obj == nil {
		obj = w.pkg.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if old := st[v]; old != nil && !old.dead && old.delta > 0 && !old.escaped && !old.released {
		w.report(lhs.Pos(), "overwrites a variable still holding %d *FrameBuf reference(s)", old.delta)
	}
	st[v] = &vstate{delta: 1}
}

// overwritten reports whether lhs names a tracked variable being replaced.
func (w *walker) overwritten(st state, lhs ast.Expr) (*vstate, bool) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, ok := w.pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return nil, false
	}
	vs := st[v]
	if vs == nil || vs.dead {
		return nil, false
	}
	return vs, true
}

// useLhs interprets the non-written parts of an assignment target (fb.b = x
// is a use of fb).
func (w *walker) useLhs(st state, lhs ast.Expr) {
	if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		return
	}
	w.expr(st, lhs)
}

// ---- expressions ----

// expr interprets e for reference events.
func (w *walker) expr(st state, e ast.Expr) {
	switch e := e.(type) {
	case *ast.CallExpr:
		w.call(st, e)
	case *ast.ParenExpr:
		w.expr(st, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if v := w.trackedVar(st, e.X); v != nil {
				// &fb: anything can happen through the pointer.
				st[v].dead = true
				return
			}
		}
		w.expr(st, e.X)
	case *ast.StarExpr:
		w.expr(st, e.X)
	case *ast.SelectorExpr:
		if v := w.trackedVar(st, e.X); v != nil {
			w.use(st, v, e.Pos())
			return
		}
		w.expr(st, e.X)
	case *ast.BinaryExpr:
		w.expr(st, e.X)
		w.expr(st, e.Y)
	case *ast.IndexExpr:
		w.expr(st, e.X)
		w.expr(st, e.Index)
	case *ast.SliceExpr:
		w.expr(st, e.X)
	case *ast.TypeAssertExpr:
		w.expr(st, e.X)
	case *ast.KeyValueExpr:
		w.expr(st, e.Value)
	case *ast.CompositeLit:
		w.composite(st, e)
	case *ast.FuncLit:
		// Captured tracked variables now have an unanalyzable second user;
		// the literal's own body is analyzed separately in run.
		w.killReferenced(st, e)
	}
}

// composite interprets a composite literal: tracked elements escape into the
// new value.
func (w *walker) composite(st state, cl *ast.CompositeLit) {
	for _, elt := range cl.Elts {
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
		}
		if v := w.trackedVar(st, val); v != nil {
			w.escape(st, v, val.Pos(), "stored in a composite literal")
			continue
		}
		w.expr(st, val)
	}
}

// call interprets a call: Retain/Release on tracked receivers, consuming
// callees, appends that capture, and plain borrows.
func (w *walker) call(st state, call *ast.CallExpr) {
	// fb.Retain() / fb.Release() / fb.Other().
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if v := w.trackedVar(st, sel.X); v != nil {
			if s, ok := w.pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				switch sel.Sel.Name {
				case "Retain":
					w.retain(st, v, call.Pos())
				case "Release":
					w.release(st, v, call.Pos(), "")
				default:
					w.use(st, v, call.Pos())
				}
			} else {
				w.use(st, v, call.Pos())
			}
			for _, a := range call.Args {
				w.expr(st, a)
			}
			return
		}
	}

	// append(s, fb): the element lives on in the slice.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.pkg.Info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" {
				for i, a := range call.Args {
					if v := w.trackedVar(st, a); v != nil && i > 0 {
						w.escape(st, v, a.Pos(), "appended to a slice")
						continue
					}
					w.expr(st, a)
				}
				return
			}
			for _, a := range call.Args {
				w.expr(st, a)
			}
			return
		}
	}

	callee := analysis.FuncFor(w.pkg.Info, call)
	var calleeAnn analysis.Annotation
	if callee != nil {
		calleeAnn = w.pass.Module.AnnotationOf(callee)
	}
	w.expr(st, call.Fun)
	for _, a := range call.Args {
		if v := w.trackedVar(st, a); v != nil {
			switch {
			case calleeAnn.Consumes:
				w.release(st, v, a.Pos(), " (consumed by "+analysis.FuncName(callee)+")")
			default:
				// Plain borrow — //steer:owns callees retain internally and
				// are checked on their own definition.
				w.use(st, v, a.Pos())
			}
			continue
		}
		w.expr(st, a)
	}
}

// ---- events ----

func (w *walker) retain(st state, v *types.Var, pos token.Pos) {
	vs := st[v]
	if vs.dead {
		return
	}
	if vs.released {
		w.report(pos, "Retain of %s after its last reference was released", v.Name())
		vs.dead = true
		return
	}
	vs.delta++
}

// release discharges one held reference. floor is 0 for owned values and
// plain borrows (releasing the caller's reference is a bug) and -1 for
// borrows in a //steer:consumes function.
func (w *walker) release(st state, v *types.Var, pos token.Pos, how string) {
	vs := st[v]
	if vs.dead {
		return
	}
	if vs.released {
		w.report(pos, "Release of %s after its last reference was already released (double release)%s", v.Name(), how)
		vs.dead = true
		return
	}
	floor := 0
	consuming := vs.borrowed && w.ann.Consumes
	if consuming {
		floor = -1
	}
	if vs.delta-1 < floor {
		if vs.borrowed {
			w.report(pos, "releases the caller's reference to %s%s; Retain first or annotate this function //steer:consumes", v.Name(), how)
		} else {
			w.report(pos, "releases a reference to %s it does not hold%s", v.Name(), how)
		}
		vs.dead = true
		return
	}
	vs.delta--
	if vs.delta == floor && (consuming || !vs.borrowed) {
		vs.released = true
	}
}

func (w *walker) use(st state, v *types.Var, pos token.Pos) {
	vs := st[v]
	if vs.dead {
		return
	}
	if vs.released {
		w.report(pos, "use of %s after its last reference was released", v.Name())
		vs.dead = true
	}
}

// escape records that a held reference to v was stored beyond this function.
func (w *walker) escape(st state, v *types.Var, pos token.Pos, how string) {
	vs := st[v]
	if vs.dead {
		return
	}
	if vs.released {
		w.report(pos, "%s %s after its last reference was released", v.Name(), how)
		vs.dead = true
		return
	}
	if w.ann.Owns {
		vs.escaped = true
		return
	}
	if vs.delta > 0 {
		vs.escaped = true
		return
	}
	w.report(pos, "%s %s without a held reference; Retain first, or annotate the storing API //steer:owns", v.Name(), how)
	vs.dead = true
}

// returnTransfer hands one held reference to the caller.
func (w *walker) returnTransfer(st state, v *types.Var, pos token.Pos) {
	vs := st[v]
	if vs.dead {
		return
	}
	if vs.released {
		w.report(pos, "returns %s after its last reference was released", v.Name())
		vs.dead = true
		return
	}
	if vs.delta >= 1 {
		vs.delta--
		return
	}
	if vs.borrowed {
		w.report(pos, "returns borrowed %s without an owned reference to transfer; Retain before returning", v.Name())
		vs.dead = true
	}
}

// exit checks every tracked variable at a function exit.
func (w *walker) exit(st state, pos token.Pos, isPanic bool) {
	for v, vs := range st {
		if vs.dead {
			continue
		}
		for vs.deferred > 0 && !vs.dead && !vs.released {
			vs.deferred--
			w.release(st, v, pos, " (deferred)")
		}
		if vs.dead {
			continue
		}
		expected := 0
		if vs.borrowed && w.ann.Consumes {
			expected = -1
		}
		d := vs.delta
		if isPanic {
			if !vs.borrowed && d > 0 && !vs.escaped {
				w.report(pos, "panic path leaks %d reference(s) to %s", d, v.Name())
			}
			continue
		}
		if d > expected {
			switch {
			case vs.escaped && w.ann.Owns:
				// Documented ownership transfer.
			case vs.escaped:
				w.report(pos, "%s escapes with %d retained reference(s); annotate the storing API //steer:owns or Release before storing", v.Name(), d-expected)
			case vs.borrowed && w.ann.Consumes:
				w.report(pos, "path ends without consuming the caller's reference to %s (//steer:consumes requires exactly one Release per path)", v.Name())
			case vs.borrowed:
				w.report(pos, "path ends holding %d extra reference(s) to borrowed %s (missing Release)", d, v.Name())
			default:
				w.report(pos, "path leaks %d reference(s) to %s (missing Release)", d, v.Name())
			}
		}
	}
}

// ---- helpers ----

// trackedVar resolves e to a live tracked variable, or nil.
func (w *walker) trackedVar(st state, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := w.pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if vs := st[v]; vs != nil && !vs.dead {
		return v
	}
	return nil
}

// killReferenced stops tracking every variable referenced under n.
func (w *walker) killReferenced(st state, n ast.Node) {
	ast.Inspect(n, func(sub ast.Node) bool {
		id, ok := sub.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := w.pkg.Info.Uses[id].(*types.Var); ok {
			if vs := st[v]; vs != nil {
				vs.dead = true
			}
		}
		return true
	})
}

func killAll(st state) {
	for _, vs := range st {
		vs.dead = true
	}
}

// merge joins path states; disagreements about a variable end its tracking
// (the no-false-positive bias).
func merge(outs ...state) state {
	var res state
	for _, out := range outs {
		if out == nil {
			continue
		}
		if res == nil {
			res = out
			continue
		}
		for v, vs := range out {
			prev, ok := res[v]
			if !ok {
				res[v] = vs
				continue
			}
			if prev.dead || vs.dead ||
				prev.delta != vs.delta || prev.released != vs.released ||
				prev.deferred != vs.deferred || prev.borrowed != vs.borrowed {
				prev.dead = true
				continue
			}
			prev.escaped = prev.escaped || vs.escaped
		}
	}
	return res
}

// isLocalIdent reports whether e is a plain identifier naming a
// function-local variable (not a field, global, or blank).
func isLocalIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return !v.IsField() && v.Parent() != v.Pkg().Scope()
}

// isAcquisition reports whether rhs mints a fresh reference: a call (the
// convention: *FrameBuf-returning calls transfer one reference) or
// &FrameBuf{...}. Type assertions, selectors, and index expressions have
// unknown provenance and stay untracked.
func isAcquisition(rhs ast.Expr) bool {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		return true
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, ok := e.X.(*ast.CompositeLit)
		return ok
	}
	return false
}

// isFrameBufPtr reports whether t is *core.FrameBuf.
func isFrameBufPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "FrameBuf" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/core")
}

// isPanic reports whether call invokes the panic builtin.
func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
