// Package mixed seeds mixed atomic/plain access to struct fields. The
// lastBeat shape reproduces PR 5's pre-fix observer-hijack race: the read
// loop renews a lease timestamp with an atomic store while the maintenance
// sweep read it plainly — a data race -race only reports under the right
// interleaving, and a stale read promotes the wrong client to master.
package mixed

import "sync/atomic"

type conn struct {
	lastBeat int64
	sent     uint64
	plain    int // never touched atomically; plain access is fine
}

// beat renews the lease from the read loop.
func (c *conn) beat(now int64) {
	atomic.StoreInt64(&c.lastBeat, now)
}

// expired is the maintenance sweep with the pre-fix plain read.
func (c *conn) expired(deadline int64) bool {
	return c.lastBeat < deadline // want `plain access to field mixed\.lastBeat`
}

// expiredFixed is the post-fix control: atomic on every access, no finding.
func (c *conn) expiredFixed(deadline int64) bool {
	return atomic.LoadInt64(&c.lastBeat) < deadline
}

// record counts atomically...
func (c *conn) record(n uint64) {
	atomic.AddUint64(&c.sent, n)
}

// reset zeroes the counter plainly — a lost-update race with record.
func (c *conn) reset() {
	c.sent = 0 // want `plain access to field mixed\.sent`
}

// newConn initialises fields through composite-literal keys: exempt, the
// value is pre-publication.
func newConn(now int64) *conn {
	return &conn{lastBeat: now, sent: 0}
}

// resetSanctioned documents a pre-publication plain write.
func (c *conn) resetSanctioned() {
	c.sent = 0 //steer:allow atomicfield pre-publication reset before the conn is shared
}

// bumpPlain touches the never-atomic field: no finding.
func (c *conn) bumpPlain() {
	c.plain++
}
