// Package atomicfield implements the steervet analyzer that enforces
// atomics-only access: a struct field accessed through sync/atomic anywhere
// in the module must never be read or written plainly anywhere else in the
// module. This is field-granular and module-global — stricter than go
// vet's atomic checker, which only catches self-assignment misuse — and it
// targets the mixed-access races the -race detector only reports under the
// right interleaving: a maintenance sweep plainly reading a counter the
// read loop updates with atomic.Store (the shape of PR 5's pre-fix
// observer-hijack promotion, where connection-role state was read outside
// its synchronisation domain).
//
// Fields whose type is one of sync/atomic's struct types (atomic.Int64,
// atomic.Pointer[T], ...) are safe by construction — they have no plain
// access to catch — so the analyzer concerns itself with plain-typed fields
// passed by address to atomic functions (atomic.AddUint64(&s.count, 1)).
// Composite-literal keys are exempt: a constructor initialising a field
// before the value is published is the documented safe idiom. Any other
// plain read, write, or escaping &field is a finding; a sanctioned
// pre-publication access carries //steer:allow atomicfield with its
// justification.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the atomicfield pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must never be accessed plainly",
	Run:  run,
}

// atomicUse records why a field is considered atomic.
type atomicUse struct {
	pos  token.Pos // first atomic access seen
	call string    // the atomic function used there
}

func run(pass *analysis.Pass) {
	mod := pass.Module

	// Pass 1: find every field whose address is taken inside a sync/atomic
	// call argument, and remember those sanctioned &field nodes.
	atomicFields := make(map[*types.Var]atomicUse)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.FuncFor(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					sel, field := addressedField(pkg.Info, arg)
					if field == nil {
						continue
					}
					sanctioned[sel] = true
					if _, seen := atomicFields[field]; !seen {
						atomicFields[field] = atomicUse{pos: sel.Pos(), call: "atomic." + fn.Name()}
					}
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: every other selector resolving to one of those fields is a
	// mixed plain access.
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				s, ok := pkg.Info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				field, ok := s.Obj().(*types.Var)
				if !ok {
					return true
				}
				use, isAtomic := atomicFields[field]
				if !isAtomic {
					return true
				}
				usePos := mod.Fset.Position(use.pos)
				pass.Reportf(sel.Pos(),
					"plain access to field %s, which is accessed atomically via %s (%s:%d); use sync/atomic on every access or //steer:allow atomicfield a documented pre-publication access",
					fieldName(field), use.call, usePos.Filename, usePos.Line)
				return true
			})
		}
	}
}

// addressedField matches &x.f where f resolves to a struct field, returning
// the selector and the field object.
func addressedField(info *types.Info, arg ast.Expr) (*ast.SelectorExpr, *types.Var) {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil, nil
	}
	sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, nil
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, nil
	}
	return sel, field
}

// fieldName renders pkg.Type.field for diagnostics when the receiver type
// is recoverable, else pkg.field.
func fieldName(field *types.Var) string {
	name := field.Name()
	if field.Pkg() != nil {
		name = field.Pkg().Name() + "." + name
	}
	return name
}
