package atomicfield_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomicfield"
)

// testdata/mixed includes the PR 5 observer-hijack regression shape: an
// atomically stored lease timestamp read plainly by a maintenance sweep.
func TestAtomicfield(t *testing.T) {
	analysistest.Run(t, "testdata/mixed", atomicfield.Analyzer)
}
