package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The loader type-checks the repository without the go command or a module
// proxy: module-internal import paths resolve against the module root by
// directory, everything else falls through to go/importer's source importer,
// which type-checks the standard library from GOROOT sources. That keeps the
// whole suite runnable in a stdlib-only, network-less environment — the same
// constraint cmd/benchcompare lives under.

// Load locates the enclosing module from the working directory and loads
// every package in it (testdata and hidden directories excluded, test files
// excluded — deliberate-violation fixtures live in _test.go files and
// testdata packages).
func Load() (*Module, error) {
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	root, path, err := findModule(wd)
	if err != nil {
		return nil, err
	}
	return LoadRoot(root, path)
}

// LoadRoot loads every package under the module root.
func LoadRoot(root, modPath string) (*Module, error) {
	l := newLoader(root, modPath)
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		if _, err := l.importModulePkg(path, dir); err != nil {
			var noGo *build.NoGoError
			if errors.As(err, &noGo) {
				continue
			}
			return nil, err
		}
	}
	return l.module(), nil
}

// LoadDir loads the single package in dir (a testdata fixture) plus its
// dependencies; only that package carries syntax in the returned module.
// The enclosing repository's module path still resolves, so fixtures may
// import the real core package.
func LoadDir(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	l := newLoader(root, modPath)
	rel, err := filepath.Rel(root, abs)
	if err != nil {
		return nil, err
	}
	path := modPath + "/" + filepath.ToSlash(rel)
	if _, err := l.importModulePkg(path, abs); err != nil {
		return nil, err
	}
	m := l.module()
	// Only the fixture package is the analysis subject.
	var subject []*Package
	for _, p := range m.Pkgs {
		if p.Path == path {
			subject = append(subject, p)
		}
	}
	m.Pkgs = subject
	return m, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

type loader struct {
	fset    *token.FileSet
	root    string
	modPath string
	ctxt    build.Context
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
	order   []string
}

func newLoader(root, modPath string) *loader {
	// The source importer type-checks dependencies from GOROOT sources and
	// reads build.Default directly; cgo variants cannot be type-checked from
	// source, so force the pure-Go file sets everywhere (package net et al
	// have complete pure-Go implementations).
	build.Default.CgoEnabled = false
	l := &loader{
		fset:    token.NewFileSet(),
		root:    root,
		modPath: modPath,
		ctxt:    build.Default,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)
	return l
}

func (l *loader) module() *Module {
	m := &Module{Path: l.modPath, Root: l.root, Fset: l.fset}
	for _, path := range l.order {
		m.Pkgs = append(m.Pkgs, l.pkgs[path])
	}
	return m
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load from
// the module tree, the rest from GOROOT sources.
func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := l.moduleRel(path); ok {
		return l.importModulePkg(path, filepath.Join(l.root, filepath.FromSlash(rel)))
	}
	return l.std.ImportFrom(path, dir, mode)
}

// moduleRel maps a module-internal import path to its root-relative
// directory.
func (l *loader) moduleRel(path string) (string, bool) {
	if path == l.modPath {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return rest, true
	}
	return "", false
}

// importModulePkg parses and type-checks one module directory, memoized.
func (l *loader) importModulePkg(path, dir string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	l.pkgs[path] = &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.order = append(l.order, path)
	return tpkg, nil
}
