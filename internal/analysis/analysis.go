// Package analysis is a stdlib-only harness for the steervet analyzers: a
// deliberately small subset of the golang.org/x/tools/go/analysis shape
// (Analyzer, Pass, Diagnostic) plus a module loader built on go/parser,
// go/types and go/importer, so the suite runs in a network-less, stdlib-only
// checkout. The analyzers machine-check the broadcast hot path's
// hand-maintained invariants (DESIGN.md §4.1): FrameBuf reference balance,
// allocation- and lock-freedom of //steer:hotpath functions, and
// atomics-only access to atomically-shared fields.
//
// # Annotations
//
// The analyzers read `//steer:` directive comments from declaration doc
// comments (directives, like //go: comments, have no space after the
// slashes):
//
//   - //steer:hotpath — this function is a root of the allocation- and
//     lock-free broadcast domain; hotpathalloc checks it and every
//     same-module function statically reachable from it.
//   - //steer:coldpath — this function is asserted off the steady-state
//     path; hotpathalloc does not descend into it even when a hotpath
//     function calls it (the call site documents why).
//   - //steer:owns — this function or interface method takes ownership of
//     the retained FrameBuf references it stores: framebuflife permits its
//     *FrameBuf parameters to be retained and escape, because the owning
//     component documents its own release path (frameRing.push,
//     JournalSink.Record).
//   - //steer:consumes — this function consumes the caller's reference to
//     each *FrameBuf parameter (Session.fanout): every path must discharge
//     exactly one caller reference, and framebuflife debits callers at the
//     call site.
//
// A finding that is understood and sanctioned is suppressed with a
// `//steer:allow <analyzer>[ reason]` comment on the offending line or on
// the line directly above it; the reason is the reviewable justification.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Analyzer is one steervet pass. Run receives the whole loaded module — the
// invariants here are module-global (an atomically-accessed field must not
// be read plainly anywhere, a hot path spans packages), so unlike
// x/tools/go/analysis the unit of work is the module, not the package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries the loaded module and collects diagnostics for one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Module   *Module

	diags []Diagnostic
}

// Reportf records a finding unless a //steer:allow suppression covers its
// line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Module.allowed(p.Analyzer.Name, pos) {
		return
	}
	p.diags = append(p.diags, Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the findings recorded so far.
func (p *Pass) Diagnostics() []Diagnostic { return p.diags }

// Package is one loaded, type-checked module package with syntax.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is the loaded analysis unit: every package of the repository,
// parsed and type-checked, plus the directive-annotation and suppression
// index the analyzers share.
type Module struct {
	Path string // module path from go.mod
	Root string // module root directory
	Fset *token.FileSet
	Pkgs []*Package

	ann         map[types.Object]Annotation
	allows      map[string]map[int][]string // filename → line → allowed analyzer names
	allowRanges map[string][]allowRange     // filename → case-clause spans with allows
}

// allowRange is a //steer:allow placed on a case/comm clause line: the
// suppression covers the whole clause body, so one allow documents a
// control-plane branch inside a hot-path switch.
type allowRange struct {
	start, end int // line span, inclusive
	name       string
}

// Annotation is the set of steer: directives on one declaration.
type Annotation struct {
	Hotpath  bool
	Coldpath bool
	Owns     bool
	Consumes bool
}

// Run executes the analyzers over the module and returns their findings in
// file/position order.
func (m *Module) Run(analyzers ...*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Module: m}
		a.Run(pass)
		diags = append(diags, pass.diags...)
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := m.Fset.Position(diags[i].Pos), m.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags
}

// AnnotationOf returns the steer: directives attached to obj's declaration
// (function, method, or interface method).
func (m *Module) AnnotationOf(obj types.Object) Annotation {
	if obj == nil {
		return Annotation{}
	}
	m.buildIndex()
	return m.ann[obj]
}

// allowed reports whether a //steer:allow for analyzer name covers pos
// (same line or the line directly above).
func (m *Module) allowed(name string, pos token.Pos) bool {
	m.buildIndex()
	p := m.Fset.Position(pos)
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, a := range m.allows[p.Filename][line] {
			if a == name {
				return true
			}
		}
	}
	for _, r := range m.allowRanges[p.Filename] {
		if r.name == name && p.Line >= r.start && p.Line <= r.end {
			return true
		}
	}
	return false
}

// buildIndex scans every file once for steer: directives: declaration
// annotations keyed by types.Object, and per-line allow suppressions.
func (m *Module) buildIndex() {
	if m.ann != nil {
		return
	}
	m.ann = make(map[types.Object]Annotation)
	m.allows = make(map[string]map[int][]string)
	m.allowRanges = make(map[string][]allowRange)
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			m.indexFile(pkg, file)
		}
	}
}

func (m *Module) indexFile(pkg *Package, file *ast.File) {
	// Suppressions: every comment anywhere in the file.
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rest, ok := directive(c.Text, "allow")
			if !ok {
				continue
			}
			name := rest
			if i := strings.IndexAny(rest, " \t"); i >= 0 {
				name = rest[:i]
			}
			if name == "" {
				continue
			}
			p := m.Fset.Position(c.Pos())
			byLine := m.allows[p.Filename]
			if byLine == nil {
				byLine = make(map[int][]string)
				m.allows[p.Filename] = byLine
			}
			byLine[p.Line] = append(byLine[p.Line], name)
		}
	}
	// An allow on a case/comm clause line widens to the whole clause.
	if byLine := m.allows[m.Fset.Position(file.Pos()).Filename]; len(byLine) > 0 {
		fname := m.Fset.Position(file.Pos()).Filename
		ast.Inspect(file, func(n ast.Node) bool {
			var body []ast.Stmt
			switch c := n.(type) {
			case *ast.CaseClause:
				body = c.Body
			case *ast.CommClause:
				body = c.Body
			default:
				return true
			}
			start := m.Fset.Position(n.Pos()).Line
			end := m.Fset.Position(n.End()).Line
			if len(body) > 0 {
				end = m.Fset.Position(body[len(body)-1].End()).Line
			}
			for _, name := range byLine[start] {
				m.allowRanges[fname] = append(m.allowRanges[fname], allowRange{start: start, end: end, name: name})
			}
			return true
		})
	}
	// Declaration annotations: function declarations and interface methods.
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if ann, ok := annotationFrom(d.Doc); ok {
				if obj := pkg.Info.Defs[d.Name]; obj != nil {
					m.ann[obj] = ann
				}
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				it, ok := ts.Type.(*ast.InterfaceType)
				if !ok {
					continue
				}
				for _, f := range it.Methods.List {
					ann, ok := annotationFrom(f.Doc)
					if !ok {
						continue
					}
					for _, name := range f.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							m.ann[obj] = ann
						}
					}
				}
			}
		}
	}
}

// annotationFrom extracts steer: directives from a doc comment.
func annotationFrom(doc *ast.CommentGroup) (Annotation, bool) {
	var ann Annotation
	any := false
	if doc == nil {
		return ann, false
	}
	for _, c := range doc.List {
		rest, ok := directiveName(c.Text)
		if !ok {
			continue
		}
		switch rest {
		case "hotpath":
			ann.Hotpath, any = true, true
		case "coldpath":
			ann.Coldpath, any = true, true
		case "owns":
			ann.Owns, any = true, true
		case "consumes":
			ann.Consumes, any = true, true
		}
	}
	return ann, any
}

// directive matches a `//steer:<name>` comment and returns the text after
// "steer:<name>", trimmed, when the comment is that directive.
func directive(text, name string) (string, bool) {
	const prefix = "//steer:"
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := text[len(prefix):]
	if !strings.HasPrefix(rest, name) {
		return "", false
	}
	rest = rest[len(name):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// directiveName returns the bare directive word of a `//steer:<word>`
// comment (ignoring any trailing prose).
func directiveName(text string) (string, bool) {
	const prefix = "//steer:"
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := text[len(prefix):]
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "", false
	}
	return rest, true
}

// FuncFor resolves the called function of a call expression, looking through
// parentheses. It returns nil for calls through function values, built-ins
// and type conversions.
func FuncFor(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
		}
		// Package-qualified call (pkg.Func): no selection entry.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// IsInterfaceMethod reports whether f is declared on an interface (so a call
// to it dispatches dynamically).
func IsInterfaceMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// FuncName renders a function for diagnostics: pkg.Func or (*pkg.Type).Method.
func FuncName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
			ptr = "*"
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return fmt.Sprintf("(%s%s).%s", ptr, named.Obj().Name(), f.Name())
		}
	}
	return f.Name()
}
