package hotpathalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotpathalloc"
)

func TestHotpathalloc(t *testing.T) {
	for _, dir := range []string{
		"testdata/alloc",
		"testdata/blob",
		"testdata/lock",
		"testdata/writev",
	} {
		t.Run(dir, func(t *testing.T) {
			analysistest.Run(t, dir, hotpathalloc.Analyzer)
		})
	}
}
