// Package hotpathalloc implements the steervet analyzer that keeps the
// steady-state broadcast path allocation- and lock-free at compile time.
// Functions annotated //steer:hotpath, and every same-module function
// statically reachable from one, may not contain allocation-causing
// constructs or acquire a sync.Mutex/RWMutex. This turns the
// testing.AllocsPerRun guards of BenchmarkBroadcastHotPath into reports
// with exact positions: the benchmark tells you the budget regressed,
// the analyzer tells you which line did it.
//
// Flagged constructs:
//
//   - map and slice composite literals, and pointer composites &T{} (value
//     struct/array composites are stack values and pass)
//   - make and new
//   - func literals (closure allocation) and go statements
//   - append whose result is not assigned back to its own first argument —
//     self-append into a reusable scratch slice amortises to zero, anything
//     else may grow into a fresh backing array
//   - string concatenation and string<->[]byte/[]rune conversions
//   - any call into package fmt
//   - interface boxing of non-pointer values (assignments, call arguments,
//     returns into interface-typed slots)
//   - Lock/RLock on sync.Mutex or sync.RWMutex
//
// Propagation follows static same-module calls only. Interface method calls
// are the propagation boundary — implementations on the hot path carry
// their own //steer:hotpath. //steer:coldpath on a callee stops descent
// (the annotation documents why the call is off the steady-state path), and
// //steer:allow hotpathalloc sanctions an individual construct (a cold
// pool-refill branch proven amortised-zero by the benchmarks).
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the hotpathalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "//steer:hotpath functions and their static callees must not allocate or lock",
	Run:  run,
}

// fnDecl pairs a function's type object with its syntax and package.
type fnDecl struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *analysis.Package
}

func run(pass *analysis.Pass) {
	mod := pass.Module

	// Index every function declaration in the module.
	decls := make(map[*types.Func]fnDecl)
	var roots []*types.Func
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				decls[fn] = fnDecl{fn: fn, decl: fd, pkg: pkg}
				if mod.AnnotationOf(fn).Hotpath {
					roots = append(roots, fn)
				}
			}
		}
	}

	// BFS from the hotpath roots across static same-module calls, remembering
	// how each function was reached for the diagnostic chain.
	via := make(map[*types.Func]string)
	queue := make([]*types.Func, 0, len(roots))
	for _, fn := range roots {
		via[fn] = ""
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fd, ok := decls[fn]
		if !ok {
			continue
		}
		chain := analysis.FuncName(fn)
		if via[fn] != "" {
			chain = via[fn] + " → " + chain
		}
		checkBody(pass, fd, chain)
		ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.FuncFor(fd.pkg.Info, call)
			if callee == nil || analysis.IsInterfaceMethod(callee) {
				return true
			}
			if _, inModule := decls[callee]; !inModule {
				return true
			}
			if mod.AnnotationOf(callee).Coldpath {
				return true
			}
			if _, seen := via[callee]; !seen {
				via[callee] = chain
				queue = append(queue, callee)
			}
			return true
		})
	}
}

// checkBody reports every allocation-causing construct and lock acquisition
// in one reached function body.
func checkBody(pass *analysis.Pass, fd fnDecl, chain string) {
	info := fd.pkg.Info
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s in hot path %s", what, chain)
	}
	selfAppends := collectSelfAppends(info, fd.decl.Body)
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CompositeLit:
			switch info.Types[e].Type.Underlying().(type) {
			case *types.Map:
				report(e.Pos(), "map literal allocates")
			case *types.Slice:
				report(e.Pos(), "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					report(e.Pos(), "pointer composite literal allocates")
				}
			}
		case *ast.FuncLit:
			report(e.Pos(), "func literal allocates a closure")
			return false // the closure body runs off this path
		case *ast.GoStmt:
			report(e.Pos(), "go statement spawns a goroutine")
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isString(info.Types[e.X].Type) {
				report(e.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if len(e.Lhs) == len(e.Rhs) {
				for i, rhs := range e.Rhs {
					if lt := info.Types[e.Lhs[i]].Type; lt != nil {
						checkConvert(info, rhs, lt, report)
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range e.Names {
				if obj := info.Defs[name]; obj != nil {
					for _, v := range e.Values {
						checkConvert(info, v, obj.Type(), report)
					}
				}
				break // all names share the spec's declared type
			}
		case *ast.ReturnStmt:
			checkReturns(info, fd.fn, e, report)
		case *ast.SendStmt:
			ch, ok := info.Types[e.Chan].Type.Underlying().(*types.Chan)
			if ok {
				checkConvert(info, e.Value, ch.Elem(), report)
			}
		case *ast.CallExpr:
			checkCall(info, e, selfAppends, report)
		}
		return true
	})
}

// collectSelfAppends returns the append calls assigned back into their own
// first argument (x = append(x, ...)): reusable-scratch appends that
// amortise to zero allocation and are accepted on the hot path.
func collectSelfAppends(info *types.Info, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	accepted := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Lhs) != len(a.Rhs) {
			return true
		}
		for i, rhs := range a.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltin(info, call, "append") || len(call.Args) == 0 {
				continue
			}
			if types.ExprString(a.Lhs[i]) == types.ExprString(call.Args[0]) {
				accepted[call] = true
			}
		}
		return true
	})
	return accepted
}

// checkReturns flags interface boxing through return values.
func checkReturns(info *types.Info, fn *types.Func, r *ast.ReturnStmt, report func(token.Pos, string)) {
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() != len(r.Results) {
		return // naked return or tuple-forwarding: nothing convertible here
	}
	for i, res := range r.Results {
		checkConvert(info, res, sig.Results().At(i).Type(), report)
	}
}

// checkCall flags make/new, cross-append, fmt calls, mutex acquisition,
// string conversions, and boxing through call arguments.
func checkCall(info *types.Info, call *ast.CallExpr, selfAppends map[*ast.CallExpr]bool, report func(token.Pos, string)) {
	// Builtins.
	switch {
	case isBuiltin(info, call, "make"):
		report(call.Pos(), "make allocates")
		return
	case isBuiltin(info, call, "new"):
		report(call.Pos(), "new allocates")
		return
	case isBuiltin(info, call, "append"):
		if !selfAppends[call] {
			report(call.Pos(), "append may grow its backing array")
		}
		return
	}

	// Remaining builtins (panic, len, copy, ...): panic is terminal — a
	// panicking path already left the steady state — and none of the others
	// box their operands.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			return
		}
	}

	// Conversions: string <-> []byte/[]rune copies.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := info.Types[call.Args[0]].Type
		if from != nil && stringBytesConversion(from, to) {
			report(call.Pos(), "string conversion allocates")
		}
		return
	}

	fn := analysis.FuncFor(info, call)
	if fn != nil && fn.Pkg() != nil {
		if fn.Pkg().Path() == "fmt" {
			report(call.Pos(), "fmt."+fn.Name()+" allocates")
			return
		}
		if isMutexAcquire(fn) {
			report(call.Pos(), "acquires sync."+recvTypeName(fn)+"."+fn.Name())
			return
		}
	}

	// Boxing through parameters.
	sig := signatureOf(info, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			if call.Ellipsis.IsValid() {
				pt = sig.Params().At(sig.Params().Len() - 1).Type()
			} else if s, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		} else if i < sig.Params().Len() {
			pt = sig.Params().At(i).Type()
		}
		if pt != nil {
			checkConvert(info, arg, pt, report)
		}
	}
}

// checkConvert reports interface boxing when expr's concrete non-pointer
// value converts to an interface-typed slot.
func checkConvert(info *types.Info, expr ast.Expr, to types.Type, report func(token.Pos, string)) {
	if to == nil || !types.IsInterface(to.Underlying()) {
		return
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	from := tv.Type
	if tv.IsNil() || types.IsInterface(from.Underlying()) {
		return
	}
	switch from.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: no box
	}
	report(expr.Pos(), "interface boxing of non-pointer "+from.String()+" allocates")
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isMutexAcquire reports whether fn is (RW)Mutex.Lock/RLock from package sync.
func isMutexAcquire(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	if fn.Name() != "Lock" && fn.Name() != "RLock" {
		return false
	}
	n := recvTypeName(fn)
	return n == "Mutex" || n == "RWMutex"
}

// recvTypeName returns the bare receiver type name of a method, or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// signatureOf returns the called signature for boxing checks, nil for
// builtins and conversions.
func signatureOf(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// stringBytesConversion reports whether from→to is a copying string
// conversion ([]byte/[]rune <-> string).
func stringBytesConversion(from, to types.Type) bool {
	return (isString(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isString(to))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
