// Package writev models the vectored egress drain (PR 9): the iovec build
// and the small-frame coalesce gather loop of codec.writeVectoredLocked,
// in both the careless per-batch-allocation shape and the shipped
// reusable-scratch shape.
package writev

type codec struct {
	iov      [][]byte
	gather   []byte
	coalesce int
}

// drainNaive is the writev drain written carelessly: fresh scratch per
// batch and an iovec handed off through a growing append.
//
//steer:hotpath
func drainNaive(c *codec, batch [][]byte) [][]byte {
	iov := make([][]byte, 0, len(batch)) // want `make allocates`
	gather := []byte{}                   // want `slice literal allocates`
	for _, buf := range batch {
		if len(buf) < c.coalesce {
			gather = append(gather, buf...) // self-append: accepted
			continue
		}
		iov = append(iov, buf) // self-append: accepted
	}
	c.iov = append(iov, gather) // want `append may grow its backing array`
	return c.iov
}

// drainReused is the shipped shape: codec-owned scratches truncated per
// batch, the gather pre-sized before any iovec entry aliases it (one
// sanctioned high-water-mark grow), self-appends everywhere else.
//
//steer:hotpath
func drainReused(c *codec, batch [][]byte) {
	need := 0
	for _, buf := range batch {
		if len(buf) < c.coalesce {
			need += len(buf)
		}
	}
	if cap(c.gather) < need {
		//steer:allow hotpathalloc gather scratch grows to the batch high-water mark once; steady state reuses it
		c.gather = make([]byte, 0, need)
	}
	gather := c.gather[:0]
	iov := c.iov[:0]
	for _, buf := range batch {
		if len(buf) < c.coalesce {
			gather = append(gather, buf...) // self-append: accepted
			continue
		}
		iov = append(iov, buf) // self-append: accepted
	}
	c.gather = gather
	c.iov = iov
	for i := range iov {
		iov[i] = nil // post-write scrub: no allocation, no finding
	}
}
