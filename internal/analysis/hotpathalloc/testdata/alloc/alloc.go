// Package alloc seeds allocation-causing constructs in //steer:hotpath
// functions and their transitive same-module callees.
package alloc

import "fmt"

// stats is a hot counter sink.
type stats struct {
	names []string
	total int
}

// hotAlloc is a hot-path root stuffed with steady-state allocations.
//
//steer:hotpath
func hotAlloc(s *stats, name string, vals []int) {
	buf := make([]int, len(vals)) // want `make allocates`
	copy(buf, vals)
	m := map[string]int{name: 1} // want `map literal allocates`
	_ = m
	pair := []string{name, name}    // want `slice literal allocates`
	_ = pair                        //
	s.names = append(s.names, name) // self-append: accepted
	other := append(s.names, name)  // want `append may grow its backing array`
	_ = other                       //
	tag := name + "!"               // want `string concatenation allocates`
	_ = tag                         //
	fn := func() { s.total++ }      // want `func literal allocates a closure`
	fn()                            //
	go helper(s)                    // want `go statement spawns a goroutine`
	helper(s)                       // transitive descent: findings land in helper
	coldHelper(s)                   // //steer:coldpath: not descended
	fmt.Println(s.total)            // want `fmt\.Println allocates`
	var sink any = s.total          // want `interface boxing of non-pointer int`
	_ = sink                        //
	raw := []byte(name)             // want `string conversion allocates`
	_ = raw                         //
	//steer:allow hotpathalloc cold branch proven amortised-zero by benchmarks
	sanctioned := make([]int, 4)
	_ = sanctioned
}

// helper is reached transitively from hotAlloc.
func helper(s *stats) {
	s.names = make([]string, 0, 4) // want `make allocates`
}

// coldHelper is asserted off the steady-state path; its allocations are not
// findings.
//
//steer:coldpath
func coldHelper(s *stats) {
	s.names = make([]string, 0, 4)
}

// notHot is unannotated and unreachable from any root: allocations are fine.
func notHot() []int {
	return make([]int, 8)
}
