// Package lock seeds mutex acquisitions on the hot path.
package lock

import "sync"

type table struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	val int
}

// hotLock takes a mutex on a hot-path root.
//
//steer:hotpath
func hotLock(t *table) int {
	t.mu.Lock() // want `acquires sync\.Mutex\.Lock`
	v := t.val
	t.mu.Unlock()
	return v
}

// hotRLock takes the read side of an RWMutex, transitively.
//
//steer:hotpath
func hotRLock(t *table) int {
	return readLocked(t)
}

func readLocked(t *table) int {
	t.rw.RLock() // want `acquires sync\.RWMutex\.RLock`
	v := t.val
	t.rw.RUnlock()
	return v
}

// sanctionedLock documents why its mutex is acceptable.
//
//steer:hotpath
func sanctionedLock(t *table) int {
	t.mu.Lock() //steer:allow hotpathalloc per-shard mutex, never contended in steady state
	v := t.val
	t.mu.Unlock()
	return v
}
