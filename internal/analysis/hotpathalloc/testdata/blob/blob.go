// Package blob models the pixel-frame publish path (PR 10): a publisher
// hands a bulk frame to the session's broadcast, which encodes it once into
// a pooled size-classed buffer and fans refcounted references out. The
// naive shape re-allocates per frame; the shipped shape touches the heap
// only through the pool.
package blob

type frame struct {
	stream string
	data   []byte
}

type pooled struct {
	b    []byte
	refs int32
}

type session struct {
	pool   []*pooled
	rings  [][]*pooled
	frames uint64
}

// getFrame models the size-classed pool checkout: amortised-zero, the one
// sanctioned allocation site of the publish path.
func getFrame(s *session, n int) *pooled {
	if len(s.pool) > 0 {
		fb := s.pool[len(s.pool)-1]
		s.pool = s.pool[:len(s.pool)-1]
		fb.b = fb.b[:0]
		fb.refs = 1
		return fb
	}
	//steer:allow hotpathalloc pool miss: the size-classed pool refills on a cold path and reuse is amortised-zero in steady state
	return &pooled{b: make([]byte, 0, n), refs: 1}
}

// publishNaive is the pixel publish written carelessly: a fresh payload
// copy, a tag built by concatenation and a per-frame header slice.
//
//steer:hotpath
func publishNaive(s *session, f *frame) {
	payload := make([]byte, len(f.data)) // want `make allocates`
	copy(payload, f.data)
	tag := f.stream + "/pixels" // want `string concatenation allocates`
	_ = tag
	header := []byte{1, 2, 3, 4} // want `slice literal allocates`
	for i := range s.rings {
		grown := append(s.rings[i], &pooled{b: payload}) // want `append may grow its backing array` `composite literal allocates`
		s.rings[i] = grown
	}
	_ = header
}

// publishPooled is the shipped shape: one pool checkout, self-appends into
// the pooled buffer, refcounted ring pushes that reuse ring capacity.
//
//steer:hotpath
func publishPooled(s *session, f *frame) {
	fb := getFrame(s, len(f.data)+16)
	fb.b = append(fb.b, byte(len(f.stream))) // self-append: accepted
	fb.b = append(fb.b, f.stream...)         // self-append: accepted
	fb.b = append(fb.b, f.data...)           // self-append: accepted
	for i := range s.rings {
		fb.refs++
		if n := len(s.rings[i]); n < cap(s.rings[i]) {
			s.rings[i] = s.rings[i][:n+1]
			s.rings[i][n] = fb
		} else if n > 0 {
			s.rings[i][n-1] = fb // freshest-wins overwrite: no growth
		}
	}
	s.frames++
}
