// Package analysistest runs steervet analyzers over deliberately buggy
// testdata packages and checks their findings against golden `// want`
// comments, in the style of golang.org/x/tools/go/analysis/analysistest:
//
//	fb.Release()
//	fb.Release() // want `double release`
//
// A want comment carries one or more backquoted or quoted regular
// expressions; each must match a distinct diagnostic reported on that line,
// every diagnostic must be claimed by a want, and every want must be
// matched — so the golden files prove both the reports (at exact positions)
// and the silences (allow-suppressions, //steer:owns paths).
package analysistest

import (
	"go/token"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// want is one expected-diagnostic pattern.
type want struct {
	pattern string
	re      *regexp.Regexp
	matched bool
}

// wantRx extracts the quoted patterns of a want comment: `re`, "re".
var wantRx = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run loads the fixture package in dir, runs the analyzers over it, and
// reports any mismatch against the // want comments as test failures.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	mod, err := analysis.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	wants := parseWants(t, mod)
	for _, d := range mod.Run(analyzers...) {
		pos := mod.Fset.Position(d.Pos)
		if !claim(wants[pos.Filename][pos.Line], d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	for file, lines := range wants {
		for line, ws := range lines {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matched want %q", file, line, w.pattern)
				}
			}
		}
	}
}

// claim marks the first unmatched want whose pattern matches msg.
func claim(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants collects // want comments per file and line.
func parseWants(t *testing.T, mod *analysis.Module) map[string]map[int][]*want {
	t.Helper()
	wants := make(map[string]map[int][]*want)
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					for _, m := range wantRx.FindAllStringSubmatch(rest, -1) {
						pattern := m[1]
						if pattern == "" {
							pattern = m[2]
						}
						re, err := regexp.Compile(pattern)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pattern, err)
						}
						addWant(wants, pos, &want{pattern: pattern, re: re})
					}
				}
			}
		}
	}
	return wants
}

func addWant(wants map[string]map[int][]*want, pos token.Position, w *want) {
	byLine := wants[pos.Filename]
	if byLine == nil {
		byLine = make(map[int][]*want)
		wants[pos.Filename] = byLine
	}
	byLine[pos.Line] = append(byLine[pos.Line], w)
}
