package loadgen

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestShortSoak runs the full harness — in-process hub, loopback TCP,
// journaled sessions, churn and floor contention — for about a second, so
// every tier-1 CI run (including -race) exercises the complete
// client→TCP→hub→journal→client loop and the steer→observe measurement
// path, not just their units. `make soak` runs the same scenario bigger and
// longer.
func TestShortSoak(t *testing.T) {
	sc := Scenario{
		Sessions:          4,
		ClientsPerSession: 8,
		Duration:          1200 * time.Millisecond,
		SteerInterval:     10 * time.Millisecond,
		SampleInterval:    5 * time.Millisecond,
		ChurnDwell:        80 * time.Millisecond,
		Churn:             true,
		Floor:             true,
		Journal:           true,
	}
	if testing.Short() {
		sc.Sessions = 2
		sc.ClientsPerSession = 6
		sc.Duration = 500 * time.Millisecond
	}

	res, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	t.Logf("\n%s", res)

	c := res.Counters
	if c.Steers == 0 {
		t.Error("no steers completed")
	}
	if c.SteerErrs != 0 {
		t.Errorf("steer errors: %d", c.SteerErrs)
	}
	if c.AttachErrs != 0 {
		t.Errorf("attach errors: %d", c.AttachErrs)
	}
	if c.SamplesObserved == 0 {
		t.Error("no samples observed")
	}
	if c.Churns == 0 {
		t.Error("churners never completed a cycle")
	}
	if c.FloorDenials == 0 {
		t.Error("floor storm produced no denials — floor was not contended")
	}

	so := res.Hist["steer_observe"]
	if so == nil || so.Count == 0 {
		t.Fatal("no steer→observe round trips measured")
	}
	if so.P50 <= 0 || so.P99 < so.P50 || so.P999 < so.P99 || so.Max < so.P999 {
		t.Errorf("quantiles not monotone: %+v", so)
	}
	// The round trip includes the app's 500µs poll cadence; anything beyond
	// 30s would mean the measurement (not the hub) is broken.
	if so.Max > int64(30*time.Second) {
		t.Errorf("implausible steer→observe max %v", time.Duration(so.Max))
	}
	if res.Hist["attach"].Count == 0 {
		t.Error("no attach latencies recorded")
	}
	if res.Hub == nil {
		t.Fatal("in-process run missing hub stats")
	}
	if res.Hub.SamplesEmitted == 0 || res.Hub.SteersApplied == 0 {
		t.Errorf("hub saw no traffic: %+v", res.Hub)
	}
}

// TestResultJSONShape pins the benchcompare contract: the emitted document
// must carry a "bench" table keyed Load*/quantile with ns_op values, and
// quantile-free distributions must be omitted rather than zero-filled.
func TestResultJSONShape(t *testing.T) {
	res := &Result{
		Scenario: Scenario{Sessions: 1, ClientsPerSession: 2},
		Hist: map[string]*HistSnapshot{
			"steer_observe": {Count: 10, P50: 100, P90: 200, P99: 300, P999: 400, Max: 500},
			"floor_deny":    {Count: 0},
		},
	}
	var buf strings.Builder
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		Meta  map[string]json.RawMessage    `json:"meta"`
		Bench map[string]map[string]float64 `json:"bench"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if got := doc.Bench["LoadSteerObserve/p99"]["ns_op"]; got != 300 {
		t.Errorf("LoadSteerObserve/p99 ns_op = %v, want 300", got)
	}
	if got := doc.Bench["LoadSteerObserve/max"]["ns_op"]; got != 500 {
		t.Errorf("LoadSteerObserve/max ns_op = %v, want 500", got)
	}
	if _, ok := doc.Bench["LoadFloorDeny/p99"]; ok {
		t.Error("empty distribution leaked into bench table")
	}
	if _, ok := doc.Meta["scenario"]; !ok {
		t.Error("meta missing scenario")
	}
}
